(* String-processing pipeline on the public API: suffix array, LCP,
   longest repeated substring and Burrows-Wheeler round trip over a
   synthetic text — the text benchmarks of the suite as a user would
   call them.

     dune exec examples/text_tools.exe -- [chars] [workers] *)

open Lcws

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000 in
  let workers = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let text =
    let t = Pbbs.Text_gen.text ~seed:42 ~vocab:(max 16 (n / 50)) ~words:(max 1 (n / 6)) () in
    if String.length t >= n then String.sub t 0 n else t
  in
  Printf.printf "text: %d chars\n%!" (String.length text);
  let pool = Scheduler.Pool.create ~num_workers:workers ~variant:Scheduler.Signal () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () ->
      (* Suffix array *)
      let t0 = Unix.gettimeofday () in
      let sa = Scheduler.Pool.run pool (fun () -> Pbbs.Suffix_array.suffix_array text) in
      Printf.printf "suffix array built in %.3fs (first suffixes: %d %d %d ...)\n%!"
        (Unix.gettimeofday () -. t0)
        sa.(0) sa.(1) sa.(2);

      (* Longest repeated substring *)
      let t0 = Unix.gettimeofday () in
      (match Scheduler.Pool.run pool (fun () -> Pbbs.Lrs.lrs text) with
      | None -> print_endline "no repeated substring"
      | Some r ->
          let shown = min r.Pbbs.Lrs.length 60 in
          Printf.printf "longest repeated substring: %d chars at %d and %d (%.3fs)\n  %S%s\n%!"
            r.Pbbs.Lrs.length r.Pbbs.Lrs.offset r.Pbbs.Lrs.other
            (Unix.gettimeofday () -. t0)
            (Pbbs.Lrs.substring_at text r.Pbbs.Lrs.offset shown)
            (if shown < r.Pbbs.Lrs.length then "..." else ""));

      (* Burrows-Wheeler round trip *)
      let t0 = Unix.gettimeofday () in
      let encoded = Scheduler.Pool.run pool (fun () -> Pbbs.Bw_transform.bwt text) in
      let runs =
        let r = ref 1 in
        String.iteri (fun i c -> if i > 0 && c <> encoded.[i - 1] then incr r) encoded;
        !r
      in
      Printf.printf "BWT: %d chars in %d runs (%.1f chars/run) in %.3fs\n%!"
        (String.length encoded) runs
        (float_of_int (String.length encoded) /. float_of_int runs)
        (Unix.gettimeofday () -. t0);
      let decoded = Pbbs.Bw_transform.unbwt encoded in
      Printf.printf "round trip %s\n" (if decoded = text then "OK" else "FAILED"))
