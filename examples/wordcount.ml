(* Word counting over a synthetic document collection — the text-processing
   workload from the paper's evaluation, as a library user would write it.

     dune exec examples/wordcount.exe -- [words] [workers] *)

open Lcws

let () =
  let words = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200_000 in
  let workers = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let text = Pbbs.Text_gen.text ~seed:7 ~vocab:(words / 20) ~words () in
  Printf.printf "text: %d bytes, vocabulary ~%d words\n%!" (String.length text) (words / 20);
  let pool = Scheduler.Pool.create ~num_workers:workers ~variant:Scheduler.Signal () in
  let t0 = Unix.gettimeofday () in
  let counts = Scheduler.Pool.run pool (fun () -> Pbbs.Word_counts.word_counts text) in
  let dt = Unix.gettimeofday () -. t0 in
  Scheduler.Pool.shutdown pool;
  let top =
    let l = Array.to_list counts in
    List.filteri (fun i _ -> i < 10)
      (List.sort (fun a b -> compare b.Pbbs.Word_counts.count a.Pbbs.Word_counts.count) l)
  in
  Printf.printf "%d distinct words in %.3fs; top 10:\n" (Array.length counts) dt;
  List.iter (fun { Pbbs.Word_counts.word; count } -> Printf.printf "  %8d  %s\n" count word) top
