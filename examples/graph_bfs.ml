(* Parallel BFS over an rMat graph, comparing scheduler variants on the
   same input — the graph workload family from the paper's evaluation.

     dune exec examples/graph_bfs.exe -- [rmat-scale] [workers] *)

open Lcws

let () =
  let sc = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 15 in
  let workers = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  Printf.printf "building rMat graph (2^%d vertices)...\n%!" sc;
  let g = Pbbs.Graph.rmat ~seed:11 ~scale:sc ~edge_factor:8 () in
  Printf.printf "graph: %d vertices, %d directed edges\n%!" (Pbbs.Graph.num_vertices g)
    (Pbbs.Graph.num_edges g);
  List.iter
    (fun variant ->
      let pool = Scheduler.Pool.create ~num_workers:workers ~variant () in
      let t0 = Unix.gettimeofday () in
      let parents = Scheduler.Pool.run pool (fun () -> Pbbs.Bfs.bfs g ~source:0) in
      let dt = Unix.gettimeofday () -. t0 in
      let m = Scheduler.Pool.metrics pool in
      Scheduler.Pool.shutdown pool;
      let reached = Array.fold_left (fun a p -> if p >= 0 then a + 1 else a) 0 parents in
      Printf.printf "%-7s reached %d vertices in %.3fs  fences=%-8d cas=%-6d steals=%d\n%!"
        (Scheduler.variant_label variant)
        reached dt m.Metrics.fences m.Metrics.cas_ops m.Metrics.steals)
    Scheduler.all_variants
