(* Drive the discrete-event simulator directly: build a custom fork-join
   DAG, define a custom machine, and compare the scheduling policies on
   it — including the two related-work policies (Lace, private deques)
   that the shared-memory engine does not implement.

     dune exec examples/simulate.exe -- [workers] *)

open Lcws
module C = Sim.Comp
module E = Sim.Engine
module M = Sim.Cost_model

let () =
  let p = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 16 in

  (* A custom machine: like AMD32 but with an exaggerated fence cost, to
     see the LCWS advantage grow. *)
  let machine = { M.amd32 with M.name = "Custom"; M.fence_cost = 200; M.cas_cost = 250 } in

  (* A computation: a parallel map, then an unbalanced reduction tree
     with one long sequential straggler (the case where constant-time
     exposure pays off). *)
  let comp =
    C.Seq
      [
        C.pfor ~grain:64 ~n:100_000 (fun i -> 40 + (i mod 21));
        C.Fork (C.Work 400_000, C.balanced ~leaves:256 ~leaf_work:2_000);
        C.pfor ~grain:32 ~n:20_000 (fun _ -> 120);
      ]
  in
  Printf.printf "DAG: work=%d cycles, span=%d cycles, %d leaves; machine %s, P=%d\n\n"
    (C.total_work comp) (C.span comp) (C.num_leaves comp) machine.M.name p;
  Printf.printf "%-8s %12s %9s %10s %8s %8s %10s\n" "policy" "makespan" "speedup" "fences" "cas"
    "steals" "signals";
  let base = ref 0 in
  List.iter
    (fun policy ->
      let s = E.run ~machine ~policy ~p comp in
      if policy = E.Ws then base := s.E.makespan;
      Printf.printf "%-8s %12d %8.2fx %10d %8d %8d %6d/%d\n" (E.policy_name policy) s.E.makespan
        (float_of_int !base /. float_of_int s.E.makespan)
        s.E.fences s.E.cas s.E.steals s.E.signals_sent s.E.signals_handled)
    [ E.Ws; E.Uslcws; E.Signal; E.Cons; E.Half; E.Lace; E.Private_deques ];
  print_newline ();

  (* Strong-scaling curve for the signal-based scheduler. *)
  Printf.printf "Signal-based LCWS scaling on %s:\n" machine.M.name;
  List.iter
    (fun p ->
      let s = E.run ~machine ~policy:E.Signal ~p comp in
      let t1 = E.run ~machine ~policy:E.Signal ~p:1 comp in
      Printf.printf "  P=%-3d makespan=%10d  speedup over P=1: %5.2fx\n" p s.E.makespan
        (float_of_int t1.E.makespan /. float_of_int s.E.makespan))
    [ 1; 2; 4; 8; 16; 32 ]
