(* Quickhull on three point distributions (computational-geometry family
   of the paper's evaluation), with a tiny ASCII rendering of the hull.

     dune exec examples/convex_hull_demo.exe -- [points] [workers] *)

open Lcws
open Pbbs.Geometry

let render pts hull =
  (* 60x24 ASCII canvas: '.' points, '#' hull vertices. *)
  let w = 60 and h = 24 in
  let minx = ref infinity and maxx = ref neg_infinity in
  let miny = ref infinity and maxy = ref neg_infinity in
  Array.iter
    (fun p ->
      if p.x < !minx then minx := p.x;
      if p.x > !maxx then maxx := p.x;
      if p.y < !miny then miny := p.y;
      if p.y > !maxy then maxy := p.y)
    pts;
  let canvas = Array.make_matrix h w ' ' in
  let plot c p =
    let px = int_of_float ((p.x -. !minx) /. (!maxx -. !minx +. 1e-9) *. float_of_int (w - 1)) in
    let py = int_of_float ((p.y -. !miny) /. (!maxy -. !miny +. 1e-9) *. float_of_int (h - 1)) in
    canvas.(h - 1 - py).(px) <- c
  in
  let step = max 1 (Array.length pts / 400) in
  Array.iteri (fun i p -> if i mod step = 0 then plot '.' p) pts;
  Array.iter (fun i -> plot '#' pts.(i)) hull;
  Array.iter (fun row -> print_endline (String.init w (fun i -> row.(i)))) canvas

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000 in
  let workers = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let pool = Scheduler.Pool.create ~num_workers:workers ~variant:Scheduler.Signal () in
  List.iter
    (fun (name, pts) ->
      let t0 = Unix.gettimeofday () in
      let hull = Scheduler.Pool.run pool (fun () -> Pbbs.Convex_hull.quickhull pts) in
      Printf.printf "\n%s: hull of %d points has %d vertices (%.3fs)\n" name n
        (Array.length hull)
        (Unix.gettimeofday () -. t0);
      render pts hull)
    [
      ("2DinSphere", in_sphere2d ~seed:1 n);
      ("2DinCube", in_cube2d ~seed:2 n);
      ("2DonSphere", on_sphere2d ~seed:3 (min n 2000));
    ];
  Scheduler.Pool.shutdown pool
