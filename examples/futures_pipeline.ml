(* Futures pipeline: the effects-based task API (DESIGN.md §3.6).

   Three stages:
   1. an unstructured dependency DAG built from [Future.spawn]/[await]
      inside one job — awaits park the fiber, never the worker;
   2. a race between two search strategies via [Future.first], with the
      loser cancelled cooperatively at its next [parallel_for] grain;
   3. external submission: producer domains feed a running pool through
      [Pool.submit] with no [Pool.run] on the consumer side at all.

     dune exec examples/futures_pipeline.exe -- [workers] [variant]

   Variants: ws | user | signal | cons | half *)

open Lcws
module Ops = Scheduler.Ops
module Future = Scheduler.Future

(* Stage 1: a diamond DAG — [left] and [right] run in parallel, [top]
   consumes both. Each await that finds its input still pending parks
   the awaiting fiber; its worker moves on to other tasks. *)
let diamond () =
  let base = Future.spawn (fun () -> Array.init 100_000 (fun i -> i land 255)) in
  let left =
    Future.spawn (fun () ->
        let a = Future.await base in
        let s = ref 0 in
        Ops.parallel_for ~start:0 ~stop:(Array.length a) (fun i ->
            if a.(i) land 1 = 0 then incr s);
        !s)
  in
  let right =
    Future.spawn (fun () ->
        let a = Future.await base in
        Array.fold_left (fun acc x -> acc lxor x) 0 a)
  in
  let evens, parity = Future.await (Future.both left right) in
  (evens, parity)

(* Stage 2: race two strategies for the same answer. [Future.first]
   cancels the loser; its parallel_for stops at the next grain instead
   of running to completion. *)
let race n =
  let count pred label iters =
    Future.spawn (fun () ->
        let hits = Atomic.make 0 in
        for _ = 1 to iters do
          Ops.parallel_for ~start:0 ~stop:n (fun i ->
              if pred i then ignore (Atomic.fetch_and_add hits 1))
        done;
        (label, Atomic.get hits / iters))
  in
  (* Same predicate, but the "slow" strategy grinds 64 redundant passes:
     the fast one settles first and cancellation reclaims the workers. *)
  let fast = count (fun i -> i mod 7 = 0) "fast" 1 in
  let slow = count (fun i -> i mod 7 = 0) "slow" 64 in
  Future.await (Future.first fast slow)

let () =
  let workers = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let variant =
    if Array.length Sys.argv > 2 then
      Option.value ~default:Scheduler.Signal (Scheduler.variant_of_string Sys.argv.(2))
    else Scheduler.Signal
  in
  Printf.printf "pool: %d workers, %s scheduler\n%!" workers (Scheduler.variant_label variant);
  let pool = Scheduler.Pool.create ~num_workers:workers ~variant () in

  (* 1. Diamond DAG of futures inside one job. *)
  let evens, parity = Scheduler.Pool.run pool diamond in
  Printf.printf "diamond: evens=%d parity=%d\n%!" evens parity;

  (* 2. Race + cancellation. *)
  let winner, hits = Scheduler.Pool.run pool (fun () -> race 1_000_000) in
  Printf.printf "race: %s strategy won, %d multiples of 7\n%!" winner hits;

  (* 3. External submission: two producer domains push work into the
     pool; this thread awaits the futures. Nobody calls Pool.run — with
     every worker idle, an awaiting thread elects itself driver. *)
  let producer lo =
    Domain.spawn (fun () ->
        List.init 8 (fun k ->
            let j = lo + k in
            Scheduler.Pool.submit pool (fun () ->
                let s = ref 0 in
                Ops.parallel_for ~start:0 ~stop:10_000 (fun i -> s := !s + ((i * j) land 7));
                !s)))
  in
  let d1 = producer 0 and d2 = producer 8 in
  let futs = Domain.join d1 @ Domain.join d2 in
  let total = List.fold_left (fun acc f -> acc + Future.await f) 0 futs in
  Printf.printf "submit: 16 external jobs, total=%d\n%!" total;

  let m = Scheduler.Pool.metrics pool in
  Printf.printf "futures=%d suspends=%d resumes=%d submits=%d steals=%d\n" m.Metrics.futures
    m.Metrics.suspends m.Metrics.resumes m.Metrics.submits m.Metrics.steals;
  Scheduler.Pool.shutdown pool
