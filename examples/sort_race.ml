(* Race the two parallel sorts (radix vs merge) across scheduler variants
   on the same input — the sorting workloads of the paper's evaluation —
   and print the synchronization-operation footprint of each scheduler.

     dune exec examples/sort_race.exe -- [n] [workers] *)

open Lcws

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_000_000 in
  let workers = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let keys = Prandom.ints ~seed:3 n ~bound:(1 lsl 20) in
  Printf.printf "%d random 20-bit keys, %d workers\n" n workers;
  Printf.printf "%-7s %12s %12s %10s %8s %8s\n" "sched" "radix(s)" "merge(s)" "fences" "cas"
    "steals";
  List.iter
    (fun variant ->
      let pool = Scheduler.Pool.create ~num_workers:workers ~variant () in
      let t0 = Unix.gettimeofday () in
      let by_radix = Scheduler.Pool.run pool (fun () -> Psort.radix_sort ~bits:20 keys) in
      let t1 = Unix.gettimeofday () in
      let by_merge = Scheduler.Pool.run pool (fun () -> Psort.merge_sort compare keys) in
      let t2 = Unix.gettimeofday () in
      assert (by_radix = by_merge);
      let m = Scheduler.Pool.metrics pool in
      Scheduler.Pool.shutdown pool;
      Printf.printf "%-7s %12.3f %12.3f %10d %8d %8d\n%!"
        (Scheduler.variant_label variant)
        (t1 -. t0) (t2 -. t1) m.Metrics.fences m.Metrics.cas_ops m.Metrics.steals)
    Scheduler.all_variants
