(* Quickstart: create a pool with the signal-based LCWS scheduler, run a
   fork-join computation and a parallel loop, inspect the sync counters.

     dune exec examples/quickstart.exe -- [workers] [variant]

   Variants: ws | user | signal | cons | half *)

open Lcws

let rec fib n =
  if n < 20 then begin
    (* Sequential cutoff: below this, forking costs more than it gains. *)
    let rec f n = if n < 2 then n else f (n - 1) + f (n - 2) in
    f n
  end
  else begin
    let a, b = Scheduler.Ops.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b
  end

let () =
  let workers = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let variant =
    if Array.length Sys.argv > 2 then
      Option.value ~default:Scheduler.Signal (Scheduler.variant_of_string Sys.argv.(2))
    else Scheduler.Signal
  in
  Printf.printf "pool: %d workers, %s scheduler\n%!" workers (Scheduler.variant_label variant);
  let pool = Scheduler.Pool.create ~num_workers:workers ~variant () in

  (* 1. Fork-join recursion. *)
  let t0 = Unix.gettimeofday () in
  let f30 = Scheduler.Pool.run pool (fun () -> fib 30) in
  Printf.printf "fib 30 = %d  (%.3fs)\n%!" f30 (Unix.gettimeofday () -. t0);

  (* 2. Parallel loop + reduction over 10M elements. *)
  let n = 10_000_000 in
  let t0 = Unix.gettimeofday () in
  let total =
    Scheduler.Pool.run pool (fun () ->
        Parallel.map_reduce (fun i -> i land 1023) ( + ) 0 (Parallel.tabulate n Fun.id))
  in
  Printf.printf "sum of i land 1023 over %d ints = %d  (%.3fs)\n%!" n total
    (Unix.gettimeofday () -. t0);

  (* 3. What did synchronization cost? *)
  let m = Scheduler.Pool.metrics pool in
  Printf.printf "fences=%d cas=%d steals=%d/%d exposures=%d signals=%d/%d\n" m.Metrics.fences
    m.Metrics.cas_ops m.Metrics.steals m.Metrics.steal_attempts m.Metrics.exposures
    m.Metrics.signals_sent m.Metrics.signals_handled;
  Scheduler.Pool.shutdown pool
