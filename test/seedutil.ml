(* One seed for every QCheck suite in the repo. The chaos layer already
   has single-knob reproducibility (lcws_chaos --wseed); this is the
   tests' equivalent: LCWS_TEST_SEED pins the generator state of every
   property in every suite, and a run that drew a fresh seed announces
   the one-line repro, so a CI property failure replays locally without
   reverse-engineering QCheck's reported seed per test case. *)

let seed =
  lazy
    (match Option.bind (Sys.getenv_opt "LCWS_TEST_SEED") int_of_string_opt with
    | Some s -> s
    | None ->
        Random.self_init ();
        Random.bits ())

(* Announced once per executable, and only if a property actually runs
   (the module is linked into non-QCheck test binaries too). *)
let announced = ref false

let rand () =
  let s = Lazy.force seed in
  if not !announced then begin
    announced := true;
    Printf.eprintf "[seedutil] QCheck seed: rerun with LCWS_TEST_SEED=%d\n%!" s
  end;
  Random.State.make [| s |]

(* Drop-in for the per-file [qtest] helpers: same QCheck2-to-alcotest
   wrapping, but drawing from the pinned state. Each property gets its
   own generator state seeded identically, so suites stay reproducible
   independent of alcotest's execution order. *)
let qtest ?count name gen prop =
  QCheck_alcotest.to_alcotest ~rand:(rand ()) (QCheck2.Test.make ~name ?count gen prop)
