(* The PBBS-like benchmark suite: every instance's own checker at small
   scale under a real multi-worker pool, plus targeted unit tests of the
   underlying algorithms against sequential references. *)

open Lcws
module S = Scheduler
module T = Pbbs.Suite_types

let check = Alcotest.check

let pool = lazy (S.Pool.create ~num_workers:3 ~variant:S.Signal ())

let in_pool f = S.Pool.run (Lazy.force pool) f

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* --- whole-suite conformance ------------------------------------------ *)

let suite_cases =
  List.concat_map
    (fun (b : T.bench) ->
      List.map
        (fun (inst : T.instance) ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s" b.T.bname inst.T.iname)
            `Quick
            (fun () ->
              let p = inst.T.prepare ~scale:0.04 in
              in_pool p.T.run;
              Alcotest.(check bool) "self-check" true (p.T.check ())))
        b.T.instances)
    Pbbs.Suite.all

(* Every scheduler variant must produce correct results on the quick
   subset — the suite's conformance contract, not just Signal's. *)
let variant_sweep_cases =
  List.map
    (fun variant ->
      Alcotest.test_case (S.variant_name variant) `Quick (fun () ->
          let pool = S.Pool.create ~num_workers:3 ~variant () in
          Fun.protect
            ~finally:(fun () -> S.Pool.shutdown pool)
            (fun () ->
              List.iter
                (fun (b : T.bench) ->
                  List.iter
                    (fun (inst : T.instance) ->
                      let p = inst.T.prepare ~scale:0.03 in
                      S.Pool.run pool p.T.run;
                      Alcotest.(check bool)
                        (Printf.sprintf "%s/%s" b.T.bname inst.T.iname)
                        true (p.T.check ()))
                    b.T.instances)
                Pbbs.Suite.quick)))
    S.all_variants

(* --- graphs ------------------------------------------------------------- *)

let test_graph_of_edges () =
  let g = Pbbs.Graph.of_edges ~n:4 [| (0, 1); (0, 2); (1, 3); (3, 0) |] in
  check Alcotest.int "n" 4 (Pbbs.Graph.num_vertices g);
  check Alcotest.int "m" 4 (Pbbs.Graph.num_edges g);
  check Alcotest.int "deg 0" 2 (Pbbs.Graph.degree g 0);
  check Alcotest.int "deg 2" 0 (Pbbs.Graph.degree g 2);
  let ns = ref [] in
  Pbbs.Graph.iter_neighbors g 0 (fun v -> ns := v :: !ns);
  check (Alcotest.list Alcotest.int) "neighbors of 0" [ 2; 1 ] !ns

let test_graph_symmetrize () =
  let g = Pbbs.Graph.symmetrize ~n:3 [| (0, 1); (1, 0); (0, 1); (2, 2) |] in
  (* duplicates and self-loops removed; both directions present *)
  check Alcotest.int "m" 2 (Pbbs.Graph.num_edges g);
  check Alcotest.int "deg 0" 1 (Pbbs.Graph.degree g 0);
  check Alcotest.int "deg 1" 1 (Pbbs.Graph.degree g 1);
  check Alcotest.int "deg 2" 0 (Pbbs.Graph.degree g 2)

let test_graph_symmetric_property () =
  let g = Pbbs.Graph.rmat ~seed:5 ~scale:8 ~edge_factor:4 () in
  let ok = ref true in
  for u = 0 to Pbbs.Graph.num_vertices g - 1 do
    Pbbs.Graph.iter_neighbors g u (fun v ->
        let back = ref false in
        Pbbs.Graph.iter_neighbors g v (fun w -> if w = u then back := true);
        if not !back then ok := false)
  done;
  Alcotest.(check bool) "rmat is symmetric" true !ok

let test_grid2d_structure () =
  let side = 5 in
  let g = Pbbs.Graph.grid2d ~side in
  check Alcotest.int "n" 25 (Pbbs.Graph.num_vertices g);
  (* 4 corners of degree 2, edges of degree 3, interior degree 4 *)
  let degs = Array.init 25 (Pbbs.Graph.degree g) in
  let count d = Array.fold_left (fun a x -> if x = d then a + 1 else a) 0 degs in
  check Alcotest.int "corners" 4 (count 2);
  check Alcotest.int "borders" 12 (count 3);
  check Alcotest.int "interior" 9 (count 4)

let test_edge_list () =
  let g = Pbbs.Graph.grid2d ~side:3 in
  let edges = Pbbs.Graph.edge_list g in
  (* 3x3 grid: 12 undirected edges *)
  check Alcotest.int "edges" 12 (Array.length edges);
  Alcotest.(check bool) "u < v" true (Array.for_all (fun (u, v) -> u < v) edges)

(* --- BFS ----------------------------------------------------------------- *)

let prop_bfs_distances =
  qtest "bfs distances = sequential" QCheck2.Gen.(int_range 1 1000) (fun seed ->
      let g = Pbbs.Graph.random_graph ~seed ~n:200 ~degree:3 () in
      let parents = in_pool (fun () -> Pbbs.Bfs.bfs g ~source:0) in
      Pbbs.Bfs.check g ~source:0 parents)

let test_bfs_line () =
  (* Deterministic line graph: distance i from source 0. *)
  let n = 50 in
  let g = Pbbs.Graph.symmetrize ~n (Array.init (n - 1) (fun i -> (i, i + 1))) in
  let parents = in_pool (fun () -> Pbbs.Bfs.bfs g ~source:0) in
  let dist = Pbbs.Bfs.distances_from_parents g ~source:0 parents in
  Array.iteri (fun i d -> check Alcotest.int (Printf.sprintf "dist %d" i) i d) dist

let prop_back_forward_bfs =
  qtest "backForwardBFS = sequential distances" QCheck2.Gen.(int_range 1 500) (fun seed ->
      let g = Pbbs.Graph.random_graph ~seed ~n:300 ~degree:4 () in
      let parents = in_pool (fun () -> Pbbs.Bfs.bfs_back_forward g ~source:0) in
      Pbbs.Bfs.check g ~source:0 parents)

let test_back_forward_on_grid () =
  (* Dense frontiers force the bottom-up path. *)
  let g = Pbbs.Graph.grid2d ~side:20 in
  let parents = in_pool (fun () -> Pbbs.Bfs.bfs_back_forward g ~source:0) in
  Alcotest.(check bool) "grid distances" true (Pbbs.Bfs.check g ~source:0 parents)

let test_bfs_disconnected () =
  let g = Pbbs.Graph.symmetrize ~n:4 [| (0, 1) |] in
  let parents = in_pool (fun () -> Pbbs.Bfs.bfs g ~source:0) in
  check Alcotest.int "unreachable" (-1) parents.(2);
  check Alcotest.int "unreachable" (-1) parents.(3);
  check Alcotest.int "reached" 0 parents.(1)

(* --- MIS / matching / forest --------------------------------------------- *)

let prop_mis =
  qtest "MIS independent + maximal" QCheck2.Gen.(int_range 1 500) (fun seed ->
      let g = Pbbs.Graph.random_graph ~seed ~n:150 ~degree:4 () in
      let mis = in_pool (fun () -> Pbbs.Maximal_independent_set.mis ~seed g) in
      Pbbs.Maximal_independent_set.check g mis)

let prop_matching =
  qtest "matching valid + maximal" QCheck2.Gen.(int_range 1 500) (fun seed ->
      let g = Pbbs.Graph.random_graph ~seed ~n:150 ~degree:4 () in
      let edges = Pbbs.Graph.edge_list g in
      let m =
        in_pool (fun () ->
            Pbbs.Maximal_matching.maximal_matching ~seed ~n:(Pbbs.Graph.num_vertices g) edges)
      in
      Pbbs.Maximal_matching.check ~n:(Pbbs.Graph.num_vertices g) edges m)

let prop_spanning_forest =
  qtest "spanning forest" QCheck2.Gen.(int_range 1 500) (fun seed ->
      let g = Pbbs.Graph.random_graph ~seed ~n:120 ~degree:2 () in
      let edges = Pbbs.Graph.edge_list g in
      let f =
        in_pool (fun () ->
            Pbbs.Spanning_forest.spanning_forest ~seed ~n:(Pbbs.Graph.num_vertices g) edges)
      in
      Pbbs.Spanning_forest.check ~n:(Pbbs.Graph.num_vertices g) edges f)

let test_forest_size_on_tree () =
  (* A tree input: the forest must include every edge. *)
  let n = 64 in
  let edges = Array.init (n - 1) (fun i -> (i / 2, i + 1)) in
  let f = in_pool (fun () -> Pbbs.Spanning_forest.spanning_forest ~n edges) in
  check Alcotest.int "tree keeps all edges" (n - 1) (Array.length f)

(* --- geometry -------------------------------------------------------------- *)

let test_hull_square () =
  let open Pbbs.Geometry in
  (* 4 corners + interior points: hull must be exactly the corners. *)
  let corners = [| { x = 0.; y = 0. }; { x = 1.; y = 0. }; { x = 1.; y = 1. }; { x = 0.; y = 1. } |] in
  let interior = Array.init 100 (fun i -> { x = 0.1 +. (0.008 *. float_of_int i); y = 0.5 }) in
  let pts = Array.append corners interior in
  let hull = in_pool (fun () -> Pbbs.Convex_hull.quickhull pts) in
  check Alcotest.int "hull size" 4 (Array.length hull);
  Alcotest.(check bool) "checker agrees" true (Pbbs.Convex_hull.check pts hull)

let test_hull_collinear () =
  let open Pbbs.Geometry in
  let pts = Array.init 10 (fun i -> { x = float_of_int i; y = 0. }) in
  let hull = in_pool (fun () -> Pbbs.Convex_hull.quickhull pts) in
  Alcotest.(check bool) "collinear ok" true (Pbbs.Convex_hull.check pts hull)

let prop_hull_random =
  qtest ~count:20 "hull checker on random points" QCheck2.Gen.(int_range 1 100) (fun seed ->
      let pts = Pbbs.Geometry.in_sphere2d ~seed 500 in
      let hull = in_pool (fun () -> Pbbs.Convex_hull.quickhull pts) in
      Pbbs.Convex_hull.check pts hull)

let prop_nn3d_brute_force =
  qtest ~count:8 "3D k-d tree 1-NN = brute force" QCheck2.Gen.(int_range 1 100) (fun seed ->
      let pts = Pbbs.Geometry.in_cube3d ~seed 300 in
      let nn = in_pool (fun () -> Pbbs.Nearest_neighbors.Three_d.all_nearest pts) in
      Pbbs.Nearest_neighbors.Three_d.check pts nn)

let prop_nn_brute_force =
  qtest ~count:10 "k-d tree 1-NN = brute force" QCheck2.Gen.(int_range 1 100) (fun seed ->
      let pts = Pbbs.Geometry.in_cube2d ~seed 400 in
      let nn = in_pool (fun () -> Pbbs.Nearest_neighbors.all_nearest pts) in
      Pbbs.Nearest_neighbors.check pts nn)

(* --- delaunay ------------------------------------------------------------------ *)

let test_delaunay_square () =
  let open Pbbs.Geometry in
  (* Unit square + centre: any Delaunay triangulation has 4 triangles. *)
  let pts =
    [|
      { x = 0.; y = 0. }; { x = 1.; y = 0. }; { x = 1.; y = 1. }; { x = 0.; y = 1. };
      { x = 0.5; y = 0.51 };
    |]
  in
  let tris = in_pool (fun () -> Pbbs.Delaunay.triangulate pts) in
  check Alcotest.int "4 triangles" 4 (Array.length tris);
  Alcotest.(check bool) "valid" true (Pbbs.Delaunay.check pts tris)

let test_delaunay_tiny () =
  let open Pbbs.Geometry in
  let pts = [| { x = 0.; y = 0. }; { x = 1.; y = 0.1 }; { x = 0.3; y = 1. } |] in
  let tris = in_pool (fun () -> Pbbs.Delaunay.triangulate pts) in
  check Alcotest.int "single triangle" 1 (Array.length tris);
  Alcotest.(check bool) "valid" true (Pbbs.Delaunay.check pts tris);
  check Alcotest.int "n<3 empty" 0 (Array.length (Pbbs.Delaunay.triangulate [| { x = 0.; y = 0. } |]))

let prop_delaunay =
  qtest ~count:12 "delaunay valid on random points" QCheck2.Gen.(int_range 1 100) (fun seed ->
      let pts = Pbbs.Geometry.in_cube2d ~seed 250 in
      let tris = in_pool (fun () -> Pbbs.Delaunay.triangulate pts) in
      Pbbs.Delaunay.check pts tris)

(* --- text ------------------------------------------------------------------- *)

let test_tokenize () =
  let toks = Pbbs.Tokens.tokenize "hello,  world! a1 b" in
  let strs = Array.map (Pbbs.Tokens.token_string "hello,  world! a1 b") toks in
  check (Alcotest.array Alcotest.string) "tokens" [| "hello"; "world"; "a1"; "b" |] strs

let test_tokenize_edges () =
  check Alcotest.int "empty" 0 (Array.length (Pbbs.Tokens.tokenize ""));
  check Alcotest.int "only separators" 0 (Array.length (Pbbs.Tokens.tokenize "  ,.; !"));
  check Alcotest.int "single word" 1 (Array.length (Pbbs.Tokens.tokenize "word"));
  let toks = Pbbs.Tokens.tokenize "x" in
  check Alcotest.(pair Alcotest.int Alcotest.int) "1-char token" (0, 1) toks.(0)

let test_word_counts_tiny () =
  let counts = in_pool (fun () -> Pbbs.Word_counts.word_counts "a b a c b a") in
  let find w =
    match Array.find_opt (fun c -> c.Pbbs.Word_counts.word = w) counts with
    | Some c -> c.Pbbs.Word_counts.count
    | None -> -1
  in
  check Alcotest.int "a" 3 (find "a");
  check Alcotest.int "b" 2 (find "b");
  check Alcotest.int "c" 1 (find "c");
  check Alcotest.int "distinct" 3 (Array.length counts)

let test_suffix_array_banana () =
  let sa = in_pool (fun () -> Pbbs.Suffix_array.suffix_array "banana") in
  check (Alcotest.array Alcotest.int) "banana" [| 5; 3; 1; 0; 4; 2 |] sa

let prop_suffix_array =
  qtest ~count:25 "suffix array on random strings"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'd') (int_range 1 200))
    (fun s ->
      let sa = in_pool (fun () -> Pbbs.Suffix_array.suffix_array s) in
      Pbbs.Suffix_array.check s sa)

let test_lrs_banana () =
  match in_pool (fun () -> Pbbs.Lrs.lrs "banana") with
  | None -> Alcotest.fail "banana repeats"
  | Some r ->
      check Alcotest.string "ana" "ana" (Pbbs.Lrs.substring_at "banana" r.Pbbs.Lrs.offset r.Pbbs.Lrs.length)

let test_lrs_no_repeat () =
  Alcotest.(check bool) "abc has no repeat" true (in_pool (fun () -> Pbbs.Lrs.lrs "abc") = None)

let prop_lrs =
  qtest ~count:40 "lrs checker on random strings"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 0 150))
    (fun s ->
      let r = in_pool (fun () -> Pbbs.Lrs.lrs s) in
      Pbbs.Lrs.check s r)

let test_lcp_known () =
  let sa = in_pool (fun () -> Pbbs.Suffix_array.suffix_array "banana") in
  let lcp = Pbbs.Lrs.lcp_array "banana" sa in
  (* suffixes: a, ana, anana, banana, na, nana -> lcp 0,1,3,0,0,2 *)
  check (Alcotest.array Alcotest.int) "banana lcp" [| 0; 1; 3; 0; 0; 2 |] lcp

let test_bwt_banana () =
  let b = in_pool (fun () -> Pbbs.Bw_transform.bwt "banana") in
  check Alcotest.string "bwt(banana)" "annb\x00aa" b;
  check Alcotest.string "roundtrip" "banana" (Pbbs.Bw_transform.unbwt b)

let prop_bwt_roundtrip =
  qtest ~count:40 "bwt/unbwt roundtrip"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'e') (int_range 0 300))
    (fun s -> in_pool (fun () -> Pbbs.Bw_transform.unbwt (Pbbs.Bw_transform.bwt s)) = s)

let prop_range_query =
  qtest ~count:15 "range query = brute force" QCheck2.Gen.(int_range 1 100) (fun seed ->
      let pts = Pbbs.Geometry.in_cube2d ~seed 600 in
      let rects = Pbbs.Range_query.make_rects ~seed:(seed + 1) 80 in
      let out = in_pool (fun () -> Pbbs.Range_query.query_all (Pbbs.Range_query.build pts) rects) in
      Array.for_all2 (fun got r -> got = Pbbs.Range_query.brute_count pts r) out rects)

let test_range_query_edges () =
  let open Pbbs.Geometry in
  let pts = [| { x = 0.5; y = 0.5 } |] in
  let t = in_pool (fun () -> Pbbs.Range_query.build pts) in
  let q xlo xhi ylo yhi = Pbbs.Range_query.query t { Pbbs.Range_query.xlo; xhi; ylo; yhi } in
  check Alcotest.int "hit" 1 (q 0. 1. 0. 1.);
  check Alcotest.int "exact boundary" 1 (q 0.5 0.5 0.5 0.5);
  check Alcotest.int "miss x" 0 (q 0.6 1. 0. 1.);
  check Alcotest.int "miss y" 0 (q 0. 1. 0.6 1.);
  let empty = in_pool (fun () -> Pbbs.Range_query.build [||]) in
  check Alcotest.int "empty tree" 0
    (Pbbs.Range_query.query empty { Pbbs.Range_query.xlo = 0.; xhi = 1.; ylo = 0.; yhi = 1. })

(* --- histogram / duplicates --------------------------------------------------- *)

let prop_histogram =
  qtest "histogram = sequential count"
    QCheck2.Gen.(array_size (int_range 0 2000) (int_range 0 63))
    (fun keys ->
      let h = in_pool (fun () -> Pbbs.Histogram.histogram ~buckets:64 keys) in
      Pbbs.Histogram.check_histogram ~buckets:64 keys h)

let prop_remove_duplicates =
  qtest "removeDuplicates"
    QCheck2.Gen.(array_size (int_range 0 2000) (int_range 0 255))
    (fun keys ->
      let d = in_pool (fun () -> Pbbs.Remove_duplicates.remove_duplicates ~bits:8 keys) in
      Pbbs.Remove_duplicates.check keys d)

(* --- classify ------------------------------------------------------------------ *)

let test_classify_learns () =
  let ds = Pbbs.Classify.synth ~seed:5 ~n:4000 ~d:8 () in
  let tree = in_pool (fun () -> Pbbs.Classify.train ds) in
  let acc = Pbbs.Classify.accuracy tree ds in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f > 0.8" acc) true (acc > 0.8)

let test_classify_pure_labels () =
  (* All-same labels: the tree must be a single leaf predicting it. *)
  let ds = Pbbs.Classify.synth ~seed:6 ~n:256 ~d:4 () in
  let ds = { ds with Pbbs.Classify.labels = Array.make ds.Pbbs.Classify.n 1 } in
  let tree = in_pool (fun () -> Pbbs.Classify.train ds) in
  check (Alcotest.float 1e-9) "perfect" 1.0 (Pbbs.Classify.accuracy tree ds)

(* --- nbody ----------------------------------------------------------------------- *)

let test_nbody_two_bodies () =
  let open Pbbs.Geometry in
  let pts = [| { x = 0.; y = 0. }; { x = 1.; y = 0. } |] in
  let forces = in_pool (fun () -> Pbbs.Nbody.forces pts) in
  let fx0, fy0 = forces.(0) and fx1, fy1 = forces.(1) in
  Alcotest.(check bool) "attract each other" true (fx0 > 0. && fx1 < 0.);
  Alcotest.(check bool) "symmetric" true (Float.abs (fx0 +. fx1) < 1e-9);
  Alcotest.(check bool) "no y force" true (Float.abs fy0 < 1e-9 && Float.abs fy1 < 1e-9)

let () =
  let finally () = if Lazy.is_val pool then S.Pool.shutdown (Lazy.force pool) in
  Fun.protect ~finally (fun () ->
      Alcotest.run "pbbs"
        [
          ("suite (all instances, self-checked)", suite_cases);
          ("suite under every variant", variant_sweep_cases);
          ( "graph",
            [
              Alcotest.test_case "of_edges" `Quick test_graph_of_edges;
              Alcotest.test_case "symmetrize" `Quick test_graph_symmetrize;
              Alcotest.test_case "rmat symmetric" `Quick test_graph_symmetric_property;
              Alcotest.test_case "grid2d structure" `Quick test_grid2d_structure;
              Alcotest.test_case "edge_list" `Quick test_edge_list;
            ] );
          ( "bfs",
            [
              Alcotest.test_case "line graph" `Quick test_bfs_line;
              Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
              Alcotest.test_case "back-forward on grid" `Quick test_back_forward_on_grid;
              prop_bfs_distances;
              prop_back_forward_bfs;
            ] );
          ("graph-algos", [ prop_mis; prop_matching; prop_spanning_forest;
                            Alcotest.test_case "forest on tree" `Quick test_forest_size_on_tree ]);
          ( "geometry",
            [
              Alcotest.test_case "hull of square" `Quick test_hull_square;
              Alcotest.test_case "collinear" `Quick test_hull_collinear;
              prop_hull_random;
              prop_nn_brute_force;
              prop_nn3d_brute_force;
            ] );
          ( "text",
            [
              Alcotest.test_case "tokenize" `Quick test_tokenize;
              Alcotest.test_case "tokenize edges" `Quick test_tokenize_edges;
              Alcotest.test_case "word counts tiny" `Quick test_word_counts_tiny;
              Alcotest.test_case "suffix array banana" `Quick test_suffix_array_banana;
              prop_suffix_array;
            ] );
          ("counting", [ prop_histogram; prop_remove_duplicates ]);
          ( "strings-advanced",
            [
              Alcotest.test_case "lrs banana" `Quick test_lrs_banana;
              Alcotest.test_case "lrs no repeat" `Quick test_lrs_no_repeat;
              Alcotest.test_case "lcp banana" `Quick test_lcp_known;
              Alcotest.test_case "bwt banana" `Quick test_bwt_banana;
              prop_lrs;
              prop_bwt_roundtrip;
            ] );
          ( "range-query",
            [ Alcotest.test_case "edge cases" `Quick test_range_query_edges; prop_range_query ] );
          ( "delaunay",
            [
              Alcotest.test_case "square + centre" `Quick test_delaunay_square;
              Alcotest.test_case "tiny inputs" `Quick test_delaunay_tiny;
              prop_delaunay;
            ] );
          ( "classify",
            [
              Alcotest.test_case "learns synthetic rule" `Quick test_classify_learns;
              Alcotest.test_case "pure labels" `Quick test_classify_pure_labels;
            ] );
          ("nbody", [ Alcotest.test_case "two bodies" `Quick test_nbody_two_bodies ]);
        ])
