(* The effects-based task API: futures (spawn/await/cancel and the
   combinators), suspension legality at every scheduler depth, external
   submission through Pool.submit — from plain threads and from other
   domains, with and without a job in flight, down to the single-worker
   driver-election path — Pool.run re-entrancy, the direct Suspend/Fork
   effects, a QCheck random await/cancel DAG property against the
   sequential oracle, and deterministic fault-plan replays across
   suspension points. *)

open Lcws
module S = Scheduler
module F = Fault

(* Seed plumbing unified behind LCWS_TEST_SEED (see seedutil.ml). *)
let qtest ?(count = 60) name gen prop = Seedutil.qtest ~count name gen prop

let with_pool ?deque ?fault ?trace ~num_workers ~variant f =
  let pool = S.Pool.create ?deque ?fault ?trace ~num_workers ~variant () in
  Fun.protect ~finally:(fun () -> S.Pool.shutdown pool) (fun () -> f pool)

let quiescent ?(tag = "") pool =
  let tag = if tag = "" then "" else tag ^ ": " in
  Alcotest.(check int) (tag ^ "no outstanding tasks") 0 (S.Pool.outstanding_tasks pool);
  Alcotest.(check int) (tag ^ "no frames in use") 0 (S.Pool.frames_in_use pool);
  match S.Pool.check_deque_invariants pool with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%sdeque invariants: %s" tag m

let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  x lxor (x lsr 29)

let spin n =
  let s = ref 0 in
  for i = 1 to n do
    s := !s + i
  done;
  ignore (Sys.opaque_identity !s)

(* A cancelled future settles immediately, but its fiber task stays
   queued until some worker pops it (and finds nothing left to do).
   Tests that cancel must therefore drain before the root returns, or
   the quiescence check races the pop. Needs num_workers >= 2: the
   spinning root occupies worker 0, the tick keeps signal-based
   exposure alive for the stealing helpers. *)
let drain_in_job pool =
  while S.Pool.outstanding_tasks pool > 0 do
    S.Ops.tick ();
    (* The stragglers sit *below* the live frames in the owner's LIFO
       deque, so only thieves can reach them. A no-op spawn/await cycle
       parks the root and gives the owner real task boundaries — on
       variants that expose only there (Uslcws), that is what lets the
       helpers steal the stragglers out. *)
    ignore (S.Future.await (S.Future.spawn (fun () -> ())));
    Domain.cpu_relax ()
  done

(* Every (variant, deque, workers) combination the scheduler supports:
   the five variants on their default deques at 1 and 3 workers, WS also
   on the split deque, and the two sequential-specification deques
   single-worker. *)
let full_matrix =
  List.concat_map
    (fun variant ->
      List.concat_map
        (fun nw -> [ (variant, S.default_deque_impl variant, nw) ])
        [ 1; 3 ])
    S.all_variants
  @ [ (S.Ws, S.split_deque_impl, 3); (S.Ws, S.lace_impl, 1); (S.Ws, S.private_impl, 1) ]

(* {2 Futures inside a job} *)

(* spawn/await across the whole matrix: a fan of fibers awaited at the
   root (suspension-legal depth: the root parks, worker 0 schedules). *)
let test_spawn_await_matrix () =
  List.iter
    (fun (variant, deque, num_workers) ->
      with_pool ~deque ~num_workers ~variant (fun pool ->
          let n = 40 in
          let got =
            S.Pool.run pool (fun () ->
                let futs = List.init n (fun i -> S.Future.spawn (fun () -> mix i)) in
                List.fold_left (fun acc fu -> acc + S.Future.await fu) 0 futs)
          in
          let want = List.fold_left (fun acc i -> acc + mix i) 0 (List.init n Fun.id) in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s/%d checksum" (S.variant_name variant)
               (S.deque_impl_name deque) num_workers)
            want got;
          quiescent pool))
    full_matrix

(* await at depth > 0 (inside a fork_join branch) helps instead of
   parking; the result is the same. *)
let test_await_inside_fork_join () =
  with_pool ~num_workers:3 ~variant:S.Signal (fun pool ->
      let got =
        S.Pool.run pool (fun () ->
            let fu = S.Future.spawn (fun () -> mix 7) in
            let a, b =
              S.Ops.fork_join
                (fun () -> S.Future.await fu + mix 1)
                (fun () -> S.Future.await fu + mix 2)
            in
            a + b)
      in
      Alcotest.(check int) "both branches awaited" ((2 * mix 7) + mix 1 + mix 2) got;
      quiescent pool)

(* Fibers fork and loop like any task; their nested parallelism is
   stealable. *)
let test_fiber_runs_parallel_work () =
  with_pool ~num_workers:4 ~variant:S.Uslcws (fun pool ->
      let got =
        S.Pool.run pool (fun () ->
            let fu =
              S.Future.spawn (fun () ->
                  let acc = Atomic.make 0 in
                  S.Ops.parallel_for ~grain:4 ~start:0 ~stop:100 (fun i ->
                      ignore (Atomic.fetch_and_add acc (mix i)));
                  Atomic.get acc)
            in
            S.Future.await fu)
      in
      let want = List.fold_left (fun a i -> a + mix i) 0 (List.init 100 Fun.id) in
      Alcotest.(check int) "loop inside a fiber" want got;
      quiescent pool)

let test_try_await () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      S.Pool.run pool (fun () ->
          let gate = Atomic.make false in
          let fu =
            S.Future.spawn (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done;
                31)
          in
          (* Pending: the fiber is gated, so try_await must not block. *)
          (match S.Future.try_await fu with
          | None -> ()
          | Some _ -> Alcotest.fail "future settled before its gate opened");
          Atomic.set gate true;
          Alcotest.(check int) "await after gate" 31 (S.Future.await fu);
          match S.Future.try_await fu with
          | Some (Ok 31) -> ()
          | _ -> Alcotest.fail "try_await after completion");
      quiescent pool)

let test_fiber_exception_propagates () =
  with_pool ~num_workers:2 ~variant:S.Cons (fun pool ->
      (match
         S.Pool.run pool (fun () ->
             S.Future.await (S.Future.spawn (fun () -> failwith "fiber boom")))
       with
      | _ -> Alcotest.fail "expected the fiber's exception"
      | exception Failure m -> Alcotest.(check string) "message" "fiber boom" m);
      quiescent ~tag:"after fiber exn" pool)

(* {2 Cancellation} *)

let test_cancel_pending () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      S.Pool.run pool (fun () ->
          let gate = Atomic.make false in
          let fu =
            S.Future.spawn (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done)
          in
          S.Future.cancel fu;
          (match S.Future.await fu with
          | () -> Alcotest.fail "cancelled future completed normally"
          | exception S.Cancelled -> ());
          (* First completion won: a late cancel of a settled future is
             a no-op, and the stored outcome does not change. *)
          let fu2 = S.Future.spawn (fun () -> 5) in
          Alcotest.(check int) "before cancel" 5 (S.Future.await fu2);
          S.Future.cancel fu2;
          Alcotest.(check int) "after cancel" 5 (S.Future.await fu2);
          Atomic.set gate true;
          drain_in_job pool);
      quiescent pool)

(* Cooperative cancellation: a running fiber's loop observes the fiber's
   cancellation flag at chunk boundaries and unwinds (the PR 5 protocol,
   scoped to the fiber). *)
let test_cancel_running_fiber_loop () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      S.Pool.run pool (fun () ->
          let started = Atomic.make false in
          let unwound = Atomic.make false in
          let fu =
            S.Future.spawn (fun () ->
                Fun.protect
                  ~finally:(fun () -> Atomic.set unwound true)
                  (fun () ->
                    S.Ops.parallel_for ~grain:1 ~start:0 ~stop:1_000_000 (fun i ->
                        if i = 0 then Atomic.set started true;
                        spin 50)))
          in
          while not (Atomic.get started) do
            S.Ops.tick ();
            Domain.cpu_relax ()
          done;
          S.Future.cancel fu;
          (match S.Future.await fu with
          | () -> () (* the fiber may legitimately win the race *)
          | exception S.Cancelled -> ());
          (* [cancel] settles the future before the fiber has finished
             unwinding its loop on the other worker: wait that out, then
             drain, so the quiescence check does not race it. *)
          while not (Atomic.get unwound) do
            S.Ops.tick ();
            Domain.cpu_relax ()
          done;
          drain_in_job pool);
      quiescent ~tag:"after mid-loop cancel" pool;
      let m = S.Pool.metrics pool in
      Alcotest.(check bool) "suspension protocol exercised" true (m.Metrics.futures > 0))

let test_combinators () =
  with_pool ~num_workers:3 ~variant:S.Half (fun pool ->
      S.Pool.run pool (fun () ->
          let a, b =
            S.Future.(await (both (spawn (fun () -> 3)) (spawn (fun () -> "x"))))
          in
          Alcotest.(check int) "both left" 3 a;
          Alcotest.(check string) "both right" "x" b;
          (* both: the left error has priority over the right value. The
             right fiber is joined separately — [both]'s future settles
             on the first error, before the right task need have run. *)
          let fl = S.Future.spawn (fun () -> failwith "left") in
          let fr = S.Future.spawn (fun () -> 1) in
          (match S.Future.(await (both fl fr)) with
          | _ -> Alcotest.fail "expected left error"
          | exception Failure m -> Alcotest.(check string) "left error wins" "left" m);
          Alcotest.(check int) "right still joins" 1 (S.Future.await fr);
          (* first: whichever settles wins, the loser is cancelled. *)
          let gate = Atomic.make false in
          let slow =
            S.Future.spawn (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done;
                99)
          in
          let quick = S.Future.spawn (fun () -> 7) in
          Alcotest.(check int) "first" 7 S.Future.(await (first quick slow));
          Atomic.set gate true;
          (match S.Future.await slow with
          | _ -> () (* already past the gate when cancel landed *)
          | exception S.Cancelled -> ());
          (* all: results in list order; empty list already settled. *)
          let l = S.Future.(await (all (List.init 5 (fun i -> spawn (fun () -> i * i))))) in
          Alcotest.(check (list int)) "all" [ 0; 1; 4; 9; 16 ] l;
          Alcotest.(check (list int)) "all []" [] S.Future.(await (all []));
          drain_in_job pool);
      quiescent pool)

(* Combinator edge cases: [all []] settles with no pool at all, [first]
   where both sides are cancelled, [both] where one side raises while
   the other is parked on a suspension, and [try_await] on a cancelled
   still-pending future. *)
let test_combinator_edge_cases () =
  (* [all []] is already settled and never touches a pool. *)
  (match S.Future.try_await (S.Future.all []) with
  | Some (Ok []) -> ()
  | _ -> Alcotest.fail "all [] must settle immediately, without a pool");
  with_pool ~num_workers:3 ~variant:S.Half (fun pool ->
      S.Pool.run pool (fun () ->
          (* try_await on a cancelled pending future: the cancellation
             is the completion, and try_await reports it without
             blocking even though the computation never ran. *)
          let gate = Atomic.make false in
          let pend =
            S.Future.spawn (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done;
                1)
          in
          S.Future.cancel pend;
          (match S.Future.try_await pend with
          | Some (Error S.Cancelled) -> ()
          | Some (Ok _) -> Alcotest.fail "cancelled pending future reported a value"
          | Some (Error e) -> Alcotest.failf "unexpected error %s" (Printexc.to_string e)
          | None -> Alcotest.fail "try_await found a cancelled future still pending");
          Atomic.set gate true;
          (* first where both sides are cancelled: the race's winner is
             a cancellation, so the combined future must raise
             [Cancelled] rather than hang or invent a value. *)
          let ga = Atomic.make false and gb = Atomic.make false in
          let spin g v =
            S.Future.spawn (fun () ->
                while not (Atomic.get g) do
                  Domain.cpu_relax ()
                done;
                v)
          in
          let a = spin ga 1 and b = spin gb 2 in
          let f = S.Future.first a b in
          S.Future.cancel a;
          S.Future.cancel b;
          (match S.Future.await f with
          | _ -> Alcotest.fail "first of two cancelled futures must raise"
          | exception S.Cancelled -> ());
          Atomic.set ga true;
          Atomic.set gb true;
          (* both where the left side raises and the right side is
             parked on an await: [both] still joins both sides (the
             suspension resumes first), and the raising side's error
             wins with left priority. *)
          let gate2 = Atomic.make false in
          let trigger =
            S.Future.spawn (fun () ->
                while not (Atomic.get gate2) do
                  Domain.cpu_relax ()
                done;
                5)
          in
          let susp = S.Future.spawn (fun () -> S.Future.await trigger + 1) in
          let bad =
            S.Future.spawn (fun () ->
                Atomic.set gate2 true;
                failwith "boom")
          in
          (match S.Future.(await (both bad susp)) with
          | _ -> Alcotest.fail "expected the raising side's error"
          | exception Failure m ->
              Alcotest.(check string) "raising side wins over the suspended one" "boom" m);
          Alcotest.(check int) "suspended side still joins" 6 (S.Future.await susp);
          drain_in_job pool);
      quiescent pool)

(* {2 Sequential fallback} *)

let test_outside_pool_fallback () =
  (* No pool anywhere: spawn runs immediately, futures are born settled,
     combinators still work, and Ops.suspend round-trips through a
     synchronous resume. *)
  let fu = S.Future.spawn (fun () -> mix 3) in
  Alcotest.(check int) "spawn outside pool" (mix 3) (S.Future.await fu);
  (match S.Future.try_await fu with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "outside-pool future must be born settled");
  let a, b = S.Future.(await (both (spawn (fun () -> 1)) (spawn (fun () -> 2)))) in
  Alcotest.(check (pair int int)) "both outside pool" (1, 2) (a, b);
  S.Ops.suspend (fun resume -> resume ());
  S.Ops.fork (fun () -> ())

(* {2 Direct effects} *)

let test_fork_effect () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      let hits = Atomic.make 0 in
      S.Pool.run pool (fun () ->
          let fu = S.Future.spawn (fun () -> Atomic.incr hits) in
          Effect.perform (S.Fork (fun () -> Atomic.incr hits));
          S.Future.await fu;
          (* The forked task has no join handle: drain it by helping
             until the deques go quiet. *)
          while Atomic.get hits < 2 do
            S.Ops.tick ();
            Domain.cpu_relax ()
          done);
      Alcotest.(check int) "both ran" 2 (Atomic.get hits);
      quiescent pool)

let test_suspend_effect_direct () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      let order = ref [] in
      S.Pool.run pool (fun () ->
          order := `Before :: !order;
          Effect.perform (S.Suspend (fun resume -> resume ()));
          order := `After :: !order);
      Alcotest.(check bool) "resumed in order" true (List.rev !order = [ `Before; `After ]);
      quiescent pool)

(* Suspension is illegal at depth > 0: a raw Suspend performed inside a
   fork_join branch is refused at the perform site. (Future.await and
   Ops.suspend degrade to helping instead — covered above.) *)
let test_suspend_illegal_depth () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      (match
         S.Pool.run pool (fun () ->
             S.Ops.fork_join_unit
               (fun () -> Effect.perform (S.Suspend (fun resume -> resume ())))
               (fun () -> ()))
       with
      | () -> Alcotest.fail "Suspend inside a fork_join branch must be refused"
      | exception Invalid_argument _ -> ());
      quiescent ~tag:"after illegal suspend" pool)

(* {2 Pool.run re-entrancy} *)

let test_run_reentrancy_refused () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      (match S.Pool.run pool (fun () -> S.Pool.run pool (fun () -> 1)) with
      | _ -> Alcotest.fail "nested Pool.run on the same pool must be refused"
      | exception Invalid_argument m ->
          Alcotest.(check bool) "names the re-entrancy" true
            (String.length m >= 8 && String.sub m 0 8 = "Pool.run"));
      quiescent ~tag:"after refused re-entry" pool;
      (* The refusal must leave the pool fully usable. *)
      Alcotest.(check int) "pool still works" 42 (S.Pool.run pool (fun () -> 42)))

(* Nesting across *distinct* pools stays legal: an inner pool driven
   from inside an outer pool's job. *)
let test_nested_distinct_pools () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun outer ->
      with_pool ~num_workers:1 ~variant:S.Ws (fun inner ->
          let got = S.Pool.run outer (fun () -> S.Pool.run inner (fun () -> mix 9)) in
          Alcotest.(check int) "inner result" (mix 9) got))

(* {2 External submission} *)

(* No job in flight: the submitting thread itself must drive the pool
   (driver election), including on a single-worker pool where there are
   no helper domains at all. *)
let test_submit_idle_pool () =
  List.iter
    (fun num_workers ->
      with_pool ~num_workers ~variant:S.Signal (fun pool ->
          let futs = List.init 20 (fun i -> S.Pool.submit pool (fun () -> mix i)) in
          List.iteri
            (fun i fu ->
              Alcotest.(check int)
                (Printf.sprintf "submit %d (nw=%d)" i num_workers)
                (mix i) (S.Future.await fu))
            futs;
          quiescent pool))
    [ 1; 2; 4 ]

(* Submitted tasks are full fibers: they can fork, loop, spawn and
   await. *)
let test_submit_runs_parallel_work () =
  with_pool ~num_workers:3 ~variant:S.Uslcws (fun pool ->
      let fu =
        S.Pool.submit pool (fun () ->
            let a, b = S.Ops.fork_join (fun () -> mix 1) (fun () -> mix 2) in
            a + b + S.Future.await (S.Future.spawn (fun () -> mix 3)))
      in
      Alcotest.(check int) "submitted fiber" (mix 1 + mix 2 + mix 3) (S.Future.await fu);
      quiescent pool)

(* Concurrent external submitters on separate domains, no run in
   flight: the injector is MPSC and the service count keeps every
   worker scheduling until all futures settle. *)
let test_submit_from_domains () =
  with_pool ~num_workers:3 ~variant:S.Signal (fun pool ->
      let per = 25 in
      let submitter d =
        Domain.spawn (fun () ->
            let futs = List.init per (fun i -> S.Pool.submit pool (fun () -> mix ((d * per) + i))) in
            List.fold_left (fun acc fu -> acc + S.Future.await fu) 0 futs)
      in
      let d1 = submitter 0 and d2 = submitter 1 in
      let got = Domain.join d1 + Domain.join d2 in
      let want = List.fold_left (fun a i -> a + mix i) 0 (List.init (2 * per) Fun.id) in
      Alcotest.(check int) "all submissions served" want got;
      let m = S.Pool.metrics pool in
      Alcotest.(check int) "every submission drained once" (2 * per) m.Metrics.submits;
      quiescent pool)

(* Submission racing a live job: workers drain the injector at their
   steal points, so external futures settle while Pool.run is still
   going. *)
let test_submit_during_run () =
  with_pool ~num_workers:3 ~variant:S.Signal (fun pool ->
      let stop = Atomic.make false in
      let ext =
        Domain.spawn (fun () ->
            let acc = ref 0 in
            let i = ref 0 in
            while not (Atomic.get stop) do
              acc := !acc + S.Future.await (S.Pool.submit pool (fun () -> mix !i));
              incr i
            done;
            (!i, !acc))
      in
      let inside =
        S.Pool.run pool (fun () ->
            let acc = Atomic.make 0 in
            S.Ops.parallel_for ~grain:8 ~start:0 ~stop:2_000 (fun i ->
                spin 20;
                ignore (Atomic.fetch_and_add acc (mix i)));
            Atomic.get acc)
      in
      Atomic.set stop true;
      let n_ext, got_ext = Domain.join ext in
      let want_inside = List.fold_left (fun a i -> a + mix i) 0 (List.init 2_000 Fun.id) in
      let want_ext = List.fold_left (fun a i -> a + mix i) 0 (List.init n_ext Fun.id) in
      Alcotest.(check int) "job checksum" want_inside inside;
      Alcotest.(check int) "external checksum" want_ext got_ext;
      quiescent pool)

(* submit from a worker of the pool itself: no injector round trip, the
   fiber goes straight onto the calling worker's deque. *)
let test_submit_from_worker () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      let got =
        S.Pool.run pool (fun () -> S.Future.await (S.Pool.submit pool (fun () -> mix 4)))
      in
      Alcotest.(check int) "worker-side submit" (mix 4) got;
      quiescent pool)

let test_submit_after_shutdown () =
  let pool = S.Pool.create ~num_workers:2 ~variant:S.Signal () in
  S.Pool.shutdown pool;
  match S.Pool.submit pool (fun () -> 1) with
  | _ -> Alcotest.fail "submit after shutdown must be refused"
  | exception Invalid_argument _ -> ()

(* Suspension events are observable: counters balance and the trace
   carries Submit/Suspend/Resume. *)
let test_suspension_observability () =
  let trace = Trace.create ~num_workers:2 () in
  with_pool ~trace ~num_workers:2 ~variant:S.Signal (fun pool ->
      let fu = S.Pool.submit pool (fun () -> mix 11) in
      Alcotest.(check int) "result" (mix 11) (S.Future.await fu);
      ignore
        (S.Pool.run pool (fun () ->
             S.Future.await (S.Future.spawn (fun () -> spin 1000; mix 12))));
      let m = S.Pool.metrics pool in
      (* The spawn inside the job counts under [futures]; the external
         submission only under [submits] (it was not spawned by a
         worker). *)
      Alcotest.(check bool) "futures counted" true (m.Metrics.futures >= 1);
      Alcotest.(check int) "submit counted" 1 m.Metrics.submits;
      Alcotest.(check bool) "resumes never exceed suspends" true
        (m.Metrics.resumes <= m.Metrics.suspends);
      let count k =
        List.assoc_opt k (Trace.counts trace) |> Option.value ~default:0
      in
      Alcotest.(check int) "Submit traced" 1 (count Trace.Submit);
      Alcotest.(check bool) "Suspend/Resume traced in balance" true
        (count Trace.Resume <= count Trace.Suspend))

(* {2 Random await/cancel DAGs vs the sequential oracle} *)

(* Chaos DAGs now contain Fut nodes, so the fault-free chaos oracle
   doubles as the future-layer property: par_eval (with its spawns,
   parks, migrations and resumes) must reproduce seq_eval's checksum on
   every variant, and leave the pool intact. *)
let prop_future_dag_matches_oracle case =
  let rng = Xoshiro.create (Int64.of_int case) in
  let variant = List.nth S.all_variants (Xoshiro.int rng 5) in
  let r =
    Chaos.run_one ~variant
      ~deque:(S.default_deque_impl variant)
      ~num_workers:(1 + Xoshiro.int rng 3)
      ~plan:F.no_faults
      ~wseed:(Int64.of_int (case lxor 0xfada))
      ()
  in
  if Chaos.ok r then true
  else
    QCheck2.Test.fail_reportf "%a" (fun ppf -> Format.fprintf ppf "%a" Chaos.pp_report) r

(* Random cancellation storm: spawn a wave of gated fibers, cancel a
   seeded subset, open the gate, await everything. Each await must
   return the fiber's true value or raise Cancelled — cancelled futures
   may race their own completion — and the pool must come out intact. *)
let prop_random_cancel_storm case =
  let rng = Xoshiro.create (Int64.of_int (case lxor 0xca9ce1)) in
  let variant = List.nth S.all_variants (Xoshiro.int rng 5) in
  (* >= 2 workers: the root drains the cancelled stragglers by spinning
     while the helpers steal (see [drain_in_job]). *)
  let num_workers = 2 + Xoshiro.int rng 2 in
  let n = 8 + Xoshiro.int rng 16 in
  let pool = S.Pool.create ~num_workers ~variant () in
  Fun.protect ~finally:(fun () -> S.Pool.shutdown pool) @@ fun () ->
  let cancel_mask = Array.init n (fun _ -> Xoshiro.int rng 2 = 0) in
  let errors =
    S.Pool.run pool (fun () ->
        let gate = Atomic.make false in
        let futs =
          Array.init n (fun i ->
              S.Future.spawn (fun () ->
                  while not (Atomic.get gate) do
                    Domain.cpu_relax ()
                  done;
                  spin (Xoshiro.int rng 64);
                  mix i))
        in
        Array.iteri (fun i fu -> if cancel_mask.(i) then S.Future.cancel fu) futs;
        Atomic.set gate true;
        let errs = ref [] in
        Array.iteri
          (fun i fu ->
            match S.Future.await fu with
            | v ->
                if v <> mix i then errs := Printf.sprintf "future %d: wrong value" i :: !errs
            | exception S.Cancelled ->
                if not cancel_mask.(i) then
                  errs := Printf.sprintf "future %d: cancelled but never asked" i :: !errs
            | exception e ->
                errs := Printf.sprintf "future %d: %s" i (Printexc.to_string e) :: !errs)
          futs;
        drain_in_job pool;
        !errs)
  in
  let errors =
    if S.Pool.outstanding_tasks pool = 0 then errors else "tasks left in deques" :: errors
  in
  if errors = [] then true
  else QCheck2.Test.fail_reportf "case %d: %s" case (String.concat "; " errors)

(* {2 Seeded faults across suspension points} *)

(* Deterministic replays of the fault presets over future-heavy DAGs:
   Fault.poll runs inside the Suspend handler and Fault.inject_now at
   fiber entry, so storms and stalls now land between park and resume.
   Admissibility and integrity are Chaos.run_one's oracle; determinism
   is the plan's seed. *)
let test_faults_across_suspension_points () =
  List.iter
    (fun (pname, wseed) ->
      match F.preset ~seed:(Int64.of_int (97 * wseed)) pname with
      | None -> Alcotest.failf "preset %S missing" pname
      | Some plan ->
          let run () =
            Chaos.run_one ~variant:S.Signal ~deque:S.split_deque_impl ~num_workers:3 ~plan
              ~wseed:(Int64.of_int wseed) ()
          in
          let r1 = run () in
          if not (Chaos.ok r1) then
            Alcotest.failf "[%s] %s" pname (Format.asprintf "%a" Chaos.pp_report r1);
          let r2 = run () in
          Alcotest.(check bool)
            (Printf.sprintf "[%s] seeded replay is deterministic" pname)
            true
            (r1.Chaos.outcome = r2.Chaos.outcome))
    [ ("storm", 2); ("storm", 11); ("stall", 5); ("exn", 3); ("mixed", 23); ("cancel", 7) ]

let () =
  Alcotest.run "future"
    [
      ( "futures",
        [
          Alcotest.test_case "spawn/await across the matrix" `Quick test_spawn_await_matrix;
          Alcotest.test_case "await inside fork_join helps" `Quick test_await_inside_fork_join;
          Alcotest.test_case "fiber runs parallel work" `Quick test_fiber_runs_parallel_work;
          Alcotest.test_case "try_await never blocks" `Quick test_try_await;
          Alcotest.test_case "fiber exception propagates" `Quick
            test_fiber_exception_propagates;
          Alcotest.test_case "combinators" `Quick test_combinators;
          Alcotest.test_case "combinator edge cases" `Quick test_combinator_edge_cases;
          Alcotest.test_case "sequential fallback outside pools" `Quick
            test_outside_pool_fallback;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "cancel pending, first completion wins" `Quick
            test_cancel_pending;
          Alcotest.test_case "cancel a running fiber's loop" `Quick
            test_cancel_running_fiber_loop;
        ] );
      ( "effects",
        [
          Alcotest.test_case "Fork effect" `Quick test_fork_effect;
          Alcotest.test_case "Suspend effect round-trips" `Quick test_suspend_effect_direct;
          Alcotest.test_case "Suspend refused at depth > 0" `Quick test_suspend_illegal_depth;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run re-entrancy refused" `Quick test_run_reentrancy_refused;
          Alcotest.test_case "nested distinct pools" `Quick test_nested_distinct_pools;
          Alcotest.test_case "submit to an idle pool (driver election)" `Quick
            test_submit_idle_pool;
          Alcotest.test_case "submitted fibers parallelize" `Quick
            test_submit_runs_parallel_work;
          Alcotest.test_case "MPSC submit from two domains" `Quick test_submit_from_domains;
          Alcotest.test_case "submit during a live run" `Quick test_submit_during_run;
          Alcotest.test_case "submit from a worker" `Quick test_submit_from_worker;
          Alcotest.test_case "submit after shutdown refused" `Quick
            test_submit_after_shutdown;
          Alcotest.test_case "suspension observability" `Quick test_suspension_observability;
        ] );
      ( "properties",
        [
          qtest "random future DAG matches the sequential oracle"
            QCheck2.Gen.(int_range 1 1_000_000)
            prop_future_dag_matches_oracle;
          qtest ~count:40 "random cancel storm is admissible"
            QCheck2.Gen.(int_range 1 1_000_000)
            prop_random_cancel_storm;
        ] );
      ( "faults",
        [
          Alcotest.test_case "seeded fault plans across suspension points" `Quick
            test_faults_across_suspension_points;
        ] );
    ]
