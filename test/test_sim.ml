(* The discrete-event simulator: Comp algebra, engine determinism and
   conservation laws, per-policy behaviours, machine models, workload
   registry. *)

open Lcws
module C = Sim.Comp
module E = Sim.Engine
module M = Sim.Cost_model
module W = Sim.Workloads

let check = Alcotest.check

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* --- Comp ---------------------------------------------------------------- *)

let test_comp_work () =
  let c = C.Seq [ C.Work 10; C.Fork (C.Work 5, C.Work 7); C.pfor ~grain:2 ~n:10 (fun _ -> 3) ] in
  check Alcotest.int "total work" (10 + 5 + 7 + 30) (C.total_work c);
  check Alcotest.int "span" (10 + 7 + 6) (C.span c);
  check Alcotest.int "leaves" (1 + 2 + 5) (C.num_leaves c)

let test_comp_balanced () =
  let c = C.balanced ~leaves:8 ~leaf_work:100 in
  check Alcotest.int "work" 800 (C.total_work c);
  check Alcotest.int "span" 100 (C.span c);
  check Alcotest.int "leaves" 8 (C.num_leaves c)

let test_comp_pfor_span () =
  (* span of a pfor = largest leaf chunk *)
  let c = C.pfor ~grain:4 ~n:16 (fun _ -> 5) in
  check Alcotest.int "span" 20 (C.span c);
  let empty = C.pfor ~n:0 (fun _ -> 5) in
  check Alcotest.int "empty work" 0 (C.total_work empty);
  check Alcotest.int "empty leaves" 0 (C.num_leaves empty)

(* --- engine: conservation + determinism ------------------------------------ *)

let small_comp = C.pfor ~grain:8 ~n:2_000 (fun i -> 40 + (i mod 13))

let test_engine_work_conservation () =
  let expected = C.total_work small_comp in
  List.iter
    (fun policy ->
      let s = E.run ~machine:M.amd32 ~policy ~p:4 small_comp in
      check Alcotest.int
        (Printf.sprintf "work conserved under %s" (E.policy_name policy))
        expected s.E.total_work)
    [ E.Ws; E.Uslcws; E.Signal; E.Cons; E.Half; E.Lace; E.Private_deques ]

let test_engine_deterministic () =
  List.iter
    (fun policy ->
      let a = E.run ~machine:M.amd32 ~policy ~p:8 small_comp in
      let b = E.run ~machine:M.amd32 ~policy ~p:8 small_comp in
      check Alcotest.int "same makespan" a.E.makespan b.E.makespan;
      check Alcotest.int "same steals" a.E.steals b.E.steals;
      check Alcotest.int "same fences" a.E.fences b.E.fences)
    [ E.Ws; E.Signal; E.Half ]

let test_engine_seed_matters () =
  let a = E.run ~machine:M.amd32 ~policy:E.Ws ~p:8 ~seed:1L small_comp in
  let b = E.run ~machine:M.amd32 ~policy:E.Ws ~p:8 ~seed:2L small_comp in
  (* Different victim choices; makespans normally differ (not required,
     but steal patterns must at least be recorded independently). *)
  Alcotest.(check bool) "runs complete" true (a.E.makespan > 0 && b.E.makespan > 0)

let test_engine_p1_no_steals () =
  let s = E.run ~machine:M.amd32 ~policy:E.Signal ~p:1 small_comp in
  check Alcotest.int "no steal attempts" 0 s.E.steal_attempts;
  check Alcotest.int "no signals" 0 s.E.signals_sent;
  Alcotest.(check bool) "makespan >= work" true (s.E.makespan >= C.total_work small_comp)

let test_engine_scaling () =
  let big = C.pfor ~grain:16 ~n:20_000 (fun _ -> 50) in
  let m1 = (E.run ~machine:M.amd32 ~policy:E.Ws ~p:1 big).E.makespan in
  let m4 = (E.run ~machine:M.amd32 ~policy:E.Ws ~p:4 big).E.makespan in
  let m16 = (E.run ~machine:M.amd32 ~policy:E.Ws ~p:16 big).E.makespan in
  Alcotest.(check bool) "4 workers ~4x faster" true
    (float_of_int m1 /. float_of_int m4 > 3.0);
  Alcotest.(check bool) "16 workers faster still" true (m16 < m4)

let test_lcws_fence_elimination () =
  let ws = E.run ~machine:M.amd32 ~policy:E.Ws ~p:4 small_comp in
  let us = E.run ~machine:M.amd32 ~policy:E.Uslcws ~p:4 small_comp in
  Alcotest.(check bool)
    (Printf.sprintf "uslcws fences (%d) << ws fences (%d)" us.E.fences ws.E.fences)
    true
    (float_of_int us.E.fences < 0.05 *. float_of_int ws.E.fences)

let test_signal_latency_accounting () =
  let s = E.run ~machine:M.amd32 ~policy:E.Signal ~p:8 small_comp in
  Alcotest.(check bool) "some signals" true (s.E.signals_sent > 0);
  Alcotest.(check bool) "handled <= sent" true (s.E.signals_handled <= s.E.signals_sent);
  Alcotest.(check bool) "steals need exposure" true (s.E.steals <= s.E.exposed)

let test_uslcws_exposure_only_at_boundaries () =
  (* A single long sequential task with a forked sibling: USLCWS cannot
     expose until the long task finishes, Signal can. The thief therefore
     steals much earlier under Signal. *)
  let comp = C.Fork (C.Work 500_000, C.Work 500_000) in
  let us = E.run ~machine:M.amd32 ~policy:E.Uslcws ~p:2 comp in
  let sg = E.run ~machine:M.amd32 ~policy:E.Signal ~p:2 comp in
  Alcotest.(check bool)
    (Printf.sprintf "signal (%d) beats uslcws (%d) on long tasks" sg.E.makespan us.E.makespan)
    true
    (sg.E.makespan < us.E.makespan);
  (* Signal achieves near-perfect overlap: makespan close to half the work. *)
  Alcotest.(check bool) "signal overlaps" true (sg.E.makespan < 700_000)

let test_cons_requires_two_tasks () =
  (* One forked task only: Cons never exposes (needs >= 2 private). *)
  let comp = C.Fork (C.Work 100_000, C.Work 100_000) in
  let s = E.run ~machine:M.amd32 ~policy:E.Cons ~p:2 comp in
  check Alcotest.int "nothing exposed" 0 s.E.exposed;
  (* Deep fork chains have >= 2 private tasks: Cons does expose. *)
  let deep = C.balanced ~leaves:64 ~leaf_work:5_000 in
  let s2 = E.run ~machine:M.amd32 ~policy:E.Cons ~p:4 deep in
  Alcotest.(check bool) "exposes with enough tasks" true (s2.E.exposed > 0)

let test_half_exposes_more () =
  let deep = C.balanced ~leaves:256 ~leaf_work:2_000 in
  let one = E.run ~machine:M.amd32 ~policy:E.Signal ~p:8 deep in
  let half = E.run ~machine:M.amd32 ~policy:E.Half ~p:8 deep in
  Alcotest.(check bool)
    (Printf.sprintf "half exposes >= signal per handled signal (%d/%d vs %d/%d)" half.E.exposed
       half.E.signals_handled one.E.exposed one.E.signals_handled)
    true
    (half.E.signals_handled = 0
    || float_of_int half.E.exposed /. float_of_int half.E.signals_handled
       >= float_of_int one.E.exposed /. float_of_int (max 1 one.E.signals_handled))

let test_private_no_cas () =
  let s = E.run ~machine:M.amd32 ~policy:E.Private_deques ~p:4 small_comp in
  check Alcotest.int "private deques never CAS" 0 s.E.cas;
  Alcotest.(check bool) "work still balanced (some transfers)" true (s.E.signals_handled > 0)

let test_exposed_not_stolen () =
  let s = { (E.run ~machine:M.amd32 ~policy:E.Signal ~p:2 small_comp) with E.exposed = 10; E.steals = 3 } in
  check Alcotest.int "ens" 7 (E.exposed_not_stolen s)

let prop_makespan_at_least_span_work =
  qtest "makespan >= max(span, work/p)" QCheck2.Gen.(pair (int_range 1 16) (int_range 1 6))
    (fun (p, leaves_pow) ->
      let comp = C.balanced ~leaves:(1 lsl leaves_pow) ~leaf_work:1_000 in
      let s = E.run ~machine:M.intel16 ~policy:E.Ws ~p comp in
      s.E.makespan >= C.span comp
      && s.E.makespan >= C.total_work comp / p)

(* Random fork-join DAGs: work conservation and completion must hold for
   every policy on arbitrary computation shapes, not just the curated
   workloads. *)
let comp_gen =
  let open QCheck2.Gen in
  sized_size (int_range 0 5) @@ fix (fun self n ->
      if n = 0 then map (fun w -> C.Work w) (int_range 0 2_000)
      else
        oneof
          [
            map (fun w -> C.Work w) (int_range 0 2_000);
            map2 (fun a b -> C.Fork (a, b)) (self (n / 2)) (self (n / 2));
            map (fun l -> C.Seq l) (list_size (int_range 0 4) (self (n / 2)));
            map2
              (fun n_iters grain -> C.pfor ~grain ~n:n_iters (fun i -> 10 + (i mod 7)))
              (int_range 0 200) (int_range 1 32);
          ])

let prop_random_dags =
  qtest ~count:60 "random DAGs complete under every policy"
    QCheck2.Gen.(pair comp_gen (int_range 1 8))
    (fun (comp, p) ->
      let work = C.total_work comp in
      List.for_all
        (fun policy ->
          let s = E.run ~machine:M.intel12 ~policy ~p comp in
          s.E.total_work = work && s.E.makespan >= 0)
        [ E.Ws; E.Uslcws; E.Signal; E.Cons; E.Half; E.Lace; E.Private_deques ])

(* --- machines --------------------------------------------------------------- *)

let test_machines () =
  check Alcotest.int "3 machines" 3 (List.length M.all);
  check Alcotest.(option string) "find amd32" (Some "AMD32")
    (Option.map (fun m -> m.M.name) (M.find "amd32"));
  check Alcotest.(option string) "find none" None (Option.map (fun m -> m.M.name) (M.find "xyz"));
  check (Alcotest.list Alcotest.int) "sweep 12" [ 1; 2; 4; 8; 12 ] (M.processor_sweep M.intel12);
  check (Alcotest.list Alcotest.int) "sweep 32" [ 1; 2; 4; 8; 16; 32 ] (M.processor_sweep M.amd32);
  check (Alcotest.list Alcotest.int) "sweep 16" [ 1; 2; 4; 8; 16 ] (M.processor_sweep M.intel16)

let test_machine_ordering () =
  List.iter
    (fun (m : M.t) ->
      Alcotest.(check bool) "fence << signal" true (m.M.fence_cost * 10 < m.M.signal_send_cost);
      Alcotest.(check bool) "plain < fence" true (m.M.plain_op_cost < m.M.fence_cost))
    M.all

(* --- workloads ---------------------------------------------------------------- *)

let test_workloads_registry () =
  Alcotest.(check bool) "rich registry" true (List.length W.all >= 20);
  let c = W.find ~bench:"integerSort" ~instance:"randomSeq_int" in
  Alcotest.(check bool) "find works" true (c <> None);
  check Alcotest.(option Alcotest.unit) "find missing" None
    (Option.map ignore (W.find ~bench:"nope" ~instance:"nope"))

let workload_cases =
  List.map
    (fun (c : W.config) ->
      Alcotest.test_case (Printf.sprintf "%s/%s" c.W.bench c.W.instance) `Quick (fun () ->
          let comp = c.W.build ~scale:0.05 in
          let work = Sim.Comp.total_work comp in
          Alcotest.(check bool) "has work" true (work > 0);
          let s = E.run ~machine:M.amd32 ~policy:E.Signal ~p:2 comp in
          check Alcotest.int "conserves work" work s.E.total_work))
    W.all

let () =
  Alcotest.run "sim"
    [
      ( "comp",
        [
          Alcotest.test_case "work/span/leaves" `Quick test_comp_work;
          Alcotest.test_case "balanced" `Quick test_comp_balanced;
          Alcotest.test_case "pfor span" `Quick test_comp_pfor_span;
        ] );
      ( "engine",
        [
          Alcotest.test_case "work conservation" `Quick test_engine_work_conservation;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "seeded" `Quick test_engine_seed_matters;
          Alcotest.test_case "P=1 no steals" `Quick test_engine_p1_no_steals;
          Alcotest.test_case "scaling" `Quick test_engine_scaling;
          Alcotest.test_case "LCWS eliminates fences" `Quick test_lcws_fence_elimination;
          Alcotest.test_case "signal accounting" `Quick test_signal_latency_accounting;
          Alcotest.test_case "USLCWS boundary-only exposure" `Quick
            test_uslcws_exposure_only_at_boundaries;
          Alcotest.test_case "Cons needs two tasks" `Quick test_cons_requires_two_tasks;
          Alcotest.test_case "Half exposes more" `Quick test_half_exposes_more;
          Alcotest.test_case "Private deques: no CAS" `Quick test_private_no_cas;
          Alcotest.test_case "exposed_not_stolen" `Quick test_exposed_not_stolen;
          prop_makespan_at_least_span_work;
          prop_random_dags;
        ] );
      ( "machines",
        [
          Alcotest.test_case "table" `Quick test_machines;
          Alcotest.test_case "cost ordering" `Quick test_machine_ordering;
        ] );
      ("workloads", Alcotest.test_case "registry" `Quick test_workloads_registry :: workload_cases);
    ]
