(* Unit + property tests for the runtime-support substrate:
   Metrics, Xoshiro, Backoff, Fastmath. *)

open Lcws

let check = Alcotest.check

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* --- Metrics --------------------------------------------------------- *)

let test_metrics_create_zero () =
  let m = Metrics.create () in
  check Alcotest.int "fences" 0 m.Metrics.fences;
  check Alcotest.int "cas" 0 m.Metrics.cas_ops;
  check Alcotest.int "tasks" 0 m.Metrics.tasks_run

let test_metrics_add_sum () =
  let a = Metrics.create () and b = Metrics.create () in
  a.Metrics.fences <- 3;
  a.Metrics.steals <- 2;
  b.Metrics.fences <- 4;
  b.Metrics.exposed_tasks <- 7;
  let s = Metrics.sum [| a; b |] in
  check Alcotest.int "fences summed" 7 s.Metrics.fences;
  check Alcotest.int "steals summed" 2 s.Metrics.steals;
  check Alcotest.int "exposed summed" 7 s.Metrics.exposed_tasks;
  (* sum must not alias its inputs *)
  s.Metrics.fences <- 100;
  check Alcotest.int "input untouched" 3 a.Metrics.fences

let test_metrics_reset_copy () =
  let m = Metrics.create () in
  m.Metrics.cas_ops <- 5;
  let c = Metrics.copy m in
  Metrics.reset m;
  check Alcotest.int "reset" 0 m.Metrics.cas_ops;
  check Alcotest.int "copy unaffected" 5 c.Metrics.cas_ops

let test_metrics_exposed_not_stolen () =
  let m = Metrics.create () in
  m.Metrics.exposed_tasks <- 10;
  m.Metrics.steals <- 4;
  check Alcotest.int "ens" 6 (Metrics.exposed_not_stolen m);
  m.Metrics.steals <- 15;
  check Alcotest.int "clamped" 0 (Metrics.exposed_not_stolen m)

let test_metrics_ratio () =
  check (Alcotest.float 1e-9) "ratio" 0.5 (Metrics.ratio 1 2);
  check (Alcotest.float 1e-9) "zero den" 0. (Metrics.ratio 1 0)

(* --- Xoshiro --------------------------------------------------------- *)

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 42L and b = Xoshiro.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_split_independent () =
  let root = Xoshiro.create 42L in
  let a = Xoshiro.split root 0 and b = Xoshiro.split root 1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.next a = Xoshiro.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_xoshiro_zero_seed () =
  let t = Xoshiro.create 0L in
  let v1 = Xoshiro.next t and v2 = Xoshiro.next t in
  Alcotest.(check bool) "nonzero output" true (v1 <> 0L || v2 <> 0L)

let prop_xoshiro_int_bounds =
  qtest "xoshiro int in bounds"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 10_000))
    (fun (bound, salt) ->
      let t = Xoshiro.create (Int64.of_int salt) in
      let v = Xoshiro.int t bound in
      v >= 0 && v < bound)

let prop_xoshiro_other_than =
  qtest "other_than never self"
    QCheck2.Gen.(pair (int_range 2 64) (int_range 0 1000))
    (fun (bound, salt) ->
      let t = Xoshiro.create (Int64.of_int salt) in
      let self = salt mod bound in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Xoshiro.other_than t ~bound ~self in
        if v = self || v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_xoshiro_float_range () =
  let t = Xoshiro.create 7L in
  for _ = 1 to 1000 do
    let f = Xoshiro.float t in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

(* --- Backoff --------------------------------------------------------- *)

let test_backoff_basic () =
  let b = Backoff.create ~min_wait:1 ~max_wait:8 () in
  Backoff.once b;
  Backoff.once b;
  Backoff.once b;
  Backoff.reset b;
  Backoff.once b;
  Alcotest.(check pass) "no crash" () ()

let test_backoff_invalid () =
  Alcotest.check_raises "bad args" (Invalid_argument "Backoff.create") (fun () ->
      ignore (Backoff.create ~min_wait:4 ~max_wait:2 ()))

(* --- Fastmath -------------------------------------------------------- *)

let test_double2int_known () =
  check Alcotest.int "1234.56 rounds" 1235 (Fastmath.double2int 1234.56);
  check Alcotest.int "exact int" 42 (Fastmath.double2int 42.0);
  check Alcotest.int "negative" (-3) (Fastmath.double2int (-3.4))

let prop_double2int_matches_round =
  qtest "double2int = round (ties-to-even)"
    QCheck2.Gen.(float_range (-1_000_000.) 1_000_000.)
    (fun r ->
      (* The magic-constant trick rounds half to even (the hardware's
         default FP rounding mode), so compare against that spec. *)
      let fl = Float.floor r in
      let diff = r -. fl in
      let lo = int_of_float fl in
      let expected =
        if diff > 0.5 then lo + 1
        else if diff < 0.5 then lo
        else if lo mod 2 = 0 then lo
        else lo + 1
      in
      Fastmath.double2int r = expected)

let test_round_half () =
  check Alcotest.int "0" 0 (Fastmath.round_half 0);
  check Alcotest.int "1" 1 (Fastmath.round_half 1);
  check Alcotest.int "2" 1 (Fastmath.round_half 2);
  check Alcotest.int "3" 2 (Fastmath.round_half 3);
  check Alcotest.int "7" 4 (Fastmath.round_half 7);
  check Alcotest.int "8" 4 (Fastmath.round_half 8)

let prop_round_half =
  qtest "round_half = round(r/2) half-up"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun r -> Fastmath.round_half r = int_of_float (Float.round (float_of_int r /. 2.)))

let test_next_pow2 () =
  check Alcotest.int "1" 1 (Fastmath.next_pow2 1);
  check Alcotest.int "2" 2 (Fastmath.next_pow2 2);
  check Alcotest.int "3" 4 (Fastmath.next_pow2 3);
  check Alcotest.int "1000" 1024 (Fastmath.next_pow2 1000)

let prop_next_pow2 =
  qtest "next_pow2 props"
    QCheck2.Gen.(int_range 1 (1 lsl 20))
    (fun n ->
      let p = Fastmath.next_pow2 n in
      p >= n && p land (p - 1) = 0 && (p = 1 || p / 2 < n))

let test_log2 () =
  check Alcotest.int "floor 1" 0 (Fastmath.log2_floor 1);
  check Alcotest.int "floor 7" 2 (Fastmath.log2_floor 7);
  check Alcotest.int "floor 8" 3 (Fastmath.log2_floor 8);
  check Alcotest.int "ceil 8" 3 (Fastmath.log2_ceil 8);
  check Alcotest.int "ceil 9" 4 (Fastmath.log2_ceil 9)

let test_ceil_div () =
  check Alcotest.int "7/2" 4 (Fastmath.ceil_div 7 2);
  check Alcotest.int "8/2" 4 (Fastmath.ceil_div 8 2);
  check Alcotest.int "0/5" 0 (Fastmath.ceil_div 0 5)

let () =
  Alcotest.run "sync"
    [
      ( "metrics",
        [
          Alcotest.test_case "create zero" `Quick test_metrics_create_zero;
          Alcotest.test_case "add/sum" `Quick test_metrics_add_sum;
          Alcotest.test_case "reset/copy" `Quick test_metrics_reset_copy;
          Alcotest.test_case "exposed_not_stolen" `Quick test_metrics_exposed_not_stolen;
          Alcotest.test_case "ratio" `Quick test_metrics_ratio;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "split independent" `Quick test_xoshiro_split_independent;
          Alcotest.test_case "zero seed ok" `Quick test_xoshiro_zero_seed;
          Alcotest.test_case "float range" `Quick test_xoshiro_float_range;
          prop_xoshiro_int_bounds;
          prop_xoshiro_other_than;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "basic" `Quick test_backoff_basic;
          Alcotest.test_case "invalid args" `Quick test_backoff_invalid;
        ] );
      ( "fastmath",
        [
          Alcotest.test_case "double2int known" `Quick test_double2int_known;
          Alcotest.test_case "round_half known" `Quick test_round_half;
          Alcotest.test_case "next_pow2 known" `Quick test_next_pow2;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          prop_double2int_matches_round;
          prop_round_half;
          prop_next_pow2;
        ] );
    ]
