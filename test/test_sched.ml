(* Scheduler runtime tests: correctness of fork_join / parallel_for under
   every variant, exception propagation, pool lifecycle, counters. *)

open Lcws
module S = Scheduler

let check = Alcotest.check

let with_pool ?(workers = 4) variant f =
  let pool = S.Pool.create ~num_workers:workers ~variant () in
  Fun.protect ~finally:(fun () -> S.Pool.shutdown pool) (fun () -> f pool)

let rec fib n =
  if n < 10 then begin
    let rec f n = if n < 2 then n else f (n - 1) + f (n - 2) in
    f n
  end
  else begin
    let a, b = S.Ops.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b
  end

let test_fib variant () =
  with_pool variant (fun pool ->
      check Alcotest.int "fib 20" 6765 (S.Pool.run pool (fun () -> fib 20)))

let test_parallel_for variant () =
  with_pool variant (fun pool ->
      let n = 100_000 in
      let hits = Array.make n 0 in
      S.Pool.run pool (fun () ->
          S.Ops.parallel_for ~grain:64 ~start:0 ~stop:n (fun i -> hits.(i) <- hits.(i) + 1));
      let total = Array.fold_left ( + ) 0 hits in
      check Alcotest.int "every index exactly once" n total;
      Alcotest.(check bool) "no double writes" true (Array.for_all (fun v -> v = 1) hits))

let test_nested variant () =
  with_pool variant (fun pool ->
      let result =
        S.Pool.run pool (fun () ->
            let (a, b), (c, d) =
              S.Ops.fork_join
                (fun () -> S.Ops.fork_join (fun () -> fib 15) (fun () -> fib 14))
                (fun () -> S.Ops.fork_join (fun () -> fib 13) (fun () -> fib 12))
            in
            a + b + c + d)
      in
      check Alcotest.int "nested" (610 + 377 + 233 + 144) result)

let test_sequential_fallback () =
  (* Outside a pool, the API degrades to sequential execution. *)
  let a, b = S.Ops.fork_join (fun () -> 1) (fun () -> 2) in
  check Alcotest.int "fork_join outside pool" 3 (a + b);
  let acc = ref 0 in
  S.Ops.parallel_for ~start:0 ~stop:10 (fun i -> acc := !acc + i);
  check Alcotest.int "parallel_for outside pool" 45 !acc;
  S.Ops.tick ();
  check Alcotest.int "my_id outside pool" 0 (S.Ops.my_id ());
  check Alcotest.int "num_workers outside pool" 1 (S.Ops.num_workers ())

exception Boom

let test_exception_left variant () =
  with_pool variant (fun pool ->
      Alcotest.check_raises "f raises" Boom (fun () ->
          S.Pool.run pool (fun () ->
              ignore (S.Ops.fork_join (fun () -> raise Boom) (fun () -> fib 12)))))

let test_exception_right variant () =
  with_pool variant (fun pool ->
      Alcotest.check_raises "g raises" Boom (fun () ->
          S.Pool.run pool (fun () ->
              ignore (S.Ops.fork_join (fun () -> fib 12) (fun () -> raise Boom)))))

let test_pool_reuse variant () =
  with_pool variant (fun pool ->
      for _ = 1 to 5 do
        check Alcotest.int "repeated runs" 55 (S.Pool.run pool (fun () -> fib 10))
      done)

let test_one_worker variant () =
  with_pool ~workers:1 variant (fun pool ->
      check Alcotest.int "single worker" 6765 (S.Pool.run pool (fun () -> fib 20)))

let test_counters_ws () =
  with_pool S.Ws (fun pool ->
      S.Pool.reset_metrics pool;
      ignore (S.Pool.run pool (fun () -> fib 18));
      let m = S.Pool.metrics pool in
      Alcotest.(check bool) "WS pops pay fences" true (m.Metrics.fences > 0);
      Alcotest.(check bool) "pushes counted" true (m.Metrics.pushes > 0);
      check Alcotest.int "no exposures in WS" 0 m.Metrics.exposed_tasks)

let test_counters_lcws_fence_light () =
  let fences variant =
    with_pool variant (fun pool ->
        S.Pool.reset_metrics pool;
        ignore (S.Pool.run pool (fun () -> fib 22));
        let m = S.Pool.metrics pool in
        (m.Metrics.fences, m.Metrics.pushes))
  in
  let ws_fences, ws_pushes = fences S.Ws in
  let sg_fences, sg_pushes = fences S.Signal in
  Alcotest.(check bool) "similar task counts" true
    (float_of_int sg_pushes > 0.5 *. float_of_int ws_pushes);
  Alcotest.(check bool)
    (Printf.sprintf "signal fences (%d) well below WS (%d)" sg_fences ws_fences)
    true
    (float_of_int sg_fences < 0.05 *. float_of_int ws_fences)

let test_exposure_happens () =
  (* With more workers than 1 and enough forking, thieves must force
     exposure on LCWS variants. On a single-core host the helpers only
     run when the OS preempts worker 0, so grow the job until they do. *)
  with_pool ~workers:4 S.Signal (fun pool ->
      let rec attempt n =
        S.Pool.reset_metrics pool;
        ignore (S.Pool.run pool (fun () -> fib n));
        let m = S.Pool.metrics pool in
        if m.Metrics.signals_sent > 0 && m.Metrics.exposed_tasks > 0 then ()
        else if n >= 34 then begin
          Alcotest.(check bool) "signals sent" true (m.Metrics.signals_sent > 0);
          Alcotest.(check bool) "exposures happened" true (m.Metrics.exposed_tasks > 0)
        end
        else attempt (n + 2)
      in
      attempt 24)

let test_metrics_reset () =
  with_pool S.Ws (fun pool ->
      ignore (S.Pool.run pool (fun () -> fib 15));
      S.Pool.reset_metrics pool;
      let m = S.Pool.metrics pool in
      check Alcotest.int "reset" 0 (m.Metrics.pushes + m.Metrics.fences))

let test_shutdown_idempotent () =
  let pool = S.Pool.create ~num_workers:2 ~variant:S.Signal () in
  ignore (S.Pool.run pool (fun () -> fib 10));
  S.Pool.shutdown pool;
  S.Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool was shut down") (fun () ->
      ignore (S.Pool.run pool (fun () -> 0)))

let test_create_params () =
  (* Non-default pool parameters must work: tiny deques (enough for the
     recursion depth), uniform victim policy, steal-one batching, custom
     seed. *)
  let pool =
    S.Pool.create ~seed:7L ~deque_capacity:256 ~steal_policy:Lcws_sync.Victim_policy.Uniform
      ~steal_batch:1 ~num_workers:2 ~variant:S.Half ()
  in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () -> check Alcotest.int "fib" 6765 (S.Pool.run pool (fun () -> fib 20)));
  Alcotest.check_raises "zero workers" (Invalid_argument "Pool.create: num_workers must be >= 1")
    (fun () -> ignore (S.Pool.create ~num_workers:0 ~variant:S.Ws ()))

let test_pluggable_deques () =
  (* Every deque implementation plugs into the same runtime. The
     sequential ones (lace, private) run single-worker jobs... *)
  List.iter
    (fun impl ->
      let pool = S.Pool.create ~num_workers:1 ~variant:S.Uslcws ~deque:impl () in
      Fun.protect
        ~finally:(fun () -> S.Pool.shutdown pool)
        (fun () ->
          check Alcotest.int
            (Printf.sprintf "fib on %s" (S.deque_impl_name impl))
            6765
            (S.Pool.run pool (fun () -> fib 20))))
    S.all_deque_impls;
  (* ...and the concurrent ones work cross-matched with any variant. *)
  let pool = S.Pool.create ~num_workers:2 ~variant:S.Signal ~deque:S.chase_lev_impl () in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () -> check Alcotest.int "signal on chase-lev" 6765 (S.Pool.run pool (fun () -> fib 20)))

let test_sequential_deque_rejected () =
  List.iter
    (fun impl ->
      if not (Deque_intf.impl_concurrent impl) then
        Alcotest.check_raises
          (Printf.sprintf "%s rejected at P=2" (S.deque_impl_name impl))
          (Invalid_argument
             (Printf.sprintf
                "Pool.create: deque %S is a sequential specification; use num_workers:1"
                (S.deque_impl_name impl)))
          (fun () -> ignore (S.Pool.create ~num_workers:2 ~variant:S.Uslcws ~deque:impl ())))
    S.all_deque_impls

let test_deque_impl_names () =
  List.iter
    (fun impl ->
      let name = S.deque_impl_name impl in
      match S.deque_impl_of_string name with
      | Some impl' -> check Alcotest.string "roundtrip" name (S.deque_impl_name impl')
      | None -> Alcotest.failf "deque_impl_of_string %S failed" name)
    S.all_deque_impls;
  Alcotest.(check bool) "unknown" true (S.deque_impl_of_string "nope" = None);
  check Alcotest.string "ws default" "chase_lev" (S.deque_impl_name (S.default_deque_impl S.Ws));
  check Alcotest.string "signal default" "split"
    (S.deque_impl_name (S.default_deque_impl S.Signal))

let test_backoff_counted () =
  (* Idle loops route through Backoff: a multi-worker run on this host
     (helpers mostly starve) must record backoff pauses. *)
  with_pool ~workers:4 S.Signal (fun pool ->
      S.Pool.reset_metrics pool;
      ignore (S.Pool.run pool (fun () -> fib 24));
      let m = S.Pool.metrics pool in
      Alcotest.(check bool)
        (Printf.sprintf "backoffs recorded (%d) alongside idle loops (%d)" m.Metrics.backoffs
           m.Metrics.idle_loops)
        true
        (m.Metrics.idle_loops = 0 || m.Metrics.backoffs > 0))

(* {2 Parking} *)

let test_quiescent_parks variant () =
  (* The idle-burn acceptance criterion: when an active job goes quiet,
     every idle worker must end up parked in the pool's lot, freezing
     the idle-loop counter — instead of the old saturated-backoff spin
     that kept every core busy. The root sleeps while the helpers have
     nothing to steal; after a settling pause, a quiet window must add
     (essentially) no idle loops. *)
  with_pool ~workers:8 variant (fun pool ->
      S.Pool.reset_metrics pool;
      let in_window =
        S.Pool.run pool (fun () ->
            Unix.sleepf 0.25;
            let a = (S.Pool.metrics pool).Metrics.idle_loops in
            Unix.sleepf 0.3;
            let b = (S.Pool.metrics pool).Metrics.idle_loops in
            b - a)
      in
      let m = S.Pool.metrics pool in
      Alcotest.(check bool)
        (Printf.sprintf "helpers parked (parks=%d)" m.Metrics.parks)
        true (m.Metrics.parks > 0);
      Alcotest.(check bool)
        (Printf.sprintf "idle loops frozen in the quiet window (saw %d)" in_window)
        true (in_window <= 8))

(* Conservation law of the wake protocol: every park is classified
   exactly once, as a productive wake or a spurious one — so at
   quiescence [parks = wakes + spurious_wakes]. The pool is shut down
   before the read: only then is no worker mid-park (announced and
   counted, classification still pending). *)
let seq_fib =
  let rec f n = if n < 2 then n else f (n - 1) + f (n - 2) in
  f

let prop_park_balance c =
  let rng = Xoshiro.create (Int64.of_int c) in
  let variant = List.nth S.all_variants (Xoshiro.int rng 5) in
  let workers = 2 + Xoshiro.int rng 4 in
  let jobs = 1 + Xoshiro.int rng 3 in
  let n = 14 + Xoshiro.int rng 4 in
  let pool = S.Pool.create ~num_workers:workers ~variant () in
  let results =
    match List.init jobs (fun _ -> S.Pool.run pool (fun () -> fib n)) with
    | rs -> rs
    | exception e ->
        S.Pool.shutdown pool;
        raise e
  in
  S.Pool.shutdown pool;
  let m = S.Pool.metrics pool in
  if not (List.for_all (fun r -> r = seq_fib n) results) then
    QCheck2.Test.fail_reportf "wrong fib %d on %s x%d" n (S.variant_name variant) workers
  else if m.Metrics.parks <> m.Metrics.wakes + m.Metrics.spurious_wakes then
    QCheck2.Test.fail_reportf
      "park accounting leaked on %s x%d: parks=%d wakes=%d spurious=%d"
      (S.variant_name variant) workers m.Metrics.parks m.Metrics.wakes
      m.Metrics.spurious_wakes
  else true

let test_variant_names () =
  List.iter
    (fun v ->
      check
        Alcotest.(option string)
        "roundtrip"
        (Some (S.variant_name v))
        (Option.map S.variant_name (S.variant_of_string (S.variant_name v))))
    S.all_variants;
  check Alcotest.(option string) "unknown" None (Option.map S.variant_name (S.variant_of_string "nope"))

let test_parallel_for_grains variant () =
  with_pool variant (fun pool ->
      List.iter
        (fun grain ->
          let acc = Atomic.make 0 in
          S.Pool.run pool (fun () ->
              S.Ops.parallel_for ~grain ~start:5 ~stop:1005 (fun _ -> Atomic.incr acc));
          check Alcotest.int (Printf.sprintf "grain %d" grain) 1000 (Atomic.get acc))
        [ 1; 7; 100; 5000 ])

let test_empty_range variant () =
  with_pool variant (fun pool ->
      S.Pool.run pool (fun () -> S.Ops.parallel_for ~start:10 ~stop:10 (fun _ -> Alcotest.fail "called"));
      S.Pool.run pool (fun () -> S.Ops.parallel_for ~start:10 ~stop:5 (fun _ -> Alcotest.fail "called")))

let test_result_types variant () =
  with_pool variant (fun pool ->
      let s, f =
        S.Pool.run pool (fun () -> S.Ops.fork_join (fun () -> "left") (fun () -> 3.14))
      in
      check Alcotest.string "string result" "left" s;
      check (Alcotest.float 0.0) "float result" 3.14 f)

let test_oversubscribed variant () =
  (* 8 domains on (typically) fewer cores: the schedulers must stay
     correct and live under heavy timeslicing. *)
  with_pool ~workers:8 variant (fun pool ->
      let n = 200_000 in
      let acc = Atomic.make 0 in
      S.Pool.run pool (fun () ->
          S.Ops.parallel_for ~grain:128 ~start:0 ~stop:n (fun _ -> Atomic.incr acc));
      check Alcotest.int "all iterations" n (Atomic.get acc);
      check Alcotest.int "fib" 196418 (S.Pool.run pool (fun () -> fib 27)))

(* {2 Steal-half batching} *)

(* A skewed workload: the root spawns a burst of uneven fibers, so its
   deque runs deep while every helper starts empty — the shape batch
   stealing exists for. Correctness must hold on every variant with
   batching on, and the batch metrics must obey their conservation laws:
   every successful episode is classified near or far exactly once, a
   batched episode moved at least two tasks, and on the default flat
   topology nothing is far. (No lower bound on steal counts: on a
   single-core host helpers may rarely win a probe.) *)
let test_steal_batch_skew variant () =
  let pool = S.Pool.create ~num_workers:4 ~steal_batch:4 ~variant () in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () ->
      S.Pool.reset_metrics pool;
      let total =
        S.Pool.run pool (fun () ->
            let futs = List.init 64 (fun i -> S.Future.spawn (fun () -> seq_fib (8 + (i mod 7)))) in
            List.fold_left (fun acc f -> acc + S.Future.await f) 0 futs)
      in
      let expected =
        List.fold_left (fun acc i -> acc + seq_fib (8 + (i mod 7))) 0 (List.init 64 Fun.id)
      in
      check Alcotest.int "skewed spawn burst sums correctly" expected total;
      let m = S.Pool.metrics pool in
      check Alcotest.int "every episode classified near xor far" m.Metrics.steals
        (m.Metrics.near_steals + m.Metrics.far_steals);
      check Alcotest.int "flat topology has no far victims" 0 m.Metrics.far_steals;
      Alcotest.(check bool)
        (Printf.sprintf "migrated (%d) covers episodes (%d)" m.Metrics.tasks_migrated
           m.Metrics.steals)
        true
        (m.Metrics.tasks_migrated >= m.Metrics.steals);
      Alcotest.(check bool)
        (Printf.sprintf "batched episodes (%d) within episodes (%d)" m.Metrics.steals_batched
           m.Metrics.steals)
        true
        (m.Metrics.steals_batched <= m.Metrics.steals);
      Alcotest.(check bool) "batched episodes moved the extras" true
        (m.Metrics.tasks_migrated >= m.Metrics.steals + m.Metrics.steals_batched))

(* steal_batch:1 is classical steal-one: no episode may batch, and
   migration collapses to the episode count. *)
let test_steal_one_degenerates variant () =
  let pool = S.Pool.create ~num_workers:3 ~steal_batch:1 ~variant () in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () ->
      S.Pool.reset_metrics pool;
      check Alcotest.int "fib 18" 2584 (S.Pool.run pool (fun () -> fib 18));
      let m = S.Pool.metrics pool in
      check Alcotest.int "no batched episodes" 0 m.Metrics.steals_batched;
      check Alcotest.int "one task per episode" m.Metrics.steals m.Metrics.tasks_migrated)

(* A clustered topology with the near-first policy: the same laws hold,
   with far episodes now possible (and counted separately). *)
let test_steal_batch_clustered variant () =
  let topology = Lcws_sync.Victim_policy.clustered ~cluster:2 4 in
  let pool =
    S.Pool.create ~num_workers:4 ~steal_batch:4
      ~steal_policy:Lcws_sync.Victim_policy.Near_first ~topology ~variant ()
  in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () ->
      S.Pool.reset_metrics pool;
      check Alcotest.int "fib 20" 6765 (S.Pool.run pool (fun () -> fib 20));
      let m = S.Pool.metrics pool in
      check Alcotest.int "every episode classified near xor far" m.Metrics.steals
        (m.Metrics.near_steals + m.Metrics.far_steals))

let per_variant name f =
  List.map
    (fun v -> Alcotest.test_case (Printf.sprintf "%s [%s]" name (S.variant_name v)) `Quick (f v))
    S.all_variants

let () =
  Alcotest.run "sched"
    [
      ("fib", per_variant "fib 20" test_fib);
      ("parallel_for", per_variant "coverage" test_parallel_for);
      ("nested", per_variant "nested fork_join" test_nested);
      ( "fallback",
        [ Alcotest.test_case "sequential outside pool" `Quick test_sequential_fallback ] );
      ("exceptions-left", per_variant "left raises" test_exception_left);
      ("exceptions-right", per_variant "right raises" test_exception_right);
      ("reuse", per_variant "pool reuse" test_pool_reuse);
      ("one-worker", per_variant "1 worker" test_one_worker);
      ( "counters",
        [
          Alcotest.test_case "WS counters" `Quick test_counters_ws;
          Alcotest.test_case "LCWS fence-light" `Quick test_counters_lcws_fence_light;
          Alcotest.test_case "exposure happens" `Quick test_exposure_happens;
          Alcotest.test_case "metrics reset" `Quick test_metrics_reset;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "create params" `Quick test_create_params;
          Alcotest.test_case "variant names" `Quick test_variant_names;
        ] );
      ( "deques",
        [
          Alcotest.test_case "pluggable implementations" `Quick test_pluggable_deques;
          Alcotest.test_case "sequential specs rejected" `Quick test_sequential_deque_rejected;
          Alcotest.test_case "impl names" `Quick test_deque_impl_names;
          Alcotest.test_case "backoff counted" `Quick test_backoff_counted;
        ] );
      ("grains", per_variant "grain sweep" test_parallel_for_grains);
      ("oversubscribed", per_variant "8 workers" test_oversubscribed);
      ( "steal-batch",
        per_variant "skewed burst" test_steal_batch_skew
        @ per_variant "steal-one degenerate" test_steal_one_degenerates
        @ per_variant "clustered topology" test_steal_batch_clustered );
      ("empty-range", per_variant "empty ranges" test_empty_range);
      ("results", per_variant "heterogeneous results" test_result_types);
      ( "parking",
        per_variant "quiescent pool parks" test_quiescent_parks
        @ [
            Seedutil.qtest ~count:25 "parks = wakes + spurious at quiescence"
              QCheck2.Gen.(int_range 1 1_000_000)
              prop_park_balance;
          ] );
    ]
