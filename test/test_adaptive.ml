(* The elastic pool: governor hysteresis (no flip-flapping on a
   boundary steal rate), the metrics conservation laws under forced
   policy switches (a QCheck property over real pools), seeded
   park_storm fault replay with adaptation on, and the simulator's
   adaptive mode. The switch protocol's interleaving correctness is
   test_check's job (sched_policy_switch + its two mutants); here we
   exercise the governor's decisions and the shipped scheduler's
   end-to-end behaviour around them. *)

open Lcws
module S = Scheduler
module G = Policy_governor
module F = Fault

(* Seed plumbing unified behind LCWS_TEST_SEED (see seedutil.ml). *)
let qtest ?(count = 100) name gen prop = Seedutil.qtest ~count name gen prop

let with_pool ?fault ?adaptive ?adaptive_config ~num_workers ~variant f =
  let pool = S.Pool.create ?fault ?adaptive ?adaptive_config ~num_workers ~variant () in
  Fun.protect ~finally:(fun () -> S.Pool.shutdown pool) (fun () -> f pool)

let rec fib n =
  if n < 2 then n
  else
    let a, b = S.Ops.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b

(* {2 Governor hysteresis}

   [alpha = 1.0] removes the EWMA so the gate's own behaviour is bare:
   what reaches [update] is exactly the pressure we feed. *)

let bare = { G.default_config with G.alpha = 1.0 }

(* The anti-flap property the two-threshold gate exists for: pressure
   oscillating anywhere inside [lo, hi] — including across a single
   boundary value — never flips the mode, no matter how long it
   hovers. *)
let test_band_no_flip_flap () =
  let g = G.create ~config:bare () in
  for i = 1 to 100 do
    let p = if i mod 2 = 0 then bare.G.lo +. 0.001 else bare.G.hi -. 0.001 in
    ignore (G.step g p)
  done;
  Alcotest.(check int) "no switches inside the band" 0 (G.switches g);
  Alcotest.(check bool) "mode unchanged" true (G.mode g = G.Unsync);
  Alcotest.(check int) "every sample counted" 100 (G.samples g)

(* Thresholds are strict: sitting exactly on [hi] (or [lo]) keeps the
   previous decision; only leaving the band flips. Power-of-two
   thresholds and samples keep the EWMA arithmetic exact, so "exactly
   on the threshold" means exactly. *)
let test_thresholds_strict () =
  let g = G.create ~config:{ bare with G.lo = 0.25; hi = 0.5 } () in
  ignore (G.step g 0.5);
  Alcotest.(check bool) "at hi exactly: still unsync" true (G.mode g = G.Unsync);
  ignore (G.step g 0.75);
  Alcotest.(check bool) "above hi: handshake" true (G.mode g = G.Handshake);
  ignore (G.step g 0.25);
  Alcotest.(check bool) "at lo exactly: still handshake" true (G.mode g = G.Handshake);
  ignore (G.step g 0.125);
  Alcotest.(check bool) "below lo: unsync" true (G.mode g = G.Unsync);
  Alcotest.(check int) "exactly two switches" 2 (G.switches g)

(* The EWMA half: a one-epoch pressure spike is damped below the gate,
   sustained pressure is not. *)
let test_ewma_damps_spikes () =
  let g = G.create ~config:{ G.default_config with G.alpha = 0.1 } () in
  ignore (G.step g 0.0);
  (* prime the filter quiet *)
  ignore (G.step g 1.0);
  (* smoothed = 0.1, inside the default band *)
  Alcotest.(check bool) "one spike damped" true (G.mode g = G.Unsync);
  Alcotest.(check int) "no switch on the spike" 0 (G.switches g);
  for _ = 1 to 50 do
    ignore (G.step g 1.0)
  done;
  Alcotest.(check bool) "sustained pressure flips" true (G.mode g = G.Handshake);
  Alcotest.(check int) "exactly one switch" 1 (G.switches g)

(* [sample] consumes cumulative (monotone) counters and steps on the
   deltas; [parked] is a gauge, not a delta. *)
let test_sample_deltas () =
  let g = G.create ~config:bare () in
  let m = G.sample g ~steal_attempts:100 ~tasks_run:100 ~parked:0 ~num_workers:4 in
  Alcotest.(check bool) "attempt-heavy epoch -> handshake" true (m = G.Handshake);
  (* The counters freeze: a zero-delta epoch reads as zero pressure,
     not as the (huge) cumulative ratio. *)
  let m = G.sample g ~steal_attempts:100 ~tasks_run:100 ~parked:0 ~num_workers:4 in
  Alcotest.(check bool) "quiet epoch falls back -> unsync" true (m = G.Unsync);
  (* A fully parked pool is maximal pressure even with no steal
     traffic at all. *)
  let m = G.sample g ~steal_attempts:100 ~tasks_run:100 ~parked:4 ~num_workers:4 in
  Alcotest.(check bool) "parked pool -> handshake" true (m = G.Handshake)

let test_pressure_pure () =
  let p = G.pressure ~steal_attempts:50 ~tasks_run:100 ~parked:1 ~num_workers:4 in
  Alcotest.(check (float 1e-9)) "attempts/task + parked fraction" 0.75 p;
  (* Degenerate inputs clamp rather than divide by zero. *)
  let p = G.pressure ~steal_attempts:0 ~tasks_run:0 ~parked:0 ~num_workers:0 in
  Alcotest.(check (float 1e-9)) "empty epoch is zero pressure" 0.0 p

(* {2 Pool plumbing} *)

let test_adaptive_rejects_ws () =
  Alcotest.check_raises "classic WS has no exposure policy to switch"
    (Invalid_argument
       "Pool.create: adaptive needs a synchronization-light variant (Uslcws, Signal, \
        Cons or Half), not Ws") (fun () ->
      ignore (S.Pool.create ~num_workers:2 ~variant:S.Ws ~adaptive:true ()))

let test_accessors () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      Alcotest.(check bool) "static pool reports non-adaptive" false (S.Pool.adaptive pool);
      Alcotest.(check bool) "static Signal modes are handshake" true
        (Array.for_all (fun m -> m = G.Handshake) (S.Pool.worker_modes pool)));
  with_pool ~num_workers:2 ~variant:S.Uslcws (fun pool ->
      Alcotest.(check bool) "static Uslcws modes are unsync" true
        (Array.for_all (fun m -> m = G.Unsync) (S.Pool.worker_modes pool)));
  with_pool ~adaptive:true ~num_workers:3 ~variant:S.Uslcws (fun pool ->
      Alcotest.(check bool) "adaptive pool reports adaptive" true (S.Pool.adaptive pool);
      Alcotest.(check int) "one mode per worker" 3
        (Array.length (S.Pool.worker_modes pool));
      (* Before any governor epoch the pool behaves exactly like its
         static variant: initial mode matches. *)
      Alcotest.(check bool) "initial modes match the variant" true
        (Array.for_all (fun m -> m = G.Unsync) (S.Pool.worker_modes pool)))

(* {2 Conservation across forced switches (QCheck)}

   A deliberately twitchy governor — tiny epoch, hair-trigger
   thresholds, no smoothing — forces policy switches mid-job, and the
   metrics ledgers must still balance at quiescence: every park is
   classified as a wake or a spurious wake, and every successful steal
   is classified near or far. The case space is (variant, workers,
   depth), all derived from one integer, so a failure is a one-number
   repro under LCWS_TEST_SEED. *)

let twitchy = { G.alpha = 1.0; lo = 0.01; hi = 0.02; epoch = 8 }

let gen_case = QCheck2.Gen.int_range 1 1_000_000

let case_of_int c =
  let variants = [| S.Uslcws; S.Signal; S.Cons; S.Half |] in
  let variant = variants.(c mod 4) in
  let num_workers = 2 + (c / 4 mod 3) in
  let depth = 13 + (c / 12 mod 4) in
  (variant, num_workers, depth)

let expected_fib =
  [| 0; 1; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610; 987; 1597 |]

let prop_conservation_across_switches c =
  let variant, num_workers, depth = case_of_int c in
  let pool =
    S.Pool.create ~adaptive:true ~adaptive_config:twitchy ~num_workers ~variant ()
  in
  let v = S.Pool.run pool (fun () -> fib depth) in
  S.Pool.shutdown pool;
  let m = S.Pool.metrics pool in
  if v <> expected_fib.(depth) then
    QCheck2.Test.fail_reportf "fib %d = %d under %s (want %d)" depth v
      (S.variant_name variant) expected_fib.(depth)
  else if m.Metrics.parks <> m.Metrics.wakes + m.Metrics.spurious_wakes then
    QCheck2.Test.fail_reportf "parks %d <> wakes %d + spurious %d (%s, p=%d)"
      m.Metrics.parks m.Metrics.wakes m.Metrics.spurious_wakes
      (S.variant_name variant) num_workers
  else if m.Metrics.near_steals + m.Metrics.far_steals <> m.Metrics.steals then
    QCheck2.Test.fail_reportf "near %d + far %d <> steals %d (%s, p=%d)"
      m.Metrics.near_steals m.Metrics.far_steals m.Metrics.steals
      (S.variant_name variant) num_workers
  else true

(* The twitchy governor must actually switch on at least some workload
   in the space — otherwise the property above exercises nothing. *)
let test_switches_actually_happen () =
  let total = ref 0 in
  let c = ref 1 in
  while !total = 0 && !c <= 8 do
    let variant, num_workers, depth = case_of_int !c in
    with_pool ~adaptive:true ~adaptive_config:twitchy ~num_workers ~variant
      (fun pool ->
        ignore (S.Pool.run pool (fun () -> fib depth));
        let m = S.Pool.metrics pool in
        total := !total + m.Metrics.policy_switches);
    incr c
  done;
  Alcotest.(check bool) "the twitchy governor switched at least once" true (!total > 0)

(* {2 Seeded park_storm replay with adaptation on}

   The park_storm preset lands stalls in the park window while signals
   are dropped and delayed — the harshest weather for a policy switch,
   since both request channels are under fire. Two fresh adaptive
   pools replay the identical plan: both compute the right answer and
   both ledgers balance. (The switch *count* is not asserted equal:
   steal timing is real, so the governor's samples differ run to
   run — determinism of the plan, not of the schedule.) *)
let test_park_storm_adaptive_replay () =
  let plan =
    match F.preset ~seed:11L "park_storm" with
    | Some p -> p
    | None -> Alcotest.fail "park_storm preset missing"
  in
  let run_once () =
    with_pool ~fault:plan ~adaptive:true ~adaptive_config:twitchy ~num_workers:4
      ~variant:S.Half (fun pool ->
        let v = S.Pool.run pool (fun () -> fib 17) in
        S.Pool.shutdown pool;
        let m = S.Pool.metrics pool in
        Alcotest.(check int) "every park classified" m.Metrics.parks
          (m.Metrics.wakes + m.Metrics.spurious_wakes);
        Alcotest.(check int) "no outstanding tasks" 0 (S.Pool.outstanding_tasks pool);
        Alcotest.(check int) "no frames in use" 0 (S.Pool.frames_in_use pool);
        (match S.Pool.check_deque_invariants pool with
        | Ok () -> ()
        | Error e -> Alcotest.failf "deque invariants after storm: %s" e);
        v)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check int) "first run computes fib 17" 1597 a;
  Alcotest.(check int) "replay agrees" a b

(* {2 The simulator's adaptive mode} *)

let small_comp = Sim.Comp.pfor ~grain:8 ~n:2_000 (fun i -> 40 + (i mod 13))

let test_sim_adaptive_deterministic () =
  let run () =
    Sim.Engine.run ~machine:Sim.Cost_model.amd32 ~policy:Sim.Engine.Uslcws ~p:8
      ~adaptive:true
      ~adaptive_config:{ G.alpha = 1.0; lo = 0.01; hi = 0.02; epoch = 64 }
      small_comp
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same makespan" a.Sim.Engine.makespan b.Sim.Engine.makespan;
  Alcotest.(check int) "same switches" a.Sim.Engine.policy_switches
    b.Sim.Engine.policy_switches;
  Alcotest.(check int) "work conserved" (Sim.Comp.total_work small_comp)
    a.Sim.Engine.total_work;
  (* Static runs report a zero switch count. *)
  let s = Sim.Engine.run ~machine:Sim.Cost_model.amd32 ~policy:Sim.Engine.Signal ~p:4 small_comp in
  Alcotest.(check int) "static run: no switches" 0 s.Sim.Engine.policy_switches

let test_sim_adaptive_rejects_ws () =
  let bad () =
    ignore
      (Sim.Engine.run ~machine:Sim.Cost_model.amd32 ~policy:Sim.Engine.Ws ~p:4
         ~adaptive:true small_comp)
  in
  match bad () with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "adaptive"
    [
      ( "governor",
        [
          Alcotest.test_case "no flip-flap inside the band" `Quick test_band_no_flip_flap;
          Alcotest.test_case "thresholds are strict" `Quick test_thresholds_strict;
          Alcotest.test_case "EWMA damps one-epoch spikes" `Quick test_ewma_damps_spikes;
          Alcotest.test_case "sample steps on deltas" `Quick test_sample_deltas;
          Alcotest.test_case "pressure is pure and clamped" `Quick test_pressure_pure;
        ] );
      ( "pool",
        [
          Alcotest.test_case "adaptive rejects Ws" `Quick test_adaptive_rejects_ws;
          Alcotest.test_case "accessors and initial modes" `Quick test_accessors;
          Alcotest.test_case "twitchy governor actually switches" `Quick
            test_switches_actually_happen;
        ] );
      ( "conservation",
        [
          qtest ~count:20 "ledgers balance across forced switches" gen_case
            prop_conservation_across_switches;
        ] );
      ( "faults",
        [
          Alcotest.test_case "park_storm replay with adaptation on" `Quick
            test_park_storm_adaptive_replay;
        ] );
      ( "sim",
        [
          Alcotest.test_case "adaptive sim is deterministic" `Quick
            test_sim_adaptive_deterministic;
          Alcotest.test_case "adaptive sim rejects Ws" `Quick test_sim_adaptive_rejects_ws;
        ] );
    ]
