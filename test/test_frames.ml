(* Allocation-light fork/join frames and lazy loop splitting: the
   per-worker frame pool must recycle safely through nesting, exceptions
   and pool growth; the un-stolen fast path must stay inside a fixed
   minor-allocation budget (the point of the frames); and the lazy
   parallel_for must match sequential execution for adversarial
   grain/range combinations while creating O(1) tasks on an unstolen
   single-worker loop. *)

open Lcws
module S = Scheduler

let with_pool ?deque ~num_workers ~variant f =
  let pool = S.Pool.create ?deque ~num_workers ~variant () in
  Fun.protect ~finally:(fun () -> S.Pool.shutdown pool) (fun () -> f pool)

(* {2 Allocation budget} *)

(* The frame pool exists so that an un-stolen fork/join costs no
   per-call join-state allocation. [fork_join_unit] of two constant
   closures must stay within a small fixed budget of minor words per
   call — comfortably under the ~30 words/call of the pre-frame
   implementation (atomic flag + outcome refs + per-call task closure),
   but with headroom over the ideal 0 so the test doesn't chase compiler
   versions. *)
let noop () = ()

let test_unstolen_alloc_budget () =
  with_pool ~num_workers:1 ~variant:S.Signal (fun pool ->
      S.Pool.run pool (fun () ->
          (* Warm up: fault in the frame pool and any lazy setup. *)
          for _ = 1 to 1_000 do
            S.Ops.fork_join_unit noop noop
          done;
          let calls = 10_000 in
          let before = Gc.minor_words () in
          for _ = 1 to calls do
            S.Ops.fork_join_unit noop noop
          done;
          let per_call = (Gc.minor_words () -. before) /. float_of_int calls in
          if per_call > 16.0 then
            Alcotest.failf "un-stolen fork_join_unit allocates %.1f minor words/call (budget 16)"
              per_call))

(* {2 Lazy splitting: task-creation collapse} *)

(* On one worker nothing can steal, so a lazy loop must never push: the
   pre-lazy implementation pushed one task per internal node of the
   splitting tree (~n/grain of them). A tiny slack is allowed in case a
   surrounding computation pushed. *)
let test_p1_loop_pushes_nothing () =
  with_pool ~num_workers:1 ~variant:S.Uslcws (fun pool ->
      S.Pool.reset_metrics pool;
      let hits = ref 0 in
      S.Pool.run pool (fun () ->
          S.Ops.parallel_for ~grain:16 ~start:0 ~stop:100_000 (fun _ -> incr hits));
      Alcotest.(check int) "all iterations ran" 100_000 !hits;
      let m = S.Pool.metrics pool in
      if m.Metrics.pushes > 2 then
        Alcotest.failf "P=1 lazy loop pushed %d tasks (want <= 2)" m.Metrics.pushes;
      Alcotest.(check int) "no splits at P=1" 0 m.Metrics.splits)

(* Under real thieves the loop must split — otherwise nothing
   parallelizes — and every split is counted. *)
let test_multiworker_loop_splits () =
  with_pool ~num_workers:4 ~variant:S.Signal (fun pool ->
      S.Pool.reset_metrics pool;
      let n = 1 lsl 16 in
      let hits = Array.make n 0 in
      S.Pool.run pool (fun () ->
          S.Ops.parallel_for ~grain:64 ~start:0 ~stop:n (fun i ->
              hits.(i) <- hits.(i) + 1;
              (* enough work per iteration that thieves get a window *)
              ignore (Sys.opaque_identity (ref i))));
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "index %d ran %d times" i c)
        hits;
      let m = S.Pool.metrics pool in
      Alcotest.(check bool) "loop split at least once" true (m.Metrics.splits > 0);
      Alcotest.(check bool) "splits were pushed" true (m.Metrics.pushes >= m.Metrics.splits))

(* {2 Lazy parallel_for vs sequential, adversarial shapes} *)

let test_lazy_for_matches_sequential () =
  with_pool ~num_workers:2 ~variant:S.Half (fun pool ->
      List.iter
        (fun (start, stop) ->
          List.iter
            (fun grain ->
              let n = max 0 (stop - start) in
              let expected = ref 0 in
              for i = start to stop - 1 do
                expected := !expected + (i * i)
              done;
              let got = Atomic.make 0 in
              let counted = Atomic.make 0 in
              S.Pool.run pool (fun () ->
                  S.Ops.parallel_for ~grain ~start ~stop (fun i ->
                      ignore (Atomic.fetch_and_add got (i * i));
                      Atomic.incr counted));
              Alcotest.(check int)
                (Printf.sprintf "sum [%d,%d) grain %d" start stop grain)
                !expected (Atomic.get got);
              Alcotest.(check int)
                (Printf.sprintf "count [%d,%d) grain %d" start stop grain)
                n (Atomic.get counted))
            [ 1; 2; 3; 7; 64; 10_000 ])
        [ (0, 0); (5, 5); (7, 6); (0, 1); (0, 37); (-13, 29); (0, 4_097); (3, 10_000) ])

exception Boom of int

(* An exception thrown mid-range propagates out of parallel_for, and the
   pool (in particular the worker frame pools) stays usable after. *)
let test_lazy_for_exception () =
  with_pool ~num_workers:2 ~variant:S.Signal (fun pool ->
      (match
         S.Pool.run pool (fun () ->
             S.Ops.parallel_for ~grain:8 ~start:0 ~stop:10_000 (fun i ->
                 if i = 5_000 then raise (Boom i)))
       with
      | () -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 5000 -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      (* The pool still computes correctly after the failed job. *)
      let total =
        S.Pool.run pool (fun () ->
            Parallel.map_reduce_range (fun i -> i) ( + ) 0 ~lo:0 ~hi:1_000)
      in
      Alcotest.(check int) "pool usable after exception" (999 * 1000 / 2) total)

(* {2 Frame reuse: nesting, exceptions, pool growth} *)

let rec spawn_chain depth =
  if depth = 0 then 1
  else
    let a, b = S.Ops.fork_join (fun () -> spawn_chain (depth - 1)) (fun () -> 1) in
    a + b

(* A depth-500 right-leaning fork chain holds 500 frames live at once on
   one worker — far past the initial pool size, forcing growth mid-use —
   and must still join every child exactly once. *)
let test_deep_nesting_grows_pool () =
  with_pool ~num_workers:1 ~variant:S.Cons (fun pool ->
      let v = S.Pool.run pool (fun () -> spawn_chain 500) in
      Alcotest.(check int) "deep chain joins every child" 501 v)

(* Exception-throwing children: whichever branch fails, the frame must
   recycle and later fork/joins on the same worker must be unaffected.
   Iterated enough times to cycle frames through failure repeatedly. *)
let test_exn_children_recycle_frames () =
  with_pool ~num_workers:2 ~variant:S.Uslcws (fun pool ->
      S.Pool.run pool (fun () ->
          for i = 1 to 200 do
            (* left branch raises; the child's result must be discarded *)
            (match S.Ops.fork_join (fun () -> raise (Boom i)) (fun () -> i) with
            | _ -> Alcotest.fail "left Boom swallowed"
            | exception Boom j -> Alcotest.(check int) "left exn wins" i j);
            (* right (stealable) branch raises *)
            (match S.Ops.fork_join (fun () -> i) (fun () -> raise (Boom (-i))) with
            | _ -> Alcotest.fail "right Boom swallowed"
            | exception Boom j -> Alcotest.(check int) "right exn surfaces" (-i) j);
            (* both raise: the left branch's exception has priority *)
            (match S.Ops.fork_join_unit (fun () -> raise (Boom i)) (fun () -> raise (Boom 0)) with
            | () -> Alcotest.fail "double Boom swallowed"
            | exception Boom j -> Alcotest.(check int) "left exn has priority" i j);
            (* and the frames still work for nested successful joins *)
            let a, b = S.Ops.fork_join (fun () -> spawn_chain 5) (fun () -> spawn_chain 3) in
            Alcotest.(check int) "nested after exceptions" (6 + 4) (a + b)
          done))

(* Multi-worker stress: many concurrent fib-style joins across every
   variant, so stolen children exercise the frame state/result protocol
   under real parallelism. *)
let rec fib n =
  if n < 2 then n
  else
    let a, b = S.Ops.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b

let test_stolen_frames_all_variants () =
  List.iter
    (fun variant ->
      with_pool ~num_workers:4 ~variant (fun pool ->
          let v = S.Pool.run pool (fun () -> fib 22) in
          Alcotest.(check int) (S.variant_name variant ^ " fib") 17711 v))
    S.all_variants

let () =
  Alcotest.run "frames"
    [
      ( "alloc",
        [ Alcotest.test_case "un-stolen fork_join_unit minor words" `Quick test_unstolen_alloc_budget ] );
      ( "lazy_for",
        [
          Alcotest.test_case "P=1 loop pushes nothing" `Quick test_p1_loop_pushes_nothing;
          Alcotest.test_case "multi-worker loop splits" `Quick test_multiworker_loop_splits;
          Alcotest.test_case "matches sequential (adversarial shapes)" `Quick
            test_lazy_for_matches_sequential;
          Alcotest.test_case "exception mid-range" `Quick test_lazy_for_exception;
        ] );
      ( "frame_pool",
        [
          Alcotest.test_case "deep nesting grows the pool" `Quick test_deep_nesting_grows_pool;
          Alcotest.test_case "exception-throwing children recycle" `Quick
            test_exn_children_recycle_frames;
          Alcotest.test_case "stolen frames, all variants" `Quick test_stolen_frames_all_variants;
        ] );
    ]
