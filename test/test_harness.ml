(* Harness: statistics, experiment matrices, figure printers (smoke). *)

open Lcws
module St = Harness.Stats
module X = Harness.Experiments
module E = Sim.Engine
module M = Sim.Cost_model

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* --- stats ------------------------------------------------------------ *)

let test_summary_known () =
  let s = St.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  check (Alcotest.float 1e-9) "min" 1. s.St.min;
  check (Alcotest.float 1e-9) "q1" 2. s.St.q1;
  check (Alcotest.float 1e-9) "median" 3. s.St.median;
  check (Alcotest.float 1e-9) "q3" 4. s.St.q3;
  check (Alcotest.float 1e-9) "max" 5. s.St.max;
  check (Alcotest.float 1e-9) "mean" 3. s.St.mean;
  check Alcotest.int "count" 5 s.St.count

let test_summary_single () =
  let s = St.summarize [ 7. ] in
  check (Alcotest.float 1e-9) "all equal" 7. s.St.q1;
  check (Alcotest.float 1e-9) "median" 7. s.St.median

let test_summary_interpolation () =
  let s = St.summarize [ 1.; 2.; 3.; 4. ] in
  check (Alcotest.float 1e-9) "median interpolated" 2.5 s.St.median;
  check (Alcotest.float 1e-9) "q1" 1.75 s.St.q1

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (St.summarize []))

let prop_summary_ordered =
  qtest "five numbers are ordered"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let s = St.summarize l in
      s.St.min <= s.St.q1 && s.St.q1 <= s.St.median && s.St.median <= s.St.q3
      && s.St.q3 <= s.St.max)

let prop_mean_bounds =
  qtest "mean within [min,max]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let s = St.summarize l in
      s.St.mean >= s.St.min -. 1e-9 && s.St.mean <= s.St.max +. 1e-9)

let test_geomean () =
  check (Alcotest.float 1e-9) "geomean" 2. (St.geomean [ 1.; 4. ]);
  check (Alcotest.float 1e-6) "geomean 3" 3.5568933 (St.geomean [ 2.; 3.; 7.5 ])

let test_fraction_above () =
  check (Alcotest.float 1e-9) "half" 0.5 (St.fraction_above 1.0 [ 0.5; 1.5 ]);
  check (Alcotest.float 1e-9) "strict" 0. (St.fraction_above 1.0 [ 1.0; 1.0 ]);
  check (Alcotest.float 1e-9) "empty" 0. (St.fraction_above 1.0 [])

let test_sparkbox () =
  let s = St.summarize [ 0.2; 0.4; 0.5; 0.6; 0.8 ] in
  let box = St.sparkbox ~lo:0. ~hi:1. s in
  check Alcotest.int "fixed width" 41 (String.length box);
  Alcotest.(check bool) "has median" true (String.contains box '|');
  Alcotest.(check bool) "has quartile body" true (String.contains box '#')

let test_sparkbox_clamps () =
  let s = St.summarize [ -10.; 0.5; 20. ] in
  let box = St.sparkbox ~lo:0. ~hi:1. s in
  check Alcotest.int "clamped width" 41 (String.length box)

(* --- experiments -------------------------------------------------------- *)

let tiny_matrix =
  lazy
    (X.build ~machine:M.amd32 ~policies:[ E.Ws; E.Uslcws; E.Signal ] ~ps:[ 1; 2 ] ~scale:0.02
       ~quantum:400 ())

let test_matrix_get () =
  let m = Lazy.force tiny_matrix in
  let s = X.get m ~bench:"integerSort" ~instance:"randomSeq_int" ~policy:E.Ws ~p:1 in
  Alcotest.(check bool) "ran" true (s.E.makespan > 0);
  Alcotest.check_raises "missing p"
    (Invalid_argument "Experiments.get: no run for integerSort/randomSeq_int ws P=7") (fun () ->
      ignore (X.get m ~bench:"integerSort" ~instance:"randomSeq_int" ~policy:E.Ws ~p:7))

let test_matrix_speedup_ws_is_1 () =
  let m = Lazy.force tiny_matrix in
  List.iter
    (fun (bench, instance) ->
      check (Alcotest.float 1e-9) "ws vs ws" 1. (X.speedup m ~bench ~instance ~policy:E.Ws ~p:2))
    (X.configs m)

let test_matrix_speedups_at () =
  let m = Lazy.force tiny_matrix in
  let sps = X.speedups_at m ~policy:E.Uslcws ~p:2 in
  check Alcotest.int "one per config" (List.length (X.configs m)) (List.length sps);
  Alcotest.(check bool) "all positive" true (List.for_all (fun s -> s > 0.) sps)

let test_matrix_ratio () =
  let m = Lazy.force tiny_matrix in
  let ratios = X.ratio_vs m ~policy:E.Uslcws ~baseline:E.Ws ~p:2 (fun s -> s.E.fences) in
  Alcotest.(check bool) "fence ratios tiny" true (List.for_all (fun r -> r < 0.5) ratios)

let test_csv_export () =
  let m = Lazy.force tiny_matrix in
  let csv = X.to_csv m in
  let lines = String.split_on_char '\n' csv in
  (match lines with
  | header :: _ -> check Alcotest.string "header" X.csv_header header
  | [] -> Alcotest.fail "empty csv");
  (* one row per (config, p, policy-present) + header + trailing newline *)
  let configs = List.length (X.configs m) in
  let expected_rows = configs * 2 (* ps *) * 3 (* policies built *) in
  check Alcotest.int "row count" (expected_rows + 2) (List.length lines);
  let cols = String.split_on_char ',' X.csv_header in
  List.iter
    (fun line ->
      if line <> "" then
        check Alcotest.int "column count" (List.length cols)
          (List.length (String.split_on_char ',' line)))
    lines

let test_unstolen_range () =
  let m = Lazy.force tiny_matrix in
  let u = X.unstolen_at m ~policy:E.Uslcws ~p:2 in
  Alcotest.(check bool) "fractions in [0,1]" true (List.for_all (fun f -> f >= 0. && f <= 1.) u)

(* --- figures smoke -------------------------------------------------------- *)

let test_figures_smoke () =
  (* Tiny scale: just prove every printer runs and emits output. *)
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let ctx = Harness.Figures.make_ctx ~scale:0.02 ~quantum:800 () in
  Harness.Figures.table1 ppf;
  Harness.Figures.fig3 ctx ppf;
  Harness.Figures.fig5 ctx ppf;
  Harness.Figures.summary ctx ppf;
  Harness.Figures.ablation ctx ppf;
  Harness.Figures.sensitivity ctx ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "output mentions %S" needle) true (contains needle))
    [ "Table 1"; "AMD32"; "Figure 3"; "Figure 5"; "Signal" ]

let () =
  Alcotest.run "harness"
    [
      ( "stats",
        [
          Alcotest.test_case "known summary" `Quick test_summary_known;
          Alcotest.test_case "single value" `Quick test_summary_single;
          Alcotest.test_case "interpolation" `Quick test_summary_interpolation;
          Alcotest.test_case "empty raises" `Quick test_summary_empty;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "fraction_above" `Quick test_fraction_above;
          Alcotest.test_case "sparkbox" `Quick test_sparkbox;
          Alcotest.test_case "sparkbox clamps" `Quick test_sparkbox_clamps;
          prop_summary_ordered;
          prop_mean_bounds;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "get" `Quick test_matrix_get;
          Alcotest.test_case "ws speedup is 1" `Quick test_matrix_speedup_ws_is_1;
          Alcotest.test_case "speedups_at" `Quick test_matrix_speedups_at;
          Alcotest.test_case "fence ratio" `Quick test_matrix_ratio;
          Alcotest.test_case "unstolen range" `Quick test_unstolen_range;
          Alcotest.test_case "csv export" `Quick test_csv_export;
        ] );
      ("figures", [ Alcotest.test_case "printers run" `Slow test_figures_smoke ]);
    ]
