(* The external-submission injector (Sched_protocol.Injector): the
   lock-free multi-producer queue with an atomic close that the pool's
   submit/shutdown protocol rests on. Until now it was covered only
   indirectly through test_future's submit tests; here it is tested
   directly — a sequential model-conformance property, multi-domain
   producers racing a drainer, size-probe consistency, and the
   close/refusal contract (the shutdown linearization point: every
   accepted entry is either drained or returned by [close], and a
   refused push is the submitter's to dispose of). *)

open Lcws
module I = Injector

let qtest ?(count = 200) name gen prop = Seedutil.qtest ~count name gen prop

(* {2 Sequential model conformance}

   Any single-domain push/pop sequence behaves as a FIFO queue: pops
   come out in push order, [None] exactly when the model is empty. *)

let prop_model_conformance ops =
  let q = I.create () in
  let model = Queue.create () in
  let next = ref 0 in
  List.for_all
    (fun op ->
      if op then begin
        let x = !next in
        incr next;
        Queue.add x model;
        I.push q x
      end
      else
        match (I.pop q, Queue.take_opt model) with
        | None, None -> true
        | Some x, Some y -> x = y
        | Some _, None | None, Some _ -> false)
    ops

(* {2 Size-probe consistency}

   After any sequence: [size] equals the model's length, [is_empty]
   agrees with [size = 0], and both are non-negative by construction. *)

let prop_size_probe ops =
  let q = I.create () in
  let expected = ref 0 in
  List.for_all
    (fun op ->
      (if op then begin
         ignore (I.push q !expected);
         incr expected
       end
       else
         match I.pop q with
         | Some _ ->
             decr expected;
             ()
         | None -> ());
      I.size q = !expected && I.is_empty q = (!expected = 0))
    ops

(* {2 Multi-domain submit vs drain}

   [producers] domains each push an id-tagged run of entries while the
   main domain drains; after joining the producers the drain finishes
   quiescently. Oracle: exactly-once over all entries, and each
   producer's entries appear in its push order (the queue is FIFO per
   producer; cross-producer order is whatever the race decided). *)

let test_mpsc_drain () =
  let producers = 4 and per = 100 in
  let q = I.create () in
  let tag p i = (p * 1000) + i in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              if not (I.push q (tag p i)) then failwith "push refused on an open injector"
            done))
  in
  let got = ref [] in
  let remaining = ref (producers * per) in
  while !remaining > 0 do
    match I.pop q with
    | Some x ->
        got := x :: !got;
        decr remaining
    | None -> Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  let order = List.rev !got in
  Alcotest.(check int) "nothing lost or duplicated" (producers * per) (List.length order);
  Alcotest.(check bool)
    "all entries present" true
    (List.sort compare order
    = List.sort compare (List.concat_map (fun p -> List.init per (tag p)) (List.init producers Fun.id)));
  List.iteri
    (fun p () ->
      let mine = List.filter (fun x -> x / 1000 = p) order in
      Alcotest.(check bool)
        (Printf.sprintf "producer %d FIFO" p)
        true
        (mine = List.sort compare mine))
    (List.init producers (fun _ -> ()))

(* {2 Close: the shutdown linearization point} *)

(* Quiescent contract: close returns the undrained entries oldest
   first, later pushes are refused, pops find nothing, and a second
   close is a no-op. *)
let test_close_contract () =
  let q = I.create () in
  List.iter (fun x -> ignore (I.push q x)) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "drained one" (Some 1) (I.pop q);
  Alcotest.(check (list int)) "close returns the rest, oldest first" [ 2; 3; 4 ] (I.close q);
  Alcotest.(check bool) "closed" true (I.is_closed q);
  Alcotest.(check bool) "push refused after close" false (I.push q 5);
  Alcotest.(check (option int)) "pop after close finds nothing" None (I.pop q);
  Alcotest.(check (list int)) "close is idempotent" [] (I.close q);
  Alcotest.(check int) "closed size" 0 (I.size q)

(* Racing pushes against a concurrent close: every accepted push is
   either popped by the drain or returned by [close]; every refused
   push is in neither — the exactly-once/refused dichotomy the pool's
   submit protocol needs so no future is stranded. *)
let test_close_race () =
  let rounds = 50 in
  for _ = 1 to rounds do
    let q = I.create () in
    let n = 64 in
    let accepted = Array.make n false in
    let producer =
      Domain.spawn (fun () ->
          for i = 0 to n - 1 do
            accepted.(i) <- I.push q i
          done)
    in
    let drained = ref [] in
    for _ = 1 to 8 do
      match I.pop q with Some x -> drained := x :: !drained | None -> Domain.cpu_relax ()
    done;
    let closed = I.close q in
    Domain.join producer;
    Alcotest.(check bool) "post-close pushes refused" true (not (I.push q n));
    let settled = List.sort compare (!drained @ closed) in
    let expected =
      List.sort compare
        (List.filteri (fun i _ -> accepted.(i)) (List.init n Fun.id))
    in
    Alcotest.(check (list int)) "accepted entries settle exactly once" expected settled
  done

let () =
  Alcotest.run "injector"
    [
      ( "model",
        [
          qtest "sequential push/pop matches the FIFO model"
            QCheck2.Gen.(list bool)
            prop_model_conformance;
          qtest "size probe stays consistent" QCheck2.Gen.(list bool) prop_size_probe;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "multi-domain submit vs drain" `Quick test_mpsc_drain;
          Alcotest.test_case "close races a producer" `Quick test_close_race;
        ] );
      ("close", [ Alcotest.test_case "quiescent close contract" `Quick test_close_contract ]);
    ]
