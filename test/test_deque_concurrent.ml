(* Concurrent stress tests: real domains hammer the lock-free deques and
   we verify the fundamental safety property — every pushed task is
   consumed exactly once, none lost, none duplicated. On this host the
   domains are timesliced over one core, which still exercises all
   interleavings at context-switch boundaries. *)

open Lcws
open Lcws.Deque_intf

let consume_exactly_once ~name ~total (taken : int array array) =
  let seen = Array.make total 0 in
  Array.iter (Array.iter (fun v -> if v >= 0 then seen.(v) <- seen.(v) + 1)) taken;
  Array.iteri
    (fun i c ->
      if c <> 1 then Alcotest.failf "%s: item %d consumed %d times" name i c)
    seen

(* Owner pushes [total] items and pops; [nthieves] thieves steal. For the
   split deque the owner periodically exposes, mimicking the scheduler. *)
let split_stress ~nthieves ~total () =
  let m = Metrics.create () in
  let d = Split_deque.create ~capacity:(total + 8) ~dummy:(-1) ~metrics:m () in
  let stop = Atomic.make false in
  let thief_results = Array.make nthieves [||] in
  let thieves =
    List.init nthieves (fun t ->
        Domain.spawn (fun () ->
            let tm = Metrics.create () in
            let acc = ref [] in
            while not (Atomic.get stop) do
              (match Split_deque.pop_top d ~metrics:tm with
              | Stolen v -> acc := v :: !acc
              | Empty | Abort | Private_work -> ());
              Domain.cpu_relax ()
            done;
            thief_results.(t) <- Array.of_list !acc))
  in
  let owner_got = ref [] in
  let pushed = ref 0 in
  let popped = ref 0 in
  while !popped + List.length !owner_got < total do
    (* interleave pushes, exposures and pops *)
    if !pushed < total then begin
      Split_deque.push_bottom d !pushed;
      incr pushed;
      if !pushed mod 3 = 0 then
        ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one)
    end;
    if !pushed mod 2 = 0 || !pushed = total then begin
      match Split_deque.pop_bottom d with
      | Some v -> owner_got := v :: !owner_got
      | None -> (
          match Split_deque.pop_public_bottom d with
          | Some v -> owner_got := v :: !owner_got
          | None -> if !pushed >= total then popped := total (* all stolen *))
    end;
    (* Termination: everything pushed and the deque is drained. *)
    if !pushed >= total && Split_deque.is_empty d then popped := total
  done;
  (* Drain leftovers *)
  let rec drain () =
    match Split_deque.pop_bottom d with
    | Some v ->
        owner_got := v :: !owner_got;
        drain ()
    | None -> (
        match Split_deque.pop_public_bottom d with
        | Some v ->
            owner_got := v :: !owner_got;
            drain ()
        | None -> ())
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let all = Array.append [| Array.of_list !owner_got |] thief_results in
  consume_exactly_once ~name:"split" ~total all

let cl_stress ~nthieves ~total () =
  let m = Metrics.create () in
  let d = Chase_lev.create ~capacity:(total + 8) ~dummy:(-1) ~metrics:m () in
  let stop = Atomic.make false in
  let thief_results = Array.make nthieves [||] in
  let thieves =
    List.init nthieves (fun t ->
        Domain.spawn (fun () ->
            let tm = Metrics.create () in
            let acc = ref [] in
            while not (Atomic.get stop) do
              (match Chase_lev.steal d ~metrics:tm with
              | Stolen v -> acc := v :: !acc
              | Empty | Abort | Private_work -> ());
              Domain.cpu_relax ()
            done;
            thief_results.(t) <- Array.of_list !acc))
  in
  let owner_got = ref [] in
  for i = 0 to total - 1 do
    Chase_lev.push_bottom d i;
    if i mod 2 = 1 then
      match Chase_lev.pop_bottom d with
      | Some v -> owner_got := v :: !owner_got
      | None -> ()
  done;
  let rec drain () =
    match Chase_lev.pop_bottom d with
    | Some v ->
        owner_got := v :: !owner_got;
        drain ()
    | None -> if not (Chase_lev.is_empty d) then drain ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let all = Array.append [| Array.of_list !owner_got |] thief_results in
  consume_exactly_once ~name:"chase_lev" ~total all

(* The Section 4 race scenario, concurrently: thieves keep stealing while
   the owner uses the signal-safe pop and exposes from "the handler"
   (same domain, interleaved — the shape our runtime guarantees). *)
let split_signal_safe_stress ~nthieves ~total () =
  let m = Metrics.create () in
  let d = Split_deque.create ~capacity:(total + 8) ~dummy:(-1) ~metrics:m () in
  let stop = Atomic.make false in
  let targeted = Atomic.make false in
  let thief_results = Array.make nthieves [||] in
  let thieves =
    List.init nthieves (fun t ->
        Domain.spawn (fun () ->
            let tm = Metrics.create () in
            let acc = ref [] in
            while not (Atomic.get stop) do
              (match Split_deque.pop_top d ~metrics:tm with
              | Stolen v -> acc := v :: !acc
              | Private_work -> Atomic.set targeted true
              | Empty | Abort -> ());
              Domain.cpu_relax ()
            done;
            thief_results.(t) <- Array.of_list !acc))
  in
  let owner_got = ref [] in
  for i = 0 to total - 1 do
    Split_deque.push_bottom d i;
    (* "Handler" runs at poll points on the owner. *)
    if Atomic.get targeted then begin
      Atomic.set targeted false;
      ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one)
    end;
    if i mod 2 = 1 then begin
      match Split_deque.pop_bottom_signal_safe d with
      | Some v -> owner_got := v :: !owner_got
      | None -> (
          match Split_deque.pop_public_bottom d with
          | Some v -> owner_got := v :: !owner_got
          | None -> ())
    end
  done;
  let rec drain () =
    match Split_deque.pop_bottom_signal_safe d with
    | Some v ->
        owner_got := v :: !owner_got;
        drain ()
    | None -> (
        match Split_deque.pop_public_bottom d with
        | Some v ->
            owner_got := v :: !owner_got;
            drain ()
        | None -> if not (Split_deque.is_empty d) then drain ())
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let all = Array.append [| Array.of_list !owner_got |] thief_results in
  consume_exactly_once ~name:"split-signal-safe" ~total all

(* Forces the §4 fall-through on every owner pop: each pushed item is
   exposed immediately, so the private part is empty when
   [pop_bottom_signal_safe] runs (decrement-first miss) and the follow-up
   [pop_public_bottom] must repair [bot] — under thieves racing for the
   same public task. A failed repair shows up as a corrupted size
   invariant or a lost/duplicated item. *)
let split_signal_safe_repair ~nthieves ~total () =
  let m = Metrics.create () in
  let d = Split_deque.create ~capacity:(total + 8) ~dummy:(-1) ~metrics:m () in
  let stop = Atomic.make false in
  let thief_results = Array.make nthieves [||] in
  let thieves =
    List.init nthieves (fun t ->
        Domain.spawn (fun () ->
            let tm = Metrics.create () in
            let acc = ref [] in
            while not (Atomic.get stop) do
              (match Split_deque.pop_top d ~metrics:tm with
              | Stolen v -> acc := v :: !acc
              | Empty | Abort | Private_work -> ());
              Domain.cpu_relax ()
            done;
            thief_results.(t) <- Array.of_list !acc))
  in
  let owner_got = ref [] in
  let check_sizes () =
    let s = Split_deque.size d in
    let pub = Split_deque.public_size d in
    let priv = Split_deque.private_size d in
    if s < 0 || pub < 0 || priv < 0 || s > total then
      Alcotest.failf "split-repair: corrupt sizes size=%d public=%d private=%d" s pub priv
  in
  for i = 0 to total - 1 do
    Split_deque.push_bottom d i;
    (* Expose straight away: the private part is empty again... *)
    ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one);
    (* ...so this decrements [bot] below the split point and misses, *)
    (match Split_deque.pop_bottom_signal_safe d with
    | Some v -> owner_got := v :: !owner_got
    | None -> (
        (* ...and this must repair [bot] whether or not it wins the race. *)
        match Split_deque.pop_public_bottom d with
        | Some v -> owner_got := v :: !owner_got
        | None -> ()));
    check_sizes ()
  done;
  let rec drain () =
    match Split_deque.pop_bottom_signal_safe d with
    | Some v ->
        owner_got := v :: !owner_got;
        drain ()
    | None -> (
        match Split_deque.pop_public_bottom d with
        | Some v ->
            owner_got := v :: !owner_got;
            drain ()
        | None -> if not (Split_deque.is_empty d) then drain ())
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let all = Array.append [| Array.of_list !owner_got |] thief_results in
  consume_exactly_once ~name:"split-repair" ~total all

let () =
  Alcotest.run "deque_concurrent"
    [
      ( "stress",
        [
          Alcotest.test_case "split: 1 thief" `Quick (split_stress ~nthieves:1 ~total:2000);
          Alcotest.test_case "split: 3 thieves" `Quick (split_stress ~nthieves:3 ~total:2000);
          Alcotest.test_case "chase-lev: 1 thief" `Quick (cl_stress ~nthieves:1 ~total:2000);
          Alcotest.test_case "chase-lev: 3 thieves" `Quick (cl_stress ~nthieves:3 ~total:2000);
          Alcotest.test_case "split signal-safe: 2 thieves" `Quick
            (split_signal_safe_stress ~nthieves:2 ~total:2000);
          Alcotest.test_case "split signal-safe repair: 1 thief" `Quick
            (split_signal_safe_repair ~nthieves:1 ~total:2000);
          Alcotest.test_case "split signal-safe repair: 3 thieves" `Quick
            (split_signal_safe_repair ~nthieves:3 ~total:2000);
        ] );
    ]
