(* Property tests for the size-accounting invariants of the unified
   DEQUE API, across all four implementations: after any legal operation
   sequence, [private_size + public_size = size], every size estimate is
   non-negative, [is_empty] agrees with [size], and [clear] zeroes all
   three — including right after a [Deque_full] and right after the
   Section 4 signal-safe-pop/public-pop pair.

   On top of the size split, the sequences thread an exactly-once ledger:
   every task a consuming operation returns (pops, steals and
   [steal_many] batches alike) must still be live in the deque, and a
   final drain must account for every task ever pushed — no loss, no
   duplication. [steal_many] additionally must respect the steal-half
   contract: at most [max 1 (available / 2)] tasks per episode, never
   more than [limit], never more than [into] can hold, and [~limit:1]
   degenerates to the classical single steal. *)

open Lcws
open Lcws.Deque_intf

(* Seed plumbing unified behind LCWS_TEST_SEED (see seedutil.ml). *)
let qtest ?(count = 500) name gen prop = Seedutil.qtest ~count name gen prop

(* Operations are drawn as small ints so shrinking stays useful. The
   owner contract is respected by construction: [pop_public_bottom] is
   only issued through the signal-safe pair (a standalone one is illegal
   while private work exists — it is the Section 4 repair path and
   resets [bot]). *)
type op =
  | Push
  | Pop
  | Pop_safe_pair
  | Steal
  | Steal_many of int  (* the batch limit *)
  | Expose of exposure_policy
  | Clear

let op_of_int = function
  | 0 | 1 | 2 | 3 -> Push
  | 4 | 5 -> Pop
  | 6 -> Pop_safe_pair
  | 7 | 8 -> Steal
  | 9 -> Expose Expose_one
  | 10 -> Expose Expose_conservative
  | 11 -> Expose Expose_half
  | 12 -> Steal_many 4
  | 13 -> Steal_many 1
  | _ -> Clear

let gen_ops = QCheck2.Gen.(list_size (int_range 0 80) (int_range 0 14))

let rec remove_first x = function
  | [] -> []
  | y :: rest -> if x = y then rest else y :: remove_first x rest

let run_ops (type d) (module D : DEQUE with type elt = int and type t = d) ops =
  let owner_m = Metrics.create () and thief_m = Metrics.create () in
  let d = D.create ~capacity:8 ~dummy:0 ~metrics:owner_m () in
  let counter = ref 0 in
  (* The exactly-once ledger: ids currently inside the deque. *)
  let live = ref [] in
  let consume tag x =
    if List.mem x !live then live := remove_first x !live
    else
      QCheck2.Test.fail_reportf "%s: %s returned task %d that is not in the deque (duplicated?)"
        D.name tag x
  in
  let invariants tag =
    let priv = D.private_size d and pub = D.public_size d and size = D.size d in
    if priv < 0 || pub < 0 || size < 0 then
      QCheck2.Test.fail_reportf "%s: negative size after %s: %d/%d/%d" D.name tag priv pub size;
    if priv + pub <> size then
      QCheck2.Test.fail_reportf "%s: size split broken after %s: %d + %d <> %d" D.name tag priv
        pub size;
    if D.is_empty d <> (size = 0) then
      QCheck2.Test.fail_reportf "%s: is_empty disagrees with size %d after %s" D.name size tag;
    if size <> List.length !live then
      QCheck2.Test.fail_reportf "%s: size %d disagrees with the %d live tasks after %s" D.name
        size (List.length !live) tag
  in
  List.iter
    (fun i ->
      (match op_of_int i with
      | Push -> (
          incr counter;
          try
            D.push_bottom d !counter;
            live := !counter :: !live
          with Deque_full -> invariants "Deque_full")
      | Pop -> ( match D.pop_bottom d with Some x -> consume "pop_bottom" x | None -> ())
      | Pop_safe_pair -> (
          (* The Section 4 contract: a failed decrement-first pop is
             always followed by the public fallback, which repairs. *)
          match D.pop_bottom_signal_safe d with
          | Some x -> consume "pop_bottom_signal_safe" x
          | None -> (
              match D.pop_public_bottom d with
              | Some x -> consume "pop_public_bottom" x
              | None -> ()))
      | Steal -> (
          match D.pop_top d ~metrics:thief_m with
          | Stolen x -> consume "pop_top" x
          | Empty | Abort | Private_work -> ())
      | Steal_many limit -> (
          let size_before = D.size d in
          let into = Array.make limit (-1) in
          match D.steal_many d ~limit ~into ~metrics:thief_m with
          | Stolen first, n ->
              (* The steal-half contract: one episode takes at most half
                 of what a thief could see, capped by [limit] and by the
                 buffer, and a [~limit:1] episode is a classical steal. *)
              if 1 + n > max 1 (size_before / 2) then
                QCheck2.Test.fail_reportf "%s: steal_many took %d of %d (more than half)"
                  D.name (1 + n) size_before;
              if 1 + n > limit then
                QCheck2.Test.fail_reportf "%s: steal_many took %d with limit %d" D.name (1 + n)
                  limit;
              if n > Array.length into then
                QCheck2.Test.fail_reportf "%s: steal_many overflowed into (%d > %d)" D.name n
                  (Array.length into);
              if limit = 1 && n <> 0 then
                QCheck2.Test.fail_reportf "%s: steal_many ~limit:1 moved %d extras" D.name n;
              consume "steal_many first" first;
              (* Batches come off the top oldest-first: ids are pushed in
                 increasing order and never reused, so the kept-first and
                 the extras must be strictly increasing. *)
              let prev = ref first in
              for k = 0 to n - 1 do
                consume "steal_many extra" into.(k);
                if into.(k) <= !prev then
                  QCheck2.Test.fail_reportf "%s: steal_many batch out of FIFO order (%d after %d)"
                    D.name into.(k) !prev;
                prev := into.(k)
              done
          | (Empty | Abort | Private_work), n ->
              if n <> 0 then
                QCheck2.Test.fail_reportf "%s: steal_many moved %d extras without stealing"
                  D.name n)
      | Expose policy -> ignore (D.update_public_bottom d ~policy)
      | Clear ->
          D.clear d;
          live := [];
          if D.size d <> 0 || D.private_size d <> 0 || D.public_size d <> 0 then
            QCheck2.Test.fail_reportf "%s: clear left a non-zero size" D.name);
      invariants "op")
    ops;
  (* Final drain: everything still live must come back out exactly once —
     owner side first (private then public), then steals for whatever a
     thief could still reach. *)
  let rec drain_private () =
    match D.pop_bottom d with
    | Some x ->
        consume "drain pop_bottom" x;
        drain_private ()
    | None -> ()
  in
  let rec drain_public () =
    match D.pop_public_bottom d with
    | Some x ->
        consume "drain pop_public_bottom" x;
        drain_public ()
    | None -> ()
  in
  let rec drain_steals () =
    match D.pop_top d ~metrics:thief_m with
    | Stolen x ->
        consume "drain pop_top" x;
        drain_steals ()
    | Abort -> drain_steals ()
    | Empty | Private_work -> ()
  in
  drain_private ();
  drain_public ();
  drain_steals ();
  if !live <> [] then
    QCheck2.Test.fail_reportf "%s: %d tasks lost after full drain" D.name (List.length !live);
  true

module Split_d = Split_deque.Deque (struct
  type t = int
end)

module Chase_d = Chase_lev.Deque (struct
  type t = int
end)

module Lace_d = Lace_deque.Deque (struct
  type t = int
end)

module Private_d = Private_deque.Deque (struct
  type t = int
end)

let () =
  Alcotest.run "deque_props"
    [
      ( "size invariants",
        [
          qtest "split" gen_ops (run_ops (module Split_d));
          qtest "chase_lev" gen_ops (run_ops (module Chase_d));
          qtest "lace" gen_ops (run_ops (module Lace_d));
          qtest "private" gen_ops (run_ops (module Private_d));
        ] );
    ]
