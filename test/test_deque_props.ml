(* Property tests for the size-accounting invariants of the unified
   DEQUE API, across all four implementations: after any legal operation
   sequence, [private_size + public_size = size], every size estimate is
   non-negative, [is_empty] agrees with [size], and [clear] zeroes all
   three — including right after a [Deque_full] and right after the
   Section 4 signal-safe-pop/public-pop pair. *)

open Lcws
open Lcws.Deque_intf

(* Seed plumbing unified behind LCWS_TEST_SEED (see seedutil.ml). *)
let qtest ?(count = 500) name gen prop = Seedutil.qtest ~count name gen prop

(* Operations are drawn as small ints so shrinking stays useful. The
   owner contract is respected by construction: [pop_public_bottom] is
   only issued through the signal-safe pair (a standalone one is illegal
   while private work exists — it is the Section 4 repair path and
   resets [bot]). *)
type op = Push | Pop | Pop_safe_pair | Steal | Expose of exposure_policy | Clear

let op_of_int = function
  | 0 | 1 | 2 | 3 -> Push
  | 4 | 5 -> Pop
  | 6 -> Pop_safe_pair
  | 7 | 8 -> Steal
  | 9 -> Expose Expose_one
  | 10 -> Expose Expose_conservative
  | 11 -> Expose Expose_half
  | _ -> Clear

let gen_ops = QCheck2.Gen.(list_size (int_range 0 80) (int_range 0 12))

let run_ops (type d) (module D : DEQUE with type elt = int and type t = d) ops =
  let owner_m = Metrics.create () and thief_m = Metrics.create () in
  let d = D.create ~capacity:8 ~dummy:0 ~metrics:owner_m () in
  let counter = ref 0 in
  let invariants tag =
    let priv = D.private_size d and pub = D.public_size d and size = D.size d in
    if priv < 0 || pub < 0 || size < 0 then
      QCheck2.Test.fail_reportf "%s: negative size after %s: %d/%d/%d" D.name tag priv pub size;
    if priv + pub <> size then
      QCheck2.Test.fail_reportf "%s: size split broken after %s: %d + %d <> %d" D.name tag priv
        pub size;
    if D.is_empty d <> (size = 0) then
      QCheck2.Test.fail_reportf "%s: is_empty disagrees with size %d after %s" D.name size tag
  in
  List.iter
    (fun i ->
      (match op_of_int i with
      | Push -> (
          incr counter;
          try D.push_bottom d !counter
          with Deque_full -> invariants "Deque_full")
      | Pop -> ignore (D.pop_bottom d)
      | Pop_safe_pair -> (
          (* The Section 4 contract: a failed decrement-first pop is
             always followed by the public fallback, which repairs. *)
          match D.pop_bottom_signal_safe d with
          | Some _ -> ()
          | None -> ignore (D.pop_public_bottom d))
      | Steal -> ignore (D.pop_top d ~metrics:thief_m)
      | Expose policy -> ignore (D.update_public_bottom d ~policy)
      | Clear ->
          D.clear d;
          if D.size d <> 0 || D.private_size d <> 0 || D.public_size d <> 0 then
            QCheck2.Test.fail_reportf "%s: clear left a non-zero size" D.name);
      invariants "op")
    ops;
  true

module Split_d = Split_deque.Deque (struct
  type t = int
end)

module Chase_d = Chase_lev.Deque (struct
  type t = int
end)

module Lace_d = Lace_deque.Deque (struct
  type t = int
end)

module Private_d = Private_deque.Deque (struct
  type t = int
end)

let () =
  Alcotest.run "deque_props"
    [
      ( "size invariants",
        [
          qtest "split" gen_ops (run_ops (module Split_d));
          qtest "chase_lev" gen_ops (run_ops (module Chase_d));
          qtest "lace" gen_ops (run_ops (module Lace_d));
          qtest "private" gen_ops (run_ops (module Private_d));
        ] );
    ]
