(* Fault-injection layer and exception-safe scheduler: seeded plans
   round-trip and replay deterministically; random (variant x deque x
   plan x DAG) chaos cases match the sequential oracle or raise exactly
   the planned exception with every invariant intact; the five variants
   survive signal-storm and stall plans; and exceptions anywhere — a
   parallel_for body, the stolen half of a fork_join, a shutdown racing
   the job — unwind with empty deques and a fully recycled frame pool. *)

open Lcws
module S = Scheduler
module F = Fault

(* Seed plumbing unified behind LCWS_TEST_SEED (see seedutil.ml). *)
let qtest ?(count = 100) name gen prop = Seedutil.qtest ~count name gen prop

let with_pool ?deque ?fault ?trace ~num_workers ~variant f =
  let pool = S.Pool.create ?deque ?fault ?trace ~num_workers ~variant () in
  Fun.protect ~finally:(fun () -> S.Pool.shutdown pool) (fun () -> f pool)

(* Quiescent integrity: nothing left in any deque, every join frame back
   in its pool, size accessors coherent. Checked after every exceptional
   unwind — this is the heart of the exception-safety contract. *)
let quiescent ?(tag = "") pool =
  let tag = if tag = "" then "" else tag ^ ": " in
  Alcotest.(check int) (tag ^ "no outstanding tasks") 0 (S.Pool.outstanding_tasks pool);
  Alcotest.(check int) (tag ^ "no frames in use") 0 (S.Pool.frames_in_use pool);
  match S.Pool.check_deque_invariants pool with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%sdeque invariants: %s" tag m

let noop () = ()

let rec fib n =
  if n < 2 then n
  else
    let a, b = S.Ops.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b

exception Boom of int

(* {2 Plans: encoding round-trip} *)

(* Probabilities are drawn as eighths so the textual encoding is exact. *)
let gen_plan_ints = QCheck2.Gen.(list_size (return 10) (int_range 0 8))

let plan_of_ints l =
  match l with
  | [ a; b; c; d; e; f; g; h; i; j ] ->
      let prob k = float_of_int (k mod 5) /. 8.0 in
      let stall_prob = prob b and delay_signal_prob = prob e in
      {
        F.seed = Int64.of_int ((a * 8191) + b + 1);
        stall_prob;
        (* A zero-probability fault's polls field is rightly dropped by
           the encoding, so only pair it with a live probability. *)
        stall_polls = (if stall_prob = 0. then F.no_faults.F.stall_polls else 1 + c);
        drop_signal_prob = prob d;
        delay_signal_prob;
        delay_polls = (if delay_signal_prob = 0. then F.no_faults.F.delay_polls else 1 + f);
        steal_fail_prob = prob g;
        inject_exn = (if h mod 3 = 0 then Some (h mod 4, 1 + i) else None);
        cancel_at = (if i mod 3 = 0 then Some (j mod 4, 1 + (j * 7)) else None);
      }
  | _ -> F.no_faults

let prop_plan_roundtrip l =
  let p = plan_of_ints l in
  match F.plan_of_string (F.plan_to_string p) with
  | Ok p' ->
      if p = p' then true
      else
        QCheck2.Test.fail_reportf "round-trip changed the plan: %s -> %s" (F.plan_to_string p)
          (F.plan_to_string p')
  | Error m -> QCheck2.Test.fail_reportf "%S did not parse back: %s" (F.plan_to_string p) m

let test_presets_roundtrip () =
  List.iter
    (fun name ->
      match F.preset ~seed:17L name with
      | None -> Alcotest.failf "preset %S missing" name
      | Some p -> (
          match F.plan_of_string (F.plan_to_string p) with
          | Ok p' -> Alcotest.(check bool) (name ^ " round-trips") true (p = p')
          | Error m -> Alcotest.failf "preset %s: %s" name m))
    F.preset_names

(* {2 Random chaos cases (the QCheck property)}

   Everything about a case — scheduler variant, deque, fault plan and
   workload DAG — is derived from one integer through a xoshiro stream,
   so a shrunk counterexample is a one-number repro and the failure
   message carries the full [Chaos] repro line. The oracle inside
   [Chaos.run_one] is the property: result = sequential checksum, or
   exactly the planned [Injected]/[Cancelled]; metrics balanced; deques
   empty; frames recycled. *)

let gen_case = QCheck2.Gen.int_range 1 1_000_000

let case_of_int c =
  let rng = Xoshiro.create (Int64.of_int c) in
  let variant = List.nth S.all_variants (Xoshiro.int rng 5) in
  let deque =
    (* The paper's pairing, with WS also exercised on the split deque. *)
    if variant = S.Ws && Xoshiro.int rng 2 = 0 then S.split_deque_impl
    else S.default_deque_impl variant
  in
  let prob n = float_of_int (Xoshiro.int rng n) /. 4.0 in
  let plan =
    {
      F.seed = Int64.of_int (c lxor 0x5eed);
      stall_prob = prob 2;
      stall_polls = 1 + Xoshiro.int rng 8;
      drop_signal_prob = prob 3;
      delay_signal_prob = prob 3;
      delay_polls = 1 + Xoshiro.int rng 8;
      steal_fail_prob = prob 3;
      inject_exn =
        (if Xoshiro.int rng 3 = 0 then Some (Xoshiro.int rng 3, 1 + Xoshiro.int rng 8) else None);
      cancel_at =
        (if Xoshiro.int rng 3 = 0 then Some (Xoshiro.int rng 3, 1 + Xoshiro.int rng 64) else None);
    }
  in
  (variant, deque, plan, Int64.of_int c)

let prop_chaos_case c =
  let variant, deque, plan, wseed = case_of_int c in
  let r = Chaos.run_one ~variant ~deque ~num_workers:3 ~plan ~wseed () in
  if Chaos.ok r then true
  else QCheck2.Test.fail_reportf "%s" (Format.asprintf "%a" Chaos.pp_report r)

(* {2 Chaos stress: storm and stall plans over all five variants} *)

let test_storm_and_stall_sweep () =
  List.iter
    (fun wseed ->
      let plans =
        List.filter_map
          (fun n -> Option.map (fun p -> (n, p)) (F.preset ~seed:wseed n))
          [ "storm"; "stall" ]
      in
      let failures = Chaos.sweep ~num_workers:4 ~plans ~seeds:[ wseed ] () in
      List.iter
        (fun r -> Alcotest.failf "%s" (Format.asprintf "%a" Chaos.pp_report r))
        failures)
    [ 1L; 2L; 3L; 4L ]

(* {2 Deterministic replay (the acceptance demo)}

   With one worker the schedule is sequential, so the plan's k-th-task
   injection is exactly reproducible: two fresh pools with the same
   (seed, plan, variant, deque) raise the identical exception, and after
   the unwind the deques are empty and the frame pool fully recycled. *)

let test_seeded_injection_replays () =
  let plan = { F.no_faults with F.seed = 42L; inject_exn = Some (0, 5) } in
  let run_once () =
    with_pool ~fault:plan ~num_workers:1 ~variant:S.Signal (fun pool ->
        let e =
          match
            S.Pool.run pool (fun () ->
                for _ = 1 to 10 do
                  S.Ops.fork_join_unit noop noop
                done)
          with
          | () -> Alcotest.fail "expected the planned injection"
          | exception e -> e
        in
        quiescent ~tag:"after injection" pool;
        let m = S.Pool.metrics pool in
        Alcotest.(check int) "one exception injected" 1 m.Metrics.exns_injected;
        Alcotest.(check bool) "plan retrievable" true (S.Pool.fault_plan pool = Some plan);
        e)
  in
  let e1 = run_once () and e2 = run_once () in
  (match e1 with
  | F.Injected (0, 5) -> ()
  | e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  Alcotest.(check bool) "replay raises the identical exception" true (e1 = e2)

(* {2 Exception-safety regressions} *)

let test_parallel_for_body_raises () =
  with_pool ~num_workers:4 ~variant:S.Signal (fun pool ->
      (match
         S.Pool.run pool (fun () ->
             S.Ops.parallel_for ~grain:4 ~start:0 ~stop:100_000 (fun i ->
                 if i = 12_345 then raise (Boom i)))
       with
      | () -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 12345 -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      quiescent ~tag:"after loop-body exn" pool;
      (* The first failure won the scope's CAS, so the remaining chunks
         — the owner's own and any thief's — were skipped, not run. *)
      let m = S.Pool.metrics pool in
      Alcotest.(check bool) "remaining chunks were skipped" true (m.Metrics.cancelled_chunks > 0);
      (* The pool still computes correctly afterwards. *)
      let v = S.Pool.run pool (fun () -> fib 15) in
      Alcotest.(check int) "pool usable after" 610 v)

(* The stolen half: injection on a helper worker can only ever fire
   inside a task that worker stole, so the exception demonstrably
   crosses from the thief, through the frame's completion word, back to
   the forking worker's join. Steal timing is real, so we retry the job
   until worker 1 has stolen at least once (in practice: immediately). *)
let test_injected_on_stolen_path () =
  let plan = { F.no_faults with F.seed = 9L; inject_exn = Some (1, 1) } in
  with_pool ~fault:plan ~num_workers:4 ~variant:S.Signal (fun pool ->
      let rec attempt k =
        if k > 20 then Alcotest.fail "worker 1 never stole a task in 20 jobs"
        else
          match S.Pool.run pool (fun () -> fib 20) with
          | _ ->
              quiescent pool;
              attempt (k + 1)
          | exception F.Injected (1, 1) -> quiescent ~tag:"after stolen-half exn" pool
          | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      in
      attempt 1)

(* Frame pool integrity under an exception storm: after a few hundred
   failing forks the frames are all back, and the un-stolen fast path is
   still within its minor-word budget (no leak, no degraded reuse). *)
let test_frame_pool_after_exn_storm () =
  with_pool ~num_workers:2 ~variant:S.Uslcws (fun pool ->
      S.Pool.run pool (fun () ->
          for i = 1 to 200 do
            match S.Ops.fork_join_unit (fun () -> raise (Boom i)) noop with
            | () -> Alcotest.fail "Boom swallowed"
            | exception Boom _ -> ()
          done);
      quiescent ~tag:"after exn storm" pool;
      S.Pool.run pool (fun () ->
          for _ = 1 to 1_000 do
            S.Ops.fork_join_unit noop noop
          done;
          let calls = 5_000 in
          let before = Gc.minor_words () in
          for _ = 1 to calls do
            S.Ops.fork_join_unit noop noop
          done;
          let per_call = (Gc.minor_words () -. before) /. float_of_int calls in
          if per_call > 16.0 then
            Alcotest.failf "fast path allocates %.1f minor words/call after the storm" per_call);
      quiescent pool)

(* {2 Cancellation} *)

let test_cancel_from_other_domain () =
  with_pool ~num_workers:2 ~variant:S.Half (fun pool ->
      let started = Atomic.make false in
      let canceller =
        Domain.spawn (fun () ->
            while not (Atomic.get started) do
              Domain.cpu_relax ()
            done;
            S.Pool.cancel pool)
      in
      (match
         S.Pool.run pool (fun () ->
             S.Ops.parallel_for ~grain:1 ~start:0 ~stop:1_000_000_000 (fun _ ->
                 Atomic.set started true))
       with
      | () -> Alcotest.fail "a billion-iteration loop outran cancellation"
      | exception S.Cancelled -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      Domain.join canceller;
      quiescent ~tag:"after cancel" pool;
      let m = S.Pool.metrics pool in
      Alcotest.(check bool) "chunks were skipped" true (m.Metrics.cancelled_chunks > 0);
      (* The request is cleared on the next run: the pool is reusable. *)
      let v = S.Pool.run pool (fun () -> fib 12) in
      Alcotest.(check int) "pool usable after cancel" 144 v)

(* Shutdown racing an in-flight job: the job unwinds with [Cancelled],
   and a second shutdown (here: [with_pool]'s finally) is a no-op. *)
let test_shutdown_cancels_inflight () =
  let pool = S.Pool.create ~num_workers:4 ~variant:S.Signal () in
  let started = Atomic.make false in
  let stopper =
    Domain.spawn (fun () ->
        while not (Atomic.get started) do
          Domain.cpu_relax ()
        done;
        S.Pool.shutdown pool)
  in
  (match
     S.Pool.run pool (fun () ->
         S.Ops.parallel_for ~grain:1 ~start:0 ~stop:1_000_000_000 (fun _ ->
             Atomic.set started true))
   with
  | () -> Alcotest.fail "job survived shutdown"
  | exception S.Cancelled -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  Domain.join stopper;
  quiescent ~tag:"after shutdown" pool;
  Alcotest.(check int) "nothing was orphaned" 0 (S.Pool.metrics pool).Metrics.drained_tasks;
  (* Idempotent: tearing down again from this domain must be a no-op. *)
  S.Pool.shutdown pool;
  S.Pool.shutdown pool

(* The fault plan's own cancellation trigger, driven purely by worker
   0's poll count: deterministic on one worker. *)
let test_plan_cancel_fires () =
  let plan = { F.no_faults with F.seed = 5L; cancel_at = Some (0, 10) } in
  with_pool ~fault:plan ~num_workers:1 ~variant:S.Cons (fun pool ->
      (match
         S.Pool.run pool (fun () ->
             S.Ops.parallel_for ~grain:1 ~start:0 ~stop:1_000_000 (fun _ -> ()))
       with
      | () -> Alcotest.fail "plan cancellation never fired"
      | exception S.Cancelled -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      quiescent ~tag:"after plan cancel" pool)

(* {2 Stall planted in the park window}

   The park entry is a fault poll point, so a stall-heavy plan lands
   stalls exactly in the protocol's most delicate stretch — between a
   worker's last failed work search and its block on the doorbell — and
   the run must still compute the right answer with every wake
   accounted for. The pool is shut down before the metrics read: only
   then is no worker mid-park (announced, [parks] counted, its wake
   classification still pending), so [parks = wakes + spurious_wakes]
   is exact. Two fresh pools replay the identical seeded plan; both
   must see stalls actually fire and parks actually happen. *)

let test_stall_in_park_window () =
  let plan = { F.no_faults with F.seed = 9L; stall_prob = 0.5; stall_polls = 4 } in
  let run_once () =
    let pool = S.Pool.create ~fault:plan ~num_workers:4 ~variant:S.Half () in
    let r =
      Fun.protect
        ~finally:(fun () -> S.Pool.shutdown pool)
        (fun () ->
          let r1 = S.Pool.run pool (fun () -> fib 18) in
          quiescent ~tag:"stalled parks, job 1" pool;
          (* A quiet gap: the helpers' only way to wait out an idle pool
             is the parking lot, so the second job begins by ringing
             parked workers awake — through the same stall-prone poll. *)
          Unix.sleepf 0.1;
          let r2 = S.Pool.run pool (fun () -> fib 18) in
          quiescent ~tag:"stalled parks, job 2" pool;
          (r1, r2))
    in
    let m = S.Pool.metrics pool in
    Alcotest.(check bool) "stalls fired" true (m.Metrics.stalls > 0);
    Alcotest.(check bool) "workers parked" true (m.Metrics.parks > 0);
    Alcotest.(check int) "every park classified" m.Metrics.parks
      (m.Metrics.wakes + m.Metrics.spurious_wakes);
    r
  in
  let (a1, a2) = run_once () and (b1, b2) = run_once () in
  Alcotest.(check (list int)) "replay computes identically" [ 2584; 2584 ]
    [ a1; a2 ];
  Alcotest.(check (pair int int)) "second pool agrees" (a1, a2) (b1, b2)

(* {2 Observability: faults land in Metrics and Trace} *)

let test_faults_visible () =
  let plan = { F.no_faults with F.seed = 3L; steal_fail_prob = 0.5 } in
  let trace = Trace.create ~capacity:65536 ~num_workers:4 () in
  with_pool ~fault:plan ~trace ~num_workers:4 ~variant:S.Signal (fun pool ->
      let v = S.Pool.run pool (fun () -> fib 21) in
      Alcotest.(check int) "vetoed steals still compute" 10946 v;
      let m = S.Pool.metrics pool in
      Alcotest.(check bool) "steal vetoes counted" true (m.Metrics.steal_vetoes > 0);
      Alcotest.(check bool) "vetoes within attempts" true
        (m.Metrics.steal_vetoes <= m.Metrics.steal_attempts);
      let faults = List.assoc Trace.Fault (Trace.counts trace) in
      Alcotest.(check int) "every veto traced" m.Metrics.steal_vetoes faults)

let () =
  Alcotest.run "fault"
    [
      ( "plans",
        [
          qtest "encoding round-trips" gen_plan_ints prop_plan_roundtrip;
          Alcotest.test_case "presets round-trip" `Quick test_presets_roundtrip;
        ] );
      ( "chaos",
        [
          qtest ~count:30 "random case meets the oracle" gen_case prop_chaos_case;
          Alcotest.test_case "storm + stall over all variants" `Quick test_storm_and_stall_sweep;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "seeded injection replays exactly" `Quick
            test_seeded_injection_replays;
          Alcotest.test_case "parallel_for body raises" `Quick test_parallel_for_body_raises;
          Alcotest.test_case "stolen-half injection propagates" `Quick
            test_injected_on_stolen_path;
          Alcotest.test_case "frame pool survives an exn storm" `Quick
            test_frame_pool_after_exn_storm;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "cancel from another domain" `Quick test_cancel_from_other_domain;
          Alcotest.test_case "shutdown cancels in-flight job" `Quick
            test_shutdown_cancels_inflight;
          Alcotest.test_case "plan-driven cancellation" `Quick test_plan_cancel_fires;
        ] );
      ( "parking",
        [
          Alcotest.test_case "stall in the park window replays" `Quick
            test_stall_in_park_window;
        ] );
      ("observability", [ Alcotest.test_case "metrics + trace" `Quick test_faults_visible ]);
    ]
