(* The interleaving checker's own test suite: clean deques must pass
   exhaustively, the deliberate Section 4 demo and every seeded mutation
   must produce a counterexample, exploration must be deterministic, and
   counterexamples must replay and export. This is the bounded-depth
   checker pass that runs inside `dune runtest`; the CI nightly sweep
   re-runs the same scenarios with a larger LCWS_CHECK_BUDGET. *)

open Lcws
module E = Check.Explore
module S = Check.Scenarios
module SS = Check.Sched_scenarios

let find name =
  match S.find name with
  | Some s -> s
  | None -> (
      match SS.find name with
      | Some s -> s
      | None -> Alcotest.failf "no scenario %S" name)

(* Every clean scenario passes in *every* interleaving, and the reduced
   schedule tree is fully covered within the default budget. *)
let test_clean_exhaustive () =
  List.iter
    (fun (s : E.scenario) ->
      if not s.E.expect_violation then begin
        let r = E.explore s in
        (match r.E.violation with
        | Some v ->
            Alcotest.failf "%s: unexpected violation: %s (schedule %s)" r.E.name v.E.message
              (E.schedule_to_string v.E.schedule)
        | None -> ());
        Alcotest.(check bool) (s.E.name ^ " exhausted") true r.E.exhausted;
        Alcotest.(check bool) (s.E.name ^ " explored") true (r.E.interleavings > 0)
      end)
    S.all

(* The catalogue's expected-violation entry is the paper's Section 4 bug
   run on purpose (plain pop_bottom vs signal-delivered exposure): the
   checker must reproduce the lost update the signal-safe pop fixes. *)
let test_section4_demo_fails () =
  List.iter
    (fun (s : E.scenario) ->
      if s.E.expect_violation then
        let r = E.explore s in
        Alcotest.(check bool) (s.E.name ^ " violation found") true (r.E.violation <> None))
    S.all

(* Self-test: each seeded deque mutation (dropped Listing 2 line 11-12
   fence, dropped Section 4 bot repair, dropped ABA tag bump, join frame
   recycled before its completion flag, cancellation flag read hoisted
   out of the chunk loop, fiber resume fired without re-publishing the
   frame state, Chase-Lev steal claiming top with a plain store, Lace
   expose without the private-work guard, private-deque pop without the
   emptiness guard) is caught. *)
let test_mutants_caught () =
  Alcotest.(check int) "nine seeded deque mutants" 9 (List.length S.mutants);
  List.iter
    (fun (s : E.scenario) ->
      let r = E.explore s in
      match r.E.violation with
      | None -> Alcotest.failf "seeded mutant %s not caught" r.E.name
      | Some _ -> ())
    S.mutants

(* {2 Scheduler-level scenarios: the mini-scheduler over the real
   protocol kernels} *)

(* Clean scheduler scenarios pass every schedule of their (preemption-
   bounded by default) trees. *)
let test_sched_clean () =
  List.iter
    (fun (s : E.scenario) ->
      let r = E.explore s in
      (match r.E.violation with
      | Some v ->
          Alcotest.failf "%s: unexpected violation: %s (schedule %s)" r.E.name v.E.message
            (E.schedule_to_string v.E.schedule)
      | None -> ());
      (* The scenario ships a default bound; whether this run used it
         depends on LCWS_CHECK_PREEMPT (the nightly sweep lifts it, and
         an unbounded tree may legitimately hit the run budget instead
         of exhausting). *)
      if r.E.preempt_bound <> None then
        Alcotest.(check bool) (s.E.name ^ " exhausted") true r.E.exhausted;
      Alcotest.(check bool) (s.E.name ^ " carries a default bound") true (s.E.preempt <> None))
    SS.all

(* Each seeded kernel mutation (early frame flag flip, CAS-less scope
   failure election, blind future completion, blind injector swing,
   dropped shutdown abort sweep, park without re-check, single-CAS batch
   steal claim, policy switch without the retired-channel drain, steal
   request without the post-deposit re-read) is caught *within* the
   scenario's small default preemption bound — the whole point of
   CHESS-style search. *)
let test_sched_mutants_caught () =
  Alcotest.(check int) "nine seeded scheduler mutants" 9 (List.length SS.mutants);
  Alcotest.(check int)
    "eighteen seeded mutants in total" 18
    (List.length S.mutants + List.length SS.mutants);
  List.iter
    (fun (s : E.scenario) ->
      let r = E.explore s in
      match r.E.violation with
      | None -> Alcotest.failf "seeded scheduler mutant %s not caught" r.E.name
      | Some _ -> ())
    SS.mutants

(* [~preempt] forces the bound: [0] lifts a scenario's default (the
   nightly sweep's LCWS_CHECK_PREEMPT=0 path), a positive value imposes
   one. The bounded and unbounded searches must agree on clean code. *)
let test_preempt_override () =
  let s = find "sched_future_race" in
  let bounded = E.explore ~preempt:1 s in
  Alcotest.(check bool) "bound reported" true (bounded.E.preempt_bound = Some 1);
  Alcotest.(check bool) "bounded clean" true (bounded.E.violation = None);
  let unbounded = E.explore ~preempt:0 s in
  Alcotest.(check bool) "bound lifted" true (unbounded.E.preempt_bound = None);
  Alcotest.(check bool) "unbounded exhausted" true unbounded.E.exhausted;
  Alcotest.(check bool) "unbounded clean" true (unbounded.E.violation = None)

(* {2 Executable ownership invariants} *)

let violation_message (r : E.report) =
  match r.E.violation with
  | Some v -> v.E.message
  | None -> Alcotest.failf "%s: expected a violation" r.E.name

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_invariant_message name needle msg =
  Alcotest.(check bool)
    (Printf.sprintf "%s caught by invariant (%S in %S)" name needle msg)
    true
    (contains msg "invariant violated" && contains msg needle)

(* One seeded invariant-violating mutant per deque family is detected by
   the per-scheduling-point ownership assertions (not merely by the
   end-of-run oracle). For chase/lace/private the exploration's first
   counterexample is the invariant's; for split, the tag-bump mutant's
   duplication oracle can fire first in DFS order, so the thief-steals-
   first interleaving — where only the same-tag top rewind is wrong — is
   pinned by replay. *)
let test_family_invariant_mutants () =
  List.iter
    (fun (scenario, needle) ->
      let r = E.explore (find scenario) in
      check_invariant_message scenario needle (violation_message r))
    [
      ("mutant_chase_steal_store", "chase_lev:");
      ("mutant_lace_expose_unchecked", "lace:");
      ("mutant_private_pop_underflow", "private:");
    ];
  let s = find "mutant_drop_tag_bump" in
  let rp = E.replay s [ E.Thread 1; E.Thread 1; E.Thread 1 ] ~max_steps:1000 in
  match rp.E.result with
  | Error m -> check_invariant_message "mutant_drop_tag_bump" "without a tag bump" m
  | Ok () -> Alcotest.fail "split tag-bump rewind not caught by the ownership invariant"

(* Exploration is deterministic: identical counts on repeated runs. *)
let test_deterministic_counts () =
  List.iter
    (fun name ->
      let s = find name in
      let r1 = E.explore s and r2 = E.explore s in
      Alcotest.(check int) (name ^ " interleavings") r1.E.interleavings r2.E.interleavings;
      Alcotest.(check int) (name ^ " runs") r1.E.runs r2.E.runs;
      Alcotest.(check int) (name ^ " pruned") r1.E.pruned r2.E.pruned;
      Alcotest.(check bool) (name ^ " exhausted") r1.E.exhausted r2.E.exhausted)
    [ "split_two_exposed"; "split_signal_safe"; "chase_lev_wrap" ]

(* A counterexample's schedule replays to the same oracle verdict. *)
let test_replay_reproduces () =
  let s = find "mutant_drop_tag_bump" in
  let r = E.explore s in
  match r.E.violation with
  | None -> Alcotest.fail "expected a violation to replay"
  | Some v -> (
      let rp = E.replay s v.E.schedule ~max_steps:1000 in
      match rp.E.result with
      | Ok () -> Alcotest.fail "replay did not reproduce the violation"
      | Error m -> Alcotest.(check string) "same verdict" v.E.message m)

let test_schedule_string_roundtrip () =
  let sched = [ E.Thread 0; E.Thread 1; E.Signal; E.Thread 2; E.Thread 0 ] in
  Alcotest.(check string) "to_string" "0,1,s,2,0" (E.schedule_to_string sched);
  Alcotest.(check bool) "roundtrip" true (E.schedule_of_string "0,1,s,2,0" = sched);
  Alcotest.(check bool) "empty" true (E.schedule_of_string "" = []);
  Alcotest.check_raises "bad token" (Invalid_argument "bad schedule token \"x\"") (fun () ->
      ignore (E.schedule_of_string "0,x"))

(* Counterexample steps export as a well-formed Chrome trace with one
   lane per scenario thread. *)
let test_chrome_export () =
  let s = find "mutant_drop_fence" in
  let r = E.explore s in
  match r.E.violation with
  | None -> Alcotest.fail "expected a violation to export"
  | Some v ->
      let rp = E.replay s v.E.schedule ~max_steps:1000 in
      let json = Chrome_trace.Raw.to_string (E.steps_to_chrome ~lanes:rp.E.lanes rp.E.steps) in
      let has sub =
        let nh = String.length json and nn = String.length sub in
        let rec go i = i + nn <= nh && (String.sub json i nn = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "traceEvents" true (has "traceEvents");
      Alcotest.(check bool) "owner lane" true (has "owner");
      Alcotest.(check bool) "thief lane" true (has "thief")

(* The run budget bounds the search and is reported as non-exhaustion. *)
let test_budget_bounds () =
  let s = find "split_signal_safe" in
  let r = E.explore ~max_runs:3 s in
  Alcotest.(check int) "stopped at budget" 3 r.E.runs;
  Alcotest.(check bool) "not exhausted" false r.E.exhausted;
  Alcotest.(check bool) "no false positive" true (r.E.violation = None)

(* Oracle helpers behave as documented. *)
let test_oracles () =
  Alcotest.(check bool) "exactly-once ok" true
    (S.exactly_once ~pushed:[ 2; 1 ] ~got:[ 1; 2 ] = Ok ());
  Alcotest.(check bool) "duplication caught" true
    (Result.is_error (S.exactly_once ~pushed:[ 1 ] ~got:[ 1; 1 ]));
  Alcotest.(check bool) "loss caught" true
    (Result.is_error (S.exactly_once ~pushed:[ 1; 2 ] ~got:[ 2 ]));
  Alcotest.(check bool) "increasing ok" true (S.increasing "t" [ 1; 3; 7 ] = Ok ());
  Alcotest.(check bool) "increasing violated" true
    (Result.is_error (S.increasing "t" [ 1; 3; 2 ]));
  Alcotest.(check bool) "decreasing ok" true (S.decreasing "o" [ 7; 3; 1 ] = Ok ())

let () =
  Alcotest.run "check"
    [
      ( "explorer",
        [
          Alcotest.test_case "clean scenarios pass exhaustively" `Quick test_clean_exhaustive;
          Alcotest.test_case "Section 4 demo reproduces the bug" `Quick test_section4_demo_fails;
          Alcotest.test_case "seeded mutants are caught" `Quick test_mutants_caught;
          Alcotest.test_case "deterministic interleaving counts" `Quick test_deterministic_counts;
          Alcotest.test_case "budget bounds the search" `Quick test_budget_bounds;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "clean scheduler scenarios pass" `Quick test_sched_clean;
          Alcotest.test_case "seeded kernel mutants are caught" `Quick
            test_sched_mutants_caught;
          Alcotest.test_case "preemption bound override" `Quick test_preempt_override;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "one invariant mutant per deque family" `Quick
            test_family_invariant_mutants;
        ] );
      ( "replay",
        [
          Alcotest.test_case "counterexample replays" `Quick test_replay_reproduces;
          Alcotest.test_case "schedule string roundtrip" `Quick test_schedule_string_roundtrip;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
        ] );
      ("oracles", [ Alcotest.test_case "helpers" `Quick test_oracles ]);
    ]
