(* Sequential semantics of the four deques, including the paper-specific
   behaviours: the split deque's exposure policies, the Section 4
   decrement-first pop and its repair in pop_public_bottom, fence/CAS
   accounting, and a qcheck model-based test against a reference deque. *)

open Lcws
open Lcws.Deque_intf

let check = Alcotest.check

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let mk_split ?(cap = 64) () =
  let m = Metrics.create () in
  (Split_deque.create ~capacity:cap ~dummy:(-1) ~metrics:m (), m)

let mk_cl ?(cap = 64) () =
  let m = Metrics.create () in
  (Chase_lev.create ~capacity:cap ~dummy:(-1) ~metrics:m (), m)

(* --- split deque: basics --------------------------------------------- *)

let test_split_lifo () =
  let d, _ = mk_split () in
  Split_deque.push_bottom d 1;
  Split_deque.push_bottom d 2;
  Split_deque.push_bottom d 3;
  check Alcotest.(option int) "pop 3" (Some 3) (Split_deque.pop_bottom d);
  check Alcotest.(option int) "pop 2" (Some 2) (Split_deque.pop_bottom d);
  check Alcotest.(option int) "pop 1" (Some 1) (Split_deque.pop_bottom d);
  check Alcotest.(option int) "empty" None (Split_deque.pop_bottom d)

let test_split_private_ops_fence_free () =
  let d, m = mk_split () in
  for i = 0 to 19 do
    Split_deque.push_bottom d i
  done;
  for _ = 0 to 19 do
    ignore (Split_deque.pop_bottom d)
  done;
  check Alcotest.int "no fences for private ops" 0 m.Metrics.fences;
  check Alcotest.int "no CAS for private ops" 0 m.Metrics.cas_ops

let test_split_expose_one () =
  let d, m = mk_split () in
  Split_deque.push_bottom d 10;
  Split_deque.push_bottom d 11;
  let n = Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one in
  check Alcotest.int "exposed one" 1 n;
  check Alcotest.int "public size" 1 (Split_deque.public_size d);
  check Alcotest.int "private size" 1 (Split_deque.private_size d);
  check Alcotest.int "metrics exposed" 1 m.Metrics.exposed_tasks

let test_split_expose_conservative () =
  let d, _ = mk_split () in
  Split_deque.push_bottom d 1;
  (* Only one private task: conservative refuses. *)
  check Alcotest.int "refused" 0
    (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_conservative);
  Split_deque.push_bottom d 2;
  check Alcotest.int "accepted" 1
    (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_conservative)

let test_split_expose_half () =
  let d, _ = mk_split () in
  (* r = 7 private tasks: round(7/2) = 4 (round-half-up of 3.5). *)
  for i = 0 to 6 do
    Split_deque.push_bottom d i
  done;
  check Alcotest.int "half of 7" 4 (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_half);
  (* r = 2 remaining (< 3): exposes one. *)
  let d2, _ = mk_split () in
  Split_deque.push_bottom d2 0;
  Split_deque.push_bottom d2 1;
  check Alcotest.int "r=2 exposes one" 1
    (Split_deque.update_public_bottom d2 ~policy:Split_deque.Expose_half);
  let d3, _ = mk_split () in
  check Alcotest.int "empty exposes none" 0
    (Split_deque.update_public_bottom d3 ~policy:Split_deque.Expose_half)

let test_split_pop_top () =
  let d, _ = mk_split () in
  let thief = Metrics.create () in
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "empty deque" Empty
    (Split_deque.pop_top d ~metrics:thief);
  Split_deque.push_bottom d 7;
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "private work" Private_work
    (Split_deque.pop_top d ~metrics:thief);
  ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one);
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "stolen" (Stolen 7)
    (Split_deque.pop_top d ~metrics:thief);
  check Alcotest.int "thief cas" 1 thief.Metrics.cas_ops;
  check Alcotest.int "thief steals" 1 thief.Metrics.steals;
  check Alcotest.int "private hits" 1 thief.Metrics.private_work_hits

let test_split_pop_public_bottom () =
  let d, m = mk_split () in
  Split_deque.push_bottom d 1;
  Split_deque.push_bottom d 2;
  ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one);
  ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one);
  (* Both tasks public now; private empty. Owner takes from public bottom
     in LIFO-ish order (bottom of public part = most recent). *)
  check Alcotest.(option int) "public bottom" (Some 2) (Split_deque.pop_public_bottom d);
  check Alcotest.(option int) "last public (CAS path)" (Some 1) (Split_deque.pop_public_bottom d);
  check Alcotest.(option int) "now empty" None (Split_deque.pop_public_bottom d);
  Alcotest.(check bool) "fences charged" true (m.Metrics.fences >= 3);
  check Alcotest.int "taken back" 2 m.Metrics.public_pops

let test_split_signal_safe_pop_and_repair () =
  let d, _ = mk_split () in
  (* Empty deque: decrement-first pop leaves bot = -1 <— must be repaired
     by pop_public_bottom's Section 4 amendment before any push. *)
  check Alcotest.(option int) "empty signal-safe pop" None (Split_deque.pop_bottom_signal_safe d);
  check Alcotest.(option int) "repair path" None (Split_deque.pop_public_bottom d);
  Split_deque.push_bottom d 5;
  check Alcotest.(option int) "push after repair works" (Some 5)
    (Split_deque.pop_bottom_signal_safe d);
  ignore (Split_deque.pop_public_bottom d);
  (* Non-empty private part: signal-safe pop behaves like pop_bottom. *)
  Split_deque.push_bottom d 1;
  Split_deque.push_bottom d 2;
  check Alcotest.(option int) "pops newest" (Some 2) (Split_deque.pop_bottom_signal_safe d);
  check Alcotest.(option int) "then next" (Some 1) (Split_deque.pop_bottom_signal_safe d)

let test_split_steal_order_fifo () =
  let d, _ = mk_split () in
  let thief = Metrics.create () in
  for i = 1 to 3 do
    Split_deque.push_bottom d i
  done;
  ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_half);
  (* Thieves steal from the top: oldest first. *)
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "oldest first" (Stolen 1)
    (Split_deque.pop_top d ~metrics:thief);
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "then next" (Stolen 2)
    (Split_deque.pop_top d ~metrics:thief)

let test_split_has_two_tasks () =
  let d, _ = mk_split () in
  Alcotest.(check bool) "empty" false (Split_deque.has_two_tasks d);
  Split_deque.push_bottom d 1;
  Alcotest.(check bool) "one" false (Split_deque.has_two_tasks d);
  Split_deque.push_bottom d 2;
  Alcotest.(check bool) "two" true (Split_deque.has_two_tasks d);
  ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one);
  Alcotest.(check bool) "one private + one public" false (Split_deque.has_two_tasks d)

let test_split_full () =
  let d, _ = mk_split ~cap:4 () in
  for i = 0 to 3 do
    Split_deque.push_bottom d i
  done;
  Alcotest.check_raises "full" Deque_full (fun () -> Split_deque.push_bottom d 4)

let test_split_clear () =
  let d, _ = mk_split () in
  Split_deque.push_bottom d 1;
  ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one);
  Split_deque.clear d;
  Alcotest.(check bool) "empty after clear" true (Split_deque.is_empty d);
  check Alcotest.int "no private" 0 (Split_deque.private_size d);
  check Alcotest.int "no public" 0 (Split_deque.public_size d)

let test_split_index_reset_recycles_capacity () =
  (* Steals ratchet [top]/[public_bot] upward; the deque only reuses low
     slots after pop_public_bottom's reset. A small-capacity deque must
     survive an unbounded push/expose/steal/drain cycle — this is the
     liveness property that makes a fixed-size array viable. *)
  let d, _ = mk_split ~cap:8 () in
  let thief = Metrics.create () in
  for round = 0 to 999 do
    Split_deque.push_bottom d (2 * round);
    Split_deque.push_bottom d ((2 * round) + 1);
    ignore (Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one);
    (match Split_deque.pop_top d ~metrics:thief with
    | Stolen _ -> ()
    | Empty | Abort | Private_work -> Alcotest.fail "steal should succeed");
    (* Drain: one private pop, then the public-path pop that resets. *)
    (match Split_deque.pop_bottom d with
    | Some _ -> ()
    | None -> Alcotest.fail "private pop should succeed");
    check Alcotest.(option int) "drained" None (Split_deque.pop_bottom d);
    check Alcotest.(option int) "public drained" None (Split_deque.pop_public_bottom d);
    Alcotest.(check bool) "empty between rounds" true (Split_deque.is_empty d)
  done

let test_age_packing () =
  let open Split_deque.Age in
  let a = pack ~tag:5 ~top:123 in
  check Alcotest.int "top" 123 (top a);
  check Alcotest.int "tag" 5 (tag a);
  let b = pack ~tag:0 ~top:max_top in
  check Alcotest.int "max top" max_top (top b);
  check Alcotest.int "tag 0" 0 (tag b)

(* Regression: the ABA tag occupies 31 bits and must wrap cleanly at the
   boundary instead of overflowing into the [top] field or growing
   without bound — [pack] masks the tag, and tag/top round-trip right up
   to (and across) the wrap. *)
let test_age_tag_wrap () =
  let open Split_deque.Age in
  let at_max = pack ~tag:max_tag ~top:7 in
  check Alcotest.int "top at max tag" 7 (top at_max);
  check Alcotest.int "tag at max tag" max_tag (tag at_max);
  let wrapped = pack ~tag:(max_tag + 1) ~top:7 in
  check Alcotest.int "tag wraps to 0" 0 (tag wrapped);
  check Alcotest.int "top preserved across wrap" 7 (top wrapped);
  check Alcotest.int "wrap aliases tag 0" (pack ~tag:0 ~top:7) wrapped;
  (* a bump from the boundary still changes the packed word *)
  Alcotest.(check bool) "bump at boundary visible" true (at_max <> wrapped)

(* Regression: [pop_bottom]'s emptiness guard must be [bot <= public_bot],
   not [=]. In the window after a failed decrement-first pop (Section 4),
   [bot] sits strictly below [public_bot]; an equality guard would let
   the owner re-pop a task it has already exposed to thieves. *)
let test_split_pop_bottom_underflow_guard () =
  let d, _ = mk_split () in
  Split_deque.push_bottom d 1;
  Split_deque.push_bottom d 2;
  ignore (Split_deque.update_public_bottom d ~policy:Expose_one);
  ignore (Split_deque.update_public_bottom d ~policy:Expose_one);
  (* both tasks public: the decrement-first pop fails and leaves bot = 1
     below public_bot = 2 *)
  check Alcotest.(option int) "signal-safe pop fails" None (Split_deque.pop_bottom_signal_safe d);
  check Alcotest.(option int) "private pop must not re-take exposed work" None
    (Split_deque.pop_bottom d);
  (* the public side still holds both tasks, newest first *)
  check Alcotest.(option int) "public pop 2" (Some 2) (Split_deque.pop_public_bottom d);
  check Alcotest.(option int) "public pop 1" (Some 1) (Split_deque.pop_public_bottom d);
  check Alcotest.(option int) "public empty" None (Split_deque.pop_public_bottom d);
  (* bot is repaired; the deque is reusable *)
  Split_deque.push_bottom d 3;
  check Alcotest.(option int) "reusable after repair" (Some 3) (Split_deque.pop_bottom d)

(* --- model-based qcheck: split deque vs reference list ---------------- *)

(* Reference model: (private_list_newest_first, public_list_newest_first).
   Operations mirror the deque; every observable result must agree. *)
let prop_split_model =
  let open QCheck2.Gen in
  let op_gen = int_range 0 5 in
  qtest ~count:500 "split deque matches list model" (list_size (int_range 0 200) op_gen)
    (fun ops ->
      let d, _ = mk_split ~cap:512 () in
      let thief = Metrics.create () in
      let priv = ref [] and pub = ref [] in
      (* pub: newest-exposed last stolen; public part stores oldest at top.
         Represent pub as list with OLDEST at head (steal takes head;
         owner's pop_public takes the last element). *)
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              (* push *)
              incr counter;
              Split_deque.push_bottom d !counter;
              priv := !counter :: !priv
          | 1 -> (
              (* pop_bottom *)
              let got = Split_deque.pop_bottom d in
              match !priv with
              | [] -> if got <> None then ok := false
              | x :: rest ->
                  priv := rest;
                  if got <> Some x then ok := false)
          | 2 -> (
              (* expose one *)
              let n = Split_deque.update_public_bottom d ~policy:Split_deque.Expose_one in
              match List.rev !priv with
              | [] -> if n <> 0 then ok := false
              | oldest :: _ ->
                  if n <> 1 then ok := false;
                  priv := List.rev (List.tl (List.rev !priv));
                  pub := !pub @ [ oldest ])
          | 3 -> (
              (* steal *)
              let got = Split_deque.pop_top d ~metrics:thief in
              match !pub with
              | [] ->
                  let expect = if !priv = [] then Empty else Private_work in
                  if got <> expect then ok := false
              | x :: rest ->
                  pub := rest;
                  if got <> Stolen x then ok := false)
          | 4 ->
              (* owner takes public bottom when private empty (as the
                 scheduler does) *)
              if !priv = [] then begin
                let got = Split_deque.pop_public_bottom d in
                match List.rev !pub with
                | [] -> if got <> None then ok := false
                | newest :: _ ->
                    pub := List.rev (List.tl (List.rev !pub));
                    if got <> Some newest then ok := false
              end
          | _ ->
              (* size checks *)
              if Split_deque.private_size d <> List.length !priv then ok := false;
              if Split_deque.public_size d <> List.length !pub then ok := false)
        ops;
      !ok)

(* --- Chase-Lev -------------------------------------------------------- *)

let test_cl_lifo_owner () =
  let d, m = mk_cl () in
  Chase_lev.push_bottom d 1;
  Chase_lev.push_bottom d 2;
  check Alcotest.(option int) "pop 2" (Some 2) (Chase_lev.pop_bottom d);
  check Alcotest.(option int) "pop 1" (Some 1) (Chase_lev.pop_bottom d);
  check Alcotest.(option int) "empty" None (Chase_lev.pop_bottom d);
  Alcotest.(check bool) "owner pops cost fences" true (m.Metrics.fences >= 2)

let test_cl_steal_fifo () =
  let d, _ = mk_cl () in
  let thief = Metrics.create () in
  for i = 1 to 3 do
    Chase_lev.push_bottom d i
  done;
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "steal oldest" (Stolen 1)
    (Chase_lev.steal d ~metrics:thief);
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "then 2" (Stolen 2)
    (Chase_lev.steal d ~metrics:thief);
  check Alcotest.(option int) "owner gets newest" (Some 3) (Chase_lev.pop_bottom d);
  check
    Alcotest.(testable (pp_steal_result Format.pp_print_int) ( = ))
    "empty" Empty
    (Chase_lev.steal d ~metrics:thief)

let test_cl_wraparound () =
  let d, _ = mk_cl ~cap:8 () in
  let thief = Metrics.create () in
  (* Push/steal repeatedly to march indices past the capacity (circular
     buffer reuse). *)
  for round = 0 to 99 do
    Chase_lev.push_bottom d round;
    match Chase_lev.steal d ~metrics:thief with
    | Stolen v -> check Alcotest.int "wrap value" round v
    | Empty | Abort | Private_work -> Alcotest.fail "expected Stolen"
  done

let test_cl_full () =
  let d, _ = mk_cl ~cap:4 () in
  for i = 0 to 3 do
    Chase_lev.push_bottom d i
  done;
  Alcotest.check_raises "full" Deque_full (fun () -> Chase_lev.push_bottom d 4)

let prop_cl_model =
  let open QCheck2.Gen in
  qtest ~count:500 "chase-lev matches list model" (list_size (int_range 0 200) (int_range 0 2))
    (fun ops ->
      let d, _ = mk_cl ~cap:512 () in
      let thief = Metrics.create () in
      let model = ref [] (* newest at head *) in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Chase_lev.push_bottom d !counter;
              model := !counter :: !model
          | 1 -> (
              let got = Chase_lev.pop_bottom d in
              match !model with
              | [] -> if got <> None then ok := false
              | x :: rest ->
                  model := rest;
                  if got <> Some x then ok := false)
          | _ -> (
              let got = Chase_lev.steal d ~metrics:thief in
              match List.rev !model with
              | [] -> if got <> Empty then ok := false
              | oldest :: _ ->
                  model := List.rev (List.tl (List.rev !model));
                  if got <> Stolen oldest then ok := false))
        ops;
      !ok && Chase_lev.size d = List.length !model)

(* --- private deque ----------------------------------------------------- *)

let test_private_deque () =
  let d = Private_deque.create ~capacity:8 ~dummy:(-1) () in
  for i = 1 to 5 do
    Private_deque.push_bottom d i
  done;
  check Alcotest.(option int) "pop_top oldest" (Some 1) (Private_deque.pop_top d);
  check Alcotest.(option int) "pop_bottom newest" (Some 5) (Private_deque.pop_bottom d);
  check Alcotest.int "size" 3 (Private_deque.size d);
  Private_deque.clear d;
  Alcotest.(check bool) "cleared" true (Private_deque.is_empty d);
  check Alcotest.(option int) "empty pops" None (Private_deque.pop_bottom d)

let test_private_wrap () =
  let d = Private_deque.create ~capacity:4 ~dummy:(-1) () in
  for round = 0 to 29 do
    Private_deque.push_bottom d round;
    check Alcotest.(option int) "wrap" (Some round) (Private_deque.pop_top d)
  done

(* --- lace deque -------------------------------------------------------- *)

let test_lace_basics () =
  let d = Lace_deque.create ~capacity:16 ~dummy:(-1) () in
  ignore (Lace_deque.push_bottom d 1);
  ignore (Lace_deque.push_bottom d 2);
  let got, cost = Lace_deque.pop_bottom d in
  check Alcotest.(option int) "private pop" (Some 2) got;
  check Alcotest.int "private pop free" 0 cost.Lace_deque.fences

let test_lace_unexpose () =
  let d = Lace_deque.create ~capacity:16 ~dummy:(-1) () in
  ignore (Lace_deque.push_bottom d 1);
  let n, _ = Lace_deque.expose d in
  check Alcotest.int "exposed" 1 n;
  check Alcotest.int "public" 1 (Lace_deque.public_size d);
  (* Private empty, public non-empty: owner unexposes (with sync cost). *)
  let got, cost = Lace_deque.pop_bottom d in
  check Alcotest.(option int) "unexposed pop" (Some 1) got;
  Alcotest.(check bool) "unexpose costs sync" true (cost.Lace_deque.fences > 0);
  Alcotest.(check bool) "empty now" true (Lace_deque.is_empty d)

let test_lace_steal () =
  let d = Lace_deque.create ~capacity:16 ~dummy:(-1) () in
  ignore (Lace_deque.push_bottom d 1);
  ignore (Lace_deque.push_bottom d 2);
  let r, _ = Lace_deque.pop_top d in
  Alcotest.(check bool) "private work" true (r = Private_work);
  ignore (Lace_deque.expose d);
  let r, cost = Lace_deque.pop_top d in
  Alcotest.(check bool) "stolen oldest" true (r = Stolen 1);
  check Alcotest.int "steal cas" 1 cost.Lace_deque.cas

let () =
  Alcotest.run "deque"
    [
      ( "split",
        [
          Alcotest.test_case "LIFO" `Quick test_split_lifo;
          Alcotest.test_case "private ops fence-free" `Quick test_split_private_ops_fence_free;
          Alcotest.test_case "expose one" `Quick test_split_expose_one;
          Alcotest.test_case "expose conservative" `Quick test_split_expose_conservative;
          Alcotest.test_case "expose half" `Quick test_split_expose_half;
          Alcotest.test_case "pop_top" `Quick test_split_pop_top;
          Alcotest.test_case "pop_public_bottom" `Quick test_split_pop_public_bottom;
          Alcotest.test_case "signal-safe pop + repair" `Quick test_split_signal_safe_pop_and_repair;
          Alcotest.test_case "steal order FIFO" `Quick test_split_steal_order_fifo;
          Alcotest.test_case "has_two_tasks" `Quick test_split_has_two_tasks;
          Alcotest.test_case "capacity" `Quick test_split_full;
          Alcotest.test_case "index reset recycles capacity" `Quick
            test_split_index_reset_recycles_capacity;
          Alcotest.test_case "clear" `Quick test_split_clear;
          Alcotest.test_case "age packing" `Quick test_age_packing;
          Alcotest.test_case "age tag wrap boundary" `Quick test_age_tag_wrap;
          Alcotest.test_case "pop_bottom underflow guard" `Quick
            test_split_pop_bottom_underflow_guard;
          prop_split_model;
        ] );
      ( "chase_lev",
        [
          Alcotest.test_case "owner LIFO + fences" `Quick test_cl_lifo_owner;
          Alcotest.test_case "steal FIFO" `Quick test_cl_steal_fifo;
          Alcotest.test_case "circular wraparound" `Quick test_cl_wraparound;
          Alcotest.test_case "capacity" `Quick test_cl_full;
          prop_cl_model;
        ] );
      ( "private",
        [
          Alcotest.test_case "basics" `Quick test_private_deque;
          Alcotest.test_case "wraparound" `Quick test_private_wrap;
        ] );
      ( "lace",
        [
          Alcotest.test_case "basics" `Quick test_lace_basics;
          Alcotest.test_case "unexpose" `Quick test_lace_unexpose;
          Alcotest.test_case "steal" `Quick test_lace_steal;
        ] );
    ]
