(* The Parlay-style toolkit: each primitive against its sequential
   specification, plus property-based tests for the sorts (including
   stability) run inside a real multi-worker pool. *)

open Lcws
module S = Scheduler
module P = Parallel

let check = Alcotest.check

let pool = lazy (S.Pool.create ~num_workers:4 ~variant:S.Signal ())

let in_pool f = S.Pool.run (Lazy.force pool) f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let int_array = QCheck2.Gen.(array_size (int_range 0 500) (int_range (-1000) 1000))

(* --- tabulate / map / iter ------------------------------------------- *)

let test_tabulate () =
  in_pool (fun () ->
      check (Alcotest.array Alcotest.int) "squares"
        (Array.init 1000 (fun i -> i * i))
        (P.tabulate 1000 (fun i -> i * i));
      check (Alcotest.array Alcotest.int) "empty" [||] (P.tabulate 0 (fun i -> i)))

let prop_map =
  qtest "map = Array.map" int_array (fun a ->
      in_pool (fun () -> P.map (fun x -> (2 * x) + 1) a) = Array.map (fun x -> (2 * x) + 1) a)

let prop_mapi =
  qtest "mapi = Array.mapi" int_array (fun a ->
      in_pool (fun () -> P.mapi (fun i x -> i - x) a) = Array.mapi (fun i x -> i - x) a)

let test_iteri_coverage () =
  in_pool (fun () ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      P.iteri ~grain:16 (fun i _ -> hits.(i) <- hits.(i) + 1) (Array.make n ());
      Alcotest.(check bool) "all once" true (Array.for_all (( = ) 1) hits))

(* --- reduce / scan ---------------------------------------------------- *)

let prop_reduce_sum =
  qtest "reduce (+) = fold_left" int_array (fun a ->
      in_pool (fun () -> P.reduce ( + ) 0 a) = Array.fold_left ( + ) 0 a)

let prop_reduce_max =
  qtest "reduce max" int_array (fun a ->
      in_pool (fun () -> P.reduce max min_int a) = Array.fold_left max min_int a)

let prop_map_reduce =
  qtest "map_reduce" int_array (fun a ->
      in_pool (fun () -> P.map_reduce abs ( + ) 0 a)
      = Array.fold_left (fun acc x -> acc + abs x) 0 a)

let seq_exclusive_scan op zero a =
  let n = Array.length a in
  let out = Array.make n zero in
  let acc = ref zero in
  for i = 0 to n - 1 do
    out.(i) <- !acc;
    acc := op !acc a.(i)
  done;
  (out, !acc)

let prop_scan =
  qtest "exclusive scan" int_array (fun a ->
      let got, total = in_pool (fun () -> P.scan ( + ) 0 a) in
      let expected, etotal = seq_exclusive_scan ( + ) 0 a in
      got = expected && total = etotal)

let prop_scan_inclusive =
  qtest "inclusive scan" int_array (fun a ->
      let got = in_pool (fun () -> P.scan_inclusive ( + ) 0 a) in
      let ex, _ = seq_exclusive_scan ( + ) 0 a in
      got = Array.mapi (fun i p -> p + a.(i)) ex)

let test_scan_grains () =
  in_pool (fun () ->
      let a = Array.init 10_000 (fun i -> i mod 17) in
      let expected, _ = seq_exclusive_scan ( + ) 0 a in
      List.iter
        (fun g ->
          let got, _ = P.scan ~grain:g ( + ) 0 a in
          check (Alcotest.array Alcotest.int) (Printf.sprintf "grain %d" g) expected got)
        [ 1; 3; 64; 100_000 ])

(* --- filter / pack / flatten ------------------------------------------ *)

let prop_filter =
  qtest "filter = Array filter" int_array (fun a ->
      let f x = x mod 3 = 0 in
      in_pool (fun () -> P.filter f a)
      = Array.of_list (List.filter f (Array.to_list a)))

let prop_pack_index =
  qtest "pack_index finds positions" int_array (fun a ->
      let got = in_pool (fun () -> P.pack_index (fun i x -> (i + x) mod 2 = 0) a) in
      let expected =
        Array.to_list a
        |> List.mapi (fun i x -> (i, x))
        |> List.filter (fun (i, x) -> (i + x) mod 2 = 0)
        |> List.map fst |> Array.of_list
      in
      got = expected)

let prop_pack =
  qtest "pack by flags" int_array (fun a ->
      let flags = Array.map (fun x -> x > 0) a in
      in_pool (fun () -> P.pack flags a)
      = Array.of_list (List.filter (fun x -> x > 0) (Array.to_list a)))

let prop_flatten =
  qtest "flatten = concat"
    QCheck2.Gen.(array_size (int_range 0 20) (array_size (int_range 0 30) (int_range 0 100)))
    (fun parts ->
      in_pool (fun () -> P.flatten parts) = Array.concat (Array.to_list parts))

let prop_filter_mapi =
  qtest "filter_mapi" int_array (fun a ->
      let f i x = if x > i then Some (x - i) else None in
      let got = in_pool (fun () -> P.filter_mapi f a) in
      let expected =
        Array.to_list a |> List.mapi f |> List.filter_map Fun.id |> Array.of_list
      in
      got = expected)

(* --- min/max index, counts -------------------------------------------- *)

let nonempty_array = QCheck2.Gen.(array_size (int_range 1 300) (int_range (-500) 500))

let prop_min_index =
  qtest "min_index finds first minimum" nonempty_array (fun a ->
      let i = in_pool (fun () -> P.min_index compare a) in
      let m = Array.fold_left min a.(0) a in
      a.(i) = m && Array.for_all (fun j -> j >= i || a.(j) <> m) (Array.init (Array.length a) Fun.id))

let prop_max_index =
  qtest "max_index finds maximum" nonempty_array (fun a ->
      let i = in_pool (fun () -> P.max_index compare a) in
      a.(i) = Array.fold_left max a.(0) a)

let prop_count =
  qtest "count" int_array (fun a ->
      in_pool (fun () -> P.count (fun x -> x < 0) a)
      = List.length (List.filter (fun x -> x < 0) (Array.to_list a)))

let prop_any_all =
  qtest "any_of / all_of" int_array (fun a ->
      let p x = x mod 5 = 0 in
      in_pool (fun () -> P.any_of p a) = Array.exists p a
      && in_pool (fun () -> P.all_of p a) = Array.for_all p a)

(* --- binary search ----------------------------------------------------- *)

let prop_bounds =
  qtest "lower/upper bound"
    QCheck2.Gen.(pair int_array (int_range (-1000) 1000))
    (fun (a, x) ->
      Array.sort compare a;
      let n = Array.length a in
      let lb = P.lower_bound compare a ~lo:0 ~hi:n x in
      let ub = P.upper_bound compare a ~lo:0 ~hi:n x in
      let ok_lb =
        (lb = n || a.(lb) >= x) && (lb = 0 || a.(lb - 1) < x)
      in
      let ok_ub = (ub = n || a.(ub) > x) && (ub = 0 || a.(ub - 1) <= x) in
      ok_lb && ok_ub && lb <= ub)

(* --- sorts -------------------------------------------------------------- *)

let prop_merge_sort =
  qtest "merge_sort = stable_sort" int_array (fun a ->
      let expected = Array.copy a in
      Array.stable_sort compare expected;
      in_pool (fun () -> Psort.merge_sort compare a) = expected)

let prop_merge_sort_stability =
  qtest "merge_sort stability"
    QCheck2.Gen.(array_size (int_range 0 400) (int_range 0 10))
    (fun keys ->
      (* Pair each key with its index; sort by key only; equal keys must
         keep index order. *)
      let a = Array.mapi (fun i k -> (k, i)) keys in
      let sorted = in_pool (fun () -> Psort.merge_sort (fun (k1, _) (k2, _) -> compare k1 k2) a) in
      let ok = ref true in
      for i = 0 to Array.length sorted - 2 do
        let k1, v1 = sorted.(i) and k2, v2 = sorted.(i + 1) in
        if k1 = k2 && v1 > v2 then ok := false
      done;
      !ok)

let prop_merge =
  qtest "parallel merge"
    QCheck2.Gen.(pair int_array int_array)
    (fun (a, b) ->
      Array.sort compare a;
      Array.sort compare b;
      let expected = Array.append a b in
      Array.sort compare expected;
      in_pool (fun () -> Psort.merge compare a b) = expected)

let prop_radix_sort =
  qtest "radix_sort = sort"
    QCheck2.Gen.(array_size (int_range 0 500) (int_range 0 ((1 lsl 16) - 1)))
    (fun a ->
      let expected = Array.copy a in
      Array.sort compare expected;
      in_pool (fun () -> Psort.radix_sort ~bits:16 a) = expected)

let prop_radix_sort_by_stability =
  qtest "radix_sort_by stability"
    QCheck2.Gen.(array_size (int_range 0 400) (int_range 0 255))
    (fun keys ->
      let a = Array.mapi (fun i k -> (k, i)) keys in
      let sorted = in_pool (fun () -> Psort.radix_sort_by ~key:fst ~bits:8 a) in
      let ok = ref true in
      for i = 0 to Array.length sorted - 2 do
        let k1, v1 = sorted.(i) and k2, v2 = sorted.(i + 1) in
        if k1 > k2 then ok := false;
        if k1 = k2 && v1 > v2 then ok := false
      done;
      !ok)

let prop_sample_sort =
  qtest "sample_sort sorts"
    QCheck2.Gen.(array_size (int_range 0 2_000) (int_range (-10_000) 10_000))
    (fun a ->
      let expected = Array.copy a in
      Array.sort compare expected;
      in_pool (fun () -> Sample_sort.sort compare a) = expected)

let test_sample_sort_large () =
  (* Big enough to take the multi-bucket path (n >= 8192). *)
  in_pool (fun () ->
      let a = Prandom.ints ~seed:11 100_000 ~bound:1_000_000 in
      let expected = Array.copy a in
      Array.sort compare expected;
      Alcotest.(check bool) "multi-bucket path" true (Sample_sort.num_buckets 100_000 > 1);
      check (Alcotest.array Alcotest.int) "sorted" expected (Sample_sort.sort compare a))

let test_sample_sort_all_equal () =
  in_pool (fun () ->
      let a = Array.make 20_000 7 in
      check (Alcotest.array Alcotest.int) "degenerate pivots" a (Sample_sort.sort compare a))

(* --- collect ------------------------------------------------------------- *)

let prop_count_by =
  qtest "count_by = Hashtbl counting"
    QCheck2.Gen.(array_size (int_range 0 1_000) (int_range 0 63))
    (fun keys ->
      let got = in_pool (fun () -> Collect.count_by ~key:Fun.id ~bits:6 keys) in
      let tbl = Hashtbl.create 64 in
      Array.iter
        (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        keys;
      Array.length got = Hashtbl.length tbl
      && Array.for_all (fun (k, c) -> Hashtbl.find_opt tbl k = Some c) got
      && Psort.is_sorted (fun (a, _) (b, _) -> compare a b) got)

let prop_group_by_stable =
  qtest "group_by preserves in-group order"
    QCheck2.Gen.(array_size (int_range 0 500) (int_range 0 15))
    (fun keys ->
      let pairs = Array.mapi (fun i k -> (k, i)) keys in
      let groups = in_pool (fun () -> Collect.group_by ~key:fst ~bits:4 pairs) in
      Array.for_all
        (fun (k, members) ->
          Array.for_all (fun (k', _) -> k' = k) members
          && Psort.is_sorted (fun (_, i) (_, j) -> compare i j) members)
        groups)

let prop_collect_reduce_sum =
  qtest "collect_reduce sums per key"
    QCheck2.Gen.(array_size (int_range 0 800) (pair (int_range 0 31) (int_range (-50) 50)))
    (fun pairs ->
      let got =
        in_pool (fun () ->
            Collect.collect_reduce ~key:fst ~value:snd ~op:( + ) ~zero:0 ~bits:5 pairs)
      in
      let tbl = Hashtbl.create 32 in
      Array.iter
        (fun (k, v) -> Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        pairs;
      Array.length got = Hashtbl.length tbl
      && Array.for_all (fun (k, s) -> Hashtbl.find_opt tbl k = Some s) got)

let test_histogram_by () =
  in_pool (fun () ->
      let keys = [| 1; 3; 3; 0; 1; 3 |] in
      check (Alcotest.array Alcotest.int) "dense histogram" [| 1; 2; 0; 3 |]
        (Collect.histogram_by ~key:Fun.id ~bits:2 ~buckets:4 keys))

let test_merge_sort_inplace () =
  in_pool (fun () ->
      let a = Array.init 50_000 (fun i -> (i * 7919) mod 1000) in
      let expected = Array.copy a in
      Array.stable_sort compare expected;
      Psort.merge_sort_inplace compare a;
      check (Alcotest.array Alcotest.int) "inplace" expected a)

let test_is_sorted () =
  Alcotest.(check bool) "sorted" true (Psort.is_sorted compare [| 1; 2; 2; 3 |]);
  Alcotest.(check bool) "unsorted" false (Psort.is_sorted compare [| 2; 1 |]);
  Alcotest.(check bool) "empty" true (Psort.is_sorted compare [||])

(* --- prandom ------------------------------------------------------------ *)

let test_prandom_deterministic () =
  let a = Prandom.ints ~seed:9 1000 ~bound:50 in
  let b = Prandom.ints ~seed:9 1000 ~bound:50 in
  check (Alcotest.array Alcotest.int) "same seed same data" a b;
  Alcotest.(check bool) "bounds" true (Array.for_all (fun x -> x >= 0 && x < 50) a)

let test_prandom_permutation () =
  let p = Prandom.permutation ~seed:3 500 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 500 Fun.id) sorted

let test_prandom_almost_sorted () =
  let a = Prandom.almost_sorted ~seed:3 1000 ~swaps:10 in
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation" (Array.init 1000 Fun.id) sorted;
  (* Few swaps leave most positions fixed. *)
  let fixed = ref 0 in
  Array.iteri (fun i x -> if i = x then incr fixed) a;
  Alcotest.(check bool) "mostly sorted" true (!fixed > 900)

let test_exponential_bounds () =
  let a = Prandom.exponential_ints ~seed:3 5000 ~bound:1024 in
  Alcotest.(check bool) "bounds" true (Array.for_all (fun x -> x >= 0 && x < 1024) a);
  (* Exponential: small values dominate. *)
  let small = Array.fold_left (fun acc x -> if x < 64 then acc + 1 else acc) 0 a in
  Alcotest.(check bool) "skewed small" true (small > 2500)

let () =
  let finally () = if Lazy.is_val pool then S.Pool.shutdown (Lazy.force pool) in
  Fun.protect ~finally (fun () ->
      Alcotest.run "parlay"
        [
          ( "tabulate/map",
            [
              Alcotest.test_case "tabulate" `Quick test_tabulate;
              Alcotest.test_case "iteri coverage" `Quick test_iteri_coverage;
              prop_map;
              prop_mapi;
            ] );
          ( "reduce/scan",
            [
              Alcotest.test_case "scan grains" `Quick test_scan_grains;
              prop_reduce_sum;
              prop_reduce_max;
              prop_map_reduce;
              prop_scan;
              prop_scan_inclusive;
            ] );
          ( "filter/pack",
            [ prop_filter; prop_pack_index; prop_pack; prop_flatten; prop_filter_mapi ] );
          ("select", [ prop_min_index; prop_max_index; prop_count; prop_any_all ]);
          ("search", [ prop_bounds ]);
          ( "sort",
            [
              Alcotest.test_case "merge_sort_inplace" `Quick test_merge_sort_inplace;
              Alcotest.test_case "is_sorted" `Quick test_is_sorted;
              prop_merge_sort;
              prop_merge_sort_stability;
              prop_merge;
              prop_radix_sort;
              prop_radix_sort_by_stability;
              Alcotest.test_case "sample_sort large" `Quick test_sample_sort_large;
              Alcotest.test_case "sample_sort all-equal" `Quick test_sample_sort_all_equal;
              prop_sample_sort;
            ] );
          ( "collect",
            [
              Alcotest.test_case "histogram_by" `Quick test_histogram_by;
              prop_count_by;
              prop_group_by_stable;
              prop_collect_reduce_sum;
            ] );
          ( "prandom",
            [
              Alcotest.test_case "deterministic" `Quick test_prandom_deterministic;
              Alcotest.test_case "permutation" `Quick test_prandom_permutation;
              Alcotest.test_case "almost_sorted" `Quick test_prandom_almost_sorted;
              Alcotest.test_case "exponential" `Quick test_exponential_bounds;
            ] );
        ])
