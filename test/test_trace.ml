(* Tracing layer: histogram bucket geometry and percentiles, event-ring
   wraparound, latency correlation, Chrome trace-event export (validated
   with a tiny JSON parser), and end-to-end traces from the real
   scheduler and the simulator. *)

open Lcws
module H = Histogram

(* --- histogram -------------------------------------------------------- *)

let hist_exact_small () =
  for v = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "bucket of %d" v) v (H.bucket_index v)
  done;
  (* the first sub-bucketed octave is still exact: width 1 up to 31 *)
  for v = 16 to 31 do
    let lo, hi = H.bucket_bounds (H.bucket_index v) in
    Alcotest.(check (pair int int)) (Printf.sprintf "bounds of %d" v) (v, v) (lo, hi)
  done

let hist_bounds_contain () =
  (* every value lands in a bucket whose bounds contain it *)
  List.iter
    (fun v ->
      let i = H.bucket_index v in
      let lo, hi = H.bucket_bounds i in
      if not (lo <= v && v <= hi) then
        Alcotest.failf "value %d in bucket %d with bounds [%d, %d]" v i lo hi;
      if i < 0 || i >= H.num_buckets then Alcotest.failf "bucket %d out of range" i)
    [
      0; 1; 15; 16; 31; 32; 33; 63; 64; 100; 1000; 4097; 65535; 1_000_000; 123_456_789;
      max_int / 2; max_int;
    ]

let hist_bounds_monotonic () =
  (* buckets tile the value space without gaps or overlaps *)
  let prev_hi = ref (-1) in
  for i = 0 to H.num_buckets - 1 do
    let lo, hi = H.bucket_bounds i in
    if lo <> !prev_hi + 1 then Alcotest.failf "bucket %d starts at %d, expected %d" i lo (!prev_hi + 1);
    if hi < lo then Alcotest.failf "bucket %d empty range [%d, %d]" i lo hi;
    prev_hi := hi
  done

let hist_percentiles () =
  let h = H.create () in
  for v = 1 to 100 do
    H.add h v
  done;
  Alcotest.(check int) "count" 100 (H.count h);
  Alcotest.(check int) "max" 100 (H.max_value h);
  Alcotest.(check int) "min" 1 (H.min_value h);
  Alcotest.(check (float 0.001)) "mean" 50.5 (H.mean h);
  (* values <= 31 are exact; above, the bound is the bucket top *)
  Alcotest.(check int) "p25 exact" 25 (H.percentile h 0.25);
  let p50 = H.percentile h 0.50 in
  if p50 < 50 || p50 > 55 then Alcotest.failf "p50=%d outside [50, 55]" p50;
  let p99 = H.percentile h 0.99 in
  if p99 < 99 || p99 > 103 then Alcotest.failf "p99=%d outside [99, 103]" p99;
  Alcotest.(check int) "p100 capped at max" 100 (H.percentile h 1.0)

let hist_merge_reset () =
  let a = H.create () and b = H.create () in
  H.add a 10;
  H.add b 1000;
  H.add b 2000;
  H.merge a b;
  Alcotest.(check int) "merged count" 3 (H.count a);
  Alcotest.(check int) "merged max" 2000 (H.max_value a);
  Alcotest.(check int) "merged min" 10 (H.min_value a);
  H.reset a;
  Alcotest.(check int) "reset count" 0 (H.count a);
  Alcotest.(check int) "empty percentile" 0 (H.percentile a 0.5)

let hist_negative_clamps () =
  let h = H.create () in
  H.add h (-5);
  Alcotest.(check int) "clamped to 0" 0 (H.max_value h);
  Alcotest.(check int) "counted" 1 (H.count h)

(* --- event rings ------------------------------------------------------- *)

let ring_wraparound () =
  let t = Trace.create ~capacity:8 ~clock:(fun () -> 0) ~num_workers:2 () in
  for i = 0 to 19 do
    Trace.emit t ~worker:0 ~time:i Trace.Steal_attempt ~arg:1
  done;
  Alcotest.(check int) "length capped" 8 (Trace.length t ~worker:0);
  Alcotest.(check int) "dropped" 12 (Trace.dropped t ~worker:0);
  Alcotest.(check int) "other ring untouched" 0 (Trace.length t ~worker:1);
  Alcotest.(check int) "total counts all" 20 (Trace.total_events t);
  (* survivors are the newest 8, oldest first *)
  let times = List.map (fun (ts, _, _) -> ts) (Trace.events t ~worker:0) in
  Alcotest.(check (list int)) "newest kept in order" [ 12; 13; 14; 15; 16; 17; 18; 19 ] times;
  (* per-kind counts are maintained at record time, unaffected by wrap *)
  let attempts = List.assoc Trace.Steal_attempt (Trace.counts t) in
  Alcotest.(check int) "kind count" 20 attempts

(* Regression: the default clock used to truncate a float of seconds to
   an int, collapsing every timestamp in the same second to one value
   (all latencies measured 0). It must be an integer monotonic clock
   with visibly sub-second resolution. *)
let default_clock_monotonic () =
  let t = Trace.create ~capacity:8 ~num_workers:1 () in
  let a = Trace.now t in
  let prev = ref a in
  for _ = 1 to 10_000 do
    let v = Trace.now t in
    if v < !prev then Alcotest.failf "clock went backwards: %d after %d" v !prev;
    prev := v
  done;
  Unix.sleepf 0.002;
  let b = Trace.now t in
  if b - a < 100_000 then
    Alcotest.failf "clock advanced only %d over >= 2ms (sub-second truncation?)" (b - a)

let null_is_disabled () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Alcotest.(check int) "now is 0" 0 (Trace.now t);
  (* all hooks must be harmless no-ops *)
  Trace.record_steal_attempt t ~thief:0 ~victim:1 ~time:5;
  Trace.record_steal_ok t ~thief:0 ~victim:1 ~time:9 ~search_start:2;
  Trace.record_notify t ~thief:0 ~victim:1 ~time:5;
  Trace.record_expose t ~worker:1 ~time:7 ~tasks:1;
  Trace.record_task_start t ~worker:0 ~time:1;
  Alcotest.(check int) "nothing recorded" 0 (Trace.total_events t)

let latency_correlation () =
  let t = Trace.create ~capacity:64 ~clock:(fun () -> 0) ~num_workers:2 () in
  (* thief 0 notifies victim 1 at t=100; victim exposes at t=130; the
     thief steals at t=150 having started searching at t=90 *)
  Trace.record_idle_enter t ~worker:0 ~time:90;
  Trace.record_notify t ~thief:0 ~victim:1 ~time:100;
  Trace.record_expose t ~worker:1 ~time:130 ~tasks:1;
  Trace.record_steal_ok t ~thief:0 ~victim:1 ~time:150 ~search_start:90;
  Trace.record_idle_exit t ~worker:0 ~time:150;
  let l = Trace.latencies t in
  Alcotest.(check int) "one exposure sample" 1 (H.count l.Trace.expose);
  Alcotest.(check int) "exposure latency" 30 (H.max_value l.Trace.expose);
  Alcotest.(check int) "one steal sample" 1 (H.count l.Trace.steal);
  Alcotest.(check int) "steal latency" 60 (H.max_value l.Trace.steal);
  Alcotest.(check int) "one handshake sample" 1 (H.count l.Trace.handshake);
  Alcotest.(check int) "handshake latency" 50 (H.max_value l.Trace.handshake);
  (* a second expose with no pending notify adds no sample *)
  Trace.record_expose t ~worker:1 ~time:200 ~tasks:1;
  let l2 = Trace.latencies t in
  Alcotest.(check int) "unmatched expose ignored" 1 (H.count l2.Trace.expose)

(* --- a tiny JSON parser (checks well-formedness + structure) ----------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d, got %c" c !pos (peek ())));
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          let c = peek () in
          advance ();
          (match c with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              (* \uXXXX — keep the escape opaque, we only check validity *)
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | c -> raise (Bad (Printf.sprintf "bad unicode escape %c" c)));
                advance ()
              done
          | c -> Buffer.add_char b c);
          go ()
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
          in
          Arr (elements [])
        end
    | '"' -> Str (parse_string ())
    | 't' ->
        pos := !pos + 4;
        Bool true
    | 'f' ->
        pos := !pos + 5;
        Bool false
    | 'n' ->
        pos := !pos + 4;
        Null
    | _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
        do
          advance ()
        done;
        if !pos = start then raise (Bad (Printf.sprintf "unexpected char at %d" start));
        Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad (Printf.sprintf "trailing garbage at %d" !pos));
  v

let obj_field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let check_chrome_json s ~num_workers =
  let j = try parse_json s with Bad m -> Alcotest.failf "invalid JSON: %s" m in
  let events =
    match obj_field "traceEvents" j with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  (* every event is an object with name/ph/pid/tid/ts; B/E balance per tid *)
  let depth = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let str name =
        match obj_field name ev with Some (Str s) -> s | _ -> Alcotest.failf "missing %s" name
      in
      let ph = str "ph" in
      ignore (str "name");
      let tid =
        match obj_field "tid" ev with
        | Some (Num f) -> int_of_float f
        | _ -> Alcotest.fail "missing tid"
      in
      if tid < 0 || tid >= num_workers then Alcotest.failf "tid %d out of range" tid;
      match ph with
      | "B" -> Hashtbl.replace depth tid (1 + Option.value ~default:0 (Hashtbl.find_opt depth tid))
      | "E" ->
          let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
          if d <= 0 then Alcotest.failf "unmatched E on tid %d" tid;
          Hashtbl.replace depth tid (d - 1)
      | "i" | "M" -> ()
      | other -> Alcotest.failf "unexpected phase %S" other)
    events;
  Hashtbl.iter (fun tid d -> if d <> 0 then Alcotest.failf "unclosed B on tid %d" tid) depth;
  events

let chrome_export () =
  let t = Trace.create ~capacity:64 ~clock:(fun () -> 0) ~num_workers:2 () in
  Trace.record_task_start t ~worker:0 ~time:1_000;
  Trace.record_idle_enter t ~worker:1 ~time:1_500;
  Trace.record_steal_attempt t ~thief:1 ~victim:0 ~time:2_000;
  Trace.record_notify t ~thief:1 ~victim:0 ~time:2_100;
  Trace.record_expose t ~worker:0 ~time:2_500 ~tasks:2;
  Trace.record_steal_ok t ~thief:1 ~victim:0 ~time:3_000 ~search_start:1_500;
  Trace.record_idle_exit t ~worker:1 ~time:3_000;
  Trace.record_task_end t ~worker:0 ~time:9_999;
  let events = check_chrome_json (Chrome_trace.to_string t) ~num_workers:2 in
  (* instants survive with their args *)
  let instants =
    List.filter (fun ev -> obj_field "ph" ev = Some (Str "i")) events
  in
  Alcotest.(check int) "instant events" 4 (List.length instants)

let chrome_export_unbalanced () =
  (* wraparound can orphan B/E pairs; the exporter must still emit
     balanced JSON *)
  let t = Trace.create ~capacity:4 ~clock:(fun () -> 0) ~num_workers:1 () in
  for i = 0 to 9 do
    if i mod 2 = 0 then Trace.record_task_start t ~worker:0 ~time:(i * 10)
    else Trace.record_task_end t ~worker:0 ~time:(i * 10)
  done;
  (* ring now holds E,B,E,B-ish suffix depending on parity *)
  ignore (check_chrome_json (Chrome_trace.to_string t) ~num_workers:1)

(* --- end-to-end: real scheduler ---------------------------------------- *)

let rec fib n =
  if n < 2 then n
  else
    let a, b = Scheduler.Ops.fork_join (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
    a + b

let scheduler_traced variant () =
  let trace = Trace.create ~capacity:4096 ~num_workers:2 () in
  let pool = Scheduler.Pool.create ~num_workers:2 ~variant ~trace () in
  let r = Scheduler.Pool.run pool (fun () -> fib 15) in
  Scheduler.Pool.shutdown pool;
  Alcotest.(check int) "fib value" 610 r;
  if Trace.total_events trace = 0 then Alcotest.fail "no events recorded";
  let counts = Trace.counts trace in
  let task_starts = List.assoc Trace.Task_start counts in
  let task_ends = List.assoc Trace.Task_end counts in
  Alcotest.(check int) "task start/end balance" task_starts task_ends;
  ignore (check_chrome_json (Chrome_trace.to_string trace) ~num_workers:2);
  (* latencies must be non-negative and bounded by the run *)
  let l = Trace.latencies trace in
  if H.count l.Trace.steal > 0 && H.min_value l.Trace.steal < 0 then
    Alcotest.fail "negative steal latency"

let pool_rejects_small_trace () =
  let trace = Trace.create ~capacity:64 ~num_workers:1 () in
  Alcotest.check_raises "trace too small"
    (Invalid_argument "Pool.create: trace was created for fewer workers") (fun () ->
      ignore (Scheduler.Pool.create ~num_workers:2 ~variant:Scheduler.Signal ~trace ()))

(* --- end-to-end: simulator --------------------------------------------- *)

let sim_traced () =
  let machine = List.hd Lcws.Sim.Cost_model.all in
  let trace = Trace.create ~capacity:8192 ~clock:(fun () -> 0) ~num_workers:4 () in
  let stats =
    Lcws.Harness.Experiments.run_traced ~machine ~policy:Lcws.Sim.Engine.Signal ~p:4 ~scale:0.05
      ~bench:"integerSort" ~instance:"randomSeq_int" ~trace ()
  in
  ignore stats;
  if Trace.total_events trace = 0 then Alcotest.fail "no sim events";
  let counts = Trace.counts trace in
  let ok = List.assoc Trace.Steal_ok counts in
  let attempts = List.assoc Trace.Steal_attempt counts in
  if ok > attempts then Alcotest.failf "steal_ok %d > attempts %d" ok attempts;
  ignore (check_chrome_json (Chrome_trace.to_string trace) ~num_workers:4)

(* --- properties (seed pinned by LCWS_TEST_SEED, see seedutil.ml) ------ *)

(* Kind codes round-trip for every kind, and an arbitrary int either
   decodes to the kind that encodes back to it or is rejected. *)
let prop_kind_code_roundtrip code =
  if code >= 0 && code < List.length Trace.all_kinds then
    Trace.kind_code (Trace.kind_of_code code) = code
  else
    match Trace.kind_of_code code with
    | k ->
        QCheck2.Test.fail_reportf "out-of-range code %d decoded to %s" code
          (Trace.kind_name k)
    | exception Invalid_argument _ -> true

(* The ring never lies about volume: whatever random stream of events a
   worker emits into however small a ring, [length] + [dropped] equals
   the emissions, [length] never exceeds the capacity, and the survivors
   are exactly the newest suffix (times strictly increasing here). *)
let prop_ring_accounting (cap_bits, emits) =
  let capacity = 16 lsl cap_bits in
  let t = Trace.create ~capacity ~num_workers:2 () in
  let n = List.length emits in
  List.iteri
    (fun i e ->
      let kind = List.nth Trace.all_kinds (e mod List.length Trace.all_kinds) in
      Trace.emit t ~worker:0 ~time:i kind ~arg:e)
    emits;
  let len = Trace.length t ~worker:0 and drop = Trace.dropped t ~worker:0 in
  if len + drop <> n then
    QCheck2.Test.fail_reportf "length %d + dropped %d <> emitted %d" len drop n
  else if len > capacity then
    QCheck2.Test.fail_reportf "length %d exceeds capacity %d" len capacity
  else
    let times = List.map (fun (time, _, _) -> time) (Trace.events t ~worker:0) in
    times = List.init len (fun i -> n - len + i)
    || QCheck2.Test.fail_reportf "ring did not keep the newest %d events" len

(* Histogram conservation: every added value is counted, the extrema are
   exact, and any percentile falls in a bucket whose bounds contain it. *)
let prop_histogram_conserves values =
  match values with
  | [] -> true
  | _ ->
      let h = H.create () in
      List.iter (H.add h) values;
      let n = List.length values in
      H.count h = n
      && H.max_value h = List.fold_left max min_int values
      && H.min_value h = List.fold_left min max_int values
      &&
      let p = H.percentile h 0.5 in
      let lo, hi = H.bucket_bounds (H.bucket_index p) in
      lo <= p && p <= hi

let () =
  Alcotest.run "trace"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact small buckets" `Quick hist_exact_small;
          Alcotest.test_case "bounds contain" `Quick hist_bounds_contain;
          Alcotest.test_case "bounds tile" `Quick hist_bounds_monotonic;
          Alcotest.test_case "percentiles" `Quick hist_percentiles;
          Alcotest.test_case "merge and reset" `Quick hist_merge_reset;
          Alcotest.test_case "negative clamps" `Quick hist_negative_clamps;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick ring_wraparound;
          Alcotest.test_case "default clock monotonic" `Quick default_clock_monotonic;
          Alcotest.test_case "null sink" `Quick null_is_disabled;
          Alcotest.test_case "latency correlation" `Quick latency_correlation;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export round-trip" `Quick chrome_export;
          Alcotest.test_case "unbalanced durations" `Quick chrome_export_unbalanced;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "ws traced" `Quick (scheduler_traced Scheduler.Ws);
          Alcotest.test_case "signal traced" `Quick (scheduler_traced Scheduler.Signal);
          Alcotest.test_case "half traced" `Quick (scheduler_traced Scheduler.Half);
          Alcotest.test_case "trace size validated" `Quick pool_rejects_small_trace;
          Alcotest.test_case "simulator traced" `Quick sim_traced;
        ] );
      ( "properties",
        [
          Seedutil.qtest ~count:200 "kind codes round-trip"
            QCheck2.Gen.(int_range (-2) 40)
            prop_kind_code_roundtrip;
          Seedutil.qtest ~count:100 "ring accounting under wraparound"
            QCheck2.Gen.(pair (int_range 0 3) (list_size (int_range 0 200) nat))
            prop_ring_accounting;
          Seedutil.qtest ~count:200 "histogram conserves its stream"
            QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 1_000_000))
            prop_histogram_conserves;
        ] );
    ]
