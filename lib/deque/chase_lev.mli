(** Chase-Lev concurrent work-stealing deque — the WS baseline.

    This is the fully concurrent deque underlying Parlay's default
    scheduler (Chase & Lev, SPAA '05, in the C11 formulation of Lê et
    al.). Every owner [pop_bottom] executes a seq-cst fence, and the
    owner/thief race on the last element costs a CAS — the
    synchronization the paper's split deque eliminates for local
    operations (cf. Attiya et al.'s lower bound).

    Ownership contract: one owner domain for [push_bottom]/[pop_bottom];
    any domain may [steal]. *)

type 'a t

val create : capacity:int -> dummy:'a -> metrics:Lcws_sync.Metrics.t -> unit -> 'a t

val capacity : 'a t -> int

(** Owner: push; release-store of [bottom] (no fence counted, matching the
    C11 implementation). Raises {!Deque_intf.Deque_full} when full. *)
val push_bottom : 'a t -> 'a -> unit

(** Owner: pop; one seq-cst fence always, one CAS when taking the last
    element. *)
val pop_bottom : 'a t -> 'a option

(** Thief: one seq-cst fence plus one CAS on a non-empty deque. Never
    returns [Private_work]. *)
val steal : 'a t -> metrics:Lcws_sync.Metrics.t -> 'a Deque_intf.steal_result

(** Racy size estimate. *)
val size : 'a t -> int

val is_empty : 'a t -> bool

(** Owner: drop everything (between benchmark runs). *)
val clear : 'a t -> unit

(** Adapter to the unified {!Deque_intf.DEQUE} API. The whole deque is
    thief-visible: [pop_public_bottom] is [None], [update_public_bottom]
    exposes nothing, and [pop_top] is {!steal}. *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t and type t = E.t t
