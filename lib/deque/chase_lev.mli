(** Chase-Lev concurrent work-stealing deque — the WS baseline.

    This is the fully concurrent deque underlying Parlay's default
    scheduler (Chase & Lev, SPAA '05, in the C11 formulation of Lê et
    al.). Every owner [pop_bottom] executes a seq-cst fence, and the
    owner/thief race on the last element costs a CAS — the
    synchronization the paper's split deque eliminates for local
    operations (cf. Attiya et al.'s lower bound).

    Written against {!Deque_intf.ATOMIC} through the build-time
    [Atomic_shim] swap so the interleaving checker in [lib/check] can
    re-compile it with instrumented atomics and explore owner/thief
    schedules (including circular buffer wraparound) deterministically;
    the flat API below is the zero-cost real-atomic build.

    Ownership contract: one owner domain for [push_bottom]/[pop_bottom];
    any domain may [steal]. *)

(** Per-operation contracts are documented on {!Deque_intf.CHASE_LEV}. *)
module type S = Deque_intf.CHASE_LEV

(** Seeded protocol mutations, used only by the interleaving checker's
    self-test (each one must produce a counterexample; see
    [lib/check/scenarios.ml]). *)
module Mutation : sig
  type t = {
    steal_store_top : bool;
        (** the thief publishes its claim on [top] with a plain store
            instead of the CAS — two racing consumers can both take one
            slot *)
  }

  val clean : t

  val steal_store_top : t
end

(** The checker's entry point for seeded-bug variants: the production
    algorithm text with the mutated [steal]. *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S

(** The real deque: the flat implementation with {!Mutation.clean}. *)
include S
