(** Chase-Lev concurrent work-stealing deque — the WS baseline.

    This is the fully concurrent deque underlying Parlay's default
    scheduler (Chase & Lev, SPAA '05, in the C11 formulation of Lê et
    al.). Every owner [pop_bottom] executes a seq-cst fence, and the
    owner/thief race on the last element costs a CAS — the
    synchronization the paper's split deque eliminates for local
    operations (cf. Attiya et al.'s lower bound).

    Written against {!Deque_intf.ATOMIC} through the build-time
    [Atomic_shim] swap so the interleaving checker in [lib/check] can
    re-compile it with instrumented atomics and explore owner/thief
    schedules (including circular buffer wraparound) deterministically;
    the flat API below is the zero-cost real-atomic build.

    Ownership contract: one owner domain for [push_bottom]/[pop_bottom];
    any domain may [steal]. *)

(** Per-operation contracts are documented on {!Deque_intf.CHASE_LEV}. *)
module type S = Deque_intf.CHASE_LEV

include S
