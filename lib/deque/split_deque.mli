(** The LCWS split deque (paper Listing 2, plus the Section 4 fix).

    A split deque is an array-backed deque divided by [public_bot] into a
    thief-visible public part [\[top, public_bot)] and an owner-private part
    [\[public_bot, bot)]. Owner operations on the private part
    ([push_bottom], [pop_bottom]) are synchronization-free; the owner pays
    fences only in [pop_public_bottom] (two per call) and thieves pay one
    CAS per successful steal. The [age] word packs [(tag, top)] so a single
    compare-and-set both advances [top] and defeats the ABA problem.

    Ownership contract: exactly one domain (the owner) may call
    [push_bottom], [pop_bottom], [pop_bottom_unsafe_fixed],
    [pop_public_bottom] and [update_public_bottom]. Any domain may call
    [pop_top]. Thieves pass their own {!Lcws_sync.Metrics.t} so that every
    counter field stays single-writer. *)

type 'a t

(** [create ~capacity ~dummy ~metrics ()] — [dummy] fills empty slots (it
    is never returned), [metrics] is the owner's counter block. Capacity
    bounds the *live* extent \[0, bot); the fork-join discipline keeps it
    proportional to the recursion depth. *)
val create : capacity:int -> dummy:'a -> metrics:Lcws_sync.Metrics.t -> unit -> 'a t

val capacity : 'a t -> int

(** Owner: push a task below the bottom of the private part.
    Synchronization-free. Raises {!Deque_intf.Deque_full} when out of
    slots. *)
val push_bottom : 'a t -> 'a -> unit

(** Owner: take the bottom-most private task, if any. Synchronization-free.
    This is the *original* Listing 2 version ([bot == public_bot]
    comparison first), used by the user-space, Conservative and Expose-Half
    variants. *)
val pop_bottom : 'a t -> 'a option

(** Owner: the Section 4 signal-safe variant that decrements [bot] before
    comparing ([--bot < public_bot]), closing the data race with an
    asynchronous [update_public_bottom]. On [None] the caller must invoke
    [pop_public_bottom] next (which repairs [bot]), exactly as the
    scheduler of Listing 1 does. *)
val pop_bottom_signal_safe : 'a t -> 'a option

(** Owner: take the bottom-most task of the *public* part, competing with
    thieves. Two seq-cst fences per call (Listing 2 lines 12 and 27), plus
    one CAS when racing for the last public task. Resets [bot] to 0 when
    the deque empties (including the Section 4 amendment: also when
    [public_bot] is already 0). *)
val pop_public_bottom : 'a t -> 'a option

(** Thief: try to steal the top-most public task. [metrics] is the thief's
    own counter block. One CAS on success or abort; no fences. *)
val pop_top : 'a t -> metrics:Lcws_sync.Metrics.t -> 'a Deque_intf.steal_result

(** Owner (or its signal handler): expose work.
    [update_public_bottom t ~policy] transfers private tasks to the public
    part according to the variant's exposure policy and returns how many
    tasks were exposed. *)
type exposure_policy = Deque_intf.exposure_policy =
  | Expose_one  (** base/user-space/signal: one task if any is private *)
  | Expose_conservative  (** Cons (4.1.1): one task iff >= 2 are private *)
  | Expose_half  (** Half (4.1.2): round(r/2) tasks when r >= 3, else one *)

val update_public_bottom : 'a t -> policy:exposure_policy -> int

(** Thief-side racy size estimates (plain reads; may be stale). *)

val has_two_tasks : 'a t -> bool

val private_size : 'a t -> int

val public_size : 'a t -> int

val size : 'a t -> int

val is_empty : 'a t -> bool

(** Owner: drop everything (between benchmark runs). *)
val clear : 'a t -> unit

(** Expose the packed age encoding for white-box tests. *)
module Age : sig
  val pack : tag:int -> top:int -> int
  val top : int -> int
  val tag : int -> int
  val max_top : int
end

(** Adapter to the unified {!Deque_intf.DEQUE} API (the identity mapping;
    the split deque defines that API's shape). *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t and type t = E.t t
