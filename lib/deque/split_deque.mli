(** The LCWS split deque (paper Listing 2, plus the Section 4 fix).

    A split deque is an array-backed deque divided by [public_bot] into a
    thief-visible public part [\[top, public_bot)] and an owner-private part
    [\[public_bot, bot)]. Owner operations on the private part
    ([push_bottom], [pop_bottom]) are synchronization-free; the owner pays
    fences only in [pop_public_bottom] (two per call) and thieves pay one
    CAS per successful steal. The [age] word packs [(tag, top)] so a single
    compare-and-set both advances [top] and defeats the ABA problem.

    The source is written against {!Deque_intf.ATOMIC} through the
    build-time [Atomic_shim] swap: compiled here against the real
    primitive shim it is the lock-free deque (zero abstraction cost; see
    [atomic_shim.ml]); re-compiled in [lib/check/deques] against an
    instrumented atomic it yields to a schedule enumerator at every
    load, store, CAS and plain [bot] access. The per-operation contracts
    are documented on {!Deque_intf.SPLIT}.

    Ownership contract: exactly one domain (the owner) may call
    [push_bottom], [pop_bottom], [pop_bottom_signal_safe],
    [pop_public_bottom] and [update_public_bottom]. Any domain may call
    [pop_top]. Thieves pass their own {!Lcws_sync.Metrics.t} so that every
    counter field stays single-writer. *)

(** Expose the packed age encoding for white-box tests. [pack] masks the
    tag to {!Age.max_tag} (31 bits) so ABA bumps wrap instead of
    overflowing into the sign bit. *)
module Age : sig
  val pack : tag:int -> top:int -> int

  val top : int -> int

  val tag : int -> int

  val max_top : int

  val max_tag : int
end

(** Seeded protocol mutations, used only by the interleaving checker's
    self-test (each one must produce a counterexample; see
    [lib/check/scenarios.ml]). *)
module Mutation : sig
  type t = {
    drop_fence : bool;
        (** hoist the [age] load above the [public_bot] store in
            [pop_public_bottom] — the reordering the Listing 2 line 11-12
            fence forbids *)
    drop_bot_repair : bool;
        (** skip the Section 4 [bot <- 0] repair after a failed
            decrement-first pop on an empty deque *)
    drop_tag_bump : bool;
        (** do not bump the ABA tag when the owner resets the deque in
            the last-task race *)
    steal_over_copy : bool;
        (** batch steal claims its whole batch with one CAS advancing
            [top] by [k] after copying the slots — unsound against the
            owner's plain public pops (DESIGN.md §3.8) *)
  }

  val none : t
end

type exposure_policy = Deque_intf.exposure_policy =
  | Expose_one  (** base/user-space/signal: one task if any is private *)
  | Expose_conservative  (** Cons (4.1.1): one task iff >= 2 are private *)
  | Expose_half  (** Half (4.1.2): round(r/2) tasks when r >= 3, else one *)

module type S = Deque_intf.SPLIT

(** The checker's entry point for seeded-bug variants: the production
    algorithm text with one protocol line knocked out per {!Mutation}
    knob (all three live in [pop_public_bottom]; every other operation
    is shared with the flat API below). *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S

(** The real deque: the flat implementation with {!Mutation.none}. *)
include S
