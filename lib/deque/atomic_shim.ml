(* Real memory accesses for the deque layer: the zero-cost instantiation
   of [Deque_intf.ATOMIC].

   The deque sources are written against a module named [Atomic_shim]
   and compiled *twice*: here against this module, whose accessors are
   [external] re-declarations of the compiler's atomic primitives, and a
   second time in lib/check/deques against the instrumented shim that
   yields to the interleaving checker's schedule enumerator. Swapping
   the module at build time — instead of abstracting over a functor
   parameter — matters because the compilers (without flambda) never
   inline functor bodies: a [Make (Real_atomic)] path turns every
   [Atomic.get] into an indirect call, which triples the cost of the
   owner's synchronization-free fast path. The [external] declarations
   below compile to the same [%atomic_load]/[%atomic_cas]/[%field0]
   instructions the deques used before the checker existed.

   [plain] cells model unsynchronized owner fields with racy readers
   (the split deque's [bot]); here they are bare [ref]s, read and
   written with the same primitives as [(!)] and [(:=)]. [?name] labels
   a cell in checker counterexample traces and is dropped here.

   Deliberately NO .mli: dune's dev profile compiles interface-sealed
   modules with -opaque, which hides the implementation info callers
   need to turn [set] into its inline exchange — the very cost this
   module exists to avoid. The inferred interface re-exports the
   externals as externals, so call sites inline either way; conformance
   to [Deque_intf.ATOMIC] is asserted in deque_intf.ml. *)

type 'a t = 'a Atomic.t

(* Thief-visible words ([top]/[age], [public_bot], owner fence cells)
   each get their own cache line: adjacent workers' deques are created
   back-to-back, and an unpadded 1-word atomic would share its line —
   and therefore every thief CAS and owner SC store — with a
   neighbour's. The primitives below only ever touch field 0, so the
   widened block is free at access time. *)
let make ?name:_ v = Lcws_sync.Padding.atomic v

external get : 'a t -> 'a = "%atomic_load"

external exchange : 'a t -> 'a -> 'a = "%atomic_exchange"

(* Same definition as [Stdlib.Atomic.set]: an SC exchange with the old
   value dropped. *)
let set r v = ignore (exchange r v)

external compare_and_set : 'a t -> 'a -> 'a -> bool = "%atomic_cas"

type 'a plain = 'a ref

(* [bot] is owner-written but racily thief-read ([pop_top]'s
   private-work heuristic), so it gets a line of its own too. *)
let plain ?name:_ v = Lcws_sync.Padding.plain v

external read : 'a plain -> 'a = "%field0"

external write : 'a plain -> 'a -> unit = "%setfield0"
