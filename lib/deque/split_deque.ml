module Metrics = Lcws_sync.Metrics

(* [A] is the build-time atomic swap point: here the primitive-exposing
   real shim; in lib/check/deques this same source is re-compiled against
   the instrumented shim so every access below becomes a scheduling point
   for the interleaving checker. *)
module A = Atomic_shim
open Deque_intf

(* [age] packs a 31-bit ABA tag and a 32-bit top index in one immediate so
   one [compare_and_set] updates both, mirroring the paper's two-field
   [age_t] updated by a double-word CAS. The tag is masked on [pack] so
   that after 2^31 bumps it wraps instead of overflowing into the OCaml
   sign bit (which would make packed ages negative and, on the wrap
   boundary, collide with in-flight CAS expectations). *)
module Age = struct
  let top_bits = 32
  let max_top = (1 lsl top_bits) - 1
  let tag_bits = 31
  let max_tag = (1 lsl tag_bits) - 1
  let pack ~tag ~top = (tag land max_tag) lsl top_bits lor (top land max_top)
  let top age = age land max_top
  let tag age = age lsr top_bits
end

(* Atomic store, spelled as an exchange: [A.exchange] is an [external]
   and inlines from the cmi even under the dev profile's [-opaque] (a
   cross-module [A.set] call would not); this [aset] is tiny enough for
   the classic-mode inliner to flatten within this unit, so a store
   costs exactly the [caml_atomic_exchange] the stdlib's [Atomic.set]
   costs. *)
let aset c v = ignore (A.exchange c v)

type exposure_policy = Deque_intf.exposure_policy =
  | Expose_one
  | Expose_conservative
  | Expose_half

(* Seeded mutations for the interleaving checker's self-test: each knob
   re-introduces one of the protocol's load-bearing lines as a bug, and
   lib/check must find a counterexample for every one of them. All three
   knobs live inside [pop_public_bottom]; the flat production API passes
   {!Mutation.none} to the shared text, so the owner's hot operations
   carry no mutation branches at all and [Make_mutant] differs from the
   real deque in exactly the knocked-out line. *)
module Mutation = struct
  type t = {
    drop_fence : bool;
        (** hoist the [age] load above the [public_bot] store in
            [pop_public_bottom] — the reordering the Listing 2 line 11-12
            fence forbids *)
    drop_bot_repair : bool;
        (** skip the Section 4 [bot <- 0] repair after a failed
            decrement-first pop on an empty deque *)
    drop_tag_bump : bool;
        (** do not bump the ABA tag when the owner resets the deque in
            the last-task race *)
    steal_over_copy : bool;
        (** batch steal claims the whole batch with one CAS advancing
            [top] by [k] after copying the slots — the tempting native
            protocol that double-takes a slot the owner plain-popped
            between the copy and the CAS (DESIGN.md §3.8) *)
  }

  let none =
    { drop_fence = false; drop_bot_repair = false; drop_tag_bump = false; steal_over_copy = false }
end

type 'a t = {
  dummy : 'a;
  deq : 'a array;
  bot : int A.plain; (* owner-only writes; racy thief reads are heuristic *)
  public_bot : int A.t; (* owner writes, thieves read *)
  age : int A.t; (* packed (tag, top) *)
  fence_cell : int A.t; (* target of explicit seq-cst fences *)
  metrics : Metrics.t; (* owner's counters *)
}

let create ~capacity ~dummy ~metrics () =
  if capacity < 1 || capacity > Age.max_top then invalid_arg "Split_deque.create";
  {
    dummy;
    deq = Array.make capacity dummy;
    bot = A.plain ~name:"bot" 0;
    public_bot = A.make ~name:"public_bot" 0;
    age = A.make ~name:"age" 0;
    fence_cell = A.make ~name:"fence" 0;
    metrics;
  }

let capacity t = Array.length t.deq

(* OCaml has no [Atomic.fence]; an SC store to a private cell compiles to
   the same full barrier and is never contended. *)
let fence t =
  aset t.fence_cell 0;
  t.metrics.fences <- t.metrics.fences + 1

let push_bottom t x =
  let b = A.read t.bot in
  if b >= Array.length t.deq then raise Deque_full;
  t.deq.(b) <- x;
  A.write t.bot (b + 1);
  t.metrics.pushes <- t.metrics.pushes + 1

let pop_bottom t =
  (* [<=], not [=]: between a failed [pop_bottom_signal_safe] and the
     [pop_public_bottom] repair, [bot] sits below [public_bot]; an
     equality guard would let this pop re-take an exposed slot that a
     thief may already own. *)
  if A.read t.bot <= A.get t.public_bot then None
  else begin
    let b = A.read t.bot - 1 in
    A.write t.bot b;
    t.metrics.pops <- t.metrics.pops + 1;
    Some t.deq.(b)
  end

let pop_bottom_signal_safe t =
  (* Section 4: decrement first so a concurrent exposure cannot observe the
     stale [bot] and hand the same task to a thief. On failure [bot] stays
     decremented; [pop_public_bottom] repairs it. *)
  let b = A.read t.bot - 1 in
  A.write t.bot b;
  if b < A.get t.public_bot then None
  else begin
    t.metrics.pops <- t.metrics.pops + 1;
    Some t.deq.(b)
  end

let pop_public_bottom_mutant (mutation : Mutation.t) t =
  let pb0 = A.get t.public_bot in
  if pb0 = 0 then begin
    (* Section 4 amendment: repair [bot] after a failed decrement-first
       [pop_bottom] when there is no public work either. *)
    if not mutation.drop_bot_repair then A.write t.bot 0;
    None
  end
  else begin
    let pb = pb0 - 1 in
    (* [drop_fence] models the missing Listing 2 line 11-12 barrier as
       the reordering it would license: the [age] load drifts above the
       [public_bot] store, so the owner can act on a stale [top] while
       thieves still see the undecremented boundary. *)
    let stale_age = if mutation.drop_fence then Some (A.get t.age) else None in
    (* Listing 2 lines 11-12: the decrement must become visible to thieves
       before we read [age]; [Atomic.set] is an SC store (full fence). *)
    aset t.public_bot pb;
    t.metrics.fences <- t.metrics.fences + 1;
    let task = t.deq.(pb) in
    let old_age = match stale_age with Some a -> a | None -> A.get t.age in
    let top = Age.top old_age in
    if pb > top then begin
      A.write t.bot pb;
      fence t (* line 27 *);
      t.metrics.public_pops <- t.metrics.public_pops + 1;
      Some task
    end
    else begin
      (* Racing thieves for the last public task. *)
      A.write t.bot 0;
      let bump = if mutation.drop_tag_bump then 0 else 1 in
      let new_age = Age.pack ~tag:(Age.tag old_age + bump) ~top:0 in
      let local_bot = pb in
      aset t.public_bot 0;
      let won =
        local_bot = top
        && begin
             t.metrics.cas_ops <- t.metrics.cas_ops + 1;
             let ok = A.compare_and_set t.age old_age new_age in
             if not ok then t.metrics.cas_failures <- t.metrics.cas_failures + 1;
             ok
           end
      in
      let result =
        if won then begin
          t.metrics.public_pops <- t.metrics.public_pops + 1;
          Some task
        end
        else begin
          aset t.age new_age;
          None
        end
      in
      fence t (* line 27 *);
      result
    end
  end

let pop_public_bottom t = pop_public_bottom_mutant Mutation.none t

let pop_top t ~metrics:m =
  m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
  let old_age = A.get t.age in
  let top = Age.top old_age in
  let pb = A.get t.public_bot in
  if pb > top then begin
    let task = t.deq.(top) in
    let new_age = Age.pack ~tag:(Age.tag old_age) ~top:(top + 1) in
    m.cas_ops <- m.cas_ops + 1;
    if A.compare_and_set t.age old_age new_age then begin
      m.steals <- m.steals + 1;
      Stolen task
    end
    else begin
      m.cas_failures <- m.cas_failures + 1;
      m.aborts <- m.aborts + 1;
      Abort
    end
  end
  else if A.read t.bot > pb then begin
    (* Listing 2 line 39 has the comparison inverted (see DESIGN.md §2.6);
       private work exists exactly when [bot > public_bot]. *)
    m.private_work_hits <- m.private_work_hits + 1;
    Private_work
  end
  else Empty

(* Batch steal (steal-half). The first claim is exactly [pop_top]; every
   further claim revalidates [public_bot] and advances [top] with its
   own age CAS. A single CAS moving [top] forward by [k] would be
   unsound: the owner's plain public pops (the [pb > top] branch of
   [pop_public_bottom]) never touch [age], so a k-claim could take a
   slot the owner already popped between the thief's reads and its CAS —
   see DESIGN.md §3.8 and the seeded [steal_over_copy] mutant below.
   The incremental claims are safe because each one re-reads
   [public_bot] after the previous SC CAS: if the owner plain-took slot
   [s], its [public_bot <- s] store precedes its [age] read, so either
   our [public_bot] re-read observes the decrement (we stop), or our
   claim CAS lands before the owner's [age] read and the owner's own
   [pb > top] / last-task checks push it into the CAS race branch.
   Thieves pay no fences here at all — one CAS per claimed task, and one
   steal round for the whole batch. *)
let steal_many t ~limit ~into ~metrics:(m : Metrics.t) =
  m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
  let old_age = A.get t.age in
  let top = Age.top old_age in
  let pb = A.get t.public_bot in
  let avail = pb - top in
  if avail > 0 then begin
    let want = min (min limit (Array.length into + 1)) (max 1 (avail / 2)) in
    let first = t.deq.(top) in
    let new_age = Age.pack ~tag:(Age.tag old_age) ~top:(top + 1) in
    m.cas_ops <- m.cas_ops + 1;
    if A.compare_and_set t.age old_age new_age then begin
      m.steals <- m.steals + 1;
      let n = ref 0 in
      let age = ref new_age in
      let continue = ref (want > 1) in
      while !continue do
        let s = top + 1 + !n in
        let pb' = A.get t.public_bot in
        if s >= pb' then continue := false
        else begin
          let x = t.deq.(s) in
          let next = Age.pack ~tag:(Age.tag !age) ~top:(s + 1) in
          m.cas_ops <- m.cas_ops + 1;
          if A.compare_and_set t.age !age next then begin
            into.(!n) <- x;
            incr n;
            age := next;
            if !n + 1 >= want then continue := false
          end
          else begin
            (* Owner's last-task race or another thief; keep what we
               have. *)
            m.cas_failures <- m.cas_failures + 1;
            continue := false
          end
        end
      done;
      (Stolen first, !n)
    end
    else begin
      m.cas_failures <- m.cas_failures + 1;
      m.aborts <- m.aborts + 1;
      (Abort, 0)
    end
  end
  else if A.read t.bot > pb then begin
    m.private_work_hits <- m.private_work_hits + 1;
    (Private_work, 0)
  end
  else (Empty, 0)

(* The seeded batch-steal bug: copy the slots up front, then claim them
   all with one CAS advancing [top] by [want]. Nothing revalidates
   [public_bot] between the copy and the claim, so an owner plain pop of
   a slot in [top+1, top+want) in that window is double-taken. *)
let steal_many_mutant (mutation : Mutation.t) t ~limit ~into ~metrics:(m : Metrics.t) =
  if not mutation.Mutation.steal_over_copy then steal_many t ~limit ~into ~metrics:m
  else begin
    m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
    let old_age = A.get t.age in
    let top = Age.top old_age in
    let pb = A.get t.public_bot in
    let avail = pb - top in
    if avail > 0 then begin
      let want = min (min limit (Array.length into + 1)) (max 1 (avail / 2)) in
      let first = t.deq.(top) in
      for i = 1 to want - 1 do
        into.(i - 1) <- t.deq.(top + i)
      done;
      let new_age = Age.pack ~tag:(Age.tag old_age) ~top:(top + want) in
      m.cas_ops <- m.cas_ops + 1;
      if A.compare_and_set t.age old_age new_age then begin
        m.steals <- m.steals + 1;
        (Stolen first, want - 1)
      end
      else begin
        m.cas_failures <- m.cas_failures + 1;
        m.aborts <- m.aborts + 1;
        (Abort, 0)
      end
    end
    else if A.read t.bot > pb then begin
      m.private_work_hits <- m.private_work_hits + 1;
      (Private_work, 0)
    end
    else (Empty, 0)
  end

let update_public_bottom t ~policy =
  let pb = A.get t.public_bot in
  let r = A.read t.bot - pb in
  let n =
    match policy with
    | Expose_one -> if r >= 1 then 1 else 0
    | Expose_conservative -> if r >= 2 then 1 else 0
    | Expose_half ->
        if r >= 3 then Lcws_sync.Fastmath.round_half r else if r >= 1 then 1 else 0
  in
  if n > 0 then begin
    (* SC store: publishes both the slot contents written by [push_bottom]
       and the new boundary. The C++ original is a volatile store; on x86
       both are a plain MOV on the owner's hot path only when exposing. *)
    aset t.public_bot (pb + n);
    t.metrics.exposures <- t.metrics.exposures + 1;
    t.metrics.exposed_tasks <- t.metrics.exposed_tasks + n
  end;
  n

let has_two_tasks t = A.read t.bot - A.get t.public_bot >= 2

let private_size t =
  let n = A.read t.bot - A.get t.public_bot in
  if n < 0 then 0 else n

let public_size t =
  let n = A.get t.public_bot - Age.top (A.get t.age) in
  if n < 0 then 0 else n

let size t =
  let n = A.read t.bot - Age.top (A.get t.age) in
  if n < 0 then 0 else n

let is_empty t = size t = 0

let clear t =
  let old_age = A.get t.age in
  A.write t.bot 0;
  aset t.public_bot 0;
  aset t.age (Age.pack ~tag:(Age.tag old_age + 1) ~top:0);
  Array.fill t.deq 0 (Array.length t.deq) t.dummy

(* Unified first-class API: the split deque is the reference shape, so
   every operation maps one-to-one. *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t and type t = E.t t = struct
  type elt = E.t

  type nonrec t = elt t

  let name = "split"

  let concurrent = true

  let create = create

  let capacity = capacity

  let push_bottom = push_bottom

  let pop_bottom = pop_bottom

  let pop_bottom_signal_safe = pop_bottom_signal_safe

  let pop_public_bottom = pop_public_bottom

  let pop_top = pop_top

  let steal_many = steal_many

  let update_public_bottom = update_public_bottom

  let has_two_tasks = has_two_tasks

  let private_size = private_size

  let public_size = public_size

  let size = size

  let is_empty = is_empty

  let clear = clear
end

module type S = Deque_intf.SPLIT

(* Re-export of the flat implementation with one knocked-out protocol
   line per [M.mutation] knob: only [pop_public_bottom] changes, so a
   mutant is the production algorithm text minus exactly one line. *)
(* The type equality keeps mutant deques interoperable with the flat
   API, which the checker's ownership invariants rely on to read the raw
   cells (visible only in the instrumented re-compilation, where no .mli
   seals them). *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S with type 'a t = 'a t = struct
  type nonrec 'a t = 'a t

  let create = create

  let capacity = capacity

  let push_bottom = push_bottom

  let pop_bottom = pop_bottom

  let pop_bottom_signal_safe = pop_bottom_signal_safe

  let pop_public_bottom t = pop_public_bottom_mutant M.mutation t

  let pop_top = pop_top

  let steal_many t ~limit ~into ~metrics = steal_many_mutant M.mutation t ~limit ~into ~metrics

  let update_public_bottom = update_public_bottom

  let has_two_tasks = has_two_tasks

  let private_size = private_size

  let public_size = public_size

  let size = size

  let is_empty = is_empty

  let clear = clear

  module Deque (E : sig
    type t
  end) =
  struct
    include Deque (E)

    let pop_public_bottom t = pop_public_bottom_mutant M.mutation t

    let steal_many t ~limit ~into ~metrics = steal_many_mutant M.mutation t ~limit ~into ~metrics
  end
end
