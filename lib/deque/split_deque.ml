module Metrics = Lcws_sync.Metrics
open Deque_intf

(* [age] packs a 31-bit ABA tag and a 32-bit top index in one immediate so
   one [compare_and_set] updates both, mirroring the paper's two-field
   [age_t] updated by a double-word CAS. *)
module Age = struct
  let top_bits = 32
  let max_top = (1 lsl top_bits) - 1
  let pack ~tag ~top = (tag lsl top_bits) lor (top land max_top)
  let top age = age land max_top
  let tag age = age lsr top_bits
end

type exposure_policy = Deque_intf.exposure_policy =
  | Expose_one
  | Expose_conservative
  | Expose_half

type 'a t = {
  dummy : 'a;
  deq : 'a array;
  mutable bot : int; (* owner-only; plain field, racy thief reads are heuristic *)
  public_bot : int Atomic.t; (* owner writes, thieves read *)
  age : int Atomic.t; (* packed (tag, top) *)
  fence_cell : int Atomic.t; (* target of explicit seq-cst fences *)
  metrics : Metrics.t; (* owner's counters *)
}

let create ~capacity ~dummy ~metrics () =
  if capacity < 1 || capacity > Age.max_top then invalid_arg "Split_deque.create";
  {
    dummy;
    deq = Array.make capacity dummy;
    bot = 0;
    public_bot = Atomic.make 0;
    age = Atomic.make (Age.pack ~tag:0 ~top:0);
    fence_cell = Atomic.make 0;
    metrics;
  }

let capacity t = Array.length t.deq

(* OCaml has no [Atomic.fence]; an SC store to a private cell compiles to
   the same full barrier and is never contended. *)
let fence t =
  Atomic.set t.fence_cell 0;
  t.metrics.fences <- t.metrics.fences + 1

let push_bottom t x =
  let b = t.bot in
  if b >= Array.length t.deq then raise Deque_full;
  t.deq.(b) <- x;
  t.bot <- b + 1;
  t.metrics.pushes <- t.metrics.pushes + 1

let pop_bottom t =
  if t.bot = Atomic.get t.public_bot then None
  else begin
    let b = t.bot - 1 in
    t.bot <- b;
    t.metrics.pops <- t.metrics.pops + 1;
    Some t.deq.(b)
  end

let pop_bottom_signal_safe t =
  (* Section 4: decrement first so a concurrent exposure cannot observe the
     stale [bot] and hand the same task to a thief. On failure [bot] stays
     decremented; [pop_public_bottom] repairs it. *)
  let b = t.bot - 1 in
  t.bot <- b;
  if b < Atomic.get t.public_bot then None
  else begin
    t.metrics.pops <- t.metrics.pops + 1;
    Some t.deq.(b)
  end

let pop_public_bottom t =
  let pb0 = Atomic.get t.public_bot in
  if pb0 = 0 then begin
    (* Section 4 amendment: repair [bot] after a failed decrement-first
       [pop_bottom] when there is no public work either. *)
    t.bot <- 0;
    None
  end
  else begin
    let pb = pb0 - 1 in
    (* Listing 2 lines 11-12: the decrement must become visible to thieves
       before we read [age]; [Atomic.set] is an SC store (full fence). *)
    Atomic.set t.public_bot pb;
    t.metrics.fences <- t.metrics.fences + 1;
    let task = t.deq.(pb) in
    let old_age = Atomic.get t.age in
    let top = Age.top old_age in
    if pb > top then begin
      t.bot <- pb;
      fence t (* line 27 *);
      t.metrics.public_pops <- t.metrics.public_pops + 1;
      Some task
    end
    else begin
      (* Racing thieves for the last public task. *)
      t.bot <- 0;
      let new_age = Age.pack ~tag:(Age.tag old_age + 1) ~top:0 in
      let local_bot = pb in
      Atomic.set t.public_bot 0;
      let won =
        local_bot = top
        && begin
             t.metrics.cas_ops <- t.metrics.cas_ops + 1;
             let ok = Atomic.compare_and_set t.age old_age new_age in
             if not ok then t.metrics.cas_failures <- t.metrics.cas_failures + 1;
             ok
           end
      in
      let result =
        if won then begin
          t.metrics.public_pops <- t.metrics.public_pops + 1;
          Some task
        end
        else begin
          Atomic.set t.age new_age;
          None
        end
      in
      fence t (* line 27 *);
      result
    end
  end

let pop_top t ~metrics:m =
  m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
  let old_age = Atomic.get t.age in
  let top = Age.top old_age in
  let pb = Atomic.get t.public_bot in
  if pb > top then begin
    let task = t.deq.(top) in
    let new_age = Age.pack ~tag:(Age.tag old_age) ~top:(top + 1) in
    m.cas_ops <- m.cas_ops + 1;
    if Atomic.compare_and_set t.age old_age new_age then begin
      m.steals <- m.steals + 1;
      Stolen task
    end
    else begin
      m.cas_failures <- m.cas_failures + 1;
      m.aborts <- m.aborts + 1;
      Abort
    end
  end
  else if t.bot > pb then begin
    (* Listing 2 line 39 has the comparison inverted (see DESIGN.md §2.6);
       private work exists exactly when [bot > public_bot]. *)
    m.private_work_hits <- m.private_work_hits + 1;
    Private_work
  end
  else Empty

let update_public_bottom t ~policy =
  let pb = Atomic.get t.public_bot in
  let r = t.bot - pb in
  let n =
    match policy with
    | Expose_one -> if r >= 1 then 1 else 0
    | Expose_conservative -> if r >= 2 then 1 else 0
    | Expose_half ->
        if r >= 3 then Lcws_sync.Fastmath.round_half r else if r >= 1 then 1 else 0
  in
  if n > 0 then begin
    (* SC store: publishes both the slot contents written by [push_bottom]
       and the new boundary. The C++ original is a volatile store; on x86
       both are a plain MOV on the owner's hot path only when exposing. *)
    Atomic.set t.public_bot (pb + n);
    t.metrics.exposures <- t.metrics.exposures + 1;
    t.metrics.exposed_tasks <- t.metrics.exposed_tasks + n
  end;
  n

let has_two_tasks t = t.bot - Atomic.get t.public_bot >= 2

let private_size t =
  let n = t.bot - Atomic.get t.public_bot in
  if n < 0 then 0 else n

let public_size t =
  let n = Atomic.get t.public_bot - Age.top (Atomic.get t.age) in
  if n < 0 then 0 else n

let size t =
  let n = t.bot - Age.top (Atomic.get t.age) in
  if n < 0 then 0 else n

let is_empty t = size t = 0

let clear t =
  let old_age = Atomic.get t.age in
  t.bot <- 0;
  Atomic.set t.public_bot 0;
  Atomic.set t.age (Age.pack ~tag:(Age.tag old_age + 1) ~top:0);
  Array.fill t.deq 0 (Array.length t.deq) t.dummy

(* Unified first-class API: the split deque is the reference shape, so
   every operation maps one-to-one. *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t and type t = E.t t = struct
  type elt = E.t

  type nonrec t = elt t

  let name = "split"

  let concurrent = true

  let create = create

  let capacity = capacity

  let push_bottom = push_bottom

  let pop_bottom = pop_bottom

  let pop_bottom_signal_safe = pop_bottom_signal_safe

  let pop_public_bottom = pop_public_bottom

  let pop_top = pop_top

  let update_public_bottom = update_public_bottom

  let has_two_tasks = has_two_tasks

  let private_size = private_size

  let public_size = public_size

  let size = size

  let is_empty = is_empty

  let clear = clear
end
