(** Shared result types for work-stealing deques. *)

(** Outcome of a thief's [pop_top]. [Private_work] is the split-deque
    speciality: the public part is empty but the victim holds private
    tasks, so the thief should notify the victim to expose work
    (Listing 1, line 22 of the paper). *)
type 'a steal_result =
  | Stolen of 'a  (** the thief owns the task now *)
  | Empty  (** the whole deque is empty *)
  | Abort  (** lost a CAS race; retry elsewhere *)
  | Private_work  (** public part empty, private part non-empty *)

(** Raised when a bounded deque runs out of slots. The paper's deques are
    fixed-size arrays; capacity is a constructor parameter here. *)
exception Deque_full

let pp_steal_result pp_task ppf = function
  | Stolen x -> Format.fprintf ppf "Stolen %a" pp_task x
  | Empty -> Format.pp_print_string ppf "Empty"
  | Abort -> Format.pp_print_string ppf "Abort"
  | Private_work -> Format.pp_print_string ppf "Private_work"

(** How many private tasks an owner transfers to the public part on an
    exposure request (paper Sections 3, 4.1.1, 4.1.2). Lives here so that
    every deque can answer [update_public_bottom] uniformly. *)
type exposure_policy =
  | Expose_one  (** base/user-space/signal: one task if any is private *)
  | Expose_conservative  (** Cons (4.1.1): one task iff >= 2 are private *)
  | Expose_half  (** Half (4.1.2): round(r/2) tasks when r >= 3, else one *)

(** First-class deque API: the operations the scheduler needs, with the
    split-deque surface as the common denominator. Fully concurrent
    deques (Chase-Lev) implement the public-part operations as no-ops
    ([pop_public_bottom] = [None], [update_public_bottom] = 0) and fold
    everything into [pop_bottom]/[pop_top]; sequential-specification
    deques (Lace, private) set [concurrent = false] and are only legal in
    a single-worker pool or the simulator.

    Ownership contract (as for the concrete modules): one owner domain
    for every operation except [pop_top], which any domain may call with
    its own metrics block. *)
module type DEQUE = sig
  type elt

  type t

  (** Short identifier ("chase_lev", "split", "lace", "private"). *)
  val name : string

  (** Safe for concurrent thieves? When [false], only single-worker pools
      (or the simulator's event-atomic execution) may use the deque. *)
  val concurrent : bool

  val create : capacity:int -> dummy:elt -> metrics:Lcws_sync.Metrics.t -> unit -> t

  val capacity : t -> int

  (** Owner: push below the private bottom. Raises {!Deque_full}. *)
  val push_bottom : t -> elt -> unit

  (** Owner: pop the bottom-most locally available task. *)
  val pop_bottom : t -> elt option

  (** Owner: the Section 4 decrement-first pop. On [None] the caller must
      invoke [pop_public_bottom] next, which repairs [bot]. Equal to
      [pop_bottom] for deques without an asynchronous exposure race. *)
  val pop_bottom_signal_safe : t -> elt option

  (** Owner: take the bottom-most *public* task, competing with thieves.
      [None] for deques without a public part. *)
  val pop_public_bottom : t -> elt option

  (** Thief: steal the top-most public task. *)
  val pop_top : t -> metrics:Lcws_sync.Metrics.t -> elt steal_result

  (** Owner (or its signal handler): expose private work; returns the
      number of tasks made public (0 for fully concurrent deques). *)
  val update_public_bottom : t -> policy:exposure_policy -> int

  (** Racy size estimates (plain reads; may be stale). *)

  val has_two_tasks : t -> bool

  val private_size : t -> int

  val public_size : t -> int

  val size : t -> int

  val is_empty : t -> bool

  (** Owner: drop everything (between benchmark runs). *)
  val clear : t -> unit
end

(** A deque implementation packed as a first-class module. *)
type 'a impl = (module DEQUE with type elt = 'a)

(** An implementation paired with one of its instances; the existential
    keeps the representation type abstract so the scheduler can hold any
    deque in the same worker record. *)
type 'a instance = Instance : (module DEQUE with type elt = 'a and type t = 'd) * 'd -> 'a instance

let make (type a) ((module D) : a impl) ~capacity ~dummy ~metrics : a instance =
  Instance ((module D), D.create ~capacity ~dummy ~metrics ())

let impl_name (type a) ((module D) : a impl) = D.name

let impl_concurrent (type a) ((module D) : a impl) = D.concurrent
