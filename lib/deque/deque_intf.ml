(** Shared result types for work-stealing deques. *)

(** Outcome of a thief's [pop_top]. [Private_work] is the split-deque
    speciality: the public part is empty but the victim holds private
    tasks, so the thief should notify the victim to expose work
    (Listing 1, line 22 of the paper). *)
type 'a steal_result =
  | Stolen of 'a  (** the thief owns the task now *)
  | Empty  (** the whole deque is empty *)
  | Abort  (** lost a CAS race; retry elsewhere *)
  | Private_work  (** public part empty, private part non-empty *)

(** Raised when a bounded deque runs out of slots. The paper's deques are
    fixed-size arrays; capacity is a constructor parameter here. *)
exception Deque_full

let pp_steal_result pp_task ppf = function
  | Stolen x -> Format.fprintf ppf "Stolen %a" pp_task x
  | Empty -> Format.pp_print_string ppf "Empty"
  | Abort -> Format.pp_print_string ppf "Abort"
  | Private_work -> Format.pp_print_string ppf "Private_work"
