(** Shared result types for work-stealing deques. *)

(** Outcome of a thief's [pop_top]. [Private_work] is the split-deque
    speciality: the public part is empty but the victim holds private
    tasks, so the thief should notify the victim to expose work
    (Listing 1, line 22 of the paper). *)
type 'a steal_result =
  | Stolen of 'a  (** the thief owns the task now *)
  | Empty  (** the whole deque is empty *)
  | Abort  (** lost a CAS race; retry elsewhere *)
  | Private_work  (** public part empty, private part non-empty *)

(** Raised when a bounded deque runs out of slots. The paper's deques are
    fixed-size arrays; capacity is a constructor parameter here. *)
exception Deque_full

let pp_steal_result pp_task ppf = function
  | Stolen x -> Format.fprintf ppf "Stolen %a" pp_task x
  | Empty -> Format.pp_print_string ppf "Empty"
  | Abort -> Format.pp_print_string ppf "Abort"
  | Private_work -> Format.pp_print_string ppf "Private_work"

(** How many private tasks an owner transfers to the public part on an
    exposure request (paper Sections 3, 4.1.1, 4.1.2). Lives here so that
    every deque can answer [update_public_bottom] uniformly. *)
type exposure_policy =
  | Expose_one  (** base/user-space/signal: one task if any is private *)
  | Expose_conservative  (** Cons (4.1.1): one task iff >= 2 are private *)
  | Expose_half  (** Half (4.1.2): round(r/2) tasks when r >= 3, else one *)

(** The memory-access vocabulary of the deques. Every deque source is
    written against a module named [Atomic_shim] with this signature and
    compiled twice — a build-time functor — so the same algorithm text
    runs in two modes:

    - {!Atomic_shim} (this library): ['a t] is ['a Atomic.t] and
      ['a plain] is ['a ref], with accessors that are [external]
      re-declarations of the compiler primitives — the zero-cost
      instantiation the scheduler uses (a runtime functor would defeat
      inlining of [Atomic.get] without flambda; see [atomic_shim.ml]);
    - [Lcws_check_sim.Sim_atomic.A] (re-compiled in [lib/check/deques]):
      every access first yields to a cooperative schedule enumerator,
      turning the deque into input for the deterministic interleaving
      checker.

    [plain] cells model unsynchronized owner fields with racy readers
    (the split deque's [bot]); the checker needs interleaving points at
    those accesses too, because the paper's Section 4 signal race lives
    exactly between a plain read and a plain write. [?name] labels the
    cell in counterexample traces and costs nothing in the real build. *)
module type ATOMIC = sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t

  val get : 'a t -> 'a

  val set : 'a t -> 'a -> unit

  (** SC swap; [set x v] = [ignore (exchange x v)]. The deques' store
      sites go through [exchange] because in the real shim it is an
      [external] — inlined from the cmi even under dune's dev-profile
      [-opaque], where a cross-module [set] degrades to a generic
      application. *)
  val exchange : 'a t -> 'a -> 'a

  val compare_and_set : 'a t -> 'a -> 'a -> bool

  type 'a plain

  val plain : ?name:string -> 'a -> 'a plain

  val read : 'a plain -> 'a

  val write : 'a plain -> 'a -> unit
end

(* The production shim satisfies the signature; asserted here (not in
   atomic_shim.mli, where the constraint would hide the [external]
   declarations that make the real accesses free). *)
module _ : ATOMIC = Atomic_shim

(** First-class deque API: the operations the scheduler needs, with the
    split-deque surface as the common denominator. Fully concurrent
    deques (Chase-Lev) implement the public-part operations as no-ops
    ([pop_public_bottom] = [None], [update_public_bottom] = 0) and fold
    everything into [pop_bottom]/[pop_top]; sequential-specification
    deques (Lace, private) set [concurrent = false] and are only legal in
    a single-worker pool or the simulator.

    Ownership contract (as for the concrete modules): one owner domain
    for every operation except [pop_top], which any domain may call with
    its own metrics block. *)
module type DEQUE = sig
  type elt

  type t

  (** Short identifier ("chase_lev", "split", "lace", "private"). *)
  val name : string

  (** Safe for concurrent thieves? When [false], only single-worker pools
      (or the simulator's event-atomic execution) may use the deque. *)
  val concurrent : bool

  val create : capacity:int -> dummy:elt -> metrics:Lcws_sync.Metrics.t -> unit -> t

  val capacity : t -> int

  (** Owner: push below the private bottom. Raises {!Deque_full}. *)
  val push_bottom : t -> elt -> unit

  (** Owner: pop the bottom-most locally available task. *)
  val pop_bottom : t -> elt option

  (** Owner: the Section 4 decrement-first pop. On [None] the caller must
      invoke [pop_public_bottom] next, which repairs [bot]. Equal to
      [pop_bottom] for deques without an asynchronous exposure race. *)
  val pop_bottom_signal_safe : t -> elt option

  (** Owner: take the bottom-most *public* task, competing with thieves.
      [None] for deques without a public part. *)
  val pop_public_bottom : t -> elt option

  (** Thief: steal the top-most public task. *)
  val pop_top : t -> metrics:Lcws_sync.Metrics.t -> elt steal_result

  (** Thief: batch steal (steal-half). Claims up to
      [max 1 (public_size / 2)] tasks — further capped by [limit] and by
      [Array.length into + 1] — in one steal episode. The first claimed
      task is returned through the [steal_result]; the [n] additional
      tasks are written to [into.(0 .. n-1)] in victim order (oldest
      first). [n = 0] whenever the result is not [Stolen], and
      [steal_many d ~limit:1 ~into] claims exactly what [pop_top d]
      would.

      Concurrency note: for the concurrent deques each claim beyond the
      first revalidates against the owner with its own CAS — a single
      CAS moving [top] forward by [k] is unsound against the owner's
      plain bottom pops (see DESIGN.md §3.8; the seeded
      [steal_over_copy] mutant is exactly that bug). The batch still
      saves the per-task steal round: one victim probe, one fence (and
      zero extra fences on the split deque), one doorbell. The
      sequential-specification deques (Lace, private) transfer the whole
      batch in one episode natively. *)
  val steal_many :
    t -> limit:int -> into:elt array -> metrics:Lcws_sync.Metrics.t -> elt steal_result * int

  (** Owner (or its signal handler): expose private work; returns the
      number of tasks made public (0 for fully concurrent deques). *)
  val update_public_bottom : t -> policy:exposure_policy -> int

  (** Racy size estimates (plain reads; may be stale). *)

  val has_two_tasks : t -> bool

  val private_size : t -> int

  val public_size : t -> int

  val size : t -> int

  val is_empty : t -> bool

  (** Owner: drop everything (between benchmark runs). *)
  val clear : t -> unit
end

(** {2 Per-deque operation signatures}

    One module type per deque flavour, shared (by path, not by copy)
    between the real build and the instrumented re-compilation in
    [lib/check/deques]. Centralised here because [deque_intf] has no
    interface file, so the four [.mli]s can alias these instead of
    restating them. *)

(** The LCWS split deque (Listing 2 + the Section 4 fix). See
    [split_deque.mli] for the ownership contract. *)
module type SPLIT = sig
  type 'a t

  val create : capacity:int -> dummy:'a -> metrics:Lcws_sync.Metrics.t -> unit -> 'a t

  val capacity : 'a t -> int

  (** Owner: push a task below the bottom of the private part.
      Synchronization-free. Raises {!Deque_full} when out of slots. *)
  val push_bottom : 'a t -> 'a -> unit

  (** Owner: take the bottom-most private task, if any.
      Synchronization-free. The guard is [bot <= public_bot] — not [=] —
      so the window between a failed [pop_bottom_signal_safe] and the
      [pop_public_bottom] repair (where [bot < public_bot]) cannot
      re-pop an exposed task. *)
  val pop_bottom : 'a t -> 'a option

  (** Owner: the Section 4 decrement-first variant, safe against an
      asynchronous [update_public_bottom]. On [None] the caller must
      invoke [pop_public_bottom] next (which repairs [bot]). *)
  val pop_bottom_signal_safe : 'a t -> 'a option

  (** Owner: take the bottom-most *public* task, competing with thieves.
      Two seq-cst fences per call, one CAS when racing for the last
      public task; repairs [bot] when the deque is empty. *)
  val pop_public_bottom : 'a t -> 'a option

  (** Thief: steal the top-most public task; one CAS on success/abort. *)
  val pop_top : 'a t -> metrics:Lcws_sync.Metrics.t -> 'a steal_result

  (** Thief: batch steal of up to [max 1 (public/2)] tasks, one age CAS
      per claimed task (no fences); first task in the result, the rest in
      [into]. See {!DEQUE.steal_many} for the full contract. *)
  val steal_many :
    'a t -> limit:int -> into:'a array -> metrics:Lcws_sync.Metrics.t -> 'a steal_result * int

  (** Owner (or its signal handler): expose private work per [policy];
      returns the number of tasks made public. *)
  val update_public_bottom : 'a t -> policy:exposure_policy -> int

  val has_two_tasks : 'a t -> bool

  val private_size : 'a t -> int

  val public_size : 'a t -> int

  val size : 'a t -> int

  val is_empty : 'a t -> bool

  val clear : 'a t -> unit

  module Deque (E : sig
    type t
  end) : DEQUE with type elt = E.t and type t = E.t t
end

(** The Chase-Lev baseline deque. *)
module type CHASE_LEV = sig
  type 'a t

  val create : capacity:int -> dummy:'a -> metrics:Lcws_sync.Metrics.t -> unit -> 'a t

  val capacity : 'a t -> int

  val push_bottom : 'a t -> 'a -> unit

  (** Owner pop; one seq-cst fence always, one CAS on the last element.
      Losing that CAS counts both a [cas_failure] and an [abort]. *)
  val pop_bottom : 'a t -> 'a option

  val steal : 'a t -> metrics:Lcws_sync.Metrics.t -> 'a steal_result

  (** Thief: batch steal of up to [max 1 (size/2)] tasks. One fence up
      front, then one CAS per claimed task, each revalidated against
      [bottom]; first task in the result, the rest in [into]. See
      {!DEQUE.steal_many} for the full contract. *)
  val steal_many :
    'a t -> limit:int -> into:'a array -> metrics:Lcws_sync.Metrics.t -> 'a steal_result * int

  val size : 'a t -> int

  val is_empty : 'a t -> bool

  val clear : 'a t -> unit

  module Deque (E : sig
    type t
  end) : DEQUE with type elt = E.t and type t = E.t t
end

(** Synchronization events a Lace operation performed, for the
    simulator's cost accounting (re-exported as [Lace_deque.op_cost]). *)
type lace_cost = { fences : int; cas : int }

(** The Lace split-deque-with-unexposure sequential specification. *)
module type LACE = sig
  type 'a t

  val create : capacity:int -> dummy:'a -> unit -> 'a t

  val capacity : 'a t -> int

  val push_bottom : 'a t -> 'a -> lace_cost

  (** Owner pop; unexposes (with sync cost) when only public work remains. *)
  val pop_bottom : 'a t -> 'a option * lace_cost

  val pop_top : 'a t -> 'a steal_result * lace_cost

  (** Thief: batch steal of up to [max 1 (public/2)] tasks in one
      episode — the whole batch costs a single CAS in the sequential
      specification (Lace's group-transfer idiom). First task in the
      result, the rest in [into]. *)
  val steal_many : 'a t -> limit:int -> into:'a array -> ('a steal_result * int) * lace_cost

  (** Owner: answer a pending work request by exposing one task. *)
  val expose : 'a t -> int * lace_cost

  val private_size : 'a t -> int

  val public_size : 'a t -> int

  val size : 'a t -> int

  val is_empty : 'a t -> bool

  val clear : 'a t -> unit

  module Deque (E : sig
    type t
  end) : DEQUE with type elt = E.t
end

(** The fully private deque (explicit-transfer load balancing). *)
module type PRIVATE = sig
  type 'a t

  val create : capacity:int -> dummy:'a -> unit -> 'a t

  val capacity : 'a t -> int

  val push_bottom : 'a t -> 'a -> unit

  val pop_bottom : 'a t -> 'a option

  (** Owner-side removal from the top (answers a transfer request). *)
  val pop_top : 'a t -> 'a option

  (** Owner-side batch removal from the top: up to [max 1 (size/2)]
      tasks in one transfer (explicit-transfer load balancing moves the
      batch in one message). First task in the result, the rest in
      [into]. *)
  val steal_many : 'a t -> limit:int -> into:'a array -> 'a option * int

  val size : 'a t -> int

  val is_empty : 'a t -> bool

  val clear : 'a t -> unit

  module Deque (E : sig
    type t
  end) : DEQUE with type elt = E.t
end

(** A deque implementation packed as a first-class module. *)
type 'a impl = (module DEQUE with type elt = 'a)

(** An implementation paired with one of its instances; the existential
    keeps the representation type abstract so the scheduler can hold any
    deque in the same worker record. *)
type 'a instance = Instance : (module DEQUE with type elt = 'a and type t = 'd) * 'd -> 'a instance

let make (type a) ((module D) : a impl) ~capacity ~dummy ~metrics : a instance =
  Instance ((module D), D.create ~capacity ~dummy ~metrics ())

let impl_name (type a) ((module D) : a impl) = D.name

let impl_concurrent (type a) ((module D) : a impl) = D.concurrent

(** Check the size-accessor invariants of an instance, valid for every
    implementation whenever the owner is at rest (no operation in
    flight): the parts are non-negative, they add up to [size],
    [is_empty] agrees with [size = 0], and [has_two_tasks] never claims
    two private tasks that [private_size] cannot see. Property tests and
    the chaos harness call this between operations / after runs; a
    violation message names the accessors that disagree. *)
let check_size_invariants (type a) (Instance ((module D), d) : a instance) =
  let priv = D.private_size d in
  let pub = D.public_size d in
  let size = D.size d in
  let err fmt = Printf.ksprintf (fun m -> Error (D.name ^ ": " ^ m)) fmt in
  if priv < 0 then err "private_size = %d < 0" priv
  else if pub < 0 then err "public_size = %d < 0" pub
  else if size <> priv + pub then
    err "size = %d but private_size + public_size = %d + %d" size priv pub
  else if D.is_empty d <> (size = 0) then
    err "is_empty = %b but size = %d" (D.is_empty d) size
  else if D.has_two_tasks d && priv < 2 then
    err "has_two_tasks = true but private_size = %d" priv
  else Ok ()
