(** Lace-style split deque with *unexposure* (van Dijk & van de Pol,
    Euro-Par '14) — the related-work comparator of Section 2.

    Like the LCWS split deque, work is divided at a split point into a
    thief-visible and an owner-private region. The two differences the
    paper highlights are modelled faithfully:

    - the owner may {e unexpose} work: when its private region is empty
      but the public one is not, it pulls the split point back down
      instead of competing at the public bottom;
    - exposure happens only when the owner touches its deque (no
      constant-time handling of exposure requests).

    This module is the {e sequential specification} used by the
    discrete-event simulator, where deque operations are atomic at event
    granularity; the synchronization cost of each operation is reported
    through the returned {!op_cost} so the simulator can charge it. It is
    not safe for shared-memory concurrency (Lace's real implementation
    needs a handshake protocol that is out of scope; the evaluation never
    runs Lace on the shared-memory engine).

    Functorized over {!Deque_intf.ATOMIC} (fields become instrumented
    plain cells) so the interleaving checker can script it against the
    sequential oracle; the flat API is the zero-cost real-atomic
    instantiation. *)

(** Synchronization events an operation performed, for cost accounting. *)
type op_cost = Deque_intf.lace_cost = { fences : int; cas : int }

val no_cost : op_cost

(** Per-operation contracts are documented on {!Deque_intf.LACE}. *)
module type S = Deque_intf.LACE

(** Seeded protocol mutations, used only by the interleaving checker's
    self-test (each one must produce a counterexample; see
    [lib/check/scenarios.ml]). *)
module Mutation : sig
  type t = {
    expose_unchecked : bool;
        (** expose without the private-work guard: [split] can run past
            [bot] *)
  }

  val clean : t

  val expose_unchecked : t
end

(** The checker's entry point for seeded-bug variants: the production
    algorithm text with the mutated [expose]. *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S

(** The real deque: the flat implementation with {!Mutation.clean}. *)
include S
