(** Lace-style split deque with *unexposure* (van Dijk & van de Pol,
    Euro-Par '14) — the related-work comparator of Section 2.

    Like the LCWS split deque, work is divided at a split point into a
    thief-visible and an owner-private region. The two differences the
    paper highlights are modelled faithfully:

    - the owner may {e unexpose} work: when its private region is empty
      but the public one is not, it pulls the split point back down
      instead of competing at the public bottom;
    - exposure happens only when the owner touches its deque (no
      constant-time handling of exposure requests).

    This module is the {e sequential specification} used by the
    discrete-event simulator, where deque operations are atomic at event
    granularity; the synchronization cost of each operation is reported
    through the returned {!op_cost} so the simulator can charge it. It is
    not safe for shared-memory concurrency (Lace's real implementation
    needs a handshake protocol that is out of scope; the evaluation never
    runs Lace on the shared-memory engine). *)

type 'a t

(** Synchronization events an operation performed, for cost accounting. *)
type op_cost = { fences : int; cas : int }

val no_cost : op_cost

val create : capacity:int -> dummy:'a -> unit -> 'a t

val capacity : 'a t -> int

val push_bottom : 'a t -> 'a -> op_cost

(** Owner pop. If the private region is empty but public work remains,
    the owner unexposes one task (a fence, per Lace's [shrink_shared])
    and takes it. *)
val pop_bottom : 'a t -> 'a option * op_cost

(** Thief steal from the top of the public region. *)
val pop_top : 'a t -> ('a Deque_intf.steal_result * op_cost)

(** Owner: answer a pending work request by exposing one task (Lace's
    owners check a [splitreq] flag when they access the deque). *)
val expose : 'a t -> int * op_cost

val private_size : 'a t -> int

val public_size : 'a t -> int

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit

(** Adapter to the unified {!Deque_intf.DEQUE} API. Each operation's
    {!op_cost} is folded into the caller's metrics block. [concurrent =
    false]: only single-worker pools (or the simulator) may use it. *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t
