(** Entirely private deque (Acar, Charguéraud & Rainey, PPoPP '13).

    No field is shared: load balancing happens through explicit transfer
    messages handled by the owner, so every operation is
    synchronization-free. Used by the simulator's [Private] policy (the
    related-work comparator) and as a reference model in tests.

    Functorized over {!Deque_intf.ATOMIC} (fields become instrumented
    plain cells) for uniformity with the other deques and for the
    interleaving checker's sequential oracle scripts; the flat API is the
    zero-cost real-atomic build. *)

(** Per-operation contracts are documented on {!Deque_intf.PRIVATE}. *)
module type S = Deque_intf.PRIVATE

include S
