(** Entirely private deque (Acar, Charguéraud & Rainey, PPoPP '13).

    No field is shared: load balancing happens through explicit transfer
    messages handled by the owner, so every operation is
    synchronization-free. Used by the simulator's [Private] policy (the
    related-work comparator) and as a reference model in tests.

    Functorized over {!Deque_intf.ATOMIC} (fields become instrumented
    plain cells) for uniformity with the other deques and for the
    interleaving checker's sequential oracle scripts; the flat API is the
    zero-cost real-atomic build. *)

(** Per-operation contracts are documented on {!Deque_intf.PRIVATE}. *)
module type S = Deque_intf.PRIVATE

(** Seeded protocol mutations, used only by the interleaving checker's
    self-test (each one must produce a counterexample; see
    [lib/check/scenarios.ml]). *)
module Mutation : sig
  type t = {
    pop_unchecked : bool;
        (** pop without the emptiness guard: [bot] can sink below
            [top] *)
  }

  val clean : t

  val pop_unchecked : t
end

(** The checker's entry point for seeded-bug variants: the production
    algorithm text with the mutated [pop_bottom]. *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S

(** The real deque: the flat implementation with {!Mutation.clean}. *)
include S
