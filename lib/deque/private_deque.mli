(** Entirely private deque (Acar, Charguéraud & Rainey, PPoPP '13).

    No field is shared: load balancing happens through explicit transfer
    messages handled by the owner, so every operation is
    synchronization-free. Used by the simulator's [Private] policy (the
    related-work comparator) and as a reference model in tests. *)

type 'a t

val create : capacity:int -> dummy:'a -> unit -> 'a t

val capacity : 'a t -> int

val push_bottom : 'a t -> 'a -> unit

val pop_bottom : 'a t -> 'a option

(** Owner-side removal from the top, used to answer a thief's transfer
    request. *)
val pop_top : 'a t -> 'a option

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit

(** Adapter to the unified {!Deque_intf.DEQUE} API. [pop_top] maps to the
    owner-side transfer pop, so [concurrent = false]: only single-worker
    pools (or the simulator) may use it. *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t
