open Deque_intf

(* [A] is the build-time atomic swap point: the real primitive shim
   here, the instrumented one when this source is re-compiled in
   lib/check/deques for the interleaving checker. *)
module A = Atomic_shim

type op_cost = Deque_intf.lace_cost = { fences : int; cas : int }

let no_cost = { fences = 0; cas = 0 }

module type S = Deque_intf.LACE

type 'a t = {
  dummy : 'a;
  deq : 'a array;
  top : int A.plain; (* first public task *)
  split : int A.plain; (* public region is [top, split) *)
  bot : int A.plain; (* private region is [split, bot) *)
}

let create ~capacity ~dummy () =
  if capacity < 1 then invalid_arg "Lace_deque.create";
  {
    dummy;
    deq = Array.make capacity dummy;
    top = A.plain ~name:"top" 0;
    split = A.plain ~name:"split" 0;
    bot = A.plain ~name:"bot" 0;
  }

let capacity t = Array.length t.deq

let reset_if_empty t =
  if A.read t.top = A.read t.bot then begin
    A.write t.top 0;
    A.write t.split 0;
    A.write t.bot 0
  end

let push_bottom t x =
  let b = A.read t.bot in
  if b >= Array.length t.deq then raise Deque_full;
  t.deq.(b) <- x;
  A.write t.bot (b + 1);
  no_cost

let pop_bottom t =
  if A.read t.bot > A.read t.split then begin
    (* Private pop: synchronization-free, as in LCWS. *)
    let b = A.read t.bot - 1 in
    A.write t.bot b;
    let x = t.deq.(b) in
    reset_if_empty t;
    (Some x, no_cost)
  end
  else if A.read t.split > A.read t.top then begin
    (* Unexpose: Lace's owner moves the split point back before taking the
       task; doing so safely costs a fence (and a CAS-equivalent check
       against racing thieves in the real implementation). *)
    A.write t.split (A.read t.split - 1);
    let b = A.read t.bot - 1 in
    A.write t.bot b;
    let x = t.deq.(b) in
    reset_if_empty t;
    (Some x, { fences = 2; cas = 1 })
  end
  else (None, no_cost)

let pop_top t =
  if A.read t.split > A.read t.top then begin
    let tp = A.read t.top in
    let x = t.deq.(tp) in
    A.write t.top (tp + 1);
    (Stolen x, { fences = 0; cas = 1 })
  end
  else if A.read t.bot > A.read t.split then (Private_work, no_cost)
  else (Empty, no_cost)

(* Batch steal: the sequential specification transfers the whole batch
   in one episode for a single CAS — Lace's group-transfer idiom, the
   cost profile its expose-half split is designed for. *)
let steal_many t ~limit ~into =
  let tp = A.read t.top in
  let avail = A.read t.split - tp in
  if avail > 0 then begin
    let want = min (min limit (Array.length into + 1)) (max 1 (avail / 2)) in
    let first = t.deq.(tp) in
    for i = 1 to want - 1 do
      into.(i - 1) <- t.deq.(tp + i)
    done;
    A.write t.top (tp + want);
    ((Stolen first, want - 1), { fences = 0; cas = 1 })
  end
  else if A.read t.bot > A.read t.split then ((Private_work, 0), no_cost)
  else ((Empty, 0), no_cost)

let expose t =
  if A.read t.bot > A.read t.split then begin
    A.write t.split (A.read t.split + 1);
    (1, { fences = 1; cas = 0 })
  end
  else (0, no_cost)

let private_size t = A.read t.bot - A.read t.split

let public_size t = A.read t.split - A.read t.top

let size t = A.read t.bot - A.read t.top

let is_empty t = size t = 0

let clear t =
  A.write t.top 0;
  A.write t.split 0;
  A.write t.bot 0;
  Array.fill t.deq 0 (Array.length t.deq) t.dummy

(* Unified first-class API. The op_cost returned by each operation is
   folded into the caller's Metrics block so the comparator's
   synchronization profile stays visible outside the simulator. NOT safe
   for concurrent thieves ([concurrent = false]): Lace's real handshake
   protocol is out of scope, so a pool using this deque must run with a
   single worker. *)
type 'a lace = 'a t

module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t = struct
  module Metrics = Lcws_sync.Metrics

  type elt = E.t

  type t = { d : elt lace; m : Metrics.t }

  let name = "lace"

  let concurrent = false

  let charge (m : Metrics.t) (c : op_cost) =
    m.Metrics.fences <- m.Metrics.fences + c.fences;
    m.Metrics.cas_ops <- m.Metrics.cas_ops + c.cas

  let create ~capacity ~dummy ~metrics () = { d = create ~capacity ~dummy (); m = metrics }

  let capacity t = capacity t.d

  let push_bottom t x =
    charge t.m (push_bottom t.d x);
    t.m.Metrics.pushes <- t.m.Metrics.pushes + 1

  let pop_bottom t =
    let r, c = pop_bottom t.d in
    charge t.m c;
    if r <> None then t.m.Metrics.pops <- t.m.Metrics.pops + 1;
    r

  (* No asynchronous exposure: the plain pop is already signal-safe. *)
  let pop_bottom_signal_safe = pop_bottom

  (* [pop_bottom] unexposes instead of competing at the public bottom, so
     a [None] really means the deque is empty. *)
  let pop_public_bottom _ = None

  let pop_top t ~metrics:(m : Metrics.t) =
    m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
    let r, c = pop_top t.d in
    charge m c;
    (match r with
    | Deque_intf.Stolen _ -> m.Metrics.steals <- m.Metrics.steals + 1
    | Deque_intf.Private_work ->
        m.Metrics.private_work_hits <- m.Metrics.private_work_hits + 1
    | Deque_intf.Empty | Deque_intf.Abort -> ());
    r

  let steal_many t ~limit ~into ~metrics:(m : Metrics.t) =
    m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
    let (r, n), c = steal_many t.d ~limit ~into in
    charge m c;
    (match r with
    | Deque_intf.Stolen _ -> m.Metrics.steals <- m.Metrics.steals + 1
    | Deque_intf.Private_work ->
        m.Metrics.private_work_hits <- m.Metrics.private_work_hits + 1
    | Deque_intf.Empty | Deque_intf.Abort -> ());
    (r, n)

  let update_public_bottom t ~policy =
    let r = private_size t.d in
    let want =
      match (policy : Deque_intf.exposure_policy) with
      | Deque_intf.Expose_one -> if r >= 1 then 1 else 0
      | Deque_intf.Expose_conservative -> if r >= 2 then 1 else 0
      | Deque_intf.Expose_half ->
          if r >= 3 then Lcws_sync.Fastmath.round_half r else if r >= 1 then 1 else 0
    in
    let n = ref 0 in
    for _ = 1 to want do
      let k, c = expose t.d in
      charge t.m c;
      n := !n + k
    done;
    if !n > 0 then begin
      t.m.Metrics.exposures <- t.m.Metrics.exposures + 1;
      t.m.Metrics.exposed_tasks <- t.m.Metrics.exposed_tasks + !n
    end;
    !n

  let has_two_tasks t = private_size t.d >= 2

  let private_size t = private_size t.d

  let public_size t = public_size t.d

  let size t = size t.d

  let is_empty t = is_empty t.d

  let clear t = clear t.d
end

(* {2 Seeded mutants} *)

(* Single-line protocol breakages for the interleaving checker's
   self-test (lib/check/scenarios.ml). *)
module Mutation = struct
  type t = {
    expose_unchecked : bool;
        (* expose without the private-work guard: [split] can run past
           [bot], publishing slots that hold no task *)
  }

  let clean = { expose_unchecked = false }

  let expose_unchecked = { expose_unchecked = true }
end

(* [expose] minus the [bot > split] guard. *)
let expose_mutant (mu : Mutation.t) t =
  if not mu.Mutation.expose_unchecked then expose t
  else begin
    A.write t.split (A.read t.split + 1);
    (1, { fences = 1; cas = 0 })
  end

(* The production text with the mutated [expose]; the type equality lets
   the checker's invariants read the raw split/top/bot cells of a mutant
   deque. The unified [Deque] member stays the clean one — the checker
   drives Lace mutants through the flat API only. *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S with type 'a t = 'a t = struct
  type nonrec 'a t = 'a t

  let create = create

  let capacity = capacity

  let push_bottom = push_bottom

  let pop_bottom = pop_bottom

  let pop_top = pop_top

  let steal_many = steal_many

  let expose t = expose_mutant M.mutation t

  let private_size = private_size

  let public_size = public_size

  let size = size

  let is_empty = is_empty

  let clear = clear

  module Deque = Deque
end
