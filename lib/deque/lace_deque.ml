open Deque_intf

type op_cost = { fences : int; cas : int }

let no_cost = { fences = 0; cas = 0 }

type 'a t = {
  dummy : 'a;
  deq : 'a array;
  mutable top : int; (* first public task *)
  mutable split : int; (* public region is [top, split) *)
  mutable bot : int; (* private region is [split, bot) *)
}

let create ~capacity ~dummy () =
  if capacity < 1 then invalid_arg "Lace_deque.create";
  { dummy; deq = Array.make capacity dummy; top = 0; split = 0; bot = 0 }

let reset_if_empty t = if t.top = t.bot then (t.top <- 0; t.split <- 0; t.bot <- 0)

let push_bottom t x =
  if t.bot >= Array.length t.deq then raise Deque_full;
  t.deq.(t.bot) <- x;
  t.bot <- t.bot + 1;
  no_cost

let pop_bottom t =
  if t.bot > t.split then begin
    (* Private pop: synchronization-free, as in LCWS. *)
    t.bot <- t.bot - 1;
    let x = t.deq.(t.bot) in
    reset_if_empty t;
    (Some x, no_cost)
  end
  else if t.split > t.top then begin
    (* Unexpose: Lace's owner moves the split point back before taking the
       task; doing so safely costs a fence (and a CAS-equivalent check
       against racing thieves in the real implementation). *)
    t.split <- t.split - 1;
    t.bot <- t.bot - 1;
    let x = t.deq.(t.bot) in
    reset_if_empty t;
    (Some x, { fences = 2; cas = 1 })
  end
  else (None, no_cost)

let pop_top t =
  if t.split > t.top then begin
    let x = t.deq.(t.top) in
    t.top <- t.top + 1;
    (Stolen x, { fences = 0; cas = 1 })
  end
  else if t.bot > t.split then (Private_work, no_cost)
  else (Empty, no_cost)

let expose t =
  if t.bot > t.split then begin
    t.split <- t.split + 1;
    (1, { fences = 1; cas = 0 })
  end
  else (0, no_cost)

let private_size t = t.bot - t.split

let public_size t = t.split - t.top

let size t = t.bot - t.top

let is_empty t = size t = 0

let clear t =
  t.top <- 0;
  t.split <- 0;
  t.bot <- 0;
  Array.fill t.deq 0 (Array.length t.deq) t.dummy
