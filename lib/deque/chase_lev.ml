module Metrics = Lcws_sync.Metrics
open Deque_intf

(* [A] is the build-time atomic swap point: the real primitive shim
   here, the instrumented one when this source is re-compiled in
   lib/check/deques for the interleaving checker. *)
module A = Atomic_shim

module type S = Deque_intf.CHASE_LEV

(* Atomic store, spelled as an exchange: [A.exchange] is an [external]
   and inlines from the cmi even under the dev profile's [-opaque] (a
   cross-module [A.set] call would not); this [aset] is tiny enough for
   the classic-mode inliner to flatten within this unit, so a store
   costs exactly the [caml_atomic_exchange] the stdlib's [Atomic.set]
   costs. *)
let aset c v = ignore (A.exchange c v)

type 'a t = {
  dummy : 'a;
  deq : 'a array; (* circular; slot i lives at i land mask *)
  mask : int;
  top : int A.t;
  bottom : int A.t;
  metrics : Metrics.t;
}

let create ~capacity ~dummy ~metrics () =
  if capacity < 1 then invalid_arg "Chase_lev.create";
  let cap = Lcws_sync.Fastmath.next_pow2 capacity in
  {
    dummy;
    deq = Array.make cap dummy;
    mask = cap - 1;
    top = A.make ~name:"top" 0;
    bottom = A.make ~name:"bottom" 0;
    metrics;
  }

let capacity t = Array.length t.deq

let push_bottom t x =
  let b = A.get t.bottom in
  let tp = A.get t.top in
  if b - tp >= Array.length t.deq then raise Deque_full;
  t.deq.(b land t.mask) <- x;
  (* Release store in C11; OCaml's [Atomic.set] is SC, so the baseline pays
     at least the fence the real WS implementation pays here on non-TSO. *)
  aset t.bottom (b + 1);
  t.metrics.pushes <- t.metrics.pushes + 1

let pop_bottom t =
  (* Cheap emptiness pre-check: only the owner pushes, so an empty deque
     observed by the owner stays empty — skip the fence entirely (the
     standard optimization; without it every idle probe costs a fence). *)
  let b0 = A.get t.bottom in
  let tp0 = A.get t.top in
  if b0 <= tp0 then None
  else begin
    (* Only the owner writes [bottom], so [b0] is still current — no
       second load. *)
    let b = b0 - 1 in
    aset t.bottom b;
    (* The store above doubles as the algorithm's seq-cst fence separating
       the [bottom] decrement from the [top] load. *)
    t.metrics.fences <- t.metrics.fences + 1;
    let tp = A.get t.top in
    if b < tp then begin
      (* Deque was empty; restore. *)
      aset t.bottom tp;
      None
    end
    else begin
      let x = t.deq.(b land t.mask) in
      if b > tp then begin
        t.metrics.pops <- t.metrics.pops + 1;
        Some x
      end
      else begin
        (* Single element left: race thieves for it. *)
        t.metrics.cas_ops <- t.metrics.cas_ops + 1;
        let won = A.compare_and_set t.top tp (tp + 1) in
        aset t.bottom (tp + 1);
        if won then begin
          t.metrics.pops <- t.metrics.pops + 1;
          Some x
        end
        else begin
          (* The owner lost its own bottom to a thief: an abort, same as
             the split deque's accounting for a lost last-task race. *)
          t.metrics.cas_failures <- t.metrics.cas_failures + 1;
          t.metrics.aborts <- t.metrics.aborts + 1;
          None
        end
      end
    end
  end

let steal t ~metrics:m =
  m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
  let tp = A.get t.top in
  (* Seq-cst fence between the [top] and [bottom] loads in C11; OCaml's SC
     atomics already order them, count it as the algorithm's fence. *)
  m.fences <- m.fences + 1;
  let b = A.get t.bottom in
  if tp < b then begin
    let x = t.deq.(tp land t.mask) in
    m.cas_ops <- m.cas_ops + 1;
    if A.compare_and_set t.top tp (tp + 1) then begin
      m.steals <- m.steals + 1;
      Stolen x
    end
    else begin
      m.cas_failures <- m.cas_failures + 1;
      m.aborts <- m.aborts + 1;
      Abort
    end
  end
  else Empty

(* Batch steal. A single CAS moving [top] forward by [k] would be
   unsound here: the owner plain-pops any slot [s] with [top < s] at its
   post-fence read without touching [top], so a k-claim could take a
   slot the owner already popped (DESIGN.md §3.8 has the two-thread
   counterexample). Instead every claim beyond the first is its own
   standard steal CAS — the previous successful CAS is an SC RMW, so it
   both tells us the exact current [top] and orders the fresh [bottom]
   load after it, which is the same top-read/fence/bottom-read shape the
   single-steal proof relies on. The batch saves the per-task steal
   round and the per-task up-front fence, not the per-task CAS. *)
let steal_many t ~limit ~into ~metrics:(m : Metrics.t) =
  m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
  let tp = A.get t.top in
  m.fences <- m.fences + 1;
  let b = A.get t.bottom in
  let avail = b - tp in
  if avail <= 0 then (Empty, 0)
  else begin
    let want = min (min limit (Array.length into + 1)) (max 1 (avail / 2)) in
    let first = t.deq.(tp land t.mask) in
    m.cas_ops <- m.cas_ops + 1;
    if not (A.compare_and_set t.top tp (tp + 1)) then begin
      m.cas_failures <- m.cas_failures + 1;
      m.aborts <- m.aborts + 1;
      (Abort, 0)
    end
    else begin
      m.steals <- m.steals + 1;
      let n = ref 0 in
      let continue = ref (want > 1) in
      while !continue do
        (* Slot [tp + 1 + !n]: the CAS above (or the previous loop
           iteration's) proved [top = tp + 1 + !n] and fenced this
           [bottom] load after it. *)
        let s = tp + 1 + !n in
        let b' = A.get t.bottom in
        if s >= b' then continue := false
        else begin
          let x = t.deq.(s land t.mask) in
          m.cas_ops <- m.cas_ops + 1;
          if A.compare_and_set t.top s (s + 1) then begin
            into.(!n) <- x;
            incr n;
            if !n + 1 >= want then continue := false
          end
          else begin
            (* Another thief (or the owner's last-task CAS) moved [top];
               keep what we have. *)
            m.cas_failures <- m.cas_failures + 1;
            continue := false
          end
        end
      done;
      (Stolen first, !n)
    end
  end

let size t =
  let n = A.get t.bottom - A.get t.top in
  if n < 0 then 0 else n

let is_empty t = size t = 0

let clear t =
  let tp = A.get t.top in
  aset t.bottom tp;
  Array.fill t.deq 0 (Array.length t.deq) t.dummy

(* Unified first-class API: the whole deque is thief-visible, so the
   public-part operations degenerate — exposure moves nothing and the
   owner never needs the public fallback pop. *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t and type t = E.t t = struct
  type elt = E.t

  type nonrec t = elt t

  let name = "chase_lev"

  let concurrent = true

  let create = create

  let capacity = capacity

  let push_bottom = push_bottom

  let pop_bottom = pop_bottom

  let pop_bottom_signal_safe = pop_bottom

  let pop_public_bottom _ = None

  let pop_top = steal

  let steal_many = steal_many

  let update_public_bottom _ ~policy:_ = 0

  let has_two_tasks _ = false (* no *private* tasks, ever *)

  let private_size _ = 0

  let public_size = size

  let size = size

  let is_empty = is_empty

  let clear = clear
end

(* {2 Seeded mutants} *)

(* Single-line protocol breakages for the interleaving checker's
   self-test (lib/check/scenarios.ml): each must produce a
   counterexample. *)
module Mutation = struct
  type t = {
    steal_store_top : bool;
        (* the thief publishes its claim with a plain store instead of
           the CAS — two racing consumers can both take one slot *)
  }

  let clean = { steal_store_top = false }

  let steal_store_top = { steal_store_top = true }
end

(* [steal] with the knocked-out line: everything up to the claim is the
   production text; the claim itself is a blind store, so a concurrent
   steal (or the owner's last-task CAS) that already took [tp] is
   silently overwritten. *)
let steal_mutant (mu : Mutation.t) t ~metrics:(m : Metrics.t) =
  if not mu.Mutation.steal_store_top then steal t ~metrics:m
  else begin
    m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
    let tp = A.get t.top in
    m.fences <- m.fences + 1;
    let b = A.get t.bottom in
    if tp < b then begin
      let x = t.deq.(tp land t.mask) in
      m.cas_ops <- m.cas_ops + 1;
      aset t.top (tp + 1);
      m.steals <- m.steals + 1;
      Stolen x
    end
    else Empty
  end

(* The production algorithm text with the mutated [steal]. The type
   equality keeps mutant deques interoperable with the flat API, which
   the checker's ownership invariants rely on to read the raw cells. *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S with type 'a t = 'a t = struct
  type nonrec 'a t = 'a t

  let create = create

  let capacity = capacity

  let push_bottom = push_bottom

  let pop_bottom = pop_bottom

  let steal t ~metrics = steal_mutant M.mutation t ~metrics

  let steal_many = steal_many

  let size = size

  let is_empty = is_empty

  let clear = clear

  module Deque (E : sig
    type t
  end) =
  struct
    include Deque (E)

    let pop_top t ~metrics = steal_mutant M.mutation t ~metrics
  end
end
