open Deque_intf

(* [A] is the build-time atomic swap point: the real primitive shim
   here, the instrumented one when this source is re-compiled in
   lib/check/deques for the interleaving checker. *)
module A = Atomic_shim

module type S = Deque_intf.PRIVATE

type 'a t = {
  dummy : 'a;
  deq : 'a array;
  mask : int;
  top : int A.plain;
  bot : int A.plain;
}

let create ~capacity ~dummy () =
  if capacity < 1 then invalid_arg "Private_deque.create";
  let cap = Lcws_sync.Fastmath.next_pow2 capacity in
  {
    dummy;
    deq = Array.make cap dummy;
    mask = cap - 1;
    top = A.plain ~name:"top" 0;
    bot = A.plain ~name:"bot" 0;
  }

let capacity t = Array.length t.deq

let size t = A.read t.bot - A.read t.top

let is_empty t = size t = 0

let push_bottom t x =
  if size t >= Array.length t.deq then raise Deque_full;
  let b = A.read t.bot in
  t.deq.(b land t.mask) <- x;
  A.write t.bot (b + 1)

let pop_bottom t =
  if size t = 0 then None
  else begin
    let b = A.read t.bot - 1 in
    A.write t.bot b;
    let x = t.deq.(b land t.mask) in
    t.deq.(b land t.mask) <- t.dummy;
    Some x
  end

let pop_top t =
  if size t = 0 then None
  else begin
    let tp = A.read t.top in
    let x = t.deq.(tp land t.mask) in
    t.deq.(tp land t.mask) <- t.dummy;
    A.write t.top (tp + 1);
    Some x
  end

(* Owner-side batch transfer: up to half the deque moves in one
   explicit-transfer message (no synchronization at all, like every
   other operation here). *)
let steal_many t ~limit ~into =
  let avail = size t in
  if avail = 0 then (None, 0)
  else begin
    let want = min (min limit (Array.length into + 1)) (max 1 (avail / 2)) in
    let tp = A.read t.top in
    let first = t.deq.(tp land t.mask) in
    t.deq.(tp land t.mask) <- t.dummy;
    for i = 1 to want - 1 do
      let s = (tp + i) land t.mask in
      into.(i - 1) <- t.deq.(s);
      t.deq.(s) <- t.dummy
    done;
    A.write t.top (tp + want);
    (Some first, want - 1)
  end

let clear t =
  A.write t.top 0;
  A.write t.bot 0;
  Array.fill t.deq 0 (Array.length t.deq) t.dummy

type 'a pdq = 'a t

(* Unified first-class API. Everything stays private: exposure moves
   nothing and a "steal" is really the owner-side transfer pop, so the
   module is only legal where no true concurrency exists ([concurrent =
   false]: single-worker pools, or the simulator's event-atomic steps). *)
module Deque (E : sig
  type t
end) : Deque_intf.DEQUE with type elt = E.t = struct
  module Metrics = Lcws_sync.Metrics

  type elt = E.t

  type t = { d : elt pdq; m : Metrics.t }

  let name = "private"

  let concurrent = false

  let create ~capacity ~dummy ~metrics () = { d = create ~capacity ~dummy (); m = metrics }

  let capacity t = capacity t.d

  let push_bottom t x =
    push_bottom t.d x;
    t.m.Metrics.pushes <- t.m.Metrics.pushes + 1

  let pop_bottom t =
    let r = pop_bottom t.d in
    if r <> None then t.m.Metrics.pops <- t.m.Metrics.pops + 1;
    r

  let pop_bottom_signal_safe = pop_bottom

  let pop_public_bottom _ = None

  let pop_top t ~metrics:(m : Metrics.t) =
    m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
    match pop_top t.d with
    | Some x ->
        m.Metrics.steals <- m.Metrics.steals + 1;
        Deque_intf.Stolen x
    | None -> Deque_intf.Empty

  let steal_many t ~limit ~into ~metrics:(m : Metrics.t) =
    m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
    match steal_many t.d ~limit ~into with
    | Some x, n ->
        m.Metrics.steals <- m.Metrics.steals + 1;
        (Deque_intf.Stolen x, n)
    | None, _ -> (Deque_intf.Empty, 0)

  let update_public_bottom _ ~policy:_ = 0

  let has_two_tasks t = size t.d >= 2

  let private_size t = size t.d

  let public_size _ = 0

  let size t = size t.d

  let is_empty t = is_empty t.d

  let clear t = clear t.d
end

(* {2 Seeded mutants} *)

(* Single-line protocol breakages for the interleaving checker's
   self-test (lib/check/scenarios.ml). *)
module Mutation = struct
  type t = {
    pop_unchecked : bool;
        (* pop without the emptiness guard: [bot] can sink below [top],
           conjuring tasks out of empty slots *)
  }

  let clean = { pop_unchecked = false }

  let pop_unchecked = { pop_unchecked = true }
end

(* [pop_bottom] minus the [size t = 0] guard. *)
let pop_bottom_mutant (mu : Mutation.t) t =
  if not mu.Mutation.pop_unchecked then pop_bottom t
  else begin
    let b = A.read t.bot - 1 in
    A.write t.bot b;
    let x = t.deq.(b land t.mask) in
    t.deq.(b land t.mask) <- t.dummy;
    Some x
  end

(* The production text with the mutated [pop_bottom]; the type equality
   lets the checker's invariants read a mutant deque's raw top/bot
   cells. The unified [Deque] member stays the clean one — the checker
   drives private-deque mutants through the flat API only. *)
module Make_mutant (M : sig
  val mutation : Mutation.t
end) : S with type 'a t = 'a t = struct
  type nonrec 'a t = 'a t

  let create = create

  let capacity = capacity

  let push_bottom = push_bottom

  let pop_bottom t = pop_bottom_mutant M.mutation t

  let pop_top = pop_top

  let steal_many = steal_many

  let size = size

  let is_empty = is_empty

  let clear = clear

  module Deque = Deque
end
