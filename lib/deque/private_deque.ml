open Deque_intf

type 'a t = {
  dummy : 'a;
  deq : 'a array;
  mask : int;
  mutable top : int;
  mutable bot : int;
}

let create ~capacity ~dummy () =
  if capacity < 1 then invalid_arg "Private_deque.create";
  let cap = Lcws_sync.Fastmath.next_pow2 capacity in
  { dummy; deq = Array.make cap dummy; mask = cap - 1; top = 0; bot = 0 }

let capacity t = Array.length t.deq

let size t = t.bot - t.top

let is_empty t = size t = 0

let push_bottom t x =
  if size t >= Array.length t.deq then raise Deque_full;
  t.deq.(t.bot land t.mask) <- x;
  t.bot <- t.bot + 1

let pop_bottom t =
  if size t = 0 then None
  else begin
    t.bot <- t.bot - 1;
    let x = t.deq.(t.bot land t.mask) in
    t.deq.(t.bot land t.mask) <- t.dummy;
    Some x
  end

let pop_top t =
  if size t = 0 then None
  else begin
    let x = t.deq.(t.top land t.mask) in
    t.deq.(t.top land t.mask) <- t.dummy;
    t.top <- t.top + 1;
    Some x
  end

let clear t =
  t.top <- 0;
  t.bot <- 0;
  Array.fill t.deq 0 (Array.length t.deq) t.dummy
