(** Log-bucketed latency histogram (HDR-style).

    Values are non-negative integers (nanoseconds on the real engine,
    cycles in the simulator). Buckets 0..15 are exact; above that each
    power-of-two octave is split into 16 linear sub-buckets, so the
    relative quantization error is bounded by 1/16 at every scale while
    the whole table stays under 1000 ints. Recording is allocation-free
    and single-writer (one histogram per recording worker; merge for
    reports). *)

type t

val create : unit -> t

(** [add t v] records one observation. Negative values clamp to 0. *)
val add : t -> int -> unit

(** Number of recorded observations. *)
val count : t -> int

(** Exact extremes and mean of the recorded values (not bucketized). *)
val max_value : t -> int

val min_value : t -> int

val mean : t -> float

(** [percentile t q] for [q] in [0, 1]: an upper bound on the value at
    rank [ceil (q * count)], i.e. the top of the bucket holding that rank
    (capped at the exact maximum). 0 when empty. *)
val percentile : t -> float -> int

(** [merge into x] accumulates [x] into [into]. *)
val merge : t -> t -> unit

val reset : t -> unit

(** One-line "n=… mean=… p50=… p95=… p99=… max=…" summary. *)
val pp : Format.formatter -> t -> unit

(** {2 Bucket geometry, exposed for tests} *)

val bucket_index : int -> int

(** [bucket_bounds i] is the inclusive value range [(lo, hi)] covered by
    bucket [i]. *)
val bucket_bounds : int -> int * int

val num_buckets : int
