(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    One lane ([tid]) per worker under a single process. [Task_start] /
    [Task_end] and [Idle_enter] / [Idle_exit] become nested "B"/"E"
    duration events; everything else becomes a thread-scoped instant
    event carrying its argument (victim id, tasks exposed). Timestamps
    are emitted in microseconds with nanosecond decimals, as the format
    expects.

    Because the rings overwrite their oldest events, a surviving window
    can open mid-nesting; the exporter drops unmatched "E"s at the start
    and closes still-open "B"s at the final timestamp so the output is
    always well-formed. *)

val to_buffer : Buffer.t -> Trace.t -> unit

val to_string : Trace.t -> string

val write_file : string -> Trace.t -> unit

(** Generic trace-event emission for producers outside the scheduler's
    event rings (e.g. the interleaving checker's counterexample export).
    Events are appended in call order; timestamps are nanoseconds. *)
module Raw : sig
  type t

  val create : ?process:string -> unit -> t

  (** Label lane [tid]. *)
  val thread_name : t -> tid:int -> string -> unit

  (** Thread-scoped instant event. *)
  val instant : t -> tid:int -> time:int -> name:string -> ?arg:string * int -> unit -> unit

  (** A matched "B"/"E" pair. *)
  val duration : t -> tid:int -> start:int -> stop:int -> name:string -> unit

  val to_string : t -> string

  val write_file : string -> t -> unit
end
