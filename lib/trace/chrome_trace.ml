let arg_name = function
  | Trace.Steal_attempt | Trace.Steal_ok | Trace.Steal_empty | Trace.Notify -> "victim"
  | Trace.Expose -> "tasks"
  | Trace.Split -> "iterations"
  | _ -> ""

(* Trace-event timestamps are microseconds; keep nanosecond precision as
   decimals without going through floats. *)
let add_ts buf time =
  let time = if time < 0 then 0 else time in
  Buffer.add_string buf (Printf.sprintf "%d.%03d" (time / 1000) (time mod 1000))

let add_event buf ~first ~tid ~time ~ph ~name ?arg () =
  if !first then first := false else Buffer.add_char buf ',';
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf ph;
  Buffer.add_string buf "\",\"ts\":";
  add_ts buf time;
  Buffer.add_string buf ",\"pid\":0,\"tid\":";
  Buffer.add_string buf (string_of_int tid);
  (if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"");
  (match arg with
  | Some (k, v) -> Buffer.add_string buf (Printf.sprintf ",\"args\":{\"%s\":%d}" k v)
  | None -> ());
  Buffer.add_char buf '}'

let add_metadata buf ~first ~tid ~name ~value =
  if !first then first := false else Buffer.add_char buf ',';
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
       name tid value)

let duration_name = function
  | Trace.Task_start | Trace.Task_end -> "task"
  | Trace.Idle_enter | Trace.Idle_exit -> "idle"
  | _ -> assert false

let to_buffer buf t =
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  if Trace.enabled t then begin
    add_metadata buf ~first ~tid:0 ~name:"process_name" ~value:"lcws";
    for w = 0 to Trace.num_workers t - 1 do
      add_metadata buf ~first ~tid:w ~name:"thread_name" ~value:(Printf.sprintf "worker %d" w)
    done;
    for w = 0 to Trace.num_workers t - 1 do
      (* Stack of open "B" names, for closing/sanitizing. *)
      let open_stack = ref [] in
      let last_time = ref 0 in
      Trace.iter_events t ~worker:w (fun ~time kind ~arg ->
          last_time := time;
          match kind with
          | Trace.Task_start | Trace.Idle_enter ->
              let name = duration_name kind in
              open_stack := name :: !open_stack;
              add_event buf ~first ~tid:w ~time ~ph:"B" ~name ()
          | Trace.Task_end | Trace.Idle_exit -> (
              (* An "E" whose "B" was overwritten by ring wrap is dropped. *)
              match !open_stack with
              | [] -> ()
              | name :: rest ->
                  open_stack := rest;
                  add_event buf ~first ~tid:w ~time ~ph:"E" ~name ())
          | _ ->
              let name = Trace.kind_name kind in
              let arg =
                match arg_name kind with "" -> None | k -> Some (k, arg)
              in
              add_event buf ~first ~tid:w ~time ~ph:"i" ~name ?arg ());
      (* Close whatever is still open so B/E stay balanced. *)
      List.iter
        (fun name -> add_event buf ~first ~tid:w ~time:!last_time ~ph:"E" ~name ())
        !open_stack
    done
  end;
  Buffer.add_string buf "]}"

let to_string t =
  let buf = Buffer.create 65536 in
  to_buffer buf t;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf t;
      Buffer.output_buffer oc buf)

(* Generic trace-event emission for producers that are not the scheduler's
   event rings — notably lib/check's interleaving counterexamples, which
   have synthetic timestamps (one microsecond per exploration step) and
   lane names that are scenario thread names rather than worker ids. *)
module Raw = struct
  type t = { buf : Buffer.t; first : bool ref }

  let create ?(process = "lcws") () =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    let first = ref true in
    add_metadata buf ~first ~tid:0 ~name:"process_name" ~value:process;
    { buf; first }

  let thread_name t ~tid name = add_metadata t.buf ~first:t.first ~tid ~name:"thread_name" ~value:name

  let instant t ~tid ~time ~name ?arg () = add_event t.buf ~first:t.first ~tid ~time ~ph:"i" ~name ?arg ()

  let duration t ~tid ~start ~stop ~name =
    add_event t.buf ~first:t.first ~tid ~time:start ~ph:"B" ~name ();
    add_event t.buf ~first:t.first ~tid ~time:stop ~ph:"E" ~name ()

  let to_string t = Buffer.contents t.buf ^ "]}"

  let write_file path t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t))
end
