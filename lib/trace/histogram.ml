(* 16 exact buckets, then 16 linear sub-buckets per power-of-two octave.
   [sub_bits = 4] bounds the relative error of [percentile] by 2^-4. *)

let sub_bits = 4

let sub_count = 1 lsl sub_bits (* 16 *)

(* Highest possible msb of a non-negative OCaml int is 62. *)
let num_buckets = ((62 - sub_bits + 1) * sub_count) + sub_count

type t = {
  counts : int array;
  mutable n : int;
  mutable max_v : int;
  mutable min_v : int;
  mutable sum : int;
}

let create () =
  { counts = Array.make num_buckets 0; n = 0; max_v = 0; min_v = max_int; sum = 0 }

let bucket_index v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else
    let msb = Lcws_sync.Fastmath.log2_floor v in
    ((msb - sub_bits + 1) * sub_count) + ((v lsr (msb - sub_bits)) land (sub_count - 1))

let bucket_bounds i =
  if i < 2 * sub_count then (i, i)
  else
    let msb = (i / sub_count) + sub_bits - 1 in
    let sub = i mod sub_count in
    let width = 1 lsl (msb - sub_bits) in
    let lo = (sub_count + sub) * width in
    (lo, lo + width - 1)

let add t v =
  let v = if v < 0 then 0 else v in
  t.counts.(bucket_index v) <- t.counts.(bucket_index v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let count t = t.n

let max_value t = if t.n = 0 then 0 else t.max_v

let min_value t = if t.n = 0 then 0 else t.min_v

let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

let percentile t q =
  if t.n = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = int_of_float (ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 in
    let result = ref t.max_v in
    (try
       for i = 0 to num_buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           let _, hi = bucket_bounds i in
           result := if hi > t.max_v then t.max_v else hi;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let merge into x =
  for i = 0 to num_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + x.counts.(i)
  done;
  into.n <- into.n + x.n;
  into.sum <- into.sum + x.sum;
  if x.n > 0 then begin
    if x.max_v > into.max_v then into.max_v <- x.max_v;
    if x.min_v < into.min_v then into.min_v <- x.min_v
  end

let reset t =
  Array.fill t.counts 0 num_buckets 0;
  t.n <- 0;
  t.max_v <- 0;
  t.min_v <- max_int;
  t.sum <- 0

let pp ppf t =
  if t.n = 0 then Format.pp_print_string ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d" t.n (mean t)
      (percentile t 0.50) (percentile t 0.95) (percentile t 0.99) (max_value t)
