type kind =
  | Steal_attempt
  | Steal_ok
  | Steal_empty
  | Notify
  | Signal_handled
  | Expose
  | Pop_public
  | Task_start
  | Task_end
  | Idle_enter
  | Idle_exit
  | Split
  | Fault
  | Cancel
  | Task_exn
  | Submit
  | Suspend
  | Resume
  | Park
  | Wake
  | Steal_batch
  | Policy_switch

let all_kinds =
  [
    Steal_attempt;
    Steal_ok;
    Steal_empty;
    Notify;
    Signal_handled;
    Expose;
    Pop_public;
    Task_start;
    Task_end;
    Idle_enter;
    Idle_exit;
    Split;
    Fault;
    Cancel;
    Task_exn;
    Submit;
    Suspend;
    Resume;
    Park;
    Wake;
    Steal_batch;
    Policy_switch;
  ]

let kind_name = function
  | Steal_attempt -> "steal_attempt"
  | Steal_ok -> "steal_ok"
  | Steal_empty -> "steal_empty"
  | Notify -> "notify"
  | Signal_handled -> "signal_handled"
  | Expose -> "expose"
  | Pop_public -> "pop_public"
  | Task_start -> "task_start"
  | Task_end -> "task_end"
  | Idle_enter -> "idle_enter"
  | Idle_exit -> "idle_exit"
  | Split -> "split"
  | Fault -> "fault"
  | Cancel -> "cancel"
  | Task_exn -> "task_exn"
  | Submit -> "submit"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Park -> "park"
  | Wake -> "wake"
  | Steal_batch -> "steal_batch"
  | Policy_switch -> "policy_switch"

let kind_code = function
  | Steal_attempt -> 0
  | Steal_ok -> 1
  | Steal_empty -> 2
  | Notify -> 3
  | Signal_handled -> 4
  | Expose -> 5
  | Pop_public -> 6
  | Task_start -> 7
  | Task_end -> 8
  | Idle_enter -> 9
  | Idle_exit -> 10
  | Split -> 11
  | Fault -> 12
  | Cancel -> 13
  | Task_exn -> 14
  | Submit -> 15
  | Suspend -> 16
  | Resume -> 17
  | Park -> 18
  | Wake -> 19
  | Steal_batch -> 20
  | Policy_switch -> 21

let num_kinds = 22

let kind_of_code = function
  | 0 -> Steal_attempt
  | 1 -> Steal_ok
  | 2 -> Steal_empty
  | 3 -> Notify
  | 4 -> Signal_handled
  | 5 -> Expose
  | 6 -> Pop_public
  | 7 -> Task_start
  | 8 -> Task_end
  | 9 -> Idle_enter
  | 10 -> Idle_exit
  | 11 -> Split
  | 12 -> Fault
  | 13 -> Cancel
  | 14 -> Task_exn
  | 15 -> Submit
  | 16 -> Suspend
  | 17 -> Resume
  | 18 -> Park
  | 19 -> Wake
  | 20 -> Steal_batch
  | 21 -> Policy_switch
  | c -> invalid_arg (Printf.sprintf "Trace.kind_of_code: %d" c)

(* One per worker; strictly single-writer, like Metrics. *)
type ring = {
  kinds : int array;
  times : int array;
  args : int array;
  mask : int;
  mutable pos : int; (* total events ever written; next slot = pos land mask *)
}

type t = {
  on : bool;
  clock : unit -> int;
  rings : ring array;
  kind_counts : int array array; (* kind_counts.(worker).(kind_code) *)
  steal_lat : Histogram.t array; (* indexed by the recording thief *)
  expose_lat : Histogram.t array; (* indexed by the exposing victim *)
  handshake_lat : Histogram.t array; (* indexed by the stealing thief *)
  notify_ts : int Atomic.t array; (* pending Notify time per victim, -1 none *)
  handshake_ts : int Atomic.t array; (* like notify_ts, consumed at Steal_ok *)
}

(* Monotonic nanoseconds as a native int. The previous implementation
   truncated [Unix.gettimeofday () *. 1e9] through a float: at ~1.7e18 ns
   since the epoch a double's 52-bit mantissa quantizes to ~512 ns steps
   and the wall clock can step backwards, so distinct events drew equal —
   or decreasing — timestamps. [Monotonic_clock] (bechamel's
   clock_gettime(CLOCK_MONOTONIC) binding, already a dependency) stays in
   integers end to end; 63 bits of ns cover ~292 years of uptime. *)
let default_clock () = Int64.to_int (Monotonic_clock.now ())

let null =
  {
    on = false;
    clock = (fun () -> 0);
    rings = [||];
    kind_counts = [||];
    steal_lat = [||];
    expose_lat = [||];
    handshake_lat = [||];
    notify_ts = [||];
    handshake_ts = [||];
  }

let create ?(capacity = 65536) ?(clock = default_clock) ~num_workers () =
  if num_workers < 1 then invalid_arg "Trace.create: num_workers must be >= 1";
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  let cap = Lcws_sync.Fastmath.next_pow2 capacity in
  let ring () =
    {
      kinds = Array.make cap 0;
      times = Array.make cap 0;
      args = Array.make cap 0;
      mask = cap - 1;
      pos = 0;
    }
  in
  {
    on = true;
    clock;
    rings = Array.init num_workers (fun _ -> ring ());
    kind_counts = Array.init num_workers (fun _ -> Array.make num_kinds 0);
    steal_lat = Array.init num_workers (fun _ -> Histogram.create ());
    expose_lat = Array.init num_workers (fun _ -> Histogram.create ());
    handshake_lat = Array.init num_workers (fun _ -> Histogram.create ());
    (* Cross-worker correlation cells (thief writes, victim consumes):
       one cache line each, or neighbouring victims' cells false-share. *)
    notify_ts = Array.init num_workers (fun _ -> Lcws_sync.Padding.atomic (-1));
    handshake_ts = Array.init num_workers (fun _ -> Lcws_sync.Padding.atomic (-1));
  }

let enabled t = t.on

let num_workers t = Array.length t.rings

let now t = if t.on then t.clock () else 0

let emit_code t worker code ~time ~arg =
  let r = t.rings.(worker) in
  let i = r.pos land r.mask in
  r.kinds.(i) <- code;
  r.times.(i) <- time;
  r.args.(i) <- arg;
  r.pos <- r.pos + 1;
  let kc = t.kind_counts.(worker) in
  kc.(code) <- kc.(code) + 1

let emit t ~worker ~time kind ~arg = if t.on then emit_code t worker (kind_code kind) ~time ~arg

(* --- recording hooks -------------------------------------------------- *)

let record_steal_attempt t ~thief ~victim ~time =
  if t.on then emit_code t thief 0 (* Steal_attempt *) ~time ~arg:victim

let record_steal_ok t ~thief ~victim ~time ~search_start =
  if t.on then begin
    emit_code t thief 1 (* Steal_ok *) ~time ~arg:victim;
    if search_start >= 0 then Histogram.add t.steal_lat.(thief) (time - search_start);
    let cell = t.handshake_ts.(victim) in
    let ts = Atomic.get cell in
    if ts >= 0 then begin
      Atomic.set cell (-1);
      Histogram.add t.handshake_lat.(thief) (time - ts)
    end
  end

let record_steal_empty t ~thief ~victim ~time =
  if t.on then emit_code t thief 2 (* Steal_empty *) ~time ~arg:victim

let record_notify t ~thief ~victim ~time =
  if t.on then begin
    emit_code t thief 3 (* Notify *) ~time ~arg:victim;
    (* Keep the *oldest* pending notification: exposure latency measures
       how long a request waited, not how recently it was repeated. *)
    let nc = t.notify_ts.(victim) in
    if Atomic.get nc < 0 then Atomic.set nc time;
    let hc = t.handshake_ts.(victim) in
    if Atomic.get hc < 0 then Atomic.set hc time
  end

let record_signal_handled t ~worker ~time =
  if t.on then emit_code t worker 4 (* Signal_handled *) ~time ~arg:0

let record_expose t ~worker ~time ~tasks =
  if t.on then begin
    emit_code t worker 5 (* Expose *) ~time ~arg:tasks;
    let cell = t.notify_ts.(worker) in
    let ts = Atomic.get cell in
    if ts >= 0 then begin
      Atomic.set cell (-1);
      Histogram.add t.expose_lat.(worker) (time - ts)
    end
  end

let record_pop_public t ~worker ~time =
  if t.on then emit_code t worker 6 (* Pop_public *) ~time ~arg:0

let record_task_start t ~worker ~time =
  if t.on then emit_code t worker 7 (* Task_start *) ~time ~arg:0

let record_task_end t ~worker ~time =
  if t.on then emit_code t worker 8 (* Task_end *) ~time ~arg:0

let record_idle_enter t ~worker ~time =
  if t.on then emit_code t worker 9 (* Idle_enter *) ~time ~arg:0

let record_idle_exit t ~worker ~time =
  if t.on then emit_code t worker 10 (* Idle_exit *) ~time ~arg:0

let record_split t ~worker ~time ~iters =
  if t.on then emit_code t worker 11 (* Split *) ~time ~arg:iters

let record_fault t ~worker ~time ~code =
  if t.on then emit_code t worker 12 (* Fault *) ~time ~arg:code

let record_cancel t ~worker ~time ~chunks =
  if t.on then emit_code t worker 13 (* Cancel *) ~time ~arg:chunks

let record_task_exn t ~worker ~time =
  if t.on then emit_code t worker 14 (* Task_exn *) ~time ~arg:0

let record_submit t ~worker ~time =
  if t.on then emit_code t worker 15 (* Submit *) ~time ~arg:0

let record_suspend t ~worker ~time =
  if t.on then emit_code t worker 16 (* Suspend *) ~time ~arg:0

let record_resume t ~worker ~time =
  if t.on then emit_code t worker 17 (* Resume *) ~time ~arg:0

let record_park t ~worker ~time =
  if t.on then emit_code t worker 18 (* Park *) ~time ~arg:0

let record_wake t ~worker ~time ~spurious =
  if t.on then emit_code t worker 19 (* Wake *) ~time ~arg:(if spurious then 1 else 0)

let record_steal_batch t ~thief ~time ~tasks =
  if t.on then emit_code t thief 20 (* Steal_batch *) ~time ~arg:tasks

let record_policy_switch t ~worker ~time ~mode =
  if t.on then emit_code t worker 21 (* Policy_switch *) ~time ~arg:mode

(* --- reading ---------------------------------------------------------- *)

let length t ~worker =
  if not t.on then 0
  else
    let r = t.rings.(worker) in
    if r.pos <= r.mask + 1 then r.pos else r.mask + 1

let dropped t ~worker =
  if not t.on then 0
  else
    let r = t.rings.(worker) in
    if r.pos <= r.mask + 1 then 0 else r.pos - (r.mask + 1)

let iter_events t ~worker f =
  if t.on then begin
    let r = t.rings.(worker) in
    let n = length t ~worker in
    let start = r.pos - n in
    for j = start to r.pos - 1 do
      let i = j land r.mask in
      f ~time:r.times.(i) (kind_of_code r.kinds.(i)) ~arg:r.args.(i)
    done
  end

let events t ~worker =
  let acc = ref [] in
  iter_events t ~worker (fun ~time kind ~arg -> acc := (time, kind, arg) :: !acc);
  List.rev !acc

let total_events t =
  Array.fold_left (fun acc r -> acc + r.pos) 0 t.rings

let counts t =
  List.map
    (fun k ->
      let c = kind_code k in
      (k, Array.fold_left (fun acc kc -> acc + kc.(c)) 0 t.kind_counts))
    all_kinds

type latencies = { steal : Histogram.t; expose : Histogram.t; handshake : Histogram.t }

let merge_all hists =
  let acc = Histogram.create () in
  Array.iter (fun h -> Histogram.merge acc h) hists;
  acc

let latencies t =
  {
    steal = merge_all t.steal_lat;
    expose = merge_all t.expose_lat;
    handshake = merge_all t.handshake_lat;
  }

let summary ppf t =
  if not t.on then Format.fprintf ppf "trace: disabled@."
  else begin
    let l = latencies t in
    Format.fprintf ppf "trace: %d workers, %d events (%d retained)@." (num_workers t)
      (total_events t)
      (let n = ref 0 in
       for w = 0 to num_workers t - 1 do
         n := !n + length t ~worker:w
       done;
       !n);
    Format.fprintf ppf "  events:";
    List.iter
      (fun (k, c) -> if c > 0 then Format.fprintf ppf " %s=%d" (kind_name k) c)
      (counts t);
    Format.fprintf ppf "@.";
    Format.fprintf ppf "  steal latency      %a@." Histogram.pp l.steal;
    Format.fprintf ppf "  exposure latency   %a@." Histogram.pp l.expose;
    Format.fprintf ppf "  handshake latency  %a@." Histogram.pp l.handshake
  end

let reset t =
  if t.on then begin
    Array.iter (fun r -> r.pos <- 0) t.rings;
    Array.iter (fun kc -> Array.fill kc 0 num_kinds 0) t.kind_counts;
    Array.iter Histogram.reset t.steal_lat;
    Array.iter Histogram.reset t.expose_lat;
    Array.iter Histogram.reset t.handshake_lat;
    Array.iter (fun c -> Atomic.set c (-1)) t.notify_ts;
    Array.iter (fun c -> Atomic.set c (-1)) t.handshake_ts
  end
