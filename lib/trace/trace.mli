(** Low-overhead scheduler event tracing.

    Each worker owns a fixed-capacity event ring of pre-allocated int
    fields (kind, timestamp, argument) — recording performs no allocation
    and overwrites the oldest events on wrap, so a trace can run for the
    whole job at bounded memory. The same sink also accumulates
    log-bucketed latency histograms for the paper's two interesting
    delays:

    - {e steal latency}: from entering the work-search loop
      ([Idle_enter]) to a successful steal ([Steal_ok]);
    - {e exposure latency}: from a thief's [Notify] to the victim's
      [Expose] — the quantity Rito & Paulino bound by a constant for the
      signal-based variants;
    - {e handshake latency}: the full [Notify] → [Expose] → [Steal_ok]
      round trip, thief-observed.

    A disabled sink ({!null}) makes every recording function a single
    branch with no clock read and no allocation, so instrumented hot
    paths cost nothing when tracing is off.

    Timestamps are plain ints: monotonic nanoseconds
    ([clock_gettime(CLOCK_MONOTONIC)], integer arithmetic end to end)
    from the default clock on the real engine, simulated cycles in the
    discrete-event simulator (which passes its own virtual times). Rings and histograms
    are single-writer (each worker records only to its own lane); the
    notify/handshake correlation cells are atomics, racy reads being
    acceptable for observability. *)

(** The event taxonomy (DESIGN.md "Observability"). *)
type kind =
  | Steal_attempt  (** thief probes a victim; arg = victim id *)
  | Steal_ok  (** steal succeeded; arg = victim id *)
  | Steal_empty  (** victim deque observed empty; arg = victim id *)
  | Notify  (** thief requested exposure; arg = victim id *)
  | Signal_handled  (** victim acted on a pending exposure request *)
  | Expose  (** tasks moved to the public part; arg = #tasks *)
  | Pop_public  (** owner took a task back from its public part *)
  | Task_start  (** a task began running *)
  | Task_end  (** a task finished *)
  | Idle_enter  (** worker entered the work-search loop *)
  | Idle_exit  (** worker left the work-search loop *)
  | Split  (** lazy loop split off a stealable half; arg = #iterations *)
  | Fault  (** fault layer fired; arg = fault code (the fault layer's) *)
  | Cancel  (** cancellation observed; arg = loop chunks skipped *)
  | Task_exn  (** a task completed exceptionally *)
  | Submit  (** an externally submitted task entered a worker's deque *)
  | Suspend  (** a fiber parked its continuation at a [Suspend] effect *)
  | Resume  (** a parked fiber's continuation resumed on this worker *)
  | Park  (** worker blocked in the parking lot after a fruitless search *)
  | Wake  (** worker returned from a park; arg = 1 iff the wake was spurious *)
  | Steal_batch  (** a steal episode moved a batch; arg = #tasks migrated *)
  | Policy_switch
      (** adaptive pool: worker adopted a new exposure policy; arg = the
          adopted mode ({!Lcws_sched}'s [Sched_protocol.Policy_switch]
          encoding: 0 unsynchronized, 1 signal-handshake) *)

val all_kinds : kind list

val kind_name : kind -> string

(** The stable wire code of a kind — the value stored in the ring and
    consumed by exporters. Codes are dense, starting at 0, in
    {!all_kinds} order. *)
val kind_code : kind -> int

(** Inverse of {!kind_code}.
    @raise Invalid_argument on a code no kind encodes to. *)
val kind_of_code : int -> kind

type t

(** The disabled sink: every recording call is a near-no-op. *)
val null : t

(** [create ~num_workers ()] — one ring per worker.

    @param capacity events retained per worker ring, rounded up to a
      power of two (default 65536).
    @param clock timestamp source (default: [clock_gettime(MONOTONIC)]
      in integer nanoseconds, no float rounding anywhere). The simulator
      ignores it and passes its own virtual times. *)
val create : ?capacity:int -> ?clock:(unit -> int) -> num_workers:int -> unit -> t

val enabled : t -> bool

val num_workers : t -> int

(** Current timestamp from the sink's clock; 0 on a disabled sink. *)
val now : t -> int

(** Raw event append to [worker]'s ring. Prefer the [record_*] helpers,
    which also maintain the latency histograms. *)
val emit : t -> worker:int -> time:int -> kind -> arg:int -> unit

(** {2 Recording hooks}

    All are no-ops on a disabled sink. [time] is the caller's timestamp
    ({!now} on the real engine, the virtual clock in the simulator). *)

val record_steal_attempt : t -> thief:int -> victim:int -> time:int -> unit

(** [search_start] is the timestamp of the matching [Idle_enter] (or -1
    to skip the steal-latency sample). *)
val record_steal_ok : t -> thief:int -> victim:int -> time:int -> search_start:int -> unit

val record_steal_empty : t -> thief:int -> victim:int -> time:int -> unit

val record_notify : t -> thief:int -> victim:int -> time:int -> unit

val record_signal_handled : t -> worker:int -> time:int -> unit

val record_expose : t -> worker:int -> time:int -> tasks:int -> unit

val record_pop_public : t -> worker:int -> time:int -> unit

val record_task_start : t -> worker:int -> time:int -> unit

val record_task_end : t -> worker:int -> time:int -> unit

val record_idle_enter : t -> worker:int -> time:int -> unit

val record_idle_exit : t -> worker:int -> time:int -> unit

(** A lazy [parallel_for] split off a stealable right half of [iters]
    iterations in response to observed demand. *)
val record_split : t -> worker:int -> time:int -> iters:int -> unit

(** The fault-injection layer fired on [worker]; [code] identifies the
    fault kind ({!Lcws_sync} keeps the codes with the plan). *)
val record_fault : t -> worker:int -> time:int -> code:int -> unit

(** [worker] observed a cancellation request and skipped [chunks] loop
    chunks (0 when the observation point is not a loop). *)
val record_cancel : t -> worker:int -> time:int -> chunks:int -> unit

(** A task on [worker] completed by raising. *)
val record_task_exn : t -> worker:int -> time:int -> unit

(** An externally submitted task was drained from the injector into
    [worker]'s deque (recorded at drain time so rings stay
    single-writer — the submitting thread has no lane). *)
val record_submit : t -> worker:int -> time:int -> unit

(** A fiber running on [worker] parked its continuation. *)
val record_suspend : t -> worker:int -> time:int -> unit

(** A parked continuation was resumed on [worker]. *)
val record_resume : t -> worker:int -> time:int -> unit

(** [worker] gave up searching and blocked in the parking lot. *)
val record_park : t -> worker:int -> time:int -> unit

(** [worker] returned from a park; [spurious] when its post-wake search
    found no work (the doorbell's task was taken by someone else). *)
val record_wake : t -> worker:int -> time:int -> spurious:bool -> unit

(** A steal episode on [thief] migrated [tasks] tasks in one batch
    (recorded in addition to the per-episode [Steal_ok]). *)
val record_steal_batch : t -> thief:int -> time:int -> tasks:int -> unit

(** [worker] adopted a new exposure policy ([mode]: 0 unsynchronized,
    1 signal-handshake) published by the adaptive governor. *)
val record_policy_switch : t -> worker:int -> time:int -> mode:int -> unit

(** {2 Reading a trace back} *)

(** Events surviving in [worker]'s ring, oldest first. *)
val iter_events : t -> worker:int -> (time:int -> kind -> arg:int -> unit) -> unit

(** [(time, kind, arg)] list, oldest first (test/report convenience). *)
val events : t -> worker:int -> (int * kind * int) list

(** Events currently held in [worker]'s ring. *)
val length : t -> worker:int -> int

(** Events overwritten by ring wrap-around in [worker]'s ring. *)
val dropped : t -> worker:int -> int

(** Total events ever recorded, all workers, including dropped ones. *)
val total_events : t -> int

(** Per-kind totals across all workers (counted at record time, so wrap
    does not lose them). *)
val counts : t -> (kind * int) list

type latencies = {
  steal : Histogram.t;  (** Idle_enter → Steal_ok *)
  expose : Histogram.t;  (** Notify → Expose (the paper's exposure delay) *)
  handshake : Histogram.t;  (** Notify → Expose → Steal_ok round trip *)
}

(** Merged across all workers; fresh histograms on every call. *)
val latencies : t -> latencies

(** Event counts plus steal/exposure/handshake latency percentiles. *)
val summary : Format.formatter -> t -> unit

(** Drop all recorded events, counters and histogram contents. *)
val reset : t -> unit
