module Metrics = Lcws_sync.Metrics
module Xoshiro = Lcws_sync.Xoshiro
module Backoff = Lcws_sync.Backoff
module Padding = Lcws_sync.Padding
module Trace = Lcws_trace.Trace
module Fault = Lcws_fault.Fault
open Lcws_deque.Deque_intf

exception Cancelled

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Lcws.Scheduler.Cancelled"
    | _ -> None)

type variant = Ws | Uslcws | Signal | Cons | Half

let all_variants = [ Ws; Uslcws; Signal; Cons; Half ]

let lcws_variants = [ Uslcws; Signal; Cons; Half ]

let variant_name = function
  | Ws -> "ws"
  | Uslcws -> "uslcws"
  | Signal -> "signal"
  | Cons -> "cons"
  | Half -> "half"

let variant_label = function
  | Ws -> "WS"
  | Uslcws -> "User"
  | Signal -> "Signal"
  | Cons -> "Cons"
  | Half -> "Half"

let variant_of_string s =
  match String.lowercase_ascii s with
  | "ws" -> Some Ws
  | "uslcws" | "user" -> Some Uslcws
  | "signal" -> Some Signal
  | "cons" | "conservative" -> Some Cons
  | "half" -> Some Half
  | _ -> None

type task = unit -> unit

let dummy_task : task = fun () -> ()

(* The deque implementations, instantiated at [task] and packed as
   first-class modules: the scheduler is generic over the DEQUE signature
   and never matches on a concrete representation. *)

module Chase_lev_deque = Lcws_deque.Chase_lev.Deque (struct
  type t = task
end)

module Split_deque_deque = Lcws_deque.Split_deque.Deque (struct
  type t = task
end)

module Lace_deque_deque = Lcws_deque.Lace_deque.Deque (struct
  type t = task
end)

module Private_deque_deque = Lcws_deque.Private_deque.Deque (struct
  type t = task
end)

type deque_impl = task impl

let chase_lev_impl : deque_impl = (module Chase_lev_deque)

let split_deque_impl : deque_impl = (module Split_deque_deque)

let lace_impl : deque_impl = (module Lace_deque_deque)

let private_impl : deque_impl = (module Private_deque_deque)

let all_deque_impls = [ chase_lev_impl; split_deque_impl; lace_impl; private_impl ]

let deque_impl_name = impl_name

let deque_impl_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun i -> impl_name i = s) all_deque_impls

(* The paper's pairing: WS runs on Chase-Lev, every LCWS variant on the
   split deque. *)
let default_deque_impl = function
  | Ws -> chase_lev_impl
  | Uslcws | Signal | Cons | Half -> split_deque_impl

(* {2 Join frames}

   One [fork_join] needs a result slot and a completion word for its
   child. Allocating them per call (plus a closure to tie them
   together) puts heap traffic and write barriers on the hot path of
   every fork — exactly the per-fork overhead the LCWS design is meant
   to avoid paying. Instead each worker keeps a LIFO pool of reusable
   frames:

   - [fn] holds the child closure for this use of the frame ([Obj.t] so
     one frame serves every result type; the callers re-type it with
     the locally-abstract types of their [fork_join]);
   - [task] is a trampoline closure allocated once per frame, pushed on
     the deque in place of a per-call closure; a thief that steals it
     runs the frame's current [fn] and publishes into the frame;
   - [state]/[result] are only ever touched on the stolen path: the
     un-stolen fast path pops [task] straight back (identity test
     against the frame) and runs [fn] inline with plain accesses only.

   Frame discipline is strictly LIFO per worker: nested forks — and
   tasks run while helping, which fork in turn — acquire above and
   release before their parent does, so acquire/release is a pointer
   bump. A frame is recycled only after its child's outcome has been
   consumed, which the stolen path orders through the SC [state] flag
   ([lib/check]'s frame scenarios explore exactly this protocol,
   including a seeded recycled-too-early mutant). [state] sits in its
   own cache line so a thief's completion store does not collide with
   neighbouring frames of the victim's pool. *)

type frame = {
  state : int Atomic.t; (* frame_pending / frame_done / frame_exn; padded *)
  mutable result : Obj.t; (* child outcome; valid once state flips *)
  mutable fn : Obj.t; (* the (unit -> _) child of the current use *)
  mutable task : task; (* preallocated trampoline for this frame *)
}

let frame_pending = 0

let frame_done = 1

let frame_exn = 2

let unit_obj = Obj.repr ()

let initial_frames = 64

type worker = {
  id : int;
  metrics : Metrics.t;
  deque : task instance;
  targeted : bool Atomic.t;
  signal_pending : bool Atomic.t;
  rng : Xoshiro.t;
  backoff : Backoff.t;
  mutable frames : frame array; (* the worker's LIFO frame pool... *)
  mutable frame_top : int; (* ...and its stack pointer *)
}

type pool = {
  pvariant : variant;
  nw : int;
  workers : worker array;
  mutable domains : unit Domain.t list;
  job_active : bool Atomic.t;
  stop : bool Atomic.t;
  gen : int Atomic.t;
  mutex : Mutex.t;
  cond : Condition.t;
  steal_sleep_us : int;
  running : bool Atomic.t;
  trace : Trace.t;
  fault : Fault.t;
  fault_on : bool; (* [Fault.active fault], cached as a plain immutable
                      field so every hook guard is one predictable load
                      and branch (same discipline as [Trace.t.on]) *)
  cancel_requested : bool Atomic.t; (* cancel the in-flight job; set by
                                       [Pool.cancel], [Pool.shutdown] and
                                       the fault layer, cleared at the
                                       start of the next [Pool.run] *)
}

let ctx_key : (pool * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let request_cancel pool =
  if not (Atomic.get pool.cancel_requested) then Atomic.set pool.cancel_requested true

let record_fault pool w code =
  let tr = pool.trace in
  if Trace.enabled tr then Trace.record_fault tr ~worker:w.id ~time:(Trace.now tr) ~code

(* One fault-layer poll point; [true] means this poll is stalled and the
   caller must skip its signal handling. Only reached when
   [pool.fault_on]. *)
let fault_poll pool w =
  match Fault.poll pool.fault ~worker:w.id ~metrics:w.metrics with
  | Fault.Pass -> false
  | Fault.Stalled ->
      record_fault pool w Fault.code_stall;
      (* Burn a timeslice-ish amount of nothing: long enough for thieves
         to observe an unresponsive victim, short enough to keep chaos
         runs fast. *)
      for _ = 1 to 64 do
        Domain.cpu_relax ()
      done;
      true
  | Fault.Cancel_job ->
      record_fault pool w Fault.code_cancel;
      request_cancel pool;
      false

(* {2 Frame execution}

   [exec_frame] runs on whoever took the frame's task — the stolen path.
   The result write must be visible before the flag flip; [Atomic.set]
   is an SC store, so the owner's read of [state] orders the read of
   [result]. An exception — the child's own, an injected one, or
   [Cancelled] — is published through the same flag ([frame_exn]), so a
   failing child still completes its frame and the owner's join can
   never hang on it.

   This is also the stolen path's cancellation and injection point: the
   context lookup only happens here (never on the un-stolen inline
   path), so the fork/join fast path stays free of it. *)
let exec_frame fr =
  let ctx = Domain.DLS.get ctx_key in
  let run () =
    (match ctx with
    | Some (pool, w) ->
        if Atomic.get pool.cancel_requested then raise Cancelled;
        if pool.fault_on then begin
          match Fault.inject_now pool.fault ~worker:w.id ~metrics:w.metrics with
          | Some (iw, k) ->
              record_fault pool w Fault.code_inject;
              raise (Fault.Injected (iw, k))
          | None -> ()
        end
    | None -> ());
    (Obj.obj fr.fn : unit -> Obj.t) ()
  in
  match run () with
  | v ->
      fr.result <- v;
      Atomic.set fr.state frame_done
  | exception e ->
      (match ctx with
      | Some (pool, w) ->
          w.metrics.task_exns <- w.metrics.task_exns + 1;
          let tr = pool.trace in
          if Trace.enabled tr then Trace.record_task_exn tr ~worker:w.id ~time:(Trace.now tr)
      | None -> ());
      fr.result <- Obj.repr e;
      Atomic.set fr.state frame_exn

let make_frame () =
  let fr = { state = Padding.atomic frame_pending; result = unit_obj; fn = unit_obj; task = dummy_task } in
  fr.task <- (fun () -> exec_frame fr);
  fr

let acquire_frame w =
  let top = w.frame_top in
  if top = Array.length w.frames then begin
    (* Double the pool. Existing frames keep their identity — each is
       aliased by its own trampoline and possibly live in the deque. *)
    let n = Array.length w.frames in
    w.frames <- Array.init (2 * n) (fun i -> if i < n then w.frames.(i) else make_frame ())
  end;
  let fr = w.frames.(top) in
  w.frame_top <- top + 1;
  fr

(* Only legal once the frame's child outcome has been consumed (or the
   push that would have exposed it failed): the caller guarantees no
   thief can still touch [fr]. *)
let release_frame w fr =
  fr.fn <- unit_obj;
  fr.result <- unit_obj;
  let top = w.frame_top - 1 in
  assert (w.frames.(top) == fr);
  w.frame_top <- top

let exposure_policy = function
  | Uslcws | Signal -> Expose_one
  | Cons -> Expose_conservative
  | Half -> Expose_half
  | Ws -> assert false

(* Cheap conditional reset: the [Atomic.get] is a plain load; the SC store
   only happens when a thief actually targeted us. *)
let reset_targeted w = if Atomic.get w.targeted then Atomic.set w.targeted false

(* The body of the paper's signal handler (Listing 3): transfer work to
   the public part of the split deque. Runs on the victim's own domain at
   poll points — our stand-in for in-handler execution (DESIGN.md §2.2).

   The fault layer intercepts here, at the protocol level rather than
   under the deque's atomics: a poll may be stalled (the victim behaves
   as if preempted), and a pending signal may be dropped — clearing
   [targeted] so thieves go through the Section 4 re-request path — or
   deferred to a later poll. When no plan is installed this adds exactly
   one load-and-branch on [fault_on]. *)
let handle_signal pool w =
  Atomic.set w.signal_pending false;
  let (Instance ((module D), d)) = w.deque in
  let n = D.update_public_bottom d ~policy:(exposure_policy pool.pvariant) in
  w.metrics.signals_handled <- w.metrics.signals_handled + 1;
  let tr = pool.trace in
  if Trace.enabled tr then begin
    let time = Trace.now tr in
    Trace.record_signal_handled tr ~worker:w.id ~time;
    if n > 0 then Trace.record_expose tr ~worker:w.id ~time ~tasks:n
  end

let handle_pending pool w =
  let stalled = pool.fault_on && fault_poll pool w in
  if not stalled then
    match pool.pvariant with
    | Signal | Cons | Half ->
        if Atomic.get w.signal_pending then
          if not pool.fault_on then handle_signal pool w
          else begin
            match Fault.on_signal pool.fault ~worker:w.id ~metrics:w.metrics with
            | Fault.Handle -> handle_signal pool w
            | Fault.Defer -> record_fault pool w Fault.code_delay_signal
            | Fault.Drop ->
                (* The request evaporates: pending cleared, [targeted]
                   reset so the thief's next probe may notify again. The
                   thief sees [Private_work] and re-requests — worst case
                   the victim drains its own deque privately, so progress
                   never depends on a dropped signal. *)
                Atomic.set w.signal_pending false;
                reset_targeted w;
                record_fault pool w Fault.code_drop_signal
          end
    | Ws | Uslcws -> ()

let push_task pool w t =
  let (Instance ((module D), d)) = w.deque in
  D.push_bottom d t;
  (* Signal-based variants: a fresh push means there is (new) work that can
     be exposed, so thieves may notify again (Section 4). *)
  match pool.pvariant with
  | Signal | Cons | Half -> reset_targeted w
  | Ws | Uslcws -> ()

(* Owner-side task lookup on the own deque: private part first, then the
   public part (Listing 1 lines 7-16). For the signal-safe [pop_bottom] of
   Section 4, a [None] from the private part *must* fall through to
   [pop_public_bottom], which repairs the decremented [bot]. *)
let pop_own pool w =
  let (Instance ((module D), d)) = w.deque in
  let private_task =
    match pool.pvariant with
    | Signal | Half -> D.pop_bottom_signal_safe d
    | Ws | Uslcws | Cons -> D.pop_bottom d
  in
  match private_task with
  | Some _ as r ->
      (* USLCWS handles exposure requests at task boundaries only
         (Listing 1 lines 8-12). *)
      (match pool.pvariant with
      | Uslcws ->
          if Atomic.get w.targeted then begin
            Atomic.set w.targeted false;
            let n = D.update_public_bottom d ~policy:Expose_one in
            w.metrics.signals_handled <- w.metrics.signals_handled + 1;
            let tr = pool.trace in
            if Trace.enabled tr then begin
              let time = Trace.now tr in
              Trace.record_signal_handled tr ~worker:w.id ~time;
              if n > 0 then Trace.record_expose tr ~worker:w.id ~time ~tasks:n
            end
          end
      | Ws | Signal | Cons | Half -> ());
      r
  | None -> (
      match D.pop_public_bottom d with
      | Some _ as r ->
          (* A public task was consumed: previously shared work is no
             longer accessible, allow new notifications. *)
          reset_targeted w;
          let tr = pool.trace in
          if Trace.enabled tr then
            Trace.record_pop_public tr ~worker:w.id ~time:(Trace.now tr);
          r
      | None ->
          (* Listing 1 line 17. *)
          reset_targeted w;
          None)

(* Thief-side notification policy (Listing 1 line 22 / Listing 3). *)
let notify pool thief victim =
  let notified =
    match pool.pvariant with
    | Ws -> false
    | Uslcws ->
        Atomic.set victim.targeted true;
        thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
        true
    | Signal | Half ->
        if not (Atomic.get victim.targeted) then begin
          Atomic.set victim.targeted true;
          Atomic.set victim.signal_pending true;
          thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
          true
        end
        else false
    | Cons ->
        let has_two =
          let (Instance ((module D), d)) = victim.deque in
          D.has_two_tasks d
        in
        if (not (Atomic.get victim.targeted)) && has_two then begin
          Atomic.set victim.targeted true;
          Atomic.set victim.signal_pending true;
          thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
          true
        end
        else false
  in
  if notified then begin
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_notify tr ~thief:thief.id ~victim:victim.id ~time:(Trace.now tr)
  end

(* [search_start] is the Idle_enter timestamp of the enclosing work
   search (-1 when tracing is off), for the steal-latency histogram. *)
let steal_once pool w ~search_start =
  if pool.nw < 2 then None
  else if pool.fault_on && Fault.steal_veto pool.fault ~thief:w.id ~metrics:w.metrics then begin
    (* A spurious failure, as if the top CAS lost a race. Vetoed before
       victim selection and before the deque counts a [steal_attempt],
       so the metrics balance checks stay exact. *)
    record_fault pool w Fault.code_steal_veto;
    None
  end
  else begin
    let victim_id = Xoshiro.other_than w.rng ~bound:pool.nw ~self:w.id in
    let v = pool.workers.(victim_id) in
    let (Instance ((module D), d)) = v.deque in
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_steal_attempt tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr);
    match D.pop_top d ~metrics:w.metrics with
    | Stolen t ->
        (* The shared task is gone; future thieves may notify again. *)
        reset_targeted v;
        if Trace.enabled tr then
          Trace.record_steal_ok tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr)
            ~search_start;
        Some t
    | Private_work ->
        notify pool w v;
        None
    | Empty ->
        if Trace.enabled tr then
          Trace.record_steal_empty tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr);
        None
    | Abort -> None
  end

let sleep_us us = if us > 0 then Unix.sleepf (float_of_int us *. 1e-6)

(* One failed steal round: spin through the worker's backoff; once it
   saturates, yield the timeslice so victims can run — vital when domains
   outnumber cores — and start over. The policy (and its counting) lives
   in [Backoff]; the scheduler only decides what "stronger than spinning"
   means here. *)
let idle_pause pool w =
  if Backoff.saturated w.backoff then begin
    sleep_us pool.steal_sleep_us;
    Backoff.reset w.backoff
  end
  else Backoff.once w.backoff

(* Helper workers' task acquisition (Listing 1's [get_task]): own deque,
   then repeated steal attempts until the job ends. *)
let get_task pool w =
  if not (Atomic.get pool.job_active) then None
  else
    match pop_own pool w with
    | Some _ as r -> r
    | None ->
        let tr = pool.trace in
        let traced = Trace.enabled tr in
        let search_start = if traced then Trace.now tr else -1 in
        if traced then Trace.record_idle_enter tr ~worker:w.id ~time:search_start;
        Backoff.reset w.backoff;
        let finish r =
          if traced then Trace.record_idle_exit tr ~worker:w.id ~time:(Trace.now tr);
          Backoff.reset w.backoff;
          r
        in
        let rec loop () =
          if not (Atomic.get pool.job_active) then finish None
          else begin
            w.metrics.idle_loops <- w.metrics.idle_loops + 1;
            match steal_once pool w ~search_start with
            | Some _ as r -> finish r
            | None ->
                idle_pause pool w;
                loop ()
          end
        in
        loop ()

let run_task pool w (t : task) =
  w.metrics.tasks_run <- w.metrics.tasks_run + 1;
  let tr = pool.trace in
  let traced = Trace.enabled tr in
  if traced then Trace.record_task_start tr ~worker:w.id ~time:(Trace.now tr);
  t ();
  if traced then Trace.record_task_end tr ~worker:w.id ~time:(Trace.now tr)

let helper_body pool w =
  Domain.DLS.set ctx_key (Some (pool, w));
  let last_gen = ref 0 in
  let rec work () =
    match get_task pool w with
    | Some t ->
        handle_pending pool w;
        run_task pool w t;
        handle_pending pool w;
        work ()
    | None -> ()
  in
  let rec wait_loop () =
    Mutex.lock pool.mutex;
    while (not (Atomic.get pool.stop)) && Atomic.get pool.gen = !last_gen do
      Condition.wait pool.cond pool.mutex
    done;
    Mutex.unlock pool.mutex;
    if not (Atomic.get pool.stop) then begin
      last_gen := Atomic.get pool.gen;
      work ();
      wait_loop ()
    end
  in
  wait_loop ()

module Pool = struct
  type t = pool

  let create ?(seed = 42L) ?(deque_capacity = 65536) ?(steal_sleep_us = 50) ?deque
      ?(trace = Trace.null) ?fault:fault_plan ~num_workers ~variant () =
    if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
    let fault =
      match fault_plan with None -> Fault.none | Some p -> Fault.create p ~num_workers
    in
    let impl = match deque with Some i -> i | None -> default_deque_impl variant in
    if (not (impl_concurrent impl)) && num_workers > 1 then
      invalid_arg
        (Printf.sprintf
           "Pool.create: deque %S is a sequential specification; use num_workers:1"
           (impl_name impl));
    if Trace.enabled trace && Trace.num_workers trace < num_workers then
      invalid_arg "Pool.create: trace was created for fewer workers";
    let root_rng = Xoshiro.create seed in
    let make_worker id =
      let metrics = Metrics.create () in
      {
        id;
        metrics;
        deque = make impl ~capacity:deque_capacity ~dummy:dummy_task ~metrics;
        (* Thief-written flags get a cache line each: a notify to one
           worker must not invalidate the line a neighbour's flag (or an
           adjacent worker record's fields) lives on. *)
        targeted = Padding.atomic false;
        signal_pending = Padding.atomic false;
        rng = Xoshiro.split root_rng id;
        backoff = Backoff.create ~min_wait:1 ~max_wait:64 ~metrics ();
        frames = Array.init initial_frames (fun _ -> make_frame ());
        frame_top = 0;
      }
    in
    let pool =
      {
        pvariant = variant;
        nw = num_workers;
        workers = Array.init num_workers make_worker;
        domains = [];
        job_active = Atomic.make false;
        stop = Atomic.make false;
        gen = Atomic.make 0;
        mutex = Mutex.create ();
        cond = Condition.create ();
        steal_sleep_us;
        running = Atomic.make false;
        trace;
        fault;
        fault_on = Fault.active fault;
        cancel_requested = Atomic.make false;
      }
    in
    pool.domains <-
      List.init (num_workers - 1) (fun i ->
          let w = pool.workers.(i + 1) in
          Domain.spawn (fun () -> helper_body pool w));
    pool

  let run pool f =
    if Atomic.get pool.stop then invalid_arg "Pool.run: pool was shut down";
    if not (Atomic.compare_and_set pool.running false true) then
      invalid_arg "Pool.run: a job is already running";
    let w0 = pool.workers.(0) in
    let saved = Domain.DLS.get ctx_key in
    Domain.DLS.set ctx_key (Some (pool, w0));
    (* A previous job's cancellation (a fault plan's, or an explicit
       [cancel] that landed after the job ended) must not bleed into
       this one. *)
    Atomic.set pool.cancel_requested false;
    Atomic.set pool.job_active true;
    Mutex.lock pool.mutex;
    Atomic.incr pool.gen;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    let finish () =
      Atomic.set pool.job_active false;
      Domain.DLS.set ctx_key saved;
      Atomic.set pool.running false
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let cancel pool = request_cancel pool

  (* Idempotent: the CAS elects one caller to do the work; later (or
     concurrent) calls return immediately. Cancellation is requested
     first so an in-flight job unwinds through its cancellation points
     instead of being waited out; the helpers are then joined, after
     which the drain below runs with no concurrent deque owners. *)
  let shutdown pool =
    if Atomic.compare_and_set pool.stop false true then begin
      request_cancel pool;
      Mutex.lock pool.mutex;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.domains;
      pool.domains <- [];
      (* Every completed job joins all its frames, so the deques are
         normally empty here; this sweep is the backstop that restores
         the pool's invariants if a job was torn down abnormally. *)
      Array.iter
        (fun w ->
          let (Instance ((module D), d)) = w.deque in
          let n = D.size d in
          if n > 0 then begin
            w.metrics.drained_tasks <- w.metrics.drained_tasks + n;
            D.clear d
          end)
        pool.workers
    end

  let num_workers pool = pool.nw

  let variant pool = pool.pvariant

  let trace pool = pool.trace

  let deque_name pool =
    let (Instance ((module D), _)) = pool.workers.(0).deque in
    D.name

  let per_worker_metrics pool = Array.map (fun w -> w.metrics) pool.workers

  let metrics pool = Metrics.sum (per_worker_metrics pool)

  let reset_metrics pool = Array.iter (fun w -> Metrics.reset w.metrics) pool.workers

  (* Quiescent-state introspection (racy but exact between jobs): the
     chaos harness asserts both are 0 after every run, including runs
     that ended in an injected exception or a cancellation. *)

  let outstanding_tasks pool =
    Array.fold_left
      (fun acc w ->
        let (Instance ((module D), d)) = w.deque in
        acc + D.size d)
      0 pool.workers

  let frames_in_use pool = Array.fold_left (fun acc w -> acc + w.frame_top) 0 pool.workers

  let check_deque_invariants pool =
    let rec go i =
      if i >= pool.nw then Ok ()
      else
        match check_size_invariants pool.workers.(i).deque with
        | Ok () -> go (i + 1)
        | Error m -> Error (Printf.sprintf "worker %d: %s" i m)
    in
    go 0

  let fault_plan pool = if pool.fault_on then Some (Fault.plan pool.fault) else None
end

let tick () =
  match Domain.DLS.get ctx_key with
  | None -> ()
  | Some (pool, w) -> handle_pending pool w

let my_id () = match Domain.DLS.get ctx_key with None -> 0 | Some (_, w) -> w.id

let cancelled () =
  match Domain.DLS.get ctx_key with
  | None -> false
  | Some (pool, _) -> Atomic.get pool.cancel_requested

let check_cancel () = if cancelled () then raise Cancelled

let num_workers () =
  match Domain.DLS.get ctx_key with None -> 1 | Some (pool, _) -> pool.nw

(* The slow join path: [fr]'s child left our deque (a thief has it, or
   exposure moved it public and someone raced us to it). Help with other
   work until the frame's completion flag flips, then consume the
   outcome and recycle the frame. *)
let join_frame_stolen pool w fr : Obj.t =
  let tr = pool.trace in
  let traced = Trace.enabled tr in
  let search_start = ref (-1) in
  let idle_enter () =
    if traced && !search_start < 0 then begin
      let time = Trace.now tr in
      search_start := time;
      Trace.record_idle_enter tr ~worker:w.id ~time
    end
  in
  let idle_exit () =
    if traced && !search_start >= 0 then begin
      Trace.record_idle_exit tr ~worker:w.id ~time:(Trace.now tr);
      search_start := -1
    end
  in
  Backoff.reset w.backoff;
  while Atomic.get fr.state = frame_pending do
    handle_pending pool w;
    match pop_own pool w with
    | Some t ->
        idle_exit ();
        Backoff.reset w.backoff;
        run_task pool w t
    | None ->
        if Atomic.get fr.state = frame_pending then begin
          w.metrics.idle_loops <- w.metrics.idle_loops + 1;
          idle_enter ();
          match steal_once pool w ~search_start:!search_start with
          | Some t ->
              idle_exit ();
              Backoff.reset w.backoff;
              run_task pool w t
          | None -> idle_pause pool w
        end
  done;
  idle_exit ();
  (* The SC read of [state] above ordered the executor's [result] write
     before this read. Reset state so the recycled frame is pending. *)
  let st = Atomic.get fr.state in
  let r = fr.result in
  Atomic.set fr.state frame_pending;
  release_frame w fr;
  if st = frame_exn then raise (Obj.obj r : exn) else r

(* Join on [fr] after the owner's own branch finished: the common case
   pops the frame's task straight back off the private bottom and runs
   the child inline — the frame's [state]/[result] are never touched, so
   an un-stolen fork/join does zero SC round trips and allocates nothing
   beyond its branch closures. *)
let rec join_frame pool w fr : Obj.t =
  (* One poll per join keeps the exposure-latency bound of the
     signal-based variants through fork-heavy recursions (the pre-frame
     code polled here too, via its wait loop's first iteration). *)
  handle_pending pool w;
  match pop_own pool w with
  | Some t ->
      if t == fr.task then begin
        if Atomic.get pool.cancel_requested then begin
          (* The child never left our private part, so nothing is
             exposed and the frame can recycle without running it. *)
          release_frame w fr;
          let tr = pool.trace in
          if Trace.enabled tr then
            Trace.record_cancel tr ~worker:w.id ~time:(Trace.now tr) ~chunks:0;
          raise Cancelled
        end;
        w.metrics.tasks_run <- w.metrics.tasks_run + 1;
        let tr = pool.trace in
        let traced = Trace.enabled tr in
        if traced then Trace.record_task_start tr ~worker:w.id ~time:(Trace.now tr);
        match
          (* The inline twin of [exec_frame]'s injection point, so the
             k-th task of a worker raises whether or not it was stolen.
             Written without an intermediate closure: this is the
             fork/join fast path and must not allocate. *)
          (if pool.fault_on then
             match Fault.inject_now pool.fault ~worker:w.id ~metrics:w.metrics with
             | Some (iw, k) ->
                 record_fault pool w Fault.code_inject;
                 raise (Fault.Injected (iw, k))
             | None -> ());
          (Obj.obj fr.fn : unit -> Obj.t) ()
        with
        | v ->
            if traced then Trace.record_task_end tr ~worker:w.id ~time:(Trace.now tr);
            release_frame w fr;
            v
        | exception e ->
            if traced then Trace.record_task_end tr ~worker:w.id ~time:(Trace.now tr);
            w.metrics.task_exns <- w.metrics.task_exns + 1;
            if traced then Trace.record_task_exn tr ~worker:w.id ~time:(Trace.now tr);
            release_frame w fr;
            raise e
      end
      else begin
        (* Not ours: helping re-entered the scheduler under this join and
           left other work above our frame's task. Run it and retry. *)
        run_task pool w t;
        join_frame pool w fr
      end
  | None -> join_frame_stolen pool w fr

(* Join-and-discard for the [f]-raised path: [f]'s exception has
   priority, but the child must still be joined — its outcome consumed
   or the task run — before the frame can recycle. *)
let join_frame_discard pool w fr =
  match join_frame pool w fr with _ -> () | exception _ -> ()

let fork_join (type a b) (f : unit -> a) (g : unit -> b) : a * b =
  match Domain.DLS.get ctx_key with
  | None ->
      let a = f () in
      let b = g () in
      (a, b)
  | Some (pool, w) ->
      let fr = acquire_frame w in
      (* [g]'s result travels through the frame's [Obj.t] slot; the
         boxing closure is the only per-call allocation besides the
         result tuple. *)
      fr.fn <- Obj.repr (fun () -> Obj.repr (g ()));
      (match push_task pool w fr.task with
      | () -> ()
      | exception e ->
          (* Deque rejected the push (capacity): nothing was exposed, the
             frame can recycle immediately. *)
          release_frame w fr;
          raise e);
      (match f () with
      | a ->
          let b : b = Obj.obj (join_frame pool w fr) in
          (a, b)
      | exception e ->
          join_frame_discard pool w fr;
          raise e)

(* Specialized: no result boxing, no tuple — the un-stolen fast path
   allocates only [fn]'s closure (and nothing at all when [g] is a
   top-level function wrapped by a constant closure). *)
let fork_join_unit (f : unit -> unit) (g : unit -> unit) : unit =
  match Domain.DLS.get ctx_key with
  | None ->
      f ();
      g ()
  | Some (pool, w) ->
      let fr = acquire_frame w in
      fr.fn <- Obj.repr (fun () -> g (); unit_obj);
      (match push_task pool w fr.task with
      | () -> ()
      | exception e ->
          release_frame w fr;
          raise e);
      (match f () with
      | () -> ignore (join_frame pool w fr)
      | exception e ->
          join_frame_discard pool w fr;
          raise e)

(* {2 Lazy binary splitting}

   [parallel_for] used to split its range eagerly into a balanced tree
   of n/grain leaf tasks: O(n/grain) pushes (and frame uses) even when
   nothing is ever stolen. The lazy discipline below iterates the range
   sequentially one grain-sized chunk at a time and only forks the
   remaining right half off as a stealable task when observed demand
   asks for it — which collapses task creation to zero at P = 1 and to
   O(#steals x log(n/grain)) under load, while a stolen half re-enters
   the same discipline on the thief. The split-off half is pushed
   through the ordinary [fork_join_unit], so it follows the variant's
   normal exposure protocol (private push, thief notify, expose at the
   next poll — the poll each chunk boundary already provides). *)

(* Demand heuristic: split only when the pool actually has thieves and
   our deque holds nothing they could take. Both reads are cheap ([nw]
   is immutable, [is_empty] reads the owner-local size words); a deque
   that still holds unstolen tasks means supply already outruns demand
   and splitting further would just recreate the eager behaviour. *)
let want_split pool w =
  pool.nw > 1
  &&
  let (Instance ((module D), d)) = w.deque in
  D.is_empty d

(* Failure scope of one [parallel_for] call. When a body chunk raises,
   the first failure wins the [lflag] CAS and parks its exception;
   sibling chunks — wherever they run — observe the flag at their chunk
   boundary and skip silently. The scope is per loop call, not
   pool-global: a caller that catches the loop's exception and starts a
   second loop must not inherit a stale flag.

   [lexn] is plain: the winner writes it inside a chunk whose enclosing
   frame completion (an SC store) happens-before the owner's join, and
   [parallel_for] only reads it after every split half has joined. *)
type loop_scope = {
  lflag : bool Atomic.t; (* some chunk raised; siblings skip *)
  mutable lexn : exn option; (* the winning exception *)
}

(* One grain-sized chunk under the scope's discipline. Pool-level
   cancellation ([Pool.cancel] / shutdown / a fault plan) outranks the
   scope and raises [Cancelled] — it must unwind the whole job, not just
   this loop. *)
let run_chunk pool w scope body lo hi =
  if Atomic.get pool.cancel_requested then begin
    w.metrics.cancelled_chunks <- w.metrics.cancelled_chunks + 1;
    let tr = pool.trace in
    if Trace.enabled tr then Trace.record_cancel tr ~worker:w.id ~time:(Trace.now tr) ~chunks:1;
    raise Cancelled
  end
  else if Atomic.get scope.lflag then begin
    w.metrics.cancelled_chunks <- w.metrics.cancelled_chunks + 1;
    let tr = pool.trace in
    if Trace.enabled tr then Trace.record_cancel tr ~worker:w.id ~time:(Trace.now tr) ~chunks:1
  end
  else
    match
      for i = lo to hi - 1 do
        body i
      done
    with
    | () -> ()
    | exception e -> if Atomic.compare_and_set scope.lflag false true then scope.lexn <- Some e

let rec lazy_for pool w scope grain body lo hi =
  if hi - lo <= grain then begin
    run_chunk pool w scope body lo hi;
    (* Poll point: bounds the latency of work-exposure requests for
       loop computations (the paper's constant-time guarantee). *)
    handle_pending pool w
  end
  else if want_split pool w then begin
    let mid = lo + ((hi - lo) / 2) in
    w.metrics.splits <- w.metrics.splits + 1;
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_split tr ~worker:w.id ~time:(Trace.now tr) ~iters:(hi - mid);
    fork_join_unit
      (fun () -> lazy_for_enter scope grain body lo mid)
      (fun () -> lazy_for_enter scope grain body mid hi)
  end
  else begin
    (* hi - lo > grain, so [mid < hi]: progress is guaranteed. *)
    let mid = lo + grain in
    run_chunk pool w scope body lo mid;
    handle_pending pool w;
    lazy_for pool w scope grain body mid hi
  end

(* A split half can run on whichever worker took it: rebind the context
   from the executing domain rather than capturing the splitter's. *)
and lazy_for_enter scope grain body lo hi =
  match Domain.DLS.get ctx_key with
  | None ->
      for i = lo to hi - 1 do
        body i
      done
  | Some (pool, w) -> lazy_for pool w scope grain body lo hi

let parallel_for ?grain ~start ~stop body =
  let n = stop - start in
  if n > 0 then begin
    match Domain.DLS.get ctx_key with
    | None ->
        for i = start to stop - 1 do
          body i
        done
    | Some (pool, w) ->
        let default_grain = max 1 (min 2048 (n / (8 * pool.nw))) in
        let grain = match grain with Some g -> max 1 g | None -> default_grain in
        let scope = { lflag = Atomic.make false; lexn = None } in
        lazy_for pool w scope grain body start stop;
        (* Every split half has joined (each went through
           [fork_join_unit]), so the winner's [lexn] write is visible. *)
        if Atomic.get scope.lflag then
          match scope.lexn with Some e -> raise e | None -> assert false
  end
