module Metrics = Lcws_sync.Metrics
module Xoshiro = Lcws_sync.Xoshiro
module Backoff = Lcws_sync.Backoff
module Padding = Lcws_sync.Padding
module Victim_policy = Lcws_sync.Victim_policy
module Trace = Lcws_trace.Trace
module Fault = Lcws_fault.Fault
open Lcws_deque.Deque_intf

exception Cancelled

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Lcws.Scheduler.Cancelled"
    | _ -> None)

type variant = Ws | Uslcws | Signal | Cons | Half

let all_variants = [ Ws; Uslcws; Signal; Cons; Half ]

let lcws_variants = [ Uslcws; Signal; Cons; Half ]

let variant_name = function
  | Ws -> "ws"
  | Uslcws -> "uslcws"
  | Signal -> "signal"
  | Cons -> "cons"
  | Half -> "half"

let variant_label = function
  | Ws -> "WS"
  | Uslcws -> "User"
  | Signal -> "Signal"
  | Cons -> "Cons"
  | Half -> "Half"

let variant_of_string s =
  match String.lowercase_ascii s with
  | "ws" -> Some Ws
  | "uslcws" | "user" -> Some Uslcws
  | "signal" -> Some Signal
  | "cons" | "conservative" -> Some Cons
  | "half" -> Some Half
  | _ -> None

type task = unit -> unit

let dummy_task : task = fun () -> ()

(* The deque implementations, instantiated at [task] and packed as
   first-class modules: the scheduler is generic over the DEQUE signature
   and never matches on a concrete representation. *)

module Chase_lev_deque = Lcws_deque.Chase_lev.Deque (struct
  type t = task
end)

module Split_deque_deque = Lcws_deque.Split_deque.Deque (struct
  type t = task
end)

module Lace_deque_deque = Lcws_deque.Lace_deque.Deque (struct
  type t = task
end)

module Private_deque_deque = Lcws_deque.Private_deque.Deque (struct
  type t = task
end)

type deque_impl = task impl

let chase_lev_impl : deque_impl = (module Chase_lev_deque)

let split_deque_impl : deque_impl = (module Split_deque_deque)

let lace_impl : deque_impl = (module Lace_deque_deque)

let private_impl : deque_impl = (module Private_deque_deque)

let all_deque_impls = [ chase_lev_impl; split_deque_impl; lace_impl; private_impl ]

let deque_impl_name = impl_name

let deque_impl_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun i -> impl_name i = s) all_deque_impls

(* The paper's pairing: WS runs on Chase-Lev, every LCWS variant on the
   split deque. *)
let default_deque_impl = function
  | Ws -> chase_lev_impl
  | Uslcws | Signal | Cons | Half -> split_deque_impl

(* {2 Join frames}

   One [fork_join] needs a result slot and a completion word for its
   child. Allocating them per call (plus a closure to tie them
   together) puts heap traffic and write barriers on the hot path of
   every fork — exactly the per-fork overhead the LCWS design is meant
   to avoid paying. Instead each worker keeps a LIFO pool of reusable
   frames:

   - [fn] holds the child closure for this use of the frame ([Obj.t] so
     one frame serves every result type; the callers re-type it with
     the locally-abstract types of their [fork_join]);
   - [task] is a trampoline closure allocated once per frame, pushed on
     the deque in place of a per-call closure; a thief that steals it
     runs the frame's current [fn] and publishes into the frame;
   - [state]/[result] are only ever touched on the stolen path: the
     un-stolen fast path pops [task] straight back (identity test
     against the frame) and runs [fn] inline with plain accesses only.

   Frame discipline is strictly LIFO per worker: nested forks — and
   tasks run while helping, which fork in turn — acquire above and
   release before their parent does, so acquire/release is a pointer
   bump. A frame is recycled only after its child's outcome has been
   consumed, which the stolen path orders through the SC [state] flag
   ([lib/check]'s frame scenarios explore exactly this protocol,
   including a seeded recycled-too-early mutant). [state] sits in its
   own cache line so a thief's completion store does not collide with
   neighbouring frames of the victim's pool. *)

(* The cells and the publish/consume ordering live in
   [Sched_protocol.Frame] — written against the [Atomic_shim] swap
   point, so [lib/check/sched_model] explores the very same protocol
   code. This file keeps what is scheduler policy, not protocol: the
   per-worker LIFO pool, the trampoline wiring, metrics, tracing. *)

module Frame = Sched_protocol.Frame
module Scope = Sched_protocol.Scope
module Future_core = Sched_protocol.Future_core
module Injector = Sched_protocol.Injector
module Park = Sched_protocol.Park
module Policy_switch = Sched_protocol.Policy_switch
module Parking_lot = Lcws_sync.Parking_lot

type frame = task Frame.t

let unit_obj = Obj.repr ()

let initial_frames = 64

type worker = {
  id : int;
  metrics : Metrics.t;
  deque : task instance;
  targeted : bool Atomic.t;
  signal_pending : bool Atomic.t;
  rng : Xoshiro.t;
  vsel : Victim_policy.t;
      (* victim-selection state (policy, topology distances, failure
         streak, affinity hint); owns every draw from [rng] on the steal
         path *)
  steal_buf : task array;
      (* scratch for [steal_many]'s extra tasks (beyond the one the
         thief keeps); length [steal_batch - 1], reused on every steal
         so the batch path allocates nothing *)
  backoff : Backoff.t;
  pswitch : Policy_switch.t;
      (* epoch-stamped exposure-policy word pair
         ([Sched_protocol.Policy_switch]): the governor proposes into
         it, this worker acks at its poll points, thieves route their
         exposure requests by it. Only consulted on adaptive pools. *)
  mutable polls : int;
      (* owner poll points since the last governor sample attempt
         (adaptive pools only; plain field, owner-written) *)
  mutable frames : frame array; (* the worker's LIFO frame pool... *)
  mutable frame_top : int; (* ...and its stack pointer *)
  mutable sched_depth : int;
      (* how many scheduler frames (fork_join branches, join-frame
         children, loop chunks) the worker is currently executing
         inside. A fiber may only capture its continuation at depth 0:
         anything deeper closes over worker-local state — the LIFO
         frame pool, the loop scope — that cannot migrate to another
         domain. Saved and reset to 0 around every task a worker runs,
         because each task starts a fresh delimited computation. *)
  mutable fscope : bool Atomic.t;
      (* cancellation flag of the fiber currently executing on this
         worker ([no_fscope] when the current task has none). Installed
         by the fiber's task body, restored by [run_task]'s bracket when
         the step ends — whether by completing or by suspending. *)
}

(* An externally submitted item: the task to run, and what to do with it
   if the pool shuts down before any worker drained it (complete the
   attached future with [Cancelled] so external awaiters never hang). *)
type injected = { ij_run : task; ij_abort : unit -> unit }

(* The adaptive pool's governor: decision state plus the claim flag
   that elects one worker per epoch to sample and propose. The decision
   state is single-writer under [g_lock]; the counters it samples are
   other workers' plain metric fields, read racily — the governor is a
   heuristic, approximate sums are fine (same stance as tracing). *)
type gov = {
  g_state : Policy_governor.t;
  g_lock : bool Atomic.t;
  g_epoch : int; (* owner poll points between sample attempts *)
}

type pool = {
  pvariant : variant;
  nw : int;
  steal_limit : int;
      (* max tasks one steal episode may migrate ([Pool.create]'s
         [steal_batch]; 1 = classical steal-one) *)
  workers : worker array;
  mutable domains : unit Domain.t list;
  job_active : bool Atomic.t;
  stop : bool Atomic.t;
  mutex : Mutex.t;
  cond : Condition.t;
      (* [mutex]/[cond] serialize the driver-seat handshake only
         (external awaiters waiting out [running]); worker idling — both
         in-job and between jobs — goes through [lot]/[park] below *)
  running : bool Atomic.t;
  ext_driver : bool Atomic.t;
      (* the current holder of [running] is an external awaiter
         transiently driving worker 0 ([Future.block_on_pool]), not a
         [Pool.run] job: [run] waits the seat out instead of refusing *)
  trace : Trace.t;
  fault : Fault.t;
  fault_on : bool; (* [Fault.active fault], cached as a plain immutable
                      field so every hook guard is one predictable load
                      and branch (same discipline as [Trace.t.on]) *)
  cancel_requested : bool Atomic.t; (* cancel the in-flight job; set by
                                       [Pool.cancel], [Pool.shutdown] and
                                       the fault layer, cleared at the
                                       start of the next [Pool.run] *)
  injector : injected Injector.t;
      (* external-submission queue ([Sched_protocol.Injector]: one
         atomic cell holding a functional queue plus a closed flag),
         drained at the workers' steal points; [is_empty] is one atomic
         load so an idle probe costs nothing measurable *)
  service : int Atomic.t;
      (* externally submitted futures not yet completed. Helpers serve
         the pool while a job is active OR this is non-zero, so
         [Pool.submit] works between [Pool.run]s too. *)
  park : Park.t;
      (* the parked-count word and wake generation
         ([Sched_protocol.Park]): the word-level half of worker parking,
         loaded once — and nothing else — by every doorbell site when
         nobody is parked *)
  lot : Parking_lot.t;
      (* the condvar dock parked workers actually sleep on; generation
         bumps happen under its mutex (see [Parking_lot]'s pairing
         contract) *)
  searchers : int Atomic.t;
      (* workers in their post-wake search window (woken from the lot,
         classification re-check still running). [ring_one] skips the
         wake while this is non-zero — the searcher is already sweeping
         every victim and the injector, so waking a second parker per
         published task just burns a mutex+signal on the publisher and
         a futile wake/re-park cycle on the parker. See the safety note
         on [ring_one]. *)
  adaptive : bool;
      (* [governor] is present; cached as a plain immutable bool so the
         per-poll and per-notify guards are one predictable load and
         branch (same discipline as [fault_on] and [Trace.t.on]) *)
  governor : gov option;
}

let ctx_key : (pool * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* {2 Doorbells}

   Every site that makes work (or a state change a parked worker must
   observe) available rings one of these. The fast path is the single
   [Park.ring] load of the parked count: with nobody parked a ring is
   that load and a not-taken branch, so the owner's push path pays no
   synchronization for the parking machinery. When somebody *is*
   parked, the ring bumps the wake generation under the dock mutex and
   signals — see [Sched_protocol.Park] for the lost-wakeup argument.

   [ring_one] is for a single ready task any worker may serve (a push,
   an external submission, one exposed task). [ring_all] is mandatory
   whenever the intended observer is a *specific* parked worker — a
   frame completion (its owner may be the parked one), a root-fiber
   outcome, a resume flag, shutdown: [Condition.signal] wakes an
   arbitrary sleeper, and a generation bump alone does not wake anyone,
   so a targeted wake delivered as a signal could be absorbed by a
   bystander that just re-parks while the worker that needed it sleeps
   on.

   [ring_one] additionally throttles on [searchers]: while some woken
   worker is still in its post-wake re-check, publishing another single
   task does not wake a second parker. Without this, a busy owner with
   a parked peer pays the dock mutex + signal on *every* push (3x on
   the fork/join chain microbench) while the peer cycles
   wake/steal-nothing/re-park at the same rate. Skipping is safe — no
   lost wakeup — because the searcher observed in the count must, after
   decrementing, either (a) acquire work and then keep running its
   acquisition loop, whose park entry only blocks after a full failed
   sweep, i.e. after it would have found this task; or (b) find nothing
   and re-enter [Park.park]'s announce -> re-check, which runs after
   our publish (publish < searchers load < its decrement < its
   announce, at SC) and therefore sees the task. Either way the
   published task is served or the final pre-block re-check catches it;
   the throttle only elides wakes that would have been spurious.
   [ring_all] is never throttled. *)
let ring_one pool =
  if Atomic.get pool.searchers = 0 && Park.ring pool.park then
    Parking_lot.wake pool.lot ~all:false ~bump:(fun () -> Park.bump pool.park)

let ring_all pool =
  if Park.ring pool.park then
    Parking_lot.wake pool.lot ~all:true ~bump:(fun () -> Park.bump pool.park)

let request_cancel pool =
  if not (Atomic.get pool.cancel_requested) then begin
    Atomic.set pool.cancel_requested true;
    (* Parked workers have nothing to unwind, but waking them narrows
       the window in which a cancellation must wait for task-level
       unwinding to ring the completion doorbells. *)
    ring_all pool
  end

let record_fault pool w code =
  let tr = pool.trace in
  if Trace.enabled tr then Trace.record_fault tr ~worker:w.id ~time:(Trace.now tr) ~code

(* One fault-layer poll point; [true] means this poll is stalled and the
   caller must skip its signal handling. Only reached when
   [pool.fault_on]. *)
let fault_poll pool w =
  match Fault.poll pool.fault ~worker:w.id ~metrics:w.metrics with
  | Fault.Pass -> false
  | Fault.Stalled ->
      record_fault pool w Fault.code_stall;
      (* Burn a timeslice-ish amount of nothing: long enough for thieves
         to observe an unresponsive victim, short enough to keep chaos
         runs fast. *)
      for _ = 1 to 64 do
        Domain.cpu_relax ()
      done;
      true
  | Fault.Cancel_job ->
      record_fault pool w Fault.code_cancel;
      request_cancel pool;
      false

(* {2 Frame execution}

   [exec_frame] runs on whoever took the frame's task — the stolen path.
   The result write must be visible before the flag flip; [Atomic.set]
   is an SC store, so the owner's read of [state] orders the read of
   [result]. An exception — the child's own, an injected one, or
   [Cancelled] — is published through the same flag ([frame_exn]), so a
   failing child still completes its frame and the owner's join can
   never hang on it.

   This is also the stolen path's cancellation and injection point: the
   context lookup only happens here (never on the un-stolen inline
   path), so the fork/join fast path stays free of it. *)
let exec_frame fr =
  let ctx = Domain.DLS.get ctx_key in
  let run () =
    (match ctx with
    | Some (pool, w) ->
        if Atomic.get pool.cancel_requested then raise Cancelled;
        if pool.fault_on then begin
          match Fault.inject_now pool.fault ~worker:w.id ~metrics:w.metrics with
          | Some (iw, k) ->
              record_fault pool w Fault.code_inject;
              raise (Fault.Injected (iw, k))
          | None -> ()
        end
    | None -> ());
    (* The child runs at scheduler depth: a continuation captured under
       it would close over this worker's frame pool, so [Suspend] is
       refused (and [Future.await] helps instead of parking) until the
       child returns. *)
    (match ctx with Some (_, w) -> w.sched_depth <- w.sched_depth + 1 | None -> ());
    let leave () =
      match ctx with Some (_, w) -> w.sched_depth <- w.sched_depth - 1 | None -> ()
    in
    match Frame.fn fr () with
    | v ->
        leave ();
        v
    | exception e ->
        leave ();
        raise e
  in
  (* The frame's owner may be parked in [join_frame_stolen]: after the
     completion flag flips, ring — all, because the wake must reach that
     specific owner, not whichever sleeper a signal would pick. *)
  match run () with
  | v ->
      Frame.publish_value fr v;
      (match ctx with Some (pool, _) -> ring_all pool | None -> ())
  | exception e ->
      (match ctx with
      | Some (pool, w) ->
          w.metrics.task_exns <- w.metrics.task_exns + 1;
          let tr = pool.trace in
          if Trace.enabled tr then Trace.record_task_exn tr ~worker:w.id ~time:(Trace.now tr)
      | None -> ());
      Frame.publish_exn fr e;
      (match ctx with Some (pool, _) -> ring_all pool | None -> ())

let make_frame () =
  let fr = Frame.make ~task:dummy_task () in
  fr.Frame.task <- (fun () -> exec_frame fr);
  fr

let acquire_frame w =
  let top = w.frame_top in
  if top = Array.length w.frames then begin
    (* Double the pool. Existing frames keep their identity — each is
       aliased by its own trampoline and possibly live in the deque. *)
    let n = Array.length w.frames in
    w.frames <- Array.init (2 * n) (fun i -> if i < n then w.frames.(i) else make_frame ())
  end;
  let fr = w.frames.(top) in
  w.frame_top <- top + 1;
  fr

(* Only legal once the frame's child outcome has been consumed (or the
   push that would have exposed it failed): the caller guarantees no
   thief can still touch [fr]. *)
let release_frame w fr =
  Frame.scrub fr;
  let top = w.frame_top - 1 in
  assert (w.frames.(top) == fr);
  w.frame_top <- top

let exposure_policy = function
  | Uslcws | Signal -> Expose_one
  | Cons -> Expose_conservative
  | Half -> Expose_half
  | Ws -> assert false

(* The variant an adaptive worker runs while its policy word says
   handshake: the pool's own signal discipline, or [Signal] when the
   pool was created as [Uslcws] (which has no handshake of its own). *)
let handshake_variant pool =
  match pool.pvariant with Uslcws | Ws -> Signal | (Signal | Cons | Half) as v -> v

(* The exposure discipline worker [w] runs right now. Static pools
   answer from the immutable variant; adaptive pools read the worker's
   policy word ([Policy_switch.active_mode] — one atomic load). Each
   worker's word only moves at its own poll points, so within one
   owner-side operation the answer is stable; thief-side readers
   (e.g. [notify]) must instead go through the fenced
   [Policy_switch.request]. *)
let wvariant pool w =
  if not pool.adaptive then pool.pvariant
  else if Policy_switch.active_mode w.pswitch = Policy_switch.unsync then Uslcws
  else handshake_variant pool

(* Cheap conditional reset: the [Atomic.get] is a plain load; the SC store
   only happens when a thief actually targeted us. *)
let reset_targeted w = if Atomic.get w.targeted then Atomic.set w.targeted false

(* The body of the paper's signal handler (Listing 3): transfer work to
   the public part of the split deque. Runs on the victim's own domain at
   poll points — our stand-in for in-handler execution (DESIGN.md §2.2).

   The fault layer intercepts here, at the protocol level rather than
   under the deque's atomics: a poll may be stalled (the victim behaves
   as if preempted), and a pending signal may be dropped — clearing
   [targeted] so thieves go through the Section 4 re-request path — or
   deferred to a later poll. When no plan is installed this adds exactly
   one load-and-branch on [fault_on]. *)
let handle_signal pool w =
  Atomic.set w.signal_pending false;
  let (Instance ((module D), d)) = w.deque in
  let n = D.update_public_bottom d ~policy:(exposure_policy (handshake_variant pool)) in
  w.metrics.signals_handled <- w.metrics.signals_handled + 1;
  let tr = pool.trace in
  if Trace.enabled tr then begin
    let time = Trace.now tr in
    Trace.record_signal_handled tr ~worker:w.id ~time;
    if n > 0 then Trace.record_expose tr ~worker:w.id ~time ~tasks:n
  end;
  (* Exposure doorbell: freshly public work may be what a parked thief
     (the one whose notify triggered this very exposure) is waiting
     for. One task wakes one thief; a batch ([Expose_half]) wakes
     everyone. *)
  if n > 0 then if n > 1 then ring_all pool else ring_one pool

(* Unsynchronized-discipline service of a [targeted] exposure request —
   at a task boundary (Listing 1 lines 8-12), or as the drain of an
   adaptive switch away from the unsync discipline. The caller has
   already consumed the [targeted] flag. *)
let serve_boundary_exposure pool w =
  let (Instance ((module D), d)) = w.deque in
  let n = D.update_public_bottom d ~policy:Expose_one in
  w.metrics.signals_handled <- w.metrics.signals_handled + 1;
  let tr = pool.trace in
  if Trace.enabled tr then begin
    let time = Trace.now tr in
    Trace.record_signal_handled tr ~worker:w.id ~time;
    if n > 0 then Trace.record_expose tr ~worker:w.id ~time ~tasks:n
  end;
  if n > 0 then ring_one pool (* exposure doorbell, as in [handle_signal] *)

(* One adaptive-governor poll tick: every [g_epoch] of this worker's
   poll points, try to claim the governor (one CAS; losing just means
   another worker is sampling this epoch), sample the pool-wide
   steal-pressure counters, and propose the resulting target mode to
   every worker's policy word. [Policy_switch.propose] refuses per
   worker while that worker's previous switch is unacked (or when the
   target is already its proposed mode), so repeated same-target epochs
   cost two loads per worker and no stores. *)
let governor_tick pool w g =
  w.polls <- w.polls + 1;
  if w.polls >= g.g_epoch then begin
    w.polls <- 0;
    if Atomic.compare_and_set g.g_lock false true then begin
      let attempts = ref 0 and tasks = ref 0 in
      Array.iter
        (fun u ->
          attempts := !attempts + u.metrics.steal_attempts;
          tasks := !tasks + u.metrics.tasks_run)
        pool.workers;
      let target =
        Policy_governor.sample g.g_state ~steal_attempts:!attempts ~tasks_run:!tasks
          ~parked:(Park.parked pool.park) ~num_workers:pool.nw
      in
      let mode = Policy_governor.switch_mode target in
      Array.iter (fun u -> ignore (Policy_switch.propose u.pswitch ~mode)) pool.workers;
      Atomic.set g.g_lock false
    end
  end

(* Adaptive owner poll point: acknowledge a proposed policy switch.
   [Policy_switch.adopt] flips the word first and then runs the drain,
   which serves a request already deposited on the superseded channel —
   the handshake channel is [signal_pending] (served by the full
   [handle_signal]), the unsync channel is [targeted] (served by an
   immediate boundary exposure). See [Sched_protocol.Policy_switch] for
   why flip-before-drain plus the thief-side fenced re-issue means no
   request ever strands across a switch. *)
let adopt_policy pool w =
  let switched =
    Policy_switch.adopt w.pswitch ~drain:(fun ~mode ->
        if mode = Policy_switch.handshake then begin
          if Atomic.get w.signal_pending then handle_signal pool w
        end
        else if Atomic.get w.targeted then begin
          Atomic.set w.targeted false;
          serve_boundary_exposure pool w
        end)
  in
  if switched then begin
    w.metrics.policy_switches <- w.metrics.policy_switches + 1;
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_policy_switch tr ~worker:w.id ~time:(Trace.now tr)
        ~mode:(Policy_switch.active_mode w.pswitch)
  end

let handle_pending pool w =
  let stalled = pool.fault_on && fault_poll pool w in
  if not stalled then begin
    (match pool.governor with
    | Some g ->
        governor_tick pool w g;
        adopt_policy pool w
    | None -> ());
    match wvariant pool w with
    | Signal | Cons | Half ->
        if Atomic.get w.signal_pending then
          if not pool.fault_on then handle_signal pool w
          else begin
            match Fault.on_signal pool.fault ~worker:w.id ~metrics:w.metrics with
            | Fault.Handle -> handle_signal pool w
            | Fault.Defer -> record_fault pool w Fault.code_delay_signal
            | Fault.Drop ->
                (* The request evaporates: pending cleared, [targeted]
                   reset so the thief's next probe may notify again. The
                   thief sees [Private_work] and re-requests — worst case
                   the victim drains its own deque privately, so progress
                   never depends on a dropped signal. *)
                Atomic.set w.signal_pending false;
                reset_targeted w;
                record_fault pool w Fault.code_drop_signal
          end
    | Ws | Uslcws -> ()
  end

let push_task pool w t =
  let (Instance ((module D), d)) = w.deque in
  D.push_bottom d t;
  (* Signal-based variants: a fresh push means there is (new) work that can
     be exposed, so thieves may notify again (Section 4). *)
  (match wvariant pool w with
  | Signal | Cons | Half -> reset_targeted w
  | Ws | Uslcws -> ());
  (* Push doorbell. On the split deques the pushed task lands in the
     private part, so a parked thief's sweep cannot take it yet and the
     ring looks premature — but it is load-bearing: the wake is what
     sends the thief back through its park re-check, whose probe of this
     victim re-arms the exposure request ([notify ~force:true]) that a
     stale [targeted] may have swallowed, and the resulting exposure's
     own doorbell closes the loop. Gating this ring on
     [D.public_size d > 0] deadlocks the signal variants whenever the
     only awake worker blocks before its next poll (the chaos
     future-DAG property catches it within seconds). With nobody parked
     the ring is [Park.ring]'s single relaxed-load — the whole cost the
     fork hot path pays for the parking machinery. *)
  ring_one pool

(* Owner-side task lookup on the own deque: private part first, then the
   public part (Listing 1 lines 7-16). For the signal-safe [pop_bottom] of
   Section 4, a [None] from the private part *must* fall through to
   [pop_public_bottom], which repairs the decremented [bot]. *)
let pop_own pool w =
  let (Instance ((module D), d)) = w.deque in
  (* On an adaptive pool the discipline is the worker's *current* policy
     word, read once per pop: the word only moves at this worker's own
     poll points, and each pop call is internally consistent under
     either discipline, so switching between calls is safe. *)
  let wv = wvariant pool w in
  let private_task =
    match wv with
    | Signal | Half -> D.pop_bottom_signal_safe d
    | Ws | Uslcws | Cons -> D.pop_bottom d
  in
  match private_task with
  | Some _ as r ->
      (* USLCWS handles exposure requests at task boundaries only
         (Listing 1 lines 8-12). *)
      (match wv with
      | Uslcws ->
          if Atomic.get w.targeted then begin
            Atomic.set w.targeted false;
            serve_boundary_exposure pool w
          end
      | Ws | Signal | Cons | Half -> ());
      r
  | None -> (
      match D.pop_public_bottom d with
      | Some _ as r ->
          (* A public task was consumed: previously shared work is no
             longer accessible, allow new notifications. *)
          reset_targeted w;
          let tr = pool.trace in
          if Trace.enabled tr then
            Trace.record_pop_public tr ~worker:w.id ~time:(Trace.now tr);
          r
      | None ->
          (* Listing 1 line 17. *)
          reset_targeted w;
          None)

(* Thief-side notification policy (Listing 1 line 22 / Listing 3).

   [force] is the park-side re-arm: the signal variants normally gate a
   notify on [targeted] (one outstanding request per victim) and [Cons]
   additionally on [has_two_tasks]. Both gates are mere throttles for
   awake thieves, which retry anyway — but they are fatal to a thief
   about to park. A stale [targeted] (a thief preempted between its
   winning top-CAS and [reset_targeted], or an [Expose_one] whose task
   was consumed just before the flag reset) would swallow the parker's
   only exposure request, and with it the doorbell it needs to ever wake
   up. A parker therefore notifies unconditionally: re-arming
   [signal_pending] is idempotent, and the victim's next poll turns it
   into an exposure whose doorbell sees the already-announced parked
   count. *)
(* One exposure-request deposit on [victim]'s channel for [mode] — the
   unsync channel is the bare [targeted] flag, the handshake channel
   additionally raises [signal_pending] behind the per-variant throttle
   ([force] bypasses it; see [notify]). Returns whether a flag was
   actually raised. *)
let send_request ?(force = false) pool thief victim ~mode =
  if mode = Policy_switch.unsync then begin
    Atomic.set victim.targeted true;
    thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
    true
  end
  else
    match handshake_variant pool with
    | Cons ->
        let has_two =
          let (Instance ((module D), d)) = victim.deque in
          D.has_two_tasks d
        in
        if force || ((not (Atomic.get victim.targeted)) && has_two) then begin
          Atomic.set victim.targeted true;
          Atomic.set victim.signal_pending true;
          thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
          true
        end
        else false
    | Ws | Uslcws | Signal | Half ->
        if force || not (Atomic.get victim.targeted) then begin
          Atomic.set victim.targeted true;
          Atomic.set victim.signal_pending true;
          thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
          true
        end
        else false

let notify ?(force = false) pool thief victim =
  let notified =
    if pool.adaptive then begin
      (* Fenced against a concurrent policy switch
         ([Sched_protocol.Policy_switch]): deposit on the channel the
         victim's current word designates, re-read, re-issue if the
         word moved. The re-issue bypasses the one-outstanding-request
         throttle — our own first deposit would otherwise swallow it
         and strand the request on the dead channel. *)
      let sent = ref false in
      let resend = ref false in
      Policy_switch.request victim.pswitch ~send:(fun ~mode ->
          let f = force || !resend in
          resend := true;
          if send_request ~force:f pool thief victim ~mode then sent := true);
      !sent
    end
    else
      match pool.pvariant with
      | Ws -> false
      | Uslcws -> send_request pool thief victim ~mode:Policy_switch.unsync
      | Signal | Half | Cons ->
          send_request ~force pool thief victim ~mode:Policy_switch.handshake
  in
  if notified then begin
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_notify tr ~thief:thief.id ~victim:victim.id ~time:(Trace.now tr)
  end

(* [search_start] is the Idle_enter timestamp of the enclosing work
   search (-1 when tracing is off), for the steal-latency histogram. *)
let steal_once pool w ~search_start =
  if pool.nw < 2 then None
  else begin
    (* The victim is chosen *before* the fault veto rolls, so a vetoed
       probe consumes exactly the policy draw the real probe would have:
       replays with and without the fault layer observe the same probe
       sequence (Victim_policy's determinism contract). *)
    let victim_id = Victim_policy.next w.vsel in
    if pool.fault_on && Fault.steal_veto pool.fault ~thief:w.id ~metrics:w.metrics then begin
      (* A spurious failure, as if the top CAS lost a race. Vetoed
         before the deque counts a [steal_attempt], so the metrics
         balance checks stay exact; the policy records a failed probe so
         its escalation clock keeps ticking. *)
      Victim_policy.fail w.vsel;
      record_fault pool w Fault.code_steal_veto;
      None
    end
    else begin
      let v = pool.workers.(victim_id) in
      let (Instance ((module D), d)) = v.deque in
      let tr = pool.trace in
      if Trace.enabled tr then
        Trace.record_steal_attempt tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr);
      match D.steal_many d ~limit:pool.steal_limit ~into:w.steal_buf ~metrics:w.metrics with
      | Stolen t, extra ->
          (* The shared work is gone; future thieves may notify again. *)
          reset_targeted v;
          Victim_policy.success w.vsel ~victim:victim_id;
          let m = w.metrics in
          m.tasks_migrated <- m.tasks_migrated + 1 + extra;
          if Victim_policy.is_near w.vsel ~victim:victim_id then
            m.near_steals <- m.near_steals + 1
          else m.far_steals <- m.far_steals + 1;
          if extra > 0 then begin
            m.steals_batched <- m.steals_batched + 1;
            (* Bulk-publish the rest of the batch through the ordinary
               push protocol (exposure flags, doorbells), oldest first
               so relative victim order survives in our deque. *)
            for i = 0 to extra - 1 do
              push_task pool w w.steal_buf.(i);
              w.steal_buf.(i) <- dummy_task
            done
          end;
          if Trace.enabled tr then begin
            let time = Trace.now tr in
            Trace.record_steal_ok tr ~thief:w.id ~victim:victim_id ~time ~search_start;
            if extra > 0 then Trace.record_steal_batch tr ~thief:w.id ~time ~tasks:(1 + extra)
          end;
          Some t
      | Private_work, _ ->
          notify pool w v;
          Victim_policy.fail w.vsel;
          None
      | Empty, _ ->
          Victim_policy.fail w.vsel;
          if Trace.enabled tr then
            Trace.record_steal_empty tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr);
          None
      | Abort, _ ->
          Victim_policy.fail w.vsel;
          None
    end
  end

(* Enqueue an external entry — or, if the injector is already closed
   (shutdown's [close] won the race), abort it right here. The close is
   the linearization point: an entry is either drained by a worker,
   returned to [shutdown]'s abort sweep, or refused and aborted by its
   own submitter — never stranded between a stop check and a drain.

   The push is the publish; the doorbell after it is one load of the
   parked count, so the [Pool.submit] hot path no longer pays a mutex
   acquisition and a broadcast per message when every worker is busy
   (or when none is parked between jobs). *)
let inject pool entry =
  if Injector.push pool.injector entry then ring_one pool else entry.ij_abort ()

(* One steal-point probe of the external-submission queue. A drained
   task is pushed onto the drainer's own deque rather than run directly,
   so it flows through the ordinary push/pop/steal protocol (exposure
   signals, metrics balance, tracing) like any other task — the injector
   is a source of work, not a second scheduling regime.

   The [is_empty] fast path is fine *here*, where the caller keeps
   looping either way; a worker deciding whether it may park must not
   use it — see [park_recheck] below and the park-side invariant note on
   [Sched_protocol.Injector]. *)
let drain_injector pool w =
  if Injector.is_empty pool.injector then false
  else
    match Injector.pop pool.injector with
    | None -> false
    | Some entry ->
        w.metrics.submits <- w.metrics.submits + 1;
        let tr = pool.trace in
        if Trace.enabled tr then Trace.record_submit tr ~worker:w.id ~time:(Trace.now tr);
        push_task pool w entry.ij_run;
        true

(* {2 Parking}

   The park-side work re-check ([Sched_protocol.Park]'s [recheck]
   callback): runs between the parker's announce (parked-count
   increment) and its block, and again after every wake. Returns [true]
   iff blocking is not (or no longer) safe: the caller's own exit
   condition fired, the pool is stopping, or work was found.

   Work found here is *acquired*, never merely observed — a popped
   injector entry or a stolen task lands in [w]'s own deque (through the
   ordinary [push_task] protocol), making this worker responsible for it
   (see the park-side invariant on [Sched_protocol.Injector]). The steal
   sweep is deterministic over every victim — unlike the random probing
   of the backoff loop that precedes parking — and [notify ~force:true]s
   victims holding only private work, so the last awake thief cannot
   park while an un-exposed victim still computes: the forced notify
   (bypassing the [targeted] throttle, which a stale flag would
   otherwise turn into a fatal no-op — see [notify]) pins an exposure at
   the victim's next poll, and that exposure's doorbell sees our already
   announced parked count. The sweep deliberately skips the fault
   layer's steal veto: vetoes model lost races on contended steals, and
   applying one here would manufacture the very lost wakeup the protocol
   exists to rule out.

   The sweep also skips the worker's own deque — not because it cannot
   hold work (a previous round's re-check acquires into it), but
   because every caller's acquisition loop starts with [pop_own], so a
   worker provably never reaches a park attempt with a non-empty own
   deque. Breaking that caller discipline deadlocks: a task in a parked
   worker's private part is invisible to every thief, and the exposure
   signal thieves would send needs a poll the parked owner never
   runs. *)
let park_recheck pool w ~done_ =
  done_ ()
  || Atomic.get pool.stop
  || (match Injector.pop pool.injector with
     | Some entry ->
         w.metrics.submits <- w.metrics.submits + 1;
         let tr = pool.trace in
         if Trace.enabled tr then Trace.record_submit tr ~worker:w.id ~time:(Trace.now tr);
         push_task pool w entry.ij_run;
         true
     | None ->
         let tr = pool.trace in
         let traced = Trace.enabled tr in
         let found = ref false in
         let i = ref 0 in
         while (not !found) && !i < pool.nw do
           (if !i <> w.id then begin
              let v = pool.workers.(!i) in
              let (Instance ((module D), d)) = v.deque in
              if traced then
                Trace.record_steal_attempt tr ~thief:w.id ~victim:v.id ~time:(Trace.now tr);
              match D.steal_many d ~limit:pool.steal_limit ~into:w.steal_buf ~metrics:w.metrics
              with
              | Stolen t, extra ->
                  reset_targeted v;
                  let m = w.metrics in
                  m.tasks_migrated <- m.tasks_migrated + 1 + extra;
                  if Victim_policy.is_near w.vsel ~victim:v.id then
                    m.near_steals <- m.near_steals + 1
                  else m.far_steals <- m.far_steals + 1;
                  if extra > 0 then m.steals_batched <- m.steals_batched + 1;
                  if traced then begin
                    let time = Trace.now tr in
                    Trace.record_steal_ok tr ~thief:w.id ~victim:v.id ~time ~search_start:(-1);
                    if extra > 0 then
                      Trace.record_steal_batch tr ~thief:w.id ~time ~tasks:(1 + extra)
                  end;
                  (* The kept task is acquired, not run, here: it goes
                     through [push_task] like the extras so the caller's
                     [pop_own] finds everything on the own deque. *)
                  push_task pool w t;
                  for i = 0 to extra - 1 do
                    push_task pool w w.steal_buf.(i);
                    w.steal_buf.(i) <- dummy_task
                  done;
                  found := true
              | Private_work, _ -> notify ~force:true pool w v
              | Empty, _ ->
                  if traced then
                    Trace.record_steal_empty tr ~thief:w.id ~victim:v.id ~time:(Trace.now tr)
              | Abort, _ -> ()
            end);
           incr i
         done;
         !found)

(* Park [w] until a doorbell rings (or the re-check refuses the park).
   Returns [true] iff the worker actually blocked at least once — the
   caller should then re-stamp any in-flight steal-latency sample, and
   may find re-check-acquired work on its own deque.

   The announce → re-check → block sequence is
   [Sched_protocol.Park.park]; the dock it blocks on is the pool's
   [Parking_lot]. The park point is also a fault poll point: a plan may
   stall right here — stretching the window between the last failed
   sweep and the block, which is exactly where the seeded lost-wakeup
   replay test plants its stall — or fire its cancellation, in which
   case we skip this park and let the caller's loop observe it.

   Wake accounting keeps [parks = wakes + spurious_wakes] exact at
   quiescence: every block is followed by exactly one classification —
   [wakes] when the post-wake re-check finds work (or a terminal state:
   the doorbell was rung *for* us), [spurious_wakes] when it finds
   nothing and the worker re-parks. *)
let try_park pool w ~done_ =
  if pool.fault_on && fault_poll pool w then false
  else begin
    let tr = pool.trace in
    let traced = Trace.enabled tr in
    let recheck () = park_recheck pool w ~done_ in
    let block ~ticket =
      w.metrics.parks <- w.metrics.parks + 1;
      if traced then Trace.record_park tr ~worker:w.id ~time:(Trace.now tr);
      Parking_lot.block pool.lot ~should_block:(fun () ->
          Park.should_block pool.park ~ticket)
    in
    let rec go blocked =
      match Park.park pool.park ~recheck ~block with
      | `Found -> blocked
      | `Woke ->
          (* The post-wake classification sweep is the [searchers]
             window [ring_one] throttles on (see its safety note): the
             increment precedes the sweep, the decrement precedes any
             re-park's announce -> re-check, so a publisher that skipped
             its ring because it saw us here is always covered by one of
             the two. *)
          Atomic.incr pool.searchers;
          let found = park_recheck pool w ~done_ in
          Atomic.decr pool.searchers;
          if found then begin
            w.metrics.wakes <- w.metrics.wakes + 1;
            if traced then Trace.record_wake tr ~worker:w.id ~time:(Trace.now tr) ~spurious:false;
            (* Hand the search on: we are about to get busy with what we
               acquired, and the throttle may have swallowed doorbells
               for tasks published mid-sweep — if anyone is still
               parked, let them take over the search. *)
            ring_one pool;
            true
          end
          else begin
            w.metrics.spurious_wakes <- w.metrics.spurious_wakes + 1;
            if traced then Trace.record_wake tr ~worker:w.id ~time:(Trace.now tr) ~spurious:true;
            go true
          end
    in
    go false
  end

(* One failed steal round: spin through the worker's backoff; once it
   saturates, park in the pool's lot until a doorbell rings. This
   replaces the old saturated-backoff [Unix.sleepf] quantum, which kept
   every idle worker burning its core (and a fixed wake-up latency)
   forever; a parked worker costs nothing and wakes on the doorbell
   that publishes its next task. Returns [true] iff the worker parked. *)
let idle_pause pool w ~done_ =
  if Backoff.saturated w.backoff then begin
    let parked = try_park pool w ~done_ in
    Backoff.reset w.backoff;
    parked
  end
  else begin
    Backoff.once w.backoff;
    false
  end

(* {2 The effects-based task core}

   Every task a worker executes runs inside an effect handler (one
   static handler value, installed by [run_task]; no per-task handler
   allocation). User code can then:

   - [perform (Fork t)]: push [t] on the current worker's deque — the
     primitive [fork_join] is sugar over;
   - [perform (Suspend register)]: capture the current continuation [k]
     as a {e fiber}, call [register resume] where [resume] schedules
     [k]'s resumption (at most once — extra calls are ignored), and
     return the worker to its run loop without blocking. [resume] is
     safe from any thread: from a worker of the same pool it pushes the
     resumption on that worker's deque; from anywhere else it goes
     through the external-submission injector.

   Suspension is only legal at scheduler depth 0 (not under a
   [fork_join] branch or a [parallel_for] chunk): a continuation
   captured there would close over the worker's LIFO frame pool and
   could not migrate. [Future.await] respects this automatically by
   helping instead of parking; a direct [Suspend] at depth > 0 is
   refused with [Invalid_argument] delivered at the perform site. *)

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Fork : task -> unit Effect.t

(* The scope installed when the current task has no fiber cancellation
   flag of its own. Never set: plain tasks are cancelled only through
   the pool-level flag. *)
let no_fscope = Atomic.make false

let record_resume pool w =
  w.metrics.resumes <- w.metrics.resumes + 1;
  let tr = pool.trace in
  if Trace.enabled tr then Trace.record_resume tr ~worker:w.id ~time:(Trace.now tr)

(* Schedule a parked continuation's resumption. The resumption is an
   ordinary deque task: it re-installs the fiber's cancellation scope
   and continues [k] on whichever worker picked it up ([run_task]'s
   bracket restores that worker's previous scope when the step ends).
   [scope] rides along because the resuming worker is in general not
   the one that parked. *)
let schedule_resume pool scope k =
  let t () =
    match Domain.DLS.get ctx_key with
    | Some (_, w) ->
        record_resume pool w;
        w.fscope <- scope;
        Effect.Deep.continue k ()
    | None -> Effect.Deep.continue k ()
  in
  match Domain.DLS.get ctx_key with
  | Some (pool', w) when pool' == pool -> push_task pool' w t
  | _ ->
      inject pool
        {
          ij_run = t;
          ij_abort =
            (fun () -> try Effect.Deep.discontinue k Cancelled with _ -> ());
        }

(* The one-shot resume closure handed to [Suspend]'s register callback:
   the CAS makes double-resume (a completion racing a cancellation, a
   buggy event source firing twice) a silent no-op instead of a
   [Continuation_already_resumed] crash on the second caller. *)
let make_resume pool scope k =
  let claimed = Atomic.make false in
  fun () -> if Atomic.compare_and_set claimed false true then schedule_resume pool scope k

let fiber_effc : type b. b Effect.t -> ((b, unit) Effect.Deep.continuation -> unit) option =
  function
  | Suspend register ->
      Some
        (fun k ->
          match Domain.DLS.get ctx_key with
          | Some (pool, w) when w.sched_depth = 0 ->
              w.metrics.suspends <- w.metrics.suspends + 1;
              let tr = pool.trace in
              if Trace.enabled tr then
                Trace.record_suspend tr ~worker:w.id ~time:(Trace.now tr);
              (* Suspension points are fault poll points: a plan may
                 stall here (stretching the window between registering
                 the waiter and the completion that resumes it) or fire
                 its cancellation. *)
              if pool.fault_on then ignore (fault_poll pool w);
              let resume = make_resume pool w.fscope k in
              (match register resume with
              | () -> ()
              | exception e -> Effect.Deep.discontinue k e)
          | Some _ ->
              Effect.Deep.discontinue k
                (Invalid_argument
                   "Scheduler: Suspend inside a fork_join branch or parallel_for chunk")
          | None ->
              Effect.Deep.discontinue k (Invalid_argument "Scheduler: Suspend outside a pool"))
  | Fork t ->
      Some
        (fun k ->
          (match Domain.DLS.get ctx_key with
          | Some (pool, w) -> push_task pool w t
          | None -> t ());
          Effect.Deep.continue k ())
  | _ -> None

(* One handler value for the whole program: installing it is just the
   [match_with] frame, no allocation per task. *)
let fiber_handler : (unit, unit) Effect.Deep.handler =
  { retc = (fun () -> ()); exnc = (fun e -> raise e); effc = fiber_effc }

let run_fiber (body : unit -> unit) = Effect.Deep.match_with body () fiber_handler

(* Execute one task as one fiber step. The bracket saves and restores
   the worker's scheduler depth and cancellation scope around the
   delimited computation: a task starts a fresh context (depth 0, no
   scope) even when run from a helping loop nested under a join, and
   whatever scope the task installed for itself dies with the step —
   which ends either by completing or by suspending. *)
let run_task pool w (t : task) =
  w.metrics.tasks_run <- w.metrics.tasks_run + 1;
  let tr = pool.trace in
  let traced = Trace.enabled tr in
  if traced then Trace.record_task_start tr ~worker:w.id ~time:(Trace.now tr);
  let saved_depth = w.sched_depth and saved_scope = w.fscope in
  w.sched_depth <- 0;
  w.fscope <- no_fscope;
  let leave () =
    w.sched_depth <- saved_depth;
    w.fscope <- saved_scope;
    if traced then Trace.record_task_end tr ~worker:w.id ~time:(Trace.now tr)
  in
  match run_fiber t with
  | () -> leave ()
  | exception e ->
      leave ();
      raise e

(* The worker run loop shared by every blocking point — helping a join
   whose child was stolen, awaiting a future from a non-suspendable
   context, driving a suspended root fiber to completion: run own and
   stolen tasks (and drain external submissions) until [done_ ()]. *)
let help_while pool w done_ =
  let tr = pool.trace in
  let traced = Trace.enabled tr in
  let search_start = ref (-1) in
  let idle_enter () =
    if traced && !search_start < 0 then begin
      let time = Trace.now tr in
      search_start := time;
      Trace.record_idle_enter tr ~worker:w.id ~time
    end
  in
  let idle_exit () =
    if traced && !search_start >= 0 then begin
      Trace.record_idle_exit tr ~worker:w.id ~time:(Trace.now tr);
      search_start := -1
    end
  in
  Backoff.reset w.backoff;
  while not (done_ ()) do
    handle_pending pool w;
    match pop_own pool w with
    | Some t ->
        idle_exit ();
        Backoff.reset w.backoff;
        run_task pool w t
    | None ->
        if not (done_ ()) then begin
          w.metrics.idle_loops <- w.metrics.idle_loops + 1;
          idle_enter ();
          if drain_injector pool w then idle_exit ()
          else
            match steal_once pool w ~search_start:!search_start with
            | Some t ->
                idle_exit ();
                Backoff.reset w.backoff;
                run_task pool w t
            | None ->
                if idle_pause pool w ~done_ then
                  (* A park elapsed: re-stamp so the steal-latency
                     sample measures the post-park search, not the
                     blocked time. *)
                  if traced && !search_start >= 0 then search_start := Trace.now tr
        end
  done;
  idle_exit ()

(* Do the helpers have a reason to be awake? A running job, or
   externally submitted futures not yet completed. *)
let serving pool =
  (not (Atomic.get pool.stop))
  && (Atomic.get pool.job_active || Atomic.get pool.service > 0)

(* Helper workers' task acquisition (Listing 1's [get_task]): own deque,
   then the injector and repeated steal attempts, until neither a job
   nor outstanding submissions remain. *)
let get_task pool w =
  if not (serving pool) then None
  else
    match pop_own pool w with
    | Some _ as r -> r
    | None ->
        let tr = pool.trace in
        let traced = Trace.enabled tr in
        let t0 = if traced then Trace.now tr else -1 in
        if traced then Trace.record_idle_enter tr ~worker:w.id ~time:t0;
        Backoff.reset w.backoff;
        let finish r =
          if traced then Trace.record_idle_exit tr ~worker:w.id ~time:(Trace.now tr);
          Backoff.reset w.backoff;
          r
        in
        let done_ () = not (serving pool) in
        (* Every round starts with [pop_own]: a park's re-check (and a
           drain) acquires work into our *own* deque, and the park sweep
           deliberately skips self — so any path back into this loop
           must drain the own deque before it can possibly park again,
           or the acquired task would sleep in a parked worker's private
           part where no thief can see it and no exposure signal can
           reach a poll. (Invariant: a worker never blocks in the lot
           with a non-empty own deque.)

           [search_start] is re-stamped at every acquisition round:
           stamping it once outside the loop attributed an entire
           multi-round idle period (worse once rounds can park) to
           whichever steal finally succeeded, inflating the
           steal-latency percentiles. *)
        let rec loop search_start =
          if not (serving pool) then finish None
          else
            match pop_own pool w with
            | Some _ as r -> finish r
            | None ->
                w.metrics.idle_loops <- w.metrics.idle_loops + 1;
                if drain_injector pool w then loop (if traced then Trace.now tr else -1)
                else (
                  match steal_once pool w ~search_start with
                  | Some _ as r -> finish r
                  | None ->
                      if idle_pause pool w ~done_ then
                        loop (if traced then Trace.now tr else -1)
                      else loop search_start)
        in
        loop t0

let helper_body pool w =
  Domain.DLS.set ctx_key (Some (pool, w));
  let rec work () =
    match get_task pool w with
    | Some t ->
        handle_pending pool w;
        run_task pool w t;
        handle_pending pool w;
        work ()
    | None -> ()
  in
  (* Between jobs a helper parks in the same lot as in-job idlers (the
     old scheme waited on a dedicated generation word under the pool
     mutex, which forced every external submission through a lock and a
     broadcast). The doorbells that end a between-jobs park: [Pool.run]
     marking the job active, [inject] after its push, [shutdown]. A
     helper never waits here while it has a reason to serve — [work]
     only returns once [serving] is false — and the park re-check
     re-reads [serving], so a job started between the two cannot be
     slept through. *)
  let between_jobs_done () = serving pool in
  while not (Atomic.get pool.stop) do
    work ();
    if not (Atomic.get pool.stop) then ignore (try_park pool w ~done_:between_jobs_done)
  done

(* Ambient [Suspend]: park the current fiber. From a worker at scheduler
   depth 0 this performs the effect; deeper (inside a fork_join branch
   or a loop chunk) the continuation cannot legally be captured, so the
   worker helps with other work until resumed — same observable
   semantics, no parking. Outside any pool the calling thread blocks on
   a condvar until [resume] fires (the degenerate one-thread
   scheduler). *)
let suspend (register : (unit -> unit) -> unit) : unit =
  match Domain.DLS.get ctx_key with
  | Some (_, w) when w.sched_depth = 0 -> Effect.perform (Suspend register)
  | Some (pool, w) ->
      let resumed = Atomic.make false in
      (* ring **all**: the wake must reach this worker specifically if
         it parked while helping (a one-sleeper signal could be absorbed
         by a bystander). *)
      register (fun () ->
          Atomic.set resumed true;
          ring_all pool);
      help_while pool w (fun () -> Atomic.get resumed)
  | None ->
      let m = Mutex.create () in
      let c = Condition.create () in
      let resumed = ref false in
      register (fun () ->
          Mutex.lock m;
          resumed := true;
          Condition.signal c;
          Mutex.unlock m);
      Mutex.lock m;
      while not !resumed do
        Condition.wait c m
      done;
      Mutex.unlock m

(* Ambient [Fork]: push a task on the calling worker's deque (run
   immediately outside a pool). Equivalent to [perform (Fork t)] from
   under the handler, without requiring one. *)
let fork (t : task) : unit =
  match Domain.DLS.get ctx_key with
  | Some (pool, w) -> push_task pool w t
  | None -> t ()

(* {2 Futures}

   The state machine is one atomic word per future:

   {v Pending [w1; ...; wn]  --complete-->  Done result v}

   Waiters CAS themselves into the pending list; the completer CASes the
   [Done] in (exactly one completion wins — a cancellation racing the
   computation's own finish resolves here) and then runs every waiter
   callback, FIFO. A waiter that arrives after completion runs
   immediately on its own thread. Everything else — parking fibers,
   external blocking, combinators — is built from [add_waiter] +
   [complete]. *)
module Future = struct
  type 'a t = {
    core : 'a Future_core.t;
        (* the Pending→Done state machine and the fiber cancellation
           flag ([Sched_protocol.Future_core]); the flag is installed
           as [w.fscope] while the future's computation runs, observed
           by [Ops.cancelled] and by [parallel_for] chunks through the
           loop scope *)
    fpool : pool option;
        (* where the computation (or, for a combinator, its inputs)
           runs: lets an external awaiter drive worker 0 when no job is
           in flight — a single-worker pool has no helper domains at
           all, so without this an external await could hang *)
    fservice : bool; (* completion decrements [fpool]'s service count *)
  }

  let make ?pool:fpool ?(service = false) () =
    { core = Future_core.make (); fpool; fservice = service }

  let of_result r =
    let core = Future_core.make () in
    ignore (Future_core.complete core r);
    { core; fpool = None; fservice = false }

  let add_waiter fut cb = Future_core.add_waiter fut.core cb

  (* [true] iff this call won the completion race; the kernel hands the
     winner its waiter list (FIFO) to run. *)
  let complete fut r =
    match Future_core.complete fut.core r with
    | None -> false
    | Some ws ->
        (if fut.fservice then
           match fut.fpool with
           | Some p -> ignore (Atomic.fetch_and_add p.service (-1))
           | None -> ());
        List.iter (fun cb -> cb ()) ws;
        true

  let try_await fut = Future_core.peek fut.core

  let is_done fut = Future_core.is_done fut.core

  let unwrap = function Ok v -> v | Error e -> raise e

  let finished fut =
    match Future_core.peek fut.core with Some r -> unwrap r | None -> assert false

  (* The task body a future's computation runs as: one fresh fiber. It
     installs the future's cancellation flag as the worker's scope
     ([run_task]'s bracket uninstalls it when the step ends), observes
     cancellation and exception injection before starting, and
     publishes its outcome through [complete] — waking every waiter,
     wherever it parked. Nothing after a potential suspension point may
     touch the worker captured here: the fiber can migrate, so
     post-[f] code re-reads the context. *)
  let fiber_task (type a) fut (f : unit -> a) : task =
   fun () ->
    match Domain.DLS.get ctx_key with
    | Some (pool, w) ->
        w.fscope <- Future_core.cancel_cell fut.core;
        let r =
          if Atomic.get pool.cancel_requested || Future_core.cancel_requested fut.core
          then Error Cancelled
          else begin
            match
              if pool.fault_on then
                Fault.inject_now pool.fault ~worker:w.id ~metrics:w.metrics
              else None
            with
            | Some (iw, k) ->
                record_fault pool w Fault.code_inject;
                Error (Fault.Injected (iw, k))
            | None -> ( match f () with v -> Ok v | exception e -> Error e)
          end
        in
        (match r with
        | Ok _ -> ()
        | Error _ -> (
            (* re-read: [f] may have suspended and resumed elsewhere *)
            match Domain.DLS.get ctx_key with
            | Some (pool', w') ->
                w'.metrics.task_exns <- w'.metrics.task_exns + 1;
                let tr = pool'.trace in
                if Trace.enabled tr then
                  Trace.record_task_exn tr ~worker:w'.id ~time:(Trace.now tr)
            | None -> ()));
        ignore (complete fut r)
    | None -> ignore (complete fut (match f () with v -> Ok v | exception e -> Error e))

  let spawn (f : unit -> 'a) : 'a t =
    match Domain.DLS.get ctx_key with
    | None -> of_result (match f () with v -> Ok v | exception e -> Error e)
    | Some (pool, w) ->
        let fut = make ~pool () in
        w.metrics.futures <- w.metrics.futures + 1;
        push_task pool w (fiber_task fut f);
        fut

  let cancel fut =
    Future_core.request_cancel fut.core;
    ignore (complete fut (Error Cancelled))

  (* External blocking await with self-driving: if the future's pool has
     no job in flight, the awaiting thread elects itself the driver (the
     same exclusivity word [Pool.run] uses) and schedules on worker 0
     until the future settles. Losers of the election park on the
     pool's condvar; the winner broadcasts when it releases, so pending
     externals chain as drivers. *)
  let block_on_pool pool fut =
    add_waiter fut (fun () ->
        Mutex.lock pool.mutex;
        Condition.broadcast pool.cond;
        Mutex.unlock pool.mutex;
        (* the awaiting thread may be *driving* worker 0 and parked in
           the lot rather than on the pool condvar *)
        ring_all pool);
    let rec wait_loop () =
      if is_done fut || Atomic.get pool.stop then ()
      else if Atomic.compare_and_set pool.running false true then begin
        Atomic.set pool.ext_driver true;
        let w0 = pool.workers.(0) in
        let saved = Domain.DLS.get ctx_key in
        Domain.DLS.set ctx_key (Some (pool, w0));
        let leave () =
          Domain.DLS.set ctx_key saved;
          Atomic.set pool.ext_driver false;
          Atomic.set pool.running false;
          Mutex.lock pool.mutex;
          Condition.broadcast pool.cond;
          Mutex.unlock pool.mutex
        in
        (match help_while pool w0 (fun () -> is_done fut || Atomic.get pool.stop) with
        | () -> leave ()
        | exception e ->
            leave ();
            raise e);
        wait_loop ()
      end
      else begin
        Mutex.lock pool.mutex;
        if (not (is_done fut)) && Atomic.get pool.running && not (Atomic.get pool.stop)
        then Condition.wait pool.cond pool.mutex;
        Mutex.unlock pool.mutex;
        wait_loop ()
      end
    in
    wait_loop ();
    match Future_core.peek fut.core with
    | Some r -> unwrap r
    | None -> raise Cancelled (* the pool shut down under us *)

  (* Plain condvar blocking for pool-less futures (only reachable for
     already-settled sequential-fallback futures and hand-built ones). *)
  let block_plain fut =
    let m = Mutex.create () in
    let c = Condition.create () in
    add_waiter fut (fun () ->
        Mutex.lock m;
        Condition.broadcast c;
        Mutex.unlock m);
    Mutex.lock m;
    while not (is_done fut) do
      Condition.wait c m
    done;
    Mutex.unlock m;
    finished fut

  let await (fut : 'a t) : 'a =
    match Future_core.peek fut.core with
    | Some r -> unwrap r
    | None -> (
        match Domain.DLS.get ctx_key with
        | Some (_, w) when w.sched_depth = 0 ->
            (* Fiber context: park. If the future completed between the
               [Pending] read and the register call, [add_waiter] runs
               the resume immediately and the continuation lands on the
               worker's own deque — no lost wakeup. *)
            Effect.perform (Suspend (fun resume -> add_waiter fut resume));
            finished fut
        | Some (pool, w) ->
            (* Under a fork_join branch or loop chunk: the continuation
               cannot be captured, so help until the future settles. The
               completion must ring this specific worker out of any park
               it takes while helping. *)
            add_waiter fut (fun () -> ring_all pool);
            help_while pool w (fun () -> is_done fut);
            finished fut
        | None -> (
            match fut.fpool with Some pool -> block_on_pool pool fut | None -> block_plain fut))

  let inherited a b = match a.fpool with Some _ as p -> p | None -> b.fpool

  let both (a : 'a t) (b : 'b t) : ('a * 'b) t =
    let fut = { core = Future_core.make (); fpool = inherited a b; fservice = false } in
    let remaining = Atomic.make 2 in
    let arm () =
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        let ra = match Future_core.peek a.core with Some r -> r | None -> assert false in
        let rb = match Future_core.peek b.core with Some r -> r | None -> assert false in
        ignore
          (complete fut
             (match (ra, rb) with
             | Ok x, Ok y -> Ok (x, y)
             | Error e, _ -> Error e
             | _, Error e -> Error e))
      end
    in
    add_waiter a arm;
    add_waiter b arm;
    fut

  let first (a : 'a t) (b : 'a t) : 'a t =
    let fut = { core = Future_core.make (); fpool = inherited a b; fservice = false } in
    let settle r loser = if complete fut r then cancel loser in
    add_waiter a (fun () ->
        match Future_core.peek a.core with Some r -> settle r b | None -> ());
    add_waiter b (fun () ->
        match Future_core.peek b.core with Some r -> settle r a | None -> ());
    fut

  let all (futs : 'a t list) : 'a list t =
    match futs with
    | [] -> of_result (Ok [])
    | f0 :: _ ->
        let fut = { core = Future_core.make (); fpool = f0.fpool; fservice = false } in
        let remaining = Atomic.make (List.length futs) in
        let arm () =
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            (* first error in list order wins, matching [fork_join]'s
               left-to-right exception priority *)
            let rec collect = function
              | [] -> Ok []
              | f :: rest -> (
                  match Future_core.peek f.core with
                  | Some (Ok v) -> (
                      match collect rest with Ok vs -> Ok (v :: vs) | Error e -> Error e)
                  | Some (Error e) -> Error e
                  | None -> assert false)
            in
            ignore (complete fut (collect futs))
          end
        in
        List.iter (fun f -> add_waiter f arm) futs;
        fut
end

module Pool = struct
  type t = pool

  let create ?(seed = 42L) ?(deque_capacity = 65536) ?deque ?(trace = Trace.null)
      ?fault:fault_plan ?(steal_policy = Victim_policy.Near_first) ?topology
      ?(steal_batch = 8) ?(adaptive = false) ?adaptive_config ~num_workers ~variant () =
    if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
    if steal_batch < 1 then invalid_arg "Pool.create: steal_batch must be >= 1";
    if adaptive && variant = Ws then
      invalid_arg
        "Pool.create: adaptive needs a synchronization-light variant (Uslcws, Signal, \
         Cons or Half), not Ws";
    (* A worker starts in the mode that reproduces the static pool's
       behavior, so an adaptive pool is indistinguishable from its
       variant until the governor's first accepted switch. *)
    let initial_mode =
      match variant with
      | Uslcws -> Policy_switch.unsync
      | Ws | Signal | Cons | Half -> Policy_switch.handshake
    in
    let governor =
      if not adaptive then None
      else begin
        let config =
          match adaptive_config with
          | Some c -> c
          | None -> Policy_governor.default_config
        in
        let initial =
          if initial_mode = Policy_switch.unsync then Policy_governor.Unsync
          else Policy_governor.Handshake
        in
        Some
          {
            g_state = Policy_governor.create ~config ~initial ();
            g_lock = Atomic.make false;
            g_epoch = config.Policy_governor.epoch;
          }
      end
    in
    let fault =
      match fault_plan with None -> Fault.none | Some p -> Fault.create p ~num_workers
    in
    let impl = match deque with Some i -> i | None -> default_deque_impl variant in
    if (not (impl_concurrent impl)) && num_workers > 1 then
      invalid_arg
        (Printf.sprintf
           "Pool.create: deque %S is a sequential specification; use num_workers:1"
           (impl_name impl));
    if Trace.enabled trace && Trace.num_workers trace < num_workers then
      invalid_arg "Pool.create: trace was created for fewer workers";
    let root_rng = Xoshiro.create seed in
    let make_worker id =
      let metrics = Metrics.create () in
      let rng = Xoshiro.split root_rng id in
      {
        id;
        metrics;
        deque = make impl ~capacity:deque_capacity ~dummy:dummy_task ~metrics;
        (* Thief-written flags get a cache line each: a notify to one
           worker must not invalidate the line a neighbour's flag (or an
           adjacent worker record's fields) lives on. *)
        targeted = Padding.atomic false;
        signal_pending = Padding.atomic false;
        rng;
        vsel =
          Victim_policy.create ?topology ~policy:steal_policy ~rng ~self:id ~nw:num_workers
            ();
        steal_buf = Array.make (steal_batch - 1) dummy_task;
        backoff = Backoff.create ~min_wait:1 ~max_wait:64 ~metrics ();
        pswitch = Policy_switch.make ~mode:initial_mode ();
        polls = 0;
        frames = Array.init initial_frames (fun _ -> make_frame ());
        frame_top = 0;
        sched_depth = 0;
        fscope = no_fscope;
      }
    in
    let pool =
      {
        pvariant = variant;
        nw = num_workers;
        steal_limit = steal_batch;
        workers = Array.init num_workers make_worker;
        domains = [];
        job_active = Atomic.make false;
        stop = Atomic.make false;
        mutex = Mutex.create ();
        cond = Condition.create ();
        running = Atomic.make false;
        ext_driver = Atomic.make false;
        trace;
        fault;
        fault_on = Fault.active fault;
        cancel_requested = Atomic.make false;
        injector = Injector.create ();
        service = Atomic.make 0;
        park = Park.make ();
        lot = Parking_lot.create ();
        searchers = Atomic.make 0;
        adaptive;
        governor;
      }
    in
    pool.domains <-
      List.init (num_workers - 1) (fun i ->
          let w = pool.workers.(i + 1) in
          Domain.spawn (fun () -> helper_body pool w));
    pool

  let run pool f =
    if Atomic.get pool.stop then invalid_arg "Pool.run: pool was shut down";
    (* Re-entrancy: from one of this pool's own workers, [run] can never
       be correct — the calling domain already *is* a worker, and
       impersonating worker 0 on top of it would give two domains the
       same deque. (When a job is active the [running] CAS below also
       catches this, but a submitted task executing between jobs would
       otherwise slip through.) *)
    (match Domain.DLS.get ctx_key with
    | Some (pool', _) when pool' == pool ->
        invalid_arg
          "Pool.run: called from inside one of this pool's own workers (use Future.spawn \
           or Pool.submit instead)"
    | _ -> ());
    (* Take the driver seat. An external awaiter holding it
       ([Future.block_on_pool]) releases as soon as its future settles,
       so that collision is waited out on the pool's condvar (the
       driver broadcasts on release); only a genuinely concurrent [run]
       — seat held with [ext_driver] unset — is refused. *)
    let rec acquire_seat () =
      if Atomic.get pool.stop then invalid_arg "Pool.run: pool was shut down";
      if Atomic.compare_and_set pool.running false true then ()
      else if Atomic.get pool.ext_driver then begin
        Mutex.lock pool.mutex;
        if Atomic.get pool.running && Atomic.get pool.ext_driver
           && not (Atomic.get pool.stop)
        then Condition.wait pool.cond pool.mutex;
        Mutex.unlock pool.mutex;
        acquire_seat ()
      end
      else if Atomic.get pool.running then
        invalid_arg "Pool.run: a job is already running"
      else acquire_seat ()
    in
    acquire_seat ();
    let w0 = pool.workers.(0) in
    let saved = Domain.DLS.get ctx_key in
    Domain.DLS.set ctx_key (Some (pool, w0));
    w0.sched_depth <- 0;
    w0.fscope <- no_fscope;
    (* A previous job's cancellation (a fault plan's, or an explicit
       [cancel] that landed after the job ended) must not bleed into
       this one. *)
    Atomic.set pool.cancel_requested false;
    Atomic.set pool.job_active true;
    (* Job-start doorbell. Safe to gate on the parked count: a helper
       not yet announced when we load it will re-check [serving] — which
       reads the [job_active] store above — before blocking. *)
    ring_all pool;
    let finish () =
      Atomic.set pool.job_active false;
      Domain.DLS.set ctx_key saved;
      Atomic.set pool.running false;
      (* External awaiters may be parked on the pool's condvar waiting
         for the driver seat we just vacated. *)
      Mutex.lock pool.mutex;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    in
    (* The job is a root fiber: [f] runs under the effect handler, so it
       may suspend ([Future.await] at top level parks instead of
       spinning). If it does, worker 0 keeps scheduling — running its
       own deque, stolen work and external submissions — until the
       root's continuation, wherever it resumed, publishes the
       outcome. *)
    let root_done = Atomic.make false in
    let outcome = ref None in
    let root () =
      (match f () with
      | v -> outcome := Some (Ok v)
      | exception e -> outcome := Some (Error (e, Printexc.get_raw_backtrace ())));
      Atomic.set root_done true;
      (* If the root suspended, this final step may run on a helper
         while worker 0 is parked in [help_while] below: ring it out
         (all — the wake must reach worker 0 specifically). *)
      ring_all pool
    in
    (match run_fiber root with
    | () -> ()
    | exception e ->
        (* unreachable in practice: [root] catches everything *)
        finish ();
        raise e);
    if not (Atomic.get root_done) then
      help_while pool w0 (fun () -> Atomic.get root_done);
    finish ();
    match !outcome with
    | Some (Ok v) -> v
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None -> assert false

  (* Thread-safe external (or worker-side) submission: the task runs as
     a fiber on the pool; the future can be awaited from anywhere. From
     a worker of this pool the task goes straight onto that worker's
     deque; from any other thread it goes through the MPSC injector,
     which workers drain at their steal points. The service count keeps
     helpers scheduling for the future even with no [run] in flight. *)
  let submit (type a) pool (f : unit -> a) : a Future.t =
    if Atomic.get pool.stop then invalid_arg "Pool.submit: pool was shut down";
    let fut = Future.make ~pool ~service:true () in
    Atomic.incr pool.service;
    (match Domain.DLS.get ctx_key with
    | Some (pool', w) when pool' == pool ->
        w.metrics.submits <- w.metrics.submits + 1;
        w.metrics.futures <- w.metrics.futures + 1;
        let tr = pool.trace in
        if Trace.enabled tr then Trace.record_submit tr ~worker:w.id ~time:(Trace.now tr);
        push_task pool' w (Future.fiber_task fut f)
    | _ ->
        inject pool
          {
            ij_run = Future.fiber_task fut f;
            ij_abort = (fun () -> ignore (Future.complete fut (Error Cancelled)));
          });
    fut

  let cancel pool = request_cancel pool

  (* Idempotent: the CAS elects one caller to do the work; later (or
     concurrent) calls return immediately. Cancellation is requested
     first so an in-flight job unwinds through its cancellation points
     instead of being waited out; the helpers are then joined, after
     which the drain below runs with no concurrent deque owners. *)
  let shutdown pool =
    if Atomic.compare_and_set pool.stop false true then begin
      request_cancel pool;
      (* Explicit ring: [request_cancel] only rings when it wins the
         cancellation race, and parked workers must observe [stop]. The
         broadcast below serves condvar waiters (seat handshake). *)
      ring_all pool;
      Mutex.lock pool.mutex;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.domains;
      pool.domains <- [];
      (* Wait out the driver seat — a [run] caller unwinding through its
         cancellation points, or an external awaiter driving worker 0.
         Both observe [stop] and release; holding the seat through the
         sweep below means no concurrent deque owner. *)
      while not (Atomic.compare_and_set pool.running false true) do
        Domain.cpu_relax ()
      done;
      (* Close the injector: atomically refuse all future pushes and
         take every entry that never reached a worker, aborting each
         (their futures complete with [Cancelled]) so external awaiters
         unwind instead of hanging. A submit racing this very close
         either got in — and is drained here — or is refused and
         aborted by [inject] itself; no entry is stranded. *)
      (match Injector.close pool.injector with
      | [] -> ()
      | entries ->
          let w0 = pool.workers.(0) in
          w0.metrics.drained_tasks <- w0.metrics.drained_tasks + List.length entries;
          List.iter (fun e -> e.ij_abort ()) entries);
      (* Every completed job joins all its frames, so the deques are
         normally empty here; this sweep is the backstop that restores
         the pool's invariants if a job was torn down abnormally. *)
      Array.iter
        (fun w ->
          let (Instance ((module D), d)) = w.deque in
          let n = D.size d in
          if n > 0 then begin
            w.metrics.drained_tasks <- w.metrics.drained_tasks + n;
            D.clear d
          end)
        pool.workers;
      Atomic.set pool.running false;
      (* Wake any external awaiters still parked on the condvar. *)
      Mutex.lock pool.mutex;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    end

  let num_workers pool = pool.nw

  let variant pool = pool.pvariant

  let adaptive pool = pool.adaptive

  (* Racy snapshot of each worker's current exposure mode (exact between
     jobs): [Policy_governor.Unsync] or [Handshake] per worker. On a
     static pool, derived from the variant. *)
  let worker_modes pool =
    Array.map
      (fun w ->
        if
          (if pool.adaptive then Policy_switch.active_mode w.pswitch
           else
             match pool.pvariant with
             | Ws | Uslcws -> Policy_switch.unsync
             | Signal | Cons | Half -> Policy_switch.handshake)
          = Policy_switch.unsync
        then Policy_governor.Unsync
        else Policy_governor.Handshake)
      pool.workers

  let trace pool = pool.trace

  let deque_name pool =
    let (Instance ((module D), _)) = pool.workers.(0).deque in
    D.name

  let per_worker_metrics pool = Array.map (fun w -> w.metrics) pool.workers

  let metrics pool = Metrics.sum (per_worker_metrics pool)

  let reset_metrics pool = Array.iter (fun w -> Metrics.reset w.metrics) pool.workers

  (* Quiescent-state introspection (racy but exact between jobs): the
     chaos harness asserts both are 0 after every run, including runs
     that ended in an injected exception or a cancellation. *)

  let outstanding_tasks pool =
    Array.fold_left
      (fun acc w ->
        let (Instance ((module D), d)) = w.deque in
        acc + D.size d)
      (Injector.size pool.injector)
      pool.workers

  let frames_in_use pool = Array.fold_left (fun acc w -> acc + w.frame_top) 0 pool.workers

  let check_deque_invariants pool =
    let rec go i =
      if i >= pool.nw then Ok ()
      else
        match check_size_invariants pool.workers.(i).deque with
        | Ok () -> go (i + 1)
        | Error m -> Error (Printf.sprintf "worker %d: %s" i m)
    in
    go 0

  let fault_plan pool = if pool.fault_on then Some (Fault.plan pool.fault) else None
end

let tick () =
  match Domain.DLS.get ctx_key with
  | None -> ()
  | Some (pool, w) -> handle_pending pool w

let my_id () = match Domain.DLS.get ctx_key with None -> 0 | Some (_, w) -> w.id

let cancelled () =
  match Domain.DLS.get ctx_key with
  | None -> false
  | Some (pool, w) -> Atomic.get pool.cancel_requested || Atomic.get w.fscope

let check_cancel () = if cancelled () then raise Cancelled

let num_workers () =
  match Domain.DLS.get ctx_key with None -> 1 | Some (pool, _) -> pool.nw

(* The slow join path: [fr]'s child left our deque (a thief has it, or
   exposure moved it public and someone raced us to it). Help with other
   work until the frame's completion flag flips, then consume the
   outcome and recycle the frame. *)
let join_frame_stolen pool w fr : Obj.t =
  let tr = pool.trace in
  let traced = Trace.enabled tr in
  let search_start = ref (-1) in
  let idle_enter () =
    if traced && !search_start < 0 then begin
      let time = Trace.now tr in
      search_start := time;
      Trace.record_idle_enter tr ~worker:w.id ~time
    end
  in
  let idle_exit () =
    if traced && !search_start >= 0 then begin
      Trace.record_idle_exit tr ~worker:w.id ~time:(Trace.now tr);
      search_start := -1
    end
  in
  Backoff.reset w.backoff;
  let done_ () = not (Frame.is_pending fr) in
  while Frame.is_pending fr do
    handle_pending pool w;
    match pop_own pool w with
    | Some t ->
        idle_exit ();
        Backoff.reset w.backoff;
        run_task pool w t
    | None ->
        if Frame.is_pending fr then begin
          w.metrics.idle_loops <- w.metrics.idle_loops + 1;
          idle_enter ();
          if drain_injector pool w then idle_exit ()
          else
            match steal_once pool w ~search_start:!search_start with
            | Some t ->
                idle_exit ();
                Backoff.reset w.backoff;
                run_task pool w t
            | None ->
                (* [exec_frame]'s completion doorbell (ring-all) ends
                   this park; re-stamp the steal sample after one. *)
                if idle_pause pool w ~done_ then
                  if traced && !search_start >= 0 then search_start := Trace.now tr
        end
  done;
  idle_exit ();
  (* [consume]'s SC read of [state] orders the executor's [result]
     write before its [result] read, and resets the frame to pending
     for recycling. *)
  let r = Frame.consume fr in
  release_frame w fr;
  match r with Ok v -> v | Error e -> raise e

(* Join on [fr] after the owner's own branch finished: the common case
   pops the frame's task straight back off the private bottom and runs
   the child inline — the frame's [state]/[result] are never touched, so
   an un-stolen fork/join does zero SC round trips and allocates nothing
   beyond its branch closures. *)
let rec join_frame pool w fr : Obj.t =
  (* One poll per join keeps the exposure-latency bound of the
     signal-based variants through fork-heavy recursions (the pre-frame
     code polled here too, via its wait loop's first iteration). *)
  handle_pending pool w;
  match pop_own pool w with
  | Some t ->
      if t == fr.Frame.task then begin
        if Atomic.get pool.cancel_requested then begin
          (* The child never left our private part, so nothing is
             exposed and the frame can recycle without running it. *)
          release_frame w fr;
          let tr = pool.trace in
          if Trace.enabled tr then
            Trace.record_cancel tr ~worker:w.id ~time:(Trace.now tr) ~chunks:0;
          raise Cancelled
        end;
        w.metrics.tasks_run <- w.metrics.tasks_run + 1;
        let tr = pool.trace in
        let traced = Trace.enabled tr in
        if traced then Trace.record_task_start tr ~worker:w.id ~time:(Trace.now tr);
        match
          (* The inline twin of [exec_frame]'s injection point, so the
             k-th task of a worker raises whether or not it was stolen.
             Written without an intermediate closure: this is the
             fork/join fast path and must not allocate. The depth bump
             (two plain int stores) marks the child as a scheduler
             frame, under which suspension is refused. *)
          (if pool.fault_on then
             match Fault.inject_now pool.fault ~worker:w.id ~metrics:w.metrics with
             | Some (iw, k) ->
                 record_fault pool w Fault.code_inject;
                 raise (Fault.Injected (iw, k))
             | None -> ());
          w.sched_depth <- w.sched_depth + 1;
          (match Frame.fn fr () with
          | v ->
              w.sched_depth <- w.sched_depth - 1;
              v
          | exception e ->
              w.sched_depth <- w.sched_depth - 1;
              raise e)
        with
        | v ->
            if traced then Trace.record_task_end tr ~worker:w.id ~time:(Trace.now tr);
            release_frame w fr;
            v
        | exception e ->
            if traced then Trace.record_task_end tr ~worker:w.id ~time:(Trace.now tr);
            w.metrics.task_exns <- w.metrics.task_exns + 1;
            if traced then Trace.record_task_exn tr ~worker:w.id ~time:(Trace.now tr);
            release_frame w fr;
            raise e
      end
      else begin
        (* Not ours: helping re-entered the scheduler under this join and
           left other work above our frame's task. Run it and retry. *)
        run_task pool w t;
        join_frame pool w fr
      end
  | None -> join_frame_stolen pool w fr

(* Join-and-discard for the [f]-raised path: [f]'s exception has
   priority, but the child must still be joined — its outcome consumed
   or the task run — before the frame can recycle. *)
let join_frame_discard pool w fr =
  match join_frame pool w fr with _ -> () | exception _ -> ()

let fork_join (type a b) (f : unit -> a) (g : unit -> b) : a * b =
  match Domain.DLS.get ctx_key with
  | None ->
      let a = f () in
      let b = g () in
      (a, b)
  | Some (pool, w) ->
      let fr = acquire_frame w in
      (* [g]'s result travels through the frame's [Obj.t] slot; the
         boxing closure is the only per-call allocation besides the
         result tuple. *)
      Frame.set_fn fr (fun () -> Obj.repr (g ()));
      (match push_task pool w fr.Frame.task with
      | () -> ()
      | exception e ->
          (* Deque rejected the push (capacity): nothing was exposed, the
             frame can recycle immediately. *)
          release_frame w fr;
          raise e);
      (match
         (* [f] runs at scheduler depth: its continuation includes this
            join, which closes over [w], so it must not migrate. *)
         w.sched_depth <- w.sched_depth + 1;
         (match f () with
         | a ->
             w.sched_depth <- w.sched_depth - 1;
             a
         | exception e ->
             w.sched_depth <- w.sched_depth - 1;
             raise e)
       with
      | a ->
          let b : b = Obj.obj (join_frame pool w fr) in
          (a, b)
      | exception e ->
          join_frame_discard pool w fr;
          raise e)

(* Specialized: no result boxing, no tuple — the un-stolen fast path
   allocates only [fn]'s closure (and nothing at all when [g] is a
   top-level function wrapped by a constant closure). *)
let fork_join_unit (f : unit -> unit) (g : unit -> unit) : unit =
  match Domain.DLS.get ctx_key with
  | None ->
      f ();
      g ()
  | Some (pool, w) ->
      let fr = acquire_frame w in
      Frame.set_fn fr (fun () -> g (); unit_obj);
      (match push_task pool w fr.Frame.task with
      | () -> ()
      | exception e ->
          release_frame w fr;
          raise e);
      (match
         w.sched_depth <- w.sched_depth + 1;
         (match f () with
         | () -> w.sched_depth <- w.sched_depth - 1
         | exception e ->
             w.sched_depth <- w.sched_depth - 1;
             raise e)
       with
      | () -> ignore (join_frame pool w fr)
      | exception e ->
          join_frame_discard pool w fr;
          raise e)

(* {2 Lazy binary splitting}

   [parallel_for] used to split its range eagerly into a balanced tree
   of n/grain leaf tasks: O(n/grain) pushes (and frame uses) even when
   nothing is ever stolen. The lazy discipline below iterates the range
   sequentially one grain-sized chunk at a time and only forks the
   remaining right half off as a stealable task when observed demand
   asks for it — which collapses task creation to zero at P = 1 and to
   O(#steals x log(n/grain)) under load, while a stolen half re-enters
   the same discipline on the thief. The split-off half is pushed
   through the ordinary [fork_join_unit], so it follows the variant's
   normal exposure protocol (private push, thief notify, expose at the
   next poll — the poll each chunk boundary already provides). *)

(* Demand heuristic: split only when the pool actually has thieves and
   our deque holds nothing they could take. Both reads are cheap ([nw]
   is immutable, [is_empty] reads the owner-local size words); a deque
   that still holds unstolen tasks means supply already outruns demand
   and splitting further would just recreate the eager behaviour. *)
let want_split pool w =
  pool.nw > 1
  &&
  let (Instance ((module D), d)) = w.deque in
  D.is_empty d

(* Failure scope of one [parallel_for] call ([Sched_protocol.Scope]).
   When a body chunk raises, the first failure wins the flag CAS and
   parks its exception; sibling chunks — wherever they run — observe
   the flag at their chunk boundary and skip silently. The scope is per
   loop call, not pool-global: a caller that catches the loop's
   exception and starts a second loop must not inherit a stale flag.
   The scope's cancel cell is the spawning fiber's cancellation flag,
   captured at [parallel_for] entry: [Future.cancel] on the enclosing
   fiber cancels the loop's chunks wherever they run — the split halves
   carry the scope in their closures, so a thief executing one observes
   the same flag the owner does. *)

(* One grain-sized chunk under the scope's discipline. Pool-level
   cancellation ([Pool.cancel] / shutdown / a fault plan) and fiber
   cancellation (the scope's cancel cell) outrank the exception flag
   and raise [Cancelled] — they must unwind the whole computation, not
   just this loop. *)
let run_chunk pool w scope body lo hi =
  match Scope.gate scope ~pool_cancel:pool.cancel_requested with
  | Scope.Cancel ->
      w.metrics.cancelled_chunks <- w.metrics.cancelled_chunks + 1;
      let tr = pool.trace in
      if Trace.enabled tr then
        Trace.record_cancel tr ~worker:w.id ~time:(Trace.now tr) ~chunks:1;
      raise Cancelled
  | Scope.Skip ->
      w.metrics.cancelled_chunks <- w.metrics.cancelled_chunks + 1;
      let tr = pool.trace in
      if Trace.enabled tr then
        Trace.record_cancel tr ~worker:w.id ~time:(Trace.now tr) ~chunks:1
  | Scope.Run -> (
      match
        (* chunk bodies are scheduler frames: no suspension inside *)
        w.sched_depth <- w.sched_depth + 1;
        (match
           for i = lo to hi - 1 do
             body i
           done
         with
        | () -> w.sched_depth <- w.sched_depth - 1
        | exception e ->
            w.sched_depth <- w.sched_depth - 1;
            raise e)
      with
      | () -> ()
      | exception e -> Scope.fail scope e)

let rec lazy_for pool w scope grain body lo hi =
  if hi - lo <= grain then begin
    run_chunk pool w scope body lo hi;
    (* Poll point: bounds the latency of work-exposure requests for
       loop computations (the paper's constant-time guarantee). *)
    handle_pending pool w
  end
  else if want_split pool w then begin
    let mid = lo + ((hi - lo) / 2) in
    w.metrics.splits <- w.metrics.splits + 1;
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_split tr ~worker:w.id ~time:(Trace.now tr) ~iters:(hi - mid);
    fork_join_unit
      (fun () -> lazy_for_enter scope grain body lo mid)
      (fun () -> lazy_for_enter scope grain body mid hi)
  end
  else begin
    (* hi - lo > grain, so [mid < hi]: progress is guaranteed. *)
    let mid = lo + grain in
    run_chunk pool w scope body lo mid;
    handle_pending pool w;
    lazy_for pool w scope grain body mid hi
  end

(* A split half can run on whichever worker took it: rebind the context
   from the executing domain rather than capturing the splitter's. *)
and lazy_for_enter scope grain body lo hi =
  match Domain.DLS.get ctx_key with
  | None ->
      for i = lo to hi - 1 do
        body i
      done
  | Some (pool, w) -> lazy_for pool w scope grain body lo hi

let parallel_for ?grain ~start ~stop body =
  let n = stop - start in
  if n > 0 then begin
    match Domain.DLS.get ctx_key with
    | None ->
        for i = start to stop - 1 do
          body i
        done
    | Some (pool, w) ->
        let default_grain = max 1 (min 2048 (n / (8 * pool.nw))) in
        let grain = match grain with Some g -> max 1 g | None -> default_grain in
        let scope = Scope.make ~cancel:w.fscope () in
        lazy_for pool w scope grain body start stop;
        (* Every split half has joined (each went through
           [fork_join_unit]), so the winner's exception write is
           visible. *)
        if Scope.failed scope then
          match Scope.failure scope with Some e -> raise e | None -> assert false
  end

(* The documented ambient surface. The bare top-level names above
   predate it and survive as deprecated aliases (see the .mli); new code
   uses [Scheduler.Ops]. *)
module Ops = struct
  let fork_join = fork_join

  let fork_join_unit = fork_join_unit

  let parallel_for = parallel_for

  let tick = tick

  let my_id = my_id

  let cancelled = cancelled

  let check_cancel = check_cancel

  let num_workers = num_workers

  let suspend = suspend

  let fork = fork
end
