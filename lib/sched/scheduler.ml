module Metrics = Lcws_sync.Metrics
module Xoshiro = Lcws_sync.Xoshiro
module Backoff = Lcws_sync.Backoff
module Trace = Lcws_trace.Trace
open Lcws_deque.Deque_intf

type variant = Ws | Uslcws | Signal | Cons | Half

let all_variants = [ Ws; Uslcws; Signal; Cons; Half ]

let lcws_variants = [ Uslcws; Signal; Cons; Half ]

let variant_name = function
  | Ws -> "ws"
  | Uslcws -> "uslcws"
  | Signal -> "signal"
  | Cons -> "cons"
  | Half -> "half"

let variant_label = function
  | Ws -> "WS"
  | Uslcws -> "User"
  | Signal -> "Signal"
  | Cons -> "Cons"
  | Half -> "Half"

let variant_of_string s =
  match String.lowercase_ascii s with
  | "ws" -> Some Ws
  | "uslcws" | "user" -> Some Uslcws
  | "signal" -> Some Signal
  | "cons" | "conservative" -> Some Cons
  | "half" -> Some Half
  | _ -> None

type task = unit -> unit

(* The deque implementations, instantiated at [task] and packed as
   first-class modules: the scheduler is generic over the DEQUE signature
   and never matches on a concrete representation. *)

module Chase_lev_deque = Lcws_deque.Chase_lev.Deque (struct
  type t = task
end)

module Split_deque_deque = Lcws_deque.Split_deque.Deque (struct
  type t = task
end)

module Lace_deque_deque = Lcws_deque.Lace_deque.Deque (struct
  type t = task
end)

module Private_deque_deque = Lcws_deque.Private_deque.Deque (struct
  type t = task
end)

type deque_impl = task impl

let chase_lev_impl : deque_impl = (module Chase_lev_deque)

let split_deque_impl : deque_impl = (module Split_deque_deque)

let lace_impl : deque_impl = (module Lace_deque_deque)

let private_impl : deque_impl = (module Private_deque_deque)

let all_deque_impls = [ chase_lev_impl; split_deque_impl; lace_impl; private_impl ]

let deque_impl_name = impl_name

let deque_impl_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun i -> impl_name i = s) all_deque_impls

(* The paper's pairing: WS runs on Chase-Lev, every LCWS variant on the
   split deque. *)
let default_deque_impl = function
  | Ws -> chase_lev_impl
  | Uslcws | Signal | Cons | Half -> split_deque_impl

type worker = {
  id : int;
  metrics : Metrics.t;
  deque : task instance;
  targeted : bool Atomic.t;
  signal_pending : bool Atomic.t;
  rng : Xoshiro.t;
  backoff : Backoff.t;
}

type pool = {
  pvariant : variant;
  nw : int;
  workers : worker array;
  mutable domains : unit Domain.t list;
  job_active : bool Atomic.t;
  stop : bool Atomic.t;
  gen : int Atomic.t;
  mutex : Mutex.t;
  cond : Condition.t;
  steal_sleep_us : int;
  running : bool Atomic.t;
  trace : Trace.t;
}

let ctx_key : (pool * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let dummy_task : task = fun () -> ()

let exposure_policy = function
  | Uslcws | Signal -> Expose_one
  | Cons -> Expose_conservative
  | Half -> Expose_half
  | Ws -> assert false

(* Cheap conditional reset: the [Atomic.get] is a plain load; the SC store
   only happens when a thief actually targeted us. *)
let reset_targeted w = if Atomic.get w.targeted then Atomic.set w.targeted false

(* The body of the paper's signal handler (Listing 3): transfer work to
   the public part of the split deque. Runs on the victim's own domain at
   poll points — our stand-in for in-handler execution (DESIGN.md §2.2). *)
let handle_pending pool w =
  match pool.pvariant with
  | Signal | Cons | Half ->
      if Atomic.get w.signal_pending then begin
        Atomic.set w.signal_pending false;
        let (Instance ((module D), d)) = w.deque in
        let n = D.update_public_bottom d ~policy:(exposure_policy pool.pvariant) in
        w.metrics.signals_handled <- w.metrics.signals_handled + 1;
        let tr = pool.trace in
        if Trace.enabled tr then begin
          let time = Trace.now tr in
          Trace.record_signal_handled tr ~worker:w.id ~time;
          if n > 0 then Trace.record_expose tr ~worker:w.id ~time ~tasks:n
        end
      end
  | Ws | Uslcws -> ()

let push_task pool w t =
  let (Instance ((module D), d)) = w.deque in
  D.push_bottom d t;
  (* Signal-based variants: a fresh push means there is (new) work that can
     be exposed, so thieves may notify again (Section 4). *)
  match pool.pvariant with
  | Signal | Cons | Half -> reset_targeted w
  | Ws | Uslcws -> ()

(* Owner-side task lookup on the own deque: private part first, then the
   public part (Listing 1 lines 7-16). For the signal-safe [pop_bottom] of
   Section 4, a [None] from the private part *must* fall through to
   [pop_public_bottom], which repairs the decremented [bot]. *)
let pop_own pool w =
  let (Instance ((module D), d)) = w.deque in
  let private_task =
    match pool.pvariant with
    | Signal | Half -> D.pop_bottom_signal_safe d
    | Ws | Uslcws | Cons -> D.pop_bottom d
  in
  match private_task with
  | Some _ as r ->
      (* USLCWS handles exposure requests at task boundaries only
         (Listing 1 lines 8-12). *)
      (match pool.pvariant with
      | Uslcws ->
          if Atomic.get w.targeted then begin
            Atomic.set w.targeted false;
            let n = D.update_public_bottom d ~policy:Expose_one in
            w.metrics.signals_handled <- w.metrics.signals_handled + 1;
            let tr = pool.trace in
            if Trace.enabled tr then begin
              let time = Trace.now tr in
              Trace.record_signal_handled tr ~worker:w.id ~time;
              if n > 0 then Trace.record_expose tr ~worker:w.id ~time ~tasks:n
            end
          end
      | Ws | Signal | Cons | Half -> ());
      r
  | None -> (
      match D.pop_public_bottom d with
      | Some _ as r ->
          (* A public task was consumed: previously shared work is no
             longer accessible, allow new notifications. *)
          reset_targeted w;
          let tr = pool.trace in
          if Trace.enabled tr then
            Trace.record_pop_public tr ~worker:w.id ~time:(Trace.now tr);
          r
      | None ->
          (* Listing 1 line 17. *)
          reset_targeted w;
          None)

(* Thief-side notification policy (Listing 1 line 22 / Listing 3). *)
let notify pool thief victim =
  let notified =
    match pool.pvariant with
    | Ws -> false
    | Uslcws ->
        Atomic.set victim.targeted true;
        thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
        true
    | Signal | Half ->
        if not (Atomic.get victim.targeted) then begin
          Atomic.set victim.targeted true;
          Atomic.set victim.signal_pending true;
          thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
          true
        end
        else false
    | Cons ->
        let has_two =
          let (Instance ((module D), d)) = victim.deque in
          D.has_two_tasks d
        in
        if (not (Atomic.get victim.targeted)) && has_two then begin
          Atomic.set victim.targeted true;
          Atomic.set victim.signal_pending true;
          thief.metrics.signals_sent <- thief.metrics.signals_sent + 1;
          true
        end
        else false
  in
  if notified then begin
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_notify tr ~thief:thief.id ~victim:victim.id ~time:(Trace.now tr)
  end

(* [search_start] is the Idle_enter timestamp of the enclosing work
   search (-1 when tracing is off), for the steal-latency histogram. *)
let steal_once pool w ~search_start =
  if pool.nw < 2 then None
  else begin
    let victim_id = Xoshiro.other_than w.rng ~bound:pool.nw ~self:w.id in
    let v = pool.workers.(victim_id) in
    let (Instance ((module D), d)) = v.deque in
    let tr = pool.trace in
    if Trace.enabled tr then
      Trace.record_steal_attempt tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr);
    match D.pop_top d ~metrics:w.metrics with
    | Stolen t ->
        (* The shared task is gone; future thieves may notify again. *)
        reset_targeted v;
        if Trace.enabled tr then
          Trace.record_steal_ok tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr)
            ~search_start;
        Some t
    | Private_work ->
        notify pool w v;
        None
    | Empty ->
        if Trace.enabled tr then
          Trace.record_steal_empty tr ~thief:w.id ~victim:victim_id ~time:(Trace.now tr);
        None
    | Abort -> None
  end

let sleep_us us = if us > 0 then Unix.sleepf (float_of_int us *. 1e-6)

(* One failed steal round: spin through the worker's backoff; once it
   saturates, yield the timeslice so victims can run — vital when domains
   outnumber cores — and start over. The policy (and its counting) lives
   in [Backoff]; the scheduler only decides what "stronger than spinning"
   means here. *)
let idle_pause pool w =
  if Backoff.saturated w.backoff then begin
    sleep_us pool.steal_sleep_us;
    Backoff.reset w.backoff
  end
  else Backoff.once w.backoff

(* Helper workers' task acquisition (Listing 1's [get_task]): own deque,
   then repeated steal attempts until the job ends. *)
let get_task pool w =
  if not (Atomic.get pool.job_active) then None
  else
    match pop_own pool w with
    | Some _ as r -> r
    | None ->
        let tr = pool.trace in
        let traced = Trace.enabled tr in
        let search_start = if traced then Trace.now tr else -1 in
        if traced then Trace.record_idle_enter tr ~worker:w.id ~time:search_start;
        Backoff.reset w.backoff;
        let finish r =
          if traced then Trace.record_idle_exit tr ~worker:w.id ~time:(Trace.now tr);
          Backoff.reset w.backoff;
          r
        in
        let rec loop () =
          if not (Atomic.get pool.job_active) then finish None
          else begin
            w.metrics.idle_loops <- w.metrics.idle_loops + 1;
            match steal_once pool w ~search_start with
            | Some _ as r -> finish r
            | None ->
                idle_pause pool w;
                loop ()
          end
        in
        loop ()

let run_task pool w (t : task) =
  w.metrics.tasks_run <- w.metrics.tasks_run + 1;
  let tr = pool.trace in
  let traced = Trace.enabled tr in
  if traced then Trace.record_task_start tr ~worker:w.id ~time:(Trace.now tr);
  t ();
  if traced then Trace.record_task_end tr ~worker:w.id ~time:(Trace.now tr)

let helper_body pool w =
  Domain.DLS.set ctx_key (Some (pool, w));
  let last_gen = ref 0 in
  let rec work () =
    match get_task pool w with
    | Some t ->
        handle_pending pool w;
        run_task pool w t;
        handle_pending pool w;
        work ()
    | None -> ()
  in
  let rec wait_loop () =
    Mutex.lock pool.mutex;
    while (not (Atomic.get pool.stop)) && Atomic.get pool.gen = !last_gen do
      Condition.wait pool.cond pool.mutex
    done;
    Mutex.unlock pool.mutex;
    if not (Atomic.get pool.stop) then begin
      last_gen := Atomic.get pool.gen;
      work ();
      wait_loop ()
    end
  in
  wait_loop ()

module Pool = struct
  type t = pool

  let create ?(seed = 42L) ?(deque_capacity = 65536) ?(steal_sleep_us = 50) ?deque
      ?(trace = Trace.null) ~num_workers ~variant () =
    if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
    let impl = match deque with Some i -> i | None -> default_deque_impl variant in
    if (not (impl_concurrent impl)) && num_workers > 1 then
      invalid_arg
        (Printf.sprintf
           "Pool.create: deque %S is a sequential specification; use num_workers:1"
           (impl_name impl));
    if Trace.enabled trace && Trace.num_workers trace < num_workers then
      invalid_arg "Pool.create: trace was created for fewer workers";
    let root_rng = Xoshiro.create seed in
    let make_worker id =
      let metrics = Metrics.create () in
      {
        id;
        metrics;
        deque = make impl ~capacity:deque_capacity ~dummy:dummy_task ~metrics;
        targeted = Atomic.make false;
        signal_pending = Atomic.make false;
        rng = Xoshiro.split root_rng id;
        backoff = Backoff.create ~min_wait:1 ~max_wait:64 ~metrics ();
      }
    in
    let pool =
      {
        pvariant = variant;
        nw = num_workers;
        workers = Array.init num_workers make_worker;
        domains = [];
        job_active = Atomic.make false;
        stop = Atomic.make false;
        gen = Atomic.make 0;
        mutex = Mutex.create ();
        cond = Condition.create ();
        steal_sleep_us;
        running = Atomic.make false;
        trace;
      }
    in
    pool.domains <-
      List.init (num_workers - 1) (fun i ->
          let w = pool.workers.(i + 1) in
          Domain.spawn (fun () -> helper_body pool w));
    pool

  let run pool f =
    if Atomic.get pool.stop then invalid_arg "Pool.run: pool was shut down";
    if not (Atomic.compare_and_set pool.running false true) then
      invalid_arg "Pool.run: a job is already running";
    let w0 = pool.workers.(0) in
    let saved = Domain.DLS.get ctx_key in
    Domain.DLS.set ctx_key (Some (pool, w0));
    Atomic.set pool.job_active true;
    Mutex.lock pool.mutex;
    Atomic.incr pool.gen;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    let finish () =
      Atomic.set pool.job_active false;
      Domain.DLS.set ctx_key saved;
      Atomic.set pool.running false
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e

  let shutdown pool =
    if not (Atomic.get pool.stop) then begin
      Atomic.set pool.stop true;
      Mutex.lock pool.mutex;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.domains;
      pool.domains <- []
    end

  let num_workers pool = pool.nw

  let variant pool = pool.pvariant

  let trace pool = pool.trace

  let deque_name pool =
    let (Instance ((module D), _)) = pool.workers.(0).deque in
    D.name

  let per_worker_metrics pool = Array.map (fun w -> w.metrics) pool.workers

  let metrics pool = Metrics.sum (per_worker_metrics pool)

  let reset_metrics pool = Array.iter (fun w -> Metrics.reset w.metrics) pool.workers
end

let tick () =
  match Domain.DLS.get ctx_key with
  | None -> ()
  | Some (pool, w) -> handle_pending pool w

let my_id () = match Domain.DLS.get ctx_key with None -> 0 | Some (_, w) -> w.id

let num_workers () =
  match Domain.DLS.get ctx_key with None -> 1 | Some (pool, _) -> pool.nw

type 'a outcome = Done of 'a | Failed of exn

let fork_join (type a b) (f : unit -> a) (g : unit -> b) : a * b =
  match Domain.DLS.get ctx_key with
  | None ->
      let a = f () in
      let b = g () in
      (a, b)
  | Some (pool, w) ->
      let done_ = Atomic.make false in
      let slot : b outcome option ref = ref None in
      let gtask () =
        (match g () with
        | v -> slot := Some (Done v)
        | exception e -> slot := Some (Failed e));
        (* Publish the slot write before the flag (SC store). *)
        Atomic.set done_ true
      in
      push_task pool w gtask;
      let fa = match f () with v -> Done v | exception e -> Failed e in
      (* Join phase: common case — pop [gtask] right back and run it
         inline; otherwise help with other work until [g] completes. *)
      let tr = pool.trace in
      let traced = Trace.enabled tr in
      let search_start = ref (-1) in
      let idle_enter () =
        if traced && !search_start < 0 then begin
          let time = Trace.now tr in
          search_start := time;
          Trace.record_idle_enter tr ~worker:w.id ~time
        end
      in
      let idle_exit () =
        if traced && !search_start >= 0 then begin
          Trace.record_idle_exit tr ~worker:w.id ~time:(Trace.now tr);
          search_start := -1
        end
      in
      Backoff.reset w.backoff;
      while not (Atomic.get done_) do
        handle_pending pool w;
        match pop_own pool w with
        | Some t ->
            idle_exit ();
            Backoff.reset w.backoff;
            run_task pool w t
        | None ->
            if not (Atomic.get done_) then begin
              w.metrics.idle_loops <- w.metrics.idle_loops + 1;
              idle_enter ();
              match steal_once pool w ~search_start:!search_start with
              | Some t ->
                  idle_exit ();
                  Backoff.reset w.backoff;
                  run_task pool w t
              | None -> idle_pause pool w
            end
      done;
      idle_exit ();
      let gb = match !slot with Some r -> r | None -> assert false in
      let a = match fa with Done v -> v | Failed e -> raise e in
      let b = match gb with Done v -> v | Failed e -> raise e in
      (a, b)

let fork_join_unit f g =
  let (() : unit), (() : unit) = fork_join f g in
  ()

let parallel_for ?grain ~start ~stop body =
  let n = stop - start in
  if n > 0 then begin
    let p = num_workers () in
    let default_grain = max 1 (min 2048 (n / (8 * p))) in
    let grain = match grain with Some g -> max 1 g | None -> default_grain in
    let rec go lo hi =
      if hi - lo <= grain then begin
        for i = lo to hi - 1 do
          body i
        done;
        (* Poll point: bounds the latency of work-exposure requests for
           loop computations (the paper's constant-time guarantee). *)
        tick ()
      end
      else begin
        let mid = lo + ((hi - lo) / 2) in
        fork_join_unit (fun () -> go lo mid) (fun () -> go mid hi)
      end
    in
    go start stop
  end
