(* The deciding half of an adaptive pool: samples the per-worker
   counters the scheduler already maintains, smooths the observed steal
   pressure and turns it into a target exposure mode. The mechanism
   that makes the resulting switch safe against in-flight thieves lives
   in [Sched_protocol.Policy_switch]; this module is pure bookkeeping
   and is deliberately testable without a pool. *)

module Ewma = Lcws_sync.Ewma

type mode = Unsync | Handshake

let switch_mode = function
  | Unsync -> Sched_protocol.Policy_switch.unsync
  | Handshake -> Sched_protocol.Policy_switch.handshake

let mode_name = function Unsync -> "unsync" | Handshake -> "handshake"

type config = {
  alpha : float;  (* EWMA smoothing factor *)
  lo : float;  (* pressure below this (strictly) -> unsync *)
  hi : float;  (* pressure above this (strictly) -> handshake *)
  epoch : int;  (* owner poll points between governor samples *)
}

(* Thresholds in steal attempts per executed task: a pool where fewer
   than one poll point in twenty sees a steal probe runs happily
   unsynchronized; past one in four, thieves are waiting on lazy
   exposure and the handshake's prompt transfer wins. The 5x gap plus
   the EWMA is the anti-flap margin (DESIGN.md 3.9). *)
let default_config = { alpha = 0.3; lo = 0.05; hi = 0.25; epoch = 256 }

type t = {
  cfg : config;
  ewma : Ewma.t;
  gate : Ewma.gate;  (* true = handshake *)
  mutable prev_attempts : int;
  mutable prev_tasks : int;
  mutable samples : int;
  mutable switches : int;
}

let create ?(config = default_config) ?(initial = Unsync) () =
  if config.epoch <= 0 then invalid_arg "Policy_governor.create: epoch must be positive";
  {
    cfg = config;
    ewma = Ewma.create ~alpha:config.alpha;
    gate = Ewma.gate ~initial:(initial = Handshake) (Ewma.band ~lo:config.lo ~hi:config.hi);
    prev_attempts = 0;
    prev_tasks = 0;
    samples = 0;
    switches = 0;
  }

let epoch t = t.cfg.epoch

let samples t = t.samples

let switches t = t.switches

let mode t = if Ewma.state t.gate then Handshake else Unsync

let smoothed t = Ewma.value t.ewma

(** The raw per-epoch pressure: steal attempts per executed task, plus
    the parked fraction of the pool (a parked worker is one that
    searched, found nothing and gave up — starvation that prompt
    exposure relieves). Pure; unit-testable. *)
let pressure ~steal_attempts ~tasks_run ~parked ~num_workers =
  let attempts = max 0 steal_attempts and tasks = max 1 tasks_run in
  float_of_int attempts /. float_of_int tasks
  +. (float_of_int (max 0 parked) /. float_of_int (max 1 num_workers))

(** Feed one raw pressure sample through the EWMA and hysteresis gate;
    returns the (possibly unchanged) target mode. Pure state, no pool
    required — the unit tests drive this directly. *)
let step t p =
  let smoothed = Ewma.observe t.ewma p in
  let before = Ewma.state t.gate in
  let after = Ewma.update t.gate smoothed in
  t.samples <- t.samples + 1;
  if after <> before then t.switches <- t.switches + 1;
  if after then Handshake else Unsync

(** Sample cumulative pool counters (monotone across calls): computes
    the epoch deltas against the previous sample and {!step}s the
    result. [parked] is an instantaneous gauge, not a delta. *)
let sample t ~steal_attempts ~tasks_run ~parked ~num_workers =
  let da = steal_attempts - t.prev_attempts in
  let dt = tasks_run - t.prev_tasks in
  t.prev_attempts <- steal_attempts;
  t.prev_tasks <- tasks_run;
  step t (pressure ~steal_attempts:da ~tasks_run:dt ~parked ~num_workers)
