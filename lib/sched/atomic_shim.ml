(* The scheduler-side instantiation of the build-time atomic swap point
   (see [lib/deque/atomic_shim.ml] and {!Lcws_deque.Deque_intf.ATOMIC}):
   the protocol kernels in this library ([sched_protocol.ml]) are
   written against the bare module name [Atomic_shim], so
   [lib/check/sched_model] can re-compile the identical sources against
   the effect-yielding [Sim_atomic.A] and hand the real scheduler
   protocols to the interleaving explorer.

   [include] re-exports the production shim's [external] declarations
   as externals, so every access here still compiles to the atomic
   primitives. Deliberately no .mli, for the same reason as the deque
   shim: a signature would hide the externals behind ordinary value
   descriptions and cost a call per access under [-opaque]. *)
include Lcws_deque.Atomic_shim
