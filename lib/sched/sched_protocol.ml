(** The scheduler's synchronization protocols, isolated from its policy.

    Everything in this file is *protocol*: the exact sequence of atomic
    and plain accesses by which the scheduler's layers communicate
    across domains — a join frame publishing its child's outcome to a
    waiting owner, a loop scope electing the first failing chunk, a
    future's Pending→Done state machine racing waiter registration and
    cancellation, the external-submission injector racing shutdown.
    Policy — who runs what when, metrics, tracing, backoff — stays in
    [scheduler.ml].

    The split matters because this file is compiled twice, like the
    deque sources (see [atomic_shim.ml]): once here against the
    zero-cost production shim, and once in [lib/check/sched_model]
    against the effect-yielding [Sim_atomic.A], where a deterministic
    mini-scheduler runs these very kernels under the interleaving
    explorer. The checker therefore exercises the shipped protocol
    code, not a model of it.

    Each kernel carries a [mutation] record of seeded-bug knobs (same
    scheme as [Split_deque.Mutation]): a [*_with] entry point takes the
    knobs, the production names are the knobs-off specialization. The
    mutants exist so the checker's scenarios can prove they would catch
    the corresponding real bug; production code never passes them.

    No .mli on purpose: the record fields and state constants are the
    protocol's ABI with the scheduler (and with the checker's invariant
    callbacks), and hiding them behind [-opaque] would cost calls on
    the fork/join fast path. *)

module A = Atomic_shim

(** {2 Join frames}

    The result slot and completion word of one [fork_join] child. The
    cells and their ordering are the whole protocol:

    - the executor (a thief, or whoever drained the task) writes
      [result] {e then} flips [state] with an SC store — the owner's SC
      read of [state] orders the read of [result] after the write;
    - the owner consumes the outcome and resets [state] to pending, at
      which point (and not before) the frame may be recycled;
    - the un-stolen fast path never touches [state]/[result] at all: it
      pops the trampoline back by physical identity and runs [fn]
      inline with plain accesses only.

    [task] is the preallocated trampoline the scheduler pushes in place
    of a per-call closure; it is scheduler wiring, not protocol state,
    and parametrized so the model scheduler can use its own task
    representation. *)
module Frame = struct
  let pending = 0

  let done_ = 1

  let exn_ = 2

  type 'task t = {
    state : int A.t; (* pending / done_ / exn_; padded, SC *)
    result : Obj.t A.plain; (* child outcome; valid once [state] flips *)
    fn : Obj.t A.plain; (* the (unit -> Obj.t) child of the current use *)
    mutable task : 'task; (* preallocated trampoline for this frame *)
  }

  (** Seeded bugs. [early_flip]: publish the completion flag {e before}
      the result write — the owner can consume a stale result. *)
  type mutation = { early_flip : bool }

  let clean = { early_flip = false }

  let unit_obj = Obj.repr ()

  let make ?name ~task () =
    let cell s = match name with None -> s | Some p -> p ^ "." ^ s in
    {
      state = A.make ~name:(cell "state") pending;
      result = A.plain ~name:(cell "result") unit_obj;
      fn = A.plain ~name:(cell "fn") unit_obj;
      task;
    }

  (** Owner, before pushing the trampoline: install this use's child. *)
  let set_fn fr (f : unit -> Obj.t) = A.write fr.fn (Obj.repr f)

  let fn fr : unit -> Obj.t = Obj.obj (A.read fr.fn)

  let publish_value_with m fr v =
    if m.early_flip then begin
      ignore (A.exchange fr.state done_);
      A.write fr.result v
    end
    else begin
      A.write fr.result v;
      ignore (A.exchange fr.state done_)
    end

  let publish_exn_with m fr e =
    if m.early_flip then begin
      ignore (A.exchange fr.state exn_);
      A.write fr.result (Obj.repr e)
    end
    else begin
      A.write fr.result (Obj.repr e);
      ignore (A.exchange fr.state exn_)
    end

  let publish_value fr v = publish_value_with clean fr v

  let publish_exn fr e = publish_exn_with clean fr e

  (** Executor: run the installed child and publish its outcome —
      result or exception — through the flag, so a failing child still
      completes its frame and the owner's join can never hang. *)
  let publish_with m fr =
    match fn fr () with
    | v -> publish_value_with m fr v
    | exception e -> publish_exn_with m fr e

  let publish fr = publish_with clean fr

  let is_pending fr = A.get fr.state = pending

  (** Owner, once [is_pending] is false: take the outcome and reset the
      frame to pending for recycling. The SC read of [state] orders the
      executor's [result] write before the [result] read here. *)
  let consume fr =
    let st = A.get fr.state in
    let r = A.read fr.result in
    ignore (A.exchange fr.state pending);
    if st = exn_ then Error (Obj.obj r : exn) else Ok r

  (** Owner, on release: drop the use's references so a pooled frame
      does not leak its last child's closure and result. *)
  let scrub fr =
    A.write fr.fn unit_obj;
    A.write fr.result unit_obj
end

(** {2 Loop scopes}

    The first-failure-wins protocol of one [parallel_for] call. A chunk
    that raises CASes [flag] and — only if it won — parks its exception
    in [exn_slot]; sibling chunks observe the flag at their boundary
    and skip. [cancel] is the enclosing fiber's cancellation flag,
    captured at loop entry and carried by every split half, so
    cancelling the fiber cancels chunks wherever they run.

    [exn_slot] is deliberately plain: the winner writes it inside a
    chunk whose enclosing frame completion (an SC store) happens-before
    the owner's join, and the loop only reads it after every half has
    joined. The checker's scenario explores exactly this reasoning. *)
module Scope = struct
  type t = {
    flag : bool A.t; (* some chunk raised; siblings skip *)
    exn_slot : exn option A.plain; (* the winning exception *)
    cancel : bool A.t; (* the enclosing fiber's cancellation flag *)
  }

  (** Seeded bugs. [clobber]: skip the election — set the flag with a
      plain store and write the slot unconditionally, so a second
      failure overwrites the first one's exception. *)
  type mutation = { clobber : bool }

  let clean = { clobber = false }

  let make ?name ~cancel () =
    let cell s = match name with None -> s | Some p -> p ^ "." ^ s in
    {
      flag = A.make ~name:(cell "flag") false;
      exn_slot = A.plain ~name:(cell "exn") None;
      cancel;
    }

  let fail_with m t e =
    if m.clobber then begin
      ignore (A.exchange t.flag true);
      A.write t.exn_slot (Some e)
    end
    else if A.compare_and_set t.flag false true then A.write t.exn_slot (Some e)

  let fail t e = fail_with clean t e

  (** What a chunk boundary decides. Pool- and fiber-level cancellation
      outrank the failure flag: they unwind the whole computation
      ([Cancel] means raise), where a sibling's failure merely skips
      the chunk ([Skip]). *)
  type gate = Run | Skip | Cancel

  let gate t ~pool_cancel =
    if A.get pool_cancel || A.get t.cancel then Cancel
    else if A.get t.flag then Skip
    else Run

  let failed t = A.get t.flag

  let failure t = A.read t.exn_slot
end

(** {2 Future cores}

    The one-word state machine of a future:

    {v Pending [w1; ...; wn]  --complete-->  Done result v}

    Waiters CAS themselves into the pending list; the completer CASes
    the [Done] in — exactly one completion wins, which is where a
    cancellation racing the computation's own finish resolves — and
    receives the waiter list, FIFO, to run. A waiter arriving after
    completion runs immediately on its own thread. [cancel] is the
    fiber scope the scheduler installs while the future's computation
    runs; requesting cancellation sets it independently of the
    completion race. *)
module Future_core = struct
  type 'a state =
    | Pending of (unit -> unit) list (* waiter callbacks, newest first *)
    | Done of ('a, exn) result

  type 'a t = { st : 'a state A.t; cancel : bool A.t }

  (** Seeded bugs. [blind_complete]: publish [Done] with a plain store
      instead of the CAS — a waiter that registered between the read
      and the store is dropped (never resumed), and a racing second
      completer "wins" too. *)
  type mutation = { blind_complete : bool }

  let clean = { blind_complete = false }

  let make ?name () =
    let cell s = match name with None -> s | Some p -> p ^ "." ^ s in
    {
      st = A.make ~name:(cell "st") (Pending []);
      cancel = A.make ~name:(cell "cancel") false;
    }

  let rec add_waiter t cb =
    match A.get t.st with
    | Done _ -> cb ()
    | Pending ws as old ->
        if A.compare_and_set t.st old (Pending (cb :: ws)) then () else add_waiter t cb

  (** [Some waiters] (in FIFO registration order) iff this call won the
      completion race; the caller is now responsible for running
      them. *)
  let rec complete_with m t r =
    match A.get t.st with
    | Done _ -> None
    | Pending ws as old ->
        if m.blind_complete then begin
          A.set t.st (Done r);
          Some (List.rev ws)
        end
        else if A.compare_and_set t.st old (Done r) then Some (List.rev ws)
        else complete_with m t r

  let complete t r = complete_with clean t r

  let peek t = match A.get t.st with Done r -> Some r | Pending _ -> None

  let is_done t = match A.get t.st with Done _ -> true | Pending _ -> false

  let cancel_cell t = t.cancel

  let request_cancel t = ignore (A.exchange t.cancel true)

  let cancel_requested t = A.get t.cancel
end

(** {2 The external-submission injector}

    A lock-free multi-producer queue with an atomic close: the whole
    state — a front/back functional queue plus a [closed] flag — lives
    in one cell, updated by CAS on physically fresh records (no ABA).

    [close] is the shutdown linearization point and the reason this
    replaced the old mutex two-list injector: it atomically marks the
    queue closed {e and} returns every entry not yet drained, while any
    [push] serialized after it is refused ([false]) so the submitter
    aborts the entry itself. Under the old scheme, a submit's
    stop-check-then-push racing shutdown's drain could strand an entry
    — pushed after the drain, never run, never aborted. The checker's
    shutdown scenario enumerates exactly those interleavings.

    CAS loops here are safe under the explorer's bounded exploration: a
    failed CAS means another lane's update landed, so every retry
    follows global progress (a spinlock would instead livelock the
    DFS).

    {b Park-side invariant} (see {!Park}): a worker deciding whether it
    may park must re-check the injector by {e acquiring} — [pop], whose
    CAS linearizes the take — never by {e observing} ([is_empty]).
    Observation creates no obligation: a worker that sees "non-empty",
    declines to take the entry, and loops can interleave with every
    other worker doing the same, and once all of them eventually park
    the entry has been observed by everyone and owned by no one — the
    submitter's doorbell rang before anyone announced, so nobody is
    woken for it. A successful [pop] in the re-check instead transfers
    the entry to the re-checking worker, which then must not park until
    it has scheduled it. *)
module Injector = struct
  type 'a state = {
    front : 'a list; (* next out, oldest first *)
    back : 'a list; (* incoming, newest first *)
    closed : bool;
  }

  type 'a t = 'a state A.t

  (** Seeded bugs. [blind_swing]: publish the back→front swing with a
      plain store instead of the CAS — a push that landed since the
      read is overwritten, and its entry silently lost. *)
  type mutation = { blind_swing : bool }

  let clean = { blind_swing = false }

  let create ?name () = A.make ?name { front = []; back = []; closed = false }

  (** [false] iff the injector is closed: the entry was {e not}
      enqueued and the submitter must dispose of it. *)
  let rec push t x =
    let s = A.get t in
    if s.closed then false
    else if A.compare_and_set t s { s with back = x :: s.back } then true
    else push t x

  let rec pop_with m t =
    let s = A.get t in
    match s.front with
    | x :: front' ->
        if A.compare_and_set t s { s with front = front' } then Some x else pop_with m t
    | [] -> (
        match s.back with
        | [] -> None
        | back ->
            let swung = { s with front = List.rev back; back = [] } in
            if m.blind_swing then begin
              A.set t swung;
              pop_with m t
            end
            else begin
              ignore (A.compare_and_set t s swung);
              (* won or lost, the state moved: re-read. *)
              pop_with m t
            end)

  let pop t = pop_with clean t

  (** Atomically mark the injector closed and take every entry still
      queued, oldest first. Idempotent: later calls return []. After
      this, [push] refuses, so no entry can slip in behind the
      drain. *)
  let rec close t =
    let s = A.get t in
    if s.closed then []
    else if A.compare_and_set t s { front = []; back = []; closed = true } then
      s.front @ List.rev s.back
    else close t

  let size t =
    let s = A.get t in
    List.length s.front + List.length s.back

  let is_empty t =
    match A.get t with { front = []; back = []; _ } -> true | _ -> false

  let is_closed t = (A.get t).closed
end

(** {2 The parking protocol}

    The word-level half of in-job worker parking (the condvar half is
    [Parking_lot] in lib/sync, which this kernel never sees — it would
    be meaningless under the simulation shim). Two cells:

    - [parked]: how many workers have {e announced} intent to park.
      Incremented before the parker's final work re-check, decremented
      when it leaves the lot (woken or re-check hit). This is the word
      the producer side loads — once — on every doorbell site; with
      nobody parked the ring is that single load and nothing else.
    - [gen]: the wake generation. A parker captures it as its ticket at
      announce time and blocks only while the generation still equals
      the ticket; a waker advances it (under the dock mutex) to
      invalidate every outstanding ticket.

    Lost-wakeup freedom is a Dekker-style argument over the SC total
    order of four accesses — the producer's task-publish store P and
    parked-count load L, the parker's announce increment I and re-check
    load R, with P before L and I before R program-ordered:

    - if L reads the count {e after} I, the producer sees [parked > 0]
      and rings (generation bump + signal), so the parker cannot sleep
      through it — the bump happens under the same mutex as the
      parker's predicate check;
    - if L reads the count {e before} I, then P precedes L precedes I
      precedes R in the SC order, so the re-check R observes the
      published task and the parker retracts instead of blocking.

    Dropping the re-check (the [skip_recheck] mutant) breaks the second
    leg: the task is published, the producer saw [parked = 0], and the
    parker blocks anyway — the classic lost wakeup. The checker's
    park/wake scenario must catch exactly this.

    The re-check itself must {e acquire} work, not observe it — see the
    park-side invariant note on {!Injector}. *)
module Park = struct
  type t = {
    parked : int A.t; (* announced parkers; producer side loads this *)
    gen : int A.t; (* wake generation; parker tickets against it *)
  }

  (** Seeded bugs. [skip_recheck]: announce and block without the final
      work re-check — reopens the publish-before-announce lost-wakeup
      window the protocol exists to close. *)
  type mutation = { skip_recheck : bool }

  let clean = { skip_recheck = false }

  let make ?name () =
    let cell s = match name with None -> s | Some p -> p ^ "." ^ s in
    { parked = A.make ~name:(cell "parked") 0; gen = A.make ~name:(cell "gen") 0 }

  (* The shim has no fetch_and_add; counters move by CAS loop. Safe
     under bounded exploration: a failed CAS follows another lane's
     landed update. *)
  let rec cas_add c d =
    let v = A.get c in
    if A.compare_and_set c v (v + d) then () else cas_add c d

  let parked t = A.get t.parked

  (** Parker step 1: publish intent and capture the wake-generation
      ticket. The increment must precede the work re-check — that
      ordering is the protocol. *)
  let announce t =
    cas_add t.parked 1;
    A.get t.gen

  (** Parker: leave the lot (after waking, or after the re-check found
      work). Every [announce] is balanced by exactly one [retract]. *)
  let retract t = cas_add t.parked (-1)

  (** The dock predicate: block while no wake has landed since the
      ticket was issued. Evaluated under the dock mutex. *)
  let should_block t ~ticket = A.get t.gen = ticket

  (** Waker: invalidate every outstanding ticket. Must run under the
      dock mutex (pass it as [Parking_lot.wake]'s [bump]) so it
      serializes against parkers' predicate checks. *)
  let bump t = cas_add t.gen 1

  (** Producer-side doorbell guard: a single load of the parked count.
      Returns whether a dock wake is owed; with [parked = 0] this is
      the whole ring and the fast path pays one load. The caller must
      have {e already published} the work the ring advertises. *)
  let ring t = A.get t.parked > 0

  (** The parker's announce → re-check → block → retract sequence, with
      the dock abstracted as callbacks so the checker can run the exact
      shipped sequence with a modeled dock. [recheck] must acquire (not
      observe) any work it finds. Returns [`Found] if the re-check hit
      and the parker never blocked, [`Woke] after a dock wake. *)
  let park_with m t ~recheck ~block =
    let ticket = announce t in
    if (not m.skip_recheck) && recheck () then begin
      retract t;
      `Found
    end
    else begin
      block ~ticket;
      retract t;
      `Woke
    end

  let park t ~recheck ~block = park_with clean t ~recheck ~block
end

(** {1 Exposure-policy switch (adaptive pools)}

    An adaptive pool lets a governor flip each worker between the
    unsynchronized exposure discipline (thieves raise a targeted flag
    the owner polls at task boundaries) and the signal-handshake
    discipline (thieves additionally raise a pending-signal flag served
    by an explicit handshake). The two disciplines deliver exposure
    requests over {e different channels}, so a switch has a dangerous
    window: a thief that read the old policy may deposit its request on
    the superseded channel just as the owner stops serving it — the
    request strands, the thief spins on a victim that will never
    expose, and at worst the pool deadlocks under joins.

    The kernel closes the window with an epoch-stamped policy word and
    a publish/ack handshake:

    - the {e word} packs [(epoch lsl 1) lor mode]; every accepted
      proposal bumps the epoch, so two successive words never compare
      equal even if a mode ever repeated;
    - the governor writes a new word into [proposed] ({!propose}),
      refusing while the previous proposal is still unacknowledged, so
      at most one switch is ever in flight per worker;
    - the owner acknowledges at a poll point ({!adopt_with}): it first
      {e flips} [active] to the proposed word — from here on thieves
      route to the new channel — and only {e then} drains the
      superseded channel, serving any request already deposited there;
    - a thief sends fenced ({!request_with}): load [active] (w1),
      deposit on w1's channel, re-load [active] (w2), and re-issue on
      w2's channel if the word moved underneath it.

    The channels themselves are the caller's (the scheduler's
    [targeted]/[signal_pending] flags; atomic cells in the checker's
    model), abstracted as the [drain]/[send] callbacks — the same
    discipline as {!Park}'s dock. The kernel owns only the policy word
    pair and the order in which the callbacks run relative to its own
    accesses; that order is the protocol.

    Why no request is ever stranded is a Dekker-style argument over the
    SC order of four accesses — the owner's flip store F and drain load
    D (F before D program-ordered), and the thief's deposit store S and
    re-read load R (S before R):

    - if R reads [active] {e before} F, the thief saw the old word and
      left its deposit on the old channel; but then S precedes R
      precedes F precedes D, so the drain D observes the deposit and
      serves it;
    - if R reads [active] {e after} F, the thief observes the moved
      word and re-issues on the new channel, which the owner's normal
      poll serves from then on.

    Flip-before-drain is essential: draining {e first} and flipping
    after reopens the window (a deposit landing between the drain and
    the flip sits on a channel the owner has already swept and will
    never sweep again, while the thief's re-read still sees the old
    word and does not re-issue). The two seeded mutants break one leg
    each: [no_ack] publishes the flip but skips the drain (kills the
    first leg); [stale_epoch] trusts the pre-deposit read and skips the
    re-read (kills the second). The checker's policy-switch scenario
    must catch exactly these. *)
module Policy_switch = struct
  (* Channel indices double as the mode encoding. *)
  let unsync = 0
  let handshake = 1

  let word ~epoch ~mode = (epoch lsl 1) lor (mode land 1)
  let mode_of w = w land 1
  let epoch_of w = w lsr 1

  type t = {
    proposed : int A.t; (* governor-written policy word *)
    active : int A.t; (* owner-written ack; thieves route by this *)
  }

  (** Seeded bugs. [no_ack]: the owner flips [active] but never drains
      the superseded channel — an in-flight request deposited under the
      old policy strands forever. [stale_epoch]: the thief trusts its
      pre-deposit read of the policy word and skips the post-deposit
      re-read — a deposit racing the flip strands on the old channel
      with nobody left to re-issue it. *)
  type mutation = { no_ack : bool; stale_epoch : bool }

  let clean = { no_ack = false; stale_epoch = false }

  let make ?name ?(mode = unsync) () =
    let cell s = match name with None -> s | Some p -> p ^ "." ^ s in
    let w0 = word ~epoch:0 ~mode in
    { proposed = A.make ~name:(cell "proposed") w0; active = A.make ~name:(cell "active") w0 }

  let active_word t = A.get t.active

  let active_mode t = mode_of (A.get t.active)

  (** Has the owner acknowledged the latest proposal? *)
  let acked t = A.get t.proposed = A.get t.active

  (** Governor: publish a switch to [mode]. Refused (returns [false])
      while the previous proposal is unacked or when [mode] is already
      the proposed mode, so at most one switch is in flight and epochs
      only ever move forward. The CAS keeps two racing governors from
      double-bumping (the pool runs one governor claim at a time, but
      the kernel does not rely on it). *)
  let propose t ~mode =
    let a = A.get t.active in
    let p = A.get t.proposed in
    if p <> a || mode_of p = mode land 1 then false
    else A.compare_and_set t.proposed p (word ~epoch:(epoch_of p + 1) ~mode)

  (** Owner poll point: acknowledge a pending proposal. Flips [active]
      first — the ack doubles as the re-route point for thieves — and
      only then runs [drain ~mode:old_mode], which must sweep the old
      discipline's channel and serve any request already deposited
      there (consuming the flag with a take, not a blind clear, so a
      deposit racing the sweep is never wiped unserved). Returns [true]
      iff a switch was adopted. *)
  let adopt_with m t ~drain =
    let p = A.get t.proposed in
    let a = A.get t.active in
    if p = a then false
    else begin
      A.set t.active p;
      (* Drain AFTER the flip; see the module comment for why the other
         order loses requests. *)
      if not m.no_ack then drain ~mode:(mode_of a);
      true
    end

  let adopt t ~drain = adopt_with clean t ~drain

  (** Thief: deposit an exposure request on the channel the current
      policy designates, fenced against a concurrent switch — load the
      word, [send ~mode] on its channel, re-load, and re-issue on the
      new channel if the word moved underneath. [send] must be
      idempotent (raising an already-raised flag is a no-op), and a
      re-issued send must not be swallowed by a one-outstanding-request
      throttle — the first deposit may be the one that strands. *)
  let request_with m t ~send =
    let w1 = A.get t.active in
    send ~mode:(mode_of w1);
    if not m.stale_epoch then begin
      let w2 = A.get t.active in
      if w2 <> w1 then send ~mode:(mode_of w2)
    end

  let request t ~send = request_with clean t ~send
end
