(** Adaptive exposure-policy governor: the deciding half of an elastic
    pool.

    The scheduler already counts steal attempts, executed tasks and
    parked workers; the governor periodically turns those counters into
    a {e steal pressure} (attempts per task, plus the parked fraction),
    smooths it through an EWMA and feeds it to a two-threshold
    hysteresis gate ({!Lcws_sync.Ewma}). The gate's state is the target
    exposure mode: high sustained pressure selects the signal-handshake
    discipline (prompt exposure pays for its fences when thieves are
    waiting), low pressure selects the unsynchronized discipline (lazy
    exposure at task boundaries is nearly free when steals are rare).

    The governor only {e decides}; publishing the decision to a worker
    without stranding an in-flight exposure request is
    [Sched_protocol.Policy_switch]'s job.

    Plain mutable state, single-writer: the pool runs one governor
    claim at a time (a CAS-guarded epoch counter in the scheduler). *)

type mode = Unsync | Handshake

(** The [Sched_protocol.Policy_switch] wire encoding of a mode. *)
val switch_mode : mode -> int

val mode_name : mode -> string

type config = {
  alpha : float;  (** EWMA smoothing factor, in (0, 1] *)
  lo : float;  (** smoothed pressure strictly below -> unsync *)
  hi : float;  (** smoothed pressure strictly above -> handshake *)
  epoch : int;  (** owner poll points between governor samples *)
}

val default_config : config

type t

(** @raise Invalid_argument if [config.epoch <= 0] (or transitively if
    [alpha]/[lo]/[hi] are invalid for {!Lcws_sync.Ewma}). *)
val create : ?config:config -> ?initial:mode -> unit -> t

val epoch : t -> int

(** Raw samples fed so far. *)
val samples : t -> int

(** Mode flips decided so far. *)
val switches : t -> int

(** Current target mode (the hysteresis gate's state). *)
val mode : t -> mode

(** Current smoothed pressure. *)
val smoothed : t -> float

(** Raw per-epoch pressure from delta counters; pure. *)
val pressure :
  steal_attempts:int -> tasks_run:int -> parked:int -> num_workers:int -> float

(** Feed one raw pressure value; returns the updated target mode. *)
val step : t -> float -> mode

(** Feed cumulative (monotone) pool counters; the governor keeps the
    previous sample and steps on the deltas. [parked] is a gauge. *)
val sample :
  t -> steal_attempts:int -> tasks_run:int -> parked:int -> num_workers:int -> mode
