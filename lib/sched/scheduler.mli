(** The work-stealing runtime: WS baseline plus the four LCWS variants.

    This is a shared-memory, multi-domain implementation of the paper's
    schedulers (Listings 1 and 3):

    - {!Ws}: classic work stealing over Chase-Lev deques (the Parlay
      baseline);
    - {!Uslcws}: user-space LCWS (Section 3) — the [targeted] flag is
      polled only at task boundaries, inside [get_task];
    - {!Signal}: signal-based LCWS (Section 4) — exposure requests are
      handled at constant-interval poll points ({!tick}), the OCaml
      equivalent of the paper's [pthread_kill]/handler pair (the handler
      body runs on the victim's own domain; see DESIGN.md §2.2). Uses the
      Section 4 signal-safe [pop_bottom];
    - {!Cons}: Conservative Exposure (Section 4.1.1) — expose only when
      at least two private tasks exist;
    - {!Half}: Expose Half (Section 4.1.2) — expose [round(r/2)] tasks.

    The scheduler is generic over the deque: each worker owns a
    {!Lcws_deque.Deque_intf.instance}, a first-class module paired with
    its state, so alternative deques ({!lace_impl}, {!private_impl}) plug
    into the identical runtime for apples-to-apples comparison.

    Typical use:
    {[
      let pool = Scheduler.Pool.create ~num_workers:4 ~variant:Signal () in
      let result = Scheduler.Pool.run pool (fun () ->
        let a, b = Scheduler.fork_join (fun () -> fib 30) (fun () -> fib 30) in
        a + b)
      in
      Scheduler.Pool.shutdown pool
    ]} *)

(** Raised out of a job (or a cancellation point inside one) when the
    running job was cancelled — by {!Pool.cancel}, by {!Pool.shutdown}
    racing an in-flight job, or by a fault plan's [cancel_at].

    Cancellation is cooperative and best-effort: it is observed at
    {!parallel_for} chunk boundaries, at fork/join joins, on the stolen
    execution path, and wherever user code calls {!check_cancel}. A job
    with none of those (one long sequential computation) is not
    cancellable. Cancellation never breaks the frame protocol: a
    cancelled child still completes its join frame — exceptionally — so
    joins cannot hang and the frame pool fully recycles. *)
exception Cancelled

type variant = Ws | Uslcws | Signal | Cons | Half

val all_variants : variant list

val lcws_variants : variant list

val variant_name : variant -> string

(** Short label used in the paper's plots: WS, User, Signal, Cons, Half. *)
val variant_label : variant -> string

val variant_of_string : string -> variant option

type task = unit -> unit

(** {2 Pluggable deques}

    A [deque_impl] is a first-class module satisfying
    {!Lcws_deque.Deque_intf.DEQUE} at element type [task]. *)

type deque_impl = task Lcws_deque.Deque_intf.impl

(** Chase-Lev (the WS baseline's deque). *)
val chase_lev_impl : deque_impl

(** The paper's split deque (public/private parts); default for all LCWS
    variants. *)
val split_deque_impl : deque_impl

(** Lace-style split deque (related work). Sequential specification:
    usable only with [num_workers:1]. *)
val lace_impl : deque_impl

(** Fully private deque with explicit top-popping (related work).
    Sequential specification: usable only with [num_workers:1]. *)
val private_impl : deque_impl

val all_deque_impls : deque_impl list

val deque_impl_name : deque_impl -> string

(** Recognizes the [deque_impl_name]s: "chase_lev", "split", "lace",
    "private" (case-insensitive). *)
val deque_impl_of_string : string -> deque_impl option

(** The paper's pairing: [Ws] on Chase-Lev, LCWS variants on the split
    deque. *)
val default_deque_impl : variant -> deque_impl

module Pool : sig
  type t

  (** [create ~num_workers ~variant ()] spawns [num_workers - 1] helper
      domains; the domain that calls {!run} acts as worker 0.

      @param seed deterministic seed for victim selection (default 42).
      @param deque_capacity per-worker deque slots (default 65536).
      @param steal_sleep_us microseconds helpers sleep after their backoff
        saturates in a failed work search — essential when domains
        outnumber cores (default 50).
      @param deque deque implementation for every worker (default:
        {!default_deque_impl} of the variant).
      @param trace event sink; pass a {!Lcws_trace.Trace.create}d tracer
        to record scheduler events. Defaults to {!Lcws_trace.Trace.null},
        which keeps every record call a single predictable branch.
      @param fault a deterministic fault plan ({!Lcws_fault.Fault.plan})
        to thread through the scheduler's poll points, signal handling,
        steal attempts and task execution. Omitted (the default), every
        fault hook compiles down to one load-and-branch on a plain bool
        — benchmarks cannot tell the difference.
      @raise Invalid_argument if [deque] is a sequential specification and
        [num_workers > 1], or if [trace] was created for fewer than
        [num_workers] workers. *)
  val create :
    ?seed:int64 ->
    ?deque_capacity:int ->
    ?steal_sleep_us:int ->
    ?deque:deque_impl ->
    ?trace:Lcws_trace.Trace.t ->
    ?fault:Lcws_fault.Fault.plan ->
    num_workers:int ->
    variant:variant ->
    unit ->
    t

  (** Execute a parallel job. The callback runs as worker 0 and may use
      {!fork_join}, {!parallel_for}, {!tick}. Exceptions raised by the job
      propagate: an exception in a forked branch — wherever it ran —
      reaches the [fork_join] caller, an exception in a [parallel_for]
      body cancels the loop's remaining chunks and re-raises at the loop
      (first failure wins), and both ultimately unwind out of [run] with
      every frame joined and every deque empty. Not reentrant; one job at
      a time. Any pending cancellation request is cleared on entry. *)
  val run : t -> (unit -> 'a) -> 'a

  (** Request cancellation of the in-flight job: its cancellation points
      raise {!Cancelled}, which unwinds out of {!run}. A no-op between
      jobs (the flag is cleared when the next job starts). Safe from any
      domain. *)
  val cancel : t -> unit

  (** Terminate and join the helper domains. Cancels the in-flight job
      (if any) first, waits for it to unwind, then drains any leftover
      deque tasks (counted in [drained_tasks]). Idempotent and safe to
      race from several domains: exactly one caller tears the pool down.
      The pool is unusable after. *)
  val shutdown : t -> unit

  val num_workers : t -> int

  val variant : t -> variant

  (** The trace sink passed at [create] ({!Lcws_trace.Trace.null} if
      none). *)
  val trace : t -> Lcws_trace.Trace.t

  (** Name of the deque implementation the pool runs on. *)
  val deque_name : t -> string

  (** Sum of all per-worker counters since the last [reset_metrics]. *)
  val metrics : t -> Lcws_sync.Metrics.t

  val per_worker_metrics : t -> Lcws_sync.Metrics.t array

  val reset_metrics : t -> unit

  (** {2 Quiescent-state introspection}

      Exact when no job is running (between {!run}s or after
      {!shutdown}); racy snapshots otherwise. The chaos harness asserts
      both are 0 after every run, including runs that ended in an
      injected exception or a cancellation. *)

  (** Tasks currently sitting in the workers' deques. *)
  val outstanding_tasks : t -> int

  (** Join frames currently acquired across all workers' frame pools; 0
      means every fork/join fully recycled its frame. *)
  val frames_in_use : t -> int

  (** {!Lcws_deque.Deque_intf.check_size_invariants} over every worker's
      deque; the error names the worker and the accessors that
      disagree. *)
  val check_deque_invariants : t -> (unit, string) result

  (** The fault plan passed at [create], if any. *)
  val fault_plan : t -> Lcws_fault.Fault.plan option
end

(** {2 Operations available inside [Pool.run]}

    Each also works outside a pool (sequential fallback), so library code
    can be written once. *)

(** [fork_join f g] runs [f] and [g] in parallel and returns both results.
    [g] is pushed on the calling worker's deque (stealable); [f] runs
    immediately (work-first). While waiting for a stolen [g], the worker
    helps: it executes tasks from its own deque or steals.

    The join state (result slot + completion word) comes from a
    per-worker pool of reusable frames rather than fresh allocations:
    when [g] was not stolen — the overwhelmingly common case — the
    worker pops it straight back and runs it inline without touching the
    frame's atomic at all, so an un-stolen fork/join costs no SC round
    trip and only a few words of short-lived allocation (the branch
    closures and, for [fork_join], the result tuple).

    Exception safety: if [g] raises — inline, or on a thief — the
    exception is carried through the frame and re-raised here after the
    join. If [f] raises, [g] is still joined (its outcome discarded) and
    [f]'s exception wins. Either way the frame is recycled and nothing
    is left in any deque. *)
val fork_join : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** Like {!fork_join} for unit branches, skipping the result boxing and
    tuple: with top-level (constant-closure) branches the un-stolen path
    allocates nothing. *)
val fork_join_unit : (unit -> unit) -> (unit -> unit) -> unit

(** [parallel_for ?grain ~start ~stop body] applies [body i] for
    [start <= i < stop] by {e lazy binary splitting}: the calling worker
    iterates its range sequentially one grain-sized chunk at a time
    (with a {!tick}-equivalent poll point per chunk — this is what makes
    exposure-request handling constant-time for loop-shaped
    computations), and forks the remaining right half off as a stealable
    task only when its deque is empty and other workers exist, i.e. when
    observed demand could not otherwise be met. An un-stolen loop on one
    worker therefore creates no tasks at all (versus O(n/grain) for the
    former eager splitting), and under load task creation is
    proportional to the number of steals. *)
val parallel_for : ?grain:int -> start:int -> stop:int -> (int -> unit) -> unit

(** Poll point: on signal-based variants, handle a pending work-exposure
    request (the body of the paper's signal handler). Constant time; a
    no-op on [Ws]/[Uslcws] and outside pools. Long sequential tasks
    should call this periodically. *)
val tick : unit -> unit

(** Worker id of the calling domain (0 when outside a pool). *)
val my_id : unit -> int

(** Has cancellation of the current job been requested? [false] outside
    a pool. Long sequential task bodies can poll this to stop early. *)
val cancelled : unit -> bool

(** Raise {!Cancelled} if {!cancelled}[ ()] — an explicit cancellation
    point for long sequential sections, pairing with {!tick}. *)
val check_cancel : unit -> unit

(** Number of workers of the enclosing pool (1 outside). *)
val num_workers : unit -> int
