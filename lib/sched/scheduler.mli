(** The work-stealing runtime: WS baseline plus the four LCWS variants.

    This is a shared-memory, multi-domain implementation of the paper's
    schedulers (Listings 1 and 3):

    - {!Ws}: classic work stealing over Chase-Lev deques (the Parlay
      baseline);
    - {!Uslcws}: user-space LCWS (Section 3) — the [targeted] flag is
      polled only at task boundaries, inside [get_task];
    - {!Signal}: signal-based LCWS (Section 4) — exposure requests are
      handled at constant-interval poll points ({!tick}), the OCaml
      equivalent of the paper's [pthread_kill]/handler pair (the handler
      body runs on the victim's own domain; see DESIGN.md §2.2). Uses the
      Section 4 signal-safe [pop_bottom];
    - {!Cons}: Conservative Exposure (Section 4.1.1) — expose only when
      at least two private tasks exist;
    - {!Half}: Expose Half (Section 4.1.2) — expose [round(r/2)] tasks.

    The scheduler is generic over the deque: each worker owns a
    {!Lcws_deque.Deque_intf.instance}, a first-class module paired with
    its state, so alternative deques ({!lace_impl}, {!private_impl}) plug
    into the identical runtime for apples-to-apples comparison.

    Typical use:
    {[
      let pool = Scheduler.Pool.create ~num_workers:4 ~variant:Signal () in
      let result = Scheduler.Pool.run pool (fun () ->
        let a, b = Scheduler.fork_join (fun () -> fib 30) (fun () -> fib 30) in
        a + b)
      in
      Scheduler.Pool.shutdown pool
    ]} *)

(** Raised out of a job (or a cancellation point inside one) when the
    running job was cancelled — by {!Pool.cancel}, by {!Pool.shutdown}
    racing an in-flight job, or by a fault plan's [cancel_at].

    Cancellation is cooperative and best-effort: it is observed at
    {!parallel_for} chunk boundaries, at fork/join joins, on the stolen
    execution path, and wherever user code calls {!check_cancel}. A job
    with none of those (one long sequential computation) is not
    cancellable. Cancellation never breaks the frame protocol: a
    cancelled child still completes its join frame — exceptionally — so
    joins cannot hang and the frame pool fully recycles. *)
exception Cancelled

type variant = Ws | Uslcws | Signal | Cons | Half

val all_variants : variant list

val lcws_variants : variant list

val variant_name : variant -> string

(** Short label used in the paper's plots: WS, User, Signal, Cons, Half. *)
val variant_label : variant -> string

val variant_of_string : string -> variant option

type task = unit -> unit

(** {2 The effects-based task core}

    Every task a worker executes runs inside an effect handler (one
    static handler, installed by the worker run loop — no per-task
    allocation, so the fork/join fast path keeps its minor-word budget).
    Code running on a worker may perform:

    - [Fork t]: push [t] on the current worker's deque, continue
      immediately. The primitive {!fork_join} is sugar over this shape.
    - [Suspend register]: capture the current continuation as a parked
      {e fiber} and return the worker to its run loop. [register] is
      called with a [resume] closure that schedules the fiber's
      resumption; it is one-shot (extra calls are silently ignored) and
      safe from any thread — from a worker of the same pool it pushes
      the resumption on that worker's deque, from anywhere else it goes
      through the external-submission injector that workers drain at
      their steal points.

    Suspension is only legal at scheduler depth 0: inside a
    {!fork_join} branch or a {!parallel_for} chunk the continuation
    would close over worker-local scheduler state (the join-frame pool,
    the loop scope) and cannot migrate, so a [Suspend] performed there
    is refused with [Invalid_argument] raised at the perform site.
    {!Future.await} and {!Ops.suspend} degrade gracefully instead:
    at depth > 0 they {e help} (run other tasks on the spot) until
    resumed, with the same observable semantics. *)

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Fork : task -> unit Effect.t

(** {2 Pluggable deques}

    A [deque_impl] is a first-class module satisfying
    {!Lcws_deque.Deque_intf.DEQUE} at element type [task]. *)

type deque_impl = task Lcws_deque.Deque_intf.impl

(** Chase-Lev (the WS baseline's deque). *)
val chase_lev_impl : deque_impl

(** The paper's split deque (public/private parts); default for all LCWS
    variants. *)
val split_deque_impl : deque_impl

(** Lace-style split deque (related work). Sequential specification:
    usable only with [num_workers:1]. *)
val lace_impl : deque_impl

(** Fully private deque with explicit top-popping (related work).
    Sequential specification: usable only with [num_workers:1]. *)
val private_impl : deque_impl

val all_deque_impls : deque_impl list

val deque_impl_name : deque_impl -> string

(** Recognizes the [deque_impl_name]s: "chase_lev", "split", "lace",
    "private" (case-insensitive). *)
val deque_impl_of_string : string -> deque_impl option

(** The paper's pairing: [Ws] on Chase-Lev, LCWS variants on the split
    deque. *)
val default_deque_impl : variant -> deque_impl

(** {2 Futures}

    A first-class handle on an asynchronous computation. The state
    machine is one atomic word: [Pending waiters] until exactly one
    completion — the computation's own outcome, or a {!cancel} — CASes
    in [Done result] and wakes every waiter.

    Created by {!spawn} (from inside a job) or {!Pool.submit} (from
    anywhere, including non-worker threads); awaited from anywhere:

    - a fiber at suspension-legal depth parks its continuation and
      frees its worker;
    - a worker inside a [fork_join] branch or loop chunk helps with
      other tasks until the future settles;
    - an external thread blocks — and, when the pool has no job in
      flight, elects itself the driver of worker 0 so progress never
      depends on a [Pool.run] being active (essential for
      single-worker pools, which have no helper domains). *)
module Future : sig
  type 'a t

  (** Start [f] as a fiber on the calling worker's pool: the task is
      pushed on the calling worker's deque, stealable like any other.
      Outside a pool, [f] runs immediately (sequential fallback) and
      the future is born settled.

      Futures spawned inside a job should be awaited (or cancelled)
      before the job returns; a spawned task still sitting in a deque
      when the pool shuts down is drained, its future never
      completing. *)
  val spawn : (unit -> 'a) -> 'a t

  (** Wait for the future's result; re-raises its exception. See the
      module header for what "wait" means in each context. *)
  val await : 'a t -> 'a

  (** [Some result] if settled, [None] while pending; never blocks. *)
  val try_await : 'a t -> ('a, exn) result option

  (** Request cancellation: completes the future {e now} with
      {!Cancelled} (if it was still pending — first completion wins)
      and raises the fiber's cancellation flag, which the running
      computation observes at its cancellation points
      ({!parallel_for} chunk boundaries, {!Ops.cancelled} /
      {!Ops.check_cancel}) and unwinds. Cancellation of the
      computation itself is therefore cooperative and best-effort,
      exactly like the PR 5 loop-scope protocol it rides. *)
  val cancel : 'a t -> unit

  (** Both results, or the first error (left-to-right priority, like
      {!fork_join}). *)
  val both : 'a t -> 'b t -> ('a * 'b) t

  (** Whichever settles first wins; the loser is {!cancel}led. *)
  val first : 'a t -> 'a t -> 'a t

  (** All results in order, or the first error in list order. An empty
      list is already settled with [[]]. *)
  val all : 'a t list -> 'a list t
end

module Pool : sig
  type t

  (** [create ~num_workers ~variant ()] spawns [num_workers - 1] helper
      domains; the domain that calls {!run} acts as worker 0.

      @param seed deterministic seed for victim selection (default 42).
      @param deque_capacity per-worker deque slots (default 65536).
      @param deque deque implementation for every worker (default:
        {!default_deque_impl} of the variant).
      @param steal_policy victim-selection policy
        ({!Lcws_sync.Victim_policy.policy}, default [Near_first]). On
        the default flat topology every victim is at the same distance,
        so [Near_first] degenerates to uniform probing plus the
        last-successful-victim affinity re-probe; pass [Uniform] for
        the exact classical stream (byte-compatible with the scheduler
        before this knob existed) when running A/B comparisons.
      @param topology square distance matrix: [topology.(i).(j)] is the
        migration-cost multiplier of worker [i] stealing from worker
        [j]. Zero exactly on the diagonal, non-negative elsewhere
        (validated). Defaults to {!Lcws_sync.Victim_policy.flat};
        {!Lcws_sync.Victim_policy.clustered} builds the multi-socket
        shape. Drives [Near_first] probing and the
        [near_steals]/[far_steals] metrics.
      @param steal_batch upper bound on tasks migrated per steal
        episode (default 8, must be >= 1). A thief's [steal_many] takes
        at most [min steal_batch (ceil (exposed / 2))] tasks — the
        classical steal-half rule capped by the batch knob. [1] gives
        classical steal-one for A/B runs. The first task is run (or
        kept) by the thief; the rest are pushed to its own deque
        oldest-first, so program order is preserved for later thieves.
      @param trace event sink; pass a {!Lcws_trace.Trace.create}d tracer
        to record scheduler events. Defaults to {!Lcws_trace.Trace.null},
        which keeps every record call a single predictable branch.
      @param fault a deterministic fault plan ({!Lcws_fault.Fault.plan})
        to thread through the scheduler's poll points, signal handling,
        steal attempts and task execution. Omitted (the default), every
        fault hook compiles down to one load-and-branch on a plain bool
        — benchmarks cannot tell the difference.
      @param adaptive elastic exposure policy (default false): a
        governor ({!Policy_governor}) periodically samples the pool's
        steal pressure and switches each worker online between the
        unsynchronized discipline (lazy task-boundary exposure, [Uslcws])
        and the signal handshake (the pool's own signal variant, or
        [Signal] for a [Uslcws] pool). Workers start in the mode
        matching [variant], so an adaptive pool behaves exactly like
        its static counterpart until the first accepted switch. The
        switch itself is the checker-verified
        [Sched_protocol.Policy_switch] publish/ack protocol — a thief's
        in-flight exposure request is never stranded by a concurrent
        switch. Requires a synchronization-light [variant] (not [Ws]).
      @param adaptive_config governor thresholds and sampling epoch
        (default {!Policy_governor.default_config}; ignored unless
        [adaptive]).
      @raise Invalid_argument if [deque] is a sequential specification and
        [num_workers > 1], if [trace] was created for fewer than
        [num_workers] workers, or if [adaptive] is requested with
        [variant = Ws]. *)
  val create :
    ?seed:int64 ->
    ?deque_capacity:int ->
    ?deque:deque_impl ->
    ?trace:Lcws_trace.Trace.t ->
    ?fault:Lcws_fault.Fault.plan ->
    ?steal_policy:Lcws_sync.Victim_policy.policy ->
    ?topology:int array array ->
    ?steal_batch:int ->
    ?adaptive:bool ->
    ?adaptive_config:Policy_governor.config ->
    num_workers:int ->
    variant:variant ->
    unit ->
    t

  (** Execute a parallel job. The callback runs as worker 0's root
      fiber — under the effect handler, so it may use the whole {!Ops}
      surface including {!Future.await} at top level (the root parks
      and worker 0 keeps scheduling until its continuation completes,
      wherever it resumed). Exceptions raised by the job propagate: an
      exception in a forked branch — wherever it ran — reaches the
      [fork_join] caller, an exception in a [parallel_for] body cancels
      the loop's remaining chunks and re-raises at the loop (first
      failure wins), and both ultimately unwind out of [run] with every
      frame joined and every deque empty. One job at a time; any
      pending cancellation request is cleared on entry.

      Not reentrant: calling [run] from one of this pool's own workers
      (e.g. from a submitted task) raises [Invalid_argument]
      immediately — the calling domain already is a worker, and
      impersonating worker 0 on top of it would hand two domains the
      same deque. Use {!Future.spawn} or {!submit} there instead.
      Nesting across {e distinct} pools is fine. *)
  val run : t -> (unit -> 'a) -> 'a

  (** [submit pool f] schedules [f] as a fiber on [pool] from any
      thread — a worker of this pool (direct deque push), a worker of
      another pool, or a plain non-worker thread (MPSC injector,
      drained by workers at their steal points; parked helpers are
      woken). No [run] needs to be active: helpers serve the pool
      while submitted futures are outstanding, and on a single-worker
      pool an external {!Future.await} drives worker 0 itself. Raises
      [Invalid_argument] after {!shutdown}; tasks still in the injector
      at shutdown have their futures completed with {!Cancelled}. *)
  val submit : t -> (unit -> 'a) -> 'a Future.t

  (** Request cancellation of the in-flight job: its cancellation points
      raise {!Cancelled}, which unwinds out of {!run}. A no-op between
      jobs (the flag is cleared when the next job starts). Safe from any
      domain. *)
  val cancel : t -> unit

  (** Terminate and join the helper domains. Cancels the in-flight job
      (if any) first, waits for it to unwind, then drains any leftover
      deque tasks (counted in [drained_tasks]). Idempotent and safe to
      race from several domains: exactly one caller tears the pool down.
      The pool is unusable after. *)
  val shutdown : t -> unit

  val num_workers : t -> int

  val variant : t -> variant

  (** Was the pool created with [?adaptive:true]? *)
  val adaptive : t -> bool

  (** Racy snapshot of each worker's current exposure mode (exact
      between jobs). On a static pool, derived from the variant. *)
  val worker_modes : t -> Policy_governor.mode array

  (** The trace sink passed at [create] ({!Lcws_trace.Trace.null} if
      none). *)
  val trace : t -> Lcws_trace.Trace.t

  (** Name of the deque implementation the pool runs on. *)
  val deque_name : t -> string

  (** Sum of all per-worker counters since the last [reset_metrics]. *)
  val metrics : t -> Lcws_sync.Metrics.t

  val per_worker_metrics : t -> Lcws_sync.Metrics.t array

  val reset_metrics : t -> unit

  (** {2 Quiescent-state introspection}

      Exact when no job is running (between {!run}s or after
      {!shutdown}); racy snapshots otherwise. The chaos harness asserts
      both are 0 after every run, including runs that ended in an
      injected exception or a cancellation. *)

  (** Tasks currently sitting in the workers' deques. *)
  val outstanding_tasks : t -> int

  (** Join frames currently acquired across all workers' frame pools; 0
      means every fork/join fully recycled its frame. *)
  val frames_in_use : t -> int

  (** {!Lcws_deque.Deque_intf.check_size_invariants} over every worker's
      deque; the error names the worker and the accessors that
      disagree. *)
  val check_deque_invariants : t -> (unit, string) result

  (** The fault plan passed at [create], if any. *)
  val fault_plan : t -> Lcws_fault.Fault.plan option
end

(** {2 The ambient operations: [Ops]}

    The documented surface for code running inside a job (or anywhere —
    each operation has a sensible sequential fallback outside a pool, so
    library code can be written once). The historical bare top-level
    names below are thin deprecated aliases of these. *)

module Ops : sig
  (** [fork_join f g] runs [f] and [g] in parallel and returns both
      results. [g] is pushed on the calling worker's deque (stealable);
      [f] runs immediately (work-first). While waiting for a stolen
      [g], the worker helps: it executes tasks from its own deque or
      steals. The join state comes from a per-worker pool of reusable
      frames; when [g] was not stolen — the overwhelmingly common case
      — the worker pops it straight back and runs it inline without
      touching the frame's atomic at all. Exception safety: if [g]
      raises — inline, or on a thief — the exception is carried through
      the frame and re-raised here after the join; if [f] raises, [g]
      is still joined (its outcome discarded) and [f]'s exception
      wins. *)
  val fork_join : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

  (** Like {!fork_join} for unit branches, skipping the result boxing
      and tuple: with top-level (constant-closure) branches the
      un-stolen path allocates nothing. *)
  val fork_join_unit : (unit -> unit) -> (unit -> unit) -> unit

  (** [parallel_for ?grain ~start ~stop body] applies [body i] for
      [start <= i < stop] by lazy binary splitting: the calling worker
      iterates one grain-sized chunk at a time (with a {!tick} poll per
      chunk) and forks the remaining right half off as a stealable task
      only when observed demand asks for it. Chunk boundaries are
      cancellation points for both the pool-level flag and the
      enclosing fiber's ({!Future.cancel}). *)
  val parallel_for : ?grain:int -> start:int -> stop:int -> (int -> unit) -> unit

  (** Poll point: on signal-based variants, handle a pending
      work-exposure request (the body of the paper's signal handler).
      Constant time; a no-op on [Ws]/[Uslcws] and outside pools. Long
      sequential tasks should call this periodically. *)
  val tick : unit -> unit

  (** Worker id of the calling domain (0 when outside a pool). *)
  val my_id : unit -> int

  (** Has cancellation been requested — of the current job
      ({!Pool.cancel}), or of the enclosing fiber ({!Future.cancel})?
      [false] outside a pool. Long sequential task bodies can poll this
      to stop early. *)
  val cancelled : unit -> bool

  (** Raise {!Cancelled} if {!cancelled}[ ()] — an explicit
      cancellation point for long sequential sections, pairing with
      {!tick}. *)
  val check_cancel : unit -> unit

  (** Number of workers of the enclosing pool (1 outside). *)
  val num_workers : unit -> int

  (** [suspend register] parks the current fiber; [register] receives
      the one-shot [resume] closure (see the effects section above).
      At suspension-illegal depth the worker helps until resumed
      instead of parking; outside a pool the calling thread blocks on
      a condvar until [resume] fires. *)
  val suspend : ((unit -> unit) -> unit) -> unit

  (** [fork t] pushes [t] on the calling worker's deque — fire and
      forget, join it yourself (e.g. through a {!Future}). Runs [t]
      immediately outside a pool. *)
  val fork : task -> unit
end

(** {2 Deprecated bare aliases}

    The pre-[Ops] ambient surface, kept so existing code keeps
    compiling. New code should use {!Ops} (in-tree code already does;
    CI builds the examples with deprecation warnings as errors). *)

val fork_join : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
[@@ocaml.deprecated "Use Scheduler.Ops.fork_join"]

val fork_join_unit : (unit -> unit) -> (unit -> unit) -> unit
[@@ocaml.deprecated "Use Scheduler.Ops.fork_join_unit"]

val parallel_for : ?grain:int -> start:int -> stop:int -> (int -> unit) -> unit
[@@ocaml.deprecated "Use Scheduler.Ops.parallel_for"]

val tick : unit -> unit [@@ocaml.deprecated "Use Scheduler.Ops.tick"]

val my_id : unit -> int [@@ocaml.deprecated "Use Scheduler.Ops.my_id"]

val cancelled : unit -> bool [@@ocaml.deprecated "Use Scheduler.Ops.cancelled"]

val check_cancel : unit -> unit [@@ocaml.deprecated "Use Scheduler.Ops.check_cancel"]

val num_workers : unit -> int [@@ocaml.deprecated "Use Scheduler.Ops.num_workers"]

