(** Counter profile measured on the *real* multicore engine (not the
    simulator): runs a subset of the PBBS-like suite under every
    scheduler variant and reports synchronization-operation ratios
    against WS. This validates that the simulator's counter model matches
    the actual lock-free implementations (Figure 3a/3b's shape measured
    for real). Wall-clock times are printed for information only — this
    container has a single core, so they do not measure parallel
    speedup. *)

(** [run ppf] with worker counts [ps] (default [2; 4]) and problem
    [scale] (default 0.25). *)
val run : ?ps:int list -> ?scale:float -> Format.formatter -> unit
