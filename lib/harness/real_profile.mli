(** Counter profile measured on the *real* multicore engine (not the
    simulator): runs a subset of the PBBS-like suite under every
    scheduler variant and reports synchronization-operation ratios
    against WS. This validates that the simulator's counter model matches
    the actual lock-free implementations (Figure 3a/3b's shape measured
    for real). Wall-clock times are printed for information only — this
    container has a single core, so they do not measure parallel
    speedup. *)

type measurement = {
  m : Lcws_sync.Metrics.t;  (** summed per-worker counters *)
  seconds : float;
  checked : bool;
}

(** Run one 〈bench, instance〉 configuration on a fresh pool.
    [deque] and [trace] are forwarded to
    {!Lcws_sched.Scheduler.Pool.create} — pass a live
    {!Lcws_trace.Trace.t} to record scheduler events for export or
    latency percentiles. *)
val run_config :
  ?deque:Lcws_sched.Scheduler.deque_impl ->
  ?trace:Lcws_trace.Trace.t ->
  variant:Lcws_sched.Scheduler.variant ->
  p:int ->
  scale:float ->
  Lcws_pbbs.Suite_types.bench ->
  Lcws_pbbs.Suite_types.instance ->
  measurement

(** [run ppf] with worker counts [ps] (default [2; 4]) and problem
    [scale] (default 0.25). *)
val run : ?ps:int list -> ?scale:float -> Format.formatter -> unit
