(** Simulation matrices: every 〈config, policy, P〉 run needed by the
    paper's figures, computed once per machine and shared between figure
    printers. *)

module E = Lcws_sim.Engine
module M = Lcws_sim.Cost_model
module W = Lcws_sim.Workloads

type matrix

(** [build ~machine ~policies ~ps ~scale ()] simulates every workload
    configuration under every policy and worker count. [scale] shrinks
    problem sizes (1.0 = paper-shaped defaults). [quantum] is the work
    chunk in cycles (larger = faster, coarser signal latency). *)
val build :
  machine:M.t ->
  policies:E.policy list ->
  ps:int list ->
  scale:float ->
  ?quantum:int ->
  ?progress:bool ->
  unit ->
  matrix

(** Simulate one workload configuration with a live event trace
    ({!Lcws_trace.Trace.t}, created for at least [p] workers); timestamps
    are virtual machine cycles. Used by the bench CLI's trace export.
    @raise Invalid_argument on an unknown 〈bench, instance〉. *)
val run_traced :
  machine:M.t ->
  policy:E.policy ->
  p:int ->
  ?quantum:int ->
  scale:float ->
  bench:string ->
  instance:string ->
  trace:Lcws_trace.Trace.t ->
  unit ->
  E.stats

val machine : matrix -> M.t

val ps : matrix -> int list

val configs : matrix -> (string * string) list

val get : matrix -> bench:string -> instance:string -> policy:E.policy -> p:int -> E.stats

(** [speedup m ~bench ~instance ~policy ~p] — WS makespan divided by the
    policy's makespan on the same config and P (>1 = policy wins). *)
val speedup : matrix -> bench:string -> instance:string -> policy:E.policy -> p:int -> float

(** All per-config speedups of [policy] at [p]. *)
val speedups_at : matrix -> policy:E.policy -> p:int -> float list

(** Per-config ratio of an arbitrary counter between [policy] and WS. *)
val ratio_vs :
  matrix -> policy:E.policy -> baseline:E.policy -> p:int -> (E.stats -> int) -> float list

(** Percentage (per config) of exposed work not stolen under [policy]. *)
val unstolen_at : matrix -> policy:E.policy -> p:int -> float list

(** Per-config ratio of unstolen-exposed fractions between two policies
    (skipping configs where either exposes nothing). *)
val unstolen_ratio :
  matrix -> policy:E.policy -> baseline:E.policy -> p:int -> float list

(** The whole matrix as CSV (one row per run), for external plotting. *)
val to_csv : matrix -> string

val csv_header : string
