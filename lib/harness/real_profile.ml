module S = Lcws_sched.Scheduler
module T = Lcws_pbbs.Suite_types
module Metrics = Lcws_sync.Metrics

type measurement = { m : Metrics.t; seconds : float; checked : bool }

let run_config ?deque ?trace ~variant ~p ~scale (bench : T.bench) (inst : T.instance) =
  let prepared = inst.T.prepare ~scale in
  let pool = S.Pool.create ?deque ?trace ~num_workers:p ~variant () in
  let t0 = Unix.gettimeofday () in
  S.Pool.run pool prepared.T.run;
  let seconds = Unix.gettimeofday () -. t0 in
  let m = S.Pool.metrics pool in
  S.Pool.shutdown pool;
  let checked = prepared.T.check () in
  ignore bench;
  { m; seconds; checked }

let run ?(ps = [ 2; 4 ]) ?(scale = 0.25) ppf =
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf
    "Real-engine profile (multicore OCaml domains; counters exact, wall time@.\
     informational only on this host). Suite subset, scale=%.2f@."
    scale;
  Format.fprintf ppf "%s@." (String.make 78 '-');
  let quick = Lcws_pbbs.Suite.quick in
  List.iter
    (fun p ->
      Format.fprintf ppf "@.P = %d workers@." p;
      Format.fprintf ppf "  %-10s %10s %10s %9s %9s %8s %8s %6s@." "variant" "fences" "cas"
        "steals" "attempts" "exposed" "signals" "time";
      let ws_totals = ref None in
      List.iter
        (fun variant ->
          let total = Metrics.create () in
          let seconds = ref 0. in
          let all_ok = ref true in
          List.iter
            (fun (b : T.bench) ->
              List.iter
                (fun inst ->
                  let r = run_config ~variant ~p ~scale b inst in
                  Metrics.add total r.m;
                  seconds := !seconds +. r.seconds;
                  if not r.checked then all_ok := false)
                b.T.instances)
            quick;
          if variant = S.Ws then ws_totals := Some (Metrics.copy total);
          let ratio get =
            match !ws_totals with
            | Some ws when get ws > 0 -> Printf.sprintf "%.4f" (Metrics.ratio (get total) (get ws))
            | _ -> "-"
          in
          Format.fprintf ppf "  %-10s %10d %10d %9d %9d %8d %8d %5.2fs %s%s@."
            (S.variant_label variant) total.Metrics.fences total.Metrics.cas_ops
            total.Metrics.steals total.Metrics.steal_attempts total.Metrics.exposed_tasks
            total.Metrics.signals_sent !seconds
            (if variant = S.Ws then ""
             else
               Printf.sprintf "(fences/WS=%s cas/WS=%s)"
                 (ratio (fun m -> m.Metrics.fences))
                 (ratio (fun m -> m.Metrics.cas_ops)))
            (if !all_ok then "" else "  CHECK FAILED"))
        S.all_variants)
    ps
