(** Printers that regenerate every table and figure of the paper's
    evaluation as text (box plots become five-number summaries plus an
    ASCII box strip). Each function documents which paper artefact it
    reproduces; EXPERIMENTS.md records paper-vs-measured. *)

module E = Lcws_sim.Engine

(** Matrices for the three machines (built lazily, shared by figures).
    [scale] shrinks workloads; [quantum] is the sim work chunk. *)
type ctx

val make_ctx : ?scale:float -> ?quantum:int -> ?progress:bool -> unit -> ctx

(** The cached per-machine experiment matrix (built on first use) — for
    CSV export and custom analyses. *)
val machine_matrix : ctx -> Lcws_sim.Cost_model.t -> Experiments.matrix

(** Table 1: the three evaluation machines (simulated profiles). *)
val table1 : Format.formatter -> unit

(** Figure 3: profile of USLCWS vs WS on AMD32 (fences, CAS, successful
    steals, exposed-but-unstolen), P ∈ {2,…,64}. *)
val fig3 : ctx -> Format.formatter -> unit

(** Figure 4: box plots of USLCWS speedup wrt WS, per machine and P. *)
val fig4 : ctx -> Format.formatter -> unit

(** Figure 5: average speedups wrt WS of all four variants, per machine
    and P. *)
val fig5 : ctx -> Format.formatter -> unit

(** Figure 6: percentage of configurations with speedup > 1. *)
val fig6 : ctx -> Format.formatter -> unit

(** Figure 7: box plots of signal-based LCWS speedup wrt WS. *)
val fig7 : ctx -> Format.formatter -> unit

(** Figure 8: profile of signal-based LCWS vs WS and vs USLCWS, AMD32. *)
val fig8 : ctx -> Format.formatter -> unit

(** Section 5.1/5.2 headline statistics (best/worst configurations,
    gain buckets). *)
val summary : ctx -> Format.formatter -> unit

(** Related-work ablation (beyond the paper's figures): Lace and private
    deques against WS/LCWS on AMD32. *)
val ablation : ctx -> Format.formatter -> unit

(** Design-choice sensitivity sweeps (beyond the paper): signal latency
    vs Signal's speedup, fence cost vs USLCWS's low-P gains, exposure
    policies at full core count. *)
val sensitivity : ctx -> Format.formatter -> unit

(** All of the above in paper order. *)
val all : ctx -> Format.formatter -> unit
