(** Descriptive statistics for the figure reproductions: the paper's box
    plots become five-number summaries printed as rows. *)

type summary = {
  count : int;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
  mean : float;
}

(** Five-number summary + mean. Raises [Invalid_argument] on []. *)
val summarize : float list -> summary

val mean : float list -> float

val geomean : float list -> float

(** Fraction (0..1) of values strictly greater than [threshold]. *)
val fraction_above : float -> float list -> float

(** Render "min q1 med q3 max" with [digits] decimals. *)
val pp_summary : ?digits:int -> Format.formatter -> summary -> unit

(** A crude inline box plot over [lo, hi], e.g. [|---[##|##]---|]. *)
val sparkbox : lo:float -> hi:float -> summary -> string
