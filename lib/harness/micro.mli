(** Bechamel microbenchmarks of the deque operations, measured on the
    host CPU. These demonstrate that the split deque's local operations
    really are cheaper than Chase-Lev's: OCaml's [Atomic.set] issues the
    same full barrier the C++ WS deque needs in [take], while the split
    deque's private path is fence-free. *)

(** Run all deque microbenchmarks and print one line per operation with
    the OLS-estimated ns/op. *)
val run : Format.formatter -> unit
