module E = Lcws_sim.Engine
module M = Lcws_sim.Cost_model
module W = Lcws_sim.Workloads

type key = { kb : string; ki : string; kpol : E.policy; kp : int }

type matrix = {
  mmachine : M.t;
  mps : int list;
  mconfigs : (string * string) list;
  tbl : (key, E.stats) Hashtbl.t;
}

let build ~machine ~policies ~ps ~scale ?(quantum = 400) ?(progress = false) () =
  let tbl = Hashtbl.create 4096 in
  List.iter
    (fun (c : W.config) ->
      let comp = c.W.build ~scale in
      List.iter
        (fun p ->
          List.iter
            (fun policy ->
              let stats = E.run ~machine ~policy ~p ~quantum comp in
              Hashtbl.replace tbl { kb = c.W.bench; ki = c.W.instance; kpol = policy; kp = p } stats)
            policies)
        ps;
      if progress then Printf.eprintf "#%!")
    W.all;
  if progress then Printf.eprintf "\n%!";
  { mmachine = machine; mps = ps; mconfigs = W.names; tbl }

let run_traced ~machine ~policy ~p ?(quantum = 400) ~scale ~bench ~instance ~trace () =
  match W.find ~bench ~instance with
  | None ->
      invalid_arg (Printf.sprintf "Experiments.run_traced: unknown workload %s/%s" bench instance)
  | Some c -> E.run ~machine ~policy ~p ~quantum ~trace (c.W.build ~scale)

let machine m = m.mmachine

let ps m = m.mps

let configs m = m.mconfigs

let get m ~bench ~instance ~policy ~p =
  match Hashtbl.find_opt m.tbl { kb = bench; ki = instance; kpol = policy; kp = p } with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Experiments.get: no run for %s/%s %s P=%d" bench instance
           (E.policy_name policy) p)

let speedup m ~bench ~instance ~policy ~p =
  let ws = get m ~bench ~instance ~policy:E.Ws ~p in
  let v = get m ~bench ~instance ~policy ~p in
  float_of_int ws.E.makespan /. float_of_int (max 1 v.E.makespan)

let speedups_at m ~policy ~p =
  List.map (fun (bench, instance) -> speedup m ~bench ~instance ~policy ~p) m.mconfigs

let ratio_vs m ~policy ~baseline ~p field =
  List.filter_map
    (fun (bench, instance) ->
      let b = get m ~bench ~instance ~policy:baseline ~p in
      let v = get m ~bench ~instance ~policy ~p in
      let den = field b in
      if den = 0 then None else Some (float_of_int (field v) /. float_of_int den))
    m.mconfigs

let csv_header =
  "machine,bench,instance,policy,p,makespan,speedup_vs_ws,total_work,fences,cas,steal_attempts,steals,exposed,taken_back,signals_sent,signals_handled,tasks,idle_cycles"

let to_csv m =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (bench, instance) ->
      List.iter
        (fun p ->
          List.iter
            (fun policy ->
              match
                Hashtbl.find_opt m.tbl { kb = bench; ki = instance; kpol = policy; kp = p }
              with
              | None -> ()
              | Some s ->
                  let sp = speedup m ~bench ~instance ~policy ~p in
                  Buffer.add_string buf
                    (Printf.sprintf "%s,%s,%s,%s,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n"
                       m.mmachine.M.name bench instance (E.policy_name policy) p s.E.makespan sp
                       s.E.total_work s.E.fences s.E.cas s.E.steal_attempts s.E.steals s.E.exposed
                       s.E.taken_back s.E.signals_sent s.E.signals_handled s.E.tasks
                       s.E.idle_cycles))
            [ E.Ws; E.Uslcws; E.Signal; E.Cons; E.Half; E.Lace; E.Private_deques ])
        m.mps)
    m.mconfigs;
  Buffer.contents buf

let unstolen_fraction (s : E.stats) =
  if s.E.exposed = 0 then None
  else Some (float_of_int (E.exposed_not_stolen s) /. float_of_int s.E.exposed)

let unstolen_ratio m ~policy ~baseline ~p =
  List.filter_map
    (fun (bench, instance) ->
      let v = get m ~bench ~instance ~policy ~p in
      let b = get m ~bench ~instance ~policy:baseline ~p in
      match (unstolen_fraction v, unstolen_fraction b) with
      | Some a, Some c when c > 0. -> Some (a /. c)
      | _ -> None)
    m.mconfigs

let unstolen_at m ~policy ~p =
  List.filter_map
    (fun (bench, instance) ->
      let v = get m ~bench ~instance ~policy ~p in
      if v.E.exposed = 0 then None
      else Some (float_of_int (E.exposed_not_stolen v) /. float_of_int v.E.exposed))
    m.mconfigs
