type summary = {
  count : int;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
  mean : float;
}

(* Linear-interpolation quantile on a sorted array (type 7, the common
   spreadsheet/R default). *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | l ->
      let logs = List.map (fun x -> log (Float.max x 1e-300)) l in
      exp (mean logs)

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty"
  | l ->
      let a = Array.of_list l in
      Array.sort Float.compare a;
      let n = Array.length a in
      {
        count = n;
        min = a.(0);
        q1 = quantile a 0.25;
        median = quantile a 0.5;
        q3 = quantile a 0.75;
        max = a.(n - 1);
        mean = mean l;
      }

let fraction_above threshold = function
  | [] -> 0.
  | l ->
      let n = List.length l in
      let k = List.length (List.filter (fun x -> x > threshold) l) in
      float_of_int k /. float_of_int n

let pp_summary ?(digits = 3) ppf s =
  Format.fprintf ppf "%.*f %.*f %.*f %.*f %.*f" digits s.min digits s.q1 digits s.median digits
    s.q3 digits s.max

let sparkbox ~lo ~hi s =
  let width = 41 in
  let clamp x = Float.min hi (Float.max lo x) in
  let pos x =
    let f = (clamp x -. lo) /. (hi -. lo +. 1e-12) in
    min (width - 1) (max 0 (int_of_float (f *. float_of_int (width - 1))))
  in
  let buf = Bytes.make width ' ' in
  for i = pos s.min to pos s.max do
    Bytes.set buf i '-'
  done;
  for i = pos s.q1 to pos s.q3 do
    Bytes.set buf i '#'
  done;
  Bytes.set buf (pos s.median) '|';
  Bytes.to_string buf
