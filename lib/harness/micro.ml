open Bechamel
module Metrics = Lcws_sync.Metrics
module Split_deque = Lcws_deque.Split_deque
module Chase_lev = Lcws_deque.Chase_lev

let nothing () = ()

(* Each staged function performs one push+pop cycle (or a full
   expose/steal round trip), so the OLS estimate is ns per cycle. *)
let tests () =
  let m = Metrics.create () in
  let cl = Chase_lev.create ~capacity:1024 ~dummy:nothing ~metrics:m () in
  let sd = Split_deque.create ~capacity:1024 ~dummy:nothing ~metrics:m () in
  let sd_pub = Split_deque.create ~capacity:1024 ~dummy:nothing ~metrics:m () in
  let thief = Metrics.create () in
  [
    Test.make ~name:"chase_lev.push_pop"
      (Staged.stage (fun () ->
           Chase_lev.push_bottom cl nothing;
           ignore (Chase_lev.pop_bottom cl)));
    Test.make ~name:"split.push_pop_private"
      (Staged.stage (fun () ->
           Split_deque.push_bottom sd nothing;
           ignore (Split_deque.pop_bottom sd)));
    Test.make ~name:"split.push_pop_signal_safe"
      (Staged.stage (fun () ->
           Split_deque.push_bottom sd nothing;
           ignore (Split_deque.pop_bottom_signal_safe sd);
           ignore (Split_deque.pop_public_bottom sd)));
    Test.make ~name:"split.expose_pop_public"
      (Staged.stage (fun () ->
           Split_deque.push_bottom sd_pub nothing;
           ignore (Split_deque.update_public_bottom sd_pub ~policy:Split_deque.Expose_one);
           ignore (Split_deque.pop_public_bottom sd_pub)));
    Test.make ~name:"chase_lev.push_steal"
      (Staged.stage (fun () ->
           Chase_lev.push_bottom cl nothing;
           ignore (Chase_lev.steal cl ~metrics:thief)));
    Test.make ~name:"split.push_expose_steal_drain"
      (Staged.stage (fun () ->
           Split_deque.push_bottom sd_pub nothing;
           ignore (Split_deque.update_public_bottom sd_pub ~policy:Split_deque.Expose_one);
           ignore (Split_deque.pop_top sd_pub ~metrics:thief);
           (* The owner's empty-deque public pop resets the array indices
              (Listing 2's slow path); without it a steal-only loop would
              ratchet [top]/[bot] to the end of the fixed array. *)
           ignore (Split_deque.pop_public_bottom sd_pub)));
    Test.make ~name:"fastmath.double2int"
      (Staged.stage (fun () -> ignore (Lcws_sync.Fastmath.double2int 1234.56)));
  ]

let run ppf =
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "Deque-operation microbenchmarks (host CPU, Bechamel OLS ns/op)@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let grouped = Test.make_grouped ~name:"ops" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let o = Hashtbl.find results name in
      let est =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square o with Some r -> r | None -> nan in
      Format.fprintf ppf "  %-32s %10.1f ns/op   (r²=%.3f)@." name est r2)
    (List.sort compare names)
