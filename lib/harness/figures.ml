module E = Lcws_sim.Engine
module M = Lcws_sim.Cost_model
module X = Experiments

type ctx = {
  scale : float;
  quantum : int;
  progress : bool;
  mutable cache : (string * X.matrix) list;  (** per machine name *)
}

let make_ctx ?(scale = 1.0) ?(quantum = 400) ?(progress = false) () =
  { scale; quantum; progress; cache = [] }

(* One matrix per machine, covering all policies and the union of the P
   sweeps any figure needs (including the SMT point 64 on AMD32 used by
   Figure 3). *)
let matrix ctx (m : M.t) =
  match List.assoc_opt m.name ctx.cache with
  | Some mat -> mat
  | None ->
      let ps = M.processor_sweep m in
      let ps = if m.name = "AMD32" then ps @ [ 64 ] else ps in
      (* The related-work ablation policies are only plotted on AMD32. *)
      let policies =
        if m.name = "AMD32" then
          [ E.Ws; E.Uslcws; E.Signal; E.Cons; E.Half; E.Lace; E.Private_deques ]
        else [ E.Ws; E.Uslcws; E.Signal; E.Cons; E.Half ]
      in
      if ctx.progress then
        Printf.eprintf "[sim] building %s matrix (%d configs x %d policies x %d P-points)\n%!"
          m.name
          (List.length Lcws_sim.Workloads.all)
          (List.length policies) (List.length ps);
      let mat =
        X.build ~machine:m ~policies ~ps ~scale:ctx.scale ~quantum:ctx.quantum
          ~progress:ctx.progress ()
      in
      ctx.cache <- (m.name, mat) :: ctx.cache;
      mat

let machine_matrix = matrix

let hr ppf = Format.fprintf ppf "%s@." (String.make 78 '-')

let section ppf title =
  hr ppf;
  Format.fprintf ppf "%s@." title;
  hr ppf

let print_box_rows ppf ~label ~lo ~hi rows =
  Format.fprintf ppf "%-6s %-41s  %8s %8s %8s %8s %8s@." label
    (Printf.sprintf "box [%.2f .. %.2f]" lo hi)
    "min" "q1" "med" "q3" "max";
  List.iter
    (fun (p, values) ->
      match values with
      | [] -> Format.fprintf ppf "P=%-4d (no data)@." p
      | _ ->
          let s = Stats.summarize values in
          Format.fprintf ppf "P=%-4d %s  %8.3f %8.3f %8.3f %8.3f %8.3f@." p
            (Stats.sparkbox ~lo ~hi s) s.Stats.min s.Stats.q1 s.Stats.median s.Stats.q3
            s.Stats.max)
    rows

let table1 ppf =
  section ppf "Table 1: Computers used in the experimental evaluation (simulated profiles)";
  Format.fprintf ppf "%-8s %-28s %-14s %-22s@." "Name" "CPU" "Cores/Threads" "Memory";
  List.iter
    (fun (m : M.t) ->
      Format.fprintf ppf "%-8s %-28s %2d/%-11d %-22s@." m.name m.cpu m.cores m.smt_threads
        m.memory)
    M.all;
  Format.fprintf ppf
    "@.Simulation cost parameters (cycles): fence / CAS / steal probe / signal send+deliver@.";
  List.iter
    (fun (m : M.t) ->
      Format.fprintf ppf "%-8s %3d / %3d / %3d / %d+%d@." m.name m.fence_cost m.cas_cost
        m.steal_round_cost m.signal_send_cost m.signal_deliver_latency)
    M.all

let fig3 ctx ppf =
  section ppf
    "Figure 3: Profile of USLCWS vs WS, machine AMD32 (all benchmark configs per box)";
  let mat = matrix ctx M.amd32 in
  let ps = [ 2; 4; 8; 16; 32; 64 ] in
  Format.fprintf ppf "@.(a) USLCWS memory fences / WS memory fences@.";
  print_box_rows ppf ~label:"ratio" ~lo:0.0 ~hi:0.02
    (List.map (fun p -> (p, X.ratio_vs mat ~policy:E.Uslcws ~baseline:E.Ws ~p (fun s -> s.E.fences))) ps);
  Format.fprintf ppf "@.(b) USLCWS CAS / WS CAS@.";
  print_box_rows ppf ~label:"ratio" ~lo:0.0 ~hi:1.0
    (List.map (fun p -> (p, X.ratio_vs mat ~policy:E.Uslcws ~baseline:E.Ws ~p (fun s -> s.E.cas))) ps);
  Format.fprintf ppf "@.(c) successful steals USLCWS / successful steals WS@.";
  print_box_rows ppf ~label:"ratio" ~lo:0.0 ~hi:1.5
    (List.map (fun p -> (p, X.ratio_vs mat ~policy:E.Uslcws ~baseline:E.Ws ~p (fun s -> s.E.steals))) ps);
  Format.fprintf ppf "@.(d) %% of exposed work not stolen in USLCWS@.";
  print_box_rows ppf ~label:"frac" ~lo:0.0 ~hi:1.0
    (List.map (fun p -> (p, X.unstolen_at mat ~policy:E.Uslcws ~p)) ps)

let speedup_fig ppf mat title policy =
  Format.fprintf ppf "@.%s@." title;
  let ps = X.ps mat in
  print_box_rows ppf ~label:"spdup" ~lo:0.6 ~hi:1.3
    (List.map (fun p -> (p, X.speedups_at mat ~policy ~p)) ps)

let fig4 ctx ppf =
  section ppf "Figure 4: Box plot of the speedup of USLCWS wrt WS, per machine";
  List.iter
    (fun m -> speedup_fig ppf (matrix ctx m) (Printf.sprintf "(%s)" m.M.name) E.Uslcws)
    M.all

let variant_table ppf mat extract =
  let ps = X.ps mat in
  Format.fprintf ppf "%-8s" "P";
  List.iter (fun p -> Format.fprintf ppf " %7d" p) ps;
  Format.fprintf ppf "@.";
  List.iter
    (fun (label, policy) ->
      Format.fprintf ppf "%-8s" label;
      List.iter (fun p -> Format.fprintf ppf " %7.3f" (extract mat policy p)) ps;
      Format.fprintf ppf "@.")
    [ ("User", E.Uslcws); ("Signal", E.Signal); ("Cons", E.Cons); ("Half", E.Half) ]

let fig5 ctx ppf =
  section ppf "Figure 5: Average speedups wrt WS, varying the number of processors";
  List.iter
    (fun m ->
      Format.fprintf ppf "@.(%s)@." m.M.name;
      variant_table ppf (matrix ctx m) (fun mat policy p ->
          Stats.mean (X.speedups_at mat ~policy ~p)))
    M.all

let fig6 ctx ppf =
  section ppf "Figure 6: %% of benchmark configurations with speedup > 1";
  List.iter
    (fun m ->
      Format.fprintf ppf "@.(%s)@." m.M.name;
      variant_table ppf (matrix ctx m) (fun mat policy p ->
          100. *. Stats.fraction_above 1.0 (X.speedups_at mat ~policy ~p)))
    M.all

let fig7 ctx ppf =
  section ppf "Figure 7: Box plot of the speedup of signal-based LCWS wrt WS, per machine";
  List.iter
    (fun m -> speedup_fig ppf (matrix ctx m) (Printf.sprintf "(%s)" m.M.name) E.Signal)
    M.all

let fig8 ctx ppf =
  section ppf "Figure 8: Profile of signal-based LCWS, machine AMD32";
  let mat = matrix ctx M.amd32 in
  let ps = [ 2; 4; 8; 16; 32 ] in
  let panel title ~lo ~hi rows =
    Format.fprintf ppf "@.%s@." title;
    print_box_rows ppf ~label:"ratio" ~lo ~hi rows
  in
  panel "(a) Signal mem. fences / WS mem. fences" ~lo:0.0 ~hi:0.02
    (List.map (fun p -> (p, X.ratio_vs mat ~policy:E.Signal ~baseline:E.Ws ~p (fun s -> s.E.fences))) ps);
  panel "(b) Signal CAS / WS CAS" ~lo:0.0 ~hi:1.0
    (List.map (fun p -> (p, X.ratio_vs mat ~policy:E.Signal ~baseline:E.Ws ~p (fun s -> s.E.cas))) ps);
  panel "(c) Signal steals / WS steals" ~lo:0.0 ~hi:1.5
    (List.map (fun p -> (p, X.ratio_vs mat ~policy:E.Signal ~baseline:E.Ws ~p (fun s -> s.E.steals))) ps);
  panel "(d) % of exposed work not stolen in Signal" ~lo:0.0 ~hi:1.0
    (List.map (fun p -> (p, X.unstolen_at mat ~policy:E.Signal ~p)) ps);
  panel "(e) Signal mem. fences / USLCWS mem. fences" ~lo:0.0 ~hi:1.5
    (List.map
       (fun p -> (p, X.ratio_vs mat ~policy:E.Signal ~baseline:E.Uslcws ~p (fun s -> s.E.fences)))
       ps);
  panel "(f) Signal CAS / USLCWS CAS" ~lo:0.0 ~hi:1.5
    (List.map
       (fun p -> (p, X.ratio_vs mat ~policy:E.Signal ~baseline:E.Uslcws ~p (fun s -> s.E.cas)))
       ps);
  panel "(g) Signal steals / USLCWS steals" ~lo:0.0 ~hi:1.5
    (List.map
       (fun p -> (p, X.ratio_vs mat ~policy:E.Signal ~baseline:E.Uslcws ~p (fun s -> s.E.steals)))
       ps);
  panel "(h) Signal unstolen / USLCWS unstolen" ~lo:0.0 ~hi:1.5
    (List.map (fun p -> (p, X.unstolen_ratio mat ~policy:E.Signal ~baseline:E.Uslcws ~p)) ps)

(* Section 5.1/5.2 headline statistics. "Executions" are 〈config, P〉
   pairs over the machine's processor sweep, as in the paper. *)
let summary ctx ppf =
  section ppf "Section 5.1/5.2 statistics";
  List.iter
    (fun (m : M.t) ->
      let mat = matrix ctx m in
      let sweep = M.processor_sweep m in
      let all_speedups policy =
        List.concat_map (fun p -> X.speedups_at mat ~policy ~p) sweep
      in
      Format.fprintf ppf "@.[%s]@." m.name;
      List.iter
        (fun (label, policy) ->
          let sp = all_speedups policy in
          Format.fprintf ppf
            "  %-7s speedup>1 for %4.1f%% of executions; gains of 5/10/15/20%%: %4.1f%% %4.1f%% \
             %4.1f%% %4.1f%%@."
            label
            (100. *. Stats.fraction_above 1.0 sp)
            (100. *. Stats.fraction_above 1.05 sp)
            (100. *. Stats.fraction_above 1.10 sp)
            (100. *. Stats.fraction_above 1.15 sp)
            (100. *. Stats.fraction_above 1.20 sp))
        [ ("User", E.Uslcws); ("Signal", E.Signal); ("Cons", E.Cons); ("Half", E.Half) ];
      (* Best and worst configuration speedups (Signal), as in 5.2. *)
      let per_config policy =
        List.map
          (fun (bench, instance) ->
            let sps = List.map (fun p -> X.speedup mat ~bench ~instance ~policy ~p) sweep in
            (bench ^ "/" ^ instance, List.fold_left Float.max neg_infinity sps,
             List.fold_left Float.min infinity sps))
          (X.configs mat)
      in
      let rows = per_config E.Signal in
      let best = List.fold_left (fun a (_, mx, _) -> Float.max a mx) neg_infinity rows in
      let worst = List.fold_left (fun a (_, _, mn) -> Float.min a mn) infinity rows in
      Format.fprintf ppf "  Signal best-config speedup %+.1f%%, worst-config %+.1f%%@."
        (100. *. (best -. 1.))
        (100. *. (worst -. 1.));
      let low_ps = List.filter (fun p -> 2 * p <= m.cores && p > 1) sweep in
      if low_ps <> [] then begin
        let sp = List.concat_map (fun p -> X.speedups_at mat ~policy:E.Uslcws ~p) low_ps in
        Format.fprintf ppf
          "  User at <=50%% of cores: mean speedup %+.1f%%, speedup>1 for %.0f%% of configs@."
          (100. *. (Stats.mean sp -. 1.))
          (100. *. Stats.fraction_above 1.0 sp)
      end)
    M.all

(* Beyond the paper: the two related-work policies discussed in Section 2,
   under the same harness. *)
let ablation ctx ppf =
  section ppf "Ablation (related work, AMD32): mean speedup wrt WS";
  let mat = matrix ctx M.amd32 in
  let ps = M.processor_sweep M.amd32 in
  Format.fprintf ppf "%-8s" "P";
  List.iter (fun p -> Format.fprintf ppf " %7d" p) ps;
  Format.fprintf ppf "@.";
  List.iter
    (fun (label, policy) ->
      Format.fprintf ppf "%-8s" label;
      List.iter
        (fun p -> Format.fprintf ppf " %7.3f" (Stats.mean (X.speedups_at mat ~policy ~p)))
        ps;
      Format.fprintf ppf "@.")
    [
      ("Signal", E.Signal);
      ("Lace", E.Lace);
      ("Private", E.Private_deques);
    ];
  Format.fprintf ppf
    "@.(Lace polls exposure requests only at task boundaries and may unexpose;@.\
     \ Private deques answer explicit transfer requests at task boundaries.)@."

(* Design-choice sensitivity (beyond the paper): how the headline results
   move when the cost-model knobs the design cares about are varied. *)
let sensitivity ctx ppf =
  section ppf "Sensitivity (AMD32): cost-model knobs vs the headline results";
  let base = M.amd32 in
  let mini machine policies p =
    X.build ~machine ~policies ~ps:[ p ] ~scale:ctx.scale ~quantum:ctx.quantum ()
  in
  Format.fprintf ppf
    "@.(a) Signal-delivery latency vs Signal speedup at P=16 (paper relies on@.\
     \    exposure requests being handled in constant time; slower delivery@.\
     \    should erode the gains)@.";
  List.iter
    (fun mult ->
      let machine =
        {
          base with
          M.signal_deliver_latency =
            int_of_float (mult *. float_of_int base.M.signal_deliver_latency);
          M.signal_send_cost = int_of_float (mult *. float_of_int base.M.signal_send_cost);
        }
      in
      let mat = mini machine [ E.Ws; E.Signal ] 16 in
      Format.fprintf ppf "  latency x%-4.2f  mean speedup %.3f@." mult
        (Stats.mean (X.speedups_at mat ~policy:E.Signal ~p:16)))
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  Format.fprintf ppf
    "@.(b) Fence cost vs USLCWS speedup at P=1 (the low-processor gains come@.\
     \    entirely from eliding the fence WS pays on every local pop)@.";
  List.iter
    (fun mult ->
      let machine =
        {
          base with
          M.fence_cost = max 1 (int_of_float (mult *. float_of_int base.M.fence_cost));
          M.cas_cost = max 1 (int_of_float (mult *. float_of_int base.M.cas_cost));
        }
      in
      let mat = mini machine [ E.Ws; E.Uslcws ] 1 in
      Format.fprintf ppf "  fence x%-4.2f    mean speedup %.3f@." mult
        (Stats.mean (X.speedups_at mat ~policy:E.Uslcws ~p:1)))
    [ 0.5; 1.0; 2.0; 4.0 ];
  Format.fprintf ppf
    "@.(c) Exposure policy at P=32 (mean speedup; Half amortizes signals,@.\
     \    Cons avoids exposing a worker's last task)@.";
  let mat32 = matrix ctx M.amd32 in
  List.iter
    (fun (label, policy) ->
      Format.fprintf ppf "  %-7s %.3f@." label
        (Stats.mean (X.speedups_at mat32 ~policy ~p:32)))
    [ ("Signal", E.Signal); ("Cons", E.Cons); ("Half", E.Half) ]

let all ctx ppf =
  table1 ppf;
  fig3 ctx ppf;
  fig4 ctx ppf;
  fig5 ctx ppf;
  fig6 ctx ppf;
  fig7 ctx ppf;
  fig8 ctx ppf;
  summary ctx ppf;
  ablation ctx ppf;
  sensitivity ctx ppf
