(* Forwarder: the checker's public face keeps [Lcws_check.Sim_atomic]
   (and hence [Lcws.Check.Sim_atomic]) stable even though the
   implementation lives one library lower so that [lib/check/deques] can
   depend on it without a cycle. *)
include Lcws_check_sim.Sim_atomic
