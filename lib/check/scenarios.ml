(* The scenario catalogue: each scenario is a few-step concurrent script
   over one deque, sized so that bounded exhaustive exploration finishes
   in well under a second, plus a sequential oracle. The oracles are the
   work-stealing correctness conditions: every pushed task is consumed
   exactly once (no loss, no duplication), owners pop LIFO, thieves steal
   FIFO, and per-worker synchronization accounting stays coherent.

   The deque scenarios are written against any [S] of their family (with
   the representation equation exposed), so the same scripts run both the
   clean deque (must pass exhaustively) and the seeded [Make_mutant] bugs
   (must each produce a counterexample) — the checker's self-test.

   On top of the end-of-run oracles, every deque scenario carries an
   executable ownership invariant ([Explore.run_spec.invariant]): the
   CSL ownership discipline of its family, asserted at every scheduling
   point of every interleaving. *)

module Metrics = Lcws_sync.Metrics
module Split = Lcws_sim_deque.Split_deque
module Chase = Lcws_sim_deque.Chase_lev
module Lace = Lcws_sim_deque.Lace_deque
module Priv = Lcws_sim_deque.Private_deque

(* {2 Oracle helpers} *)

let pp_int_list xs = "[" ^ String.concat "; " (List.map string_of_int xs) ^ "]"

(* No-loss / no-duplication: the tasks consumed (by anyone, including the
   post-run drain) are exactly the multiset pushed. *)
let exactly_once ~pushed ~got =
  let sort = List.sort compare in
  if sort pushed = sort got then Ok ()
  else
    Error
      (Printf.sprintf "exactly-once violated: pushed %s but consumed %s" (pp_int_list pushed)
         (pp_int_list (sort got)))

let monotone cmp what xs =
  let rec ok = function a :: (b :: _ as rest) -> cmp a b && ok rest | _ -> true in
  if ok xs then Ok () else Error (Printf.sprintf "%s violated: %s" what (pp_int_list xs))

(* Thief-FIFO: a single thief's successful steals see increasing task ids
   (tasks are pushed in id order, steals come off the top). *)
let increasing who xs = monotone ( < ) (who ^ " FIFO order") xs

(* Owner-LIFO: the owner's pops see decreasing ids. *)
let decreasing who xs = monotone ( > ) (who ^ " LIFO order") xs

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let take cell x = cell := x :: !cell

let taken cell = List.rev !cell

(* {2 Executable ownership invariants}

   The Chase-Lev-style ownership rules of each deque family, written as
   per-scheduling-point assertion callbacks. Each combines an
   access-discipline check — which lane may mutate which cell, and with
   which primitive — with a state check read off the live deque (the
   callback runs quiescently, after the step's memory effect has been
   applied, so it also observes transient intermediate states). Clean
   deques must satisfy them at every step of every interleaving; the
   per-family seeded mutants must trip them. *)

module SA = Sim_atomic.A

(* Owner-side lanes: thread 0 and (when a signal is in play) the handler
   lane at index [threads] — the handler interrupts the owner, so it
   mutates with the owner's rights. *)
let owner_lane ~threads (who : Explore.choice) =
  match who with Explore.Signal -> true | Explore.Thread i -> i = 0 || i = threads

(* Split deque: [bot] and [public_bot] are owner-written only; [top]
   lives in the packed [age] word, which thieves advance only by CAS (a
   plain store to [age] is the owner's lost-last-race reset); and within
   one ABA tag the top index never decreases — a rewind without a tag
   bump is exactly the reuse the tag exists to disambiguate. *)
let split_invariant ~threads (d : _ Split.t) =
  let last = ref (SA.get d.Split.age) in
  fun (step : Explore.step) ->
    let* () =
      match step.Explore.access with
      | None -> Ok ()
      | Some a ->
          let owner = owner_lane ~threads step.Explore.who in
          if
            Sim_atomic.is_write a.Sim_atomic.kind
            && (a.Sim_atomic.name = "bot" || a.Sim_atomic.name = "public_bot")
            && not owner
          then
            Error
              (Printf.sprintf "split: thief lane wrote owner-only cell %S" a.Sim_atomic.name)
          else if
            a.Sim_atomic.name = "age" && a.Sim_atomic.kind = Sim_atomic.Store && not owner
          then Error "split: thief stored age (thieves may only CAS it)"
          else Ok ()
    in
    let age = SA.get d.Split.age in
    let prev = !last in
    last := age;
    if Split.Age.tag age = Split.Age.tag prev && Split.Age.top age < Split.Age.top prev then
      Error
        (Printf.sprintf "split: top rewound %d -> %d without a tag bump" (Split.Age.top prev)
           (Split.Age.top age))
    else Ok ()

(* Chase-Lev: [top] is claimed only through CAS — by anyone; the clean
   algorithm has no plain store to it — and is monotone nondecreasing;
   [bottom] is owner-written only. (No [top <= bottom] check: the
   owner's decrement-then-recheck pop makes that transiently false even
   in correct runs.) *)
let chase_invariant ~threads (d : _ Chase.t) =
  let last = ref (SA.get d.Chase.top) in
  fun (step : Explore.step) ->
    let* () =
      match step.Explore.access with
      | None -> Ok ()
      | Some a ->
          if a.Sim_atomic.name = "top" && a.Sim_atomic.kind = Sim_atomic.Store then
            Error "chase_lev: plain store to top (claims must CAS)"
          else if
            Sim_atomic.is_write a.Sim_atomic.kind
            && a.Sim_atomic.name = "bottom"
            && not (owner_lane ~threads step.Explore.who)
          then Error "chase_lev: thief lane wrote owner-only cell \"bottom\""
          else Ok ()
    in
    let tp = SA.get d.Chase.top in
    let prev = !last in
    last := tp;
    if tp < prev then Error (Printf.sprintf "chase_lev: top rewound %d -> %d" prev tp)
    else Ok ()

(* Lace: the three boundaries partition the buffer — public region
   [top, split), private region [split, bot) — so [0 <= top <= split <=
   bot] holds at every scheduling point (hand-checked to hold at every
   intermediate write of the clean operations, including unexpose and
   the empty-reset). *)
let lace_invariant (d : _ Lace.t) (_ : Explore.step) =
  let tp = SA.read d.Lace.top and sp = SA.read d.Lace.split and b = SA.read d.Lace.bot in
  if 0 <= tp && tp <= sp && sp <= b then Ok ()
  else Error (Printf.sprintf "lace: region bounds violated: top=%d split=%d bot=%d" tp sp b)

(* Private deque: no sharing, but the indices must still bound a region:
   [0 <= top <= bot]. *)
let private_invariant (d : _ Priv.t) (_ : Explore.step) =
  let tp = SA.read d.Priv.top and b = SA.read d.Priv.bot in
  if 0 <= tp && tp <= b then Ok ()
  else Error (Printf.sprintf "private: region bounds violated: top=%d bot=%d" tp b)

(* {2 Split-deque scenarios (clean and mutant)} *)

module Mk_split (S : Split.S with type 'a t = 'a Split.t) = struct
  (* Fresh deque for one execution; tasks are 1..n, all still private. *)
  let fresh ?(capacity = 8) n =
    let d = S.create ~capacity ~dummy:0 ~metrics:(Metrics.create ()) () in
    for i = 1 to n do
      S.push_bottom d i
    done;
    d

  (* Consume whatever the concurrent part left behind, owner side first.
     Runs quiescently inside the oracle, so there is no concurrency left
     and in particular no CAS can lose. *)
  let drain d =
    let out = ref [] in
    let rec private_pops () =
      match S.pop_bottom d with
      | Some x ->
          take out x;
          private_pops ()
      | None -> ()
    in
    let rec public_pops () =
      match S.pop_public_bottom d with
      | Some x ->
          take out x;
          public_pops ()
      | None -> ()
    in
    let m = Metrics.create () in
    let rec steals () =
      match S.pop_top d ~metrics:m with
      | Lcws_deque.Deque_intf.Stolen x ->
          take out x;
          steals ()
      | Lcws_deque.Deque_intf.Abort -> steals ()
      | Lcws_deque.Deque_intf.Empty | Lcws_deque.Deque_intf.Private_work -> ()
    in
    private_pops ();
    public_pops ();
    steals ();
    taken out

  (* A thief loop: [attempts] bounded tries, keeping only successes. *)
  let thief d got attempts () =
    let m = Metrics.create () in
    for _ = 1 to attempts do
      match S.pop_top d ~metrics:m with
      | Lcws_deque.Deque_intf.Stolen x -> take got x
      | Lcws_deque.Deque_intf.Empty | Lcws_deque.Deque_intf.Abort
      | Lcws_deque.Deque_intf.Private_work ->
          ()
    done

  (* Owner [pop_public_bottom] races one thief for the single exposed
     task: the last-task CAS race of Listing 2, where the ABA tag is
     load-bearing ([drop_tag_bump] must fail here). *)
  let last_task ~name ~expect_violation =
    {
      Explore.name;
      descr = "1 exposed task: owner pop_public_bottom vs one thief steal";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = fresh 1 in
          ignore (S.update_public_bottom d ~policy:Lcws_deque.Deque_intf.Expose_one);
          let og = ref [] and tg = ref [] in
          {
            Explore.threads =
              [|
                ( "owner",
                  fun () -> match S.pop_public_bottom d with Some x -> take og x | None -> () );
                ("thief", thief d tg 1);
              |];
            signal = None;
            invariant = Some (split_invariant ~threads:2 d);
            check =
              (fun () -> exactly_once ~pushed:[ 1 ] ~got:(taken og @ taken tg @ drain d));
          });
    }

  (* Two exposed tasks, owner takes the public bottom while a thief works
     down from the top: exercises the Listing 2 line 11-12 fence — the
     [public_bot] decrement must be visible before the owner reads [age]
     ([drop_fence] must fail here). Also checks the thief's FIFO order. *)
  let two_exposed ~name ~expect_violation =
    {
      Explore.name;
      descr = "2 exposed tasks: owner pop_public_bottom vs a thief stealing twice";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = fresh 2 in
          ignore (S.update_public_bottom d ~policy:Lcws_deque.Deque_intf.Expose_one);
          ignore (S.update_public_bottom d ~policy:Lcws_deque.Deque_intf.Expose_one);
          let og = ref [] and tg = ref [] in
          {
            Explore.threads =
              [|
                ( "owner",
                  fun () -> match S.pop_public_bottom d with Some x -> take og x | None -> () );
                ("thief", thief d tg 2);
              |];
            signal = None;
            invariant = Some (split_invariant ~threads:2 d);
            check =
              (fun () ->
                let* () = increasing "thief" (taken tg) in
                exactly_once ~pushed:[ 1; 2 ] ~got:(taken og @ taken tg @ drain d));
          });
    }

  (* The Section 4 race: a signal handler exposes work between two steps
     of the owner's pop. With [safe = true] the owner uses the
     decrement-first [pop_bottom_signal_safe] (+ mandatory
     [pop_public_bottom] follow-up) and every interleaving must be
     exactly-once; with [safe = false] it uses the plain [pop_bottom] and
     the checker must reproduce the paper's lost-update duplication. *)
  let signal_pop ~safe ~name ~expect_violation =
    {
      Explore.name;
      descr =
        (if safe then
           "signal-delivered exposure vs pop_bottom_signal_safe + repair (Section 4 fix)"
         else "signal-delivered exposure vs plain pop_bottom (the Section 4 bug, on purpose)");
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = fresh 1 in
          let og = ref [] and tg = ref [] in
          let owner () =
            if safe then
              match S.pop_bottom_signal_safe d with
              | Some x -> take og x
              | None -> (
                  (* Contract: a failed signal-safe pop is always followed
                     by the public fallback, which repairs [bot]. *)
                  match S.pop_public_bottom d with Some x -> take og x | None -> ())
            else
              match S.pop_bottom d with Some x -> take og x | None -> ()
          in
          {
            Explore.threads = [| ("owner", owner); ("thief", thief d tg 2) |];
            signal =
              Some
                ( "expose",
                  fun () ->
                    ignore (S.update_public_bottom d ~policy:Lcws_deque.Deque_intf.Expose_one) );
            invariant = Some (split_invariant ~threads:2 d);
            check =
              (fun () -> exactly_once ~pushed:[ 1 ] ~got:(taken og @ taken tg @ drain d));
          });
    }

  (* Single-threaded Section 4 repair path: a failed decrement-first pop
     on an empty deque leaves [bot = -1]; [pop_public_bottom] must repair
     it before the next push ([drop_bot_repair] must fail here — the push
     lands at index -1). *)
  let repair ~name ~expect_violation =
    {
      Explore.name;
      descr = "empty deque: failed signal-safe pop, repair, then push/pop again";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = fresh 0 in
          let og = ref [] in
          let owner () =
            (match S.pop_bottom_signal_safe d with
            | Some x -> take og x
            | None -> (
                match S.pop_public_bottom d with Some x -> take og x | None -> ()));
            S.push_bottom d 99;
            match S.pop_bottom d with Some x -> take og x | None -> ()
          in
          {
            Explore.threads = [| ("owner", owner) |];
            signal = None;
            invariant = Some (split_invariant ~threads:1 d);
            check = (fun () -> exactly_once ~pushed:[ 99 ] ~got:(taken og @ drain d));
          });
    }

  (* Expose-half (Section 4.1.2) with two racing thieves: the owner
     publishes round(3/2) = 2 of its 3 tasks then keeps popping privately;
     thieves take one each off the top. Checks owner-LIFO and per-thief
     FIFO on top of exactly-once. *)
  let expose_half ~name ~expect_violation =
    {
      Explore.name;
      descr = "Expose_half of 3 tasks vs two racing thieves";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = fresh 3 in
          let og = ref [] and t1 = ref [] and t2 = ref [] in
          let owner () =
            ignore (S.update_public_bottom d ~policy:Lcws_deque.Deque_intf.Expose_half);
            match S.pop_bottom d with Some x -> take og x | None -> ()
          in
          {
            Explore.threads =
              [| ("owner", owner); ("thief1", thief d t1 1); ("thief2", thief d t2 1) |];
            signal = None;
            invariant = Some (split_invariant ~threads:3 d);
            check =
              (fun () ->
                let* () = decreasing "owner" (taken og) in
                let* () = increasing "thief1" (taken t1) in
                let* () = increasing "thief2" (taken t2) in
                exactly_once ~pushed:[ 1; 2; 3 ]
                  ~got:(taken og @ taken t1 @ taken t2 @ drain d));
          });
    }
end

(* {2 Chase-Lev scenarios (clean and mutant)} *)

module Mk_chase (C : Chase.S with type 'a t = 'a Chase.t) = struct
  let drain d =
    let out = ref [] in
    let m = Metrics.create () in
    let rec pops () =
      match C.pop_bottom d with
      | Some x ->
          take out x;
          pops ()
      | None -> ()
    in
    let rec steals () =
      match C.steal d ~metrics:m with
      | Lcws_deque.Deque_intf.Stolen x ->
          take out x;
          steals ()
      | Lcws_deque.Deque_intf.Abort -> steals ()
      | _ -> ()
    in
    pops ();
    steals ();
    taken out

  let thief d got attempts () =
    let m = Metrics.create () in
    for _ = 1 to attempts do
      match C.steal d ~metrics:m with
      | Lcws_deque.Deque_intf.Stolen x -> take got x
      | _ -> ()
    done

  (* Owner and thief race for the last element: the owner's single CAS on
     [top]. The oracle additionally pins the owner's abort accounting — a
     lost last-element CAS must count one [cas_failure] *and* one [abort],
     in every interleaving. The ownership invariant makes this scenario
     the catcher for [steal_store_top]: the mutant thief's plain store to
     [top] trips the claims-must-CAS rule at the step it executes. *)
  let last_task ~name ~expect_violation =
    {
      Explore.name;
      descr = "1 task: owner pop_bottom vs one thief, with abort-accounting oracle";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let om = Metrics.create () in
          let d = C.create ~capacity:4 ~dummy:0 ~metrics:om () in
          C.push_bottom d 1;
          let og = ref [] and tg = ref [] in
          {
            Explore.threads =
              [|
                ("owner", fun () -> match C.pop_bottom d with Some x -> take og x | None -> ());
                ("thief", thief d tg 1);
              |];
            signal = None;
            invariant = Some (chase_invariant ~threads:2 d);
            check =
              (fun () ->
                let* () =
                  if om.Metrics.cas_failures = om.Metrics.aborts then Ok ()
                  else
                    Error
                      (Printf.sprintf "owner aborts out of sync: %d cas_failures, %d aborts"
                         om.Metrics.cas_failures om.Metrics.aborts)
                in
                exactly_once ~pushed:[ 1 ] ~got:(taken og @ taken tg @ drain d));
          });
    }

  (* Circular-buffer wraparound: capacity 2, one slot already recycled, the
     owner pushes over the wrapped index while a thief works the top. *)
  let wrap ~name ~expect_violation =
    {
      Explore.name;
      descr = "capacity-2 buffer wraparound: push over a recycled slot vs a thief";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = C.create ~capacity:2 ~dummy:0 ~metrics:(Metrics.create ()) () in
          let og = ref [] and tg = ref [] in
          C.push_bottom d 1;
          C.push_bottom d 2;
          (match C.steal d ~metrics:(Metrics.create ()) with
          | Lcws_deque.Deque_intf.Stolen x -> take og x
          | _ -> failwith "setup steal failed");
          let owner () =
            C.push_bottom d 3;
            match C.pop_bottom d with Some x -> take og x | None -> ()
          in
          {
            Explore.threads = [| ("owner", owner); ("thief", thief d tg 2) |];
            signal = None;
            invariant = Some (chase_invariant ~threads:2 d);
            check =
              (fun () ->
                exactly_once ~pushed:[ 1; 2; 3 ] ~got:(taken og @ taken tg @ drain d));
          });
    }
end

(* {2 Sequential-specification deques (single-schedule oracle scripts)} *)

module Mk_lace (L : Lace.S with type 'a t = 'a Lace.t) = struct
  let script ~name ~expect_violation =
    {
      Explore.name;
      descr = "sequential Lace script: expose, steal, pop (with unexposure) against the oracle";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = L.create ~capacity:4 ~dummy:0 () in
          let got = ref [] in
          let owner () =
            ignore (L.push_bottom d 1);
            ignore (L.push_bottom d 2);
            ignore (L.push_bottom d 3);
            ignore (L.expose d);
            (match L.pop_top d with
            | Lcws_deque.Deque_intf.Stolen x, _ -> take got x
            | _ -> ());
            for _ = 1 to 3 do
              match L.pop_bottom d with Some x, _ -> take got x | None, _ -> ()
            done
          in
          {
            Explore.threads = [| ("owner", owner) |];
            signal = None;
            invariant = Some (lace_invariant d);
            check =
              (fun () ->
                let* () =
                  if L.private_size d + L.public_size d = L.size d then Ok ()
                  else Error "lace size split inconsistent"
                in
                exactly_once ~pushed:[ 1; 2; 3 ] ~got:(taken got));
          });
    }

  (* The private-work guard: a second expose with nothing left to publish
     must refuse. The [expose_unchecked] mutant pushes [split] past [bot]
     instead, and the region-bounds invariant trips at that very write. *)
  let double_expose ~name ~expect_violation =
    {
      Explore.name;
      descr = "expose with and then without private work: the private-work guard must refuse";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = L.create ~capacity:4 ~dummy:0 () in
          let got = ref [] in
          let owner () =
            ignore (L.push_bottom d 1);
            ignore (L.expose d);
            ignore (L.expose d);
            (match L.pop_top d with
            | Lcws_deque.Deque_intf.Stolen x, _ -> take got x
            | _ -> ());
            match L.pop_bottom d with Some x, _ -> take got x | None, _ -> ()
          in
          {
            Explore.threads = [| ("owner", owner) |];
            signal = None;
            invariant = Some (lace_invariant d);
            check = (fun () -> exactly_once ~pushed:[ 1 ] ~got:(taken got));
          });
    }
end

module Mk_priv (P : Priv.S with type 'a t = 'a Priv.t) = struct
  let script ~name ~expect_violation =
    {
      Explore.name;
      descr = "sequential private-deque script: owner-side transfers against the oracle";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = P.create ~capacity:4 ~dummy:0 () in
          let got = ref [] in
          let owner () =
            P.push_bottom d 1;
            P.push_bottom d 2;
            P.push_bottom d 3;
            (match P.pop_top d with Some x -> take got x | None -> ());
            (match P.pop_bottom d with Some x -> take got x | None -> ());
            (match P.pop_top d with Some x -> take got x | None -> ());
            match P.pop_bottom d with Some x -> take got x | None -> ()
          in
          {
            Explore.threads = [| ("owner", owner) |];
            signal = None;
            invariant = Some (private_invariant d);
            check =
              (fun () ->
                let* () = if P.is_empty d then Ok () else Error "private deque not drained" in
                exactly_once ~pushed:[ 1; 2; 3 ] ~got:(taken got));
          });
    }

  (* The emptiness guard: a pop from an empty deque must refuse. The
     [pop_unchecked] mutant decrements [bot] below [top] instead, and the
     region-bounds invariant trips at that very write. *)
  let underflow ~name ~expect_violation =
    {
      Explore.name;
      descr = "pop from an empty deque must refuse: the emptiness guard";
      expect_violation;
      preempt = None;
      spec =
        (fun () ->
          let d = P.create ~capacity:4 ~dummy:0 () in
          let got = ref [] in
          let owner () =
            P.push_bottom d 1;
            (match P.pop_bottom d with Some x -> take got x | None -> ());
            match P.pop_bottom d with Some x -> take got x | None -> ()
          in
          {
            Explore.threads = [| ("owner", owner) |];
            signal = None;
            invariant = Some (private_invariant d);
            check = (fun () -> exactly_once ~pushed:[ 1 ] ~got:(taken got));
          });
    }
end

(* {2 Join-frame recycling scenarios}

   The scheduler's fork/join frames (lib/sched) are recycled through a
   per-worker pool: on the stolen path the executor writes the frame's
   result slot and then flips the completion word with an SC store, and
   the owner may only reset and reuse the frame after it has observed
   that flip. These scripts model the two-word protocol directly on
   simulated cells — [state] as an atomic, [result] as a plain slot —
   because the scheduler itself is compiled against the real atomics,
   not the yielding shim. [frame_protocol ~wait:false] seeds the
   recycled-too-early bug (owner consumes and reuses the frame without
   waiting): the checker must find an interleaving where the owner reads
   a stale result or the late completion clobbers the frame's next
   use. *)

let frame_protocol ~wait ~name ~expect_violation =
  let module A = Sim_atomic.A in
  {
    Explore.name;
    descr =
      (if wait then "join-frame recycling: owner waits for the completion flag before reuse"
       else "join-frame recycling without the completion wait (recycled-too-early bug, on purpose)");
    expect_violation;
    preempt = None;
    spec =
      (fun () ->
        let state = A.make ~name:"frame.state" 0 in
        let result = A.plain ~name:"frame.result" 0 in
        let r1 = ref (-1) and r2 = ref (-1) in
        (* The thief side of [exec_frame]: publish the result, then flip
           the flag (program order; the sim is sequentially consistent). *)
        let thief () =
          A.write result 42;
          A.set state 1
        in
        let owner () =
          (* Bounded stand-in for the owner's helping loop: poll the flag
             a few times; giving up (slow thief) is a legal outcome. *)
          let polls = ref 0 in
          if wait then
            while A.get state = 0 && !polls < 6 do
              incr polls
            done;
          if (not wait) || A.get state <> 0 then begin
            r1 := A.read result;
            (* Release: reset to pending, clear the slot... *)
            A.set state 0;
            A.write result 0;
            (* ...and immediately reuse the frame for an unrelated
               un-stolen fork whose child writes 99 inline. *)
            A.write result 99;
            r2 := A.read result
          end
        in
        {
          Explore.threads = [| ("owner", owner); ("thief", thief) |];
          signal = None; invariant = None;
          check =
            (fun () ->
              if !r1 < 0 then Ok () (* gave up waiting: frame never consumed *)
              else if !r1 = 42 && !r2 = 99 then Ok ()
              else
                Error
                  (Printf.sprintf
                     "frame recycled too early: joined result %d, next use read %d (want 42 then 99)"
                     !r1 !r2));
        });
  }

(* {2 Cancellation-protocol scenarios}

   The scheduler's [parallel_for] failure discipline (lib/sched): when a
   body chunk raises, the first failure wins a CAS on the loop scope's
   flag and parks its exception in the scope; every sibling re-reads the
   flag at each chunk boundary and skips its remaining chunks once the
   flag is set. Two details are load-bearing and modeled here. First,
   the single CAS: exactly one failer may write the exception slot, or a
   later failure clobbers the one the caller is about to re-raise.
   Second, the {e fresh} read per chunk: if the flag were a plain field,
   hoisting the read out of the chunk loop (which the compiler may do
   for non-atomic loads) lets a sibling keep completing chunks long
   after cancellation. The oracle pins the bound the scheduler
   documents: once the flag is set, at most the one in-flight chunk
   completes. [fault_protocol ~fresh_read:false] seeds exactly that
   hoisted stale read and must yield a counterexample. *)

let fault_protocol ~fresh_read ~name ~expect_violation =
  let module A = Sim_atomic.A in
  {
    Explore.name;
    descr =
      (if fresh_read then
         "loop-scope cancellation: first failure wins the CAS, siblings re-read the flag \
          at every chunk boundary"
       else
         "loop-scope cancellation with the flag read hoisted out of the chunk loop \
          (stale non-atomic read, on purpose)");
    expect_violation;
    preempt = None;
    spec =
      (fun () ->
        let lflag = A.make ~name:"scope.lflag" 0 in
        let lexn = A.plain ~name:"scope.lexn" 0 in
        let chunks = A.plain ~name:"chunks_done" 0 in
        let at_cancel = A.plain ~name:"chunks_at_cancel" (-1) in
        (* A sibling worker running three chunks of the loop body. *)
        let owner () =
          if fresh_read then begin
            let stop = ref false in
            for _ = 1 to 3 do
              if (not !stop) && A.get lflag = 0 then A.write chunks (A.read chunks + 1)
              else stop := true
            done
          end
          else begin
            (* Seeded bug: the cancellation flag is read once, before the
               loop, as if it were an ordinary field the compiler hoisted. *)
            let cancelled = A.get lflag in
            for _ = 1 to 3 do
              if cancelled = 0 then A.write chunks (A.read chunks + 1)
            done
          end
        in
        (* Two chunks failing concurrently: each tries to win the scope's
           CAS; only the winner parks its exception. [at_cancel] records
           how far the sibling had progressed when the flag went up, read
           {e after} the CAS so the oracle's bound is meaningful. *)
        let failer id () =
          if A.compare_and_set lflag 0 1 then begin
            A.write lexn id;
            A.write at_cancel (A.read chunks)
          end
        in
        {
          Explore.threads =
            [| ("owner", owner); ("failer1", failer 1); ("failer2", failer 2) |];
          signal = None; invariant = None;
          check =
            (fun () ->
              let exn_id = A.read lexn in
              let final = A.read chunks and at_c = A.read at_cancel in
              if A.get lflag <> 1 then Error "both failers ran but the flag is not set"
              else if exn_id <> 1 && exn_id <> 2 then
                Error
                  (Printf.sprintf "exception slot holds %d: not exactly one CAS winner"
                     exn_id)
              else if at_c < 0 then Error "winner never recorded the cancellation point"
              else if final - at_c > 1 then
                Error
                  (Printf.sprintf
                     "stale cancellation read: %d more chunks completed after the flag \
                      was set (at %d, final %d; at most the one in-flight chunk may \
                      finish)"
                     (final - at_c) at_c final)
              else Ok ());
        });
  }

(* {2 Suspension-protocol scenarios}

   The scheduler's fiber suspension handshake (lib/sched): a fiber parks
   at a [Suspend] effect by registering a one-shot resume closure on the
   future it awaits, and the completer publishes the future's payload
   {e before} flipping the state word, then claims the registered waiter
   with a CAS and fires the resume — which reads the payload on whatever
   worker it lands on. Three details are load-bearing and modeled here
   on simulated cells. First, publication order: the plain result slot
   must be written before the SC state flip, or a resumed continuation
   reads an unwritten slot. Second, the one-shot claim CAS: both the
   completer and the suspender's post-registration re-check (the
   [finished] probe) may try to fire the resume, and exactly one must
   win or the continuation runs twice. Third, the re-check itself: if
   completion slipped in between the fast-path state probe and the
   waiter registration, the suspender self-resumes — drop that and the
   wakeup is lost. [suspend_protocol ~publish:false] seeds the ISSUE's
   mutant — resume fired without re-publishing the frame state — and
   must yield an interleaving where the continuation wakes to a stale
   slot. *)

let suspend_protocol ~publish ~name ~expect_violation =
  let module A = Sim_atomic.A in
  {
    Explore.name;
    descr =
      (if publish then
         "fiber suspension: publish payload, flip state, claim the one-shot waiter, resume"
       else
         "fiber suspension with the resume fired before the payload publish (stale frame \
          state, on purpose)");
    expect_violation;
    preempt = None;
    spec =
      (fun () ->
        let fstate = A.make ~name:"future.state" 0 in
        let fresult = A.plain ~name:"future.result" 0 in
        let waiter = A.make ~name:"future.waiter" 0 in
        let resumes = A.plain ~name:"resumes" 0 in
        let got = A.plain ~name:"resumed_value" (-1) in
        (* Running the parked continuation: it reads the frame state the
           completer was supposed to have re-published. *)
        let resume () =
          A.write resumes (A.read resumes + 1);
          A.write got (A.read fresult)
        in
        let suspender () =
          if A.get fstate = 1 then begin
            (* [try_await] fast path: already done, no park. *)
            A.write resumes (A.read resumes + 1);
            A.write got (A.read fresult)
          end
          else begin
            (* Park: register the one-shot resume... *)
            A.set waiter 1;
            (* ...then the [finished] re-check: completion may have won
               the race with the registration, in which case the
               suspender must claim its own waiter and self-resume. *)
            if A.get fstate = 1 && A.compare_and_set waiter 1 2 then resume ()
          end
        in
        let completer () =
          if publish then begin
            A.write fresult 42;
            A.set fstate 1;
            if A.compare_and_set waiter 1 2 then resume ()
          end
          else begin
            (* Seeded bug: fire the registered resume first and publish
               the frame state after — the continuation can wake on
               another worker before the payload write lands. *)
            if A.compare_and_set waiter 1 2 then resume ();
            A.write fresult 42;
            A.set fstate 1
          end
        in
        {
          Explore.threads = [| ("fiber", suspender); ("completer", completer) |];
          signal = None; invariant = None;
          check =
            (fun () ->
              let n = A.read resumes and v = A.read got in
              if n <> 1 then
                Error
                  (Printf.sprintf "continuation resumed %d times (must be exactly once)" n)
              else if v <> 42 then
                Error
                  (Printf.sprintf
                     "resume observed unpublished frame state: read %d, want 42" v)
              else Ok ());
        });
  }

(* {2 Instantiations} *)

module Split_sim = Split
module Clean = Mk_split (Split_sim)

module Split_drop_fence = Split.Make_mutant (struct
  let mutation = { Split.Mutation.none with Split.Mutation.drop_fence = true }
end)

module Split_drop_tag = Split.Make_mutant (struct
  let mutation = { Split.Mutation.none with Split.Mutation.drop_tag_bump = true }
end)

module Split_drop_repair = Split.Make_mutant (struct
  let mutation = { Split.Mutation.none with Split.Mutation.drop_bot_repair = true }
end)

module Mutant_fence = Mk_split (Split_drop_fence)
module Mutant_tag = Mk_split (Split_drop_tag)
module Mutant_repair = Mk_split (Split_drop_repair)
module Chase_clean = Mk_chase (Chase)

module Chase_store_top = Chase.Make_mutant (struct
  let mutation = Chase.Mutation.steal_store_top
end)

module Mutant_chase = Mk_chase (Chase_store_top)
module Lace_clean = Mk_lace (Lace)

module Lace_unchecked = Lace.Make_mutant (struct
  let mutation = Lace.Mutation.expose_unchecked
end)

module Mutant_lace = Mk_lace (Lace_unchecked)
module Priv_clean = Mk_priv (Priv)

module Priv_unchecked = Priv.Make_mutant (struct
  let mutation = Priv.Mutation.pop_unchecked
end)

module Mutant_priv = Mk_priv (Priv_unchecked)

let all =
  [
    Clean.last_task ~name:"split_last_task" ~expect_violation:false;
    Clean.two_exposed ~name:"split_two_exposed" ~expect_violation:false;
    Clean.signal_pop ~safe:true ~name:"split_signal_safe" ~expect_violation:false;
    Clean.signal_pop ~safe:false ~name:"split_signal_unsafe_demo" ~expect_violation:true;
    Clean.repair ~name:"split_repair" ~expect_violation:false;
    Clean.expose_half ~name:"split_expose_half" ~expect_violation:false;
    Chase_clean.last_task ~name:"chase_lev_last" ~expect_violation:false;
    Chase_clean.wrap ~name:"chase_lev_wrap" ~expect_violation:false;
    Lace_clean.script ~name:"lace_script" ~expect_violation:false;
    Lace_clean.double_expose ~name:"lace_double_expose" ~expect_violation:false;
    Priv_clean.script ~name:"private_script" ~expect_violation:false;
    Priv_clean.underflow ~name:"private_underflow" ~expect_violation:false;
    frame_protocol ~wait:true ~name:"frame_reuse" ~expect_violation:false;
    fault_protocol ~fresh_read:true ~name:"fault_protocol" ~expect_violation:false;
    suspend_protocol ~publish:true ~name:"suspend_protocol" ~expect_violation:false;
  ]

(* The checker's self-test: each seeded mutation re-introduces one
   load-bearing line of the protocol as a bug, and the matching scenario
   must produce a counterexample. The last three are the per-family
   invariant mutants: their counterexamples come from the ownership
   invariants, not the end-of-run oracles. *)
let mutants =
  [
    Mutant_fence.two_exposed ~name:"mutant_drop_fence" ~expect_violation:true;
    Mutant_tag.last_task ~name:"mutant_drop_tag_bump" ~expect_violation:true;
    Mutant_repair.repair ~name:"mutant_drop_bot_repair" ~expect_violation:true;
    frame_protocol ~wait:false ~name:"mutant_frame_recycle_early" ~expect_violation:true;
    fault_protocol ~fresh_read:false ~name:"mutant_cancel_stale_read" ~expect_violation:true;
    suspend_protocol ~publish:false ~name:"mutant_resume_unpublished" ~expect_violation:true;
    Mutant_chase.last_task ~name:"mutant_chase_steal_store" ~expect_violation:true;
    Mutant_lace.double_expose ~name:"mutant_lace_expose_unchecked" ~expect_violation:true;
    Mutant_priv.underflow ~name:"mutant_private_pop_underflow" ~expect_violation:true;
  ]

let find name =
  List.find_opt (fun (s : Explore.scenario) -> s.Explore.name = name) (all @ mutants)
