(** Instrumented memory accesses for the interleaving checker.

    {!A} satisfies {!Lcws_deque.Deque_intf.ATOMIC} but performs the
    {!Yield} effect immediately {e before} every load, store, CAS, plain
    read and plain write. A deque compiled against it becomes a
    transition system: whoever handles [Yield] decides, access by access,
    which thread advances — which is exactly what {!Explore} does. *)

type kind = Load | Store | Cas | Read | Write

(** One shared-memory access about to happen: which cell (a per-run unique
    [loc], plus the [?name] given at creation) and how. *)
type access = { loc : int; name : string; kind : kind }

type _ Effect.t += Yield : access -> unit Effect.t

val kind_name : kind -> string

val is_write : kind -> bool

(** [conflict a b]: same location and at least one write — the dependence
    relation that drives sleep-set pruning. *)
val conflict : access -> access -> bool

val pp_access : Format.formatter -> access -> unit

(** Reset the location-id counter (and clear any name prefix); the
    explorer calls this before every re-execution so ids are stable
    across runs of one scenario. *)
val reset : unit -> unit

(** [with_prefix p f] runs [f] with [p] appended to the dynamically
    scoped prefix that {!A.make}/plain-cell creation prepend to cell
    names — e.g. [with_prefix "w0." ...] names a worker's cells
    ["w0.top"], ["w0.bot"], so multi-structure scenarios get
    distinguishable traces and per-structure invariants. Nests; the
    previous prefix is restored on exit. *)
val with_prefix : string -> (unit -> 'a) -> 'a

module A : Lcws_deque.Deque_intf.ATOMIC

(** [quiescent f] runs [f] with every [Yield] auto-continued — for
    scenario setup, oracle checks and drains, whose accesses are not part
    of the explored concurrency. *)
val quiescent : (unit -> 'a) -> 'a
