(* The instrumented instantiation of [Deque_intf.ATOMIC]: every access
   performs a [Yield] effect *before* touching memory, handing control to
   whatever scheduler installed a handler. [Explore] uses this to turn a
   deque compiled against this shim (lib/check/deques) into a transition
   system whose every shared-memory access is a scheduling point. *)

type kind = Load | Store | Cas | Read | Write

type access = { loc : int; name : string; kind : kind }

type _ Effect.t += Yield : access -> unit Effect.t

let kind_name = function
  | Load -> "load"
  | Store -> "store"
  | Cas -> "cas"
  | Read -> "read"
  | Write -> "write"

let is_write = function Store | Cas | Write -> true | Load | Read -> false

(* Two accesses conflict (are "dependent" in the DPOR sense) when they
   touch the same location and at least one mutates it. Swapping two
   adjacent non-conflicting steps cannot change any thread's observations,
   which is what licenses the sleep-set pruning in [Explore]. *)
let conflict a b = a.loc = b.loc && (is_write a.kind || is_write b.kind)

let pp_access ppf a = Format.fprintf ppf "%s %s" (kind_name a.kind) a.name

(* Location ids are allocated by a global counter so that re-running a
   scenario from scratch (the explorer's execution model) assigns the same
   ids, keeping schedules and sleep sets comparable across runs. *)
let counter = ref 0

(* Dynamically-scoped prefix applied to every cell name at creation:
   scenarios building several identical structures (one per model
   worker) wrap each construction in [with_prefix "w0."] etc., so
   traces and per-deque invariant callbacks can tell the copies
   apart. *)
let prefix = ref ""

let reset () =
  counter := 0;
  prefix := ""

let with_prefix p f =
  let saved = !prefix in
  prefix := saved ^ p;
  Fun.protect ~finally:(fun () -> prefix := saved) f

let fresh () =
  incr counter;
  !counter

module A : Lcws_deque.Deque_intf.ATOMIC = struct
  type 'a t = { mutable v : 'a; loc : int; name : string }

  let make ?(name = "cell") v = { v; loc = fresh (); name = !prefix ^ name }

  let get c =
    Effect.perform (Yield { loc = c.loc; name = c.name; kind = Load });
    c.v

  let set c v =
    Effect.perform (Yield { loc = c.loc; name = c.name; kind = Store });
    c.v <- v

  (* The deques use [exchange] only as a store (dropping the old value),
     so one [Store] scheduling point models it exactly. *)
  let exchange c v =
    Effect.perform (Yield { loc = c.loc; name = c.name; kind = Store });
    let old = c.v in
    c.v <- v;
    old

  (* Physical equality, like [Atomic.compare_and_set]; the deques only
     store immediates in their atomics. *)
  let compare_and_set c old nu =
    Effect.perform (Yield { loc = c.loc; name = c.name; kind = Cas });
    if c.v == old then begin
      c.v <- nu;
      true
    end
    else false

  type 'a plain = { mutable pv : 'a; ploc : int; pname : string }

  let plain ?(name = "cell") v = { pv = v; ploc = fresh (); pname = !prefix ^ name }

  let read c =
    Effect.perform (Yield { loc = c.ploc; name = c.pname; kind = Read });
    c.pv

  let write c v =
    Effect.perform (Yield { loc = c.ploc; name = c.pname; kind = Write });
    c.pv <- v
end

(* Run [f] with every [Yield] auto-continued: scenario setup, oracles and
   drains use the same instrumented deque but are not part of the explored
   concurrency, so their accesses must not reach the explorer. *)
let quiescent f =
  Effect.Deep.try_with f ()
    {
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield _ -> Some (fun (k : (a, _) Effect.Deep.continuation) -> Effect.Deep.continue k ())
          | _ -> None);
    }
