(** Deterministic interleaving exploration for the deque layer.

    A {!scenario} is a small concurrent script over a deque built with
    {!Sim_atomic.A}: an array of cooperative threads (owner first), at
    most one asynchronous signal (delivered to the owner; the handler is
    atomic with respect to the owner but interleaves with thieves), and a
    sequential oracle run after every complete interleaving.

    {!explore} enumerates every interleaving of the threads' shared-memory
    accesses by depth-first search with re-execution, pruning redundant
    branches with sleep sets (accesses to different locations, or two
    reads of the same location, commute). The search is exhaustive up to
    the run budget; everything is deterministic, so the reported
    interleaving counts are reproducible bit-for-bit. *)

(** Advance thread [i] by one shared-memory access, or deliver the
    pending signal. Index [Array.length threads] is the handler fiber. *)
type choice = Thread of int | Signal

type run_spec = {
  threads : (string * (unit -> unit)) array;
  signal : (string * (unit -> unit)) option;
  check : unit -> (unit, string) result;
}

type scenario = {
  name : string;
  descr : string;
  expect_violation : bool;
      (** demo scenarios (and seeded mutants) are supposed to fail *)
  spec : unit -> run_spec;
      (** builds a fresh deque + oracle; called once per execution, under
          {!Sim_atomic.quiescent} *)
}

type step = { who : choice; access : Sim_atomic.access option }

type violation = {
  message : string;
  steps : step list;  (** the exact failing interleaving *)
  schedule : choice list;  (** replayable via {!replay} *)
}

type report = {
  name : string;
  expect_violation : bool;
  runs : int;
  interleavings : int;
  pruned : int;
  exhausted : bool;
  violation : violation option;
}

val default_max_runs : int

(** [explore scenario] searches until a violation, exhaustion, or the run
    budget ([?max_runs], default {!default_max_runs} times the
    [LCWS_CHECK_BUDGET] environment multiplier). [?max_steps] bounds one
    execution's length (livelock guard). *)
val explore : ?max_runs:int -> ?max_steps:int -> scenario -> report

type replay = { result : (unit, string) result; steps : step list; lanes : string array }

(** Re-run one exact interleaving (completing it deterministically if the
    schedule is a prefix) and report the oracle's verdict. *)
val replay : scenario -> choice list -> max_steps:int -> replay

val choice_to_string : choice -> string

val schedule_to_string : choice list -> string

(** Inverse of {!schedule_to_string} ("0,1,s,2").
    @raise Invalid_argument on a malformed token. *)
val schedule_of_string : string -> choice list

val pp_step : string array -> Format.formatter -> step -> unit

val pp_report : Format.formatter -> report -> unit

(** Did reality match the scenario's expectation? *)
val passed : report -> bool

(** Counterexample as a Chrome trace: one lane per thread (plus one for
    signal delivery), one instant event per access, 1us per step. *)
val steps_to_chrome : lanes:string array -> step list -> Lcws_trace.Chrome_trace.Raw.t
