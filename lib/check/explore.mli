(** Deterministic interleaving exploration for the deque and scheduler
    protocol layers.

    A {!scenario} is a small concurrent script over structures built with
    {!Sim_atomic.A}: an array of cooperative threads (owner first), at
    most one asynchronous signal (delivered to the owner; the handler is
    atomic with respect to the owner but interleaves with thieves), an
    optional per-step {e invariant} evaluated at every scheduling point,
    and a sequential oracle run after every complete interleaving.

    {!explore} enumerates every interleaving of the threads' shared-memory
    accesses by depth-first search with re-execution, pruning redundant
    branches with sleep sets (accesses to different locations, or two
    reads of the same location, commute). Alternatively the search can be
    {e preemption-bounded} (CHESS-style): only schedules with at most [k]
    involuntary context switches are run, which covers the schedules most
    likely to expose bugs in scenarios whose full trees are intractable.
    Everything is deterministic, so the reported interleaving counts are
    reproducible bit-for-bit. *)

(** Advance thread [i] by one shared-memory access, or deliver the
    pending signal. Index [Array.length threads] is the handler fiber. *)
type choice = Thread of int | Signal

(** One executed scheduling step: who ran, and which access it performed
    ([None] for signal delivery, which has no access of its own). *)
type step = { who : choice; access : Sim_atomic.access option }

type run_spec = {
  threads : (string * (unit -> unit)) array;
  signal : (string * (unit -> unit)) option;
  invariant : (step -> (unit, string) result) option;
      (** checked quiescently after every executed step; it observes
          post-access memory, so it sees transient intermediate states
          the end-of-run oracle cannot *)
  check : unit -> (unit, string) result;
}

type scenario = {
  name : string;
  descr : string;
  expect_violation : bool;
      (** demo scenarios (and seeded mutants) are supposed to fail *)
  preempt : int option;
      (** this scenario's default preemption bound ([None] = unbounded
          sleep-set search); [LCWS_CHECK_PREEMPT] and [explore ~preempt]
          override it *)
  spec : unit -> run_spec;
      (** builds fresh structures + oracle; called once per execution,
          under {!Sim_atomic.quiescent} *)
}

type violation = {
  message : string;
  steps : step list;  (** the exact failing interleaving *)
  schedule : choice list;  (** replayable via {!replay} *)
}

type report = {
  name : string;
  expect_violation : bool;
  runs : int;
  interleavings : int;
  pruned : int;
  exhausted : bool;
  preempt_bound : int option;  (** the bound this search ran under *)
  violation : violation option;
}

val default_max_runs : int

(** [explore scenario] searches until a violation, exhaustion, or the run
    budget ([?max_runs], default {!default_max_runs} times the
    [LCWS_CHECK_BUDGET] environment multiplier). [?max_steps] bounds one
    execution's length (livelock guard). [?preempt] forces a preemption
    bound ([<= 0] forces unbounded); when absent, [LCWS_CHECK_PREEMPT]
    (positive bounds, [0] or negative forces unbounded) and then the
    scenario's own [preempt] field decide. *)
val explore : ?max_runs:int -> ?max_steps:int -> ?preempt:int -> scenario -> report

type replay = { result : (unit, string) result; steps : step list; lanes : string array }

(** Re-run one exact interleaving (completing it deterministically if the
    schedule is a prefix) and report the verdict — the per-step invariant
    is evaluated too, so an invariant counterexample fails at the same
    step it failed during exploration. *)
val replay : scenario -> choice list -> max_steps:int -> replay

(** Lane names (threads then handler) without running the search — for
    rendering a violation's steps with {!pp_trace}. *)
val scenario_lanes : scenario -> string array

val choice_to_string : choice -> string

val schedule_to_string : choice list -> string

(** Inverse of {!schedule_to_string} ("0,1,s,2").
    @raise Invalid_argument on a malformed token. *)
val schedule_of_string : string -> choice list

val pp_step : string array -> Format.formatter -> step -> unit

(** Columnar trace: one column per lane, one row per step, each access in
    its lane's column. *)
val pp_trace : lanes:string array -> Format.formatter -> step list -> unit

val pp_report : Format.formatter -> report -> unit

(** Did reality match the scenario's expectation? *)
val passed : report -> bool

(** Counterexample as a Chrome trace: one lane per thread (plus one for
    signal delivery), one instant event per access, 1us per step. *)
val steps_to_chrome : lanes:string array -> step list -> Lcws_trace.Chrome_trace.Raw.t
