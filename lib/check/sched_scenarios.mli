(** Scheduler-level scenarios for the interleaving checker.

    Where {!Scenarios} scripts raw deque operations, these scenarios run
    the {e mini-scheduler} of [lib/check/sched_model]: 2–3 model workers
    executing the scheduler's real protocol kernels
    ([lib/sched/sched_protocol.ml], recompiled against the yielding
    shim) over the real split-deque code — frame publish/reuse racing a
    steal, first-failure-wins scopes racing a cancel, future completion
    racing cancellation and waiter registration, the injector's drain
    racing submits, shutdown racing an in-flight submission, and the
    elastic pool's exposure-policy switch racing a steal request.

    Every scenario carries a small default preemption bound (its trees
    are deeper than the deque scripts'); the nightly sweep lifts it with
    [LCWS_CHECK_PREEMPT=0]. Each seeded kernel mutation is caught within
    the bounded search. *)

exception Chunk_failed of int

exception Cancelled

(** The clean catalogue: every scenario passes in every explored
    interleaving. *)
val all : Explore.scenario list

(** Seeded kernel mutations (early flag flip, CAS-less failure election,
    blind future completion, blind injector swing, dropped shutdown
    abort sweep, dropped policy-switch drain, dropped policy-switch
    re-read); every one must produce a counterexample. *)
val mutants : Explore.scenario list

val find : string -> Explore.scenario option
