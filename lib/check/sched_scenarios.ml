(* Scheduler-level scenarios: the deterministic mini-scheduler of
   [lib/check/sched_model] drives the *real* protocol kernels
   (sched_protocol.ml, recompiled in that library against the yielding
   shim) and the *real* split-deque code, so the explorer enumerates
   interleavings of the shipped frame/scope/future/injector protocols —
   not of a hand-written model of them.

   These trees are deeper than the deque scripts', so every scenario
   carries a small default preemption bound (CHESS-style): the per-push
   CI pass explores all schedules with few involuntary switches, which
   is where these protocols' bugs live, and the nightly sweep lifts the
   bound with LCWS_CHECK_PREEMPT=0. Each seeded kernel mutation below
   is caught *within* the bounded search — that is the self-test.

   Joins in the model are bounded, so [Gave_up] is a legal outcome the
   oracles account for (the schedule may simply never run the thief). *)

module E = Explore
module SA = Sim_atomic.A
module M = Lcws_sched_model.Sched_model
module P = Lcws_sched_model.Sched_protocol

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

(* Small default bound: enough switches for every seeded-mutant
   counterexample below (none needs more than two), small enough that
   the bounded trees stay sub-second. *)
let bound = Some 3

(* {2 Frame publication racing a steal}

   One fork/join whose child is stolen: the thief runs the frame's
   trampoline — the real [Frame.publish_with] — while the owner joins
   through pop-back / completion-flag paths. The protocol under test is
   result-then-flag publication order; [flip] seeds the early flag flip
   and the owner's consume can read the stale result. *)
let frame_steal ~flip ~name ~expect_violation =
  let mut = if flip then P.Frame.{ early_flip = true } else P.Frame.clean in
  {
    E.name;
    descr =
      "fork/steal/join of one frame child: the result must be published before the \
       completion flag"
      ^ if flip then " (early flip seeded, on purpose)" else "";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let w = M.make_worker ~frame_mutation:mut 0 in
        let thief = M.make_worker 1 in
        let outcome = ref None in
        let owner () =
          let fr = M.fork w (fun () -> Obj.repr 42) in
          ignore (M.expose w);
          outcome := Some (M.join w fr)
        in
        let thief_fn () =
          match M.try_steal ~thief w with Some t -> t () | None -> ()
        in
        {
          E.threads = [| ("owner", owner); ("thief", thief_fn) |];
          signal = None;
          invariant = None;
          check =
            (fun () ->
              match !outcome with
              | None -> Error "owner never joined"
              | Some (M.Value v) ->
                  let n : int = Obj.obj v in
                  let* () =
                    if n = 42 then Ok ()
                    else
                      Error
                        (Printf.sprintf
                           "frame: join consumed a stale result %d (want 42)" n)
                  in
                  if M.frames_in_use w = 0 then Ok ()
                  else Error "frame: joined frame was not released"
              | Some (M.Exn e) ->
                  Error ("frame: join raised " ^ Printexc.to_string e)
              | Some M.Gave_up ->
                  (* Legal: the schedule starved the thief. The frame must
                     then still be accounted as in flight. *)
                  if M.frames_in_use w = 1 then Ok ()
                  else Error "frame: gave-up join must leave the frame acquired");
        });
  }

(* {2 Scope failure election racing a fiber cancel}

   Two chunks of one parallel loop gate and fail concurrently while a
   third lane requests fiber cancellation — the real
   [Scope.gate]/[fail_with] protocol. The per-step invariant is the
   election's whole point: once an exception wins the slot, no later
   failure may replace it. [clobber] seeds the CAS-less version. *)
exception Chunk_failed of int

let scope_cancel ~clobber ~name ~expect_violation =
  let mut = if clobber then P.Scope.{ clobber = true } else P.Scope.clean in
  {
    E.name;
    descr =
      "loop-scope first-failure election racing a fiber cancel: the winning exception \
       must never be clobbered"
      ^ if clobber then " (election skipped, on purpose)" else "";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let pool_cancel = SA.make ~name:"pool_cancel" false in
        let fiber_cancel = SA.make ~name:"fiber_cancel" false in
        let scope = P.Scope.make ~name:"scope" ~cancel:fiber_cancel () in
        let chunk i () =
          match P.Scope.gate scope ~pool_cancel with
          | P.Scope.Run -> P.Scope.fail_with mut scope (Chunk_failed i)
          | P.Scope.Skip | P.Scope.Cancel -> ()
        in
        let canceller () = ignore (SA.exchange fiber_cancel true) in
        let invariant =
          let last = ref None in
          fun (_ : E.step) ->
            let cur = P.Scope.failure scope in
            match (!last, cur) with
            | Some e, Some e' when not (e == e') ->
                Error "scope: winning exception clobbered by a later failure"
            | _ ->
                last := cur;
                Ok ()
        in
        {
          E.threads =
            [| ("chunk-a", chunk 1); ("chunk-b", chunk 2); ("cancel", canceller) |];
          signal = None;
          invariant = Some invariant;
          check =
            (fun () ->
              if P.Scope.failed scope then
                match P.Scope.failure scope with
                | Some (Chunk_failed _) -> Ok ()
                | Some e ->
                    Error ("scope: unexpected exception " ^ Printexc.to_string e)
                | None -> Error "scope: flag set but no exception recorded"
              else Ok ());
        });
  }

(* {2 Future completion racing cancel and waiter registration}

   The one-word Pending→Done machine under its three real clients at
   once: the computation completing, a canceller completing with the
   cancellation outcome, and a waiter registering. Exactly one
   completion may win, and the waiter must run exactly once — whether
   the winner runs it or it ran itself on late registration.
   [blind] seeds the store-instead-of-CAS completion: two winners, or a
   freshly registered waiter silently dropped. *)
exception Cancelled

let future_race ~blind ~name ~expect_violation =
  let mut = if blind then P.Future_core.{ blind_complete = true } else P.Future_core.clean in
  {
    E.name;
    descr =
      "future completion CAS racing a cancel and a waiter registration: one winner, \
       the waiter resumes exactly once"
      ^ if blind then " (completion published blind, on purpose)" else "";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let fut = P.Future_core.make ~name:"fut" () in
        let wins = ref 0 and resumes = ref 0 in
        let settle = function
          | None -> ()
          | Some waiters ->
              incr wins;
              List.iter (fun f -> f ()) waiters
        in
        let completer () = settle (P.Future_core.complete_with mut fut (Ok 1)) in
        let canceller () =
          P.Future_core.request_cancel fut;
          settle (P.Future_core.complete fut (Error Cancelled))
        in
        let waiter () = P.Future_core.add_waiter fut (fun () -> incr resumes) in
        {
          E.threads =
            [| ("complete", completer); ("cancel", canceller); ("waiter", waiter) |];
          signal = None;
          invariant = None;
          check =
            (fun () ->
              let* () =
                if !wins = 1 then Ok ()
                else
                  Error
                    (Printf.sprintf "future: %d completions won (want exactly 1)" !wins)
              in
              let* () =
                if !resumes = 1 then Ok ()
                else
                  Error
                    (Printf.sprintf "future: waiter resumed %d times (want exactly 1)"
                       !resumes)
              in
              let* () =
                if P.Future_core.is_done fut then Ok ()
                else Error "future: not done after both completers ran"
              in
              if P.Future_core.cancel_requested fut then Ok ()
              else Error "future: cancellation request lost");
        });
  }

(* {2 Injector drain racing submits}

   Two producers push while a consumer drains — the real CAS
   functional-queue injector, including the back→front swing. Oracle:
   nothing lost or duplicated, and each producer's entries drain in its
   push order. [blind] seeds the store-published swing, which silently
   drops a push that landed since the read. *)
let injector_drain ~blind ~name ~expect_violation =
  let mut = if blind then P.Injector.{ blind_swing = true } else P.Injector.clean in
  {
    E.name;
    descr =
      "MPSC injector: two producers racing the consumer's drain; exactly-once and \
       per-producer FIFO"
      ^ if blind then " (back-to-front swing published blind, on purpose)" else "";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let q = P.Injector.create ~name:"injector" () in
        let got = ref [] in
        let prod_a () =
          ignore (P.Injector.push q 1);
          ignore (P.Injector.push q 2)
        in
        let prod_b () = ignore (P.Injector.push q 3) in
        let consumer () =
          for _ = 1 to 3 do
            match P.Injector.pop_with mut q with
            | Some x -> got := x :: !got
            | None -> ()
          done
        in
        {
          E.threads =
            [| ("producer-a", prod_a); ("producer-b", prod_b); ("consumer", consumer) |];
          signal = None;
          invariant = None;
          check =
            (fun () ->
              (* Quiescent drain of the leftovers: with no concurrent
                 pushes the seeded blind swing is indistinguishable from
                 the CAS, so the oracle's own pops cannot mask it. *)
              let rec drain acc =
                match P.Injector.pop_with mut q with
                | Some x -> drain (x :: acc)
                | None -> List.rev acc
              in
              let order = List.rev !got @ drain [] in
              let* () = Scenarios.exactly_once ~pushed:[ 1; 2; 3 ] ~got:order in
              let* () =
                Scenarios.increasing "producer-a"
                  (List.filter (fun x -> x <> 3) order)
              in
              let* () =
                if P.Injector.size q = 0 && P.Injector.is_empty q then Ok ()
                else Error "injector: drained queue reports residual size"
              in
              match P.Injector.close q with
              | [] -> Ok ()
              | l ->
                  Error
                    (Printf.sprintf "injector: close found %d entries after full drain"
                       (List.length l)));
        });
  }

(* {2 Shutdown racing an in-flight submission}

   The protocol the atomic-close injector exists for: a submitter's
   stop-check-then-push racing the pool's close-and-abort sweep and a
   worker's drain. Every accepted entry must settle exactly once — run
   by the drainer, or aborted (by the sweep, or by the submitter when
   its push is refused). [abort:false] seeds the shutdown that closes
   but drops the sweep, stranding an undrained entry. *)
let shutdown_race ~abort ~name ~expect_violation =
  {
    E.name;
    descr =
      "pool shutdown racing submit and drain: every accepted entry runs or aborts \
       exactly once"
      ^ if abort then "" else " (abort sweep dropped, on purpose)";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let p = M.make_pool () in
        let w = M.make_worker 0 in
        let ran = ref 0 and aborted = ref 0 in
        let submitted = ref None in
        let submitter () =
          let entry =
            M.{ ij_run = (fun () -> incr ran); ij_abort = (fun () -> incr aborted) }
          in
          submitted := Some (M.submit p entry)
        in
        let drainer () =
          if M.drain p w then
            match M.pop_own w with Some t -> t () | None -> ()
        in
        let closer () = M.shutdown ~skip_abort:(not abort) p in
        {
          E.threads =
            [| ("submit", submitter); ("drain", drainer); ("shutdown", closer) |];
          signal = None;
          invariant = None;
          check =
            (fun () ->
              let* () =
                if P.Injector.is_closed p.M.injector then Ok ()
                else Error "shutdown: injector left open"
              in
              match !submitted with
              | None -> Error "shutdown: submitter never ran"
              | Some M.Rejected ->
                  if !ran = 0 && !aborted = 0 then Ok ()
                  else Error "shutdown: rejected entry still ran or aborted"
              | Some M.Accepted ->
                  if !ran + !aborted = 1 then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "shutdown: accepted entry settled %d times (ran %d, aborted \
                          %d; want exactly once)"
                         (!ran + !aborted) !ran !aborted));
        });
  }

(* {2 Worker parking racing a task publication}

   The idle-worker park/wake protocol ([Sched_protocol.Park]): a parker
   announces itself (parked-count increment), re-checks for work, and
   blocks on a wake generation; a publisher stores a task and rings the
   doorbell — one load of the parked count, a generation bump only if
   somebody announced. The explorer enumerates every interleaving of
   the two, which is exactly the Dekker argument the protocol rests on:
   either the publisher's load sees the announce (ring fires), or the
   announce came later and the parker's re-check sees the published
   task. [skip] seeds the lost-wakeup mutant — announce straight to
   block, no re-check — whose counterexample is the fully sequential
   publisher-then-parker schedule (zero preemptions).

   The parker composes the kernel's primitive steps rather than calling
   [park_with]: the model's stand-in for blocking is a bounded spin on
   [should_block], and when that spin expires the parker must stay
   *announced* — a real sleeper still holds its slot in the parked
   count, so a publisher arriving later sees it and bumps. Retracting
   on expiry (as [park_with] does around a returning [block]) would
   make the late publisher's ring legitimately see zero and the oracle
   would flag the clean kernel. An expired parker also skips the
   post-wake re-check: it models a worker asleep forever, and letting
   it consume the task on the way out would mask the seeded mutant. *)
let park_wake ~skip ~name ~expect_violation =
  let mut = if skip then P.Park.{ skip_recheck = true } else P.Park.clean in
  {
    E.name;
    descr =
      "idle-worker park racing a task publication: the announce/re-check order must \
       close the lost-wakeup window"
      ^ if skip then " (re-check skipped, on purpose)" else "";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let park = P.Park.make ~name:"park" () in
        let work = SA.make ~name:"work" false in
        let consumed = ref false in
        let lost = ref false in
        let ticket_r = ref 0 in
        (* Acquire, never observe: the re-check that justifies refusing
           to block must take responsibility for the task it saw. *)
        let acquire () = SA.compare_and_set work true false in
        let parker () =
          let ticket = P.Park.announce park in
          ticket_r := ticket;
          if (not mut.P.Park.skip_recheck) && acquire () then begin
            P.Park.retract park;
            consumed := true
          end
          else begin
            let spins = ref 0 in
            while P.Park.should_block park ~ticket && !spins < 2 do
              incr spins
            done;
            if P.Park.should_block park ~ticket then
              (* Still told to block after the bounded spin: the model's
                 "asleep forever". No retract, no consumption. *)
              lost := true
            else begin
              P.Park.retract park;
              if acquire () then consumed := true
            end
          end
        in
        let publisher () =
          SA.set work true;
          (* The owner-side ring: one load of the parked count; the
             generation bump (under the dock mutex in the real pool)
             only when somebody announced. *)
          if P.Park.ring park then P.Park.bump park
        in
        {
          E.threads = [| ("parker", parker); ("publisher", publisher) |];
          signal = None;
          invariant = None;
          check =
            (fun () ->
              let expected_parked = if !lost then 1 else 0 in
              let* () =
                if P.Park.parked park = expected_parked then Ok ()
                else
                  Error
                    (Printf.sprintf "park: parked count %d at quiescence (want %d)"
                       (P.Park.parked park) expected_parked)
              in
              let* () =
                match (!consumed, SA.get work) with
                | true, true -> Error "park: task both consumed and still published"
                | false, false -> Error "park: task vanished without a consumer"
                | _ -> Ok ()
              in
              (* The oracle: a parker asleep past the spin bound is only
                 a lost wakeup if nothing will ever wake it — the task
                 is still published and the generation never moved. An
                 expiry with a later bump is the model artifact of a
                 slow doorbell, not a protocol violation. *)
              if !lost && SA.get work && P.Park.should_block park ~ticket:!ticket_r
              then
                Error
                  "park: lost wakeup — parker blocked forever while a task is published"
              else Ok ());
        });
  }

(* {2 Batch steal (steal-half) racing the owner's public pops}

   The scheduler-level shape of [steal_once] with [steal_batch > 1]: the
   owner exposes half of a deep deque, then takes public work back from
   the bottom while a thief batch-steals from the top, keeps the first
   task and pushes the extras into its *own* deque — the cross-deque
   transfer the real scheduler performs. The oracle is exactly-once over
   both deques; the per-step invariant is the split deque's ownership
   discipline, which must hold through every intermediate claim of the
   batch.

   [over_copy] seeds the unsound batch protocol (copy the slots, then
   claim them all with one CAS advancing [top] by [k]): the owner's
   plain public pop never touches [age], so a pop landing between the
   thief's copy and its CAS is double-taken — the counterexample needs
   one owner pop and two context switches, well inside the bound. The
   shipped incremental protocol (one CAS per claim, [public_bot]
   re-read in between) must survive every interleaving. *)

module Split = Lcws_sim_deque.Split_deque

module Split_steal_over_copy = Split.Make_mutant (struct
  let mutation = { Split.Mutation.none with Split.Mutation.steal_over_copy = true }
end)

let steal_half ~over_copy ~name ~expect_violation =
  let steal_many d ~limit ~into ~metrics =
    if over_copy then Split_steal_over_copy.steal_many d ~limit ~into ~metrics
    else Split.steal_many d ~limit ~into ~metrics
  in
  {
    E.name;
    descr =
      "steal-half batch transfer: owner pop_public_bottom racing a thief's multi-claim \
       steal_many, extras re-pushed into the thief's deque"
      ^ if over_copy then " (single-CAS batch claim seeded, on purpose)" else "";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let metrics = Lcws_sync.Metrics.create () in
        let owner_d =
          Sim_atomic.with_prefix "w0." (fun () ->
              Split.create ~capacity:16 ~dummy:0 ~metrics ())
        in
        let thief_d =
          Sim_atomic.with_prefix "w1." (fun () ->
              Split.create ~capacity:16 ~dummy:0 ~metrics:(Lcws_sync.Metrics.create ()) ())
        in
        let pushed = [ 1; 2; 3; 4 ] in
        List.iter (fun i -> Split.push_bottom owner_d i) pushed;
        (* Expose everything: [pop_public_bottom]'s plain-take path
           repairs [bot <- public_bot], so the owner may only call it
           with an empty private part ([pop_own]'s discipline). Four
           public tasks give the thief a 2-claim window ([avail/2]). *)
        for _ = 1 to 4 do
          ignore (Split.update_public_bottom owner_d ~policy:Lcws_deque.Deque_intf.Expose_one)
        done;
        let og = ref [] and tg = ref [] in
        (* Three owner pops walk down to slot [top+1], inside the
           thief's 2-slot claim window ([avail/2 = 2]) — the overlap the
           seeded single-CAS batch double-takes. *)
        let owner () =
          for _ = 1 to 3 do
            match Split.pop_public_bottom owner_d with
            | Some x -> og := x :: !og
            | None -> ()
          done
        in
        let thief_m = Lcws_sync.Metrics.create () in
        let thief () =
          let into = Array.make 3 0 in
          match steal_many owner_d ~limit:4 ~into ~metrics:thief_m with
          | Lcws_deque.Deque_intf.Stolen first, extra ->
              (* [steal_once]'s shape: run the first task, push the rest
                 into the thief's own deque oldest-first... *)
              tg := first :: !tg;
              for i = 0 to extra - 1 do
                Split.push_bottom thief_d into.(i)
              done;
              (* ...where the thief's later own-pops find them. *)
              let continue = ref true in
              while !continue do
                match Split.pop_bottom thief_d with
                | Some x -> tg := x :: !tg
                | None -> continue := false
              done
          | (Empty | Abort | Private_work), _ -> ()
        in
        let drain d =
          let out = ref [] in
          let m = Lcws_sync.Metrics.create () in
          let continue = ref true in
          while !continue do
            match Split.pop_bottom d with
            | Some x -> out := x :: !out
            | None -> (
                match Split.pop_public_bottom d with
                | Some x -> out := x :: !out
                | None -> (
                    match Split.pop_top d ~metrics:m with
                    | Lcws_deque.Deque_intf.Stolen x -> out := x :: !out
                    | Lcws_deque.Deque_intf.Abort -> ()
                    | Lcws_deque.Deque_intf.Empty | Lcws_deque.Deque_intf.Private_work ->
                        continue := false))
          done;
          List.rev !out
        in
        let split_inv = Scenarios.split_invariant ~threads:2 owner_d in
        {
          E.threads = [| ("owner", owner); ("thief", thief) |];
          signal = None;
          invariant = Some split_inv;
          check =
            (fun () ->
              let got = List.rev !og @ List.rev !tg @ drain owner_d @ drain thief_d in
              let* () = Scenarios.exactly_once ~pushed ~got in
              (* The thief's claims walk the public window top-down, so
                 its kept-first + extras arrive oldest-first. *)
              Scenarios.increasing "thief batch" (List.rev !tg));
        });
  }

(* {2 Exposure-policy switch racing a steal request}

   The elastic pool's switch protocol ([Sched_protocol.Policy_switch]):
   the governor has already CAS-published a proposal (done in setup —
   the propose itself is a single CAS with no interesting
   interleavings), and the explorer enumerates the owner's adoption
   racing a thief's request delivery. The hazard is the half-switched
   deque: each exposure discipline has its own request channel (the
   [targeted] flag for the unsynchronized policy, [signal_pending] for
   the handshake), and a request deposited on a channel the owner has
   stopped polling is a lost steal — the thief backs off forever while
   the owner's public deque stays unexposed.

   The kernel closes the window from both sides, and each side is one
   seeded mutant here. Owner side: flip [active] {e first}, then drain
   the retired channel — the flip is the linearization point, so any
   deposit the drain misses happened after the flip and the thief's
   re-read sees the new word ([no_ack] drops the drain). Thief side:
   deposit, then re-read [active] and re-deposit on the new channel if
   the word moved — the Dekker dual of the owner's flip-then-drain
   ([stale_epoch] drops the re-read).

   The model gives each channel an SA cell manipulated inside the
   [drain]/[send] callbacks, exactly how the scheduler wires the kernel
   to its real flags. After adopting, the owner polls only the channel
   of the {e new} active mode — that selectivity is the whole reason
   the drain must exist. The oracle tolerates benign residue on the
   retired channel (a double-delivered request is a spurious wakeup,
   served idempotently by the real scheduler): the violation is a
   request that is nowhere — never served, and absent from the channel
   the owner now polls. *)
let policy_switch ~no_ack ~stale_epoch ~name ~expect_violation =
  let mut = P.Policy_switch.{ no_ack; stale_epoch } in
  {
    E.name;
    descr =
      "exposure-policy switch racing a steal request: the flip/drain and \
       deposit/re-read handshakes must strand no request on a retired channel"
      ^ (if no_ack then " (retired-channel drain dropped, on purpose)" else "")
      ^ if stale_epoch then " (thief's re-read dropped, on purpose)" else "";
    expect_violation;
    preempt = bound;
    spec =
      (fun () ->
        let ps = P.Policy_switch.make ~name:"ps" ~mode:P.Policy_switch.unsync () in
        (* Governor, ahead of the race: unsync -> handshake proposed. *)
        assert (P.Policy_switch.propose ps ~mode:P.Policy_switch.handshake);
        let chan_unsync = SA.make ~name:"chan_unsync" false in
        let chan_hand = SA.make ~name:"chan_hand" false in
        let chan mode =
          if mode = P.Policy_switch.handshake then chan_hand else chan_unsync
        in
        let served = ref 0 in
        (* Take, never observe: consuming a deposit commits the owner to
           serving it (exposing / answering the handshake). *)
        let take_and_serve mode = if SA.exchange (chan mode) false then incr served in
        let owner () =
          ignore
            (P.Policy_switch.adopt_with mut ps
               ~drain:(fun ~mode -> take_and_serve mode));
          (* The owner's next poll point: it now polls only the channel
             of the discipline it just adopted. *)
          take_and_serve (P.Policy_switch.active_mode ps)
        in
        let thief () =
          P.Policy_switch.request_with mut ps ~send:(fun ~mode ->
              SA.set (chan mode) true)
        in
        {
          E.threads = [| ("owner", owner); ("thief", thief) |];
          signal = None;
          invariant = None;
          check =
            (fun () ->
              let* () =
                if P.Policy_switch.acked ps then Ok ()
                else Error "switch: owner never adopted the proposed policy"
              in
              let* () =
                if P.Policy_switch.active_mode ps = P.Policy_switch.handshake
                then Ok ()
                else Error "switch: active mode is not the proposed handshake"
              in
              let* () =
                (* At most the deposit and one re-deposit can be served. *)
                if !served <= 2 then Ok ()
                else
                  Error
                    (Printf.sprintf "switch: request served %d times (want <= 2)"
                       !served)
              in
              let live = chan (P.Policy_switch.active_mode ps) in
              if !served = 0 && not (SA.get live) then
                Error
                  "switch: steal request lost — never served and stranded on a \
                   retired channel the owner no longer polls"
              else Ok ());
        });
  }

(* {2 The catalogue} *)

let all =
  [
    frame_steal ~flip:false ~name:"sched_frame_steal" ~expect_violation:false;
    scope_cancel ~clobber:false ~name:"sched_scope_cancel" ~expect_violation:false;
    future_race ~blind:false ~name:"sched_future_race" ~expect_violation:false;
    injector_drain ~blind:false ~name:"sched_injector_drain" ~expect_violation:false;
    shutdown_race ~abort:true ~name:"sched_shutdown_race" ~expect_violation:false;
    park_wake ~skip:false ~name:"sched_park_wake" ~expect_violation:false;
    steal_half ~over_copy:false ~name:"sched_steal_half" ~expect_violation:false;
    policy_switch ~no_ack:false ~stale_epoch:false ~name:"sched_policy_switch"
      ~expect_violation:false;
  ]

(* Self-test: one seeded kernel mutation per protocol, each caught within
   the default preemption bound. *)
let mutants =
  [
    frame_steal ~flip:true ~name:"mutant_frame_flip_first" ~expect_violation:true;
    scope_cancel ~clobber:true ~name:"mutant_scope_clobber" ~expect_violation:true;
    future_race ~blind:true ~name:"mutant_future_blind_complete" ~expect_violation:true;
    injector_drain ~blind:true ~name:"mutant_injector_blind_pop" ~expect_violation:true;
    shutdown_race ~abort:false ~name:"mutant_shutdown_drop_abort" ~expect_violation:true;
    park_wake ~skip:true ~name:"mutant_park_skip_recheck" ~expect_violation:true;
    steal_half ~over_copy:true ~name:"mutant_steal_over_copy" ~expect_violation:true;
    policy_switch ~no_ack:true ~stale_epoch:false ~name:"mutant_switch_no_ack"
      ~expect_violation:true;
    policy_switch ~no_ack:false ~stale_epoch:true
      ~name:"mutant_switch_stale_epoch" ~expect_violation:true;
  ]

let find name = List.find_opt (fun (s : E.scenario) -> s.E.name = name) (all @ mutants)
