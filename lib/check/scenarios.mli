(** The scenario catalogue for the interleaving checker.

    Each scenario is a few-step concurrent script over one deque with a
    sequential oracle (exactly-once consumption, owner-LIFO, thief-FIFO,
    coherent abort accounting), sized for sub-second exhaustive
    exploration. The split-deque scripts are a functor over
    {!Lcws_deque.Split_deque.S}, so the same scenarios run the clean
    deque (must pass in every interleaving) and the seeded
    [Make_mutant] bugs (must each yield a counterexample). *)

(** Oracle building blocks, exported for tests. *)

val exactly_once : pushed:int list -> got:int list -> (unit, string) result

val increasing : string -> int list -> (unit, string) result

val decreasing : string -> int list -> (unit, string) result

(** The split deque's per-step ownership invariant ([bot]/[public_bot]
    owner-written only, thieves advance [top] only by CAS on [age], no
    top rewind within one ABA tag), exported so scheduler-level
    scenarios can assert it through batch transfers too. [threads] is
    the scenario's thread count (the signal-handler lane, at index
    [threads], mutates with the owner's rights). *)
val split_invariant :
  threads:int ->
  'a Lcws_sim_deque.Split_deque.t ->
  Explore.step ->
  (unit, string) result

module Mk_split
    (S : Lcws_deque.Split_deque.S
           with type 'a t = 'a Lcws_sim_deque.Split_deque.t) : sig
  val last_task : name:string -> expect_violation:bool -> Explore.scenario

  val two_exposed : name:string -> expect_violation:bool -> Explore.scenario

  val signal_pop : safe:bool -> name:string -> expect_violation:bool -> Explore.scenario

  val repair : name:string -> expect_violation:bool -> Explore.scenario

  val expose_half : name:string -> expect_violation:bool -> Explore.scenario
end

(** The scheduler's join-frame recycling protocol (result slot + SC
    completion word), modeled directly on simulated cells. [wait:true] is
    the real protocol (owner reuses the frame only after observing the
    completion flag); [wait:false] seeds the recycled-too-early bug and
    must yield a counterexample. *)
val frame_protocol : wait:bool -> name:string -> expect_violation:bool -> Explore.scenario

(** The scheduler's loop-scope cancellation protocol (first-failure-wins
    CAS + per-chunk flag re-read), modeled on simulated cells.
    [fresh_read:true] is the real protocol; [fresh_read:false] seeds the
    flag read hoisted out of the chunk loop — the classic stale
    non-atomic read — and must yield a counterexample. *)
val fault_protocol :
  fresh_read:bool -> name:string -> expect_violation:bool -> Explore.scenario

(** The scheduler's fiber suspension handshake (payload publish before
    the SC state flip, one-shot waiter-claim CAS, post-registration
    completion re-check), modeled on simulated cells. [publish:true] is
    the real protocol; [publish:false] seeds the resume fired without
    re-publishing the frame state and must yield a counterexample. *)
val suspend_protocol :
  publish:bool -> name:string -> expect_violation:bool -> Explore.scenario

(** The standing catalogue: clean deques (plus the deliberate
    [split_signal_unsafe_demo], which reproduces the paper's Section 4
    bug and is {e expected} to fail). *)
val all : Explore.scenario list

(** Seeded-mutation self-tests; every one must produce a violation. *)
val mutants : Explore.scenario list

val find : string -> Explore.scenario option
