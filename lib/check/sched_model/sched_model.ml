(* The deterministic mini-scheduler: just enough of [scheduler.ml]'s
   policy — per-worker frame pools, the join discipline, the
   submit/drain/shutdown wiring — to drive the *real* protocol kernels
   (sched_protocol.ml, recompiled in this library against the yielding
   shim) over the *real* split-deque code (lib/check/deques), so the
   explorer can enumerate interleavings of 2-3 model workers running
   the shipped frame/scope/future/injector protocols.

   What is deliberately absent: domains, condvars, backoff, tracing,
   fault injection — everything whose only role is performance or
   observability. What is deliberately faithful, because the checker's
   value lies exactly there:

   - [fork]/[join] mirror [fork_join]: install the child in a pooled
     frame, push the frame's preallocated trampoline, join by popping
     it back (physical-identity fast path that never touches
     state/result) or — stolen — by waiting on the completion flag and
     [consume]ing;
   - a trampoline runs [Frame.publish_with]: execute the installed
     child, publish result-then-flag (the mutant knob flips first);
   - [submit]/[drain]/[shutdown] mirror [Pool.submit]/[drain_injector]/
     [Pool.shutdown]: stop precheck, push-or-abort on a closed
     injector, drain into the drainer's deque, close-and-abort sweep.

   Joins are bounded ([polls]): under exploration a schedule may simply
   never run the thief, so a model owner must be able to give up —
   [Gave_up] is a legal outcome the scenarios' oracles account for, not
   a failure. *)

module A = Atomic_shim
module P = Sched_protocol
module Sim = Lcws_check_sim.Sim_atomic
module Split = Lcws_sim_deque.Split_deque
open Lcws_deque.Deque_intf

type task = unit -> unit

type worker = {
  id : int;
  deque : task Split.t;
  metrics : Lcws_sync.Metrics.t;
  frames : task P.Frame.t array; (* LIFO frame pool... *)
  mutable frame_top : int; (* ...and its stack pointer *)
}

(* Cells created here get a "w<id>." name prefix, so traces read
   "w0.state"/"w1.age" and per-worker invariants can tell deques
   apart. *)
let make_worker ?(frames = 4) ?(capacity = 16) ?(frame_mutation = P.Frame.clean) id =
  Sim.with_prefix
    (Printf.sprintf "w%d." id)
    (fun () ->
      let metrics = Lcws_sync.Metrics.create () in
      let deque = Split.create ~capacity ~dummy:ignore ~metrics () in
      let mk _ =
        let fr = P.Frame.make ~task:ignore () in
        fr.P.Frame.task <- (fun () -> P.Frame.publish_with frame_mutation fr);
        fr
      in
      { id; deque; metrics; frames = Array.init frames mk; frame_top = 0 })

let acquire w =
  let top = w.frame_top in
  if top >= Array.length w.frames then failwith "Sched_model: frame pool exhausted";
  w.frame_top <- top + 1;
  w.frames.(top)

let release w fr =
  let top = w.frame_top - 1 in
  assert (w.frames.(top) == fr);
  w.frame_top <- top

let frames_in_use w = w.frame_top

(* [fork_join]'s fork half: acquire a frame, install this use's child,
   push the preallocated trampoline in place of a per-call closure. *)
let fork w (g : unit -> Obj.t) =
  let fr = acquire w in
  P.Frame.set_fn fr g;
  Split.push_bottom w.deque fr.P.Frame.task;
  fr

(* Owner-side lookup, [pop_own]'s shape: private part first, then the
   public part. *)
let pop_own w =
  match Split.pop_bottom w.deque with
  | Some _ as r -> r
  | None -> Split.pop_public_bottom w.deque

(* [handle_signal]'s core: transfer one private task to the public
   part, so a thief lane has something to steal. *)
let expose w = Split.update_public_bottom w.deque ~policy:Expose_one

(* A thief's probe of [victim]'s deque; the caller runs the task (which
   for a frame trampoline executes and publishes the child). *)
let try_steal ~thief victim =
  match Split.pop_top victim.deque ~metrics:thief.metrics with
  | Stolen t -> Some t
  | Empty | Abort | Private_work -> None

type outcome = Value of Obj.t | Exn of exn | Gave_up

(* [join_frame]'s discipline. Fast path: the frame's own trampoline
   pops straight back (physical identity) and the child runs inline —
   state/result never touched. Foreign task above it: run and retry.
   Nothing to pop: the child was stolen; wait (bounded) for the
   completion flag, then consume and recycle. On [Gave_up] the frame
   stays acquired — the child is still in flight somewhere. *)
let join ?(polls = 4) w fr =
  let rec loop () =
    match pop_own w with
    | Some t ->
        if t == fr.P.Frame.task then begin
          match P.Frame.fn fr () with
          | v ->
              release w fr;
              Value v
          | exception e ->
              release w fr;
              Exn e
        end
        else begin
          t ();
          loop ()
        end
    | None ->
        let rec wait n =
          if not (P.Frame.is_pending fr) then begin
            let r = P.Frame.consume fr in
            release w fr;
            match r with Ok v -> Value v | Error e -> Exn e
          end
          else if n <= 0 then Gave_up
          else wait (n - 1)
        in
        wait polls
  in
  loop ()

(* {2 The model pool: external submission and shutdown} *)

(* As in the scheduler: the task to run, and what to do with it if the
   pool shuts down before any worker drained it. *)
type injected = { ij_run : task; ij_abort : unit -> unit }

type pool = {
  injector : injected P.Injector.t;
  stop : bool A.t; (* [pool.stop]: no new submissions *)
  cancel : bool A.t; (* [pool.cancel_requested] *)
}

let make_pool () =
  {
    injector = P.Injector.create ~name:"injector" ();
    stop = A.make ~name:"stop" false;
    cancel = A.make ~name:"cancel" false;
  }

type submit_result =
  | Accepted (* enqueued, or refused-and-aborted: the future settles *)
  | Rejected (* [Pool.submit]'s stop precheck: invalid_arg, nothing created *)

(* [Pool.submit] + [inject]: the stop precheck, then the push; a push
   refused by a concurrently-closed injector aborts the entry on the
   submitter, which is precisely the protocol under test in the
   shutdown scenario. *)
let submit p entry =
  if A.get p.stop then Rejected
  else if P.Injector.push p.injector entry then Accepted
  else begin
    entry.ij_abort ();
    Accepted
  end

(* [drain_injector]: probe, pop, and hand the entry to the drainer's
   own deque so it flows through the ordinary push/pop/steal
   protocol. *)
let drain p w =
  if P.Injector.is_empty p.injector then false
  else
    match P.Injector.pop p.injector with
    | None -> false
    | Some e ->
        Split.push_bottom w.deque e.ij_run;
        true

(* [Pool.shutdown]'s injector half: elect one closer, request
   cancellation, close the injector and abort everything it returns.
   [skip_abort] is the seeded mutant — a shutdown that closes but drops
   the abort sweep strands every undrained future. *)
let shutdown ?(skip_abort = false) p =
  if A.compare_and_set p.stop false true then begin
    ignore (A.exchange p.cancel true);
    match P.Injector.close p.injector with
    | [] -> ()
    | entries -> if not skip_abort then List.iter (fun e -> e.ij_abort ()) entries
  end
