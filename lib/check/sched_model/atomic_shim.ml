(* Swap shim: in this library every protocol-kernel memory access goes
   through the instrumented atomics, which perform [Sim_atomic.Yield]
   before each load/store/CAS/plain access. *)
include Lcws_check_sim.Sim_atomic.A
