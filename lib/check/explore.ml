(* Bounded exhaustive exploration of thread interleavings, DSCheck-style:
   scenario threads run as effect-based cooperative fibers over
   [Sim_atomic.A]; every shared access is a scheduling point; the explorer
   enumerates schedules by depth-first search with re-execution, pruning
   provably redundant branches with sleep sets (a lightweight cut of
   dynamic partial-order reduction). *)

(* A scheduling decision: advance thread [i] (index [Array.length threads]
   is the signal handler once delivered), or deliver the pending signal. *)
type choice = Thread of int | Signal

type run_spec = {
  threads : (string * (unit -> unit)) array;
      (** concurrent bodies; by convention index 0 is the deque's owner *)
  signal : (string * (unit -> unit)) option;
      (** at most one asynchronous signal, delivered to thread 0: while the
          handler runs, thread 0 is blocked (a handler is atomic with
          respect to the thread it interrupts) but thieves keep running *)
  check : unit -> (unit, string) result;
      (** the oracle, run quiescently after every complete interleaving *)
}

type scenario = {
  name : string;
  descr : string;
  expect_violation : bool;
  spec : unit -> run_spec;
}

type step = { who : choice; access : Sim_atomic.access option }

type violation = { message : string; steps : step list; schedule : choice list }

type report = {
  name : string;
  expect_violation : bool;
  runs : int;  (** executions started, including pruned ones *)
  interleavings : int;  (** complete maximal interleavings executed *)
  pruned : int;  (** executions abandoned as sleep-set-redundant *)
  exhausted : bool;  (** the whole (reduced) schedule tree was covered *)
  violation : violation option;
}

(* {2 Cooperative fibers} *)

type tstate =
  | Waiting of Sim_atomic.access * (unit, unit) Effect.Deep.continuation
  | Finished

(* Each fiber runs under a deep handler that parks (access, continuation)
   in its cell at every [Yield]. Starting or resuming a fiber therefore
   runs it up to its next access; the access itself happens after the
   yield, i.e. when the *next* resume is granted. *)
let fiber_handler cell =
  {
    Effect.Deep.retc = (fun () -> cell := Finished);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sim_atomic.Yield access ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) -> cell := Waiting (access, k))
        | _ -> None);
  }

type engine = {
  spec : run_spec;
  cells : tstate ref array;  (** length [n+1]; slot [n] is the handler *)
  mutable delivered : bool;
}

let n_threads e = Array.length e.spec.threads

let start spec =
  let n = Array.length spec.threads in
  let cells = Array.init (n + 1) (fun _ -> ref Finished) in
  let e = { spec; cells; delivered = false } in
  for i = 0 to n - 1 do
    let _, body = spec.threads.(i) in
    Effect.Deep.match_with body () (fiber_handler cells.(i))
  done;
  e

let handler_active e =
  e.delivered && (match !(e.cells.(n_threads e)) with Waiting _ -> true | Finished -> false)

let all_finished e =
  Array.for_all (fun c -> match !c with Finished -> true | Waiting _ -> false) e.cells

(* Enabled choices, in a fixed deterministic order: threads by index (the
   owner is suppressed while its signal handler runs), then the handler
   slot, then signal delivery. Delivery is optional — schedules that never
   take [Signal] model the signal arriving after the scenario is over. *)
let enabled e =
  let n = n_threads e in
  let out = ref (if e.spec.signal <> None && not e.delivered then [ (Signal, None) ] else []) in
  for i = n downto 0 do
    match !(e.cells.(i)) with
    | Waiting (a, _) -> if not (i = 0 && handler_active e) then out := (Thread i, Some a) :: !out
    | Finished -> ()
  done;
  !out

(* Execute one choice: resuming a fiber performs its pending access and
   runs it to the next one; delivering the signal starts the handler fiber
   (no access of its own — the handler's accesses are subsequent
   [Thread n] steps). Returns the access the step performed. *)
let exec e c =
  match c with
  | Signal ->
      e.delivered <- true;
      (match e.spec.signal with
      | Some (_, body) -> Effect.Deep.match_with body () (fiber_handler e.cells.(n_threads e))
      | None -> invalid_arg "Explore: Signal chosen but no signal in spec");
      None
  | Thread i -> (
      match !(e.cells.(i)) with
      | Waiting (a, k) ->
          Effect.Deep.continue k ();
          Some a
      | Finished -> invalid_arg "Explore: chose a finished thread")

(* {2 Sleep-set DFS by re-execution} *)

(* One decision point on the current DFS path. [sleep0] is the sleep set
   on entry (choices whose subtrees are covered by sibling branches
   elsewhere); [tried] are siblings already fully explored here. *)
type node = {
  mutable chosen : choice;
  mutable chosen_access : Sim_atomic.access option;
  mutable to_try : choice list;
  mutable tried : (choice * Sim_atomic.access option) list;
  sleep0 : (choice * Sim_atomic.access option) list;
}

(* [Signal] steps and instantly-finishing handlers carry no access; treat
   them as dependent with everything (delivery does not commute with owner
   steps — it blocks the owner), which keeps the pruning sound. *)
let dependent a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some a, Some b -> Sim_atomic.conflict a b

let filter_indep sleep a = List.filter (fun (_, a') -> not (dependent a' a)) sleep

type outcome = Passed | Failed of string | Pruned_run

(* Re-execute the scenario from scratch, following [prefix] (the current
   DFS path), then extend it greedily with first-not-asleep choices,
   materialising a new node per fresh decision. Every shared access is a
   decision point, so nodes and steps are one-to-one. *)
let exec_run spec_fn prefix ~max_steps =
  Sim_atomic.reset ();
  let steps = ref [] in
  let new_nodes = ref [] in
  let record who access = steps := { who; access } :: !steps in
  let outcome =
    try
      let spec = Sim_atomic.quiescent spec_fn in
      let e = start spec in
      let rec go sleep depth prefix_rest =
        if depth > max_steps then
          Failed (Printf.sprintf "step budget exceeded (%d): livelock?" max_steps)
        else if all_finished e then
          match Sim_atomic.quiescent e.spec.check with Ok () -> Passed | Error m -> Failed m
        else
          let en = enabled e in
          if en = [] then Failed "deadlock: runnable threads but no enabled choice"
          else
            match prefix_rest with
            | node :: rest ->
                let a = exec e node.chosen in
                node.chosen_access <- a;
                record node.chosen a;
                go (filter_indep (node.sleep0 @ node.tried) a) (depth + 1) rest
            | [] -> (
                let awake =
                  List.filter
                    (fun (c, _) -> not (List.exists (fun (c', _) -> c' = c) sleep))
                    en
                in
                match awake with
                | [] -> Pruned_run
                | (c, _) :: others ->
                    let node =
                      {
                        chosen = c;
                        chosen_access = None;
                        to_try = List.map fst others;
                        tried = [];
                        sleep0 = sleep;
                      }
                    in
                    new_nodes := node :: !new_nodes;
                    let a = exec e c in
                    node.chosen_access <- a;
                    record c a;
                    go (filter_indep sleep a) (depth + 1) [])
      in
      go [] 0 prefix
    with exn -> Failed (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))
  in
  (outcome, List.rev !new_nodes, List.rev !steps)

(* Deepest node with an untried sibling becomes the new branch point: its
   current choice moves to [tried] (entering the sleep set of the
   siblings' subtrees), everything below it is discarded. *)
let rec backtrack rev_stack =
  match rev_stack with
  | [] -> None
  | nd :: rest -> (
      match nd.to_try with
      | [] -> backtrack rest
      | c :: cs ->
          nd.tried <- nd.tried @ [ (nd.chosen, nd.chosen_access) ];
          nd.chosen <- c;
          nd.chosen_access <- None;
          nd.to_try <- cs;
          Some (List.rev (nd :: rest)))

let default_max_runs = 50_000

(* LCWS_CHECK_BUDGET multiplies the run budget; CI's bounded pass uses the
   default, the nightly sweep sets it high. *)
let budget_multiplier () =
  match Sys.getenv_opt "LCWS_CHECK_BUDGET" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let explore ?max_runs ?(max_steps = 400) (scenario : scenario) =
  let max_runs =
    match max_runs with Some m -> m | None -> default_max_runs * budget_multiplier ()
  in
  let stack = ref [] in
  let runs = ref 0 and pruned = ref 0 and completed = ref 0 in
  let violation = ref None in
  let exhausted = ref false in
  let continue_ = ref true in
  while !continue_ do
    let outcome, nodes, steps = exec_run scenario.spec !stack ~max_steps in
    stack := !stack @ nodes;
    incr runs;
    (match outcome with
    | Pruned_run -> incr pruned
    | Passed -> incr completed
    | Failed message ->
        incr completed;
        violation :=
          Some { message; steps; schedule = List.map (fun nd -> nd.chosen) !stack };
        continue_ := false);
    if !continue_ then begin
      (match backtrack (List.rev !stack) with
      | None ->
          exhausted := true;
          continue_ := false;
          stack := []
      | Some s -> stack := s);
      if !continue_ && !runs >= max_runs then continue_ := false
    end
  done;
  {
    name = scenario.name;
    expect_violation = scenario.expect_violation;
    runs = !runs;
    interleavings = !completed;
    pruned = !pruned;
    exhausted = !exhausted;
    violation = !violation;
  }

(* {2 Replay} *)

type replay = { result : (unit, string) result; steps : step list; lanes : string array }

(* Lane names for traces: scenario threads, then the handler lane. *)
let lanes_of spec =
  let n = Array.length spec.threads in
  Array.init (n + 1) (fun i ->
      if i < n then fst spec.threads.(i)
      else match spec.signal with Some (name, _) -> name | None -> "signal")

(* Re-run one exact interleaving. After [schedule] is consumed, remaining
   threads are finished deterministically (first enabled choice) so the
   oracle always sees a complete execution. *)
let replay (scenario : scenario) schedule ~max_steps =
  Sim_atomic.reset ();
  let steps = ref [] in
  let lanes = ref [||] in
  let result =
    try
      let spec = Sim_atomic.quiescent scenario.spec in
      lanes := lanes_of spec;
      let e = start spec in
      let rec go depth sched =
        if depth > max_steps then Error "step budget exceeded"
        else if all_finished e then Sim_atomic.quiescent e.spec.check
        else
          let en = enabled e in
          match (sched, en) with
          | _, [] -> Error "deadlock"
          | c :: rest, _ when List.exists (fun (c', _) -> c' = c) en ->
              let a = exec e c in
              steps := { who = c; access = a } :: !steps;
              go (depth + 1) rest
          | c :: _, _ ->
              Error
                (Printf.sprintf "schedule step %d not enabled (%s)" depth
                   (match c with Thread i -> string_of_int i | Signal -> "s"))
          | [], (c, _) :: _ ->
              let a = exec e c in
              steps := { who = c; access = a } :: !steps;
              go (depth + 1) []
      in
      go 0 schedule
    with exn -> Error (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))
  in
  { result; steps = List.rev !steps; lanes = !lanes }

(* {2 Schedules as strings} *)

let choice_to_string = function Thread i -> string_of_int i | Signal -> "s"

let schedule_to_string sched = String.concat "," (List.map choice_to_string sched)

let schedule_of_string s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match String.trim tok with
           | "s" | "S" -> Signal
           | t -> (
               match int_of_string_opt t with
               | Some i when i >= 0 -> Thread i
               | _ -> invalid_arg (Printf.sprintf "bad schedule token %S" tok)))

(* {2 Reporting} *)

let pp_step lanes ppf { who; access } =
  let lane =
    match who with
    | Signal -> "deliver-signal"
    | Thread i -> if i < Array.length lanes then lanes.(i) else string_of_int i
  in
  match access with
  | Some a -> Format.fprintf ppf "%-16s %a" lane Sim_atomic.pp_access a
  | None -> Format.fprintf ppf "%-16s (no access)" lane

let pp_report ppf r =
  Format.fprintf ppf "%-26s %s: %d interleavings, %d pruned, %d runs%s" r.name
    (match r.violation with
    | Some _ -> if r.expect_violation then "violation found (expected)" else "VIOLATION"
    | None -> if r.expect_violation then "NO VIOLATION (one expected)" else "ok")
    r.interleavings r.pruned r.runs
    (if r.exhausted then ", exhausted" else ", budget hit");
  match r.violation with
  | None -> ()
  | Some v ->
      Format.fprintf ppf "@,  %s@,  schedule: %s" v.message (schedule_to_string v.schedule)

(* A report "passes" when reality matches the scenario's expectation. *)
let passed r = match r.violation with Some _ -> r.expect_violation | None -> not r.expect_violation

(* {2 Chrome-trace export} *)

(* One lane per scenario thread plus one for delivery; one instant event
   per step, spaced 1us apart so Perfetto renders the order legibly. *)
let steps_to_chrome ~lanes steps =
  let raw = Lcws_trace.Chrome_trace.Raw.create ~process:"lcws-check" () in
  let n = Array.length lanes in
  Array.iteri (fun i name -> Lcws_trace.Chrome_trace.Raw.thread_name raw ~tid:i name) lanes;
  Lcws_trace.Chrome_trace.Raw.thread_name raw ~tid:n "delivery";
  List.iteri
    (fun k { who; access } ->
      let tid = match who with Thread i -> i | Signal -> n in
      let name =
        match (who, access) with
        | Signal, _ -> "deliver-signal"
        | _, Some a -> Printf.sprintf "%s %s" (Sim_atomic.kind_name a.kind) a.name
        | _, None -> "step"
      in
      Lcws_trace.Chrome_trace.Raw.instant raw ~tid ~time:(k * 1000) ~name ())
    steps;
  raw
