(* Bounded exhaustive exploration of thread interleavings, DSCheck-style:
   scenario threads run as effect-based cooperative fibers over
   [Sim_atomic.A]; every shared access is a scheduling point; the explorer
   enumerates schedules by depth-first search with re-execution, pruning
   provably redundant branches with sleep sets (a lightweight cut of
   dynamic partial-order reduction).

   Two search modes:
   - unbounded (the default): sleep-set-reduced full enumeration;
   - preemption-bounded (CHESS-style): only schedules with at most [k]
     preemptions — switching away from a lane that could still run — are
     executed. Most real concurrency bugs need very few preemptions, so a
     small bound covers the interesting schedules of scenarios whose full
     trees are out of reach (the scheduler-level ones). Sleep sets are
     disabled in bounded mode: the bound already cuts the tree, and
     pruning a branch whose sibling is itself preemption-filtered would
     be unsound. *)

(* A scheduling decision: advance thread [i] (index [Array.length threads]
   is the signal handler once delivered), or deliver the pending signal. *)
type choice = Thread of int | Signal

type step = { who : choice; access : Sim_atomic.access option }

type run_spec = {
  threads : (string * (unit -> unit)) array;
      (** concurrent bodies; by convention index 0 is the deque's owner *)
  signal : (string * (unit -> unit)) option;
      (** at most one asynchronous signal, delivered to thread 0: while the
          handler runs, thread 0 is blocked (a handler is atomic with
          respect to the thread it interrupts) but thieves keep running *)
  invariant : (step -> (unit, string) result) option;
      (** evaluated quiescently after {e every} executed step, observing
          post-access memory: a structural property that must hold at
          every scheduling point, not only at the end of the run *)
  check : unit -> (unit, string) result;
      (** the oracle, run quiescently after every complete interleaving *)
}

type scenario = {
  name : string;
  descr : string;
  expect_violation : bool;
  preempt : int option;
      (** default preemption bound for this scenario; [None] = unbounded.
          Overridable by [LCWS_CHECK_PREEMPT] and [explore ~preempt]. *)
  spec : unit -> run_spec;
}

type violation = { message : string; steps : step list; schedule : choice list }

type report = {
  name : string;
  expect_violation : bool;
  runs : int;  (** executions started, including pruned ones *)
  interleavings : int;  (** complete maximal interleavings executed *)
  pruned : int;  (** executions abandoned as sleep-set-redundant *)
  exhausted : bool;  (** the whole (reduced/bounded) schedule tree was covered *)
  preempt_bound : int option;  (** the bound the search actually ran under *)
  violation : violation option;
}

(* {2 Cooperative fibers} *)

type tstate =
  | Waiting of Sim_atomic.access * (unit, unit) Effect.Deep.continuation
  | Finished

(* Each fiber runs under a deep handler that parks (access, continuation)
   in its cell at every [Yield]. Starting or resuming a fiber therefore
   runs it up to its next access; the access itself happens after the
   yield, i.e. when the *next* resume is granted. *)
let fiber_handler cell =
  {
    Effect.Deep.retc = (fun () -> cell := Finished);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sim_atomic.Yield access ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) -> cell := Waiting (access, k))
        | _ -> None);
  }

type engine = {
  spec : run_spec;
  cells : tstate ref array;  (** length [n+1]; slot [n] is the handler *)
  mutable delivered : bool;
}

let n_threads e = Array.length e.spec.threads

let start spec =
  let n = Array.length spec.threads in
  let cells = Array.init (n + 1) (fun _ -> ref Finished) in
  let e = { spec; cells; delivered = false } in
  for i = 0 to n - 1 do
    let _, body = spec.threads.(i) in
    Effect.Deep.match_with body () (fiber_handler cells.(i))
  done;
  e

let handler_active e =
  e.delivered && (match !(e.cells.(n_threads e)) with Waiting _ -> true | Finished -> false)

let all_finished e =
  Array.for_all (fun c -> match !c with Finished -> true | Waiting _ -> false) e.cells

(* Enabled choices, in a fixed deterministic order: threads by index (the
   owner is suppressed while its signal handler runs), then the handler
   slot, then signal delivery. Delivery is optional — schedules that never
   take [Signal] model the signal arriving after the scenario is over. *)
let enabled e =
  let n = n_threads e in
  let out = ref (if e.spec.signal <> None && not e.delivered then [ (Signal, None) ] else []) in
  for i = n downto 0 do
    match !(e.cells.(i)) with
    | Waiting (a, _) -> if not (i = 0 && handler_active e) then out := (Thread i, Some a) :: !out
    | Finished -> ()
  done;
  !out

(* Execute one choice: resuming a fiber performs its pending access and
   runs it to the next one; delivering the signal starts the handler fiber
   (no access of its own — the handler's accesses are subsequent
   [Thread n] steps). Returns the access the step performed. *)
let exec e c =
  match c with
  | Signal ->
      e.delivered <- true;
      (match e.spec.signal with
      | Some (_, body) -> Effect.Deep.match_with body () (fiber_handler e.cells.(n_threads e))
      | None -> invalid_arg "Explore: Signal chosen but no signal in spec");
      None
  | Thread i -> (
      match !(e.cells.(i)) with
      | Waiting (a, k) ->
          Effect.Deep.continue k ();
          Some a
      | Finished -> invalid_arg "Explore: chose a finished thread")

(* {2 Sleep-set DFS by re-execution} *)

(* One decision point on the current DFS path. [sleep0] is the sleep set
   on entry (choices whose subtrees are covered by sibling branches
   elsewhere); [tried] are siblings already fully explored here. *)
type node = {
  mutable chosen : choice;
  mutable chosen_access : Sim_atomic.access option;
  mutable to_try : choice list;
  mutable tried : (choice * Sim_atomic.access option) list;
  sleep0 : (choice * Sim_atomic.access option) list;
}

(* [Signal] steps and instantly-finishing handlers carry no access; treat
   them as dependent with everything (delivery does not commute with owner
   steps — it blocks the owner), which keeps the pruning sound. *)
let dependent a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some a, Some b -> Sim_atomic.conflict a b

let filter_indep sleep a = List.filter (fun (_, a') -> not (dependent a' a)) sleep

type outcome = Passed | Failed of string | Pruned_run

(* Evaluate the per-step invariant (if any) on the step just executed.
   The fiber's continuation has already applied the access's memory
   effect and parked before the next one, so the callback observes
   post-access state — including transient intermediate states no
   complete-run oracle could see. *)
let step_violation spec step =
  match spec.invariant with
  | None -> None
  | Some inv -> (
      match Sim_atomic.quiescent (fun () -> inv step) with
      | Ok () -> None
      | Error m -> Some (Failed ("invariant violated: " ^ m)))

(* Did picking [c] preempt? Only if the previously-run lane is a
   *different* lane that is still enabled: switching away from a finished
   or blocked lane is forced, not a preemption (CHESS's definition). *)
let is_preempt prev en c =
  match prev with
  | None -> false
  | Some p -> c <> p && List.exists (fun (c', _) -> c' = p) en

(* Re-execute the scenario from scratch, following [prefix] (the current
   DFS path), then extend it greedily with first-not-asleep choices,
   materialising a new node per fresh decision. Every shared access is a
   decision point, so nodes and steps are one-to-one.

   [max_preempts = Some k] enables bounded mode: choices that would spend
   a preemption when none is left are filtered out of both the greedy
   pick and [to_try] (so backtracking never revisits them), and sleep
   sets are disabled. The filter can never empty a nonempty enabled set:
   if the previous lane is still enabled it is itself admissible, and if
   it is not, no choice counts as a preemption. *)
let exec_run spec_fn prefix ~max_steps ~max_preempts =
  Sim_atomic.reset ();
  let bounded = max_preempts <> None in
  let steps = ref [] in
  let new_nodes = ref [] in
  let record who access = steps := { who; access } :: !steps in
  let outcome =
    try
      let spec = Sim_atomic.quiescent spec_fn in
      let e = start spec in
      let rec go sleep prev left depth prefix_rest =
        if depth > max_steps then
          Failed (Printf.sprintf "step budget exceeded (%d): livelock?" max_steps)
        else if all_finished e then
          match Sim_atomic.quiescent e.spec.check with Ok () -> Passed | Error m -> Failed m
        else
          let en = enabled e in
          if en = [] then Failed "deadlock: runnable threads but no enabled choice"
          else
            match prefix_rest with
            | node :: rest ->
                let pre = is_preempt prev en node.chosen in
                let a = exec e node.chosen in
                node.chosen_access <- a;
                record node.chosen a;
                let next_sleep =
                  if bounded then [] else filter_indep (node.sleep0 @ node.tried) a
                in
                (match step_violation spec { who = node.chosen; access = a } with
                | Some f -> f
                | None ->
                    go next_sleep (Some node.chosen)
                      (if pre then left - 1 else left)
                      (depth + 1) rest)
            | [] -> (
                let awake =
                  List.filter
                    (fun (c, _) ->
                      (left > 0 || not (is_preempt prev en c))
                      && not (List.exists (fun (c', _) -> c' = c) sleep))
                    en
                in
                match awake with
                | [] -> Pruned_run
                | (c, _) :: others ->
                    let node =
                      {
                        chosen = c;
                        chosen_access = None;
                        to_try = List.map fst others;
                        tried = [];
                        sleep0 = sleep;
                      }
                    in
                    new_nodes := node :: !new_nodes;
                    let pre = is_preempt prev en c in
                    let a = exec e c in
                    node.chosen_access <- a;
                    record c a;
                    let next_sleep = if bounded then [] else filter_indep sleep a in
                    (match step_violation spec { who = c; access = a } with
                    | Some f -> f
                    | None ->
                        go next_sleep (Some c) (if pre then left - 1 else left) (depth + 1) []))
      in
      go [] None (match max_preempts with Some k -> k | None -> max_int) 0 prefix
    with exn -> Failed (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))
  in
  (outcome, List.rev !new_nodes, List.rev !steps)

(* Deepest node with an untried sibling becomes the new branch point: its
   current choice moves to [tried] (entering the sleep set of the
   siblings' subtrees), everything below it is discarded. *)
let rec backtrack rev_stack =
  match rev_stack with
  | [] -> None
  | nd :: rest -> (
      match nd.to_try with
      | [] -> backtrack rest
      | c :: cs ->
          nd.tried <- nd.tried @ [ (nd.chosen, nd.chosen_access) ];
          nd.chosen <- c;
          nd.chosen_access <- None;
          nd.to_try <- cs;
          Some (List.rev (nd :: rest)))

let default_max_runs = 50_000

(* LCWS_CHECK_BUDGET multiplies the run budget; CI's bounded pass uses the
   default, the nightly sweep sets it high. *)
let budget_multiplier () =
  match Sys.getenv_opt "LCWS_CHECK_BUDGET" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* LCWS_CHECK_PREEMPT overrides every scenario's default preemption
   bound: a positive value bounds, zero or negative forces unbounded.
   (The nightly sweep sets 0 to lift the per-push bounds.) *)
let env_preempt () =
  match Sys.getenv_opt "LCWS_CHECK_PREEMPT" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Some (Some n)
      | Some _ -> Some None
      | None -> None)

(* Precedence for the effective bound: explicit [~preempt] (<= 0 means
   unbounded) > LCWS_CHECK_PREEMPT > the scenario's own default. *)
let effective_preempt ?preempt (scenario : scenario) =
  match preempt with
  | Some p -> if p > 0 then Some p else None
  | None -> ( match env_preempt () with Some o -> o | None -> scenario.preempt)

let explore ?max_runs ?(max_steps = 400) ?preempt (scenario : scenario) =
  let max_runs =
    match max_runs with Some m -> m | None -> default_max_runs * budget_multiplier ()
  in
  let max_preempts = effective_preempt ?preempt scenario in
  let stack = ref [] in
  let runs = ref 0 and pruned = ref 0 and completed = ref 0 in
  let violation = ref None in
  let exhausted = ref false in
  let continue_ = ref true in
  while !continue_ do
    let outcome, nodes, steps = exec_run scenario.spec !stack ~max_steps ~max_preempts in
    stack := !stack @ nodes;
    incr runs;
    (match outcome with
    | Pruned_run -> incr pruned
    | Passed -> incr completed
    | Failed message ->
        incr completed;
        violation :=
          Some { message; steps; schedule = List.map (fun nd -> nd.chosen) !stack };
        continue_ := false);
    if !continue_ then begin
      (match backtrack (List.rev !stack) with
      | None ->
          exhausted := true;
          continue_ := false;
          stack := []
      | Some s -> stack := s);
      if !continue_ && !runs >= max_runs then continue_ := false
    end
  done;
  {
    name = scenario.name;
    expect_violation = scenario.expect_violation;
    runs = !runs;
    interleavings = !completed;
    pruned = !pruned;
    exhausted = !exhausted;
    preempt_bound = max_preempts;
    violation = !violation;
  }

(* {2 Replay} *)

type replay = { result : (unit, string) result; steps : step list; lanes : string array }

(* Lane names for traces: scenario threads, then the handler lane. *)
let lanes_of spec =
  let n = Array.length spec.threads in
  Array.init (n + 1) (fun i ->
      if i < n then fst spec.threads.(i)
      else match spec.signal with Some (name, _) -> name | None -> "signal")

(* Lane names without running the search: build one (quiescent) instance
   of the spec and read them off. *)
let scenario_lanes (scenario : scenario) =
  Sim_atomic.reset ();
  lanes_of (Sim_atomic.quiescent scenario.spec)

(* Re-run one exact interleaving. After [schedule] is consumed, remaining
   threads are finished deterministically (first enabled choice) so the
   oracle always sees a complete execution. The per-step invariant is
   evaluated here too, so replaying an invariant counterexample fails at
   the same step it failed during exploration. *)
let replay (scenario : scenario) schedule ~max_steps =
  Sim_atomic.reset ();
  let steps = ref [] in
  let lanes = ref [||] in
  let result =
    try
      let spec = Sim_atomic.quiescent scenario.spec in
      lanes := lanes_of spec;
      let e = start spec in
      let take c depth =
        let a = exec e c in
        let step = { who = c; access = a } in
        steps := step :: !steps;
        match step_violation spec step with
        | Some (Failed m) -> Error m
        | Some _ | None -> Ok (depth + 1)
      in
      let rec go depth sched =
        if depth > max_steps then Error "step budget exceeded"
        else if all_finished e then Sim_atomic.quiescent e.spec.check
        else
          let en = enabled e in
          match (sched, en) with
          | _, [] -> Error "deadlock"
          | c :: rest, _ when List.exists (fun (c', _) -> c' = c) en -> (
              match take c depth with Error _ as err -> err | Ok depth -> go depth rest)
          | c :: _, _ ->
              Error
                (Printf.sprintf "schedule step %d not enabled (%s)" depth
                   (match c with Thread i -> string_of_int i | Signal -> "s"))
          | [], (c, _) :: _ -> (
              match take c depth with Error _ as err -> err | Ok depth -> go depth [])
      in
      go 0 schedule
    with exn -> Error (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn))
  in
  { result; steps = List.rev !steps; lanes = !lanes }

(* {2 Schedules as strings} *)

let choice_to_string = function Thread i -> string_of_int i | Signal -> "s"

let schedule_to_string sched = String.concat "," (List.map choice_to_string sched)

let schedule_of_string s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match String.trim tok with
           | "s" | "S" -> Signal
           | t -> (
               match int_of_string_opt t with
               | Some i when i >= 0 -> Thread i
               | _ -> invalid_arg (Printf.sprintf "bad schedule token %S" tok)))

(* {2 Reporting} *)

let pp_step lanes ppf { who; access } =
  let lane =
    match who with
    | Signal -> "deliver-signal"
    | Thread i -> if i < Array.length lanes then lanes.(i) else string_of_int i
  in
  match access with
  | Some a -> Format.fprintf ppf "%-16s %a" lane Sim_atomic.pp_access a
  | None -> Format.fprintf ppf "%-16s (no access)" lane

(* Columnar rendering of an interleaving: one column per lane, one row
   per step, each access printed in its lane's column — the
   read-the-race-at-a-glance format interleaving papers use. *)
let pp_trace ~lanes ppf steps =
  let ncols = Array.length lanes in
  if ncols = 0 then ()
  else begin
    let cell { who; access } =
      let col = match who with Thread i -> min i (ncols - 1) | Signal -> ncols - 1 in
      let txt =
        match access with
        | Some a -> Format.asprintf "%a" Sim_atomic.pp_access a
        | None -> ( match who with Signal -> "deliver!" | Thread _ -> "(start)")
      in
      (col, txt)
    in
    let cells = List.map cell steps in
    let width = Array.map String.length lanes in
    List.iter (fun (c, t) -> width.(c) <- max width.(c) (String.length t)) cells;
    Format.fprintf ppf "@[<v>%4s" "step";
    Array.iteri (fun i l -> Format.fprintf ppf "  %-*s" width.(i) l) lanes;
    List.iteri
      (fun k (c, t) ->
        Format.fprintf ppf "@,%4d" k;
        Array.iteri
          (fun i _ -> Format.fprintf ppf "  %-*s" width.(i) (if i = c then t else "."))
          lanes)
      cells;
    Format.fprintf ppf "@]"
  end

let pp_report ppf r =
  Format.fprintf ppf "%-26s %s: %d interleavings, %d pruned, %d runs%s%s" r.name
    (match r.violation with
    | Some _ -> if r.expect_violation then "violation found (expected)" else "VIOLATION"
    | None -> if r.expect_violation then "NO VIOLATION (one expected)" else "ok")
    r.interleavings r.pruned r.runs
    (if r.exhausted then ", exhausted" else ", budget hit")
    (match r.preempt_bound with
    | Some k -> Printf.sprintf ", preempt<=%d" k
    | None -> "");
  match r.violation with
  | None -> ()
  | Some v ->
      Format.fprintf ppf "@,  %s@,  schedule: %s" v.message (schedule_to_string v.schedule)

(* A report "passes" when reality matches the scenario's expectation. *)
let passed r = match r.violation with Some _ -> r.expect_violation | None -> not r.expect_violation

(* {2 Chrome-trace export} *)

(* One lane per scenario thread plus one for delivery; one instant event
   per step, spaced 1us apart so Perfetto renders the order legibly. *)
let steps_to_chrome ~lanes steps =
  let raw = Lcws_trace.Chrome_trace.Raw.create ~process:"lcws-check" () in
  let n = Array.length lanes in
  Array.iteri (fun i name -> Lcws_trace.Chrome_trace.Raw.thread_name raw ~tid:i name) lanes;
  Lcws_trace.Chrome_trace.Raw.thread_name raw ~tid:n "delivery";
  List.iteri
    (fun k { who; access } ->
      let tid = match who with Thread i -> i | Signal -> n in
      let name =
        match (who, access) with
        | Signal, _ -> "deliver-signal"
        | _, Some a -> Printf.sprintf "%s %s" (Sim_atomic.kind_name a.kind) a.name
        | _, None -> "step"
      in
      Lcws_trace.Chrome_trace.Raw.instant raw ~tid ~time:(k * 1000) ~name ())
    steps;
  raw
