(* Swap shim: the copied deque sources reference [Deque_intf] by name;
   re-export the production one so result types, module types and the
   [Deque_full] exception stay the *same* types across both builds. *)
include Lcws_deque.Deque_intf
