module Metrics = Lcws_sync.Metrics
module Xoshiro = Lcws_sync.Xoshiro
module Fault = Lcws_fault.Fault
module Scheduler = Lcws_sched.Scheduler

(* --- workloads -------------------------------------------------------- *)

type dag = Leaf of int | Fork of dag * dag | Loop of int * int | Fut of dag * dag

(* A cheap avalanche hash: the checksum must be commutative (chunks run
   in any order, on any worker) yet sensitive to every contribution, so
   plain summing of raw indices — where dropping iteration 3 and running
   iteration 1 twice cancels out — is not enough. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  x lxor (x lsr 29)

(* A little opaque spin per unit of work widens the race windows the
   fault plans aim at; without it most runs finish before a single
   signal is ever pending. *)
let spin n =
  let s = ref 0 in
  for i = 1 to n do
    s := !s + i
  done;
  ignore (Sys.opaque_identity !s)

let gen_dag seed =
  let rng = Xoshiro.create seed in
  let budget = ref (24 + Xoshiro.int rng 40) in
  let leaf () =
    if Xoshiro.int rng 3 = 0 then Loop (1 + Xoshiro.int rng 256, Xoshiro.int rng 1_000_000)
    else Leaf (Xoshiro.int rng 1_000_000)
  in
  let rec go depth =
    decr budget;
    if depth >= 8 || !budget <= 0 then leaf ()
    else
      match Xoshiro.int rng 6 with
      | 0 | 1 -> leaf ()
      | 2 -> Fut (go (depth + 1), go (depth + 1))
      | _ -> Fork (go (depth + 1), go (depth + 1))
  in
  (* Always fork at the root: a chaos case with no parallelism at all
     exercises nothing. *)
  Fork (go 1, go 1)

let rec seq_eval = function
  | Leaf v -> mix v
  | Loop (n, salt) ->
      let s = ref 0 in
      for i = 0 to n - 1 do
        s := !s + mix (salt + i)
      done;
      !s
  | Fork (l, r) -> seq_eval l + seq_eval r
  | Fut (l, r) -> seq_eval l + seq_eval r

let dag_stats dag =
  let rec go (leaves, forks, loops, iters, futs) = function
    | Leaf _ -> (leaves + 1, forks, loops, iters, futs)
    | Loop (n, _) -> (leaves, forks, loops + 1, iters + n, futs)
    | Fork (l, r) ->
        let leaves, forks, loops, iters, futs =
          go (go (leaves, forks, loops, iters, futs) l) r
        in
        (leaves, forks + 1, loops, iters, futs)
    | Fut (l, r) ->
        let leaves, forks, loops, iters, futs =
          go (go (leaves, forks, loops, iters, futs) l) r
        in
        (leaves, forks, loops, iters, futs + 1)
  in
  let leaves, forks, loops, iters, futs = go (0, 0, 0, 0, 0) dag in
  Printf.sprintf "%d leaves, %d forks, %d loops (%d iters), %d futures" leaves forks loops
    iters futs

(* Per-worker accumulator slots, one cache line apart. The final sum
   runs on worker 0 after every fork has joined, so the helpers' plain
   writes are ordered by the frames' completion flags. *)
let par_eval ~num_workers dag =
  let stride = 16 in
  let acc = Array.make (num_workers * stride) 0 in
  let bump v =
    let i = Scheduler.Ops.my_id () * stride in
    acc.(i) <- acc.(i) + v
  in
  let rec go = function
    | Leaf v ->
        spin 64;
        bump (mix v)
    | Loop (n, salt) ->
        (* Small grain: many chunk boundaries = many poll and
           cancellation points. *)
        Scheduler.Ops.parallel_for ~grain:8 ~start:0 ~stop:n (fun i ->
            spin 8;
            bump (mix (salt + i)))
    | Fork (l, r) -> Scheduler.Ops.fork_join_unit (fun () -> go l) (fun () -> go r)
    | Fut (l, r) ->
        let fu = Scheduler.Future.spawn (fun () -> go l) in
        (* The future must be joined on every path: an exception out of
           [r] (injected, or cancellation) with [fu] still queued would
           leave an orphan fiber task in a deque, tripping the
           post-shutdown drain check. Mirrors fork_join's join-and-
           discard of the stolen half when the first branch raises. *)
        (match go r with
        | () -> Scheduler.Future.await fu
        | exception e ->
            (try Scheduler.Future.await fu with _ -> ());
            raise e)
  in
  go dag;
  Array.fold_left ( + ) 0 acc

(* --- one run ---------------------------------------------------------- *)

type outcome = Completed of int | Raised of exn

type report = {
  repro : string;
  outcome : outcome;
  oracle : int;
  errors : string list;
  metrics : Metrics.t;
}

let ok r = r.errors = []

let outcome_to_string = function
  | Completed c -> Printf.sprintf "completed (checksum %d)" c
  | Raised e -> "raised " ^ Printexc.to_string e

let pp_report ppf r =
  Format.fprintf ppf "%s: %s%s" r.repro (outcome_to_string r.outcome)
    (if ok r then "" else "\n  FAIL: " ^ String.concat "\n  FAIL: " r.errors)

let admissible (plan : Fault.plan) ~oracle = function
  | Completed c ->
      if c = oracle then [] else [ Printf.sprintf "checksum %d <> oracle %d" c oracle ]
  | Raised (Fault.Injected (w, k)) -> (
      match plan.inject_exn with
      | Some (w', k') when w' = w && k' = k -> []
      | _ -> [ Printf.sprintf "Injected(%d,%d) was not in the plan" w k ])
  | Raised Scheduler.Cancelled ->
      if plan.cancel_at <> None then []
      else [ "Cancelled raised but the plan never requests cancellation" ]
  | Raised e -> [ "unexpected exception " ^ Printexc.to_string e ]

(* The balance sheet must hold for every admissible outcome — normal,
   injected or cancelled — because exceptional unwinding still joins
   every frame and consumes every pushed task. *)
let balance ~split (m : Metrics.t) =
  let errs = ref [] in
  let check cond fmt =
    Printf.ksprintf (fun msg -> if not cond then errs := msg :: !errs) fmt
  in
  check (m.steals <= m.steal_attempts) "steals %d > steal_attempts %d" m.steals m.steal_attempts;
  check
    (m.pushes = m.pops + m.public_pops + m.steals)
    "pushes %d <> pops %d + public_pops %d + steals %d" m.pushes m.pops m.public_pops m.steals;
  check (m.tasks_run <= m.pushes) "tasks_run %d > pushes %d" m.tasks_run m.pushes;
  check
    (m.signals_handled + m.signals_dropped <= m.signals_sent)
    "signals handled %d + dropped %d > sent %d" m.signals_handled m.signals_dropped
    m.signals_sent;
  if split then
    check
      (m.steals + m.public_pops <= m.exposed_tasks)
      "steals %d + public_pops %d > exposed_tasks %d" m.steals m.public_pops m.exposed_tasks;
  List.rev !errs

let integrity pool ~split =
  let errs = ref [] in
  let check cond fmt =
    Printf.ksprintf (fun msg -> if not cond then errs := msg :: !errs) fmt
  in
  let outstanding = Scheduler.Pool.outstanding_tasks pool in
  let frames = Scheduler.Pool.frames_in_use pool in
  check (outstanding = 0) "%d tasks left in deques" outstanding;
  check (frames = 0) "%d join frames not recycled" frames;
  (match Scheduler.Pool.check_deque_invariants pool with
  | Ok () -> ()
  | Error m -> errs := m :: !errs);
  List.rev !errs @ balance ~split (Scheduler.Pool.metrics pool)

let repro_line ~variant ~deque ~num_workers ~(plan : Fault.plan) ~wseed =
  Printf.sprintf "wseed=%Ld plan=\"%s\" variant=%s deque=%s workers=%d" wseed
    (Fault.plan_to_string plan)
    (Scheduler.variant_name variant)
    (Scheduler.deque_impl_name deque)
    num_workers

let run_one ~variant ~deque ~num_workers ~plan ~wseed () =
  let repro = repro_line ~variant ~deque ~num_workers ~plan ~wseed in
  let dag = gen_dag wseed in
  let oracle = seq_eval dag in
  let split = Scheduler.deque_impl_name deque = "split" in
  let pool = Scheduler.Pool.create ~num_workers ~variant ~deque ~fault:plan () in
  let outcome =
    match Scheduler.Pool.run pool (fun () -> par_eval ~num_workers dag) with
    | c -> Completed c
    | exception e -> Raised e
  in
  let errors = admissible plan ~oracle outcome @ integrity pool ~split in
  Scheduler.Pool.shutdown pool;
  (* Post-shutdown: the drain must have found nothing (a completed or
     exceptionally-unwound job leaves no orphan tasks behind). *)
  let m = Scheduler.Pool.metrics pool in
  let errors =
    if m.drained_tasks = 0 then errors
    else errors @ [ Printf.sprintf "shutdown drained %d orphan tasks" m.drained_tasks ]
  in
  { repro; outcome; oracle; errors; metrics = m }

(* --- sweeps ----------------------------------------------------------- *)

let default_plans ~seed =
  List.filter_map
    (fun name -> Option.map (fun p -> (name, p)) (Fault.preset ~seed name))
    Fault.preset_names

let sweep ?(num_workers = 4) ?(variants = Scheduler.all_variants) ?deques ?plans
    ?(progress = fun _ -> ()) ~seeds () =
  let failures = ref [] in
  List.iter
    (fun wseed ->
      List.iter
        (fun variant ->
          let deques =
            match deques with
            | Some ds -> ds
            | None -> (
                (* The paper's pairing, plus WS exercised on the split
                   deque so the owner-side public path sees chaos too. *)
                match variant with
                | Scheduler.Ws -> [ Scheduler.chase_lev_impl; Scheduler.split_deque_impl ]
                | _ -> [ Scheduler.default_deque_impl variant ])
          in
          List.iter
            (fun deque ->
              if (not (Lcws_deque.Deque_intf.impl_concurrent deque)) && num_workers > 1 then
                (* Sequential-specification deques only run single-worker. *)
                ()
              else
                let plans =
                  match plans with Some ps -> ps | None -> default_plans ~seed:wseed
                in
                List.iter
                  (fun (pname, plan) ->
                    let r = run_one ~variant ~deque ~num_workers ~plan ~wseed () in
                    progress
                      (Printf.sprintf "[%s] %s: %s%s" pname r.repro
                         (outcome_to_string r.outcome)
                         (if ok r then "" else "  FAIL"));
                    if not (ok r) then failures := r :: !failures)
                  plans)
            deques)
        variants)
    seeds;
  List.rev !failures
