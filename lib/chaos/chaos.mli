(** Chaos harness: seeded random workloads under seeded fault plans.

    One chaos run draws a random fork/loop DAG from a workload seed,
    computes its checksum sequentially (the oracle), then runs it on a
    real pool — any variant, any deque — under a {!Lcws_fault.Fault.plan}
    and checks that

    - the outcome is {e admissible}: the checksum equals the oracle, or
      the run raised exactly the planned {!Lcws_fault.Fault.Injected}
      exception, or it raised {!Lcws_sched.Scheduler.Cancelled} and the
      plan (or the sweep) actually requested cancellation — nothing else;
    - the pool is {e intact} afterwards: no task left in any deque, every
      join frame recycled, the deque size accessors consistent, and the
      metrics balance sheet exact (pushes = pops + public pops + steals;
      steals never exceed attempts; split-deque steals and public pops
      never exceed exposed tasks; handled + dropped signals never exceed
      sent ones).

    Every failing case reduces to one repro line —
    [(workload seed, plan, variant, deque, workers)] — that replays the
    identical fault decisions; the chaos CLI and the CI chaos job consume
    and emit those lines. *)

module Fault = Lcws_fault.Fault
module Scheduler = Lcws_sched.Scheduler

(** A checksum DAG: leaves and loop iterations fold hashed values into a
    commutative sum, forks run both sides through [fork_join_unit], loops
    through [parallel_for], and [Fut (l, r)] spawns [l] as a
    {!Lcws_sched.Scheduler.Future} fiber, evaluates [r], then awaits [l]
    — so sweeps exercise the suspension protocol (park, one-shot resume,
    cross-worker migration) under the same fault plans and oracles as
    the fork/loop paths. *)
type dag = Leaf of int | Fork of dag * dag | Loop of int * int | Fut of dag * dag

(** [gen_dag seed] — deterministic, a few dozen nodes. *)
val gen_dag : int64 -> dag

(** Sequential oracle checksum. *)
val seq_eval : dag -> int

(** Descriptive stats for logs. *)
val dag_stats : dag -> string

type outcome = Completed of int | Raised of exn

type report = {
  repro : string;  (** one replayable line identifying the case *)
  outcome : outcome;
  oracle : int;
  errors : string list;  (** empty iff the run was admissible and intact *)
  metrics : Lcws_sync.Metrics.t;  (** pool totals for the run *)
}

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

(** Run one seeded case. [wseed] seeds the workload DAG; the fault
    decisions come from [plan.seed]. The pool is created and shut down
    inside, and post-shutdown invariants (drain empty, frames recycled)
    are part of the report. *)
val run_one :
  variant:Scheduler.variant ->
  deque:Scheduler.deque_impl ->
  num_workers:int ->
  plan:Fault.plan ->
  wseed:int64 ->
  unit ->
  report

(** [sweep ~seeds ()] runs the full matrix: every listed variant (default
    all five) on its default deque (plus the split deque for [Ws] when
    [deques] is not given), every plan (default: every preset, each
    re-seeded per case), every workload seed. Returns the failing
    reports. [progress] (default ignore) sees one line per case. *)
val sweep :
  ?num_workers:int ->
  ?variants:Scheduler.variant list ->
  ?deques:Scheduler.deque_impl list ->
  ?plans:(string * Fault.plan) list ->
  ?progress:(string -> unit) ->
  seeds:int64 list ->
  unit ->
  report list
