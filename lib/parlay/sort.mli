(** Parallel sorting: stable merge sort (comparison) and LSD radix sort
    (integer keys), the two sorts PBBS's comparisonSort and integerSort
    benchmarks exercise. *)

(** [merge_sort cmp a] — new sorted array; stable; parallel divide and
    conquer with a binary-search-splitting parallel merge. *)
val merge_sort : ?grain:int -> ('a -> 'a -> int) -> 'a array -> 'a array

(** In-place variant (uses a temporary of equal size internally). *)
val merge_sort_inplace : ?grain:int -> ('a -> 'a -> int) -> 'a array -> unit

(** [merge cmp a b] — merge of two sorted arrays, in parallel. *)
val merge : ?grain:int -> ('a -> 'a -> int) -> 'a array -> 'a array -> 'a array

(** [radix_sort_by ~key ~bits a] — stable LSD radix sort on the low [bits]
    bits of [key x] (keys must be non-negative and fit [bits] bits).
    Blocked counting + scan + scatter, one pass per radix digit. *)
val radix_sort_by : ?grain:int -> key:('a -> int) -> bits:int -> 'a array -> 'a array

(** [radix_sort ~bits a] on int arrays. *)
val radix_sort : ?grain:int -> bits:int -> int array -> int array

(** [is_sorted cmp a]. *)
val is_sorted : ('a -> 'a -> int) -> 'a array -> bool
