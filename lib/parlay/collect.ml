let run_starts ~key sorted =
  Seq_ops.pack_index (fun i x -> i = 0 || key x <> key sorted.(i - 1)) sorted

let group_by ~key ~bits a =
  if Array.length a = 0 then [||]
  else begin
    let sorted = Sort.radix_sort_by ~key ~bits a in
    let starts = run_starts ~key sorted in
    let n = Array.length sorted and nruns = Array.length starts in
    Seq_ops.tabulate ~grain:1 nruns (fun r ->
        let lo = starts.(r) and hi = if r + 1 < nruns then starts.(r + 1) else n in
        (key sorted.(lo), Array.sub sorted lo (hi - lo)))
  end

let collect_reduce ~key ~value ~op ~zero ~bits a =
  if Array.length a = 0 then [||]
  else begin
    let sorted = Sort.radix_sort_by ~key ~bits a in
    let starts = run_starts ~key sorted in
    let n = Array.length sorted and nruns = Array.length starts in
    Seq_ops.tabulate ~grain:1 nruns (fun r ->
        let lo = starts.(r) and hi = if r + 1 < nruns then starts.(r + 1) else n in
        let acc = ref zero in
        for i = lo to hi - 1 do
          acc := op !acc (value sorted.(i))
        done;
        (key sorted.(lo), !acc))
  end

let count_by ~key ~bits a = collect_reduce ~key ~value:(fun _ -> 1) ~op:( + ) ~zero:0 ~bits a

let histogram_by ~key ~bits ~buckets a =
  let pairs = count_by ~key ~bits a in
  let out = Array.make buckets 0 in
  Array.iter (fun (k, c) -> out.(k) <- c) pairs;
  out
