module S = Lcws_sched.Scheduler

let num_buckets n =
  if n < 8192 then 1
  else min 256 (Lcws_sync.Fastmath.next_pow2 (int_of_float (sqrt (float_of_int (n / 64)))))

let oversample = 8

let sort ?(seed = 1) cmp a =
  let n = Array.length a in
  if n <= 1 then Array.copy a
  else begin
    let nb = num_buckets n in
    if nb = 1 then begin
      let out = Array.copy a in
      Array.sort cmp out;
      out
    end
    else begin
      (* Pivot selection: sort an oversampled random subset, keep every
         [oversample]-th element. *)
      let sample =
        Array.init (nb * oversample) (fun i -> a.(Prandom.int ~seed i n))
      in
      Array.sort cmp sample;
      let pivots = Array.init (nb - 1) (fun i -> sample.((i + 1) * oversample)) in
      let bucket_of x =
        (* First bucket whose pivot is >= x; equal keys may spread across
           a pivot boundary (sample sort is not stable). *)
        Seq_ops.lower_bound cmp pivots ~lo:0 ~hi:(nb - 1) x
      in
      (* Blocked counting + scatter, as in the radix passes. *)
      let grain = max 4096 (Seq_ops.default_grain n) in
      let nblocks = (n + grain - 1) / grain in
      let block_size = (n + nblocks - 1) / nblocks in
      let buckets = Seq_ops.tabulate n (fun i -> bucket_of a.(i)) in
      let counts = Array.make (nblocks * nb) 0 in
      S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nblocks (fun b ->
          let lo = b * block_size and hi = min n ((b + 1) * block_size) in
          let base = b * nb in
          for i = lo to hi - 1 do
            let k = buckets.(i) in
            counts.(base + k) <- counts.(base + k) + 1
          done;
          S.Ops.tick ());
      let flat = Array.make (nb * nblocks) 0 in
      S.Ops.parallel_for ~grain:4 ~start:0 ~stop:nb (fun k ->
          for b = 0 to nblocks - 1 do
            flat.((k * nblocks) + b) <- counts.((b * nb) + k)
          done);
      let offsets, _total = Seq_ops.scan ( + ) 0 flat in
      let out = Array.make n a.(0) in
      S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nblocks (fun b ->
          let lo = b * block_size and hi = min n ((b + 1) * block_size) in
          let pos = Array.make nb 0 in
          for k = 0 to nb - 1 do
            pos.(k) <- offsets.((k * nblocks) + b)
          done;
          for i = lo to hi - 1 do
            let k = buckets.(i) in
            out.(pos.(k)) <- a.(i);
            pos.(k) <- pos.(k) + 1
          done;
          S.Ops.tick ());
      (* Bucket boundaries, then sort each bucket independently. *)
      let bucket_sizes = Array.make nb 0 in
      for b = 0 to nblocks - 1 do
        for k = 0 to nb - 1 do
          bucket_sizes.(k) <- bucket_sizes.(k) + counts.((b * nb) + k)
        done
      done;
      let bucket_offsets, _ = Seq_ops.scan ( + ) 0 bucket_sizes in
      S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nb (fun k ->
          let lo = bucket_offsets.(k) in
          let len = bucket_sizes.(k) in
          if len > 1 then begin
            let slice = Array.sub out lo len in
            Array.sort cmp slice;
            Array.blit slice 0 out lo len
          end;
          S.Ops.tick ());
      out
    end
  end
