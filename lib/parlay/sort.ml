module S = Lcws_sched.Scheduler

let seq_merge cmp src ~l1 ~h1 ~l2 ~h2 dst ~dlo =
  let i = ref l1 and j = ref l2 and k = ref dlo in
  while !i < h1 && !j < h2 do
    (* Stable: ties favour the first run. *)
    if cmp src.(!i) src.(!j) <= 0 then begin
      dst.(!k) <- src.(!i);
      incr i
    end
    else begin
      dst.(!k) <- src.(!j);
      incr j
    end;
    incr k
  done;
  while !i < h1 do
    dst.(!k) <- src.(!i);
    incr i;
    incr k
  done;
  while !j < h2 do
    dst.(!k) <- src.(!j);
    incr j;
    incr k
  done

(* Parallel merge by binary-search splitting: halve the longer run, locate
   the pivot in the other run (sides chosen to preserve stability), fork. *)
let rec pmerge cmp grain src dst ~l1 ~h1 ~l2 ~h2 ~dlo =
  let n1 = h1 - l1 and n2 = h2 - l2 in
  if n1 + n2 <= grain then begin
    seq_merge cmp src ~l1 ~h1 ~l2 ~h2 dst ~dlo;
    S.Ops.tick ()
  end
  else if n1 >= n2 then begin
    let m1 = (l1 + h1) / 2 in
    let pivot = src.(m1) in
    (* Second-run elements equal to the pivot stay on the right. *)
    let m2 = Seq_ops.lower_bound cmp src ~lo:l2 ~hi:h2 pivot in
    S.Ops.fork_join_unit
      (fun () -> pmerge cmp grain src dst ~l1 ~h1:m1 ~l2 ~h2:m2 ~dlo)
      (fun () ->
        pmerge cmp grain src dst ~l1:m1 ~h1 ~l2:m2 ~h2
          ~dlo:(dlo + (m1 - l1) + (m2 - l2)))
  end
  else begin
    let m2 = (l2 + h2) / 2 in
    let pivot = src.(m2) in
    (* First-run elements equal to the pivot stay on the left. *)
    let m1 = Seq_ops.upper_bound cmp src ~lo:l1 ~hi:h1 pivot in
    S.Ops.fork_join_unit
      (fun () -> pmerge cmp grain src dst ~l1 ~h1:m1 ~l2 ~h2:m2 ~dlo)
      (fun () ->
        pmerge cmp grain src dst ~l1:m1 ~h1 ~l2:m2 ~h2
          ~dlo:(dlo + (m1 - l1) + (m2 - l2)))
  end

let merge ?grain cmp a b =
  let n1 = Array.length a and n2 = Array.length b in
  if n1 + n2 = 0 then [||]
  else begin
    let grain =
      match grain with Some g -> max 1 g | None -> max 1024 (Seq_ops.default_grain (n1 + n2))
    in
    let src = Array.append a b in
    let dst = Array.make (n1 + n2) (if n1 > 0 then a.(0) else b.(0)) in
    pmerge cmp grain src dst ~l1:0 ~h1:n1 ~l2:n1 ~h2:(n1 + n2) ~dlo:0;
    dst
  end

let seq_sort_range cmp a lo hi =
  let sub = Array.sub a lo (hi - lo) in
  Array.stable_sort cmp sub;
  Array.blit sub 0 a lo (hi - lo)

(* Ping-pong merge sort. Invariant: data is in [s.(lo..hi)]; the result
   lands in [d] when [to_dst], in [s] otherwise. *)
let rec sort_rec cmp grain s d lo hi ~to_dst =
  if hi - lo <= grain then begin
    if to_dst then begin
      Array.blit s lo d lo (hi - lo);
      seq_sort_range cmp d lo hi
    end
    else seq_sort_range cmp s lo hi;
    S.Ops.tick ()
  end
  else begin
    let mid = lo + ((hi - lo) / 2) in
    S.Ops.fork_join_unit
      (fun () -> sort_rec cmp grain s d lo mid ~to_dst:(not to_dst))
      (fun () -> sort_rec cmp grain s d mid hi ~to_dst:(not to_dst));
    if to_dst then pmerge cmp grain s d ~l1:lo ~h1:mid ~l2:mid ~h2:hi ~dlo:lo
    else pmerge cmp grain d s ~l1:lo ~h1:mid ~l2:mid ~h2:hi ~dlo:lo
  end

let merge_sort_inplace ?grain cmp a =
  let n = Array.length a in
  if n > 1 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> max 1024 (Seq_ops.default_grain n)
    in
    let tmp = Array.make n a.(0) in
    sort_rec cmp grain a tmp 0 n ~to_dst:false
  end

let merge_sort ?grain cmp a =
  let out = Array.copy a in
  merge_sort_inplace ?grain cmp out;
  out

let radix_digit_bits = 8

let radix = 1 lsl radix_digit_bits

let radix_sort_by ?grain ~key ~bits a =
  let n = Array.length a in
  if n <= 1 then Array.copy a
  else begin
    let grain =
      match grain with Some g -> max 1 g | None -> max 4096 (Seq_ops.default_grain n)
    in
    let nblocks = max 1 ((n + grain - 1) / grain) in
    let block_size = (n + nblocks - 1) / nblocks in
    let passes = (bits + radix_digit_bits - 1) / radix_digit_bits in
    let src = ref (Array.copy a) and dst = ref (Array.make n a.(0)) in
    for pass = 0 to passes - 1 do
      let shift = pass * radix_digit_bits in
      let s = !src and d = !dst in
      let digit x = (key x lsr shift) land (radix - 1) in
      (* Per-block digit counts. *)
      let counts = Array.make (nblocks * radix) 0 in
      S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nblocks (fun b ->
          let lo = b * block_size and hi = min n ((b + 1) * block_size) in
          let base = b * radix in
          for i = lo to hi - 1 do
            let dg = digit s.(i) in
            counts.(base + dg) <- counts.(base + dg) + 1
          done;
          S.Ops.tick ());
      (* Column-major (digit-major) exclusive scan gives each block its
         write offset per digit; scatter is then stable. *)
      let flat = Array.make (radix * nblocks) 0 in
      S.Ops.parallel_for ~grain:16 ~start:0 ~stop:radix (fun dg ->
          for b = 0 to nblocks - 1 do
            flat.((dg * nblocks) + b) <- counts.((b * radix) + dg)
          done);
      let offsets, _total = Seq_ops.scan ( + ) 0 flat in
      S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nblocks (fun b ->
          let lo = b * block_size and hi = min n ((b + 1) * block_size) in
          let pos = Array.make radix 0 in
          for dg = 0 to radix - 1 do
            pos.(dg) <- offsets.((dg * nblocks) + b)
          done;
          for i = lo to hi - 1 do
            let dg = digit s.(i) in
            d.(pos.(dg)) <- s.(i);
            pos.(dg) <- pos.(dg) + 1
          done;
          S.Ops.tick ());
      src := d;
      dst := s
    done;
    !src
  end

let radix_sort ?grain ~bits a = radix_sort_by ?grain ~key:(fun x -> x) ~bits a

let is_sorted cmp a =
  let n = Array.length a in
  let ok = ref true in
  for i = 0 to n - 2 do
    if cmp a.(i) a.(i + 1) > 0 then ok := false
  done;
  !ok
