(** Parallel sample sort — the comparison sort ParlayLib actually uses
    for large inputs (and hence what the paper's comparisonSort runs).

    The input is cut into √n-ish blocks; a random sample is sorted to
    pick bucket pivots; every block partitions its elements into buckets
    (counting + scatter, like a radix pass but comparison-driven); each
    bucket is then sorted independently in parallel. Work O(n log n),
    depth O(log² n); not stable (PBBS's samplesort is not either — use
    {!Sort.merge_sort} when stability matters). *)

(** [sort cmp a] returns a new sorted array. *)
val sort : ?seed:int -> ('a -> 'a -> int) -> 'a array -> 'a array

(** Number of buckets used for an input of size [n] (exposed for tests:
    every bucket boundary must respect the pivot order). *)
val num_buckets : int -> int
