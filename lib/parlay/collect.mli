(** Group-by-key and reduce-by-key (Parlay's [collect_reduce] family),
    built on the stable radix sort: sort by key, cut at run boundaries,
    reduce each run in parallel. Keys must be non-negative and fit
    [bits] bits. Output groups are ordered by key. *)

(** [group_by ~key ~bits a] — one [(k, elements-with-key-k)] per distinct
    key; within a group, input order is preserved (stability). *)
val group_by : key:('a -> int) -> bits:int -> 'a array -> (int * 'a array) array

(** [collect_reduce ~key ~value ~op ~zero ~bits a] — fold the values of
    each key group with [op] (associative, identity [zero]). *)
val collect_reduce :
  key:('a -> int) ->
  value:('a -> 'b) ->
  op:('b -> 'b -> 'b) ->
  zero:'b ->
  bits:int ->
  'a array ->
  (int * 'b) array

(** [count_by ~key ~bits a] — occurrences per key. *)
val count_by : key:('a -> int) -> bits:int -> 'a array -> (int * int) array

(** [histogram_by ~key ~bits ~buckets a] — dense count array of length
    [buckets] (keys must be < buckets). *)
val histogram_by : key:('a -> int) -> bits:int -> buckets:int -> 'a array -> int array
