module S = Lcws_sched.Scheduler

let default_grain n =
  let p = S.Ops.num_workers () in
  max 1 (min 2048 (n / (8 * p)))

let tabulate ?grain n f =
  if n <= 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    S.Ops.parallel_for ?grain ~start:1 ~stop:n (fun i -> a.(i) <- f i);
    a
  end

let mapi ?grain f a = tabulate ?grain (Array.length a) (fun i -> f i a.(i))

let map ?grain f a = tabulate ?grain (Array.length a) (fun i -> f a.(i))

let iteri ?grain f a =
  S.Ops.parallel_for ?grain ~start:0 ~stop:(Array.length a) (fun i -> f i a.(i))

let iter ?grain f a = iteri ?grain (fun _ x -> f x) a

(* The workhorse behind every reduction here: fold [f i] over an index
   range, splitting by fork/join down to grain-sized sequential leaves.
   Nothing is materialized per element, so reductions whose input is a
   function of the index (not an array) run allocation-free. *)
let rec mr_range f op zero grain lo hi =
  if hi - lo <= grain then begin
    let acc = ref zero in
    for i = lo to hi - 1 do
      acc := op !acc (f i)
    done;
    S.Ops.tick ();
    !acc
  end
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let l, r =
      S.Ops.fork_join
        (fun () -> mr_range f op zero grain lo mid)
        (fun () -> mr_range f op zero grain mid hi)
    in
    op l r
  end

let map_reduce_range ?grain f op zero ~lo ~hi =
  if hi <= lo then zero
  else begin
    let grain = match grain with Some g -> max 1 g | None -> default_grain (hi - lo) in
    mr_range f op zero grain lo hi
  end

let reduce ?grain op zero a =
  let n = Array.length a in
  if n = 0 then zero else map_reduce_range ?grain (fun i -> a.(i)) op zero ~lo:0 ~hi:n

let map_reduce ?grain f op zero a =
  let n = Array.length a in
  if n = 0 then zero else map_reduce_range ?grain (fun i -> f a.(i)) op zero ~lo:0 ~hi:n

(* Two-pass blocked exclusive scan: per-block sums, a (short) sequential
   scan over them, then per-block prefix rewrites. *)
let scan ?grain op zero a =
  let n = Array.length a in
  if n = 0 then ([||], zero)
  else begin
    let block = match grain with Some g -> max 1 g | None -> max 1 (min 4096 (default_grain n * 4)) in
    let nblocks = (n + block - 1) / block in
    let block_sums =
      tabulate ~grain:1 nblocks (fun b ->
          let lo = b * block and hi = min n ((b + 1) * block) in
          let acc = ref zero in
          for i = lo to hi - 1 do
            acc := op !acc a.(i)
          done;
          !acc)
    in
    let offsets = Array.make nblocks zero in
    let total = ref zero in
    for b = 0 to nblocks - 1 do
      offsets.(b) <- !total;
      total := op !total block_sums.(b)
    done;
    let out = Array.make n zero in
    S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nblocks (fun b ->
        let lo = b * block and hi = min n ((b + 1) * block) in
        let acc = ref offsets.(b) in
        for i = lo to hi - 1 do
          out.(i) <- !acc;
          acc := op !acc a.(i)
        done;
        S.Ops.tick ());
    (out, !total)
  end

let scan_inclusive ?grain op zero a =
  let ex, _total = scan ?grain op zero a in
  mapi ?grain (fun i prefix -> op prefix a.(i)) ex

let pack_index ?grain p a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let flags = tabulate ?grain n (fun i -> if p i a.(i) then 1 else 0) in
    let pos, total = scan ?grain ( + ) 0 flags in
    if total = 0 then [||]
    else begin
      let out = Array.make total 0 in
      S.Ops.parallel_for ?grain ~start:0 ~stop:n (fun i ->
          if flags.(i) = 1 then out.(pos.(i)) <- i);
      out
    end
  end

let filter_mapi ?grain f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let mapped = tabulate ?grain n (fun i -> f i a.(i)) in
    (* Fused blocked compaction: the flag pass is folded into the
       block-count pass (no n-element flags array), and each block
       compacts into [out] by walking [mapped] from its own offset (no
       n-element positions array either) — one count traversal and one
       write traversal over [mapped], two O(n) temporaries fewer than
       going through a full [scan]. *)
    let block =
      match grain with Some g -> max 1 g | None -> max 1 (min 4096 (default_grain n * 4))
    in
    let nblocks = (n + block - 1) / block in
    let counts =
      tabulate ~grain:1 nblocks (fun b ->
          let lo = b * block and hi = min n ((b + 1) * block) in
          let c = ref 0 in
          for i = lo to hi - 1 do
            match mapped.(i) with Some _ -> incr c | None -> ()
          done;
          !c)
    in
    let offsets = Array.make nblocks 0 in
    let total = ref 0 in
    for b = 0 to nblocks - 1 do
      offsets.(b) <- !total;
      total := !total + counts.(b)
    done;
    let total = !total in
    if total = 0 then [||]
    else begin
      let first =
        let rec find i = match mapped.(i) with Some x -> x | None -> find (i + 1) in
        find 0
      in
      let out = Array.make total first in
      S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nblocks (fun b ->
          let lo = b * block and hi = min n ((b + 1) * block) in
          let j = ref offsets.(b) in
          for i = lo to hi - 1 do
            match mapped.(i) with
            | Some x ->
                out.(!j) <- x;
                incr j
            | None -> ()
          done;
          S.Ops.tick ());
      out
    end
  end

let pack ?grain flags a =
  if Array.length flags <> Array.length a then invalid_arg "Seq_ops.pack";
  filter_mapi ?grain (fun i x -> if flags.(i) then Some x else None) a

let filter ?grain p a = filter_mapi ?grain (fun _ x -> if p x then Some x else None) a

let flatten parts =
  let sizes = Array.map Array.length parts in
  let offs, total = scan ( + ) 0 sizes in
  if total = 0 then [||]
  else begin
    let first =
      let rec find i = if Array.length parts.(i) > 0 then parts.(i).(0) else find (i + 1) in
      find 0
    in
    let out = Array.make total first in
    S.Ops.parallel_for ~grain:1 ~start:0 ~stop:(Array.length parts) (fun p ->
        let part = parts.(p) in
        let off = offs.(p) in
        for j = 0 to Array.length part - 1 do
          out.(off + j) <- part.(j)
        done;
        S.Ops.tick ());
    out
  end

(* Reduce over the index range directly — the former version tabulated
   an n-element identity index array just to reduce it away again. *)
let extreme_index keep cmp a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Seq_ops.extreme_index: empty array";
  let pick i j =
    let c = cmp a.(i) a.(j) in
    if keep c then i else if c = 0 then min i j else j
  in
  map_reduce_range
    (fun i -> i)
    (fun i j -> if i < 0 then j else if j < 0 then i else pick i j)
    (-1) ~lo:0 ~hi:n

let min_index cmp a = extreme_index (fun c -> c < 0) cmp a

let max_index cmp a = extreme_index (fun c -> c > 0) cmp a

let sum_ints a = reduce ( + ) 0 a

let sum_floats a = reduce ( +. ) 0. a

let count p a = map_reduce (fun x -> if p x then 1 else 0) ( + ) 0 a

let all_of p a = map_reduce p ( && ) true a

let any_of p a = map_reduce p ( || ) false a

let lower_bound cmp a ~lo ~hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp a.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound cmp a ~lo ~hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp a.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo
