let hash64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_int ~seed i =
  let h = hash64 (Int64.add (Int64.mul (Int64.of_int seed) 0x100000001B3L) (Int64.of_int i)) in
  Int64.to_int h land max_int

let int ~seed i bound =
  if bound <= 0 then invalid_arg "Prandom.int";
  hash_int ~seed i mod bound

let float ~seed i =
  let h = hash_int ~seed i in
  float_of_int (h land ((1 lsl 53) - 1)) *. 0x1.0p-53

let ints ?(seed = 1) n ~bound = Seq_ops.tabulate n (fun i -> int ~seed i bound)

let exponential_ints ?(seed = 1) n ~bound =
  (* Magnitude class k chosen with P ~ 2^-(k+1); value uniform within the
     class, mirroring PBBS's expDist. *)
  let classes = max 1 (Lcws_sync.Fastmath.log2_floor (max 2 bound)) in
  Seq_ops.tabulate n (fun i ->
      let r = hash_int ~seed i in
      let k =
        let rec count_zeros bit k =
          if k >= classes - 1 || (r lsr bit) land 1 = 1 then k
          else count_zeros (bit + 1) (k + 1)
        in
        count_zeros 0 0
      in
      let hi = min bound (1 lsl (k + 1)) in
      let lo = if k = 0 then 0 else min (bound - 1) (1 lsl k) in
      let width = max 1 (hi - lo) in
      lo + (hash_int ~seed:(seed + 7919) i mod width))

let almost_sorted ?(seed = 1) n ~swaps =
  let a = Array.init n (fun i -> i) in
  for s = 0 to swaps - 1 do
    if n >= 2 then begin
      let i = int ~seed (2 * s) n and j = int ~seed ((2 * s) + 1) n in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done;
  a

let floats ?(seed = 1) n = Seq_ops.tabulate n (fun i -> float ~seed i)

let permutation ?(seed = 1) n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int ~seed i (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
