(** Deterministic parallel random data generation.

    Every value is a pure hash of [(seed, index)], so generation
    parallelizes embarrassingly and is reproducible across worker counts —
    the property PBBS input generators rely on. *)

(** [hash64 x] — splitmix64 finalizer; good avalanche, bijective. *)
val hash64 : int64 -> int64

(** [hash_int ~seed i] — non-negative int hash. *)
val hash_int : seed:int -> int -> int

(** [int ~seed i bound] uniform in [\[0, bound)]. *)
val int : seed:int -> int -> int -> int

(** [float ~seed i] uniform in [\[0, 1)]. *)
val float : seed:int -> int -> float

(** [ints ~seed n ~bound] — array of [n] uniform ints. *)
val ints : ?seed:int -> int -> bound:int -> int array

(** [exponential_ints ~seed n ~bound] — exponentially distributed keys as
    in PBBS's [exptSeq]: value [v] appears with probability ~2^-k for its
    magnitude class. *)
val exponential_ints : ?seed:int -> int -> bound:int -> int array

(** [almost_sorted ~seed n ~swaps] — [0..n-1] with [swaps] random
    transpositions (PBBS [almostSortedSeq]). *)
val almost_sorted : ?seed:int -> int -> swaps:int -> int array

val floats : ?seed:int -> int -> float array

(** [permutation ~seed n] — uniform random permutation of [0..n-1]
    (sequential Fisher-Yates; used by generators, not benchmarks). *)
val permutation : ?seed:int -> int -> int array
