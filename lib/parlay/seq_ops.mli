(** Parallel sequence primitives in the style of ParlayLib.

    All operations run on the enclosing {!Lcws_sched.Scheduler.Pool} (or
    sequentially outside one) and contain {!Lcws_sched.Scheduler.tick}
    poll points, so signal-based LCWS variants get their constant-time
    work-exposure guarantee through them. *)

(** Default leaf size used by these primitives for an [n]-element
    operation on the current pool. *)
val default_grain : int -> int

(** [tabulate n f] is [[| f 0; ...; f (n-1) |]] computed in parallel.
    [f 0] is evaluated first (to seed the result array), so [f] should be
    pure. *)
val tabulate : ?grain:int -> int -> (int -> 'a) -> 'a array

val map : ?grain:int -> ('a -> 'b) -> 'a array -> 'b array

val mapi : ?grain:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val iter : ?grain:int -> ('a -> unit) -> 'a array -> unit

val iteri : ?grain:int -> (int -> 'a -> unit) -> 'a array -> unit

(** [reduce op zero a] — [op] must be associative with identity [zero]. *)
val reduce : ?grain:int -> ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a

(** [map_reduce f op zero a] = [reduce op zero (map f a)] without the
    intermediate array. *)
val map_reduce : ?grain:int -> ('a -> 'b) -> ('b -> 'b -> 'b) -> 'b -> 'a array -> 'b

(** [map_reduce_range f op zero ~lo ~hi] folds [f i] over the index range
    [lo <= i < hi] with [op] (associative, identity [zero]), splitting in
    parallel down to grain-sized sequential leaves. Nothing is
    materialized per element, so index-function reductions (e.g.
    {!min_index}) run without any O(n) temporaries. [zero] is returned
    when the range is empty. *)
val map_reduce_range :
  ?grain:int -> (int -> 'a) -> ('a -> 'a -> 'a) -> 'a -> lo:int -> hi:int -> 'a

(** [scan op zero a] is the exclusive prefix scan: returns [(s, total)]
    where [s.(i) = fold op zero a.(0..i-1)]. Two-pass blocked algorithm. *)
val scan : ?grain:int -> ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array * 'a

(** Inclusive variant: [s.(i) = fold op zero a.(0..i)]. *)
val scan_inclusive : ?grain:int -> ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array

(** [pack flags a] keeps [a.(i)] where [flags.(i)]. *)
val pack : ?grain:int -> bool array -> 'a array -> 'a array

val filter : ?grain:int -> ('a -> bool) -> 'a array -> 'a array

(** [filter_mapi f a] keeps the [Some] results of [f i a.(i)], in order.
    Blocked compaction fusing the flag pass into the block-count pass:
    no per-element flags or positions arrays are materialized. *)
val filter_mapi : ?grain:int -> (int -> 'a -> 'b option) -> 'a array -> 'b array

(** Indices [i] with [p i a.(i)], in order. *)
val pack_index : ?grain:int -> (int -> 'a -> bool) -> 'a array -> int array

val flatten : 'a array array -> 'a array

(** [min_index cmp a] / [max_index cmp a] — index of an extreme element
    (first one under ties). Arrays must be non-empty. *)
val min_index : ('a -> 'a -> int) -> 'a array -> int

val max_index : ('a -> 'a -> int) -> 'a array -> int

val sum_ints : int array -> int

val sum_floats : float array -> float

(** [count p a] is the number of elements satisfying [p]. *)
val count : ('a -> bool) -> 'a array -> int

(** [all_of p a] / [any_of p a]. *)
val all_of : ('a -> bool) -> 'a array -> bool

val any_of : ('a -> bool) -> 'a array -> bool

(** Sequential helpers shared by the sorts. *)

(** [lower_bound cmp a ~lo ~hi x] — first index in [\[lo,hi)] whose element
    is [>= x] (i.e. not [< x]). *)
val lower_bound : ('a -> 'a -> int) -> 'a array -> lo:int -> hi:int -> 'a -> int

val upper_bound : ('a -> 'a -> int) -> 'a array -> lo:int -> hi:int -> 'a -> int
