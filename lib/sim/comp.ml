type t = Work of int | Seq of t list | Fork of t * t | Pfor of pfor

and pfor = { lo : int; hi : int; grain : int; leaf_cost : int -> int }

let pfor ?(grain = 1) ~n leaf_cost =
  if n < 0 then invalid_arg "Comp.pfor";
  Pfor { lo = 0; hi = n; grain = max 1 grain; leaf_cost }

let rec balanced ~leaves ~leaf_work =
  if leaves <= 1 then Work leaf_work
  else begin
    let l = leaves / 2 in
    Fork (balanced ~leaves:l ~leaf_work, balanced ~leaves:(leaves - l) ~leaf_work)
  end

let rec total_work = function
  | Work c -> c
  | Seq l -> List.fold_left (fun a c -> a + total_work c) 0 l
  | Fork (a, b) -> total_work a + total_work b
  | Pfor { lo; hi; leaf_cost; _ } ->
      let acc = ref 0 in
      for i = lo to hi - 1 do
        acc := !acc + leaf_cost i
      done;
      !acc

let rec span = function
  | Work c -> c
  | Seq l -> List.fold_left (fun a c -> a + span c) 0 l
  | Fork (a, b) -> max (span a) (span b)
  | Pfor ({ lo; hi; grain; _ } as p) ->
      if hi - lo <= grain then
        let acc = ref 0 in
        for i = lo to hi - 1 do
          acc := !acc + p.leaf_cost i
        done;
        !acc
      else begin
        let mid = lo + ((hi - lo) / 2) in
        max (span (Pfor { p with hi = mid })) (span (Pfor { p with lo = mid }))
      end

let rec num_leaves = function
  | Work _ -> 1
  | Seq l -> List.fold_left (fun a c -> a + num_leaves c) 0 l
  | Fork (a, b) -> num_leaves a + num_leaves b
  | Pfor { lo; hi; grain; _ } ->
      let n = hi - lo in
      if n = 0 then 0 else (n + grain - 1) / grain
