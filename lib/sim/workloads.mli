(** Simulator workload models — one fork-join DAG per PBBS
    〈benchmark, input instance〉 configuration.

    Each model reproduces the *shape* that drives scheduling behaviour:
    task granularity, balance, recursion profile, sequential phases and
    skew. Leaf costs are in cycles of the simulated machines, calibrated
    so that fence costs are a few percent of leaf work (the regime the
    paper's Figure 5 gains live in). [scale] multiplies problem sizes. *)

type config = {
  bench : string;
  instance : string;
  build : scale:float -> Comp.t;
}

(** Parlay-style granularity control targets a roughly constant leaf
    *duration*; [grain_for ~cost] is the iteration count that makes a
    leaf of per-iteration cost [cost] last about [target_leaf_cycles]. *)
val grain_for : cost:int -> int

val target_leaf_cycles : int

(** All configurations (the "all input instances of all benchmarks" set
    the paper sweeps). *)
val all : config list

val find : bench:string -> instance:string -> config option

val names : (string * string) list
