(** Synchronization cost models for the simulated machines.

    The paper evaluates on three physical computers (Table 1); this
    container has one core, so speedup experiments run on a deterministic
    discrete-event simulator whose per-operation costs (in cycles) are
    set per machine. Values are calibrated to public micro-architecture
    folklore: fences and CAS cost tens of cycles (more on the 4-socket
    Opteron), a [pthread_kill] round trip costs thousands (it is a
    syscall plus handler dispatch). The paper's qualitative results only
    need the ordering fence ≪ signal and local ≪ remote, which all three
    profiles satisfy. *)

type t = {
  name : string;
  cpu : string;  (** Table 1 CPU description *)
  cores : int;
  smt_threads : int;
  memory : string;
  fence_cost : int;  (** seq-cst memory fence *)
  cas_cost : int;  (** compare-and-swap (uncontended) *)
  plain_op_cost : int;  (** plain load/store deque bookkeeping *)
  steal_round_cost : int;  (** remote deque probe (cache miss latency) *)
  signal_send_cost : int;  (** [pthread_kill] syscall on the thief *)
  signal_deliver_latency : int;  (** OS delivery delay before the handler runs *)
  signal_handle_cost : int;  (** handler prologue/epilogue on the victim *)
  task_overhead : int;  (** per-task scheduling bookkeeping *)
  task_working_set : int;  (** cache lines a migrated task drags with it *)
  cache_line_cost : int;
      (** cycles to pull one of those lines from a victim at topology
          distance 1; scaled linearly by the distance matrix entry *)
}

(** Table 1, row 1: 2× Intel Xeon E5-2620 v2, 12 cores / 24 threads. *)
val intel12 : t

(** Table 1, row 2: 4× AMD Opteron 6272, 32 cores / 64 threads. *)
val amd32 : t

(** Table 1, row 3: 2× Intel Xeon E5-2609 v4, 16 cores / 16 threads. *)
val intel16 : t

val all : t list

val find : string -> t option

(** Worker counts swept for this machine, doubling up to [cores]
    (matching the paper's x-axes, e.g. 1..32 for AMD32). *)
val processor_sweep : t -> int list

(** Modeled cycles a thief spends faulting [tasks] migrated tasks'
    working sets across a topology [distance]:
    [tasks * task_working_set * cache_line_cost * distance]. *)
val migration_cost : t -> tasks:int -> distance:int -> int
