(** Deterministic discrete-event simulator of the five schedulers (plus
    two related-work policies) over a machine cost model.

    Each of [p] virtual workers owns a deque and a local clock; the
    engine always advances the worker with the smallest clock, so runs
    are deterministic given the seed. Scheduling behaviour — work-first
    forks, helping joins, split-deque exposure, targeted flags, signal
    latency — mirrors {!Lcws_sched.Scheduler} exactly; every
    synchronization operation advances the acting worker's clock by its
    cost in the {!Cost_model}. Speedups for Figures 4–7 are ratios of
    [makespan]s. *)

type policy =
  | Ws  (** Chase-Lev work stealing (baseline) *)
  | Uslcws  (** user-space LCWS, Section 3 *)
  | Signal  (** signal-based LCWS, Section 4 *)
  | Cons  (** Conservative Exposure, Section 4.1.1 *)
  | Half  (** Expose Half, Section 4.1.2 *)
  | Lace  (** split deque with unexposure, polled at task boundaries *)
  | Private_deques  (** Acar et al.: explicit transfer requests *)

val policy_name : policy -> string

val policy_of_string : string -> policy option

(** The paper's five (for the figures). *)
val paper_policies : policy list

type stats = {
  makespan : int;  (** cycles until the root computation completed *)
  total_work : int;  (** leaf cycles actually executed *)
  fences : int;
  cas : int;
  steal_attempts : int;
  steals : int;  (** successful *)
  exposed : int;  (** tasks transferred to public deque parts *)
  taken_back : int;  (** exposed tasks re-acquired by their owner *)
  signals_sent : int;
  signals_handled : int;
  tasks : int;  (** tasks executed (forked units) *)
  idle_cycles : int;  (** cycles spent in failed steal rounds *)
  tasks_migrated : int;  (** tasks that changed workers via a steal *)
  steals_batched : int;  (** steal episodes that moved more than one task *)
  near_steals : int;  (** steal episodes from a minimal-distance victim *)
  far_steals : int;  (** steal episodes from a farther victim *)
  cache_miss_cost : int;
      (** total modeled cycles thieves spent faulting migrated tasks'
          working sets across the topology
          ({!Cost_model.migration_cost}) *)
  policy_switches : int;
      (** adaptive runs: per-worker exposure-policy adoptions (one per
          worker per accepted governor flip); 0 on static runs *)
}

(** [exposed - steals], clamped at 0 — the "exposed but not stolen"
    quantity of Figures 3d and 8d. *)
val exposed_not_stolen : stats -> int

(** [run ~machine ~policy ~p ~seed comp] simulates [comp] on [p] workers.
    Worker 0 starts with the root; others steal. Deterministic.

    @param trace event sink (default {!Lcws_trace.Trace.null}); events are
      stamped with the acting worker's {e virtual} clock, so exported
      timelines and latency histograms are in model cycles, not
      nanoseconds.
    @param steal_policy victim-selection policy
      ({!Lcws_sync.Victim_policy.policy}). Defaults to [Uniform], which
      reproduces the engine's historical probe stream exactly.
    @param topology distance matrix for {!Lcws_sync.Victim_policy} and
      {!Cost_model.migration_cost} scaling (default flat — every
      migration at distance 1).
    @param steal_batch upper bound on tasks per steal episode (default
      1, classical steal-one). Thieves take
      [min steal_batch (max 1 (public / 2))] — the steal-half rule —
      charging one CAS per claimed task and pushing the extras into
      their own deque.
    @param adaptive elastic exposure policy (default false): a
      {!Lcws_sched.Policy_governor} samples the run's cumulative steal
      pressure every [adaptive_config.epoch] engine steps and flips the
      whole simulated pool between [Uslcws] and the handshake
      discipline ([policy] itself, or [Signal] for a [Uslcws] run).
      Requires a synchronization-light paper [policy].
    @param adaptive_config governor thresholds and sampling epoch
      (default {!Lcws_sched.Policy_governor.default_config}).
    @raise Invalid_argument if [trace] was created for fewer than [p]
      workers, [steal_batch < 1], or [adaptive] is requested with a
      policy that is not one of [Uslcws]/[Signal]/[Cons]/[Half]. *)
val run :
  machine:Cost_model.t ->
  policy:policy ->
  p:int ->
  ?seed:int64 ->
  ?quantum:int ->
  ?trace:Lcws_trace.Trace.t ->
  ?steal_policy:Lcws_sync.Victim_policy.policy ->
  ?topology:int array array ->
  ?steal_batch:int ->
  ?adaptive:bool ->
  ?adaptive_config:Lcws_sched.Policy_governor.config ->
  Comp.t ->
  stats
