(** Fork-join computation DAGs executed by the simulator.

    A [t] is a pure description; the engine interprets it with the exact
    scheduling discipline of the real runtime (work-first forks, helping
    joins, binary-split parallel loops with poll points). *)

type t =
  | Work of int  (** sequential leaf costing that many cycles *)
  | Seq of t list  (** sequential composition *)
  | Fork of t * t  (** binary fork-join: right side is pushed, stealable *)
  | Pfor of pfor  (** parallel loop, lowered lazily to a fork tree *)

and pfor = {
  lo : int;
  hi : int;
  grain : int;  (** leaves of at most [grain] iterations *)
  leaf_cost : int -> int;  (** cycles for iteration [i] *)
}

(** [pfor ?grain ~n leaf_cost] over [0..n-1]; default grain 1. *)
val pfor : ?grain:int -> n:int -> (int -> int) -> t

(** Balanced binary fork tree with [leaves] leaves of [leaf_work] cycles
    each (a microbenchmark-style DAG). *)
val balanced : leaves:int -> leaf_work:int -> t

(** Total work (cycles, excluding scheduling overheads). *)
val total_work : t -> int

(** Span: critical-path cycles (excluding overheads). *)
val span : t -> int

(** Number of [Work] leaves after lowering loops. *)
val num_leaves : t -> int
