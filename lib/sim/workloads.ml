module C = Comp

type config = { bench : string; instance : string; build : scale:float -> C.t }

let sc ~scale n = max 1 (int_of_float (scale *. float_of_int n))

(* Parlay's automatic granularity control sizes leaf tasks so scheduling
   overhead stays a small constant fraction of leaf work; we mirror that
   with a fixed leaf-duration target. This also sets the task-boundary
   interval that bounds USLCWS's exposure latency (Section 3.3: "task
   duration is not bounded" is modelled by the coarse [Work] tails some
   configs add explicitly). *)
let target_leaf_cycles = 5_000

let grain_for ~cost = max 1 (target_leaf_cycles / max 1 cost)

(* Deterministic per-index jitter so leaf costs are not perfectly uniform
   (real benchmarks never are). Allocation-free: this runs once per loop
   iteration inside the simulator's hot path. *)
let jitter seed i base spread =
  let h = (i * 0x9E3779B9) + (seed * 0x85EBCA6B) in
  let h = h lxor (h lsr 16) in
  let h = h * 0x45D9F3B land max_int in
  let h = h lxor (h lsr 13) in
  base + (h mod max 1 spread)

(* A data-parallel loop over [n] items with per-item cost around [cost]
   (+- half, jittered), chunked Parlay-style. *)
let loop ?(seed = 1) ~n ~cost () =
  C.pfor ~grain:(grain_for ~cost) ~n (fun i -> jitter seed i cost (max 1 (cost / 2)))

(* Divide-and-conquer with merge work at every level — the shape of
   comparison sorts (and the sort phases of derived benchmarks).
   [elem] = per-element leaf cost, [merge] = per-element merge cost. *)
let rec sort_shape ~n ~elem ~merge =
  let base = grain_for ~cost:elem in
  if n <= base then C.Work (n * elem)
  else begin
    let half = n / 2 in
    C.Seq
      [
        C.Fork (sort_shape ~n:half ~elem ~merge, sort_shape ~n:(n - half) ~elem ~merge);
        C.Work (n * merge);
      ]
  end

(* Unbalanced divide and conquer (quickhull, decision trees): children get
   [frac] and ~0.8*(1-frac) of the points; a partition pass resolves at
   this level. *)
let rec skewed_dnc ~n ~node_cost ~frac seed =
  let cutoff = grain_for ~cost:node_cost * 2 in
  if n <= cutoff then C.Work (n * node_cost)
  else begin
    let left = max 1 (int_of_float (frac *. float_of_int n)) in
    let right = max 1 (int_of_float ((1. -. frac) *. float_of_int n *. 0.8)) in
    C.Seq
      [
        C.Work (n * node_cost / 4);
        C.Fork
          ( skewed_dnc ~n:left ~node_cost ~frac (seed + 1),
            skewed_dnc ~n:right ~node_cost ~frac (seed + 2) );
      ]
  end

(* Rounds of shrinking parallel loops (MIS, matching: active set decays
   geometrically). *)
let shrinking_rounds ~n ~cost ~decay ~min_n =
  let rec rounds n acc seed =
    if n < min_n then List.rev acc
    else
      rounds
        (int_of_float (float_of_int n *. decay))
        (loop ~seed ~n ~cost () :: acc)
        (seed + 1)
  in
  C.Seq (rounds n [] 5)

(* BFS layer profiles. *)
let layered ~widths ~cost =
  C.Seq (List.mapi (fun i w -> loop ~seed:(11 + i) ~n:w ~cost ()) widths)

let rmat_widths n =
  (* Power-law-ish ramp to a wide middle then a long tail. *)
  let rec ramp w acc = if w >= n / 3 then List.rev ((n / 3) :: acc) else ramp (w * 8) (w :: acc) in
  let up = ramp 1 [] in
  let down = [ n / 6; n / 20; n / 100; n / 500 ] in
  List.filter (fun w -> w > 0) (up @ down)

let all =
  [
    (* ------------------------------------------------ integerSort *)
    {
      bench = "integerSort";
      instance = "randomSeq_int";
      build =
        (fun ~scale ->
          let n = sc ~scale 400_000 in
          let pass = C.Seq [ loop ~seed:21 ~n ~cost:4 (); loop ~seed:22 ~n ~cost:6 () ] in
          C.Seq [ pass; pass; pass ]);
    };
    {
      bench = "integerSort";
      instance = "exptSeq_int";
      build =
        (fun ~scale ->
          let n = sc ~scale 400_000 in
          (* Skewed digit distribution: scatter cost varies more. *)
          let pass = C.Seq [ loop ~seed:23 ~n ~cost:3 (); loop ~seed:24 ~n ~cost:8 () ] in
          C.Seq [ pass; pass; pass ]);
    };
    (* --------------------------------------------- comparisonSort *)
    {
      bench = "comparisonSort";
      instance = "randomSeq_double";
      build = (fun ~scale -> sort_shape ~n:(sc ~scale 300_000) ~elem:10 ~merge:5);
    };
    {
      bench = "comparisonSort";
      instance = "almostSortedSeq_double";
      build = (fun ~scale -> sort_shape ~n:(sc ~scale 300_000) ~elem:7 ~merge:4);
    };
    {
      bench = "comparisonSort";
      instance = "trigramSeq_string";
      build = (fun ~scale -> sort_shape ~n:(sc ~scale 200_000) ~elem:25 ~merge:12);
    };
    (* -------------------------------------------------- histogram *)
    {
      bench = "histogram";
      instance = "randomSeq_100K_int";
      build =
        (fun ~scale ->
          let n = sc ~scale 800_000 in
          C.Seq [ loop ~seed:31 ~n ~cost:3 (); loop ~seed:32 ~n:(sc ~scale 100_000) ~cost:4 () ]);
    };
    {
      bench = "histogram";
      instance = "randomSeq_256_int";
      build =
        (fun ~scale ->
          let n = sc ~scale 800_000 in
          C.Seq [ loop ~seed:33 ~n ~cost:3 (); loop ~seed:34 ~n:256 ~cost:60 () ]);
    };
    (* ------------------------------------------------- wordCounts *)
    {
      bench = "wordCounts";
      instance = "trigramSeq_small_vocab";
      build =
        (fun ~scale ->
          let words = sc ~scale 250_000 in
          C.Seq
            [
              loop ~seed:41 ~n:words ~cost:12 ();
              sort_shape ~n:words ~elem:8 ~merge:5;
              loop ~seed:42 ~n:words ~cost:3 ();
            ]);
    };
    {
      bench = "wordCounts";
      instance = "trigramSeq_large_vocab";
      build =
        (fun ~scale ->
          let words = sc ~scale 250_000 in
          C.Seq
            [
              loop ~seed:43 ~n:words ~cost:14 ();
              sort_shape ~n:words ~elem:9 ~merge:6;
              loop ~seed:44 ~n:(words / 2) ~cost:5 ();
            ]);
    };
    (* ---------------------------------------------- invertedIndex *)
    {
      bench = "invertedIndex";
      instance = "wikipedia_like_200docs";
      build =
        (fun ~scale ->
          let docs = 200 in
          let words = sc ~scale 300_000 in
          C.Seq
            [
              (* Zipf-skewed per-document work: a few huge documents make
                 long sequential tasks (the exposure-latency stress). *)
              C.pfor ~grain:1 ~n:docs (fun d -> ((words / docs) * 8) + (words * 4 / (d + 2)));
              sort_shape ~n:words ~elem:8 ~merge:5;
            ]);
    };
    (* ------------------------------------------- removeDuplicates *)
    {
      bench = "removeDuplicates";
      instance = "randomSeq_int";
      build =
        (fun ~scale ->
          let n = sc ~scale 300_000 in
          C.Seq [ sort_shape ~n ~elem:9 ~merge:5; loop ~seed:51 ~n ~cost:3 () ]);
    };
    (* ----------------------------------------------- suffixArray *)
    {
      bench = "suffixArray";
      instance = "trigramString";
      build =
        (fun ~scale ->
          let n = sc ~scale 120_000 in
          let round = C.Seq [ sort_shape ~n ~elem:9 ~merge:5; loop ~seed:52 ~n ~cost:4 () ] in
          C.Seq (List.init 10 (fun _ -> round)));
    };
    (* ------------------------------------------ breadthFirstSearch *)
    {
      bench = "breadthFirstSearch";
      instance = "rMatGraph_J";
      build =
        (fun ~scale ->
          let n = sc ~scale 500_000 in
          layered ~widths:(rmat_widths n) ~cost:120);
    };
    {
      bench = "breadthFirstSearch";
      instance = "gridGraph_2D";
      build =
        (fun ~scale ->
          (* Fixed diameter, frontiers scale: many medium rounds. *)
          let width = sc ~scale 6_000 in
          C.Seq (List.init 300 (fun i -> loop ~seed:(61 + i) ~n:width ~cost:90 ())));
    };
    {
      bench = "breadthFirstSearch";
      instance = "3Dgrid_J";
      build =
        (fun ~scale ->
          let peak = sc ~scale 20_000 in
          C.Seq
            (List.init 160 (fun r ->
                 let w = max 64 (min peak ((r + 1) * peak / 40)) in
                 loop ~seed:(71 + r) ~n:w ~cost:100 ())));
    };
    (* ------------------------------------- maximalIndependentSet *)
    {
      bench = "maximalIndependentSet";
      instance = "rMatGraph_J";
      build = (fun ~scale -> shrinking_rounds ~n:(sc ~scale 600_000) ~cost:60 ~decay:0.45 ~min_n:256);
    };
    (* ------------------------------------------- maximalMatching *)
    {
      bench = "maximalMatching";
      instance = "rMatGraph_E";
      build = (fun ~scale -> shrinking_rounds ~n:(sc ~scale 700_000) ~cost:45 ~decay:0.5 ~min_n:256);
    };
    (* -------------------------------------------- spanningForest *)
    {
      bench = "spanningForest";
      instance = "rMatGraph_E";
      build =
        (fun ~scale ->
          let m = sc ~scale 400_000 in
          C.Seq
            [
              sort_shape ~n:m ~elem:8 ~merge:5;
              (* Sequential union-find tail: a long serial task — the case
                 where timely exposure matters most (cf. Lace discussion). *)
              C.Work (m * 6);
            ]);
    };
    (* ----------------------------------------------- convexHull *)
    {
      bench = "convexHull";
      instance = "2DinSphere";
      build = (fun ~scale -> skewed_dnc ~n:(sc ~scale 900_000) ~node_cost:7 ~frac:0.4 1);
    };
    {
      bench = "convexHull";
      instance = "2Dkuzmin";
      build = (fun ~scale -> skewed_dnc ~n:(sc ~scale 900_000) ~node_cost:7 ~frac:0.15 2);
    };
    (* ------------------------------------------ nearestNeighbors *)
    {
      bench = "nearestNeighbors";
      instance = "2DinCube";
      build =
        (fun ~scale ->
          let n = sc ~scale 200_000 in
          C.Seq [ sort_shape ~n ~elem:9 ~merge:5; loop ~seed:81 ~n ~cost:150 () ]);
    };
    (* ------------------------------------------------------ nBody *)
    {
      bench = "nBody";
      instance = "3DonSphere";
      build =
        (fun ~scale ->
          let n = sc ~scale 60_000 in
          C.Seq [ sort_shape ~n ~elem:10 ~merge:6; loop ~seed:82 ~n ~cost:900 () ]);
    };
    (* ---------------------------------------------------- rayCast *)
    {
      bench = "rayCast";
      instance = "happy_like_tris";
      build = (fun ~scale -> loop ~seed:83 ~n:(sc ~scale 50_000) ~cost:1100 ());
    };
    (* ----------------------------------- longestRepeatedSubstring *)
    {
      bench = "longestRepeatedSubstring";
      instance = "trigramString";
      build =
        (fun ~scale ->
          let n = sc ~scale 80_000 in
          let sa_round = C.Seq [ sort_shape ~n ~elem:9 ~merge:5; loop ~seed:101 ~n ~cost:4 () ] in
          C.Seq
            (List.init 9 (fun _ -> sa_round)
            @ [ C.Work (n * 8) (* Kasai: sequential LCP pass *); loop ~seed:102 ~n ~cost:2 () ]));
    };
    (* ---------------------------------------------------- BWTransform *)
    {
      bench = "BWTransform";
      instance = "trigramString";
      build =
        (fun ~scale ->
          let n = sc ~scale 80_000 in
          let sa_round = C.Seq [ sort_shape ~n ~elem:9 ~merge:5; loop ~seed:103 ~n ~cost:4 () ] in
          C.Seq (List.init 9 (fun _ -> sa_round) @ [ loop ~seed:104 ~n ~cost:3 () ]));
    };
    (* --------------------------------------------------- rangeQuery2d *)
    {
      bench = "rangeQuery2d";
      instance = "2DinCube";
      build =
        (fun ~scale ->
          let n = sc ~scale 150_000 in
          let merge_levels =
            List.init 12 (fun l -> loop ~seed:(105 + l) ~n ~cost:4 ())
          in
          C.Seq
            ([ sort_shape ~n ~elem:9 ~merge:5 ] @ merge_levels
            @ [ loop ~seed:120 ~n:(sc ~scale 15_000) ~cost:600 () ]));
    };
    (* ------------------------------------------ delaunayTriangulation *)
    {
      bench = "delaunayTriangulation";
      instance = "2DinCube";
      build =
        (fun ~scale ->
          (* Incremental rounds: a parallel cavity filter over a growing
             triangle set, then a small sequential retriangulation. *)
          let n = sc ~scale 700 in
          C.Seq
            (List.init n (fun i ->
                 let live = max 16 (2 * i) in
                 C.Seq
                   [
                     C.pfor ~grain:(grain_for ~cost:8) ~n:live (fun j -> jitter (131 + i) j 8 6);
                     C.Work 600 (* cavity retriangulation, sequential *);
                   ])));
    };
    (* --------------------------------------------------- classify *)
    {
      bench = "classify";
      instance = "covtype_like";
      build =
        (fun ~scale ->
          let n = sc ~scale 250_000 in
          (* Deep, unbalanced tree growth: per node a burst of candidate
             scoring loops over a shrinking row set, then recurse. The
             many small tasks make it the steal-heaviest configuration
             (the paper's worst case for signal-based LCWS). *)
          let rec grow rows depth seed =
            if rows < 4096 || depth >= 8 then C.Work (rows * 4)
            else begin
              let score = C.pfor ~grain:1 ~n:40 (fun i -> jitter seed i (rows / 24) (rows / 48)) in
              let left = rows * 3 / 10 and right = rows * 7 / 10 in
              C.Seq
                [ score; C.Fork (grow left (depth + 1) (seed + 1), grow right (depth + 1) (seed + 2)) ]
            end
          in
          grow n 0 91);
    };
  ]

let find ~bench ~instance =
  List.find_opt (fun c -> c.bench = bench && c.instance = instance) all

let names = List.map (fun c -> (c.bench, c.instance)) all
