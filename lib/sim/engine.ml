module Xoshiro = Lcws_sync.Xoshiro
module Victim_policy = Lcws_sync.Victim_policy
module Pdq = Lcws_deque.Private_deque
module Trace = Lcws_trace.Trace
module Policy_governor = Lcws_sched.Policy_governor

type policy = Ws | Uslcws | Signal | Cons | Half | Lace | Private_deques

let policy_name = function
  | Ws -> "ws"
  | Uslcws -> "uslcws"
  | Signal -> "signal"
  | Cons -> "cons"
  | Half -> "half"
  | Lace -> "lace"
  | Private_deques -> "private"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "ws" -> Some Ws
  | "uslcws" | "user" -> Some Uslcws
  | "signal" -> Some Signal
  | "cons" | "conservative" -> Some Cons
  | "half" -> Some Half
  | "lace" -> Some Lace
  | "private" | "private_deques" -> Some Private_deques
  | _ -> None

let paper_policies = [ Ws; Uslcws; Signal; Cons; Half ]

type stats = {
  makespan : int;
  total_work : int;
  fences : int;
  cas : int;
  steal_attempts : int;
  steals : int;
  exposed : int;
  taken_back : int;
  signals_sent : int;
  signals_handled : int;
  tasks : int;
  idle_cycles : int;
  tasks_migrated : int;
  steals_batched : int;
  near_steals : int;
  far_steals : int;
  cache_miss_cost : int;
  policy_switches : int;
}

let exposed_not_stolen s = max 0 (s.exposed - s.steals)

type cell = { mutable cdone : bool }

type task = { tcomp : Comp.t; tcell : cell }

type frame = Fdo of Comp.t | Fseq of Comp.t list | Fjoin of cell | Fend of cell

type worker = {
  id : int;
  mutable time : int;
  dq : task Pdq.t;
  mutable public_count : int;  (** topmost tasks visible to thieves *)
  mutable stack : frame list;
  mutable targeted : bool;
  mutable pending_signal_at : int;  (** delivery time, -1 if none *)
  mutable steal_request : int;  (** Private_deques: requesting worker, -1 none *)
  mutable granted : grant;  (** Private_deques: victim's response to this thief *)
  mutable requested : bool;  (** Private_deques: has an outstanding request *)
  mutable hunting : bool;
      (** in the steal phase of [get_task]: the own deque came up empty
          and is not re-probed until new work is obtained (mirrors the
          real engine's work-search loop — idle WS workers must not be
          charged a pop fence per steal round) *)
  mutable search_start : int;  (** virtual time hunting began, -1 if not *)
  mutable req_victim : int;  (** Private_deques: victim of the outstanding request *)
  rng : Xoshiro.t;
  vsel : Victim_policy.t;
}

(* Acar et al.'s request/response cells: a victim always answers, either
   with a task or an explicit denial, and a thief keeps at most one
   request outstanding — otherwise a second grant could overwrite (and
   lose) the first. *)
and grant = No_grant | Denied | Granted of task

type sim = {
  machine : Cost_model.t;
  mutable policy : policy; (* mutable for adaptive runs; see [switch_policy] *)
  p : int;
  workers : worker array;
  quantum : int;
  steal_limit : int;  (** max tasks per steal episode (steal-half cap) *)
  (* global counters *)
  mutable fences : int;
  mutable cas : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable exposed : int;
  mutable taken_back : int;
  mutable signals_sent : int;
  mutable signals_handled : int;
  mutable tasks : int;
  mutable idle_cycles : int;
  mutable tasks_migrated : int;
  mutable steals_batched : int;
  mutable near_steals : int;
  mutable far_steals : int;
  mutable cache_miss_cost : int;
  mutable policy_switches : int;
  mutable work_done : int;
  trace : Trace.t;  (** event sink; timestamps are virtual worker clocks *)
}

let dummy_task = { tcomp = Comp.Work 0; tcell = { cdone = true } }

let private_size w = Pdq.size w.dq - w.public_count

(* --- exposure ------------------------------------------------------- *)

(* Number of tasks the variant would move to the public part. *)
let exposure_amount policy r =
  match policy with
  | Uslcws | Signal -> if r >= 1 then 1 else 0
  | Cons -> if r >= 2 then 1 else 0
  | Half -> if r >= 3 then Lcws_sync.Fastmath.round_half r else if r >= 1 then 1 else 0
  | Lace -> if r >= 3 then Lcws_sync.Fastmath.round_half r else if r >= 1 then 1 else 0
  | Ws | Private_deques -> 0

let expose sim w =
  let k = exposure_amount sim.policy (private_size w) in
  if k > 0 then begin
    w.public_count <- w.public_count + k;
    sim.exposed <- sim.exposed + k;
    (* A volatile/plain store in the C++ implementation. *)
    w.time <- w.time + sim.machine.plain_op_cost;
    if Trace.enabled sim.trace then
      Trace.record_expose sim.trace ~worker:w.id ~time:w.time ~tasks:k
  end;
  k

(* Task-boundary targeted check (USLCWS Listing 1 lines 8-12; Lace polls
   its splitreq flag whenever the owner touches its deque). *)
let boundary_exposure_check sim w =
  match sim.policy with
  | Uslcws | Lace ->
      if w.targeted then begin
        w.targeted <- false;
        if Trace.enabled sim.trace then
          Trace.record_signal_handled sim.trace ~worker:w.id ~time:w.time;
        ignore (expose sim w);
        sim.signals_handled <- sim.signals_handled + 1
      end
  | Private_deques ->
      if w.steal_request >= 0 then begin
        let thief = sim.workers.(w.steal_request) in
        w.steal_request <- -1;
        (match Pdq.pop_top w.dq with
        | Some t ->
            thief.granted <- Granted t;
            (* Transfer through a shared cell: a fence on each side. *)
            w.time <- w.time + sim.machine.fence_cost;
            sim.fences <- sim.fences + 1
        | None -> thief.granted <- Denied);
        if Trace.enabled sim.trace then
          Trace.record_signal_handled sim.trace ~worker:w.id ~time:w.time;
        sim.signals_handled <- sim.signals_handled + 1
      end
  | Ws | Signal | Cons | Half -> ()

(* Signal delivery: handled at any step boundary once the latency has
   elapsed — the simulator's faithful version of in-handler execution. *)
let deliver_pending_signal sim w =
  match sim.policy with
  | Signal | Cons | Half ->
      if w.pending_signal_at >= 0 && w.pending_signal_at <= w.time then begin
        w.pending_signal_at <- -1;
        w.time <- w.time + sim.machine.signal_handle_cost;
        if Trace.enabled sim.trace then
          Trace.record_signal_handled sim.trace ~worker:w.id ~time:w.time;
        ignore (expose sim w);
        sim.signals_handled <- sim.signals_handled + 1
      end
  | Ws | Uslcws | Lace | Private_deques -> ()

(* Adaptive runs: flip the whole simulated pool to [target]. The
   sequential engine collapses the real scheduler's per-worker
   publish/ack handshake ([Sched_protocol.Policy_switch]) to one
   atomic step — there is no concurrency to fence against — but the
   drain is mirrored faithfully: each worker serves a request already
   deposited on the channel of the {e old} discipline (a pending
   signal, or a raised targeted flag) before the flip, so no modeled
   exposure request is lost across a switch, exactly as in the real
   engine. *)
let switch_policy sim target =
  Array.iter
    (fun w ->
      (match sim.policy with
      | Signal | Cons | Half ->
          if w.pending_signal_at >= 0 then begin
            w.pending_signal_at <- -1;
            w.time <- w.time + sim.machine.signal_handle_cost;
            if Trace.enabled sim.trace then
              Trace.record_signal_handled sim.trace ~worker:w.id ~time:w.time;
            ignore (expose sim w);
            sim.signals_handled <- sim.signals_handled + 1
          end
      | Uslcws ->
          if w.targeted then begin
            w.targeted <- false;
            if Trace.enabled sim.trace then
              Trace.record_signal_handled sim.trace ~worker:w.id ~time:w.time;
            ignore (expose sim w);
            sim.signals_handled <- sim.signals_handled + 1
          end
      | Ws | Lace | Private_deques -> ());
      sim.policy_switches <- sim.policy_switches + 1;
      if Trace.enabled sim.trace then
        Trace.record_policy_switch sim.trace ~worker:w.id ~time:w.time
          ~mode:(if target = Uslcws then 0 else 1))
    sim.workers;
  sim.policy <- target

(* --- deque operations with cost accounting --------------------------- *)

let push_task sim w task =
  Pdq.push_bottom w.dq task;
  (* The own deque is non-empty again: the next work search must probe it. *)
  w.hunting <- false;
  w.time <- w.time + sim.machine.plain_op_cost;
  (match sim.policy with
  | Ws ->
      (* Chase-Lev push: release store of [bottom]; cheap, no fence. *)
      w.public_count <- Pdq.size w.dq
  | Signal | Cons | Half ->
      (* New private work: allow fresh notifications (Section 4). *)
      if w.targeted then w.targeted <- false
  | Uslcws | Lace | Private_deques -> ());
  ()

let pop_own sim w =
  match sim.policy with
  | Ws ->
      let was = Pdq.size w.dq in
      if was = 0 then begin
        (* Chase-Lev with the emptiness pre-check: no fence on an empty
           owner pop (matches the real engine). *)
        w.time <- w.time + sim.machine.plain_op_cost;
        None
      end
      else begin
        let r = Pdq.pop_bottom w.dq in
        w.public_count <- Pdq.size w.dq;
        (* Chase-Lev take: one seq-cst fence; CAS on the last item. *)
        w.time <- w.time + sim.machine.fence_cost;
        sim.fences <- sim.fences + 1;
        if was = 1 then begin
          w.time <- w.time + sim.machine.cas_cost;
          sim.cas <- sim.cas + 1
        end;
        r
      end
  | Private_deques ->
      boundary_exposure_check sim w;
      let r = Pdq.pop_bottom w.dq in
      w.time <- w.time + sim.machine.plain_op_cost;
      r
  | Uslcws | Signal | Cons | Half | Lace ->
      if private_size w > 0 then begin
        let r = Pdq.pop_bottom w.dq in
        w.time <- w.time + sim.machine.plain_op_cost;
        boundary_exposure_check sim w;
        r
      end
      else if w.public_count > 0 then begin
        match sim.policy with
        | Lace ->
            (* Unexpose: pull the split point back and take privately. *)
            w.public_count <- w.public_count - 1;
            let r = Pdq.pop_bottom w.dq in
            w.time <- w.time + (2 * sim.machine.fence_cost) + sim.machine.cas_cost;
            sim.fences <- sim.fences + 2;
            sim.cas <- sim.cas + 1;
            if Trace.enabled sim.trace then
              Trace.record_pop_public sim.trace ~worker:w.id ~time:w.time;
            boundary_exposure_check sim w;
            r
        | Uslcws | Signal | Cons | Half ->
            (* pop_public_bottom: two fences; CAS when racing the last
               public task (Listing 2). *)
            let last = w.public_count = 1 in
            w.public_count <- w.public_count - 1;
            let r = Pdq.pop_bottom w.dq in
            w.time <- w.time + (2 * sim.machine.fence_cost);
            sim.fences <- sim.fences + 2;
            if last then begin
              w.time <- w.time + sim.machine.cas_cost;
              sim.cas <- sim.cas + 1
            end;
            sim.taken_back <- sim.taken_back + 1;
            if w.targeted then w.targeted <- false;
            if Trace.enabled sim.trace then
              Trace.record_pop_public sim.trace ~worker:w.id ~time:w.time;
            r
        | Ws | Private_deques -> assert false
      end
      else begin
        if w.targeted then w.targeted <- false;
        None
      end

(* A steal episode moved [tasks] tasks from [v] to [w]: charge the
   distance-scaled cache misses of dragging their working sets over,
   and keep the locality metrics. *)
let account_migration sim w ~victim ~tasks =
  let distance = Victim_policy.distance w.vsel ~victim in
  let miss = Cost_model.migration_cost sim.machine ~tasks ~distance in
  w.time <- w.time + miss;
  sim.cache_miss_cost <- sim.cache_miss_cost + miss;
  sim.tasks_migrated <- sim.tasks_migrated + tasks;
  if Victim_policy.is_near w.vsel ~victim then sim.near_steals <- sim.near_steals + 1
  else sim.far_steals <- sim.far_steals + 1;
  if tasks > 1 then begin
    sim.steals_batched <- sim.steals_batched + 1;
    if Trace.enabled sim.trace then
      Trace.record_steal_batch sim.trace ~thief:w.id ~time:w.time ~tasks
  end;
  Victim_policy.success w.vsel ~victim

(* Claim up to [extra] additional tasks from [v]'s public prefix after a
   first successful claim — each claim is one more (always-successful in
   the simulator) CAS, mirroring the incremental batch protocol of the
   real deques — and push them into the thief's own deque. Returns the
   number actually taken. *)
let claim_extras sim w v ~extra =
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < extra && Pdq.size v.dq > 0 do
    match Pdq.pop_top v.dq with
    | None -> continue := false
    | Some t ->
        w.time <- w.time + sim.machine.cas_cost;
        sim.cas <- sim.cas + 1;
        push_task sim w t;
        incr n
  done;
  !n

(* One steal attempt; returns the stolen task if any. *)
let try_steal sim w =
  (match sim.policy, w.granted with
  | Private_deques, Granted t ->
      w.granted <- No_grant;
      w.requested <- false;
      sim.steals <- sim.steals + 1;
      if w.req_victim >= 0 then account_migration sim w ~victim:w.req_victim ~tasks:1;
      w.req_victim <- -1;
      Some t
  | Private_deques, Denied ->
      w.granted <- No_grant;
      w.requested <- false;
      w.req_victim <- -1;
      Victim_policy.fail w.vsel;
      None
  | Private_deques, No_grant when w.requested ->
      (* Wait for the response; the idle pause is charged by [acquire]. *)
      None
  | _, _ when sim.p < 2 -> None
  | _, _ ->
  let v = sim.workers.(Victim_policy.next w.vsel) in
  w.time <- w.time + sim.machine.steal_round_cost;
  sim.steal_attempts <- sim.steal_attempts + 1;
  if Trace.enabled sim.trace then
    Trace.record_steal_attempt sim.trace ~thief:w.id ~victim:v.id ~time:w.time;
  match sim.policy with
  | Ws ->
      if Pdq.size v.dq > 0 then begin
        let avail = Pdq.size v.dq in
        let want = min sim.steal_limit (max 1 (avail / 2)) in
        w.time <- w.time + sim.machine.fence_cost + sim.machine.cas_cost;
        sim.fences <- sim.fences + 1;
        sim.cas <- sim.cas + 1;
        let r = Pdq.pop_top v.dq in
        (match r with
        | Some _ ->
            sim.steals <- sim.steals + 1;
            let extra = claim_extras sim w v ~extra:(want - 1) in
            v.public_count <- Pdq.size v.dq;
            account_migration sim w ~victim:v.id ~tasks:(1 + extra);
            if Trace.enabled sim.trace then
              Trace.record_steal_ok sim.trace ~thief:w.id ~victim:v.id ~time:w.time
                ~search_start:w.search_start
        | None ->
            v.public_count <- Pdq.size v.dq;
            Victim_policy.fail w.vsel);
        r
      end
      else begin
        w.time <- w.time + sim.machine.fence_cost;
        sim.fences <- sim.fences + 1;
        Victim_policy.fail w.vsel;
        if Trace.enabled sim.trace then
          Trace.record_steal_empty sim.trace ~thief:w.id ~victim:v.id ~time:w.time;
        None
      end
  | Private_deques ->
      if Pdq.size v.dq > 0 && v.steal_request < 0 then begin
        v.steal_request <- w.id;
        w.requested <- true;
        w.req_victim <- v.id;
        w.time <- w.time + sim.machine.plain_op_cost
      end
      else Victim_policy.fail w.vsel;
      None
  | Uslcws | Signal | Cons | Half | Lace ->
      if v.public_count > 0 then begin
        let avail = v.public_count in
        let want = min sim.steal_limit (max 1 (avail / 2)) in
        w.time <- w.time + sim.machine.cas_cost;
        sim.cas <- sim.cas + 1;
        v.public_count <- v.public_count - 1;
        let r = Pdq.pop_top v.dq in
        sim.steals <- sim.steals + 1;
        let extra = min (want - 1) v.public_count in
        let taken = claim_extras sim w v ~extra in
        v.public_count <- v.public_count - taken;
        account_migration sim w ~victim:v.id ~tasks:(1 + taken);
        if v.targeted then v.targeted <- false;
        if Trace.enabled sim.trace then
          Trace.record_steal_ok sim.trace ~thief:w.id ~victim:v.id ~time:w.time
            ~search_start:w.search_start;
        r
      end
      else if Pdq.size v.dq > 0 then begin
        (* PRIVATE_WORK: notify the victim. *)
        let notified =
          match sim.policy with
          | Uslcws | Lace ->
              v.targeted <- true;
              w.time <- w.time + sim.machine.plain_op_cost;
              sim.signals_sent <- sim.signals_sent + 1;
              true
          | Signal | Half ->
              if not v.targeted then begin
                v.targeted <- true;
                v.pending_signal_at <- w.time + sim.machine.signal_deliver_latency;
                w.time <- w.time + sim.machine.signal_send_cost;
                sim.signals_sent <- sim.signals_sent + 1;
                true
              end
              else false
          | Cons ->
              if (not v.targeted) && private_size v >= 2 then begin
                v.targeted <- true;
                v.pending_signal_at <- w.time + sim.machine.signal_deliver_latency;
                w.time <- w.time + sim.machine.signal_send_cost;
                sim.signals_sent <- sim.signals_sent + 1;
                true
              end
              else false
          | Ws | Private_deques -> false
        in
        if notified && Trace.enabled sim.trace then
          Trace.record_notify sim.trace ~thief:w.id ~victim:v.id ~time:w.time;
        None
      end
      else begin
        if Trace.enabled sim.trace then
          Trace.record_steal_empty sim.trace ~thief:w.id ~victim:v.id ~time:w.time;
        None
      end)

let start_task sim w (t : task) =
  sim.tasks <- sim.tasks + 1;
  if w.hunting && Trace.enabled sim.trace then begin
    Trace.record_idle_exit sim.trace ~worker:w.id ~time:w.time;
    w.search_start <- -1
  end;
  w.hunting <- false;
  w.time <- w.time + sim.machine.task_overhead;
  if Trace.enabled sim.trace then
    Trace.record_task_start sim.trace ~worker:w.id ~time:w.time;
  w.stack <- Fdo t.tcomp :: Fend t.tcell :: w.stack

(* Attempt to obtain work when idle or blocked on a join: own deque once,
   then repeated steal attempts (Listing 1's [get_task] shape — the own
   deque is not re-probed on every failed steal round). *)
let acquire sim w =
  let own = if w.hunting then None else pop_own sim w in
  match own with
  | Some t -> start_task sim w t
  | None -> (
      if (not w.hunting) && Trace.enabled sim.trace then begin
        w.search_start <- w.time;
        Trace.record_idle_enter sim.trace ~worker:w.id ~time:w.time
      end;
      w.hunting <- true;
      match try_steal sim w with
      | Some t -> start_task sim w t
      | None ->
          (* Nothing found this round; the steal loop burns time. *)
          let pause = max sim.machine.plain_op_cost (sim.machine.steal_round_cost / 4) in
          w.time <- w.time + pause;
          sim.idle_cycles <- sim.idle_cycles + pause)

let pfor_leaf_work (p : Comp.pfor) =
  let acc = ref 0 in
  for i = p.lo to p.hi - 1 do
    acc := !acc + p.leaf_cost i
  done;
  !acc

let step sim w =
  deliver_pending_signal sim w;
  match w.stack with
  | [] -> acquire sim w
  | Fdo (Comp.Work c) :: rest ->
      let q = min c sim.quantum in
      w.time <- w.time + q;
      sim.work_done <- sim.work_done + q;
      if c > q then w.stack <- Fdo (Comp.Work (c - q)) :: rest else w.stack <- rest
  | Fdo (Comp.Seq l) :: rest -> w.stack <- Fseq l :: rest
  | Fdo (Comp.Fork (a, b)) :: rest ->
      let cell = { cdone = false } in
      push_task sim w { tcomp = b; tcell = cell };
      w.stack <- Fdo a :: Fjoin cell :: rest
  | Fdo (Comp.Pfor p) :: rest ->
      if p.hi - p.lo <= p.grain then w.stack <- Fdo (Comp.Work (pfor_leaf_work p)) :: rest
      else begin
        let mid = p.lo + ((p.hi - p.lo) / 2) in
        let cell = { cdone = false } in
        push_task sim w { tcomp = Comp.Pfor { p with lo = mid }; tcell = cell };
        w.stack <- Fdo (Comp.Pfor { p with hi = mid }) :: Fjoin cell :: rest
      end
  | Fseq [] :: rest -> w.stack <- rest
  | Fseq (c :: cs) :: rest -> w.stack <- Fdo c :: Fseq cs :: rest
  | Fend cell :: rest ->
      cell.cdone <- true;
      w.time <- w.time + sim.machine.task_overhead;
      if Trace.enabled sim.trace then
        Trace.record_task_end sim.trace ~worker:w.id ~time:w.time;
      w.stack <- rest;
      boundary_exposure_check sim w
  | Fjoin cell :: rest -> if cell.cdone then w.stack <- rest else acquire sim w

let run ~machine ~policy ~p ?(seed = 7L) ?(quantum = 200) ?(trace = Trace.null)
    ?(steal_policy = Victim_policy.Uniform) ?topology ?(steal_batch = 1)
    ?(adaptive = false) ?adaptive_config comp =
  if p < 1 then invalid_arg "Engine.run";
  if steal_batch < 1 then invalid_arg "Engine.run: steal_batch must be >= 1";
  if Trace.enabled trace && Trace.num_workers trace < p then
    invalid_arg "Engine.run: trace was created for fewer workers";
  let governor =
    if not adaptive then None
    else begin
      (match policy with
      | Uslcws | Signal | Cons | Half -> ()
      | Ws | Lace | Private_deques ->
          invalid_arg
            "Engine.run: adaptive needs a synchronization-light paper policy (uslcws, \
             signal, cons or half)");
      let config =
        match adaptive_config with Some c -> c | None -> Policy_governor.default_config
      in
      let initial =
        if policy = Uslcws then Policy_governor.Unsync else Policy_governor.Handshake
      in
      Some (Policy_governor.create ~config ~initial (), config.Policy_governor.epoch)
    end
  in
  (* The discipline an adaptive run flips to when the governor says
     handshake: the requested signal variant, or [Signal] for [Uslcws]. *)
  let handshake_policy = match policy with Uslcws -> Signal | pol -> pol in
  let root_rng = Xoshiro.create seed in
  let workers =
    Array.init p (fun id ->
        let rng = Xoshiro.split root_rng id in
        {
          id;
          time = 0;
          dq = Pdq.create ~capacity:(1 lsl 16) ~dummy:dummy_task ();
          public_count = 0;
          stack = [];
          targeted = false;
          pending_signal_at = -1;
          steal_request = -1;
          granted = No_grant;
          requested = false;
          hunting = false;
          search_start = -1;
          req_victim = -1;
          rng;
          vsel = Victim_policy.create ?topology ~policy:steal_policy ~rng ~self:id ~nw:p ();
        })
  in
  let sim =
    {
      machine;
      policy;
      p;
      workers;
      quantum = max 1 quantum;
      steal_limit = steal_batch;
      fences = 0;
      cas = 0;
      steal_attempts = 0;
      steals = 0;
      exposed = 0;
      taken_back = 0;
      signals_sent = 0;
      signals_handled = 0;
      tasks = 0;
      idle_cycles = 0;
      tasks_migrated = 0;
      steals_batched = 0;
      near_steals = 0;
      far_steals = 0;
      cache_miss_cost = 0;
      policy_switches = 0;
      work_done = 0;
      trace;
    }
  in
  let root = { cdone = false } in
  workers.(0).stack <- [ Fdo comp; Fend root ];
  (* The root is placed directly, not via [start_task]: stamp its start
     so task start/end events balance. *)
  if Trace.enabled trace then Trace.record_task_start trace ~worker:0 ~time:0;
  let makespan = ref 0 in
  let guard = ref 0 in
  let max_steps = 2_000_000_000 in
  while not root.cdone do
    incr guard;
    if !guard > max_steps then failwith "Engine.run: step budget exceeded (livelock?)";
    (* Adaptive governor tick: sample the cumulative counters every
       [epoch] engine steps (deterministic — the step counter stands in
       for the real engine's per-worker poll counting), with the
       currently hunting workers as the starvation gauge. *)
    (match governor with
    | Some (g, epoch) when !guard mod epoch = 0 ->
        let hunting =
          Array.fold_left (fun acc w -> if w.hunting then acc + 1 else acc) 0 workers
        in
        let target =
          Policy_governor.sample g ~steal_attempts:sim.steal_attempts
            ~tasks_run:sim.tasks ~parked:hunting ~num_workers:p
        in
        let target_policy =
          match target with
          | Policy_governor.Unsync -> Uslcws
          | Policy_governor.Handshake -> handshake_policy
        in
        if target_policy <> sim.policy then switch_policy sim target_policy
    | _ -> ());
    (* Advance the worker with the smallest local clock (deterministic;
       ties broken by id). *)
    let w = ref workers.(0) in
    for i = 1 to p - 1 do
      if workers.(i).time < !w.time then w := workers.(i)
    done;
    step sim !w;
    if root.cdone then makespan := !w.time
  done;
  {
    makespan = !makespan;
    total_work = sim.work_done;
    fences = sim.fences;
    cas = sim.cas;
    steal_attempts = sim.steal_attempts;
    steals = sim.steals;
    exposed = sim.exposed;
    taken_back = sim.taken_back;
    signals_sent = sim.signals_sent;
    signals_handled = sim.signals_handled;
    tasks = sim.tasks;
    idle_cycles = sim.idle_cycles;
    tasks_migrated = sim.tasks_migrated;
    steals_batched = sim.steals_batched;
    near_steals = sim.near_steals;
    far_steals = sim.far_steals;
    cache_miss_cost = sim.cache_miss_cost;
    policy_switches = sim.policy_switches;
  }
