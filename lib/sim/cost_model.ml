type t = {
  name : string;
  cpu : string;
  cores : int;
  smt_threads : int;
  memory : string;
  fence_cost : int;
  cas_cost : int;
  plain_op_cost : int;
  steal_round_cost : int;
  signal_send_cost : int;
  signal_deliver_latency : int;
  signal_handle_cost : int;
  task_overhead : int;
  task_working_set : int;
  cache_line_cost : int;
}

let intel12 =
  {
    name = "Intel12";
    cpu = "2 x Intel Xeon E5-2620 v2";
    cores = 12;
    smt_threads = 24;
    memory = "64 GiB DDR3 1600 MHz";
    fence_cost = 45;
    cas_cost = 60;
    plain_op_cost = 1;
    steal_round_cost = 220;
    signal_send_cost = 2000;
    signal_deliver_latency = 1300;
    signal_handle_cost = 350;
    task_overhead = 12;
    task_working_set = 8;
    cache_line_cost = 28;
  }

let amd32 =
  {
    name = "AMD32";
    cpu = "4 x AMD Opteron 6272";
    cores = 32;
    smt_threads = 64;
    memory = "64 GiB DDR3 1600 MHz";
    (* Interlagos atomics and cross-socket probes are notoriously slow. *)
    fence_cost = 90;
    cas_cost = 110;
    plain_op_cost = 1;
    steal_round_cost = 320;
    signal_send_cost = 2600;
    signal_deliver_latency = 1700;
    signal_handle_cost = 450;
    task_overhead = 14;
    (* Cross-die HyperTransport hops make remote lines pricier. *)
    task_working_set = 8;
    cache_line_cost = 40;
  }

let intel16 =
  {
    name = "Intel16";
    cpu = "2 x Intel Xeon E5-2609 v4";
    cores = 16;
    smt_threads = 16;
    memory = "32 GiB DDR4 2400 MHz";
    fence_cost = 40;
    cas_cost = 55;
    plain_op_cost = 1;
    steal_round_cost = 190;
    signal_send_cost = 1800;
    signal_deliver_latency = 1100;
    signal_handle_cost = 320;
    task_overhead = 11;
    task_working_set = 8;
    cache_line_cost = 24;
  }

let all = [ intel12; amd32; intel16 ]

let find name =
  List.find_opt (fun m -> String.lowercase_ascii m.name = String.lowercase_ascii name) all

let processor_sweep m =
  let rec go p acc = if p >= m.cores then List.rev (m.cores :: acc) else go (p * 2) (p :: acc) in
  go 1 []

let migration_cost m ~tasks ~distance = tasks * m.task_working_set * m.cache_line_cost * distance
