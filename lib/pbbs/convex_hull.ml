(** PBBS convexHull: 2D quickhull. Parallel filters partition points by
    side of the dividing line; the two recursive halves run under
    [fork_join]. Returns hull vertex indices in counter-clockwise order. *)

module P = Lcws_parlay
module S = Lcws_sched.Scheduler
open Suite_types
open Geometry

let quickhull (pts : point2d array) =
  let n = Array.length pts in
  if n < 3 then Array.init n (fun i -> i)
  else begin
    let cmp_x i j =
      let c = Float.compare pts.(i).x pts.(j).x in
      if c <> 0 then c else Float.compare pts.(i).y pts.(j).y
    in
    let idx = P.Seq_ops.tabulate n (fun i -> i) in
    let leftmost = P.Seq_ops.min_index (fun i j -> cmp_x i j) idx in
    let rightmost = P.Seq_ops.max_index (fun i j -> cmp_x i j) idx in
    let l = idx.(leftmost) and r = idx.(rightmost) in
    (* hull a b cands = hull points strictly left of a->b, in order. *)
    let rec hull a b cands =
      if Array.length cands = 0 then []
      else begin
        let pa = pts.(a) and pb = pts.(b) in
        let far =
          P.Seq_ops.max_index
            (fun i j -> Float.compare (line_dist pa pb pts.(i)) (line_dist pa pb pts.(j)))
            cands
        in
        let c = cands.(far) in
        let pc = pts.(c) in
        let left1 = P.Seq_ops.filter (fun i -> cross pa pc pts.(i) > 0.) cands in
        let left2 = P.Seq_ops.filter (fun i -> cross pc pb pts.(i) > 0.) cands in
        let h1, h2 =
          S.Ops.fork_join (fun () -> hull a c left1) (fun () -> hull c b left2)
        in
        h1 @ (c :: h2)
      end
    in
    let pl = pts.(l) and pr = pts.(r) in
    let upper = P.Seq_ops.filter (fun i -> cross pl pr pts.(i) > 0.) idx in
    let lower = P.Seq_ops.filter (fun i -> cross pr pl pts.(i) > 0.) idx in
    let hu, hl = S.Ops.fork_join (fun () -> hull l r upper) (fun () -> hull r l lower) in
    (* The l→upper→r→lower cycle is clockwise; reverse it for CCW. *)
    Array.of_list (List.rev ((l :: hu) @ (r :: hl)))
  end

let check pts hull =
  let n = Array.length pts in
  let h = Array.length hull in
  if n < 3 then h = n
  else if h < 2 then false
  else begin
    let eps = 1e-9 in
    (* Orientation-agnostic: sign of twice the signed area. *)
    let area2 = ref 0. in
    for i = 0 to h - 1 do
      let a = pts.(hull.(i)) and b = pts.(hull.((i + 1) mod h)) in
      area2 := !area2 +. ((a.x *. b.y) -. (b.x *. a.y))
    done;
    let s = if !area2 >= 0. then 1. else -1. in
    let ok = ref true in
    (* Convexity: consecutive hull turns never flip against orientation. *)
    for i = 0 to h - 1 do
      let a = pts.(hull.(i)) and b = pts.(hull.((i + 1) mod h)) and c = pts.(hull.((i + 2) mod h)) in
      if s *. cross a b c < -.eps then ok := false
    done;
    (* Containment: every point is on the interior side of every edge.
       Tolerance scales with edge length for far-out Kuzmin points. *)
    for i = 0 to n - 1 do
      let p = pts.(i) in
      for j = 0 to h - 1 do
        let a = pts.(hull.(j)) and b = pts.(hull.((j + 1) mod h)) in
        let scale = 1. +. dist2 a b in
        if s *. cross a b p < -.eps *. scale then ok := false
      done
    done;
    !ok
  end

let base_n = 100_000

let instance_of name gen =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let pts = gen n in
        let out = ref [||] in
        {
          run = (fun () -> out := quickhull pts);
          check = (fun () -> check pts !out);
        });
  }

let bench =
  {
    bname = "convexHull";
    instances =
      [
        instance_of "2DinSphere" (in_sphere2d ~seed:1101);
        instance_of "2DinCube" (in_cube2d ~seed:1102);
        instance_of "2Dkuzmin" (kuzmin2d ~seed:1103);
        instance_of "2DonSphere" (fun n -> on_sphere2d ~seed:1104 (min n 2_000));
      ];
  }
