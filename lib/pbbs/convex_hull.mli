(** PBBS convexHull: 2D quickhull with parallel partition filters and
    fork-join recursion. *)

(** Hull vertex indices in counter-clockwise order. *)
val quickhull : Geometry.point2d array -> int array

(** Orientation-agnostic convexity + containment validation. *)
val check : Geometry.point2d array -> int array -> bool

val bench : Suite_types.bench
