(** PBBS integerSort: stable LSD radix sort on integer keys, plain or
    carrying values (the [_pair_] instances). *)

(** [sort_ints ~bits keys] — keys must be non-negative, < 2^bits. *)
val sort_ints : bits:int -> int array -> int array

(** Key-value variant, stable in the values. *)
val sort_pairs : bits:int -> (int * int) array -> (int * int) array

(** Sortedness + multiset equality against the input. *)
val check_sorted_permutation : int array -> int array -> bool

val bench : Suite_types.bench
