(** PBBS removeDuplicates: distinct elements of an integer sequence
    (output in sorted order): radix sort + adjacent-difference pack. *)

val remove_duplicates : bits:int -> int array -> int array

val check : int array -> int array -> bool

val bench : Suite_types.bench
