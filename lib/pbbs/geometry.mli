(** 2D/3D points and the PBBS point-set generators (in-cube, in-sphere,
    on-sphere, Kuzmin) used by convexHull, nearestNeighbors, nBody and
    rayCast. *)

type point2d = { x : float; y : float }

type point3d = { x3 : float; y3 : float; z3 : float }

val dist2 : point2d -> point2d -> float

val dist3 : point3d -> point3d -> float

(** Signed area of triangle (a, b, c): > 0 when c is left of a→b. *)
val cross : point2d -> point2d -> point2d -> float

(** Distance from point [p] to line a→b, scaled by |ab| (the quickhull
    pivot metric). *)
val line_dist : point2d -> point2d -> point2d -> float

(** Uniform points in the unit square / cube. *)
val in_cube2d : ?seed:int -> int -> point2d array

val in_cube3d : ?seed:int -> int -> point3d array

(** Uniform points inside the unit disc / ball. *)
val in_sphere2d : ?seed:int -> int -> point2d array

val in_sphere3d : ?seed:int -> int -> point3d array

(** On the unit circle (degenerate hull input — all points extreme). *)
val on_sphere2d : ?seed:int -> int -> point2d array

(** Kuzmin distribution (heavily clustered at the origin), PBBS's
    2Dkuzmin. *)
val kuzmin2d : ?seed:int -> int -> point2d array
