(** PBBS breadthFirstSearch: parallel BFS over CSR graphs.

    Two algorithms, as in PBBS v2: plain level-synchronous top-down
    ({!bfs}) and direction-optimizing back-forward BFS
    ({!bfs_back_forward}) which switches to bottom-up sweeps on large
    frontiers — the configuration Section 5.2 of the paper singles out
    as steal-heavy. Parent choices are racy (CAS-claimed) but the
    level structure, and hence distances, are deterministic. *)

(** [bfs g ~source] — parent array: [-1] for unreached vertices,
    [source] for the source itself. *)
val bfs : Graph.t -> source:int -> int array

(** Direction-optimizing variant (Beamer-style). Same contract. *)
val bfs_back_forward : Graph.t -> source:int -> int array

(** Levels implied by a parent forest ([-1] where unreached). *)
val distances_from_parents : Graph.t -> source:int -> int array -> int array

(** Reference sequential BFS distances. *)
val sequential_distances : Graph.t -> source:int -> int array

(** Full validation: distances match the sequential reference and every
    parent edge exists one level up. *)
val check : Graph.t -> source:int -> int array -> bool

val bench : Suite_types.bench
