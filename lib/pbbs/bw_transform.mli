(** PBBS BWTransform: Burrows–Wheeler transform via the parallel suffix
    array (with a '\x00' sentinel), and its inverse via the LF mapping. *)

val sentinel : char

(** [bwt s] — last column of the sorted rotations of [s ^ "\x00"];
    length [String.length s + 1]. [s] must not contain the sentinel. *)
val bwt : string -> string

(** Inverse transform; drops the sentinel. *)
val unbwt : string -> string

(** Same multiset of characters + exact round trip. *)
val check : string -> string -> bool

val bench : Suite_types.bench
