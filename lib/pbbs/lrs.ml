(** PBBS longestRepeatedSubstring: the longest substring occurring at
    least twice, via the parallel suffix array plus Kasai's LCP
    construction. The LCP maximum over adjacent suffix-array entries is
    the answer (a classical suffix-array property). *)

module P = Lcws_parlay
open Suite_types

(** Kasai's algorithm: O(n) sequential pass (the [h]-decrement argument
    is inherently sequential); the suffix array build it consumes is the
    parallel part. [lcp.(i)] is the longest common prefix of the
    suffixes at [sa.(i-1)] and [sa.(i)]; [lcp.(0) = 0]. *)
let lcp_array s sa =
  let n = String.length s in
  let rank = Array.make n 0 in
  Array.iteri (fun pos i -> rank.(i) <- pos) sa;
  let lcp = Array.make n 0 in
  let h = ref 0 in
  for i = 0 to n - 1 do
    if rank.(i) > 0 then begin
      let j = sa.(rank.(i) - 1) in
      while i + !h < n && j + !h < n && s.[i + !h] = s.[j + !h] do
        incr h
      done;
      lcp.(rank.(i)) <- !h;
      if !h > 0 then decr h
    end
    else h := 0
  done;
  lcp

type result = { offset : int; length : int; other : int }

(** Longest repeated substring; [None] when all characters are distinct. *)
let lrs s =
  let n = String.length s in
  if n < 2 then None
  else begin
    let sa = Suffix_array.suffix_array s in
    let lcp = lcp_array s sa in
    let best = P.Seq_ops.max_index compare lcp in
    if lcp.(best) = 0 then None
    else Some { offset = sa.(best); length = lcp.(best); other = sa.(best - 1) }
  end

let substring_at s off len = String.sub s off len

let check s result =
  let n = String.length s in
  match result with
  | None ->
      (* No repeated character at all. *)
      let seen = Hashtbl.create 64 in
      let repeated = ref false in
      String.iter
        (fun c ->
          if Hashtbl.mem seen c then repeated := true else Hashtbl.add seen c ())
        s;
      not !repeated
  | Some { offset; length; other } ->
      (* The two claimed occurrences really match... *)
      offset + length <= n
      && other + length <= n
      && offset <> other
      && substring_at s offset length = substring_at s other length
      && begin
           (* ...and no longer repeat exists: recompute every adjacent-LCP
              by direct comparison and take the max (sound because any
              repeat is an adjacent pair in suffix order). *)
           let sa = Suffix_array.suffix_array s in
           let max_lcp = ref 0 in
           for i = 1 to n - 1 do
             let a = sa.(i - 1) and b = sa.(i) in
             let l = ref 0 in
             while a + !l < n && b + !l < n && s.[a + !l] = s.[b + !l] do
               incr l
             done;
             if !l > !max_lcp then max_lcp := !l
           done;
           !max_lcp = length
         end

let base_n = 20_000

let instance_of name gen =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let s = gen n in
        let out = ref None in
        {
          run = (fun () -> out := lrs s);
          check = (fun () -> check s !out);
        });
  }

let bench =
  {
    bname = "longestRepeatedSubstring";
    instances =
      [
        instance_of "trigramString" (fun n ->
            let t = Text_gen.text ~seed:1701 ~vocab:(max 16 (n / 40)) ~words:(max 1 (n / 6)) () in
            if String.length t >= n then String.sub t 0 n else t);
        instance_of "periodicString" (fun n ->
            String.init n (fun i -> Char.chr (Char.code 'a' + (i mod 97 mod 26))));
      ];
  }
