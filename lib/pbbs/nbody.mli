(** PBBS nBody (2D Barnes–Hut flavour): gravitational forces via a
    parallel-built quadtree with centre-of-mass approximation. *)

type cell = {
  mass : float;
  cx : float;
  cy : float;
  half : float;  (** half-width of the cell square *)
  kind : kind;
}

and kind = Qleaf of int array | Qnode of cell array

(** Opening criterion: a cell is summarized when width² < θ²·d². *)
val theta : float

val build : Geometry.point2d array -> cell

(** Barnes-Hut force on point [i] (unit masses, softened). *)
val force_on : Geometry.point2d array -> cell -> int -> float * float

(** All forces, parallel over points. *)
val forces : Geometry.point2d array -> (float * float) array

(** Direct O(n) reference force on one point. *)
val direct_force : Geometry.point2d array -> int -> float * float

(** Sampled comparison against direct summation (≤5% relative error). *)
val check : Geometry.point2d array -> (float * float) array -> bool

val bench : Suite_types.bench
