(** PBBS maximalIndependentSet: Luby's algorithm. Each round, vertices
    that hold a local minimum of fresh random priorities join the MIS;
    their neighbourhoods are removed; repeat until no vertex is live. *)

module P = Lcws_parlay
open Suite_types

type status = Live | In | Out

let mis ?(seed = 1) (g : Graph.t) =
  let n = Graph.num_vertices g in
  let status = Array.make n Live in
  let remaining = ref n in
  let round = ref 0 in
  while !remaining > 0 do
    let priority v = P.Prandom.hash_int ~seed:(seed + !round) v in
    let winners =
      P.Seq_ops.tabulate ~grain:64 n (fun v ->
          if status.(v) <> Live then false
          else begin
            let pv = priority v in
            let is_min = ref true in
            Graph.iter_neighbors g v (fun u ->
                if status.(u) = Live then begin
                  let pu = priority u in
                  if pu < pv || (pu = pv && u < v) then is_min := false
                end);
            !is_min
          end)
    in
    (* Two phases so status reads above never race with writes. *)
    P.Seq_ops.iteri ~grain:64 (fun v w -> if w then status.(v) <- In) winners;
    P.Seq_ops.iteri ~grain:64
      (fun v w ->
        if w then Graph.iter_neighbors g v (fun u -> if status.(u) = Live then status.(u) <- Out))
      winners;
    let left = P.Seq_ops.count (fun s -> s = Live) status in
    remaining := left;
    incr round
  done;
  Array.map (fun s -> s = In) status

let check g in_mis =
  let n = Graph.num_vertices g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if in_mis.(v) then
      (* Independence. *)
      Graph.iter_neighbors g v (fun u -> if in_mis.(u) && u <> v then ok := false)
    else begin
      (* Maximality: some neighbour is in the set. *)
      let covered = ref false in
      Graph.iter_neighbors g v (fun u -> if in_mis.(u) then covered := true);
      if not !covered then ok := false
    end
  done;
  !ok

let instance_of name make_graph =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let g = make_graph ~scale in
        let out = ref [||] in
        {
          run = (fun () -> out := mis ~seed:811 g);
          check = (fun () -> check g !out);
        });
  }

let bench =
  {
    bname = "maximalIndependentSet";
    instances =
      [
        instance_of "rMatGraph_J" (fun ~scale ->
            let sc = max 8 (12 + int_of_float (Float.round (Float.log2 (max 0.1 scale)))) in
            Graph.rmat ~seed:801 ~scale:sc ~edge_factor:8 ());
        instance_of "randLocalGraph_J" (fun ~scale ->
            Graph.random_graph ~seed:802 ~n:(scaled ~scale 30_000) ~degree:8 ());
      ];
  }
