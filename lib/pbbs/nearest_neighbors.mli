(** PBBS nearestNeighbors: 1-nearest-neighbour for every point via a
    k-d tree (parallel construction, parallel batch queries). *)

type node =
  | Leaf of int array
  | Split of { axis : int; pivot : float; left : node; right : node }

val build : Geometry.point2d array -> node

(** [nearest pts tree i] — index of the closest point ≠ i. *)
val nearest : Geometry.point2d array -> node -> int -> int

(** 1-NN for every input point. *)
val all_nearest : Geometry.point2d array -> int array

(** Brute-force agreement on a deterministic sample (ties allowed). *)
val check : Geometry.point2d array -> int array -> bool

(** 3D variant (PBBS ships 2D and 3D instances). *)
module Three_d : sig
  type node3

  val build : Geometry.point3d array -> node3

  val nearest : Geometry.point3d array -> node3 -> int -> int

  val all_nearest : Geometry.point3d array -> int array

  val check : Geometry.point3d array -> int array -> bool
end

val bench : Suite_types.bench
