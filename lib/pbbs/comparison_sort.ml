(** PBBS comparisonSort: stable parallel merge sort under a comparator. *)

module P = Lcws_parlay
open Suite_types

let sort cmp a = P.Sort.merge_sort cmp a

let check_against_stdlib cmp input output =
  let expected = Array.copy input in
  Array.stable_sort cmp expected;
  expected = output

let base_n = 100_000

let instance_of name gen cmp =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let input = gen n in
        let out = ref [||] in
        {
          run = (fun () -> out := sort cmp input);
          check = (fun () -> check_against_stdlib cmp input !out);
        });
  }

let bench =
  {
    bname = "comparisonSort";
    instances =
      [
        instance_of "randomSeq_double" (fun n -> P.Prandom.floats ~seed:201 n) Float.compare;
        instance_of "exptSeq_double"
          (fun n ->
            Array.map (fun k -> float_of_int k)
              (P.Prandom.exponential_ints ~seed:202 n ~bound:(1 lsl 20)))
          Float.compare;
        instance_of "almostSortedSeq_double"
          (fun n ->
            Array.map float_of_int (P.Prandom.almost_sorted ~seed:203 n ~swaps:(n / 100)))
          Float.compare;
        instance_of "trigramSeq_string"
          (fun n -> Text_gen.words ~seed:204 ~vocab:(max 16 (n / 10)) n)
          String.compare;
      ];
  }
