(** Common shape of a PBBS-style benchmark for the harness.

    [prepare] builds the input (outside any timing) and returns closures
    over it: [run] does the parallel work on the current pool and stashes
    its output; [check] verifies that output sequentially. [scale]
    multiplies the instance's default size so the harness can trade
    accuracy for time. *)

type prepared = { run : unit -> unit; check : unit -> bool }

type instance = { iname : string; prepare : scale:float -> prepared }

type bench = { bname : string; instances : instance list }

let scaled ~scale n = max 1 (int_of_float (scale *. float_of_int n))

(** [configs bench] — the paper's 〈benchmark, input_instance〉 pairs. *)
let configs b = List.map (fun i -> (b.bname, i.iname)) b.instances
