(** Registry of every benchmark in the suite — the reproduction's stand-in
    for "all input instances of all benchmarks of PBBS v2". *)

val all : Suite_types.bench list

(** Every 〈benchmark, instance〉 configuration, flattened. *)
val all_configs : (string * string) list

val find : bench:string -> instance:string -> Suite_types.instance option

(** A fast subset used by the real-engine profile experiment (the full
    suite at several worker counts would be slow on one core). *)
val quick : Suite_types.bench list
