(** PBBS histogram: count occurrences of keys in [0, buckets). Blocked
    per-worker counting followed by a parallel per-bucket merge. *)

module P = Lcws_parlay
module S = Lcws_sched.Scheduler
open Suite_types

let histogram ~buckets keys =
  let n = Array.length keys in
  if n = 0 then Array.make buckets 0
  else begin
    let block = max 4096 (P.Seq_ops.default_grain n) in
    let nblocks = (n + block - 1) / block in
    let locals =
      P.Seq_ops.tabulate ~grain:1 nblocks (fun b ->
          let counts = Array.make buckets 0 in
          let lo = b * block and hi = min n ((b + 1) * block) in
          for i = lo to hi - 1 do
            let k = keys.(i) in
            counts.(k) <- counts.(k) + 1
          done;
          S.Ops.tick ();
          counts)
    in
    P.Seq_ops.tabulate buckets (fun k ->
        let acc = ref 0 in
        for b = 0 to nblocks - 1 do
          acc := !acc + locals.(b).(k)
        done;
        !acc)
  end

let check_histogram ~buckets keys out =
  let expected = Array.make buckets 0 in
  Array.iter (fun k -> expected.(k) <- expected.(k) + 1) keys;
  expected = out

let base_n = 500_000

let instance_of name gen ~buckets =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let keys = gen n ~buckets in
        let out = ref [||] in
        {
          run = (fun () -> out := histogram ~buckets keys);
          check = (fun () -> check_histogram ~buckets keys !out);
        });
  }

let bench =
  {
    bname = "histogram";
    instances =
      [
        instance_of "randomSeq_100K_int"
          (fun n ~buckets -> P.Prandom.ints ~seed:301 n ~bound:buckets)
          ~buckets:100_000;
        instance_of "randomSeq_256_int"
          (fun n ~buckets -> P.Prandom.ints ~seed:302 n ~bound:buckets)
          ~buckets:256;
        instance_of "exptSeq_int"
          (fun n ~buckets -> P.Prandom.exponential_ints ~seed:303 n ~bound:buckets)
          ~buckets:100_000;
      ];
  }
