(** PBBS delaunayTriangulation: 2D Delaunay triangulation by incremental
    Bowyer–Watson insertion. Per inserted point, the cavity (triangles
    whose circumcircle contains the point) is found with a *parallel
    filter* over the current triangulation — the data-parallel phase —
    and retriangulated sequentially (PBBS's real implementation batches
    inserts with reservations; the work profile per round is the same:
    a parallel sweep followed by a small structural update).

    Validation uses the local Delaunay property (every interior edge is
    locally Delaunay ⇒ the triangulation is globally Delaunay) plus
    Euler's formula with the hull size taken from {!Convex_hull}. *)

(** A triangle as indices into the point array, counter-clockwise. *)
type triangle = { p1 : int; p2 : int; p3 : int }

(** [triangulate pts] — the Delaunay triangles of [pts]. Points should
    be in general position (the random generators here are); exact
    predicates are out of scope. *)
val triangulate : Geometry.point2d array -> triangle array

(** Raw incircle determinant (exposed for tests). *)
val incircle :
  Geometry.point2d -> Geometry.point2d -> Geometry.point2d -> Geometry.point2d -> float

(** [in_circumcircle pts t i] — strict containment of point [i] in the
    circumcircle of [t]. *)
val in_circumcircle : Geometry.point2d array -> triangle -> int -> bool

(** Full validation: every point is a vertex of some triangle, triangles
    are CCW and share edges consistently, every interior edge is locally
    Delaunay, and the triangle count satisfies Euler's formula
    [t = 2n - 2 - h]. *)
val check : Geometry.point2d array -> triangle array -> bool

val bench : Suite_types.bench
