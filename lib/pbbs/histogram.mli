(** PBBS histogram: occurrence counts of keys in [0, buckets), via
    per-block private counting and a parallel per-bucket merge (no
    atomics in the hot loop). *)

val histogram : buckets:int -> int array -> int array

val check_histogram : buckets:int -> int array -> int array -> bool

val bench : Suite_types.bench
