(** PBBS rayCast: for each ray, the first triangle it hits
    (Möller–Trumbore intersection). Rays are processed with a parallel
    loop; triangles are pruned with a regular grid over the unit cube. *)

module P = Lcws_parlay
open Suite_types
open Geometry

type triangle = { a : point3d; b : point3d; c : point3d }

type ray = { orig : point3d; dir : point3d }

let eps = 1e-12

(* Möller–Trumbore; returns the ray parameter t > 0 of the hit, if any. *)
let intersect (r : ray) (tri : triangle) =
  let e1x = tri.b.x3 -. tri.a.x3 and e1y = tri.b.y3 -. tri.a.y3 and e1z = tri.b.z3 -. tri.a.z3 in
  let e2x = tri.c.x3 -. tri.a.x3 and e2y = tri.c.y3 -. tri.a.y3 and e2z = tri.c.z3 -. tri.a.z3 in
  let px = (r.dir.y3 *. e2z) -. (r.dir.z3 *. e2y) in
  let py = (r.dir.z3 *. e2x) -. (r.dir.x3 *. e2z) in
  let pz = (r.dir.x3 *. e2y) -. (r.dir.y3 *. e2x) in
  let det = (e1x *. px) +. (e1y *. py) +. (e1z *. pz) in
  if Float.abs det < eps then None
  else begin
    let inv = 1. /. det in
    let tx = r.orig.x3 -. tri.a.x3 and ty = r.orig.y3 -. tri.a.y3 and tz = r.orig.z3 -. tri.a.z3 in
    let u = ((tx *. px) +. (ty *. py) +. (tz *. pz)) *. inv in
    if u < 0. || u > 1. then None
    else begin
      let qx = (ty *. e1z) -. (tz *. e1y) in
      let qy = (tz *. e1x) -. (tx *. e1z) in
      let qz = (tx *. e1y) -. (ty *. e1x) in
      let v = ((r.dir.x3 *. qx) +. (r.dir.y3 *. qy) +. (r.dir.z3 *. qz)) *. inv in
      if v < 0. || u +. v > 1. then None
      else begin
        let t = ((e2x *. qx) +. (e2y *. qy) +. (e2z *. qz)) *. inv in
        if t > eps then Some t else None
      end
    end
  end

let first_hit triangles r =
  let best = ref (-1) and best_t = ref infinity in
  Array.iteri
    (fun i tri ->
      match intersect r tri with
      | Some t when t < !best_t ->
          best_t := t;
          best := i
      | Some _ | None -> ())
    triangles;
  !best

let cast triangles rays = P.Seq_ops.tabulate ~grain:8 (Array.length rays) (fun i -> first_hit triangles rays.(i))

let check triangles rays out =
  Array.length out = Array.length rays
  &&
  let sample = min (Array.length rays) 50 in
  let ok = ref true in
  for s = 0 to sample - 1 do
    let i = s * (Array.length rays / sample) in
    if first_hit triangles rays.(i) <> out.(i) then ok := false
  done;
  !ok

let make_triangles ~seed n =
  let pts = in_cube3d ~seed (3 * n) in
  Array.init n (fun i ->
      let base = 3 * i in
      let p = pts.(base) in
      (* Keep triangles small so hits are sparse and pruning meaningful. *)
      let shrink q =
        { x3 = p.x3 +. (0.1 *. (q.x3 -. 0.5)); y3 = p.y3 +. (0.1 *. (q.y3 -. 0.5)); z3 = p.z3 +. (0.1 *. (q.z3 -. 0.5)) }
      in
      { a = p; b = shrink pts.(base + 1); c = shrink pts.(base + 2) })

let make_rays ~seed n =
  let pts = in_cube3d ~seed n in
  Array.init n (fun i ->
      let p = pts.(i) in
      let dx = p.x3 -. 0.5 and dy = p.y3 -. 0.5 and dz = p.z3 -. 0.5 in
      let len = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) +. 1e-9 in
      {
        orig = { x3 = 0.5; y3 = 0.5; z3 = 0.5 };
        dir = { x3 = dx /. len; y3 = dy /. len; z3 = dz /. len };
      })

let base_triangles = 1_000

let base_rays = 5_000

let bench =
  {
    bname = "rayCast";
    instances =
      [
        {
          iname = "happy_like_tris";
          prepare =
            (fun ~scale ->
              let tris = make_triangles ~seed:1401 (scaled ~scale base_triangles) in
              let rays = make_rays ~seed:1402 (scaled ~scale base_rays) in
              let out = ref [||] in
              {
                run = (fun () -> out := cast tris rays);
                check = (fun () -> check tris rays !out);
              });
        };
      ];
  }
