let all : Suite_types.bench list =
  [
    Integer_sort.bench;
    Comparison_sort.bench;
    Histogram.bench;
    Word_counts.bench;
    Inverted_index.bench;
    Remove_duplicates.bench;
    Suffix_array.bench;
    Bfs.bench;
    Maximal_independent_set.bench;
    Maximal_matching.bench;
    Spanning_forest.bench;
    Convex_hull.bench;
    Nearest_neighbors.bench;
    Nbody.bench;
    Ray_cast.bench;
    Classify.bench;
    Lrs.bench;
    Bw_transform.bench;
    Range_query.bench;
    Delaunay.bench;
  ]

let all_configs = List.concat_map Suite_types.configs all

let find ~bench ~instance =
  match List.find_opt (fun b -> b.Suite_types.bname = bench) all with
  | None -> None
  | Some b -> List.find_opt (fun i -> i.Suite_types.iname = instance) b.Suite_types.instances

let quick : Suite_types.bench list =
  let first_instance (b : Suite_types.bench) =
    { b with instances = [ List.hd b.instances ] }
  in
  List.map first_instance
    [
      Integer_sort.bench;
      Histogram.bench;
      Bfs.bench;
      Convex_hull.bench;
      Remove_duplicates.bench;
      Word_counts.bench;
    ]
