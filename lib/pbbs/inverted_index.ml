(** PBBS invertedIndex: map a document collection to, per distinct word,
    the sorted list of documents containing it. Pipeline: per-document
    tokenize (parallel over documents) → (hash, doc) pairs → radix sort →
    group → dedup docs per word. *)

module P = Lcws_parlay
open Suite_types

type posting = { term : string; docs : int array }

let build docs =
  let ndocs = Array.length docs in
  let per_doc =
    P.Seq_ops.tabulate ~grain:1 ndocs (fun d ->
        let text = docs.(d) in
        let toks = Tokens.tokenize text in
        Array.map (fun tok -> (Tokens.hash_low text tok, (Tokens.hash_token text tok, (d, tok)))) toks)
  in
  let pairs = P.Seq_ops.flatten per_doc in
  if Array.length pairs = 0 then [||]
  else begin
    let sorted = P.Sort.radix_sort_by ~key:fst ~bits:Tokens.hash_bits pairs in
    let sorted =
      P.Sort.merge_sort
        (fun (h1, (f1, (d1, _))) (h2, (f2, (d2, _))) ->
          if h1 <> h2 then compare h1 h2
          else if f1 <> f2 then compare f1 f2
          else compare d1 d2)
        sorted
    in
    let n = Array.length sorted in
    let full i = fst (snd sorted.(i)) in
    let starts = P.Seq_ops.pack_index (fun i _ -> i = 0 || full i <> full (i - 1)) sorted in
    let nruns = Array.length starts in
    P.Seq_ops.tabulate ~grain:1 nruns (fun r ->
        let lo = starts.(r) and hi = if r + 1 < nruns then starts.(r + 1) else n in
        let _, (_, (d0, tok)) = sorted.(lo) in
        let docs_dup = Array.init (hi - lo) (fun j -> fst (snd (snd sorted.(lo + j)))) in
        let uniq = ref [ d0 ] in
        Array.iter (fun d -> match !uniq with h :: _ when h = d -> () | _ -> uniq := d :: !uniq)
          docs_dup;
        let docs_arr = Array.of_list (List.rev !uniq) in
        (* The doc containing the first token occurrence names the term. *)
        let term =
          let d, (off, len) = (d0, tok) in
          String.sub docs.(d) off len
        in
        { term; docs = docs_arr })
  end

let check docs index =
  let tbl : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun d text ->
      Array.iter
        (fun tok ->
          let w = Tokens.token_string text tok in
          let set =
            match Hashtbl.find_opt tbl w with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 8 in
                Hashtbl.add tbl w s;
                s
          in
          Hashtbl.replace set d ())
        (Tokens.tokenize text))
    docs;
  Hashtbl.length tbl = Array.length index
  && Array.for_all
       (fun { term; docs = ds } ->
         match Hashtbl.find_opt tbl term with
         | None -> false
         | Some set ->
             Hashtbl.length set = Array.length ds
             && Array.for_all (fun d -> Hashtbl.mem set d) ds
             && P.Sort.is_sorted compare ds)
       index

let base_words = 60_000

let instance_of name ~docs_count =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let words = scaled ~scale base_words in
        let vocab = max 16 (words / 20) in
        let docs = Text_gen.documents ~seed:501 ~vocab ~words ~docs:docs_count () in
        let out = ref [||] in
        {
          run = (fun () -> out := build docs);
          check = (fun () -> check docs !out);
        });
  }

let bench =
  {
    bname = "invertedIndex";
    instances =
      [ instance_of "wikipedia_like_200docs" ~docs_count:200; instance_of "wikipedia_like_20docs" ~docs_count:20 ];
  }
