module P = Lcws_parlay
open Suite_types
open Geometry

type triangle = { p1 : int; p2 : int; p3 : int }

(* Incircle determinant: for CCW (a,b,c), positive iff d lies strictly
   inside the circumcircle. Doubles, not exact predicates — inputs come
   from the random generators, which keep points in general position. *)
let incircle (a : point2d) b c d =
  let ax = a.x -. d.x and ay = a.y -. d.y in
  let bx = b.x -. d.x and by = b.y -. d.y in
  let cx = c.x -. d.x and cy = c.y -. d.y in
  let a2 = (ax *. ax) +. (ay *. ay) in
  let b2 = (bx *. bx) +. (by *. by) in
  let c2 = (cx *. cx) +. (cy *. cy) in
  (ax *. ((by *. c2) -. (b2 *. cy)))
  -. (ay *. ((bx *. c2) -. (b2 *. cx)))
  +. (a2 *. ((bx *. cy) -. (by *. cx)))

let in_circumcircle pts t i =
  incircle pts.(t.p1) pts.(t.p2) pts.(t.p3) pts.(i) > 0.

(* Growable triangle store with alive flags; periodically compacted so
   the per-insert parallel filter scans mostly-live triangles. *)
type store = {
  mutable tris : triangle array;
  mutable alive : bool array;
  mutable len : int;
}

let store_add st t =
  if st.len = Array.length st.tris then begin
    let cap = max 64 (2 * st.len) in
    let tris = Array.make cap t and alive = Array.make cap false in
    Array.blit st.tris 0 tris 0 st.len;
    Array.blit st.alive 0 alive 0 st.len;
    st.tris <- tris;
    st.alive <- alive
  end;
  st.tris.(st.len) <- t;
  st.alive.(st.len) <- true;
  st.len <- st.len + 1

let compact st =
  let tris = Array.sub st.tris 0 st.len and alive = Array.sub st.alive 0 st.len in
  let keep = ref [] in
  for i = st.len - 1 downto 0 do
    if alive.(i) then keep := tris.(i) :: !keep
  done;
  let kept = Array.of_list !keep in
  st.tris <- kept;
  st.alive <- Array.make (Array.length kept) true;
  st.len <- Array.length kept

let triangulate (pts : point2d array) =
  let n = Array.length pts in
  if n < 3 then [||]
  else begin
    (* Extended point array: input points + a super-triangle that
       comfortably encloses the bounding box. *)
    let minx = ref infinity and maxx = ref neg_infinity in
    let miny = ref infinity and maxy = ref neg_infinity in
    Array.iter
      (fun p ->
        if p.x < !minx then minx := p.x;
        if p.x > !maxx then maxx := p.x;
        if p.y < !miny then miny := p.y;
        if p.y > !maxy then maxy := p.y)
      pts;
    let w = Float.max (!maxx -. !minx) (!maxy -. !miny) +. 1. in
    let cx = (!minx +. !maxx) /. 2. and cy = (!miny +. !maxy) /. 2. in
    let ext =
      [|
        { x = cx -. (20. *. w); y = cy -. (10. *. w) };
        { x = cx +. (20. *. w); y = cy -. (10. *. w) };
        { x = cx; y = cy +. (20. *. w) };
      |]
    in
    let all = Array.append pts ext in
    let st = { tris = Array.make 64 { p1 = 0; p2 = 0; p3 = 0 }; alive = Array.make 64 false; len = 0 } in
    store_add st { p1 = n; p2 = n + 1; p3 = n + 2 };
    let dead_since_compact = ref 0 in
    for p = 0 to n - 1 do
      (* Parallel phase: find the cavity (bad triangles). *)
      let indices = P.Seq_ops.tabulate st.len (fun i -> i) in
      let bad =
        P.Seq_ops.filter ~grain:256
          (fun i -> st.alive.(i) && in_circumcircle all st.tris.(i) p)
          indices
      in
      (* Cavity boundary: undirected edges seen exactly once, kept with
         the CCW orientation of their dead triangle so the new triangles
         stay CCW. *)
      let edges = Hashtbl.create 16 in
      let add_edge a b =
        let key = (min a b, max a b) in
        match Hashtbl.find_opt edges key with
        | None -> Hashtbl.add edges key (Some (a, b))
        | Some _ -> Hashtbl.replace edges key None
      in
      Array.iter
        (fun i ->
          let t = st.tris.(i) in
          add_edge t.p1 t.p2;
          add_edge t.p2 t.p3;
          add_edge t.p3 t.p1;
          st.alive.(i) <- false)
        bad;
      dead_since_compact := !dead_since_compact + Array.length bad;
      Hashtbl.iter
        (fun _ oriented ->
          match oriented with
          | Some (a, b) -> store_add st { p1 = a; p2 = b; p3 = p }
          | None -> ())
        edges;
      if !dead_since_compact > 4 * n || st.len > 8 * n then begin
        compact st;
        dead_since_compact := 0
      end
    done;
    (* Drop triangles that touch the super-triangle. *)
    let result = ref [] in
    for i = st.len - 1 downto 0 do
      if st.alive.(i) then begin
        let t = st.tris.(i) in
        if t.p1 < n && t.p2 < n && t.p3 < n then result := t :: !result
      end
    done;
    Array.of_list !result
  end

let check (pts : point2d array) (tris : triangle array) =
  let n = Array.length pts in
  if n < 3 then Array.length tris = 0
  else begin
    let ok = ref true in
    (* Every triangle CCW with vertices in range; every point used. *)
    let used = Array.make n false in
    Array.iter
      (fun t ->
        if t.p1 < 0 || t.p1 >= n || t.p2 < 0 || t.p2 >= n || t.p3 < 0 || t.p3 >= n then
          ok := false
        else begin
          used.(t.p1) <- true;
          used.(t.p2) <- true;
          used.(t.p3) <- true;
          if cross pts.(t.p1) pts.(t.p2) pts.(t.p3) <= 0. then ok := false
        end)
      tris;
    if not (Array.for_all Fun.id used) then ok := false;
    (* Edge structure: each undirected edge in 1 (hull) or 2 (interior)
       triangles; interior edges locally Delaunay. *)
    let edges : (int * int, (triangle * int) list) Hashtbl.t = Hashtbl.create 256 in
    let add a b t opposite =
      let key = (min a b, max a b) in
      Hashtbl.replace edges key
        ((t, opposite) :: Option.value ~default:[] (Hashtbl.find_opt edges key))
    in
    Array.iter
      (fun t ->
        add t.p1 t.p2 t t.p3;
        add t.p2 t.p3 t t.p1;
        add t.p3 t.p1 t t.p2)
      tris;
    let boundary : (int * int) list ref = ref [] in
    let eps = 1e-12 in
    let strictly_inside t i =
      incircle pts.(t.p1) pts.(t.p2) pts.(t.p3) pts.(i) > eps
    in
    Hashtbl.iter
      (fun key occurrences ->
        match occurrences with
        | [ _ ] -> boundary := key :: !boundary
        | [ (t1, opp1); (t2, opp2) ] ->
            if strictly_inside t1 opp2 || strictly_inside t2 opp1 then ok := false
        | _ -> ok := false)
      edges;
    (* The boundary must be one closed cycle: every boundary vertex has
       exactly two boundary edges. *)
    let b = List.length !boundary in
    let bdeg = Hashtbl.create 64 in
    List.iter
      (fun (a, c) ->
        List.iter
          (fun v ->
            Hashtbl.replace bdeg v (1 + Option.value ~default:0 (Hashtbl.find_opt bdeg v)))
          [ a; c ])
      !boundary;
    if Hashtbl.length bdeg <> b then ok := false;
    Hashtbl.iter (fun _ d -> if d <> 2 then ok := false) bdeg;
    (* Euler for a triangulation with [b] boundary vertices. *)
    if Array.length tris <> (2 * n) - 2 - b then ok := false;
    (* Cross-check against quickhull: every extreme point is a boundary
       vertex (the boundary may additionally contain near-collinear hull
       points that quickhull legitimately drops). *)
    let hull = Convex_hull.quickhull pts in
    if Array.length hull > b then ok := false;
    Array.iter (fun v -> if not (Hashtbl.mem bdeg v) then ok := false) hull;
    !ok
  end

let base_n = 1_500

let instance_of name gen =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = max 3 (scaled ~scale base_n) in
        let pts = gen n in
        let out = ref [||] in
        {
          run = (fun () -> out := triangulate pts);
          check = (fun () -> check pts !out);
        });
  }

let bench =
  {
    bname = "delaunayTriangulation";
    instances =
      [ instance_of "2DinCube" (in_cube2d ~seed:2001); instance_of "2DinSphere" (in_sphere2d ~seed:2002) ];
  }
