(** PBBS spanningForest: spanning forest of an undirected graph. The
    parallel phase sorts edges by a deterministic random priority (so the
    union pass is cache-friendly and deterministic); unions use a
    sequential union-find (path halving), as the per-edge union work is a
    tiny fraction of the sort. *)

module P = Lcws_parlay
open Suite_types

module Union_find = struct
  type t = int array

  let create n = Array.init n (fun i -> i)

  let rec find t x =
    let p = t.(x) in
    if p = x then x
    else begin
      (* Path halving. *)
      t.(x) <- t.(p);
      find t t.(x)
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then false
    else begin
      if ra < rb then t.(rb) <- ra else t.(ra) <- rb;
      true
    end
end

let spanning_forest ?(seed = 1) ~n (edges : (int * int) array) =
  let m = Array.length edges in
  let keyed =
    P.Seq_ops.tabulate m (fun e -> (P.Prandom.hash_int ~seed e land ((1 lsl 24) - 1), e))
  in
  let sorted = P.Sort.radix_sort_by ~key:fst ~bits:24 keyed in
  let uf = Union_find.create n in
  let forest = ref [] in
  Array.iter
    (fun (_, e) ->
      let u, v = edges.(e) in
      if Union_find.union uf u v then forest := e :: !forest)
    sorted;
  Array.of_list (List.rev !forest)

let check ~n edges forest =
  (* The forest must be acyclic and produce the same components as the
     full edge set. *)
  let uf_forest = Union_find.create n in
  let acyclic = ref true in
  Array.iter
    (fun e ->
      let u, v = edges.(e) in
      if not (Union_find.union uf_forest u v) then acyclic := false)
    forest;
  let uf_all = Union_find.create n in
  Array.iter (fun (u, v) -> ignore (Union_find.union uf_all u v)) edges;
  let same_components = ref true in
  Array.iter
    (fun (u, v) ->
      if Union_find.find uf_forest u <> Union_find.find uf_forest v then
        (* u,v connected in the graph but not the forest *)
        same_components := false)
    edges;
  !acyclic && !same_components

let instance_of name make_graph =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let g = make_graph ~scale in
        let edges = Graph.edge_list g in
        let n = Graph.num_vertices g in
        let out = ref [||] in
        {
          run = (fun () -> out := spanning_forest ~seed:1001 ~n edges);
          check = (fun () -> check ~n edges !out);
        });
  }

let bench =
  {
    bname = "spanningForest";
    instances =
      [
        instance_of "rMatGraph_E" (fun ~scale ->
            let sc = max 8 (12 + int_of_float (Float.round (Float.log2 (max 0.1 scale)))) in
            Graph.rmat ~seed:1002 ~scale:sc ~edge_factor:4 ());
        instance_of "gridGraph_2D" (fun ~scale -> Graph.grid2d ~side:(max 8 (scaled ~scale 100)));
      ];
  }
