(** Parallel tokenization shared by the text benchmarks (wordCounts,
    invertedIndex): split a string on non-letters into (offset, length)
    tokens, plus a 64-bit FNV-1a hash for cheap word identity. *)

module P = Lcws_parlay

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

(* Token starts are word chars preceded by a non-word char; token ends
   symmetric. Both computed with data-parallel index packing. *)
let tokenize text =
  let n = String.length text in
  if n = 0 then [||]
  else begin
    let chars = P.Seq_ops.tabulate n (fun i -> text.[i]) in
    let starts =
      P.Seq_ops.pack_index
        (fun i c -> is_word_char c && (i = 0 || not (is_word_char text.[i - 1])))
        chars
    in
    let stops =
      P.Seq_ops.pack_index
        (fun i c -> is_word_char c && (i = n - 1 || not (is_word_char text.[i + 1])))
        chars
    in
    P.Seq_ops.tabulate (Array.length starts) (fun t ->
        (starts.(t), stops.(t) - starts.(t) + 1))
  end

let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let hash_token text (off, len) =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code text.[i]))) fnv_prime
  done;
  (* Non-negative OCaml int (62 bits after masking). *)
  Int64.to_int !h land max_int

let token_string text (off, len) = String.sub text off len

(** Hash truncated to [bits] (for radix sorting); collisions are handled
    by callers grouping on the full hash. *)
let hash_bits = 30

let hash_low text tok = hash_token text tok land ((1 lsl hash_bits) - 1)
