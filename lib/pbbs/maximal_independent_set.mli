(** PBBS maximalIndependentSet: Luby's algorithm — per round, vertices
    holding a local minimum of fresh random priorities join the set and
    eliminate their neighbourhoods. *)

(** [mis ?seed g] — membership flags. Deterministic for a given seed. *)
val mis : ?seed:int -> Graph.t -> bool array

(** Independence + maximality. *)
val check : Graph.t -> bool array -> bool

val bench : Suite_types.bench
