(** PBBS rangeQuery2d: count points inside axis-aligned rectangles with
    a merge-sort tree (segment tree over x-sorted points, y-sorted runs
    per level): O(log² n) per query, parallel build and query batch. *)

type rect = { xlo : float; xhi : float; ylo : float; yhi : float }

type tree

val build : Geometry.point2d array -> tree

(** Points with x in [xlo, xhi] and y in [ylo, yhi] (inclusive). *)
val query : tree -> rect -> int

val query_all : tree -> rect array -> int array

val brute_count : Geometry.point2d array -> rect -> int

val check : Geometry.point2d array -> rect array -> int array -> bool

(** Deterministic random query rectangles in the unit square. *)
val make_rects : ?seed:int -> int -> rect array

val bench : Suite_types.bench
