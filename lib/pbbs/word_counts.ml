(** PBBS wordCounts: count occurrences of every distinct word in a text.
    Pipeline: parallel tokenize → hash → radix sort by hash → run-length
    count (full 62-bit hash disambiguates radix-truncation neighbours). *)

module P = Lcws_parlay
open Suite_types

type counted = { word : string; count : int }

let tokenize_and_hash text =
  let toks = Tokens.tokenize text in
  P.Seq_ops.map (fun tok -> (Tokens.hash_low text tok, (Tokens.hash_token text tok, tok))) toks

let group hashed text =
  if Array.length hashed = 0 then [||]
  else begin
    let sorted = P.Sort.radix_sort_by ~key:fst ~bits:Tokens.hash_bits hashed in
    (* Order ties on the full hash so equal words are truly adjacent. *)
    let sorted =
      P.Sort.merge_sort
        (fun (h1, (f1, _)) (h2, (f2, _)) -> if h1 <> h2 then compare h1 h2 else compare f1 f2)
        sorted
    in
    let n = Array.length sorted in
    let full i = fst (snd sorted.(i)) in
    let starts = P.Seq_ops.pack_index (fun i _ -> i = 0 || full i <> full (i - 1)) sorted in
    let nruns = Array.length starts in
    P.Seq_ops.tabulate nruns (fun r ->
        let lo = starts.(r) and hi = if r + 1 < nruns then starts.(r + 1) else n in
        let _, (_, tok) = sorted.(lo) in
        { word = Tokens.token_string text tok; count = hi - lo })
  end

let word_counts text = group (tokenize_and_hash text) text

let check text out =
  let tbl = Hashtbl.create 1024 in
  Array.iter
    (fun tok ->
      let w = Tokens.token_string text tok in
      Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w)))
    (Tokens.tokenize text);
  Hashtbl.length tbl = Array.length out
  && Array.for_all (fun { word; count } -> Hashtbl.find_opt tbl word = Some count) out

let base_words = 100_000

let instance_of name ~vocab_frac =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let words = scaled ~scale base_words in
        let vocab = max 16 (int_of_float (float_of_int words *. vocab_frac)) in
        let text = Text_gen.text ~seed:401 ~vocab ~words () in
        let out = ref [||] in
        {
          run = (fun () -> out := word_counts text);
          check = (fun () -> check text !out);
        });
  }

let bench =
  {
    bname = "wordCounts";
    instances =
      [
        instance_of "trigramSeq_small_vocab" ~vocab_frac:0.01;
        instance_of "trigramSeq_large_vocab" ~vocab_frac:0.3;
      ];
  }
