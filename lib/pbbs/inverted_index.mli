(** PBBS invertedIndex: per distinct term, the sorted list of documents
    containing it. Per-document tokenization runs in parallel across
    documents; (hash, doc) pairs are sorted and grouped. *)

type posting = { term : string; docs : int array }

val build : string array -> posting array

val check : string array -> posting array -> bool

val bench : Suite_types.bench
