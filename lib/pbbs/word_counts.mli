(** PBBS wordCounts: occurrences of every distinct word in a text.
    Pipeline: parallel tokenize → hash → radix sort by hash → run-length
    count; the full 62-bit hash disambiguates radix truncation. *)

type counted = { word : string; count : int }

val word_counts : string -> counted array

(** Hashtbl-based sequential validation. *)
val check : string -> counted array -> bool

val bench : Suite_types.bench
