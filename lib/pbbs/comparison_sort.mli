(** PBBS comparisonSort: stable parallel merge sort under an arbitrary
    comparator (doubles, exponential/almost-sorted sequences, trigram
    strings — the PBBS default instances). *)

val sort : ('a -> 'a -> int) -> 'a array -> 'a array

val check_against_stdlib : ('a -> 'a -> int) -> 'a array -> 'a array -> bool

val bench : Suite_types.bench
