(** PBBS nBody (2D Barnes-Hut flavour): gravitational forces via a
    quadtree with centre-of-mass approximation (theta criterion), built
    and evaluated in parallel. *)

module P = Lcws_parlay
module S = Lcws_sched.Scheduler
open Suite_types
open Geometry

type cell = {
  mass : float;
  cx : float;
  cy : float;  (** centre of mass *)
  half : float;  (** half-width of the cell square *)
  kind : kind;
}

and kind = Qleaf of int array | Qnode of cell array (* 4 children *)

let leaf_size = 8

let theta = 0.5

let softening2 = 1e-6

let build (pts : point2d array) =
  let n = Array.length pts in
  let minx = ref infinity and maxx = ref neg_infinity in
  let miny = ref infinity and maxy = ref neg_infinity in
  for i = 0 to n - 1 do
    if pts.(i).x < !minx then minx := pts.(i).x;
    if pts.(i).x > !maxx then maxx := pts.(i).x;
    if pts.(i).y < !miny then miny := pts.(i).y;
    if pts.(i).y > !maxy then maxy := pts.(i).y
  done;
  let cx0 = (!minx +. !maxx) /. 2. and cy0 = (!miny +. !maxy) /. 2. in
  let half0 = 1e-12 +. (0.5 *. Float.max (!maxx -. !minx) (!maxy -. !miny)) in
  let com idx =
    let m = float_of_int (Array.length idx) in
    let sx = Array.fold_left (fun a i -> a +. pts.(i).x) 0. idx in
    let sy = Array.fold_left (fun a i -> a +. pts.(i).y) 0. idx in
    if m = 0. then (0., 0., 0.) else (m, sx /. m, sy /. m)
  in
  let rec go idx cx cy half depth =
    if Array.length idx <= leaf_size || depth > 32 then begin
      let m, gx, gy = com idx in
      { mass = m; cx = gx; cy = gy; half; kind = Qleaf idx }
    end
    else begin
      let quadrant i =
        (if pts.(i).x >= cx then 1 else 0) lor if pts.(i).y >= cy then 2 else 0
      in
      let parts = Array.init 4 (fun q -> P.Seq_ops.filter (fun i -> quadrant i = q) idx) in
      let h2 = half /. 2. in
      let centers =
        [|
          (cx -. h2, cy -. h2); (cx +. h2, cy -. h2); (cx -. h2, cy +. h2); (cx +. h2, cy +. h2);
        |]
      in
      let children = Array.make 4 None in
      let build_q q =
        let qx, qy = centers.(q) in
        children.(q) <- Some (go parts.(q) qx qy h2 (depth + 1))
      in
      S.Ops.fork_join_unit
        (fun () -> S.Ops.fork_join_unit (fun () -> build_q 0) (fun () -> build_q 1))
        (fun () -> S.Ops.fork_join_unit (fun () -> build_q 2) (fun () -> build_q 3));
      let kids = Array.map Option.get children in
      let m = Array.fold_left (fun a c -> a +. c.mass) 0. kids in
      let gx = if m = 0. then cx else Array.fold_left (fun a c -> a +. (c.mass *. c.cx)) 0. kids /. m in
      let gy = if m = 0. then cy else Array.fold_left (fun a c -> a +. (c.mass *. c.cy)) 0. kids /. m in
      { mass = m; cx = gx; cy = gy; half; kind = Qnode kids }
    end
  in
  go (P.Seq_ops.tabulate n (fun i -> i)) cx0 cy0 half0 0

let force_on pts tree i =
  let p = pts.(i) in
  let fx = ref 0. and fy = ref 0. in
  let add_body m bx by =
    let dx = bx -. p.x and dy = by -. p.y in
    let d2 = (dx *. dx) +. (dy *. dy) +. softening2 in
    let inv = m /. (d2 *. sqrt d2) in
    fx := !fx +. (dx *. inv);
    fy := !fy +. (dy *. inv)
  in
  let rec go cell =
    if cell.mass > 0. then begin
      let dx = cell.cx -. p.x and dy = cell.cy -. p.y in
      let d2 = (dx *. dx) +. (dy *. dy) in
      let w = 2. *. cell.half in
      if w *. w < theta *. theta *. d2 then add_body cell.mass cell.cx cell.cy
      else
        match cell.kind with
        | Qleaf idx -> Array.iter (fun j -> if j <> i then add_body 1. pts.(j).x pts.(j).y) idx
        | Qnode kids -> Array.iter go kids
    end
  in
  go tree;
  (!fx, !fy)

let forces pts =
  let tree = build pts in
  P.Seq_ops.tabulate ~grain:16 (Array.length pts) (fun i -> force_on pts tree i)

let direct_force pts i =
  let p = pts.(i) in
  let fx = ref 0. and fy = ref 0. in
  Array.iteri
    (fun j q ->
      if j <> i then begin
        let dx = q.x -. p.x and dy = q.y -. p.y in
        let d2 = (dx *. dx) +. (dy *. dy) +. softening2 in
        let inv = 1. /. (d2 *. sqrt d2) in
        fx := !fx +. (dx *. inv);
        fy := !fy +. (dy *. inv)
      end)
    pts;
  (!fx, !fy)

let check pts out =
  let n = Array.length pts in
  Array.length out = n
  &&
  let sample = min n 30 in
  let ok = ref true in
  for s = 0 to sample - 1 do
    let i = s * (n / sample) in
    let fx, fy = out.(i) in
    let ex, ey = direct_force pts i in
    let mag = sqrt ((ex *. ex) +. (ey *. ey)) +. 1e-9 in
    let err = sqrt (((fx -. ex) ** 2.) +. ((fy -. ey) ** 2.)) /. mag in
    (* Barnes-Hut with theta=0.5 stays well under 5% relative error. *)
    if err > 0.05 then ok := false
  done;
  !ok

let base_n = 5_000

let instance_of name gen =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let pts = gen n in
        let out = ref [||] in
        {
          run = (fun () -> out := forces pts);
          check = (fun () -> check pts !out);
        });
  }

let bench =
  {
    bname = "nBody";
    instances =
      [ instance_of "3DonSphere_like_2D" (in_sphere2d ~seed:1301); instance_of "3DinCube_like_2D" (in_cube2d ~seed:1302) ];
  }
