(** PBBS breadthFirstSearch: level-synchronous parallel BFS. Vertices are
    claimed with a compare-and-set on the parent array, so each level's
    frontier is computed in parallel; the resulting distances are
    deterministic even though parents are not. *)

module P = Lcws_parlay
open Suite_types

(** Returns the parent array (-1 for unreached, [source] for itself). *)
let bfs (g : Graph.t) ~source =
  let n = Graph.num_vertices g in
  let parent = Array.init n (fun _ -> Atomic.make (-1)) in
  Atomic.set parent.(source) source;
  let frontier = ref [| source |] in
  while Array.length !frontier > 0 do
    let claimed =
      P.Seq_ops.tabulate ~grain:16 (Array.length !frontier) (fun fi ->
          let u = !frontier.(fi) in
          let mine = ref [] in
          Graph.iter_neighbors g u (fun v ->
              if Atomic.get parent.(v) = -1 && Atomic.compare_and_set parent.(v) (-1) u then
                mine := v :: !mine);
          Array.of_list !mine)
    in
    frontier := P.Seq_ops.flatten claimed
  done;
  Array.map Atomic.get parent

let distances_from_parents g ~source parents =
  let n = Graph.num_vertices g in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  (* Parents form a forest rooted at [source]; walk up each vertex. *)
  let rec depth v =
    if dist.(v) >= 0 then dist.(v)
    else begin
      let d = 1 + depth parents.(v) in
      dist.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    if parents.(v) >= 0 && dist.(v) < 0 then ignore (depth v)
  done;
  dist

(* Direction-optimizing BFS (Beamer-style), PBBS's backForwardBFS: when
   the frontier is large, switch to a bottom-up sweep where every
   unvisited vertex scans its neighbours for a frontier parent. The
   bottom-up phase needs no CAS at all (each vertex writes only its own
   parent slot), at the price of full-vertex sweeps — the steal-heavy
   behaviour the paper singles out in Section 5.2. *)
let bfs_back_forward (g : Graph.t) ~source =
  let n = Graph.num_vertices g in
  let parent = Array.init n (fun _ -> Atomic.make (-1)) in
  Atomic.set parent.(source) source;
  let in_frontier = Array.make n false in
  let frontier = ref [| source |] in
  let threshold = max 1 (n / 20) in
  while Array.length !frontier > 0 do
    let next =
      if Array.length !frontier >= threshold then begin
        (* Bottom-up: mark the current frontier, then each unvisited
           vertex looks for any marked neighbour. *)
        Array.iter (fun v -> in_frontier.(v) <- true) !frontier;
        let vertices = P.Seq_ops.tabulate n (fun v -> v) in
        let next =
          P.Seq_ops.filter_mapi ~grain:64
            (fun _ v ->
              if Atomic.get parent.(v) >= 0 then None
              else begin
                let found = ref (-1) in
                let edges, start, len = Graph.neighbors g v in
                let i = ref start in
                while !found < 0 && !i < start + len do
                  if in_frontier.(edges.(!i)) then found := edges.(!i);
                  incr i
                done;
                if !found >= 0 then begin
                  Atomic.set parent.(v) !found;
                  Some v
                end
                else None
              end)
            vertices
        in
        Array.iter (fun v -> in_frontier.(v) <- false) !frontier;
        next
      end
      else begin
        (* Top-down, as in [bfs]. *)
        let claimed =
          P.Seq_ops.tabulate ~grain:16 (Array.length !frontier) (fun fi ->
              let u = !frontier.(fi) in
              let mine = ref [] in
              Graph.iter_neighbors g u (fun v ->
                  if Atomic.get parent.(v) = -1 && Atomic.compare_and_set parent.(v) (-1) u then
                    mine := v :: !mine);
              Array.of_list !mine)
        in
        P.Seq_ops.flatten claimed
      end
    in
    frontier := next
  done;
  Array.map Atomic.get parent

let sequential_distances g ~source =
  let n = Graph.num_vertices g in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
  done;
  dist

let check g ~source parents =
  let n = Graph.num_vertices g in
  let expected = sequential_distances g ~source in
  let got = distances_from_parents g ~source parents in
  let ok = ref (parents.(source) = source) in
  for v = 0 to n - 1 do
    if expected.(v) <> got.(v) then ok := false;
    (* Each parent edge must exist and go one level up. *)
    if v <> source && parents.(v) >= 0 then begin
      let p = parents.(v) in
      let edge_exists = ref false in
      Graph.iter_neighbors g p (fun w -> if w = v then edge_exists := true);
      if not !edge_exists then ok := false
    end
  done;
  !ok

let instance_of ?(algo = bfs) name make_graph =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let g = make_graph ~scale in
        let out = ref [||] in
        {
          run = (fun () -> out := algo g ~source:0);
          check = (fun () -> check g ~source:0 !out);
        });
  }

let bench =
  {
    bname = "breadthFirstSearch";
    instances =
      [
        instance_of "rMatGraph_J" (fun ~scale ->
            let sc = max 8 (12 + int_of_float (Float.round (Float.log2 (max 0.1 scale)))) in
            Graph.rmat ~seed:701 ~scale:sc ~edge_factor:8 ());
        instance_of "gridGraph_2D" (fun ~scale ->
            Graph.grid2d ~side:(max 8 (scaled ~scale 120)));
        instance_of "gridGraph_3D" (fun ~scale ->
            Graph.grid3d ~side:(max 4 (scaled ~scale 24)));
        instance_of "randLocalGraph_J" (fun ~scale ->
            Graph.random_graph ~seed:702 ~n:(scaled ~scale 30_000) ~degree:8 ());
        instance_of ~algo:bfs_back_forward "backForwardBFS_3Dgrid" (fun ~scale ->
            Graph.grid3d ~side:(max 4 (scaled ~scale 24)));
      ];
  }
