(** PBBS rayCast: first triangle hit by each ray (Möller–Trumbore),
    parallel over rays. *)

type triangle = { a : Geometry.point3d; b : Geometry.point3d; c : Geometry.point3d }

type ray = { orig : Geometry.point3d; dir : Geometry.point3d }

(** Ray parameter of the hit, if any ([t > 0]). *)
val intersect : ray -> triangle -> float option

(** Index of the nearest intersected triangle, -1 if none. *)
val first_hit : triangle array -> ray -> int

val cast : triangle array -> ray array -> int array

val check : triangle array -> ray array -> int array -> bool

(** Deterministic scene generators. *)
val make_triangles : seed:int -> int -> triangle array

val make_rays : seed:int -> int -> ray array

val bench : Suite_types.bench
