module P = Lcws_parlay

let letters = "etaoinshrdlucmfwypvbgkjqxz"

(* A deterministic word for vocabulary slot [w]: length 3-10, letters
   biased toward frequent English letters via the trigram-ish chain. *)
let make_word seed w =
  let len = 3 + P.Prandom.int ~seed:(seed + 3) w 8 in
  let buf = Bytes.create len in
  let prev = ref (P.Prandom.int ~seed:(seed + 5) w 26) in
  for i = 0 to len - 1 do
    let r = P.Prandom.int ~seed:(seed + 7 + i) w 26 in
    (* Chain: mix previous letter in so words look pronounceable-ish. *)
    let c = (r + (!prev / 2)) mod 26 in
    Bytes.set buf i letters.[c];
    prev := c
  done;
  Bytes.to_string buf

(* Zipf sampling via inverse-CDF approximation: rank ~ u^-1 truncated. *)
let zipf_rank ~seed i ~vocab =
  let u = P.Prandom.float ~seed i in
  let hmax = log (float_of_int vocab +. 1.) in
  let r = int_of_float (exp (u *. hmax)) - 1 in
  if r < 0 then 0 else if r >= vocab then vocab - 1 else r

let words ?(seed = 1) ~vocab n =
  let dictionary = Array.init vocab (fun w -> make_word seed w) in
  P.Seq_ops.tabulate n (fun i -> dictionary.(zipf_rank ~seed:(seed + 11) i ~vocab))

let text ?(seed = 1) ~vocab ~words:n () =
  let ws = words ~seed ~vocab n in
  let buf = Buffer.create (n * 7) in
  Array.iteri
    (fun i w ->
      Buffer.add_string buf w;
      if (i + 1) mod 20 = 0 then Buffer.add_char buf '\n' else Buffer.add_char buf ' ')
    ws;
  Buffer.contents buf

let documents ?(seed = 1) ~vocab ~words:n ~docs () =
  let per_doc = max 1 (n / docs) in
  Array.init docs (fun d ->
      let count = if d = docs - 1 then n - (per_doc * (docs - 1)) else per_doc in
      let count = max 1 count in
      let ws = words ~seed:(seed + (d * 101)) ~vocab count in
      String.concat " " (Array.to_list ws))
