(** PBBS maximalMatching: parallel greedy matching by static random
    edge priorities — per round, edges that are the minimum at both
    endpoints enter the matching. *)

(** [maximal_matching ?seed ~n edges] — indices into [edges] of the
    matched edges. *)
val maximal_matching : ?seed:int -> n:int -> (int * int) array -> int array

(** Validity (vertex-disjoint) + maximality. *)
val check : n:int -> (int * int) array -> int array -> bool

val bench : Suite_types.bench
