(** PBBS removeDuplicates: distinct elements of an integer sequence
    (order of the output follows sorted order). Sort + adjacent-difference
    pack. *)

module P = Lcws_parlay
open Suite_types

let remove_duplicates ~bits keys =
  let n = Array.length keys in
  if n = 0 then [||]
  else begin
    let sorted = P.Sort.radix_sort ~bits keys in
    P.Seq_ops.filter_mapi
      (fun i x -> if i = 0 || x <> sorted.(i - 1) then Some x else None)
      sorted
  end

let check keys out =
  let tbl = Hashtbl.create 1024 in
  Array.iter (fun k -> Hashtbl.replace tbl k ()) keys;
  Hashtbl.length tbl = Array.length out
  && Array.for_all (fun k -> Hashtbl.mem tbl k) out
  && P.Sort.is_sorted compare out

let base_n = 200_000

let instance_of name gen ~bits =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let keys = gen n in
        let out = ref [||] in
        {
          run = (fun () -> out := remove_duplicates ~bits keys);
          check = (fun () -> check keys !out);
        });
  }

let bench =
  {
    bname = "removeDuplicates";
    instances =
      [
        instance_of "randomSeq_int" (fun n -> P.Prandom.ints ~seed:601 n ~bound:(1 lsl 20)) ~bits:20;
        instance_of "randomSeq_100K_int" (fun n -> P.Prandom.ints ~seed:602 n ~bound:100_000)
          ~bits:17;
        instance_of "exptSeq_int"
          (fun n -> P.Prandom.exponential_ints ~seed:603 n ~bound:(1 lsl 20))
          ~bits:20;
      ];
  }
