(** Synthetic text in the spirit of PBBS's trigramString/wikipedia
    inputs: words drawn from a Zipf-distributed vocabulary of
    trigram-built words, separated by spaces and newlines. *)

(** [words ?seed ~vocab n] — [n] words from a vocabulary of [vocab]
    distinct words with Zipf(1) frequencies. *)
val words : ?seed:int -> vocab:int -> int -> string array

(** [text ?seed ~vocab ~words] — the words joined by spaces, with a
    newline every ~20 words (so it can double as a document stream). *)
val text : ?seed:int -> vocab:int -> words:int -> unit -> string

(** [documents ?seed ~vocab ~words ~docs] — split into [docs] documents
    of roughly equal length. *)
val documents : ?seed:int -> vocab:int -> words:int -> docs:int -> unit -> string array
