(** PBBS BWTransform (+ a decoder): the Burrows-Wheeler transform via the
    parallel suffix array, and its inverse via the LF mapping. The
    sentinel '\x00' (smaller than any text byte) makes suffix order equal
    rotation order, so BWT.(i) is the character preceding suffix sa.(i). *)

module P = Lcws_parlay
open Suite_types

let sentinel = '\x00'

(** [bwt s] — last column of the sorted rotation matrix of [s ^ "\x00"].
    [s] must not contain ['\x00']. *)
let bwt s =
  let t = s ^ String.make 1 sentinel in
  let n = String.length t in
  let sa = Suffix_array.suffix_array t in
  let out =
    P.Seq_ops.tabulate n (fun i ->
        let j = sa.(i) in
        if j = 0 then t.[n - 1] else t.[j - 1])
  in
  String.init n (fun i -> out.(i))

(** [unbwt b] — inverse transform (drops the sentinel). LF-mapping walk:
    counting (parallelizable) + one inherently sequential chase. *)
let unbwt b =
  let n = String.length b in
  if n = 0 then ""
  else begin
    (* occ.(c) = number of characters < c in b (prefix sums of counts). *)
    let counts = Array.make 257 0 in
    String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) b;
    let first = Array.make 257 0 in
    for c = 1 to 256 do
      first.(c) <- first.(c - 1) + counts.(c - 1)
    done;
    (* rank.(i) = occurrences of b.[i] in b.[0..i-1]. *)
    let rank = Array.make n 0 in
    let running = Array.make 257 0 in
    for i = 0 to n - 1 do
      let c = Char.code b.[i] in
      rank.(i) <- running.(c);
      running.(c) <- running.(c) + 1
    done;
    (* LF(i) = first.(b.[i]) + rank.(i); walk backwards from the sentinel
       row (row 0, since the sentinel sorts first). *)
    let out = Bytes.make (n - 1) ' ' in
    let row = ref 0 in
    for k = n - 2 downto 0 do
      let c = b.[!row] in
      Bytes.set out k c;
      row := first.(Char.code c) + rank.(!row)
    done;
    Bytes.to_string out
  end

let check s encoded =
  String.length encoded = String.length s + 1
  && (let sorted_in = List.sort compare (List.init (String.length s) (String.get s)) in
      let enc_chars =
        List.filter (fun c -> c <> sentinel) (List.init (String.length encoded) (String.get encoded))
      in
      List.sort compare enc_chars = sorted_in)
  && unbwt encoded = s

let base_n = 20_000

let instance_of name gen =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let s = gen n in
        let out = ref "" in
        {
          run = (fun () -> out := bwt s);
          check = (fun () -> check s !out);
        });
  }

let bench =
  {
    bname = "BWTransform";
    instances =
      [
        instance_of "trigramString" (fun n ->
            let t = Text_gen.text ~seed:1801 ~vocab:(max 16 (n / 40)) ~words:(max 1 (n / 6)) () in
            if String.length t >= n then String.sub t 0 n else t);
      ];
  }
