(** PBBS nearestNeighbors: for every point, its nearest other point
    (1-NN), via a k-d tree built with parallel divide and conquer and
    parallel batch queries. *)

module P = Lcws_parlay
module S = Lcws_sched.Scheduler
open Suite_types
open Geometry

type node =
  | Leaf of int array
  | Split of { axis : int; pivot : float; left : node; right : node }

let leaf_size = 16

let build (pts : point2d array) =
  let coord axis i = if axis = 0 then pts.(i).x else pts.(i).y in
  let rec go idx axis =
    if Array.length idx <= leaf_size then Leaf idx
    else begin
      let sorted =
        P.Sort.merge_sort (fun i j -> Float.compare (coord axis i) (coord axis j)) idx
      in
      let mid = Array.length sorted / 2 in
      let pivot = coord axis sorted.(mid) in
      let left = Array.sub sorted 0 mid in
      let right = Array.sub sorted mid (Array.length sorted - mid) in
      let next = 1 - axis in
      let l, r = S.Ops.fork_join (fun () -> go left next) (fun () -> go right next) in
      Split { axis; pivot; left = l; right = r }
    end
  in
  go (P.Seq_ops.tabulate (Array.length pts) (fun i -> i)) 0

let nearest pts tree q_idx =
  let q = pts.(q_idx) in
  let best = ref (-1) and best_d = ref infinity in
  let rec search = function
    | Leaf idx ->
        Array.iter
          (fun i ->
            if i <> q_idx then begin
              let d = dist2 q pts.(i) in
              if d < !best_d then begin
                best_d := d;
                best := i
              end
            end)
          idx
    | Split { axis; pivot; left; right } ->
        let qc = if axis = 0 then q.x else q.y in
        let near, far = if qc < pivot then (left, right) else (right, left) in
        search near;
        let plane = qc -. pivot in
        if plane *. plane < !best_d then search far
  in
  search tree;
  !best

let all_nearest pts =
  let tree = build pts in
  P.Seq_ops.tabulate ~grain:64 (Array.length pts) (fun i -> nearest pts tree i)

let check pts nn =
  let n = Array.length pts in
  Array.length nn = n
  &&
  (* Exhaustive check on a deterministic sample of queries. *)
  let sample = min n 200 in
  let ok = ref true in
  for s = 0 to sample - 1 do
    let i = s * (n / sample) in
    let brute = ref (-1) and brute_d = ref infinity in
    for j = 0 to n - 1 do
      if j <> i then begin
        let d = dist2 pts.(i) pts.(j) in
        if d < !brute_d then begin
          brute_d := d;
          brute := j
        end
      end
    done;
    (* Equal-distance ties admit several valid answers. *)
    if nn.(i) < 0 || dist2 pts.(i) pts.(nn.(i)) > !brute_d +. 1e-12 then ok := false
  done;
  !ok

(* 3D variant (PBBS ships 2D and 3D point sets for this benchmark). *)
module Three_d = struct
  type node3 =
    | Leaf3 of int array
    | Split3 of { axis : int; pivot : float; left : node3; right : node3 }

  let coord (p : point3d) = function 0 -> p.x3 | 1 -> p.y3 | _ -> p.z3

  let build (pts : point3d array) =
    let rec go idx axis =
      if Array.length idx <= leaf_size then Leaf3 idx
      else begin
        let sorted =
          P.Sort.merge_sort
            (fun i j -> Float.compare (coord pts.(i) axis) (coord pts.(j) axis))
            idx
        in
        let mid = Array.length sorted / 2 in
        let pivot = coord pts.(sorted.(mid)) axis in
        let left = Array.sub sorted 0 mid in
        let right = Array.sub sorted mid (Array.length sorted - mid) in
        let next = (axis + 1) mod 3 in
        let l, r = S.Ops.fork_join (fun () -> go left next) (fun () -> go right next) in
        Split3 { axis; pivot; left = l; right = r }
      end
    in
    go (P.Seq_ops.tabulate (Array.length pts) (fun i -> i)) 0

  let nearest pts tree q_idx =
    let q = pts.(q_idx) in
    let best = ref (-1) and best_d = ref infinity in
    let rec search = function
      | Leaf3 idx ->
          Array.iter
            (fun i ->
              if i <> q_idx then begin
                let d = dist3 q pts.(i) in
                if d < !best_d then begin
                  best_d := d;
                  best := i
                end
              end)
            idx
      | Split3 { axis; pivot; left; right } ->
          let qc = coord q axis in
          let near, far = if qc < pivot then (left, right) else (right, left) in
          search near;
          let plane = qc -. pivot in
          if plane *. plane < !best_d then search far
    in
    search tree;
    !best

  let all_nearest pts =
    let tree = build pts in
    P.Seq_ops.tabulate ~grain:64 (Array.length pts) (fun i -> nearest pts tree i)

  let check pts nn =
    let n = Array.length pts in
    Array.length nn = n
    &&
    let sample = min n 200 in
    let ok = ref true in
    for s = 0 to sample - 1 do
      let i = s * (n / sample) in
      let brute_d = ref infinity in
      for j = 0 to n - 1 do
        if j <> i then begin
          let d = dist3 pts.(i) pts.(j) in
          if d < !brute_d then brute_d := d
        end
      done;
      if nn.(i) < 0 || dist3 pts.(i) pts.(nn.(i)) > !brute_d +. 1e-12 then ok := false
    done;
    !ok
end

let base_n = 30_000

let instance3d name gen =
  {
    Suite_types.iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let pts = gen n in
        let out = ref [||] in
        {
          Suite_types.run = (fun () -> out := Three_d.all_nearest pts);
          check = (fun () -> Three_d.check pts !out);
        });
  }

let instance_of name gen =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let pts = gen n in
        let out = ref [||] in
        {
          run = (fun () -> out := all_nearest pts);
          check = (fun () -> check pts !out);
        });
  }

let bench =
  {
    bname = "nearestNeighbors";
    instances =
      [
        instance_of "2DinCube" (in_cube2d ~seed:1201);
        instance_of "2Dkuzmin" (kuzmin2d ~seed:1202);
        instance3d "3DinCube" (in_cube3d ~seed:1203);
        instance3d "3DonSphere" (in_sphere3d ~seed:1204);
      ];
  }
