(** PBBS classify (decisionTree): CART-style decision tree on a
    covtype-like synthetic table; candidate splits scored with parallel
    reductions, subtrees built under fork-join. The steal-heavy
    configuration of the paper's Section 5.2. *)

type dataset = {
  n : int;
  d : int;
  features : float array;  (** row-major n×d *)
  labels : int array;  (** 0/1 *)
}

val feature : dataset -> int -> int -> float

(** Synthetic data: hidden depth-3 threshold tree + 5% label noise. *)
val synth : ?seed:int -> n:int -> d:int -> unit -> dataset

type tree = Tleaf of int | Tnode of { feat : int; thresh : float; lt : tree; ge : tree }

val train : ?max_depth:int -> ?min_leaf:int -> dataset -> tree

val predict : tree -> dataset -> int -> int

(** Training accuracy in [0, 1]. *)
val accuracy : tree -> dataset -> float

val bench : Suite_types.bench
