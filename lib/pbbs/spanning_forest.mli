(** PBBS spanningForest: spanning forest of an undirected graph — the
    parallel phase sorts edges by deterministic random priority; unions
    run through a sequential union-find (path halving). *)

module Union_find : sig
  type t = int array

  val create : int -> t

  val find : t -> int -> int

  (** [union t a b] — false iff already connected. *)
  val union : t -> int -> int -> bool
end

(** [spanning_forest ?seed ~n edges] — indices of forest edges. *)
val spanning_forest : ?seed:int -> n:int -> (int * int) array -> int array

(** Acyclic + same connected components as the full edge set. *)
val check : n:int -> (int * int) array -> int array -> bool

val bench : Suite_types.bench
