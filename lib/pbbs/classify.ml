(** PBBS classify (decisionTree): train a CART-style decision tree on a
    covtype-like synthetic table and evaluate training accuracy. Candidate
    splits are scored with parallel reductions; subtrees build under
    [fork_join]. This is the benchmark family the paper flags as
    steal-heavy (Section 5.2). *)

module P = Lcws_parlay
module S = Lcws_sched.Scheduler
open Suite_types

type dataset = {
  n : int;
  d : int;
  features : float array;  (** row-major n×d *)
  labels : int array;  (** 0/1 *)
}

let feature ds row j = ds.features.((row * ds.d) + j)

(* Hidden ground truth: a random depth-3 threshold tree plus label noise,
   so a learned tree can recover most of the signal. *)
let synth ?(seed = 1) ~n ~d () =
  let features = P.Seq_ops.tabulate (n * d) (fun i -> P.Prandom.float ~seed i) in
  let hidden_feature lvl = P.Prandom.int ~seed:(seed + 31) lvl d in
  let hidden_thresh lvl = 0.25 +. (0.5 *. P.Prandom.float ~seed:(seed + 37) lvl) in
  let label_of row =
    let rec walk lvl node =
      if lvl = 3 then node land 1
      else begin
        let f = hidden_feature ((node * 7) + lvl) in
        let t = hidden_thresh ((node * 13) + lvl) in
        let go_right = features.((row * d) + f) >= t in
        walk (lvl + 1) ((2 * node) + if go_right then 1 else 0)
      end
    in
    let pure = walk 0 1 in
    if P.Prandom.float ~seed:(seed + 41) row < 0.05 then 1 - pure else pure
  in
  let labels = P.Seq_ops.tabulate n label_of in
  { n; d; features; labels }

type tree = Tleaf of int | Tnode of { feat : int; thresh : float; lt : tree; ge : tree }

let gini pos total =
  if total = 0 then 0.
  else begin
    let p = float_of_int pos /. float_of_int total in
    2. *. p *. (1. -. p)
  end

let candidates = [| 0.2; 0.35; 0.5; 0.65; 0.8 |]

let train ?(max_depth = 8) ?(min_leaf = 16) ds =
  let rec grow rows depth =
    let total = Array.length rows in
    let pos = P.Seq_ops.map_reduce (fun r -> ds.labels.(r)) ( + ) 0 rows in
    let majority = if 2 * pos >= total then 1 else 0 in
    if depth >= max_depth || total <= min_leaf || pos = 0 || pos = total then Tleaf majority
    else begin
      (* Score every (feature, candidate threshold) pair in parallel. *)
      let nf = ds.d and nc = Array.length candidates in
      let scores =
        P.Seq_ops.tabulate ~grain:1 (nf * nc) (fun k ->
            let j = k / nc and c = k mod nc in
            let t = candidates.(c) in
            let left_tot = ref 0 and left_pos = ref 0 and right_pos = ref 0 in
            Array.iter
              (fun r ->
                if feature ds r j < t then begin
                  incr left_tot;
                  left_pos := !left_pos + ds.labels.(r)
                end
                else right_pos := !right_pos + ds.labels.(r))
              rows;
            S.Ops.tick ();
            let right_tot = total - !left_tot in
            let w = float_of_int total in
            let impurity =
              (float_of_int !left_tot /. w *. gini !left_pos !left_tot)
              +. (float_of_int right_tot /. w *. gini !right_pos right_tot)
            in
            (impurity, j, t, !left_tot))
      in
      let best = ref (infinity, -1, 0., 0) in
      Array.iter
        (fun ((imp, _, _, lt) as s) ->
          let bimp, _, _, _ = !best in
          if lt > 0 && lt < total && imp < bimp then best := s)
        scores;
      let _, j, t, _ = !best in
      if j < 0 then Tleaf majority
      else begin
        let left = P.Seq_ops.filter (fun r -> feature ds r j < t) rows in
        let right = P.Seq_ops.filter (fun r -> feature ds r j >= t) rows in
        let lt, ge =
          S.Ops.fork_join (fun () -> grow left (depth + 1)) (fun () -> grow right (depth + 1))
        in
        Tnode { feat = j; thresh = t; lt; ge }
      end
    end
  in
  grow (P.Seq_ops.tabulate ds.n (fun i -> i)) 0

let rec predict tree ds row =
  match tree with
  | Tleaf l -> l
  | Tnode { feat; thresh; lt; ge } ->
      if feature ds row feat < thresh then predict lt ds row else predict ge ds row

let accuracy tree ds =
  let correct =
    P.Seq_ops.map_reduce
      (fun r -> if predict tree ds r = ds.labels.(r) then 1 else 0)
      ( + ) 0
      (P.Seq_ops.tabulate ds.n (fun i -> i))
  in
  float_of_int correct /. float_of_int ds.n

let base_n = 20_000

let bench =
  {
    bname = "classify";
    instances =
      [
        {
          iname = "covtype_like";
          prepare =
            (fun ~scale ->
              let ds = synth ~seed:1601 ~n:(scaled ~scale base_n) ~d:10 () in
              let out = ref None in
              {
                run = (fun () -> out := Some (train ds));
                check =
                  (fun () ->
                    match !out with
                    | None -> false
                    | Some tree ->
                        (* 5% label noise: a decent tree clears 80%. *)
                        accuracy tree ds > 0.8);
              });
        };
      ];
  }
