(** PBBS maximalMatching: priority-based parallel greedy matching. Each
    round, live edges that hold the minimum static priority at both
    endpoints enter the matching; edges touching matched vertices die. *)

module P = Lcws_parlay
open Suite_types

let maximal_matching ?(seed = 1) ~n (edges : (int * int) array) =
  let m = Array.length edges in
  let priority = P.Seq_ops.tabulate m (fun e -> (P.Prandom.hash_int ~seed e * m) + e) in
  let matched_v = Array.make n false in
  let alive = Array.make m true in
  let chosen = Array.make m false in
  let remaining = ref m in
  let infinity = max_int in
  let vertex_min = Array.make n infinity in
  while !remaining > 0 do
    (* Phase 1: per-vertex minimum priority over live edges. Sequentialish
       min-combine per vertex via atomic-free two-pass: compute with
       races avoided by per-edge writes into per-vertex slots using
       compare-less min under a lock-free CAS loop on int Atomics would
       allocate; instead do a deterministic reduction over edge blocks. *)
    Array.fill vertex_min 0 n infinity;
    (* Sequential fill of mins is cheap (O(m)); the parallel phases below
       dominate. *)
    for e = 0 to m - 1 do
      if alive.(e) then begin
        let u, v = edges.(e) in
        if priority.(e) < vertex_min.(u) then vertex_min.(u) <- priority.(e);
        if priority.(e) < vertex_min.(v) then vertex_min.(v) <- priority.(e)
      end
    done;
    (* Phase 2 (parallel): an edge wins if it is the min at both ends. *)
    let winners =
      P.Seq_ops.pack_index
        (fun e _ ->
          alive.(e)
          &&
          let u, v = edges.(e) in
          vertex_min.(u) = priority.(e) && vertex_min.(v) = priority.(e))
        alive
    in
    Array.iter
      (fun e ->
        let u, v = edges.(e) in
        chosen.(e) <- true;
        matched_v.(u) <- true;
        matched_v.(v) <- true)
      winners;
    (* Phase 3 (parallel): kill edges with matched endpoints. *)
    let died = ref 0 in
    let dead_flags =
      P.Seq_ops.tabulate ~grain:256 m (fun e ->
          if alive.(e) then begin
            let u, v = edges.(e) in
            if matched_v.(u) || matched_v.(v) then 1 else 0
          end
          else 0)
    in
    for e = 0 to m - 1 do
      if dead_flags.(e) = 1 then begin
        alive.(e) <- false;
        incr died
      end
    done;
    if !died = 0 && Array.length winners = 0 then remaining := 0
    else remaining := !remaining - !died
  done;
  P.Seq_ops.pack_index (fun e _ -> chosen.(e)) edges

let check ~n edges matching =
  let matched = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun e ->
      let u, v = edges.(e) in
      if matched.(u) || matched.(v) || u = v then ok := false;
      matched.(u) <- true;
      matched.(v) <- true)
    matching;
  (* Maximality: every edge touches a matched vertex. *)
  Array.iter (fun (u, v) -> if u <> v && (not matched.(u)) && not matched.(v) then ok := false) edges;
  !ok

let instance_of name make_graph =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let g = make_graph ~scale in
        let edges = Graph.edge_list g in
        let n = Graph.num_vertices g in
        let out = ref [||] in
        {
          run = (fun () -> out := maximal_matching ~seed:901 ~n edges);
          check = (fun () -> check ~n edges !out);
        });
  }

let bench =
  {
    bname = "maximalMatching";
    instances =
      [
        instance_of "rMatGraph_E" (fun ~scale ->
            let sc = max 8 (12 + int_of_float (Float.round (Float.log2 (max 0.1 scale)))) in
            Graph.rmat ~seed:902 ~scale:sc ~edge_factor:4 ());
        instance_of "randLocalGraph_E" (fun ~scale ->
            Graph.random_graph ~seed:903 ~n:(scaled ~scale 20_000) ~degree:5 ());
      ];
  }
