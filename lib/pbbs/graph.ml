module P = Lcws_parlay

type t = { n : int; offsets : int array; edges : int array }

let num_vertices g = g.n

let num_edges g = Array.length g.edges

let degree g v = g.offsets.(v + 1) - g.offsets.(v)

let neighbors g v = (g.edges, g.offsets.(v), degree g v)

let iter_neighbors g v f =
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.edges.(i)
  done

let of_edges ~n pairs =
  let m = Array.length pairs in
  let counts = Array.make (n + 1) 0 in
  Array.iter (fun (u, _) -> counts.(u) <- counts.(u) + 1) pairs;
  let offsets = Array.make (n + 1) 0 in
  for v = 1 to n do
    offsets.(v) <- offsets.(v - 1) + counts.(v - 1)
  done;
  let cursor = Array.copy offsets in
  let edges = Array.make m 0 in
  Array.iter
    (fun (u, v) ->
      edges.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    pairs;
  { n; offsets; edges }

let symmetrize ~n pairs =
  let both =
    Array.concat
      [
        Array.of_list (List.filter (fun (u, v) -> u <> v) (Array.to_list pairs));
        Array.of_list
          (List.filter_map (fun (u, v) -> if u <> v then Some (v, u) else None)
             (Array.to_list pairs));
      ]
  in
  (* Deduplicate per adjacency list. *)
  let g = of_edges ~n both in
  let lists =
    Array.init n (fun v ->
        let _, start, len = neighbors g v in
        let l = Array.sub g.edges start len in
        Array.sort compare l;
        let out = ref [] in
        Array.iteri (fun i x -> if i = 0 || x <> l.(i - 1) then out := x :: !out) l;
        Array.of_list (List.rev !out))
  in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Array.length lists.(v)
  done;
  let edges = Array.make offsets.(n) 0 in
  for v = 0 to n - 1 do
    Array.blit lists.(v) 0 edges offsets.(v) (Array.length lists.(v))
  done;
  { n; offsets; edges }

let rmat ?(seed = 1) ~scale ~edge_factor () =
  let n = 1 lsl scale in
  let m = edge_factor * n in
  (* Quadrant choice per bit level, PBBS probabilities a=.5 b=.1 c=.1 d=.3 *)
  let pick_edge e =
    let u = ref 0 and v = ref 0 in
    for level = 0 to scale - 1 do
      let r = P.Prandom.float ~seed:(seed + (level * 7717)) e in
      let du, dv = if r < 0.5 then (0, 0) else if r < 0.6 then (0, 1) else if r < 0.7 then (1, 0) else (1, 1) in
      u := (!u lsl 1) lor du;
      v := (!v lsl 1) lor dv
    done;
    (!u, !v)
  in
  let pairs = Array.init m pick_edge in
  symmetrize ~n pairs

let grid2d ~side =
  let n = side * side in
  let id x y = (x * side) + y in
  let pairs = ref [] in
  for x = 0 to side - 1 do
    for y = 0 to side - 1 do
      if x + 1 < side then pairs := (id x y, id (x + 1) y) :: !pairs;
      if y + 1 < side then pairs := (id x y, id x (y + 1)) :: !pairs
    done
  done;
  symmetrize ~n (Array.of_list !pairs)

let grid3d ~side =
  let n = side * side * side in
  let id x y z = (((x * side) + y) * side) + z in
  let pairs = ref [] in
  for x = 0 to side - 1 do
    for y = 0 to side - 1 do
      for z = 0 to side - 1 do
        if x + 1 < side then pairs := (id x y z, id (x + 1) y z) :: !pairs;
        if y + 1 < side then pairs := (id x y z, id x (y + 1) z) :: !pairs;
        if z + 1 < side then pairs := (id x y z, id x y (z + 1)) :: !pairs
      done
    done
  done;
  symmetrize ~n (Array.of_list !pairs)

let random_graph ?(seed = 1) ~n ~degree () =
  let pairs =
    Array.init (n * degree) (fun i ->
        let u = i / degree in
        let v = P.Prandom.int ~seed i n in
        (u, v))
  in
  symmetrize ~n pairs

let edge_list g =
  let out = ref [] in
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if u < v then out := (u, v) :: !out)
  done;
  Array.of_list (List.rev !out)
