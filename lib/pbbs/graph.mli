(** Compressed-sparse-row graphs and the PBBS graph generators.

    PBBS's graph benchmarks run on rMat graphs (power-law-ish degree
    distribution) and on regular grid graphs; both are reproduced here
    deterministically from a seed. *)

type t = {
  n : int;  (** vertices [0..n-1] *)
  offsets : int array;  (** length [n+1] *)
  edges : int array;  (** concatenated adjacency lists *)
}

val num_vertices : t -> int

val num_edges : t -> int

val degree : t -> int -> int

(** [neighbors g v] as a subarray view [(edges, start, len)] — no copy. *)
val neighbors : t -> int -> int array * int * int

val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [of_edges ~n pairs] builds a directed CSR graph (parallel counting
    sort by source). Self-loops are kept, duplicates are kept. *)
val of_edges : n:int -> (int * int) array -> t

(** Add each edge in both directions and drop duplicates/self-loops. *)
val symmetrize : n:int -> (int * int) array -> t

(** [rmat ~seed ~scale ~edge_factor] — recursive-matrix graph with
    [2^scale] vertices and [edge_factor * 2^scale] undirected edges,
    quadrant probabilities (0.5, 0.1, 0.1, 0.3) as in PBBS's rMat. *)
val rmat : ?seed:int -> scale:int -> edge_factor:int -> unit -> t

(** [grid2d ~side] — [side^2] vertices, 4-neighbour grid (symmetric). *)
val grid2d : side:int -> t

(** [grid3d ~side] — [side^3] vertices, 6-neighbour grid (symmetric). *)
val grid3d : side:int -> t

(** [random_graph ~seed ~n ~degree] — Erdős–Rényi-style: each vertex gets
    [degree] uniform out-neighbours, then symmetrized. *)
val random_graph : ?seed:int -> n:int -> degree:int -> unit -> t

(** Edge list (u, v) with u < v for symmetric graphs (for matching /
    spanning forest benchmarks). *)
val edge_list : t -> (int * int) array
