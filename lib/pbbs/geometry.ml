module P = Lcws_parlay

type point2d = { x : float; y : float }

type point3d = { x3 : float; y3 : float; z3 : float }

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist3 a b =
  let dx = a.x3 -. b.x3 and dy = a.y3 -. b.y3 and dz = a.z3 -. b.z3 in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz)

let cross a b c = ((b.x -. a.x) *. (c.y -. a.y)) -. ((b.y -. a.y) *. (c.x -. a.x))

let line_dist a b p = cross a b p

let in_cube2d ?(seed = 1) n =
  P.Seq_ops.tabulate n (fun i ->
      { x = P.Prandom.float ~seed i; y = P.Prandom.float ~seed:(seed + 13) i })

let in_cube3d ?(seed = 1) n =
  P.Seq_ops.tabulate n (fun i ->
      {
        x3 = P.Prandom.float ~seed i;
        y3 = P.Prandom.float ~seed:(seed + 13) i;
        z3 = P.Prandom.float ~seed:(seed + 29) i;
      })

let in_sphere2d ?(seed = 1) n =
  (* Rejection-free: polar with sqrt radius for uniformity. *)
  P.Seq_ops.tabulate n (fun i ->
      let r = sqrt (P.Prandom.float ~seed i) in
      let th = 2. *. Float.pi *. P.Prandom.float ~seed:(seed + 13) i in
      { x = r *. cos th; y = r *. sin th })

let in_sphere3d ?(seed = 1) n =
  P.Seq_ops.tabulate n (fun i ->
      let r = Float.cbrt (P.Prandom.float ~seed i) in
      let costh = (2. *. P.Prandom.float ~seed:(seed + 13) i) -. 1. in
      let sinth = sqrt (max 0. (1. -. (costh *. costh))) in
      let phi = 2. *. Float.pi *. P.Prandom.float ~seed:(seed + 29) i in
      { x3 = r *. sinth *. cos phi; y3 = r *. sinth *. sin phi; z3 = r *. costh })

let on_sphere2d ?(seed = 1) n =
  P.Seq_ops.tabulate n (fun i ->
      let th = 2. *. Float.pi *. P.Prandom.float ~seed i in
      { x = cos th; y = sin th })

let kuzmin2d ?(seed = 1) n =
  P.Seq_ops.tabulate n (fun i ->
      let u = P.Prandom.float ~seed i in
      (* Kuzmin radial CDF inverse: r = sqrt(1/(1-u)^2 - 1) *)
      let denom = max 1e-9 (1. -. u) in
      let r = sqrt (max 0. ((1. /. (denom *. denom)) -. 1.)) in
      let r = min r 1e6 in
      let th = 2. *. Float.pi *. P.Prandom.float ~seed:(seed + 13) i in
      { x = r *. cos th; y = r *. sin th })
