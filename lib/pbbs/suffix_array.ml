(** PBBS suffixArray: suffix array by prefix doubling (Manber–Myers with
    parallel sorts), O(n log² n) work with our parallel merge sort. *)

module P = Lcws_parlay
open Suite_types

let suffix_array (s : string) =
  let n = String.length s in
  if n = 0 then [||]
  else begin
    let rank = ref (P.Seq_ops.tabulate n (fun i -> Char.code s.[i])) in
    let sa = ref (P.Seq_ops.tabulate n (fun i -> i)) in
    let k = ref 1 in
    let distinct = ref false in
    while (not !distinct) && !k < 2 * n do
      let r = !rank in
      let key i = (r.(i), if i + !k < n then r.(i + !k) else -1) in
      let sorted =
        P.Sort.merge_sort (fun i j -> compare (key i) (key j)) !sa
      in
      (* Re-rank: positions with a new key get a fresh rank. *)
      let flags =
        P.Seq_ops.tabulate n (fun pos ->
            if pos = 0 then 1
            else if key sorted.(pos) <> key sorted.(pos - 1) then 1
            else 0)
      in
      let pref, total = P.Seq_ops.scan ( + ) 0 flags in
      let new_rank = Array.make n 0 in
      P.Seq_ops.iteri (fun pos i -> new_rank.(i) <- pref.(pos) + flags.(pos) - 1) sorted;
      rank := new_rank;
      sa := sorted;
      distinct := total = n;
      k := !k * 2
    done;
    !sa
  end

let suffix_compare s i j =
  let n = String.length s in
  let rec go i j = if i >= n then -1 else if j >= n then 1 else if s.[i] <> s.[j] then Char.compare s.[i] s.[j] else go (i + 1) (j + 1) in
  if i = j then 0 else go i j

let check s sa =
  let n = String.length s in
  Array.length sa = n
  && (let seen = Array.make n false in
      Array.iter (fun i -> if i >= 0 && i < n then seen.(i) <- true) sa;
      Array.for_all (fun b -> b) seen)
  &&
  (* Linear-time verification: given a permutation, consecutive suffixes
     must be ordered by (first char, rank of the rest), where the rank of
     a suffix is its position in [sa] and the empty suffix ranks lowest. *)
  let inv = Array.make n 0 in
  Array.iteri (fun pos i -> inv.(i) <- pos) sa;
  let rank_of i = if i >= n then -1 else inv.(i) in
  let ok = ref true in
  for pos = 0 to n - 2 do
    let i = sa.(pos) and j = sa.(pos + 1) in
    let c = Char.compare s.[i] s.[j] in
    if c > 0 then ok := false
    else if c = 0 && rank_of (i + 1) >= rank_of (j + 1) then ok := false
  done;
  !ok

let base_n = 30_000

let instance_of name gen =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let s = gen n in
        let out = ref [||] in
        {
          run = (fun () -> out := suffix_array s);
          check = (fun () -> check s !out);
        });
  }

let bench =
  {
    bname = "suffixArray";
    instances =
      [
        instance_of "trigramString" (fun n ->
            let t = Text_gen.text ~seed:1501 ~vocab:(max 16 (n / 50)) ~words:(max 1 (n / 6)) () in
            if String.length t >= n then String.sub t 0 n else t);
        instance_of "repeatedString" (fun n -> String.concat "" (List.init n (fun i -> if i mod 97 = 96 then "b" else "a")));
      ];
  }
