(** PBBS longestRepeatedSubstring: suffix array + Kasai LCP; the maximum
    LCP over adjacent suffix-array entries locates the longest substring
    occurring at least twice. *)

(** [lcp_array s sa] — [lcp.(i)] is the longest common prefix of the
    suffixes at [sa.(i-1)] and [sa.(i)]; [lcp.(0) = 0]. Kasai's O(n)
    pass (sequential; the parallel part is the suffix array build). *)
val lcp_array : string -> int array -> int array

type result = {
  offset : int;  (** start of one occurrence *)
  length : int;
  other : int;  (** start of another occurrence *)
}

(** [None] when no character repeats. *)
val lrs : string -> result option

val substring_at : string -> int -> int -> string

(** Validates both occurrence and maximality (recomputes every adjacent
    LCP directly). *)
val check : string -> result option -> bool

val bench : Suite_types.bench
