(** PBBS rangeQuery2d: count (and report) points inside axis-aligned
    query rectangles. A merge-sort tree (segment tree over x-sorted
    points, each node holding its points sorted by y) gives O(log² n)
    counting queries; the build and the query batch are both parallel. *)

module P = Lcws_parlay
module S = Lcws_sched.Scheduler
open Suite_types
open Geometry

type rect = { xlo : float; xhi : float; ylo : float; yhi : float }

type tree = {
  n : int;
  (* Level l stores runs of length 2^l sorted by y; level 0 is the
     x-sorted base. Flattened: levels.(l).(i). *)
  levels : point2d array array;
  xs : float array;  (** x of the x-sorted points (for range location) *)
}

let build (pts : point2d array) =
  let n = Array.length pts in
  let base = P.Sort.merge_sort (fun a b -> Float.compare a.x b.x) pts in
  let xs = Array.map (fun p -> p.x) base in
  let nlevels = 1 + if n <= 1 then 0 else Lcws_sync.Fastmath.log2_ceil n in
  let levels = Array.make nlevels base in
  let cmp_y a b = Float.compare a.y b.y in
  (* Level 0: each run of length 1 is trivially y-sorted. *)
  levels.(0) <- Array.map Fun.id base;
  for l = 1 to nlevels - 1 do
    let prev = levels.(l - 1) in
    let run = 1 lsl l in
    let half = run / 2 in
    let cur = Array.copy prev in
    let nruns = (n + run - 1) / run in
    S.Ops.parallel_for ~grain:1 ~start:0 ~stop:nruns (fun r ->
        let lo = r * run in
        let mid = min n (lo + half) in
        let hi = min n (lo + run) in
        if mid < hi then begin
          (* Merge prev[lo,mid) and prev[mid,hi) by y into cur[lo,hi). *)
          let i = ref lo and j = ref mid and k = ref lo in
          while !i < mid && !j < hi do
            if cmp_y prev.(!i) prev.(!j) <= 0 then begin
              cur.(!k) <- prev.(!i);
              incr i
            end
            else begin
              cur.(!k) <- prev.(!j);
              incr j
            end;
            incr k
          done;
          while !i < mid do
            cur.(!k) <- prev.(!i);
            incr i;
            incr k
          done;
          while !j < hi do
            cur.(!k) <- prev.(!j);
            incr j;
            incr k
          done
        end;
        S.Ops.tick ());
    levels.(l) <- cur
  done;
  { n; levels; xs }

(* Count elements with y in [ylo, yhi] inside the y-sorted slice
   [lo, hi) of level [l]. *)
let count_y t l ~lo ~hi ~ylo ~yhi =
  let a = t.levels.(l) in
  let cmp (p : point2d) y = Float.compare p.y y in
  let lower =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cmp a.(mid) ylo < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let upper =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cmp a.(mid) yhi <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  upper - lower

(* Decompose [ql, qr) into canonical power-of-two runs, counting in each. *)
let query t (r : rect) =
  if t.n = 0 then 0
  else begin
    let ql = P.Seq_ops.lower_bound Float.compare t.xs ~lo:0 ~hi:t.n r.xlo in
    let qr = P.Seq_ops.upper_bound Float.compare t.xs ~lo:0 ~hi:t.n r.xhi in
    let total = ref 0 in
    let lo = ref ql in
    while !lo < qr do
      (* Largest aligned run starting at !lo that fits in [!lo, qr). *)
      let max_align =
        let tz = if !lo = 0 then max_int else
          (let rec go k = if !lo land ((1 lsl (k + 1)) - 1) = 0 then go (k + 1) else k in
           go 0)
        in
        tz
      in
      let rec pick l =
        if l > 0 && (l > max_align || !lo + (1 lsl l) > qr) then pick (l - 1) else l
      in
      let l = pick (Array.length t.levels - 1) in
      let run = 1 lsl l in
      total := !total + count_y t l ~lo:!lo ~hi:(min t.n (!lo + run)) ~ylo:r.ylo ~yhi:r.yhi;
      lo := !lo + run
    done;
    !total
  end

let query_all t rects = P.Seq_ops.map ~grain:16 (fun r -> query t r) rects

let brute_count pts r =
  Array.fold_left
    (fun acc (p : point2d) ->
      if p.x >= r.xlo && p.x <= r.xhi && p.y >= r.ylo && p.y <= r.yhi then acc + 1 else acc)
    0 pts

let check pts rects out =
  Array.length out = Array.length rects
  &&
  let sample = min (Array.length rects) 64 in
  let ok = ref true in
  for s = 0 to sample - 1 do
    let i = s * (Array.length rects / sample) in
    if out.(i) <> brute_count pts rects.(i) then ok := false
  done;
  !ok

let make_rects ?(seed = 1) n =
  Array.init n (fun i ->
      let cx = P.Prandom.float ~seed i in
      let cy = P.Prandom.float ~seed:(seed + 3) i in
      let w = 0.02 +. (0.2 *. P.Prandom.float ~seed:(seed + 5) i) in
      let h = 0.02 +. (0.2 *. P.Prandom.float ~seed:(seed + 7) i) in
      { xlo = cx -. w; xhi = cx +. w; ylo = cy -. h; yhi = cy +. h })

let base_points = 50_000

let base_queries = 5_000

let bench =
  {
    bname = "rangeQuery2d";
    instances =
      [
        {
          iname = "2DinCube";
          prepare =
            (fun ~scale ->
              let pts = in_cube2d ~seed:1901 (scaled ~scale base_points) in
              let rects = make_rects ~seed:1902 (scaled ~scale base_queries) in
              let out = ref [||] in
              {
                run = (fun () -> out := query_all (build pts) rects);
                check = (fun () -> check pts rects !out);
              });
        };
      ];
  }
