(** Parallel tokenization shared by the text benchmarks (wordCounts,
    invertedIndex): split a string on non-alphanumeric characters into
    (offset, length) tokens, plus a 64-bit FNV-1a hash for cheap word
    identity. *)

val is_word_char : char -> bool

(** [tokenize text] — (offset, length) of every maximal word-character
    run, in order, found with data-parallel index packing. *)
val tokenize : string -> (int * int) array

(** Full-width FNV-1a hash of a token (non-negative OCaml int). *)
val hash_token : string -> int * int -> int

(** Number of bits of {!hash_low} (radix-sort friendly). *)
val hash_bits : int

(** [hash_token] truncated to {!hash_bits} bits; callers disambiguate
    collisions by grouping on the full hash. *)
val hash_low : string -> int * int -> int

val token_string : string -> int * int -> string

(**/**)

val fnv_offset : int64

val fnv_prime : int64
