(** PBBS suffixArray: Manber–Myers prefix doubling with parallel sorts,
    O(n log² n) work. *)

val suffix_array : string -> int array

(** Direct lexicographic comparison of two suffixes (reference for
    tests; O(n) worst case). *)
val suffix_compare : string -> int -> int -> int

(** Linear-time validity check: permutation + consecutive suffixes
    ordered by (first char, rank of rest). *)
val check : string -> int array -> bool

val bench : Suite_types.bench
