(** PBBS integerSort: stable LSD radix sort on integer keys (optionally
    carrying values). *)

module P = Lcws_parlay
open Suite_types

let sort_ints ~bits keys = P.Sort.radix_sort ~bits keys

let sort_pairs ~bits pairs = P.Sort.radix_sort_by ~key:fst ~bits pairs

let check_sorted_permutation keys sorted =
  Array.length keys = Array.length sorted
  && P.Sort.is_sorted compare sorted
  &&
  let a = Array.copy keys and b = Array.copy sorted in
  Array.sort compare a;
  Array.sort compare b;
  a = b

let base_n = 200_000

let int_instance name gen_keys ~bits =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let keys = gen_keys n in
        let out = ref [||] in
        {
          run = (fun () -> out := sort_ints ~bits keys);
          check = (fun () -> check_sorted_permutation keys !out);
        });
  }

let pair_instance name gen_keys ~bits =
  {
    iname = name;
    prepare =
      (fun ~scale ->
        let n = scaled ~scale base_n in
        let keys = gen_keys n in
        let pairs = P.Seq_ops.tabulate n (fun i -> (keys.(i), i)) in
        let out = ref [||] in
        {
          run = (fun () -> out := sort_pairs ~bits pairs);
          check =
            (fun () ->
              Array.length !out = n
              && P.Sort.is_sorted (fun (a, _) (b, _) -> compare a b) !out
              (* Stability: equal keys keep their original index order. *)
              && (let ok = ref true in
                  for i = 0 to n - 2 do
                    let k1, v1 = !out.(i) and k2, v2 = !out.(i + 1) in
                    if k1 = k2 && v1 > v2 then ok := false
                  done;
                  !ok)
              && check_sorted_permutation keys (Array.map fst !out));
        });
  }

let bench =
  {
    bname = "integerSort";
    instances =
      [
        int_instance "randomSeq_int" (fun n -> P.Prandom.ints ~seed:101 n ~bound:(1 lsl 20)) ~bits:20;
        int_instance "exptSeq_int"
          (fun n -> P.Prandom.exponential_ints ~seed:102 n ~bound:(1 lsl 20))
          ~bits:20;
        pair_instance "randomSeq_int_pair_int"
          (fun n -> P.Prandom.ints ~seed:103 n ~bound:(1 lsl 20))
          ~bits:20;
        pair_instance "randomSeq_256_int_pair_int"
          (fun n -> P.Prandom.ints ~seed:104 n ~bound:256)
          ~bits:8;
      ];
  }
