(** Deterministic per-worker pseudo-random number generators.

    Work stealing picks victims uniformly at random; reproducible
    experiments need each worker to own an independent, seedable stream.
    This is xoshiro256** seeded through splitmix64, as used by many
    work-stealing runtimes. *)

type t

(** [create seed] builds a generator; equal seeds give equal streams. *)
val create : int64 -> t

(** [split t i] derives an independent stream for worker [i]. *)
val split : t -> int -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [other_than t ~bound ~self] is uniform over [\[0,bound) \ {self}];
    used for victim selection. Requires [bound >= 2]. *)
val other_than : t -> bound:int -> self:int -> int
