(** Per-worker synchronization-operation counters.

    The evaluation of the paper profiles schedulers by the number of memory
    fences, compare-and-swap operations, steal attempts and work exposures
    they execute (Figures 3 and 8). Each worker owns one [t]; all fields are
    plain (non-atomic) and must only ever be written by that worker, so
    counting adds no synchronization of its own. *)

type t = {
  mutable fences : int;  (** memory fences executed (seq-cst fences) *)
  mutable cas_ops : int;  (** compare-and-swap instructions executed *)
  mutable cas_failures : int;  (** CASes that lost a race *)
  mutable pushes : int;  (** [push_bottom] calls *)
  mutable pops : int;  (** successful private [pop_bottom]s *)
  mutable public_pops : int;  (** successful owner [pop_public_bottom]s *)
  mutable steal_attempts : int;  (** thief [pop_top] calls *)
  mutable steals : int;  (** successful steals *)
  mutable aborts : int;  (** [pop_top] CAS races lost *)
  mutable private_work_hits : int;  (** [pop_top] returned [Private_work] *)
  mutable exposures : int;  (** [update_public_bottom] transfers *)
  mutable exposed_tasks : int;  (** tasks made public in total *)
  mutable signals_sent : int;  (** notification signals sent by thieves *)
  mutable signals_handled : int;  (** signals acted upon by victims *)
  mutable idle_loops : int;  (** scheduling-loop iterations without work *)
  mutable backoffs : int;  (** backoff pauses taken in retry loops *)
  mutable tasks_run : int;  (** tasks executed *)
  mutable splits : int;  (** lazy loop ranges split into a stealable half *)
  mutable stalls : int;  (** fault layer: poll points spent stalled *)
  mutable signals_dropped : int;  (** fault layer: exposure signals dropped *)
  mutable signals_delayed : int;  (** fault layer: signal handlings deferred *)
  mutable steal_vetoes : int;  (** fault layer: steal attempts forced to fail *)
  mutable exns_injected : int;  (** fault layer: exceptions injected into tasks *)
  mutable task_exns : int;  (** tasks that completed exceptionally *)
  mutable cancelled_chunks : int;  (** loop chunks skipped by cancellation *)
  mutable drained_tasks : int;  (** tasks discarded by a shutdown drain *)
  mutable submits : int;  (** externally submitted tasks absorbed by this worker *)
  mutable suspends : int;  (** fibers parked at a [Suspend] effect *)
  mutable resumes : int;  (** parked fibers resumed on this worker *)
  mutable futures : int;  (** futures spawned by this worker *)
  mutable parks : int;  (** times this worker blocked in the parking lot *)
  mutable wakes : int;  (** parks that ended with work found after the wake *)
  mutable spurious_wakes : int;  (** parks whose post-wake search found nothing *)
  mutable steals_batched : int;  (** steal episodes that moved more than one task *)
  mutable tasks_migrated : int;  (** tasks moved to this worker by its steals *)
  mutable near_steals : int;  (** successful steals from a near victim *)
  mutable far_steals : int;  (** successful steals from a far victim *)
  mutable policy_switches : int;
      (** adaptive pools: exposure-policy switches adopted by this worker *)
}

val create : unit -> t

(** The single authoritative field list, in declaration order. [reset],
    [add], [pp] and [to_json] are all derived from it. *)
val to_assoc : t -> (string * int) list

(** Look a counter up by its [to_assoc] name.
    @raise Invalid_argument on an unknown name. *)
val field : t -> string -> int

val reset : t -> unit

val copy : t -> t

(** [add into x] accumulates [x] into [into]. *)
val add : t -> t -> unit

(** Sum of an array of per-worker counters (e.g. a whole pool). *)
val sum : t array -> t

(** [exposed_not_stolen t] is the number of tasks that were transferred to
    the public part of a deque but ended up taken back by their owner —
    the quantity plotted in Figures 3d and 8d. *)
val exposed_not_stolen : t -> int

(** [ratio num den] is [num / den] as a float, 0 when [den = 0]. *)
val ratio : int -> int -> float

val pp : Format.formatter -> t -> unit

(** One flat JSON object, fields in [to_assoc] order. *)
val to_json : t -> string
