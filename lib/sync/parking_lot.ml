type t = { mutex : Mutex.t; cond : Condition.t }

let create () = { mutex = Mutex.create (); cond = Condition.create () }

let block t ~should_block =
  Mutex.lock t.mutex;
  while should_block () do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex

let wake t ~all ~bump =
  Mutex.lock t.mutex;
  bump ();
  Mutex.unlock t.mutex;
  if all then Condition.broadcast t.cond else Condition.signal t.cond

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f
