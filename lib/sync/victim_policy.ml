(* Victim selection for the steal path. See victim_policy.mli. *)

type policy = Uniform | Near_first

let policy_name = function Uniform -> "uniform" | Near_first -> "near_first"

let policy_of_string = function
  | "uniform" -> Some Uniform
  | "near_first" -> Some Near_first
  | _ -> None

let all_policies = [ Uniform; Near_first ]

let flat nw =
  if nw < 1 then invalid_arg "Victim_policy.flat";
  Array.init nw (fun i -> Array.init nw (fun j -> if i = j then 0 else 1))

let clustered ?(far = 4) ~cluster nw =
  if nw < 1 || cluster < 1 then invalid_arg "Victim_policy.clustered";
  Array.init nw (fun i ->
      Array.init nw (fun j ->
          if i = j then 0 else if i / cluster = j / cluster then 1 else far))

let check_topology topo ~nw =
  if Array.length topo <> nw then
    invalid_arg
      (Printf.sprintf "Victim_policy: topology is %dx? but the pool has %d workers"
         (Array.length topo) nw);
  Array.iteri
    (fun i row ->
      if Array.length row <> nw then
        invalid_arg (Printf.sprintf "Victim_policy: topology row %d has %d entries, want %d" i
             (Array.length row) nw);
      Array.iteri
        (fun j d ->
          if d < 0 then invalid_arg "Victim_policy: negative distance";
          if (i = j) <> (d = 0) then
            invalid_arg
              (Printf.sprintf "Victim_policy: distance(%d,%d) = %d (0 exactly on the diagonal)"
                 i j d))
        row)
    topo

type t = {
  policy : policy;
  rng : Xoshiro.t;
  self : int;
  nw : int;
  dist : int array;  (* distance from [self] to each worker id *)
  order : int array;  (* the other workers, sorted nearest-first (stable by id) *)
  near_count : int;  (* prefix of [order] at the minimal distance *)
  escalate_after : int;  (* consecutive failures before probing far victims too *)
  mutable fails : int;
  mutable last_victim : int;  (* -1 = none *)
  mutable affinity_pending : bool;  (* re-probe [last_victim] first *)
}

let create ?topology ?(escalate_after = 4) ~policy ~rng ~self ~nw () =
  if nw < 1 || self < 0 || self >= nw then invalid_arg "Victim_policy.create";
  if escalate_after < 1 then invalid_arg "Victim_policy.create: escalate_after must be >= 1";
  let topo =
    match topology with
    | Some topo ->
        check_topology topo ~nw;
        topo
    | None -> flat nw
  in
  let dist = Array.copy topo.(self) in
  let order = Array.init (max 0 (nw - 1)) (fun i -> if i < self then i else i + 1) in
  (* Insertion sort by (distance, id): [nw] is small and this runs once
     per worker at pool creation. *)
  for i = 1 to Array.length order - 1 do
    let v = order.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && dist.(order.(!j)) > dist.(v) do
      order.(!j + 1) <- order.(!j);
      decr j
    done;
    order.(!j + 1) <- v
  done;
  let near_count =
    if Array.length order = 0 then 0
    else begin
      let dmin = dist.(order.(0)) in
      let n = ref 0 in
      while !n < Array.length order && dist.(order.(!n)) = dmin do
        incr n
      done;
      !n
    end
  in
  {
    policy;
    rng;
    self;
    nw;
    dist;
    order;
    near_count;
    escalate_after;
    fails = 0;
    last_victim = -1;
    affinity_pending = false;
  }

let distance t ~victim = t.dist.(victim)

(* "Near" = at the minimal distance from [self] among the other workers,
   so on a flat topology every victim is near. *)
let is_near t ~victim =
  Array.length t.order > 0 && t.dist.(victim) = t.dist.(t.order.(0))

let last_victim t = t.last_victim

(* One probe choice. At most one RNG draw per call, and the affinity
   re-probe consumes none — the stream depends only on the sequence of
   [next]/[fail]/[success] calls, never on anything the fault layer does
   (the scheduler picks the victim *before* rolling a steal veto, so a
   vetoed probe burns the same draw a real probe would). *)
let next t =
  match t.policy with
  | Uniform -> Xoshiro.other_than t.rng ~bound:t.nw ~self:t.self
  | Near_first ->
      if t.affinity_pending && t.last_victim >= 0 then begin
        t.affinity_pending <- false;
        t.last_victim
      end
      else begin
        let window =
          if t.fails >= t.escalate_after then Array.length t.order else t.near_count
        in
        if window <= 0 then 0 (* nw = 1: never reached by the scheduler *)
        else t.order.(Xoshiro.int t.rng window)
      end

let fail t =
  t.fails <- t.fails + 1;
  t.affinity_pending <- false

let success t ~victim =
  t.fails <- 0;
  t.last_victim <- victim;
  t.affinity_pending <- true
