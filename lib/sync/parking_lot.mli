(** A condvar "dock" for futex-style worker parking.

    The lot is deliberately dumb: it owns only the mutex and condition
    variable a parked worker sleeps on. The *protocol* that decides when
    blocking is safe — the parked-count word, the wake-generation
    ticket, the re-check-after-announce sequence that closes the
    lost-wakeup window — lives in [Sched_protocol.Park] (lib/sched),
    where the interleaving checker can explore it through the atomic
    shim. The two halves compose through the [should_block] and [bump]
    callbacks below, so this module never needs to see the protocol's
    atomics and the protocol never needs to see a mutex (which the
    checker could not model).

    Pairing contract (the condvar-level half of lost-wakeup freedom):
    the parker evaluates [should_block] {e under the lot's mutex} and
    only then waits; the waker runs [bump] — which must falsify every
    current ticket's [should_block] — {e under the same mutex} before
    signalling. A waker that bumps between the parker's predicate check
    and its wait therefore serializes either before the check (the
    parker never blocks) or after the parker is inside [Condition.wait]
    (the signal lands). *)

type t

val create : unit -> t

(** [block t ~should_block] sleeps on the lot while [should_block ()]
    holds, re-evaluating after every wakeup (spurious wakeups are
    absorbed here). The predicate is called with the lot's mutex held,
    so it must not block or re-enter the lot. Returns once the
    predicate is false. *)
val block : t -> should_block:(unit -> bool) -> unit

(** [wake t ~all ~bump] runs [bump ()] under the lot's mutex, then
    signals one sleeper ([all = false]) or broadcasts to every sleeper
    ([all = true]). [bump] must invalidate the sleepers' blocking
    predicate (e.g. advance the wake generation); the signal is sent
    after the mutex is released, which is allowed for condition
    variables and spares the woken thread an immediate mutex stall. *)
val wake : t -> all:bool -> bump:(unit -> unit) -> unit

(** [locked t f] runs [f ()] under the lot's mutex — for callers that
    need to compose their own predicate/state updates atomically with
    parkers (e.g. the external driver seat handshake). *)
val locked : t -> (unit -> 'a) -> 'a
