type t = {
  mutable fences : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable pushes : int;
  mutable pops : int;
  mutable public_pops : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable aborts : int;
  mutable private_work_hits : int;
  mutable exposures : int;
  mutable exposed_tasks : int;
  mutable signals_sent : int;
  mutable signals_handled : int;
  mutable idle_loops : int;
  mutable tasks_run : int;
}

let create () =
  {
    fences = 0;
    cas_ops = 0;
    cas_failures = 0;
    pushes = 0;
    pops = 0;
    public_pops = 0;
    steal_attempts = 0;
    steals = 0;
    aborts = 0;
    private_work_hits = 0;
    exposures = 0;
    exposed_tasks = 0;
    signals_sent = 0;
    signals_handled = 0;
    idle_loops = 0;
    tasks_run = 0;
  }

let reset t =
  t.fences <- 0;
  t.cas_ops <- 0;
  t.cas_failures <- 0;
  t.pushes <- 0;
  t.pops <- 0;
  t.public_pops <- 0;
  t.steal_attempts <- 0;
  t.steals <- 0;
  t.aborts <- 0;
  t.private_work_hits <- 0;
  t.exposures <- 0;
  t.exposed_tasks <- 0;
  t.signals_sent <- 0;
  t.signals_handled <- 0;
  t.idle_loops <- 0;
  t.tasks_run <- 0

let copy t = { t with fences = t.fences }

let add into x =
  into.fences <- into.fences + x.fences;
  into.cas_ops <- into.cas_ops + x.cas_ops;
  into.cas_failures <- into.cas_failures + x.cas_failures;
  into.pushes <- into.pushes + x.pushes;
  into.pops <- into.pops + x.pops;
  into.public_pops <- into.public_pops + x.public_pops;
  into.steal_attempts <- into.steal_attempts + x.steal_attempts;
  into.steals <- into.steals + x.steals;
  into.aborts <- into.aborts + x.aborts;
  into.private_work_hits <- into.private_work_hits + x.private_work_hits;
  into.exposures <- into.exposures + x.exposures;
  into.exposed_tasks <- into.exposed_tasks + x.exposed_tasks;
  into.signals_sent <- into.signals_sent + x.signals_sent;
  into.signals_handled <- into.signals_handled + x.signals_handled;
  into.idle_loops <- into.idle_loops + x.idle_loops;
  into.tasks_run <- into.tasks_run + x.tasks_run

let sum arr =
  let acc = create () in
  Array.iter (fun x -> add acc x) arr;
  acc

let exposed_not_stolen t =
  let n = t.exposed_tasks - t.steals in
  if n < 0 then 0 else n

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let pp ppf t =
  Format.fprintf ppf
    "@[<v>fences=%d cas=%d (fail %d)@ pushes=%d pops=%d public_pops=%d@ \
     steal_attempts=%d steals=%d aborts=%d private_hits=%d@ exposures=%d \
     exposed=%d signals=%d/%d idle=%d tasks=%d@]"
    t.fences t.cas_ops t.cas_failures t.pushes t.pops t.public_pops
    t.steal_attempts t.steals t.aborts t.private_work_hits t.exposures
    t.exposed_tasks t.signals_sent t.signals_handled t.idle_loops t.tasks_run
