type t = {
  mutable fences : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable pushes : int;
  mutable pops : int;
  mutable public_pops : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable aborts : int;
  mutable private_work_hits : int;
  mutable exposures : int;
  mutable exposed_tasks : int;
  mutable signals_sent : int;
  mutable signals_handled : int;
  mutable idle_loops : int;
  mutable backoffs : int;
  mutable tasks_run : int;
  mutable splits : int;
  mutable stalls : int;
  mutable signals_dropped : int;
  mutable signals_delayed : int;
  mutable steal_vetoes : int;
  mutable exns_injected : int;
  mutable task_exns : int;
  mutable cancelled_chunks : int;
  mutable drained_tasks : int;
  mutable submits : int;
  mutable suspends : int;
  mutable resumes : int;
  mutable futures : int;
  mutable parks : int;
  mutable wakes : int;
  mutable spurious_wakes : int;
  mutable steals_batched : int;
  mutable tasks_migrated : int;
  mutable near_steals : int;
  mutable far_steals : int;
  mutable policy_switches : int;
}

let create () =
  {
    fences = 0;
    cas_ops = 0;
    cas_failures = 0;
    pushes = 0;
    pops = 0;
    public_pops = 0;
    steal_attempts = 0;
    steals = 0;
    aborts = 0;
    private_work_hits = 0;
    exposures = 0;
    exposed_tasks = 0;
    signals_sent = 0;
    signals_handled = 0;
    idle_loops = 0;
    backoffs = 0;
    tasks_run = 0;
    splits = 0;
    stalls = 0;
    signals_dropped = 0;
    signals_delayed = 0;
    steal_vetoes = 0;
    exns_injected = 0;
    task_exns = 0;
    cancelled_chunks = 0;
    drained_tasks = 0;
    submits = 0;
    suspends = 0;
    resumes = 0;
    futures = 0;
    parks = 0;
    wakes = 0;
    spurious_wakes = 0;
    steals_batched = 0;
    tasks_migrated = 0;
    near_steals = 0;
    far_steals = 0;
    policy_switches = 0;
  }

(* The single authoritative field list: every generic operation (reset,
   add, pp, JSON) is derived from it, so adding a counter means touching
   the record, [create] and this table only. *)
let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("fences", (fun t -> t.fences), fun t v -> t.fences <- v);
    ("cas_ops", (fun t -> t.cas_ops), fun t v -> t.cas_ops <- v);
    ("cas_failures", (fun t -> t.cas_failures), fun t v -> t.cas_failures <- v);
    ("pushes", (fun t -> t.pushes), fun t v -> t.pushes <- v);
    ("pops", (fun t -> t.pops), fun t v -> t.pops <- v);
    ("public_pops", (fun t -> t.public_pops), fun t v -> t.public_pops <- v);
    ("steal_attempts", (fun t -> t.steal_attempts), fun t v -> t.steal_attempts <- v);
    ("steals", (fun t -> t.steals), fun t v -> t.steals <- v);
    ("aborts", (fun t -> t.aborts), fun t v -> t.aborts <- v);
    ("private_work_hits", (fun t -> t.private_work_hits), fun t v -> t.private_work_hits <- v);
    ("exposures", (fun t -> t.exposures), fun t v -> t.exposures <- v);
    ("exposed_tasks", (fun t -> t.exposed_tasks), fun t v -> t.exposed_tasks <- v);
    ("signals_sent", (fun t -> t.signals_sent), fun t v -> t.signals_sent <- v);
    ("signals_handled", (fun t -> t.signals_handled), fun t v -> t.signals_handled <- v);
    ("idle_loops", (fun t -> t.idle_loops), fun t v -> t.idle_loops <- v);
    ("backoffs", (fun t -> t.backoffs), fun t v -> t.backoffs <- v);
    ("tasks_run", (fun t -> t.tasks_run), fun t v -> t.tasks_run <- v);
    ("splits", (fun t -> t.splits), fun t v -> t.splits <- v);
    ("stalls", (fun t -> t.stalls), fun t v -> t.stalls <- v);
    ("signals_dropped", (fun t -> t.signals_dropped), fun t v -> t.signals_dropped <- v);
    ("signals_delayed", (fun t -> t.signals_delayed), fun t v -> t.signals_delayed <- v);
    ("steal_vetoes", (fun t -> t.steal_vetoes), fun t v -> t.steal_vetoes <- v);
    ("exns_injected", (fun t -> t.exns_injected), fun t v -> t.exns_injected <- v);
    ("task_exns", (fun t -> t.task_exns), fun t v -> t.task_exns <- v);
    ("cancelled_chunks", (fun t -> t.cancelled_chunks), fun t v -> t.cancelled_chunks <- v);
    ("drained_tasks", (fun t -> t.drained_tasks), fun t v -> t.drained_tasks <- v);
    ("submits", (fun t -> t.submits), fun t v -> t.submits <- v);
    ("suspends", (fun t -> t.suspends), fun t v -> t.suspends <- v);
    ("resumes", (fun t -> t.resumes), fun t v -> t.resumes <- v);
    ("futures", (fun t -> t.futures), fun t v -> t.futures <- v);
    ("parks", (fun t -> t.parks), fun t v -> t.parks <- v);
    ("wakes", (fun t -> t.wakes), fun t v -> t.wakes <- v);
    ("spurious_wakes", (fun t -> t.spurious_wakes), fun t v -> t.spurious_wakes <- v);
    ("steals_batched", (fun t -> t.steals_batched), fun t v -> t.steals_batched <- v);
    ("tasks_migrated", (fun t -> t.tasks_migrated), fun t v -> t.tasks_migrated <- v);
    ("near_steals", (fun t -> t.near_steals), fun t v -> t.near_steals <- v);
    ("far_steals", (fun t -> t.far_steals), fun t v -> t.far_steals <- v);
    ("policy_switches", (fun t -> t.policy_switches), fun t v -> t.policy_switches <- v);
  ]

let to_assoc t = List.map (fun (name, get, _) -> (name, get t)) fields

let field t name =
  match List.find_opt (fun (n, _, _) -> n = name) fields with
  | Some (_, get, _) -> get t
  | None -> invalid_arg (Printf.sprintf "Metrics.field: unknown field %S" name)

let reset t = List.iter (fun (_, _, set) -> set t 0) fields

let copy t = { t with fences = t.fences }

let add into x = List.iter (fun (_, get, set) -> set into (get into + get x)) fields

let sum arr =
  let acc = create () in
  Array.iter (fun x -> add acc x) arr;
  acc

let exposed_not_stolen t =
  let n = t.exposed_tasks - t.steals in
  if n < 0 then 0 else n

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let pp ppf t =
  Format.pp_open_hvbox ppf 0;
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.pp_print_space ppf ();
      Format.fprintf ppf "%s=%d" name v)
    (to_assoc t);
  Format.pp_close_box ppf ()

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name v))
    (to_assoc t);
  Buffer.add_char buf '}';
  Buffer.contents buf
