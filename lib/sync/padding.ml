(* Cache-line padding for thief-visible cells.

   OCaml gives no control over object placement: consecutive
   [Atomic.make] calls typically land adjacent in the minor heap and are
   then evacuated adjacently by the compacting major collector, so the
   per-worker flags of neighbouring workers — or a deque's [top]/[age]
   word and its neighbour's — end up sharing a cache line. Every CAS or
   SC store by one worker then invalidates the line under every other
   worker polling its own cell: false sharing, the classic
   work-stealing scalability bug (Gu, Napier & Sun measure exactly this
   cache traffic dominating fine-grained workloads).

   The fix is the multicore-magic trick: re-allocate the 1-word cell
   inside a cache-line-sized block. All OCaml atomic primitives
   ([%atomic_load], [%atomic_cas], ...) and [ref] accessors operate on
   field 0 and never consult the block size, so a widened block behaves
   identically — the trailing fields are dead ballast the GC scans and
   ignores ([Obj.new_block] initializes them to [()]).

   128 bytes, not 64: adjacent-line prefetchers on current x86 pull
   cache lines in pairs, so a 64-byte pad still ping-pongs with one
   neighbour. *)

let cache_line_words = 16 (* 128 bytes on 64-bit *)

let copy_as_padded (type a) (v : a) : a =
  let o = Obj.repr v in
  if (not (Obj.is_block o)) || Obj.tag o >= Obj.no_scan_tag || Obj.size o >= cache_line_words
  then v
  else begin
    let n = Obj.new_block (Obj.tag o) cache_line_words in
    for i = 0 to Obj.size o - 1 do
      Obj.set_field n i (Obj.field o i)
    done;
    Obj.obj n
  end

let atomic v = copy_as_padded (Atomic.make v)

let plain v = copy_as_padded (ref v)
