(** Truncated exponential backoff for contended retry loops.

    Thieves that repeatedly fail to steal spin with growing pauses to avoid
    hammering victims' cache lines; this mirrors the backoff Parlay's
    scheduler applies in its steal loop. The scheduler's idle loops route
    through this module so the policy is defined once: spin with doubling
    pauses until {!saturated}, then take a stronger measure (the
    scheduler sleeps a timeslice) and {!reset}. *)

type t

(** [create ?min_wait ?max_wait ?metrics ()] — waits are in
    [Domain.cpu_relax] iterations, doubling from [min_wait] (default 1)
    to [max_wait] (default 256). When [metrics] is given, every {!once}
    bumps its [backoffs] counter (single-writer: pass the owning worker's
    block). *)
val create : ?min_wait:int -> ?max_wait:int -> ?metrics:Metrics.t -> unit -> t

(** Spin for the current wait and double it (saturating). *)
val once : t -> unit

(** The wait has reached [max_wait]: spinning is no longer making
    progress; the caller should yield/sleep and {!reset}. *)
val saturated : t -> bool

(** Reset the wait to the minimum (call after a successful operation). *)
val reset : t -> unit
