(** Truncated exponential backoff for contended retry loops.

    Thieves that repeatedly fail to steal spin with growing pauses to avoid
    hammering victims' cache lines; this mirrors the backoff Parlay's
    scheduler applies in its steal loop. *)

type t

(** [create ?min_wait ?max_wait ()] — waits are in [Domain.cpu_relax]
    iterations, doubling from [min_wait] (default 1) to [max_wait]
    (default 256). *)
val create : ?min_wait:int -> ?max_wait:int -> unit -> t

(** Spin for the current wait and double it (saturating). *)
val once : t -> unit

(** Reset the wait to the minimum (call after a successful operation). *)
val reset : t -> unit
