type t = {
  min_wait : int;
  max_wait : int;
  mutable wait : int;
  metrics : Metrics.t option;
}

let create ?(min_wait = 1) ?(max_wait = 256) ?metrics () =
  if min_wait < 1 || max_wait < min_wait then invalid_arg "Backoff.create";
  { min_wait; max_wait; wait = min_wait; metrics }

let once t =
  (match t.metrics with
  | Some m -> m.Metrics.backoffs <- m.Metrics.backoffs + 1
  | None -> ());
  for _ = 1 to t.wait do
    Domain.cpu_relax ()
  done;
  if t.wait < t.max_wait then t.wait <- t.wait * 2

let saturated t = t.wait >= t.max_wait

let reset t = t.wait <- t.min_wait
