let magic = 6755399441055744.0 (* 2^52 + 2^51 *)

let double2int r =
  let bits = Int64.bits_of_float (r +. magic) in
  (* The rounded value sits in the low 32 bits of the mantissa, as a signed
     32-bit integer (the C trick reinterprets the low word). *)
  Int64.to_int (Int64.of_int32 (Int64.to_int32 bits))

let round_half r =
  if r < 0 then invalid_arg "Fastmath.round_half";
  (r + 1) lsr 1

let next_pow2 n =
  if n < 1 then invalid_arg "Fastmath.next_pow2";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let log2_floor n =
  if n < 1 then invalid_arg "Fastmath.log2_floor";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let log2_ceil n =
  if n < 1 then invalid_arg "Fastmath.log2_ceil";
  let f = log2_floor n in
  if 1 lsl f = n then f else f + 1

let ceil_div a b =
  if b <= 0 then invalid_arg "Fastmath.ceil_div";
  (a + b - 1) / b
