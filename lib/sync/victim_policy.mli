(** Topology-aware victim selection for the steal path.

    Uniform random victim selection treats every cache hierarchy as
    flat; on clustered machines a steal from a far victim drags the
    task's working set across the interconnect. This module owns the
    per-worker probe sequence behind a policy knob:

    - {!Uniform}: the classical choice — every probe draws uniformly
      from the other workers ([Xoshiro.other_than], byte-compatible
      with the stream the scheduler used before this module existed);
    - {!Near_first}: probe victims at the minimal topology distance
      first, escalate to the full victim set after [escalate_after]
      consecutive failed probes, and re-probe the last successful
      victim once after every success (affinity hint).

    Probe-sequence determinism: [next] draws at most one RNG value and
    the affinity re-probe draws none, so for a fixed seed the sequence
    is a function of the [next]/[fail]/[success] call history only. The
    scheduler calls [next] {e before} rolling a fault-injection steal
    veto, so a vetoed probe consumes exactly the draw the real probe
    would have — replays with and without the fault layer observe the
    same victims. [next] never allocates. *)

type policy = Uniform | Near_first

val policy_name : policy -> string

val policy_of_string : string -> policy option

val all_policies : policy list

(** {2 Topologies}

    A topology is a square distance matrix: [topo.(i).(j)] is the cost
    multiplier of migrating work from worker [j] to worker [i]. Zero
    exactly on the diagonal, non-negative elsewhere (validated at
    {!create}). *)

(** Every pair of distinct workers at distance 1 (the default). *)
val flat : int -> int array array

(** [clustered ~cluster nw]: distance 1 within blocks of [cluster]
    consecutive worker ids, [far] (default 4) across blocks — the shape
    of a multi-socket or multi-CCX machine. *)
val clustered : ?far:int -> cluster:int -> int -> int array array

(** {2 Per-worker probe state} *)

type t

(** One per worker, created at pool startup. [rng] is the worker's
    victim-selection stream (the policy owns all draws from it);
    [escalate_after] (default 4) is the consecutive-failure threshold
    beyond which {!Near_first} widens its window to every victim. *)
val create :
  ?topology:int array array ->
  ?escalate_after:int ->
  policy:policy ->
  rng:Xoshiro.t ->
  self:int ->
  nw:int ->
  unit ->
  t

(** Choose the next victim to probe. Requires [nw >= 2]. *)
val next : t -> int

(** The probe failed (empty victim, lost race, or fault veto). *)
val fail : t -> unit

(** The probe stole from [victim]: resets the failure streak and arms
    the affinity re-probe. *)
val success : t -> victim:int -> unit

(** Topology distance from this worker to [victim]. *)
val distance : t -> victim:int -> int

(** [victim] is at the minimal distance from this worker (on a flat
    topology: always true). Drives the near/far steal metrics. *)
val is_near : t -> victim:int -> bool

(** Last successful victim, or -1. *)
val last_victim : t -> int
