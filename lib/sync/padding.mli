(** Cache-line padding for thief-visible cells.

    OCaml offers no placement control, so independently-allocated 1-word
    atomics (per-worker flags, deque [top]/[age] words) end up adjacent
    in the heap and false-share cache lines across workers. These
    helpers re-allocate such cells inside a cache-line-sized block; all
    atomic and [ref] primitives operate on field 0 only, so the widened
    block is behaviourally identical. *)

(** Words per padded block: 16 on 64-bit (128 bytes — two 64-byte lines,
    because adjacent-line prefetchers pull lines in pairs). *)
val cache_line_words : int

(** [copy_as_padded v] returns a copy of the heap block [v] widened to
    {!cache_line_words} words (extra fields hold [()]). Immediates,
    non-scannable blocks and already-large blocks are returned
    unchanged. Only safe for values accessed through field offsets
    (atomics, refs, records) — not for arrays or values whose consumers
    call [Obj.size]/[Array.length]. *)
val copy_as_padded : 'a -> 'a

(** [atomic v] is [Atomic.make v] in its own cache line. *)
val atomic : 'a -> 'a Atomic.t

(** [plain v] is [ref v] in its own cache line. *)
val plain : 'a -> 'a ref
