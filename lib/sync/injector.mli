(** External-submission queue (the scheduler's MPSC injector).

    Producers are arbitrary threads calling {!push} ([Pool.submit], and
    fiber resumptions arriving from outside the pool); consumers are the
    pool's workers, which {!pop} one item at a time at their steal
    points. A mutex-protected two-list queue is deliberately boring —
    submission is the slow path by definition — but the hot path is the
    {e empty probe}: workers ask "anything to drain?" on every failed
    steal round, and that must not touch the lock. {!is_empty} reads one
    atomic size word and nothing else.

    FIFO across producers in lock-acquisition order; {!pop} is safe from
    any number of threads (the consumers' single-drainer discipline is
    the scheduler's business, not this queue's). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option

(** Take everything at once, FIFO order (shutdown drains). *)
val drain : 'a t -> 'a list

(** Exact count (racy by nature, like any concurrent size). *)
val size : 'a t -> int

(** One atomic load, no lock: the workers' steal-point probe. *)
val is_empty : 'a t -> bool
