type t = { alpha : float; mutable value : float; mutable primed : bool }

let create ~alpha =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Ewma.create: alpha must be in (0, 1]";
  { alpha; value = 0.; primed = false }

let observe t x =
  if t.primed then t.value <- t.value +. (t.alpha *. (x -. t.value))
  else begin
    t.value <- x;
    t.primed <- true
  end;
  t.value

let value t = t.value

let primed t = t.primed

let reset t =
  t.value <- 0.;
  t.primed <- false

type band = { lo : float; hi : float }

let band ~lo ~hi =
  if not (lo <= hi) then invalid_arg "Ewma.band: lo must be <= hi";
  { lo; hi }

type side = Low | Within | High

let classify b x = if x > b.hi then High else if x < b.lo then Low else Within

(* The hysteresis gate: a boolean output that only flips when the input
   leaves the band on the side opposite its current state. An input
   sitting anywhere inside [lo, hi] — including oscillating across a
   single threshold value — keeps the previous decision, which is what
   prevents flip-flapping on a boundary rate. *)
type gate = { gband : band; mutable state : bool }

let gate ?(initial = false) b = { gband = b; state = initial }

let update g x =
  (match classify g.gband x with
  | High -> g.state <- true
  | Low -> g.state <- false
  | Within -> ());
  g.state

let state g = g.state
