(** Small arithmetic helpers used throughout the runtime.

    Includes an OCaml port of the paper's [double2int] rounding trick
    (Section 4.1.2, borrowed from Lua's [lua_number2int]): adding the magic
    constant 2^52 + 2^51 to a double forces the rounded integer into the
    low mantissa bits, avoiding a slow [round]/[int_of_float] pair. *)

(** [double2int r] rounds [r] to the nearest integer (ties to even, like
    the hardware rounding the trick exploits). Valid for |r| < 2^31. *)
val double2int : float -> int

(** [round_half r] is [round(r / 2)] for a non-negative task count [r] —
    the quantity the Expose Half variant transfers. Implemented without
    floating point ([r+1 lsr 1], i.e. round-half-up). *)
val round_half : int -> int

(** Smallest power of two [>= n] (n >= 1). *)
val next_pow2 : int -> int

(** Floor of log2 (n >= 1). *)
val log2_floor : int -> int

(** Ceiling of log2 (n >= 1). *)
val log2_ceil : int -> int

(** [ceil_div a b] with [b > 0]. *)
val ceil_div : int -> int -> int
