(** Exponentially weighted moving averages and hysteresis bands.

    The smoothing/deciding half of the adaptive exposure-policy governor
    (see [Lcws_sched.Policy_governor]): raw per-epoch rates (steals per
    task, parked workers) are too noisy to switch policy on directly, so
    the governor smooths them through an EWMA and feeds the smoothed
    value to a two-threshold hysteresis {!gate} — the decision only
    flips when the value leaves the [lo, hi] dead band on the far side,
    so a rate hovering at a single boundary cannot make the pool
    flip-flap between policies.

    Plain mutable state, single-writer by design (the governor runs on
    one worker at a time); nothing here synchronizes. *)

type t

(** [create ~alpha] — smoothing factor in (0, 1]; higher = more reactive.
    The first {!observe} primes the average to its sample.
    @raise Invalid_argument if [alpha] is outside (0, 1]. *)
val create : alpha:float -> t

(** Feed one sample; returns the updated average. *)
val observe : t -> float -> float

(** Current average (0 before the first sample). *)
val value : t -> float

(** Has at least one sample been observed? *)
val primed : t -> bool

val reset : t -> unit

(** {2 Hysteresis} *)

type band = { lo : float; hi : float }

(** @raise Invalid_argument if [lo > hi]. *)
val band : lo:float -> hi:float -> band

type side = Low | Within | High

(** Strictly above [hi] is [High], strictly below [lo] is [Low]; the
    closed band keeps the caller's previous state. *)
val classify : band -> float -> side

(** A boolean decision with memory: flips to [true] only when the input
    classifies [High], to [false] only on [Low], and holds inside the
    band. *)
type gate

val gate : ?initial:bool -> band -> gate

(** Feed one (smoothed) value; returns the possibly-updated state. *)
val update : gate -> float -> bool

val state : gate -> bool
