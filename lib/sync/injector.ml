(* Two-list FIFO under a mutex, plus an atomic size word maintained
   inside the critical section so [is_empty] — the only operation on a
   worker's hot path — is a single load with no lock traffic. *)

type 'a t = {
  mutex : Mutex.t;
  mutable front : 'a list; (* next to pop, oldest first *)
  mutable back : 'a list; (* newest first; reversed into [front] *)
  approx_size : int Atomic.t;
}

let create () =
  { mutex = Mutex.create (); front = []; back = []; approx_size = Padding.atomic 0 }

let push t x =
  Mutex.lock t.mutex;
  t.back <- x :: t.back;
  Atomic.incr t.approx_size;
  Mutex.unlock t.mutex

let pop t =
  if Atomic.get t.approx_size = 0 then None
  else begin
    Mutex.lock t.mutex;
    (match t.front with
    | [] ->
        t.front <- List.rev t.back;
        t.back <- []
    | _ :: _ -> ());
    let r =
      match t.front with
      | [] -> None
      | x :: rest ->
          t.front <- rest;
          Atomic.decr t.approx_size;
          Some x
    in
    Mutex.unlock t.mutex;
    r
  end

let drain t =
  Mutex.lock t.mutex;
  let all = t.front @ List.rev t.back in
  t.front <- [];
  t.back <- [];
  Atomic.set t.approx_size 0;
  Mutex.unlock t.mutex;
  all

let size t = Atomic.get t.approx_size

let is_empty t = Atomic.get t.approx_size = 0
