(** Deterministic, seeded fault injection for the scheduler.

    The LCWS protocol trades synchronization for a delicate
    worker-to-worker handshake: exposure requests, signal delivery,
    split-pointer repair. A {!plan} describes a reproducible adversary
    for that handshake — every decision is drawn from a per-worker
    xoshiro stream split from the plan's seed, and depends only on that
    worker's own event counts, so a failing chaos run is replayable from
    [(seed, plan, variant, deque, workers)] alone, independent of real
    thread timing.

    Faults on offer (all probabilities in [\[0, 1\]]):
    - {e signal drop}: a pending exposure signal is discarded and the
      victim's [targeted] flag cleared, forcing thieves through the
      Section 4 re-request path;
    - {e signal delay}: handling of a pending signal is deferred for a
      bounded number of poll points;
    - {e stall}: a worker treats its next N poll points as if it had
      been preempted (no signal handling, a short spin);
    - {e steal veto}: a thief's steal attempt is forced to fail
      spuriously, as if it had lost a CAS race;
    - {e exception injection}: the k-th task execution on a chosen
      worker raises {!Injected} inside the task body, so it propagates
      through the ordinary frame machinery to the [fork_join] caller;
    - {e cancellation}: after the n-th poll on a chosen worker, the
      whole job is cancelled as if [Pool.shutdown] had raced it.

    A {!none} / inactive [t] compiles the scheduler's hooks down to one
    predictable branch on a plain [bool] field (same discipline as
    {!Lcws_trace.Trace.null}); the acceptance bar is that the bench
    suite cannot tell the difference.

    Fiber suspension points are poll points: the scheduler runs {!poll}
    inside its [Suspend] effect handler (a parking fiber can stall or
    observe a plan-driven cancellation right between capturing its
    continuation and registering the resume) and {!inject_now} at fiber
    entry, so a spawned or submitted task can be made to raise
    {!Injected} before its body runs. No new plan field is involved —
    the same seeded streams now simply cover the park/resume handshake
    too, and chaos DAGs with future nodes replay identically from the
    same repro line.

    The worker-parking entry is a poll point too: {!poll} runs just
    before a worker announces itself in the pool's parking lot, so a
    stall planted there stretches the most delicate window of the
    wake protocol — between the last failed work search and the block
    on the doorbell — and a plan-driven cancellation can divert the
    park entirely (the worker skips the block and lets its caller
    observe the cancel). A stalled would-be parker spins visibly
    ([metrics.stalls]) instead of sleeping, exactly like a preempted
    victim. *)

(** Raised inside a task body by exception injection. The payload is
    [(worker, k)]: the k-th task execution on [worker]. *)
exception Injected of int * int

type plan = {
  seed : int64;  (** root of every per-worker decision stream *)
  stall_prob : float;  (** P(a poll point starts a stall) *)
  stall_polls : int;  (** max polls a stall lasts (uniform in [1..n]) *)
  drop_signal_prob : float;  (** P(a pending signal is dropped) *)
  delay_signal_prob : float;  (** P(a pending signal's handling is deferred) *)
  delay_polls : int;  (** polls a delayed signal stays deferred *)
  steal_fail_prob : float;  (** P(a steal attempt is vetoed) *)
  inject_exn : (int * int) option;
      (** [(worker, k)]: raise {!Injected} in worker's k-th task (1-based) *)
  cancel_at : (int * int) option;
      (** [(worker, n)]: request job cancellation at worker's n-th poll *)
}

(** All probabilities 0, no injection, no cancellation. *)
val no_faults : plan

(** Round-trippable [k=v] encoding, e.g.
    ["seed=7,stall=0.2:8,drop=0.5,delay=0.3:6,steal_fail=0.1,inject=0:3,cancel=1:40"].
    Fields at their [no_faults] value are omitted. *)
val plan_to_string : plan -> string

(** Inverse of {!plan_to_string}; unknown keys and malformed values are
    reported, omitted keys default to {!no_faults}'s fields. *)
val plan_of_string : string -> (plan, string) result

(** Named plans for CLI / CI sweeps: ["none"], ["storm"] (drop + delay
    heavy), ["stall"], ["steal"], ["exn"], ["cancel"], ["mixed"],
    ["park_storm"] (steal vetoes plus stalls on the park poll point:
    drives workers into the parking lot and stretches the lost-wakeup
    window the doorbell protocol closes). *)
val preset : ?seed:int64 -> string -> plan option

val preset_names : string list

type t

(** The inactive layer: every hook is a single-branch no-op. *)
val none : t

val create : plan -> num_workers:int -> t

(** [active t] is cheap enough for hot-path guards, but the scheduler
    caches it in a plain pool field anyway. *)
val active : t -> bool

(** The plan behind [t] ({!no_faults} for {!none}). *)
val plan : t -> plan

(** {2 Hooks}

    Each hook must be called from the worker's own domain with its own
    [metrics] block (single-writer counting, like the deques). All are
    deterministic functions of the plan and the per-worker call
    history. *)

type poll_action =
  | Pass
  | Stalled  (** skip this poll's signal handling; burn a short spin *)
  | Cancel_job  (** the plan requests job cancellation now *)

(** One poll point on [worker]. Counts the poll; may start or continue a
    stall ([metrics.stalls]) or fire the plan's cancellation. *)
val poll : t -> worker:int -> metrics:Lcws_sync.Metrics.t -> poll_action

type signal_action =
  | Handle
  | Defer  (** leave the signal pending for a later poll *)
  | Drop  (** discard it and clear [targeted]: thieves must re-request *)

(** Called when [worker] observes a pending exposure signal. Updates
    [metrics.signals_dropped] / [metrics.signals_delayed]. *)
val on_signal : t -> worker:int -> metrics:Lcws_sync.Metrics.t -> signal_action

(** Should [thief]'s next steal attempt fail spuriously?
    ([metrics.steal_vetoes]) *)
val steal_veto : t -> thief:int -> metrics:Lcws_sync.Metrics.t -> bool

(** Counts one task execution on [worker]; [Some (w, k)] means the
    caller must raise [Injected (w, k)] inside the task body
    ([metrics.exns_injected]). *)
val inject_now : t -> worker:int -> metrics:Lcws_sync.Metrics.t -> (int * int) option

(** {2 Trace codes}

    Argument values for {!Lcws_trace.Trace.record_fault}. *)

val code_stall : int

val code_drop_signal : int

val code_delay_signal : int

val code_steal_veto : int

val code_inject : int

val code_cancel : int
